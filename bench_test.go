package heteromap

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (go test -bench=. -benchmem). Each BenchmarkTable*/Fig*
// target wraps the corresponding experiment driver; the reported custom
// metrics surface the headline numbers (speedups, gaps, reductions) so a
// bench run doubles as a reproduction run. Benchmark*Kernel and
// Benchmark*Inference targets are conventional micro-benchmarks;
// BenchmarkAblation* quantify the design choices called out in DESIGN.md.

import (
	"math/rand"
	"sync"
	"testing"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/exec"
	"heteromap/internal/experiments"
	"heteromap/internal/feature"
	"heteromap/internal/gen"
	"heteromap/internal/machine"
	"heteromap/internal/phased"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/predict/nn"
	"heteromap/internal/sched"
	"heteromap/internal/stats"
	"heteromap/internal/train"
	"heteromap/internal/tune"
)

var (
	benchCtxOnce sync.Once
	benchCtx     *experiments.Context
)

// benchContext shares one fast experiment context across all benches so
// workload characterization and learner training are not re-measured in
// every target.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchCtxOnce.Do(func() { benchCtx = experiments.NewFastContext() })
	return benchCtx
}

// --- Tables ---

func BenchmarkTable1Inputs(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(ctx)
		if len(res.Rows) != 9 {
			b.Fatal("table I rows")
		}
	}
}

func BenchmarkTable2Accelerators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2().Accels) != 4 {
			b.Fatal("table II rows")
		}
	}
}

func BenchmarkTable3TrainingData(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		if len(experiments.Table3(ctx).Rows) != 2 {
			b.Fatal("table III rows")
		}
	}
}

func BenchmarkTable4Learners(b *testing.B) {
	ctx := benchContext(b)
	var last experiments.Table4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Row(experiments.LearnerDecisionTree).SpeedupPct, "tree-speedup-%")
	b.ReportMetric(last.Row(experiments.LearnerDeep128L).SpeedupPct, "deep128L-speedup-%")
}

// --- Figures ---

func BenchmarkFig1ThreadSweep(b *testing.B) {
	ctx := benchContext(b)
	var last experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Graphs[0].Factor, "CA-winner-x")
	b.ReportMetric(last.Graphs[1].Factor, "CAGE-winner-x")
}

func BenchmarkFig5Classification(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 9 {
			b.Fatal("fig 5 rows")
		}
	}
}

func BenchmarkFig7DecisionTree(b *testing.B) {
	ctx := benchContext(b)
	var last experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[0].GapPct, "ssspbf-gap-%")
	b.ReportMetric(last.Rows[1].GapPct, "delta-gap-%")
}

func BenchmarkFig11Scheduler(b *testing.B) {
	ctx := benchContext(b)
	var last experiments.SchedulerResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.GainOverGPUPct, "vs-gpu-%")
	b.ReportMetric(last.GainOverMCx, "vs-mc-x")
	b.ReportMetric(last.VsIdealPct, "vs-ideal-%")
}

func BenchmarkFig12Energy(b *testing.B) {
	ctx := benchContext(b)
	var last experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ReductionX, "energy-reduction-x")
}

func BenchmarkFig13Utilization(b *testing.B) {
	ctx := benchContext(b)
	var last experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ImprovementPct, "util-gain-%")
}

func BenchmarkFig14Scheduler970(b *testing.B) {
	ctx := benchContext(b)
	var last experiments.SchedulerResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.GainOverMCx, "vs-mc-x")
}

func BenchmarkFig15CPU40(b *testing.B) {
	ctx := benchContext(b)
	var last experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Pairs[0].GainOverGPUPct, "vs-gtx750-%")
	b.ReportMetric(last.Pairs[1].GainOverGPUPct, "vs-gtx970-%")
}

func BenchmarkFig16MemorySweep(b *testing.B) {
	ctx := benchContext(b)
	var last experiments.Fig16Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Sweeps[0].MCGainPct, "phi-mem-gain-%")
}

// --- Kernel micro-benchmarks ---

func benchGraph(b *testing.B) *gen.Dataset {
	b.Helper()
	return gen.ByShort(gen.TableICached(gen.Small), "FB")
}

func BenchmarkKernelSSSPBellmanFord(b *testing.B) {
	g := benchGraph(b).Graph
	src := algo.SourceVertex(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.SSSPBellmanFord(g, src)
	}
}

func BenchmarkKernelSSSPDelta(b *testing.B) {
	g := benchGraph(b).Graph
	src := algo.SourceVertex(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.SSSPDelta(g, src, 0)
	}
}

func BenchmarkKernelBFS(b *testing.B) {
	g := benchGraph(b).Graph
	src := algo.SourceVertex(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.BFS(g, src)
	}
}

func BenchmarkKernelDFS(b *testing.B) {
	g := benchGraph(b).Graph
	src := algo.SourceVertex(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.DFS(g, src)
	}
}

func BenchmarkKernelPageRank(b *testing.B) {
	g := benchGraph(b).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.PageRank(g, 0)
	}
}

func BenchmarkKernelTriangleCount(b *testing.B) {
	g := benchGraph(b).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.TriangleCount(g)
	}
}

func BenchmarkKernelConnectedComponents(b *testing.B) {
	g := benchGraph(b).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.ConnectedComponents(g)
	}
}

func BenchmarkKernelParallelBFS(b *testing.B) {
	g := benchGraph(b).Graph
	src := algo.SourceVertex(g)
	pool := exec.NewPoolN(4, config.ScheduleDynamic, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.BFS(pool, g, src)
	}
}

func BenchmarkKernelParallelPageRank(b *testing.B) {
	g := benchGraph(b).Graph
	pool := exec.NewPoolN(4, config.ScheduleStatic, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.PageRank(pool, g, 10)
	}
}

func BenchmarkCostModelEvaluate(b *testing.B) {
	pair := machine.PrimaryPair()
	bench, _ := algo.ByName(algo.NameBFS)
	w, err := core.Characterize(bench, benchGraph(b))
	if err != nil {
		b.Fatal(err)
	}
	m := config.DefaultGPU(pair.Limits())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair.GPU.Evaluate(w.Job, m)
	}
}

func BenchmarkInferenceDecisionTree(b *testing.B) {
	pair := machine.PrimaryPair()
	tree := dtree.New(pair.Limits())
	bench, _ := algo.ByName(algo.NameBFS)
	w, err := core.Characterize(bench, benchGraph(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Predict(w.Features)
	}
}

func BenchmarkInferenceDeep128(b *testing.B) {
	pair := machine.PrimaryPair()
	net := nn.New(pair.Limits(), nn.Options{Hidden: 128, Epochs: 1})
	db := train.BuildDatabase(pair, train.Config{Samples: 32, Seed: 1})
	if err := net.Train(db.Samples); err != nil {
		b.Fatal(err)
	}
	bench, _ := algo.ByName(algo.NameBFS)
	w, err := core.Characterize(bench, benchGraph(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Predict(w.Features)
	}
}

func BenchmarkOfflineDatabaseBuild(b *testing.B) {
	pair := machine.PrimaryPair()
	for i := 0; i < b.N; i++ {
		train.BuildDatabase(pair, train.Config{Samples: 100, Seed: int64(i + 1)})
	}
}

// --- Ablations (design choices called out in DESIGN.md §5) ---

// BenchmarkAblationClosedForm compares the profile-driven cost model
// against a closed-form variant that synthesizes the work profile from
// the (B, I) characterization alone (no instrumentation). The reported
// divergence justifies running the real algorithms.
func BenchmarkAblationClosedForm(b *testing.B) {
	ctx := benchContext(b)
	ws, err := ctx.Workloads()
	if err != nil {
		b.Fatal(err)
	}
	pair := machine.PrimaryPair()
	m := config.DefaultMulticore(pair.Limits())
	var divergence float64
	for i := 0; i < b.N; i++ {
		var ratios []float64
		for _, w := range ws {
			measured := pair.Multicore.Evaluate(w.Job, m).Seconds
			combo := train.Synthesize(w.Features.B(), w.Features.I(),
				rand.New(rand.NewSource(1)))
			closed := pair.Multicore.Evaluate(machine.Job{
				Work: combo.Work, FootprintBytes: combo.Footprint,
			}, m).Seconds
			r := closed / measured
			if r < 1 {
				r = 1 / r
			}
			ratios = append(ratios, r)
		}
		divergence = stats.MustGeomean(ratios)
	}
	b.ReportMetric(divergence, "closed-vs-profile-x")
}

// BenchmarkAblationTreeThreshold sweeps the decision threshold the paper
// fixes at 0.5 ("other thresholds may also work by fine tuning ...
// left as future work").
func BenchmarkAblationTreeThreshold(b *testing.B) {
	ctx := benchContext(b)
	ws, err := ctx.Workloads()
	if err != nil {
		b.Fatal(err)
	}
	pair := machine.PrimaryPair()
	var bestThreshold float64
	for i := 0; i < b.N; i++ {
		bestGeo := -1.0
		for _, th := range []float64{0.3, 0.4, 0.5, 0.6, 0.7} {
			tree := dtree.NewWithThreshold(pair.Limits(), th)
			var times []float64
			for _, w := range ws {
				m := tree.Predict(w.Features)
				times = append(times, pair.Select(m.Accelerator).Evaluate(w.Job, m).Seconds)
			}
			geo := stats.MustGeomean(times)
			if bestGeo < 0 || geo < bestGeo {
				bestGeo, bestThreshold = geo, th
			}
		}
	}
	b.ReportMetric(bestThreshold, "best-threshold")
}

// BenchmarkAblationTrainingSize measures how holdout choice accuracy
// scales with the synthetic database size.
func BenchmarkAblationTrainingSize(b *testing.B) {
	pair := machine.PrimaryPair()
	limits := pair.Limits()
	var accLargest float64
	for i := 0; i < b.N; i++ {
		for _, size := range []int{100, 400, 1200} {
			db := train.BuildDatabase(pair, train.Config{Samples: size, Seed: 21})
			trainSet, holdout := db.Split(0.2, 1)
			net := nn.New(limits, nn.Options{Hidden: 32, Epochs: 30, Seed: 5})
			if err := net.Train(trainSet); err != nil {
				b.Fatal(err)
			}
			var sum float64
			for _, s := range holdout {
				target := config.FromNormalized(s.Target, limits)
				sum += config.ChoiceAccuracy(net.Predict(s.Features), target, limits)
			}
			accLargest = sum / float64(len(holdout)) * 100
		}
	}
	b.ReportMetric(accLargest, "acc-at-1200-%")
}

// BenchmarkAblationDiscretization sweeps the characterization step (the
// paper uses 0.1 and notes finer increments are possible): it counts how
// many of the 81 inter-accelerator decisions change with finer I
// discretization.
func BenchmarkAblationDiscretization(b *testing.B) {
	ctx := benchContext(b)
	ws, err := ctx.Workloads()
	if err != nil {
		b.Fatal(err)
	}
	pair := machine.PrimaryPair()
	tree := dtree.New(pair.Limits())
	var changed float64
	for i := 0; i < b.N; i++ {
		changed = 0
		for _, w := range ws {
			d := w.Dataset.Declared
			coarse := w.Features
			fine := w.Features
			fi := feature.IFromCountsStep(d.V, d.E, d.MaxDeg, d.Diameter, 0.02)
			copy(fine[feature.NumB:], fi[:])
			if tree.SelectAccelerator(coarse) != tree.SelectAccelerator(fine) {
				changed++
			}
		}
	}
	b.ReportMetric(changed, "decisions-changed")
}

// BenchmarkExtensionPhased quantifies the temporal extension the paper
// leaves out (internal/phased): each phase placed on its best
// accelerator with per-iteration PCIe migration costs, against the
// whole-program single-accelerator choice.
func BenchmarkExtensionPhased(b *testing.B) {
	ctx := benchContext(b)
	ws, err := ctx.Workloads()
	if err != nil {
		b.Fatal(err)
	}
	pair := machine.PrimaryPair()
	limits := pair.Limits()
	gpuM := config.DefaultGPU(limits)
	gpuM.GlobalThreads = 2048
	mcM := config.DefaultMulticore(limits)
	var splits, gain float64
	for i := 0; i < b.N; i++ {
		splits = 0
		var gains []float64
		for _, w := range ws {
			s := phased.Plan(pair, w.Job, gpuM, mcM)
			if s.Split() {
				splits++
			}
			gains = append(gains, 1+s.GainPct()/100)
		}
		gain = (stats.MustGeomean(gains) - 1) * 100
	}
	b.ReportMetric(splits, "split-combos")
	b.ReportMetric(gain, "phased-gain-%")
}

// BenchmarkExtensionBatch measures batch operation of the heterogeneous
// system (internal/sched): the makespan of the full 81-job queue under
// HeteroMap assignment vs the better single accelerator.
func BenchmarkExtensionBatch(b *testing.B) {
	ctx := benchContext(b)
	ws, err := ctx.Workloads()
	if err != nil {
		b.Fatal(err)
	}
	pair := machine.PrimaryPair()
	tree := dtree.New(pair.Limits())
	var speedup float64
	for i := 0; i < b.N; i++ {
		plans := sched.Compare(pair, tree, ws)
		single := plans[2].Makespan
		if plans[3].Makespan < single {
			single = plans[3].Makespan
		}
		speedup = single / plans[0].Makespan
	}
	b.ReportMetric(speedup, "batch-speedup-x")
}

// BenchmarkExtensionThresholdFit exercises the tuned-threshold tree
// (Section IV's future work) against the synthetic database.
func BenchmarkExtensionThresholdFit(b *testing.B) {
	ctx := benchContext(b)
	pair := machine.PrimaryPair()
	db := ctx.DB(pair, 0)
	var th float64
	for i := 0; i < b.N; i++ {
		tree := dtree.FitThreshold(pair.Limits(), db.Samples)
		th = tree.ThresholdValue()
	}
	b.ReportMetric(th, "fitted-threshold")
}

// BenchmarkIdealSweep measures the exhaustive "ideal" baseline cost —
// what HeteroMap's millisecond predictions replace at run time.
func BenchmarkIdealSweep(b *testing.B) {
	ctx := benchContext(b)
	ws, err := ctx.Workloads()
	if err != nil {
		b.Fatal(err)
	}
	pair := machine.PrimaryPair()
	cands := config.Enumerate(pair.Limits())
	w := ws[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tune.ExhaustiveSerial(cands, func(m config.M) float64 {
			return pair.Select(m.Accelerator).Evaluate(w.Job, m).Seconds
		})
	}
}
