// Command heteromap is the interactive front end of the reproduction:
//
//	heteromap characterize -bench BFS -input FB
//	    print the (B, I) characterization and measured work profile
//	heteromap predict -bench BFS -input FB [-predictor tree|deep]
//	    print the predicted machine choices
//	heteromap run -bench BFS -input FB [-predictor tree|deep] [-energy]
//	    schedule the combination and report time/energy/utilization
//	    against the GPU-only, multicore-only and ideal baselines
//	heteromap sweep -bench BFS -input FB
//	    print the per-accelerator tuning sweep (Fig 1 style)
//	heteromap phased -bench SSSP-Delta -input CA
//	    plan phase-level temporal scheduling (the paper's future work)
//	heteromap run -bench SSSP-BF -edgelist my_graph.txt
//	    schedule a user-supplied edge-list graph
//	heteromap run -bench BFS -input FB -chaos -chaos-rate 0.3
//	    schedule under injected accelerator faults: transient failures
//	    are retried with capped exponential backoff and failed over to
//	    the other accelerator, all charged into the completion time
//	heteromap batch -input FB [-chaos]
//	    schedule every benchmark on one dataset and compare the batch
//	    strategies (HeteroMap, LPT-balanced, single-accelerator; plus
//	    the failure-aware plan under -chaos)
//	heteromap explain -bench BFS -input FB
//	    show where the simulated time of the predicted deployment goes
//	heteromap serve -addr 127.0.0.1:8080 [-predictor tree|deep|db]
//	    run the prediction service: POST /v1/predict and
//	    /v1/predict/batch, model registry with canary-validated
//	    hot-swap reload (/v1/reload, gated by -canary-set/-reload-slo),
//	    prediction cache, hedged dispatch with per-version circuit
//	    breakers, Prometheus /metrics; -chaos-serve arms the serve-path
//	    fault injector behind /v1/chaos; -debug-addr exposes the debug
//	    surface (/debug/pprof, /debug/traces) on a second address and
//	    -trace-sample tunes how many unflagged traces the ring retains
//	heteromap serve -online -shadow-dir /tmp/shadows -uncertainty-floor 0.3
//	    close the predict -> execute -> learn loop: every served
//	    prediction is realized against the machine models and its cost
//	    gap feeds per-cell drift detection (heteromap_drift_* metrics,
//	    /v1/online snapshot); on drift the manager retrains a shadow
//	    model on the feedback window and promotes it only through the
//	    canary-validated reload path; low-confidence predictions
//	    reroute to a bounded exhaustive probe (-uncertainty-floor)
//	heteromap serve -cluster -addr 127.0.0.1:8101
//	    run as a cluster node: SIGINT/SIGTERM announces a drain on
//	    /healthz (routers deregister the node) and keeps serving for
//	    -drain-grace before exiting — a planned shutdown with zero 5xx
//	heteromap serve -peers 127.0.0.1:8101,127.0.0.1:8102,127.0.0.1:8103
//	    run the cluster *router* on -addr: consistent-hash routing over
//	    the peers' shard keyspace with -replicas per shard, peer-aware
//	    failover via per-peer circuit breakers, version-gated hedging
//	    after -hedge-after, health probes every -probe-interval;
//	    /v1/cluster shows membership, -chaos-serve arms the
//	    forwarding-layer fault injector behind /v1/chaos
//	heteromap run -bench BFS -input FB -trace
//	    record the run's trace and print its id and span timeline
//	heteromap list
//	    list benchmarks and datasets
//
// Exit codes: 0 on success, 1 on runtime/validation failure, 2 on usage
// errors (unknown command, bad flags).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"heteromap"
	"heteromap/internal/cluster"
	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/fault"
	"heteromap/internal/obs"
	"heteromap/internal/online"
	"heteromap/internal/sched"
	"heteromap/internal/serve"
	"heteromap/internal/train"
	"heteromap/internal/tune"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "BFS", "benchmark name (see `heteromap list`)")
	input := fs.String("input", "FB", "dataset short name (see `heteromap list`)")
	predictor := fs.String("predictor", "tree", "predictor: tree, deep, or db")
	dbPath := fs.String("db", "", "profiler database file for -predictor db (written by hmtrain -out)")
	energy := fs.Bool("energy", false, "optimize energy instead of performance")
	large := fs.Bool("large", false, "use the larger generated analogs")
	edgeList := fs.String("edgelist", "", "characterize a user edge-list file instead of a catalog dataset")
	directed := fs.Bool("directed", false, "treat the -edgelist file as directed (default: mirror edges)")
	chaos := fs.Bool("chaos", false, "inject accelerator faults and schedule resiliently")
	chaosRate := fs.Float64("chaos-rate", 0.1, "fault rate for -chaos: transient failure probability, plus scaled slowdown and memory loss")
	chaosSeed := fs.Int64("chaos-seed", 42, "deterministic seed for -chaos fault injection")
	addr := fs.String("addr", "127.0.0.1:8080", "serve: listen address")
	cacheSize := fs.Int("cache-size", 4096, "serve: prediction cache capacity")
	workers := fs.Int("workers", 4, "serve: batch worker pool size")
	maxBatch := fs.Int("max-batch", 64, "serve: micro-batch size bound")
	maxWait := fs.Duration("max-wait", 2*time.Millisecond, "serve: micro-batch deadline bound")
	queueSize := fs.Int("queue", 1024, "serve: bounded request queue capacity")
	canarySet := fs.String("canary-set", "", "serve: golden-set JSON file gating /v1/reload (empty: record one from the default model at startup)")
	reloadSLO := fs.Duration("reload-slo", 10*time.Millisecond, "serve: per-prediction canary latency budget for /v1/reload (0 disables)")
	chaosServe := fs.Bool("chaos-serve", false, "serve: enable the serve-path chaos injector and /v1/chaos endpoint")
	clusterMode := fs.Bool("cluster", false, "serve: run as a cluster node — SIGINT/SIGTERM drains gracefully (healthz announces, routers deregister) before exit")
	peers := fs.String("peers", "", "serve: comma-separated node addresses; non-empty runs the cluster *router* on -addr instead of a node")
	replicas := fs.Int("replicas", 2, "serve router: replica-group size per shard (primary included)")
	probeInterval := fs.Duration("probe-interval", 250*time.Millisecond, "serve router: peer health-probe cadence")
	hedgeAfter := fs.Duration("hedge-after", 25*time.Millisecond, "serve router: how long the primary may take before hedging against the replica")
	drainGrace := fs.Duration("drain-grace", 2*time.Second, "serve -cluster: how long to keep serving after the drain announcement before shutting down")
	stageBudget := fs.Duration("stage-budget", 25*time.Millisecond, "serve: per-inference budget before hedged dispatch")
	debugAddr := fs.String("debug-addr", "", "serve: extra listen address for the debug surface (/debug/pprof, /debug/traces)")
	sloAvailability := fs.Float64("slo-availability", 0, "serve: availability objective, e.g. 0.999 — enables the SLO burn-rate engine, /v1/slo and the heteromap_slo_* gauges (0: disabled unless -slo-p99 is set)")
	sloP99 := fs.Duration("slo-p99", 0, "serve: p99 latency objective, e.g. 50ms — at most 1% of requests may exceed it (0: engine default 250ms once enabled)")
	sloFastWindow := fs.Duration("slo-fast-window", 0, "serve: fast burn-rate window for SLO alerting (0: default 5m)")
	sloSlowWindow := fs.Duration("slo-slow-window", 0, "serve: slow burn-rate window for SLO alerting (0: default 1h)")
	traceSample := fs.Float64("trace-sample", 0, "serve: retention rate for unflagged traces in /debug/traces (0: server default 0.1, 1: keep all; flagged traces are always kept)")
	trace := fs.Bool("trace", false, "run: record a per-run trace and print its id and span timeline")
	durableDir := fs.String("durable-dir", "", "serve: root directory for crash-safe state — cache snapshots under <dir>/serve, the feedback WAL and window snapshots under <dir>/online; a restart replays and comes back warm (empty: volatile)")
	snapshotInterval := fs.Duration("snapshot-interval", 30*time.Second, "serve -durable-dir: prediction-cache snapshot cadence")
	windowFlush := fs.Duration("window-flush", 0, "serve -online: auto-flush the feedback window to -window-path this often (0: never)")
	windowPath := fs.String("window-path", "", "serve -online: feedback-window flush destination, a valid hmtrain database (empty with -window-flush: <durable-dir>/online/window.db)")
	onlineMode := fs.Bool("online", false, "serve: close the predict->execute->learn loop — feedback collection, drift detection, uncertainty routing and canary-gated shadow retraining (/v1/online)")
	driftWindow := fs.Int("drift-window", 0, "serve -online: consecutive over-threshold observations before the drift signal arms (0: default 16)")
	driftThreshold := fs.Float64("drift-threshold", 0, "serve -online: EWMA cost-gap level that counts as drifting (0: default 0.25)")
	uncertaintyFloor := fs.Float64("uncertainty-floor", 0, "serve -online: confidence below which a prediction reroutes to the bounded exhaustive probe (0 disables routing)")
	shadowDir := fs.String("shadow-dir", "", "serve -online: directory for shadow retrain databases (empty: retraining disabled, drift is detect-only)")
	probeCap := fs.Int("probe-cap", 0, "serve -online: candidate-grid bound for an uncertainty probe (0: default 32)")
	retrainMin := fs.Int("retrain-min", 0, "serve -online: minimum feedback-window size before a shadow retrain (0: default 256)")

	switch cmd {
	case "list", "characterize", "predict", "run", "sweep", "phased", "explain", "batch", "serve":
	default:
		usage(stderr)
		return 2
	}
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}

	if cmd == "list" {
		fmt.Fprintln(stdout, "benchmarks:")
		for _, b := range heteromap.Benchmarks() {
			fmt.Fprintf(stdout, "  %-12s weights=%v undirected=%v\n", b.Name, b.NeedsWeights, b.NeedsUndirected)
		}
		fmt.Fprintln(stdout, "datasets:")
		for _, d := range heteromap.Datasets(*large) {
			fmt.Fprintf(stdout, "  %-5s %s\n", d.Short, d)
		}
		return 0
	}

	opts := systemOptions{
		predictor: *predictor, dbPath: *dbPath, energy: *energy,
		large: *large, bench: *bench, input: *input,
		edgeList: *edgeList, directed: *directed,
	}

	if cmd == "serve" {
		var err error
		if *peers != "" {
			err = runRouter(routerOptions{
				addr: *addr, peers: *peers, replicas: *replicas,
				probeInterval: *probeInterval, hedgeAfter: *hedgeAfter,
				chaosServe: *chaosServe, chaosSeed: *chaosSeed,
				sloAvailability: *sloAvailability, sloP99: *sloP99,
				sloFastWindow: *sloFastWindow, sloSlowWindow: *sloSlowWindow,
				traceSample: *traceSample,
			}, stdout)
		} else {
			err = runServe(opts, serveOptions{
				addr: *addr, cacheSize: *cacheSize, workers: *workers,
				maxBatch: *maxBatch, maxWait: *maxWait, queueSize: *queueSize,
				canarySet: *canarySet, reloadSLO: *reloadSLO,
				chaosServe: *chaosServe, chaosSeed: *chaosSeed,
				stageBudget: *stageBudget, debugAddr: *debugAddr,
				traceSample: *traceSample,
				sloAvailability: *sloAvailability, sloP99: *sloP99,
				sloFastWindow: *sloFastWindow, sloSlowWindow: *sloSlowWindow,
				cluster:     *clusterMode, drainGrace: *drainGrace,
				online:      *onlineMode, driftWindow: *driftWindow,
				driftThreshold: *driftThreshold, uncertaintyFloor: *uncertaintyFloor,
				shadowDir: *shadowDir, probeCap: *probeCap, retrainMin: *retrainMin,
				durableDir: *durableDir, snapshotInterval: *snapshotInterval,
				windowFlush: *windowFlush, windowPath: *windowPath,
			}, stdout, stderr)
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	if cmd == "batch" {
		if err := runBatch(opts, *chaos, *chaosRate, *chaosSeed, stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	sys, workload, err := buildSystem(opts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var tracer *heteromap.Tracer
	if *trace && cmd == "run" {
		// SampleRate 1 retains every trace: a CLI run produces exactly
		// one, and the user explicitly asked to see it.
		tracer = heteromap.NewTracer(heteromap.TracerOptions{SampleRate: 1})
		sys.WithTracer(tracer)
	}

	switch cmd {
	case "characterize":
		fmt.Fprintf(stdout, "features: %s\n", workload.Features)
		fmt.Fprintf(stdout, "derived B (from instrumentation): %s\n", workload.DerivedB)
		fmt.Fprintln(stdout, workload.Work)
		fmt.Fprintf(stdout, "result checksum=%.6g iterations=%d visited=%d\n",
			workload.Result.Checksum, workload.Result.Iterations, workload.Result.Visited)

	case "predict":
		m := sys.Predictor().Predict(workload.Features)
		fmt.Fprintf(stdout, "predicted M: %s\n\n", m)
		for _, line := range m.Describe(sys.Pair().Limits()) {
			fmt.Fprintln(stdout, line)
		}

	case "run":
		var rep heteromap.RunReport
		if *chaos {
			inj := heteromap.NewChaosInjector(*chaosSeed, *chaosRate)
			rep = sys.RunResilient(workload, inj, heteromap.DefaultFaultPolicy())
		} else {
			rep = sys.Run(workload)
		}
		bl := sys.Baselines(workload)
		fmt.Fprintf(stdout, "combination     : %s\n", workload.Name())
		fmt.Fprintf(stdout, "chosen          : %s (%s)\n", rep.Chosen.Accelerator, rep.Chosen)
		fmt.Fprintf(stdout, "predictor used  : %s\n", rep.PredictorUsed)
		fmt.Fprintf(stdout, "completion time : %.6gs (+%.3gms predictor overhead)\n",
			rep.TotalSeconds-rep.PredictOverhead.Seconds(),
			float64(rep.PredictOverhead.Microseconds())/1000)
		fmt.Fprintf(stdout, "energy          : %.6g J\n", rep.Machine.EnergyJ)
		fmt.Fprintf(stdout, "utilization     : %.1f%%\n", rep.Machine.Utilization*100)
		if *chaos {
			fmt.Fprintf(stdout, "chaos           : rate %.2g seed %d\n", *chaosRate, *chaosSeed)
			fmt.Fprintf(stdout, "attempts        : %d (%d retries, failover=%v, completed=%v)\n",
				rep.Attempts, rep.Retries, rep.FailedOver, rep.Completed)
			fmt.Fprintf(stdout, "fault overhead  : %.4gs backoff, %.4gs migration\n",
				rep.BackoffSeconds, rep.MigrationSeconds)
			for _, e := range rep.FaultEvents {
				fmt.Fprintf(stdout, "  fault: %s\n", e)
			}
		}
		for _, e := range rep.FallbackEvents {
			fmt.Fprintf(stdout, "  predictor fallback: %s\n", e)
		}
		if tracer != nil {
			fmt.Fprintf(stdout, "trace           : %s\n", rep.TraceID)
			printTrace(stdout, tracer, rep.TraceID)
		}
		fmt.Fprintf(stdout, "GPU-only        : %.6gs (%s)\n", bl.GPUOnly.Seconds, bl.GPUOnlyM)
		fmt.Fprintf(stdout, "multicore-only  : %.6gs (%s)\n", bl.MulticoreOnly.Seconds, bl.MulticoreM)
		fmt.Fprintf(stdout, "ideal           : %.6gs (%s)\n", bl.Ideal.Seconds, bl.IdealM)

	case "phased":
		plan := sys.PlanPhased(workload)
		fmt.Fprintf(stdout, "combination : %s\n", workload.Name())
		fmt.Fprintf(stdout, "phased plan : %s\n", plan)
		if plan.Split() {
			fmt.Fprintf(stdout, "transfers   : %d per iteration, %.4gs total\n",
				plan.Transfers, plan.TransferSeconds)
		} else {
			fmt.Fprintln(stdout, "(the planner collapsed to a single accelerator: migration does not pay)")
		}

	case "explain":
		m := sys.Predictor().Predict(workload.Features)
		rep := sys.Pair().Select(m.Accelerator).Evaluate(workload.Job, m)
		bd := rep.Breakdown
		fmt.Fprintf(stdout, "combination : %s\n", workload.Name())
		fmt.Fprintf(stdout, "deployed    : %s\n", m)
		fmt.Fprintf(stdout, "total       : %.6gs on %s (threads=%d, util %.1f%%)\n",
			rep.Seconds, rep.Accel, rep.Threads, rep.Utilization*100)
		fmt.Fprintln(stdout, "time breakdown:")
		for _, term := range []struct {
			name string
			sec  float64
		}{
			{"dependency chains", bd.Chain},
			{"scalar compute", bd.Compute},
			{"floating point", bd.FP},
			{"memory (exposed)", bd.Memory},
			{"atomics", bd.Atomics},
			{"barriers", bd.Barriers},
			{"push/pop queues", bd.PushPop},
		} {
			fmt.Fprintf(stdout, "  %-18s %10.4gs\n", term.name, term.sec)
		}
		fmt.Fprintf(stdout, "  %-18s %10.3fx\n", "soft-knob factor", bd.KnobFactor)
		fmt.Fprintf(stdout, "  %-18s %10d (x%.2f streaming)\n", "memory chunks", bd.Chunks, bd.ChunkFactor)

	case "sweep":
		pair := sys.Pair()
		limits := pair.Limits()
		for _, accel := range []config.Accel{config.GPU, config.Multicore} {
			cands := config.EnumerateFor(accel, limits)
			scores := tune.EvaluateAll(cands, func(m config.M) float64 {
				return pair.Select(m.Accelerator).Evaluate(workload.Job, m).Seconds
			})
			best := 0
			for i := range scores {
				if scores[i] < scores[best] {
					best = i
				}
			}
			fmt.Fprintf(stdout, "%-10s best %.6gs with %s (%d candidates)\n",
				accel, scores[best], cands[best], len(cands))
		}
	}
	return 0
}

// systemOptions collects the flags that shape the scheduled run.
type systemOptions struct {
	predictor, dbPath string
	energy, large     bool
	bench, input      string
	edgeList          string
	directed          bool
}

// serveOptions collects the serving-pipeline flags.
type serveOptions struct {
	addr        string
	cacheSize   int
	workers     int
	maxBatch    int
	maxWait     time.Duration
	queueSize   int
	canarySet   string
	reloadSLO   time.Duration
	chaosServe  bool
	chaosSeed   int64
	stageBudget time.Duration
	debugAddr   string
	traceSample float64
	cluster     bool
	drainGrace  time.Duration

	sloAvailability float64
	sloP99          time.Duration
	sloFastWindow   time.Duration
	sloSlowWindow   time.Duration

	online           bool
	driftWindow      int
	driftThreshold   float64
	uncertaintyFloor float64
	shadowDir        string
	probeCap         int
	retrainMin       int

	durableDir       string
	snapshotInterval time.Duration
	windowFlush      time.Duration
	windowPath       string
}

// routerOptions collects the cluster-router flags.
type routerOptions struct {
	addr          string
	peers         string
	replicas      int
	probeInterval time.Duration
	hedgeAfter    time.Duration
	chaosServe    bool
	chaosSeed     int64

	sloAvailability float64
	sloP99          time.Duration
	sloFastWindow   time.Duration
	sloSlowWindow   time.Duration
	traceSample     float64
}

// newSLOFromFlags builds the SLO tracker the flags describe; both
// objectives unset means SLO tracking is disabled (nil).
func newSLOFromFlags(avail float64, p99, fast, slow time.Duration) *obs.SLO {
	if avail <= 0 && p99 <= 0 {
		return nil
	}
	return obs.NewSLO(obs.SLOOptions{
		Availability: avail,
		P99Latency:   p99,
		FastWindow:   fast,
		SlowWindow:   slow,
	})
}

// printTrace renders the retained span timeline of one CLI run.
func printTrace(stdout io.Writer, tracer *heteromap.Tracer, id string) {
	for _, rec := range tracer.Ring().Snapshot(obs.TraceFilter{}) {
		if rec.ID != id {
			continue
		}
		for _, sp := range rec.Spans {
			fmt.Fprintf(stdout, "  span %-16s +%8.0fµs %8.0fµs %s\n",
				sp.Name, sp.OffsetUS, sp.DurationUS, sp.Outcome)
		}
	}
}

// runServe assembles the registry the flags describe and serves until
// SIGINT/SIGTERM.
func runServe(o systemOptions, so serveOptions, stdout, stderr io.Writer) error {
	pair := heteromap.PrimaryPair()
	reg := serve.NewRegistry(pair)

	// The analytical decision tree is always registered: it needs no
	// training, so the service can come up instantly and every other
	// model degrades onto it through the fallback chain.
	if _, err := reg.Register("tree", "builtin decision tree", heteromap.NewDecisionTree(pair)); err != nil {
		return err
	}
	switch o.predictor {
	case "tree":
	case "deep":
		fmt.Fprintln(stdout, "training deep predictor (fast configuration)...")
		pred, err := newPredictor(o, pair)
		if err != nil {
			return err
		}
		if _, err := reg.Register("deep", "Deep.128 trained at startup", pred); err != nil {
			return err
		}
		if err := reg.SetDefault("deep"); err != nil {
			return err
		}
	case "db":
		if o.dbPath == "" {
			return fmt.Errorf("-predictor db requires -db <file> (write one with hmtrain -out)")
		}
		if _, err := reg.ReloadDB("db", o.dbPath); err != nil {
			return err
		}
		if err := reg.SetDefault("db"); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown predictor %q (want tree, deep, or db)", o.predictor)
	}

	// Canary gate for /v1/reload: load the golden set from disk, or
	// record one against the default model so reloads are validated from
	// the first request even with no file given.
	canary := &serve.CanaryConfig{MaxLatency: so.reloadSLO}
	if so.canarySet != "" {
		cases, err := serve.LoadGoldenSet(so.canarySet)
		if err != nil {
			return err
		}
		canary.Cases = cases
		fmt.Fprintf(stdout, "canary: %d golden cases from %s (slo %v)\n",
			len(cases), so.canarySet, so.reloadSLO)
	} else {
		ref, err := reg.Get("")
		if err != nil {
			return err
		}
		cases, err := serve.RecordGoldenSet(ref, serve.DefaultGoldenRequests(32, 1), 0)
		if err != nil {
			return err
		}
		// Recorded answers pin the default model's behaviour; a reload
		// may legitimately improve on it, so gate on validity and
		// latency but tolerate strict-answer drift.
		canary.Cases = cases
		canary.MaxMismatches = len(cases)
		fmt.Fprintf(stdout, "canary: recorded %d golden cases from model %q (slo %v)\n",
			len(cases), defaultModelName(reg), so.reloadSLO)
	}

	var injector *fault.ServeInjector
	if so.chaosServe {
		injector = fault.NewServeInjector(so.chaosSeed)
		fmt.Fprintf(stdout, "chaos: serve injector armed (seed %d); drive it via POST /v1/chaos\n", so.chaosSeed)
	}

	var tracer *obs.Tracer
	if so.traceSample != 0 {
		tracer = obs.NewTracer(obs.Options{SampleRate: so.traceSample})
	}

	// The online manager closes the loop for the default model family:
	// serve.New binds its promotion path to the registry's validated
	// reload, so a shadow retrain clears the same canary gate as a
	// hand-triggered /v1/reload.
	var mgr *online.Manager
	if so.online {
		obj := train.Performance
		if o.energy {
			obj = train.Energy
		}
		flushPath := so.windowPath
		if so.windowFlush > 0 && flushPath == "" {
			if so.durableDir == "" {
				return fmt.Errorf("-window-flush needs -window-path or -durable-dir")
			}
			flushPath = filepath.Join(so.durableDir, "online", "window.db")
		}
		oopts := online.Options{
			Pair:             pair,
			Objective:        obj,
			Model:            defaultModelName(reg),
			DriftWindow:      so.driftWindow,
			DriftThreshold:   so.driftThreshold,
			UncertaintyFloor: so.uncertaintyFloor,
			ShadowDir:        so.shadowDir,
			ProbeCap:         so.probeCap,
			RetrainMin:       so.retrainMin,
			Tracer:           tracer,
			WindowFlushEvery: so.windowFlush,
			WindowFlushPath:  flushPath,
		}
		if so.durableDir != "" {
			// Feedback WAL + window snapshots: the learning state a crash
			// would otherwise erase replays at the next startup.
			oopts.DurableDir = filepath.Join(so.durableDir, "online")
		}
		mgr = online.New(oopts)
		if oopts.DurableDir != "" {
			ds := mgr.DurableStats()
			fmt.Fprintf(stdout, "durable: online recovery — snapshot_restored=%v wal_replayed=%d corrupt=%d quarantined=%d\n",
				ds.SnapshotRestored, ds.Replayed, ds.CorruptRecords, ds.Quarantines)
		}
	}

	sopts := serve.Options{
		Addr:        so.addr,
		Pair:        pair,
		Registry:    reg,
		Tracer:      tracer,
		CacheSize:   so.cacheSize,
		Workers:     so.workers,
		MaxBatch:    so.maxBatch,
		MaxWait:     so.maxWait,
		QueueSize:   so.queueSize,
		StageBudget: so.stageBudget,
		Canary:      canary,
		Chaos:       injector,
		Online:      mgr,
		SLO:         newSLOFromFlags(so.sloAvailability, so.sloP99, so.sloFastWindow, so.sloSlowWindow),
	}
	if sopts.SLO != nil {
		fmt.Fprintf(stdout, "slo: burn-rate engine armed (availability %g, p99 %v); snapshot at /v1/slo\n",
			so.sloAvailability, so.sloP99)
	}
	if so.durableDir != "" {
		sopts.DurableDir = filepath.Join(so.durableDir, "serve")
		sopts.CacheSnapshotEvery = so.snapshotInterval
	}
	srv := serve.New(sopts)
	if so.durableDir != "" {
		// Every model is registered by now, so the recovery ladder can
		// restamp them above the restored version floor and readmit the
		// persisted cache before the listener opens.
		ds := srv.RecoverDurable()
		fmt.Fprintf(stdout, "durable: serve recovery — snapshot_restored=%v cache_restored=%d version_floor=%d restamped=%d\n",
			ds.SnapshotRestored, ds.CacheRestored, ds.VersionFloor, ds.Restamped)
	}
	if mgr != nil {
		// serve.New bound the promotion and live-choice hooks; only now
		// may the background collector run.
		mgr.Start()
		defer mgr.Stop()
		retrain := "detect-only (no -shadow-dir)"
		if so.shadowDir != "" {
			retrain = "shadow retraining to " + so.shadowDir
		}
		fmt.Fprintf(stdout, "online: learning loop on model %q, %s; snapshot at /v1/online\n",
			mgr.Model(), retrain)
	}

	if so.debugAddr != "" {
		// The debug surface (pprof + trace ring) listens separately so it
		// can stay firewalled off from the serving address.
		dbg := &http.Server{Addr: so.debugAddr, Handler: srv.DebugHandler()}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(stderr, "debug listener: %v\n", err)
			}
		}()
		defer dbg.Close()
		fmt.Fprintf(stdout, "debug surface on http://%s/debug/pprof and /debug/traces\n", so.debugAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Start() }()

	fmt.Fprintf(stdout, "serving on http://%s (default model %q)\n", so.addr, defaultModelName(reg))
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		if so.cluster {
			// Cluster drain protocol: announce first (healthz flips to
			// "draining" so routers deregister this node from their
			// rings), keep serving through the grace window, then stop.
			// The two-step exit is what makes a planned node shutdown
			// produce zero 5xx cluster-wide.
			fmt.Fprintf(stdout, "received %s, announcing drain (grace %v)...\n", s, so.drainGrace)
			srv.BeginDrain()
			time.Sleep(so.drainGrace)
		} else {
			fmt.Fprintf(stdout, "received %s, draining...\n", s)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-errCh
	}
}

// runRouter runs the cluster front-end: consistent-hash routing over the
// given peers with failover, hedging and health-probe membership.
func runRouter(ro routerOptions, stdout io.Writer) error {
	peerList := strings.Split(ro.peers, ",")
	for i := range peerList {
		peerList[i] = strings.TrimSpace(peerList[i])
	}
	var injector *fault.ServeInjector
	if ro.chaosServe {
		injector = fault.NewServeInjector(ro.chaosSeed)
		fmt.Fprintf(stdout, "chaos: router injector armed (seed %d); drive it via POST /v1/chaos\n", ro.chaosSeed)
	}
	slo := newSLOFromFlags(ro.sloAvailability, ro.sloP99, ro.sloFastWindow, ro.sloSlowWindow)
	var tracer *obs.Tracer
	if ro.traceSample != 0 {
		tracer = obs.NewTracer(obs.Options{SampleRate: ro.traceSample})
	}
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Addr:          ro.addr,
		Peers:         peerList,
		Replicas:      ro.replicas,
		ProbeInterval: ro.probeInterval,
		HedgeAfter:    ro.hedgeAfter,
		Chaos:         injector,
		SLO:           slo,
		Tracer:        tracer,
	})
	if err != nil {
		return err
	}
	if slo != nil {
		fmt.Fprintf(stdout, "slo: burn-rate engine armed (availability %g, p99 %v); snapshot at /v1/slo, hedging tightens on budget exhaustion\n",
			ro.sloAvailability, ro.sloP99)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- rt.Start() }()

	fmt.Fprintf(stdout, "routing on http://%s over %d peers (replicas %d, probe %v, hedge %v)\n",
		ro.addr, len(peerList), ro.replicas, ro.probeInterval, ro.hedgeAfter)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(stdout, "received %s, stopping router...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			return err
		}
		return <-errCh
	}
}

// defaultModelName reads the registry's default entry for the banner.
func defaultModelName(reg *serve.Registry) string {
	for _, m := range reg.List() {
		if m.Default {
			return m.Name
		}
	}
	return ""
}

// newPredictor constructs the predictor the flags ask for.
func newPredictor(o systemOptions, pair heteromap.Pair) (heteromap.Predictor, error) {
	switch o.predictor {
	case "tree":
		return heteromap.NewDecisionTree(pair), nil
	case "db":
		if o.dbPath == "" {
			return nil, fmt.Errorf("-predictor db requires -db <file> (write one with hmtrain -out)")
		}
		f, err := os.Open(o.dbPath)
		if err != nil {
			return nil, err
		}
		db, err := train.LoadDB(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		return train.NewLookupPredictor(db), nil
	case "deep":
		deep := heteromap.NewDeepPredictor(pair, 128)
		cfg := heteromap.FastTraining()
		cfg.Objective = core.Energy
		if !o.energy {
			cfg.Objective = core.Performance
		}
		db := heteromap.BuildTrainingDB(pair, cfg)
		if err := deep.Train(db.Samples); err != nil {
			return nil, err
		}
		return deep, nil
	default:
		return nil, fmt.Errorf("unknown predictor %q (want tree, deep, or db)", o.predictor)
	}
}

// newSystem assembles the runtime the flags describe, with the decision
// tree installed as a predictor fallback when it is not already primary.
func newSystem(o systemOptions) (*heteromap.System, error) {
	pair := heteromap.PrimaryPair()
	obj := heteromap.Performance
	if o.energy {
		obj = heteromap.Energy
	}
	pred, err := newPredictor(o, pair)
	if err != nil {
		return nil, err
	}
	sys := heteromap.NewSystem(pair, pred, obj)
	if o.predictor != "tree" {
		sys.WithFallbacks(heteromap.NewDecisionTree(pair))
	}
	return sys, nil
}

// resolveDataset picks the catalog dataset or loads the user edge list.
func resolveDataset(o systemOptions) (*heteromap.Dataset, error) {
	if o.edgeList != "" {
		return heteromap.LoadEdgeListFile(o.edgeList, !o.directed)
	}
	return heteromap.DatasetByName(heteromap.Datasets(o.large), o.input)
}

func buildSystem(o systemOptions) (*heteromap.System, *heteromap.Workload, error) {
	sys, err := newSystem(o)
	if err != nil {
		return nil, nil, err
	}
	b, err := heteromap.BenchmarkByName(o.bench)
	if err != nil {
		return nil, nil, err
	}
	ds, err := resolveDataset(o)
	if err != nil {
		return nil, nil, err
	}
	w, err := sys.Characterize(b, ds)
	if err != nil {
		return nil, nil, err
	}
	return sys, w, nil
}

// runBatch schedules every benchmark on one dataset and prints the batch
// strategy comparison; under -chaos it adds the failure-aware plan.
func runBatch(o systemOptions, chaos bool, rate float64, seed int64, stdout io.Writer) error {
	sys, err := newSystem(o)
	if err != nil {
		return err
	}
	ds, err := resolveDataset(o)
	if err != nil {
		return err
	}
	var ws []*core.Workload
	for _, b := range heteromap.Benchmarks() {
		w, err := sys.Characterize(b, ds)
		if err != nil {
			return err
		}
		ws = append(ws, w)
	}
	fmt.Fprintf(stdout, "batch: %d benchmarks on %s\n", len(ws), ds.Short)
	pair, pred := sys.Pair(), sys.Predictor()
	for _, plan := range sched.Compare(pair, pred, ws) {
		fmt.Fprintln(stdout, plan)
	}
	if chaos {
		inj := heteromap.NewChaosInjector(seed, rate)
		plan := sched.AssignResilient(pair, pred, ws, inj, heteromap.DefaultFaultPolicy())
		fmt.Fprintf(stdout, "%s (chaos rate %.2g, seed %d)\n", plan, rate, seed)
		if plan.Incomplete > 0 {
			return fmt.Errorf("batch lost %d jobs under chaos", plan.Incomplete)
		}
	}
	return nil
}

func usage(stderr io.Writer) {
	fmt.Fprintln(stderr, `usage: heteromap <characterize|predict|run|batch|sweep|phased|explain|serve|list> [flags]
run "heteromap <cmd> -h" for flags`)
}
