// Command heteromap is the interactive front end of the reproduction:
//
//	heteromap characterize -bench BFS -input FB
//	    print the (B, I) characterization and measured work profile
//	heteromap predict -bench BFS -input FB [-predictor tree|deep]
//	    print the predicted machine choices
//	heteromap run -bench BFS -input FB [-predictor tree|deep] [-energy]
//	    schedule the combination and report time/energy/utilization
//	    against the GPU-only, multicore-only and ideal baselines
//	heteromap sweep -bench BFS -input FB
//	    print the per-accelerator tuning sweep (Fig 1 style)
//	heteromap phased -bench SSSP-Delta -input CA
//	    plan phase-level temporal scheduling (the paper's future work)
//	heteromap run -bench SSSP-BF -edgelist my_graph.txt
//	    schedule a user-supplied edge-list graph
//	heteromap run -bench BFS -input FB -chaos -chaos-rate 0.3
//	    schedule under injected accelerator faults: transient failures
//	    are retried with capped exponential backoff and failed over to
//	    the other accelerator, all charged into the completion time
//	heteromap batch -input FB [-chaos]
//	    schedule every benchmark on one dataset and compare the batch
//	    strategies (HeteroMap, LPT-balanced, single-accelerator; plus
//	    the failure-aware plan under -chaos)
//	heteromap explain -bench BFS -input FB
//	    show where the simulated time of the predicted deployment goes
//	heteromap list
//	    list benchmarks and datasets
package main

import (
	"flag"
	"fmt"
	"os"

	"heteromap"
	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/sched"
	"heteromap/internal/train"
	"heteromap/internal/tune"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	bench := fs.String("bench", "BFS", "benchmark name (see `heteromap list`)")
	input := fs.String("input", "FB", "dataset short name (see `heteromap list`)")
	predictor := fs.String("predictor", "tree", "predictor: tree, deep, or db")
	dbPath := fs.String("db", "", "profiler database file for -predictor db (written by hmtrain -out)")
	energy := fs.Bool("energy", false, "optimize energy instead of performance")
	large := fs.Bool("large", false, "use the larger generated analogs")
	edgeList := fs.String("edgelist", "", "characterize a user edge-list file instead of a catalog dataset")
	directed := fs.Bool("directed", false, "treat the -edgelist file as directed (default: mirror edges)")
	chaos := fs.Bool("chaos", false, "inject accelerator faults and schedule resiliently")
	chaosRate := fs.Float64("chaos-rate", 0.1, "fault rate for -chaos: transient failure probability, plus scaled slowdown and memory loss")
	chaosSeed := fs.Int64("chaos-seed", 42, "deterministic seed for -chaos fault injection")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	switch cmd {
	case "list":
		fmt.Println("benchmarks:")
		for _, b := range heteromap.Benchmarks() {
			fmt.Printf("  %-12s weights=%v undirected=%v\n", b.Name, b.NeedsWeights, b.NeedsUndirected)
		}
		fmt.Println("datasets:")
		for _, d := range heteromap.Datasets(*large) {
			fmt.Printf("  %-5s %s\n", d.Short, d)
		}
		return
	case "characterize", "predict", "run", "sweep", "phased", "explain", "batch":
	default:
		usage()
		os.Exit(2)
	}

	opts := systemOptions{
		predictor: *predictor, dbPath: *dbPath, energy: *energy,
		large: *large, bench: *bench, input: *input,
		edgeList: *edgeList, directed: *directed,
	}

	if cmd == "batch" {
		if err := runBatch(opts, *chaos, *chaosRate, *chaosSeed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	sys, workload, err := buildSystem(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch cmd {
	case "characterize":
		fmt.Printf("features: %s\n", workload.Features)
		fmt.Printf("derived B (from instrumentation): %s\n", workload.DerivedB)
		fmt.Println(workload.Work)
		fmt.Printf("result checksum=%.6g iterations=%d visited=%d\n",
			workload.Result.Checksum, workload.Result.Iterations, workload.Result.Visited)

	case "predict":
		m := sys.Predictor().Predict(workload.Features)
		fmt.Printf("predicted M: %s\n\n", m)
		for _, line := range m.Describe(sys.Pair().Limits()) {
			fmt.Println(line)
		}

	case "run":
		var rep heteromap.RunReport
		if *chaos {
			inj := heteromap.NewChaosInjector(*chaosSeed, *chaosRate)
			rep = sys.RunResilient(workload, inj, heteromap.DefaultFaultPolicy())
		} else {
			rep = sys.Run(workload)
		}
		bl := sys.Baselines(workload)
		fmt.Printf("combination     : %s\n", workload.Name())
		fmt.Printf("chosen          : %s (%s)\n", rep.Chosen.Accelerator, rep.Chosen)
		fmt.Printf("predictor used  : %s\n", rep.PredictorUsed)
		fmt.Printf("completion time : %.6gs (+%.3gms predictor overhead)\n",
			rep.TotalSeconds-rep.PredictOverhead.Seconds(),
			float64(rep.PredictOverhead.Microseconds())/1000)
		fmt.Printf("energy          : %.6g J\n", rep.Machine.EnergyJ)
		fmt.Printf("utilization     : %.1f%%\n", rep.Machine.Utilization*100)
		if *chaos {
			fmt.Printf("chaos           : rate %.2g seed %d\n", *chaosRate, *chaosSeed)
			fmt.Printf("attempts        : %d (%d retries, failover=%v, completed=%v)\n",
				rep.Attempts, rep.Retries, rep.FailedOver, rep.Completed)
			fmt.Printf("fault overhead  : %.4gs backoff, %.4gs migration\n",
				rep.BackoffSeconds, rep.MigrationSeconds)
			for _, e := range rep.FaultEvents {
				fmt.Printf("  fault: %s\n", e)
			}
		}
		for _, e := range rep.FallbackEvents {
			fmt.Printf("  predictor fallback: %s\n", e)
		}
		fmt.Printf("GPU-only        : %.6gs (%s)\n", bl.GPUOnly.Seconds, bl.GPUOnlyM)
		fmt.Printf("multicore-only  : %.6gs (%s)\n", bl.MulticoreOnly.Seconds, bl.MulticoreM)
		fmt.Printf("ideal           : %.6gs (%s)\n", bl.Ideal.Seconds, bl.IdealM)

	case "phased":
		plan := sys.PlanPhased(workload)
		fmt.Printf("combination : %s\n", workload.Name())
		fmt.Printf("phased plan : %s\n", plan)
		if plan.Split() {
			fmt.Printf("transfers   : %d per iteration, %.4gs total\n",
				plan.Transfers, plan.TransferSeconds)
		} else {
			fmt.Println("(the planner collapsed to a single accelerator: migration does not pay)")
		}

	case "explain":
		m := sys.Predictor().Predict(workload.Features)
		rep := sys.Pair().Select(m.Accelerator).Evaluate(workload.Job, m)
		bd := rep.Breakdown
		fmt.Printf("combination : %s\n", workload.Name())
		fmt.Printf("deployed    : %s\n", m)
		fmt.Printf("total       : %.6gs on %s (threads=%d, util %.1f%%)\n",
			rep.Seconds, rep.Accel, rep.Threads, rep.Utilization*100)
		fmt.Println("time breakdown:")
		for _, term := range []struct {
			name string
			sec  float64
		}{
			{"dependency chains", bd.Chain},
			{"scalar compute", bd.Compute},
			{"floating point", bd.FP},
			{"memory (exposed)", bd.Memory},
			{"atomics", bd.Atomics},
			{"barriers", bd.Barriers},
			{"push/pop queues", bd.PushPop},
		} {
			fmt.Printf("  %-18s %10.4gs\n", term.name, term.sec)
		}
		fmt.Printf("  %-18s %10.3fx\n", "soft-knob factor", bd.KnobFactor)
		fmt.Printf("  %-18s %10d (x%.2f streaming)\n", "memory chunks", bd.Chunks, bd.ChunkFactor)

	case "sweep":
		pair := sys.Pair()
		limits := pair.Limits()
		for _, accel := range []config.Accel{config.GPU, config.Multicore} {
			cands := config.EnumerateFor(accel, limits)
			scores := tune.EvaluateAll(cands, func(m config.M) float64 {
				return pair.Select(m.Accelerator).Evaluate(workload.Job, m).Seconds
			})
			best := 0
			for i := range scores {
				if scores[i] < scores[best] {
					best = i
				}
			}
			fmt.Printf("%-10s best %.6gs with %s (%d candidates)\n",
				accel, scores[best], cands[best], len(cands))
		}
	}
}

// systemOptions collects the flags that shape the scheduled run.
type systemOptions struct {
	predictor, dbPath string
	energy, large     bool
	bench, input      string
	edgeList          string
	directed          bool
}

// newPredictor constructs the predictor the flags ask for.
func newPredictor(o systemOptions, pair heteromap.Pair) (heteromap.Predictor, error) {
	switch o.predictor {
	case "tree":
		return heteromap.NewDecisionTree(pair), nil
	case "db":
		if o.dbPath == "" {
			return nil, fmt.Errorf("-predictor db requires -db <file> (write one with hmtrain -out)")
		}
		f, err := os.Open(o.dbPath)
		if err != nil {
			return nil, err
		}
		db, err := train.LoadDB(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		return train.NewLookupPredictor(db), nil
	case "deep":
		deep := heteromap.NewDeepPredictor(pair, 128)
		cfg := heteromap.FastTraining()
		cfg.Objective = core.Energy
		if !o.energy {
			cfg.Objective = core.Performance
		}
		db := heteromap.BuildTrainingDB(pair, cfg)
		if err := deep.Train(db.Samples); err != nil {
			return nil, err
		}
		return deep, nil
	default:
		return nil, fmt.Errorf("unknown predictor %q (want tree, deep, or db)", o.predictor)
	}
}

// newSystem assembles the runtime the flags describe, with the decision
// tree installed as a predictor fallback when it is not already primary.
func newSystem(o systemOptions) (*heteromap.System, error) {
	pair := heteromap.PrimaryPair()
	obj := heteromap.Performance
	if o.energy {
		obj = heteromap.Energy
	}
	pred, err := newPredictor(o, pair)
	if err != nil {
		return nil, err
	}
	sys := heteromap.NewSystem(pair, pred, obj)
	if o.predictor != "tree" {
		sys.WithFallbacks(heteromap.NewDecisionTree(pair))
	}
	return sys, nil
}

// resolveDataset picks the catalog dataset or loads the user edge list.
func resolveDataset(o systemOptions) (*heteromap.Dataset, error) {
	if o.edgeList != "" {
		return heteromap.LoadEdgeListFile(o.edgeList, !o.directed)
	}
	return heteromap.DatasetByName(heteromap.Datasets(o.large), o.input)
}

func buildSystem(o systemOptions) (*heteromap.System, *heteromap.Workload, error) {
	sys, err := newSystem(o)
	if err != nil {
		return nil, nil, err
	}
	b, err := heteromap.BenchmarkByName(o.bench)
	if err != nil {
		return nil, nil, err
	}
	ds, err := resolveDataset(o)
	if err != nil {
		return nil, nil, err
	}
	w, err := sys.Characterize(b, ds)
	if err != nil {
		return nil, nil, err
	}
	return sys, w, nil
}

// runBatch schedules every benchmark on one dataset and prints the batch
// strategy comparison; under -chaos it adds the failure-aware plan.
func runBatch(o systemOptions, chaos bool, rate float64, seed int64) error {
	sys, err := newSystem(o)
	if err != nil {
		return err
	}
	ds, err := resolveDataset(o)
	if err != nil {
		return err
	}
	var ws []*core.Workload
	for _, b := range heteromap.Benchmarks() {
		w, err := sys.Characterize(b, ds)
		if err != nil {
			return err
		}
		ws = append(ws, w)
	}
	fmt.Printf("batch: %d benchmarks on %s\n", len(ws), ds.Short)
	pair, pred := sys.Pair(), sys.Predictor()
	for _, plan := range sched.Compare(pair, pred, ws) {
		fmt.Println(plan)
	}
	if chaos {
		inj := heteromap.NewChaosInjector(seed, rate)
		plan := sched.AssignResilient(pair, pred, ws, inj, heteromap.DefaultFaultPolicy())
		fmt.Printf("%s (chaos rate %.2g, seed %d)\n", plan, rate, seed)
		if plan.Incomplete > 0 {
			return fmt.Errorf("batch lost %d jobs under chaos", plan.Incomplete)
		}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: heteromap <characterize|predict|run|batch|sweep|phased|explain|list> [flags]
run "heteromap <cmd> -h" for flags`)
}
