package main

import (
	"bytes"
	"strings"
	"testing"
)

// run must report failure through its exit code — usage errors as 2,
// validation/runtime errors as 1 — never by success-with-an-error-line.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantOut  string // substring of stdout when wantCode == 0
		wantErr  string // substring of stderr when wantCode != 0
	}{
		{
			name:     "no args",
			args:     nil,
			wantCode: 2,
			wantErr:  "usage:",
		},
		{
			name:     "unknown command",
			args:     []string{"frobnicate"},
			wantCode: 2,
			wantErr:  "usage:",
		},
		{
			name:     "bad flag",
			args:     []string{"predict", "-no-such-flag"},
			wantCode: 2,
			wantErr:  "flag provided but not defined",
		},
		{
			name:     "unknown benchmark",
			args:     []string{"predict", "-bench", "NOPE", "-input", "CA"},
			wantCode: 1,
			wantErr:  "unknown benchmark",
		},
		{
			name:     "unknown dataset",
			args:     []string{"predict", "-bench", "BFS", "-input", "NOPE"},
			wantCode: 1,
			wantErr:  "unknown dataset",
		},
		{
			name:     "unknown predictor",
			args:     []string{"predict", "-bench", "BFS", "-input", "CA", "-predictor", "oracle"},
			wantCode: 1,
			wantErr:  "unknown predictor",
		},
		{
			name:     "db predictor without -db",
			args:     []string{"predict", "-bench", "BFS", "-input", "CA", "-predictor", "db"},
			wantCode: 1,
			wantErr:  "-predictor db requires -db",
		},
		{
			name:     "db predictor with missing file",
			args:     []string{"predict", "-bench", "BFS", "-input", "CA", "-predictor", "db", "-db", "/nonexistent/model.hmdb"},
			wantCode: 1,
			wantErr:  "no such file",
		},
		{
			name:     "missing edge-list file",
			args:     []string{"characterize", "-bench", "BFS", "-edgelist", "/nonexistent/graph.txt"},
			wantCode: 1,
			wantErr:  "no such file",
		},
		{
			name:     "serve with unknown predictor",
			args:     []string{"serve", "-predictor", "oracle"},
			wantCode: 1,
			wantErr:  "unknown predictor",
		},
		{
			name:     "serve db without -db",
			args:     []string{"serve", "-predictor", "db"},
			wantCode: 1,
			wantErr:  "-predictor db requires -db",
		},
		{
			name:     "list",
			args:     []string{"list"},
			wantCode: 0,
			wantOut:  "benchmarks:",
		},
		{
			name:     "predict happy path",
			args:     []string{"predict", "-bench", "BFS", "-input", "CA"},
			wantCode: 0,
			wantOut:  "predicted M:",
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					tc.args, code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Fatalf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
			if code != 0 && stderr.Len() == 0 {
				t.Fatal("failure exit with empty stderr")
			}
		})
	}
}
