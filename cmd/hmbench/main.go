// Command hmbench is the repository's conformance and performance
// runner. It measures the hot paths (feature discretization, machine-
// model evaluation, tree/NN inference, end-to-end serve predictions,
// offline database throughput) and emits a schema-versioned BENCH
// report; with -baseline it gates the run against a committed report
// and fails on regressions; with -oracle it runs the differential
// oracle against the exhaustive sweep and enforces the recorded
// conformance thresholds.
//
// Usage:
//
//	hmbench [-short] [-out BENCH_4.json] [-benchtime 1s] [-targets regex]
//	        [-baseline BENCH_4.json [-max-regress 0.20]]
//	        [-oracle [-oracle-full]] [-no-bench] [-list]
//
// Exit codes: 0 ok, 1 internal error, 2 usage, 3 regression or
// conformance-gate violation.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"heteromap/internal/conformance"
	"heteromap/internal/durable"
	"heteromap/internal/machine"
	"heteromap/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hmbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	short := fs.Bool("short", false, "reduced workloads (CI smoke mode; not comparable to full runs)")
	out := fs.String("out", "BENCH_4.json", "BENCH report output path (empty: skip writing)")
	benchtime := fs.Duration("benchtime", 0, "per-target measurement budget (default 1s, 300ms with -short)")
	targets := fs.String("targets", "", "regexp restricting which targets run")
	baseline := fs.String("baseline", "", "committed BENCH report to gate against")
	maxRegress := fs.Float64("max-regress", 0.20, "relative ns/op and allocs/op growth tolerated vs -baseline")
	oracle := fs.Bool("oracle", false, "also run the differential oracle and enforce the recorded thresholds")
	oracleFull := fs.Bool("oracle-full", false, "use the full oracle configuration (implies -oracle)")
	noBench := fs.Bool("no-bench", false, "skip the perf targets (with -oracle: conformance only)")
	list := fs.Bool("list", false, "list targets and exit")
	debugAddr := fs.String("debug-addr", "", "listen address for the profiling surface (/debug/pprof) while the run executes")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *debugAddr != "" {
		// Live pprof over a long benchmark run; no tracer here, so the
		// mux serves only the profiling endpoints.
		dbg := &http.Server{Addr: *debugAddr, Handler: obs.DebugMux(nil)}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(stderr, "hmbench: debug listener: %v\n", err)
			}
		}()
		defer dbg.Close()
		fmt.Fprintf(stdout, "debug surface on http://%s/debug/pprof\n", *debugAddr)
	}

	all := conformance.BenchTargets(*short)
	if *list {
		for _, t := range all {
			fmt.Fprintf(stdout, "%-22s %s\n", t.Name, t.Doc)
		}
		return 0
	}

	exit := 0
	if *oracle || *oracleFull {
		cfg := conformance.ShortOracleConfig()
		if *oracleFull {
			cfg = conformance.FullOracleConfig()
		}
		rep, err := conformance.RunOracle(machine.PrimaryPair(), cfg)
		if err != nil {
			fmt.Fprintf(stderr, "hmbench: oracle: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, rep.String())
		if err := rep.Gate(conformance.SeedThresholds); err != nil {
			fmt.Fprintf(stderr, "hmbench: conformance gate violated:\n%v\n", err)
			exit = 3
		} else {
			fmt.Fprintln(stdout, "oracle gates: ok")
		}
	}

	if *noBench {
		return exit
	}

	var re *regexp.Regexp
	if *targets != "" {
		var err error
		if re, err = regexp.Compile(*targets); err != nil {
			fmt.Fprintf(stderr, "hmbench: -targets: %v\n", err)
			return 2
		}
	}

	bt := *benchtime
	if bt <= 0 {
		bt = time.Second
		if *short {
			bt = 300 * time.Millisecond
		}
	}
	// testing.Benchmark consults the registered -test.benchtime flag.
	testing.Init()
	if err := flag.Set("test.benchtime", bt.String()); err != nil {
		fmt.Fprintf(stderr, "hmbench: set benchtime: %v\n", err)
		return 1
	}

	report := &conformance.BenchReport{
		SchemaVersion: conformance.BenchSchemaVersion,
		GeneratedBy:   "hmbench",
		UnixTime:      time.Now().Unix(),
		Env: conformance.BenchEnvironment{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Short:      *short,
			Benchtime:  bt.String(),
		},
	}
	for _, t := range all {
		if re != nil && !re.MatchString(t.Name) {
			continue
		}
		res, err := conformance.RunTarget(t)
		if err != nil {
			fmt.Fprintf(stderr, "hmbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "%-22s %12.1f ns/op %8d allocs/op %10d B/op", res.Name,
			res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		for k, v := range res.Metrics {
			fmt.Fprintf(stdout, "  %.1f %s", v, k)
		}
		fmt.Fprintln(stdout)
		report.Results = append(report.Results, res)
	}
	if len(report.Results) == 0 {
		fmt.Fprintf(stderr, "hmbench: no targets matched %q\n", *targets)
		return 2
	}

	if *out != "" {
		// Atomic temp+fsync+rename: a crash mid-write can never leave a
		// torn BENCH report where CI expects the committed baseline.
		err := durable.WriteFileAtomic(*out, "bench", nil, func(w io.Writer) error {
			return conformance.WriteBench(w, report)
		})
		if err != nil {
			fmt.Fprintf(stderr, "hmbench: write %s: %v\n", *out, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d targets)\n", *out, len(report.Results))
	}

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "hmbench: %v\n", err)
			return 1
		}
		base, err := conformance.ReadBench(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "hmbench: %v\n", err)
			return 1
		}
		if base.Env.Short != *short {
			fmt.Fprintf(stderr, "hmbench: baseline short=%v but this run short=%v — not comparable\n",
				base.Env.Short, *short)
			return 2
		}
		regs := conformance.CompareBench(base, report, *maxRegress)
		if len(regs) > 0 {
			fmt.Fprintf(stderr, "hmbench: %d regression(s) vs %s (gate %.0f%%):\n",
				len(regs), *baseline, *maxRegress*100)
			for _, r := range regs {
				fmt.Fprintf(stderr, "  %s\n", r)
			}
			exit = 3
		} else {
			fmt.Fprintf(stdout, "no regressions vs %s (gate %.0f%%)\n", *baseline, *maxRegress*100)
		}
	}
	return exit
}
