package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"heteromap/internal/conformance"
)

// One fast hmbench invocation: restricted targets, tiny benchtime, a
// valid report on disk, and a self-comparison that passes the gate.
func TestRunEmitsValidReportAndSelfCompares(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_4.json")
	var stdout, stderr bytes.Buffer

	code := run([]string{
		"-short", "-benchtime", "10ms",
		"-targets", "^(feature|predict/tree)",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := conformance.ReadBench(f)
	if err != nil {
		t.Fatalf("emitted report invalid: %v", err)
	}
	if rep.SchemaVersion != conformance.BenchSchemaVersion || !rep.Env.Short {
		t.Fatalf("report header wrong: %+v", rep)
	}
	for _, name := range []string{"feature/discretize", "feature/key-roundtrip", "predict/tree"} {
		if rep.Result(name) == nil {
			t.Errorf("report missing target %s", name)
		}
	}
	if rep.Result("train/build-db") != nil {
		t.Error("-targets filter ignored")
	}

	// Gate the same run against its own report: no regressions.
	stdout.Reset()
	stderr.Reset()
	code = run([]string{
		"-short", "-benchtime", "10ms",
		"-targets", "^feature/discretize$",
		"-out", "", "-baseline", out, "-max-regress", "100",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("self-comparison failed (exit %d):\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "no regressions") {
		t.Fatalf("expected gate pass message, got:\n%s", stdout.String())
	}
}

func TestRunFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-short", "-benchtime", "10ms",
		"-targets", "^feature/discretize$", "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, stderr.String())
	}

	// Doctor the baseline to claim the target used to be far faster.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := conformance.ReadBench(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	rep.Results[0].NsPerOp /= 1000
	doctored := filepath.Join(dir, "doctored.json")
	df, err := os.Create(doctored)
	if err != nil {
		t.Fatal(err)
	}
	if err := conformance.WriteBench(df, rep); err != nil {
		t.Fatal(err)
	}
	df.Close()

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-short", "-benchtime", "10ms",
		"-targets", "^feature/discretize$", "-out", "",
		"-baseline", doctored}, &stdout, &stderr)
	if code != 3 {
		t.Fatalf("regression not gated: exit %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "regression") {
		t.Fatalf("missing regression diagnostics:\n%s", stderr.String())
	}
}

func TestRunRejectsShortFullMismatch(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-short", "-benchtime", "10ms",
		"-targets", "^feature/discretize$", "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d:\n%s", code, stderr.String())
	}
	code := run([]string{"-benchtime", "10ms",
		"-targets", "^feature/discretize$", "-out", "", "-baseline", out},
		&stdout, &stderr)
	if code != 2 {
		t.Fatalf("short baseline accepted for full run: exit %d", code)
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range conformance.TargetNames() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s", name)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-targets", "("}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad regexp: exit %d", code)
	}
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown flag: exit %d", code)
	}
	if code := run([]string{"-benchtime", "10ms", "-targets", "^zzz$", "-out", ""},
		&stdout, &stderr); code != 2 {
		t.Fatalf("no matching targets: exit %d", code)
	}
}
