// Command hmexp regenerates the paper's tables and figures.
//
// Usage:
//
//	hmexp -exp tab1|tab2|tab3|tab4|fig1|fig5|fig7|fig11|fig12|fig13|fig14|fig15|fig16|all
//	      [-fast] [-samples N] [-size small|medium]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"heteromap/internal/experiments"
	"heteromap/internal/gen"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (tab1..tab4, fig1..fig16, all)")
	fast := flag.Bool("fast", false, "use the reduced test-scale configuration")
	samples := flag.Int("samples", 0, "override training sample count")
	size := flag.String("size", "", "dataset scale: small or medium")
	csvDir := flag.String("csv", "", "also write <dir>/<exp>.csv for exportable experiments")
	flag.Parse()

	ctx := experiments.NewContext()
	if *fast {
		ctx = experiments.NewFastContext()
	}
	if *samples > 0 {
		ctx.TrainCfg.Samples = *samples
	}
	switch strings.ToLower(*size) {
	case "small":
		ctx.Size = gen.Small
	case "medium":
		ctx.Size = gen.Medium
	case "":
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *size)
		os.Exit(2)
	}

	runners := map[string]func() (fmt.Stringer, error){
		"tab1":  func() (fmt.Stringer, error) { return experiments.Table1(ctx), nil },
		"tab2":  func() (fmt.Stringer, error) { return experiments.Table2(), nil },
		"tab3":  func() (fmt.Stringer, error) { return experiments.Table3(ctx), nil },
		"tab4":  func() (fmt.Stringer, error) { return experiments.Table4(ctx) },
		"fig1":  func() (fmt.Stringer, error) { return experiments.Fig1(ctx) },
		"fig5":  func() (fmt.Stringer, error) { return experiments.Fig5(ctx) },
		"fig7":  func() (fmt.Stringer, error) { return experiments.Fig7(ctx) },
		"fig11": func() (fmt.Stringer, error) { return experiments.Fig11(ctx) },
		"fig12": func() (fmt.Stringer, error) { return experiments.Fig12(ctx) },
		"fig13": func() (fmt.Stringer, error) { return experiments.Fig13(ctx) },
		"fig14": func() (fmt.Stringer, error) { return experiments.Fig14(ctx) },
		"fig15": func() (fmt.Stringer, error) { return experiments.Fig15(ctx) },
		"fig16": func() (fmt.Stringer, error) { return experiments.Fig16(ctx) },
	}

	order := []string{"tab1", "tab2", "tab3", "fig1", "fig5", "fig7", "tab4",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16"}

	names := []string{strings.ToLower(*exp)}
	if names[0] == "all" {
		names = order
	}
	for _, name := range names {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want one of %s, all)\n",
				name, strings.Join(order, ", "))
			os.Exit(2)
		}
		start := time.Now()
		res, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", name, time.Since(start).Seconds(), res)
		if *csvDir != "" {
			if tab, ok := res.(experiments.Tabular); ok {
				if err := writeCSVFile(*csvDir, name, tab); err != nil {
					fmt.Fprintf(os.Stderr, "%s: csv: %v\n", name, err)
					os.Exit(1)
				}
			}
		}
	}
}

func writeCSVFile(dir, name string, tab experiments.Tabular) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(dir + "/" + name + ".csv")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.WriteCSV(f, tab); err != nil {
		return err
	}
	return f.Close()
}
