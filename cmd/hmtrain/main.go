// Command hmtrain runs HeteroMap's offline training pipeline (Section V)
// and reports holdout quality for every trainable learner:
//
//	hmtrain [-samples 3000] [-seed 42] [-energy] [-pair primary|970|cpu40|970cpu40]
//
// It builds the synthetic (B, I) -> best-M database with the autotuner,
// splits a holdout, trains the regressions and the deep models, and
// prints per-learner holdout MSE-equivalents and choice accuracies — the
// offline half of Table IV.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"heteromap/internal/config"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
	"heteromap/internal/predict/adaptive"
	"heteromap/internal/predict/nn"
	"heteromap/internal/predict/regress"
	"heteromap/internal/train"
)

func main() {
	samples := flag.Int("samples", 3000, "synthetic combinations to generate")
	seed := flag.Int64("seed", 42, "sampling seed")
	energy := flag.Bool("energy", false, "train for the energy objective")
	pairName := flag.String("pair", "primary", "accelerator pair: primary, 970, cpu40, 970cpu40")
	out := flag.String("out", "", "write the profiler database to this file (paper: the B,I,M tuples 'residing in the CPU file system')")
	flag.Parse()

	var pair machine.Pair
	switch *pairName {
	case "primary":
		pair = machine.PrimaryPair()
	case "970":
		pair = machine.StrongGPUPair()
	case "cpu40":
		pair = machine.CPU40Pair()
	case "970cpu40":
		pair = machine.StrongCPU40Pair()
	default:
		fmt.Fprintf(os.Stderr, "unknown pair %q\n", *pairName)
		os.Exit(2)
	}

	cfg := train.Config{Samples: *samples, Seed: *seed}
	if *energy {
		cfg.Objective = train.Energy
	}
	fmt.Printf("building database: pair=%s objective=%s samples=%d\n",
		pair.Name(), cfg.Objective, cfg.Samples)
	start := time.Now()
	db := train.BuildDatabase(pair, cfg)
	fmt.Printf("database built in %.1fs (%d samples)\n", time.Since(start).Seconds(), len(db.Samples))

	if *out != "" {
		// Atomic write-temp + rename: a crash mid-write can never leave a
		// torn database under the output name.
		if err := db.SaveFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("profiler database written to %s\n", *out)
	}

	trainSet, holdout := db.Split(0.2, *seed+1)
	limits := pair.Limits()
	learners := []predict.Trainable{
		regress.NewLinear(limits),
		regress.NewMulti(limits),
		adaptive.New(limits),
		nn.New(limits, nn.Options{Hidden: 16}),
		nn.New(limits, nn.Options{Hidden: 32}),
		nn.New(limits, nn.Options{Hidden: 64}),
		nn.New(limits, nn.Options{Hidden: 128}),
	}
	fmt.Printf("%-20s %10s %12s %10s\n", "learner", "train(s)", "holdout acc", "params")
	for _, l := range learners {
		t0 := time.Now()
		if err := l.Train(trainSet); err != nil {
			fmt.Fprintf(os.Stderr, "train %s: %v\n", l.Name(), err)
			os.Exit(1)
		}
		acc := holdoutAccuracy(l, holdout, limits)
		params := "-"
		if net, ok := l.(*nn.Network); ok {
			params = fmt.Sprint(net.ParamCount())
		}
		fmt.Printf("%-20s %10.1f %11.1f%% %10s\n", l.Name(), time.Since(t0).Seconds(), acc*100, params)
	}
}

// holdoutAccuracy measures mean choice accuracy of predictions against
// the tuned targets.
func holdoutAccuracy(p predict.Predictor, holdout []predict.Sample, limits config.Limits) float64 {
	if len(holdout) == 0 {
		return 0
	}
	sum := 0.0
	for i := range holdout {
		target := config.FromNormalized(holdout[i].Target, limits)
		sum += config.ChoiceAccuracy(p.Predict(holdout[i].Features), target, limits)
	}
	return sum / float64(len(holdout))
}
