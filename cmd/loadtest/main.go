// Command loadtest drives the prediction service with a synthetic
// benchmark/input mix and reports throughput, client and server
// latency percentiles, and cache hit rate.
//
//	loadtest -addr 127.0.0.1:8080 -duration 2s -concurrency 8
//	    load an already-running `heteromap serve` instance
//	loadtest -duration 2s
//	    with no -addr, start an in-process server (decision-tree
//	    model, ephemeral port), load it, and shut it down
//	loadtest -cluster -nodes 3 -chaos -kill-after 1s
//	    with no -addr, start an in-process cluster (N nodes behind a
//	    router), storm it with cluster chaos profiles, hard-kill one
//	    node mid-run, and gate on -min-availability
//	loadtest -cluster -addr 127.0.0.1:8100 -chaos
//	    storm an already-running cluster router: the chaos flipper
//	    posts router-layer fault profiles (slow-peer, partition,
//	    node-kill) to its /v1/chaos
//	loadtest -addr 127.0.0.1:8080 -drift -duration 6s
//	    shift the request mix mid-run from social-network-style to
//	    road-network-style graphs — the workload-shift stimulus for a
//	    server running with -online — and gate on -min-availability
//
// Exit code 0 when the run completes with zero request errors (or, in
// chaos mode, with availability at or above -min-availability).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"heteromap/internal/cluster"
	"heteromap/internal/fault"
	"heteromap/internal/machine"
	"heteromap/internal/obs"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "server address host:port (empty: start an in-process server)")
	duration := fs.Duration("duration", 2*time.Second, "how long to generate load")
	concurrency := fs.Int("concurrency", 8, "concurrent client goroutines")
	batch := fs.Int("batch", 0, "items per request: 0/1 uses /v1/predict, >1 uses /v1/predict/batch")
	combos := fs.Int("combos", 64, "distinct (benchmark, input) combinations in the mix")
	seed := fs.Int64("seed", 42, "mix-generation seed")
	model := fs.String("model", "", "model name to request (empty: server default)")
	stages := fs.Bool("stages", false, "report the server-side per-stage latency breakdown next to client percentiles")
	drift := fs.Bool("drift", false, "shift the request mix mid-run to a road-network-style pool (workload-shift stimulus for serve -online) and gate on availability")
	driftAfter := fs.Duration("drift-after", 0, "drift mode: when the mix shifts (0: half the run)")
	chaos := fs.Bool("chaos", false, "flip serve-fault profiles mid-run and gate on availability (server must enable chaos)")
	chaosRate := fs.Float64("chaos-rate", 0.3, "chaos fault-profile intensity in [0,1]")
	minAvail := fs.Float64("min-availability", 0.99, "chaos mode: fail the run below this availability")
	clusterMode := fs.Bool("cluster", false, "target a cluster router: with no -addr start an in-process N-node cluster; chaos posts router-layer fault profiles")
	nodes := fs.Int("nodes", 3, "cluster mode: in-process serve-node count")
	killAfter := fs.Duration("kill-after", 0, "cluster mode: hard-kill one in-process node this long into the run (0: never)")
	restartAfter := fs.Duration("restart", 0, "cluster mode: restart the killed node this long after -kill-after, on its old address (0: never; gates on -min-availability)")
	durableDir := fs.String("durable-dir", "", "cluster mode: per-node durable state root, so a -restart node comes back warm (empty with -restart: a private temp dir)")
	snapshotEvery := fs.Duration("snapshot-interval", 200*time.Millisecond, "cluster mode: per-node cache snapshot cadence when durability is on")
	sloGate := fs.Bool("slo", false, "gate the run on the target's /v1/slo: fail when the multiwindow burn-rate alert is active or an error budget is exhausted at run end (in-process targets get an SLO engine with windows scaled to -duration)")
	sloAvail := fs.Float64("slo-availability", 0.995, "-slo: availability objective armed on in-process targets")
	sloP99 := fs.Duration("slo-p99", 250*time.Millisecond, "-slo: p99 latency objective armed on in-process targets")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *restartAfter > 0 && (!*clusterMode || *addr != "" || *killAfter <= 0) {
		fmt.Fprintln(stderr, "loadtest: -restart needs an in-process cluster (-cluster, no -addr) and -kill-after")
		return 2
	}

	url := "http://" + *addr
	if *addr == "" && *clusterMode {
		dur := *durableDir
		if dur == "" && *restartAfter > 0 {
			tmp, err := os.MkdirTemp("", "loadtest-durable-")
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			defer os.RemoveAll(tmp)
			dur = tmp
		}
		lopts := cluster.LocalOptions{
			Nodes: *nodes,
			Seed:  *seed,
			Chaos: *chaos,
		}
		if dur != "" {
			lopts.NodeOptions = func(i int, opts serve.Options) serve.Options {
				opts.DurableDir = filepath.Join(dur, fmt.Sprintf("node-%d", i))
				opts.CacheSnapshotEvery = *snapshotEvery
				return opts
			}
		}
		if *sloGate {
			lopts.RouterOptions = func(ro cluster.RouterOptions) cluster.RouterOptions {
				ro.SLO = newRunSLO(*sloAvail, *sloP99, *duration)
				return ro
			}
		}
		lc, err := cluster.StartLocal(lopts)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer lc.Stop()
		url = lc.URL()
		fmt.Fprintf(stdout, "started in-process cluster: router %s over %d nodes\n", lc.Router.Addr(), *nodes)
		if *killAfter > 0 {
			victim := *nodes - 1
			time.AfterFunc(*killAfter, func() {
				fmt.Fprintf(stdout, "kill -9 (in-process): node %d (%s) at +%v\n",
					victim, lc.NodeAddr(victim), *killAfter)
				lc.KillNode(victim)
			})
			if *restartAfter > 0 {
				time.AfterFunc(*killAfter+*restartAfter, func() {
					if err := lc.RestartNode(victim); err != nil {
						fmt.Fprintf(stderr, "restart node %d: %v\n", victim, err)
						return
					}
					st := lc.Nodes[victim].DurableStats()
					fmt.Fprintf(stdout, "restarted node %d (%s) at +%v: snapshot_restored=%v cache_restored=%d version_floor=%d\n",
						victim, lc.NodeAddr(victim), *killAfter+*restartAfter,
						st.SnapshotRestored, st.CacheRestored, st.VersionFloor)
				})
			}
		}
	} else if *addr == "" {
		opts := serve.Options{Addr: "127.0.0.1:0"}
		if *chaos {
			// The in-process server needs an injector for /v1/chaos.
			opts.Chaos = fault.NewServeInjector(*seed)
		}
		if *sloGate {
			opts.SLO = newRunSLO(*sloAvail, *sloP99, *duration)
		}
		srv := serve.New(opts)
		pair := machine.PrimaryPair()
		if _, err := srv.Registry().Register("tree", "builtin decision tree", dtree.New(pair.Limits())); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		errCh := make(chan error, 1)
		go func() { errCh <- srv.Start() }()
		// Start listens synchronously before serving, but from another
		// goroutine; poll briefly until the ephemeral port is bound.
		deadline := time.Now().Add(2 * time.Second)
		for srv.Addr() == "127.0.0.1:0" && time.Now().Before(deadline) {
			select {
			case err := <-errCh:
				fmt.Fprintf(stderr, "server failed to start: %v\n", err)
				return 1
			case <-time.After(5 * time.Millisecond):
			}
		}
		url = "http://" + srv.Addr()
		fmt.Fprintf(stdout, "started in-process server on %s\n", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}

	res, err := serve.RunLoadGen(serve.LoadGenOptions{
		URL:         url,
		Duration:    *duration,
		Concurrency: *concurrency,
		BatchSize:   *batch,
		Combos:      *combos,
		Seed:        *seed,
		Model:       *model,
		Stages:      *stages,
		Drift:       *drift,
		DriftAfter:  *driftAfter,
		Chaos:       *chaos,
		Cluster:     *clusterMode,
		ChaosRate:   *chaosRate,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintln(stdout, res)
	if *sloGate {
		if code := gateSLO(stdout, stderr, url); code != 0 {
			return code
		}
	}
	if *chaos || *drift || *restartAfter > 0 {
		// Under injected faults, a mid-run workload shift, or a node
		// kill/restart cycle, shed requests are expected; the pass
		// criterion is availability.
		if res.Availability < *minAvail {
			fmt.Fprintf(stderr, "loadtest: availability %.2f%% below the %.2f%% floor\n",
				res.Availability*100, *minAvail*100)
			return 1
		}
		return 0
	}
	if res.Errors > 0 {
		fmt.Fprintf(stderr, "loadtest: %d request errors\n", res.Errors)
		return 1
	}
	return 0
}

// newRunSLO arms an SLO engine whose windows fit inside one load run,
// so burn rates (and the multiwindow alert) are observable within
// -duration instead of needing an hour of traffic.
func newRunSLO(avail float64, p99, dur time.Duration) *obs.SLO {
	fast := dur / 4
	if fast < time.Second {
		fast = time.Second
	}
	slow := dur
	if slow < fast {
		slow = fast
	}
	return obs.NewSLO(obs.SLOOptions{
		Availability: avail,
		P99Latency:   p99,
		FastWindow:   fast,
		SlowWindow:   slow,
	})
}

// gateSLO fetches the target's /v1/slo snapshot at run end and fails
// the run when any objective's alert is firing or its budget is spent.
func gateSLO(stdout, stderr io.Writer, url string) int {
	resp, err := http.Get(url + "/v1/slo")
	if err != nil {
		fmt.Fprintf(stderr, "loadtest: -slo gate: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "loadtest: -slo gate: %s/v1/slo answered %d (start the target with -slo-availability / -slo-p99)\n",
			url, resp.StatusCode)
		return 1
	}
	var snap obs.SLOSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		fmt.Fprintf(stderr, "loadtest: -slo gate: decode /v1/slo: %v\n", err)
		return 1
	}
	for _, o := range snap.Objectives {
		fmt.Fprintf(stdout, "slo %-12s budget_remaining=%.3f burn fast=%.2f slow=%.2f alert=%v (%d/%d violations)\n",
			o.Name, o.BudgetRemaining, o.FastBurn, o.SlowBurn, o.AlertActive, o.Violations, o.Requests)
	}
	if snap.AlertActive || snap.Exhausted {
		fmt.Fprintf(stderr, "loadtest: SLO gate failed: alert_active=%v exhausted=%v\n",
			snap.AlertActive, snap.Exhausted)
		return 1
	}
	fmt.Fprintln(stdout, "slo gate: ok")
	return 0
}
