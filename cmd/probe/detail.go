package main

import (
	"fmt"
	"os"

	"heteromap/internal/algo"
	"heteromap/internal/core"
	"heteromap/internal/gen"
	"heteromap/internal/machine"
)

// detail prints the per-term breakdown of both accelerators' best configs
// for one combination. Run: probe detail <bench> <short>
func detail(benchName, short string) {
	pair := machine.PrimaryPair()
	b, err := algo.ByName(benchName)
	if err != nil {
		fmt.Println(err)
		os.Exit(1)
	}
	d := gen.ByShort(gen.TableICached(gen.Small), short)
	w, err := core.Characterize(b, d)
	if err != nil {
		fmt.Println(err)
		os.Exit(1)
	}
	fmt.Println(w.Work)
	bl := core.ComputeBaselines(pair, w, core.Performance)
	for _, c := range []struct {
		acc *machine.Accel
		rep machine.Report
		m   string
	}{
		{pair.GPU, bl.GPUOnly, bl.GPUOnlyM.String()},
		{pair.Multicore, bl.MulticoreOnly, bl.MulticoreM.String()},
	} {
		bd := c.rep.Breakdown
		fmt.Printf("%-16s %s total=%.5gs threads=%d util=%.2f\n", c.acc.Name, c.m, c.rep.Seconds, c.rep.Threads, c.rep.Utilization)
		fmt.Printf("  chain=%.4g compute=%.4g fp=%.4g mem=%.4g atomics=%.4g barriers=%.4g pushpop=%.4g knob=%.3f chunks=%d\n",
			bd.Chain, bd.Compute, bd.FP, bd.Memory, bd.Atomics, bd.Barriers, bd.PushPop, bd.KnobFactor, bd.Chunks)
	}
}
