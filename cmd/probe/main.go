// Command probe is a development aid that prints, for every
// benchmark-input combination, which accelerator the exhaustively tuned
// baseline prefers and by what factor, plus the decision tree's pick.
package main

import (
	"fmt"
	"os"
	"time"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/gen"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
)

func main() {
	if len(os.Args) == 4 && os.Args[1] == "detail" {
		detail(os.Args[2], os.Args[3])
		return
	}
	pair := machine.PrimaryPair()
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "970":
			pair = machine.StrongGPUPair()
		case "cpu40":
			pair = machine.CPU40Pair()
		case "970cpu40":
			pair = machine.StrongCPU40Pair()
		}
	}
	tree := dtree.New(pair.Limits())
	datasets := gen.TableICached(gen.Small)
	start := time.Now()
	for _, b := range algo.All() {
		for _, d := range datasets {
			w, err := core.Characterize(b, d)
			if err != nil {
				fmt.Println("ERR", err)
				continue
			}
			bl := core.ComputeBaselines(pair, w, core.Performance)
			winner := "GPU"
			ratio := bl.MulticoreOnly.Seconds / bl.GPUOnly.Seconds
			if bl.MulticoreOnly.Seconds < bl.GPUOnly.Seconds {
				winner = "MC "
				ratio = bl.GPUOnly.Seconds / bl.MulticoreOnly.Seconds
			}
			pick := tree.SelectAccelerator(w.Features)
			mark := " "
			if (pick == config.GPU) != (winner == "GPU") {
				mark = "X"
			}
			fmt.Printf("%-12s %-5s win=%s by %6.2fx tree=%-9s %s  gpu=%.4gs mc=%.4gs util(g/m)=%.2f/%.2f\n",
				b.Name, d.Short, winner, ratio, pick, mark,
				bl.GPUOnly.Seconds, bl.MulticoreOnly.Seconds,
				bl.GPUOnly.Utilization, bl.MulticoreOnly.Utilization)
		}
	}
	fmt.Println("elapsed:", time.Since(start))
}
