package heteromap

// The Conformance* benchmarks expose cmd/hmbench's hot-path targets to
// the standard `go test -bench` harness, so benchstat workflows and the
// BENCH_*.json reports measure the same code:
//
//	go test -bench 'Conformance' -benchmem .
//	go run ./cmd/hmbench -short            # same bodies, JSON report

import (
	"testing"

	"heteromap/internal/conformance"
)

func conformanceTarget(b *testing.B, name string) {
	b.Helper()
	for _, t := range conformance.BenchTargets(testing.Short()) {
		if t.Name == name {
			t.Run(b)
			return
		}
	}
	b.Fatalf("no conformance bench target %q", name)
}

func BenchmarkConformanceFeatureDiscretize(b *testing.B) {
	conformanceTarget(b, "feature/discretize")
}

func BenchmarkConformanceFeatureKeyRoundTrip(b *testing.B) {
	conformanceTarget(b, "feature/key-roundtrip")
}

func BenchmarkConformanceMachineEvaluate(b *testing.B) {
	conformanceTarget(b, "machine/evaluate")
}

func BenchmarkConformancePredictTree(b *testing.B) {
	conformanceTarget(b, "predict/tree")
}

func BenchmarkConformancePredictDeep128(b *testing.B) {
	conformanceTarget(b, "predict/deep128")
}

func BenchmarkConformanceServePredictE2E(b *testing.B) {
	conformanceTarget(b, "serve/predict-e2e")
}

func BenchmarkConformanceServePredictCacheHit(b *testing.B) {
	conformanceTarget(b, "serve/predict-cachehit")
}

func BenchmarkConformanceTrainBuildDB(b *testing.B) {
	conformanceTarget(b, "train/build-db")
}

func BenchmarkConformanceOnlineFeedbackIngest(b *testing.B) {
	conformanceTarget(b, "online/feedback-ingest")
}

func BenchmarkConformanceOnlineDriftCheck(b *testing.B) {
	conformanceTarget(b, "online/drift-check")
}
