package heteromap_test

import (
	"fmt"

	"heteromap"
)

// Characterize a benchmark-input combination and walk the Section IV
// decision tree: SSSP-Delta on the USA road network selects the
// multicore (the paper's Fig 7 worked example).
func Example() {
	pair := heteromap.PrimaryPair()
	sys := heteromap.NewSystem(pair, heteromap.NewDecisionTree(pair), heteromap.Performance)

	rep, err := sys.Schedule(heteromap.BenchmarkSSSPDelta, heteromap.DatasetCA)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(rep.Workload.Name())
	fmt.Println(rep.Chosen.Accelerator)
	// Output:
	// SSSP-Delta-CA
	// Multicore
}

// The 17-dimensional characterization combines the thirteen benchmark
// variables (Fig 5/6) with the four input variables (Fig 4); SSSP-BF on
// USA-Cal reproduces the paper's worked discretizations exactly.
func ExampleSystem_Characterize() {
	pair := heteromap.PrimaryPair()
	sys := heteromap.NewSystem(pair, heteromap.NewDecisionTree(pair), heteromap.Performance)

	bench, _ := heteromap.BenchmarkByName(heteromap.BenchmarkSSSPBF)
	ds, _ := heteromap.DatasetByName(heteromap.Datasets(false), heteromap.DatasetCA)
	w, err := sys.Characterize(bench, ds)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(w.Features.B())
	fmt.Println(w.Features.I())
	// Output:
	// B1=1.0 B2=0.0 B3=0.0 B4=0.0 B5=0.0 B6=0.0 B7=0.8 B8=0.0 B9=0.5 B10=0.5 B11=0.2 B12=0.2 B13=0.2
	// I1=0.1 I2=0.1 I3=0.0 I4=0.8
}

// Every accelerator of Table II is available as a preset; pairs combine
// one GPU with one multicore.
func ExamplePrimaryPair() {
	p := heteromap.PrimaryPair()
	fmt.Println(p.GPU.Name)
	fmt.Println(p.Multicore.Name)
	// Output:
	// GTX-750Ti
	// Xeon-Phi-7120P
}

// Baselines reproduce the paper's evaluation protocol: exhaustively
// tuned GPU-only and multicore-only runs, and the cross-accelerator
// ideal the predictors are judged against.
func ExampleSystem_Baselines() {
	pair := heteromap.PrimaryPair()
	sys := heteromap.NewSystem(pair, heteromap.NewDecisionTree(pair), heteromap.Performance)
	rep, err := sys.Schedule(heteromap.BenchmarkSSSPDelta, heteromap.DatasetCA)
	if err != nil {
		fmt.Println(err)
		return
	}
	bl := sys.Baselines(rep.Workload)
	fmt.Println("multicore wins:", bl.MulticoreOnly.Seconds < bl.GPUOnly.Seconds)
	fmt.Println("ideal is the better single:", bl.Ideal.Seconds <= bl.GPUOnly.Seconds &&
		bl.Ideal.Seconds <= bl.MulticoreOnly.Seconds)
	// Output:
	// multicore wins: true
	// ideal is the better single: true
}
