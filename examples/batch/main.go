// Batch example: operate the multi-accelerator system on a whole queue
// of benchmark-input combinations at once (the paper's Section II
// deployment scenario). Both accelerators drain their assigned jobs
// concurrently; the makespan comparison shows why a heterogeneous system
// with a predictor beats either accelerator alone — and how far simple
// load balancing can stretch it further.
package main

import (
	"fmt"
	"log"

	"heteromap"
	"heteromap/internal/algo"
	"heteromap/internal/core"
	"heteromap/internal/gen"
	"heteromap/internal/sched"
)

func main() {
	pair := heteromap.PrimaryPair()
	tree := heteromap.NewDecisionTree(pair)

	// Queue: every benchmark on every Table I input (81 jobs).
	ws, err := core.CharacterizeAll(algo.All(), gen.TableICached(gen.Small))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduling a queue of %d benchmark-input jobs on %s\n\n", len(ws), pair.Name())

	plans := sched.Compare(pair, tree, ws)
	for _, p := range plans {
		fmt.Println(p)
	}

	hm, gpuOnly := plans[0], plans[2]
	fmt.Printf("\nconcurrent heterogeneous operation finishes the queue %.2fx faster than the GPU alone\n",
		gpuOnly.Makespan/hm.Makespan)
	fmt.Printf("and %.2fx faster than the multicore alone\n",
		plans[3].Makespan/hm.Makespan)
}
