// Deploy example: the full Fig 8 loop with a *real* execution at the
// end. The system characterizes BFS on the LiveJournal analog, predicts
// machine choices with the decision tree, and — when the multicore is
// chosen — deploys the kernel on the host through the OpenMP-like
// parallel runtime (internal/exec), honoring the predicted scheduling
// kind, chunk size and thread count. The parallel result is verified
// against the sequential reference and wall-clock times are reported for
// a worker-count sweep, a live miniature of the paper's Fig 1.
package main

import (
	"fmt"
	"log"
	"time"

	"heteromap"
	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/exec"
)

func main() {
	pair := heteromap.PrimaryPair()
	sys := heteromap.NewSystem(pair, heteromap.NewDecisionTree(pair), heteromap.Performance)

	bench, err := heteromap.BenchmarkByName(heteromap.BenchmarkBFS)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := heteromap.DatasetByName(heteromap.Datasets(true), heteromap.DatasetLJ)
	if err != nil {
		log.Fatal(err)
	}
	w, err := sys.Characterize(bench, ds)
	if err != nil {
		log.Fatal(err)
	}
	m := sys.Predictor().Predict(w.Features)
	fmt.Printf("combination %s -> predicted %s\n", w.Name(), m)

	g := ds.Graph
	src := algo.SourceVertex(g)
	want, _, _ := algo.BFS(g, src)

	// Deploy with the predicted multicore knobs (or defaults if the
	// predictor chose the GPU — the host stands in for the multicore).
	deployM := m
	if deployM.Accelerator != config.Multicore {
		deployM = config.DefaultMulticore(pair.Limits())
		fmt.Println("(predictor chose the GPU; deploying host run with multicore defaults)")
	}
	pool := exec.NewPool(deployM)
	start := time.Now()
	got := exec.BFS(pool, g, src)
	elapsed := time.Since(start)
	for v := range want {
		if got[v] != want[v] {
			log.Fatalf("parallel BFS diverged at vertex %d", v)
		}
	}
	fmt.Printf("parallel BFS on %d workers (%v schedule): %v, verified against the sequential reference\n",
		pool.Workers(), deployM.Schedule, elapsed)

	// Worker sweep: the live miniature of Fig 1's thread curves.
	fmt.Printf("\n%-8s %12s\n", "workers", "wall time")
	for _, workers := range []int{1, 2, 4, 8} {
		p := exec.NewPoolN(workers, deployM.Schedule, deployM.ChunkSize)
		t0 := time.Now()
		exec.BFS(p, g, src)
		fmt.Printf("%-8d %12v\n", p.Workers(), time.Since(t0))
	}
}
