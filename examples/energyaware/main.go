// Energy-aware scheduling example (the Fig 12 workflow): train the same
// deep predictor once for the performance objective and once for the
// energy objective, then show how the two schedules diverge — the Xeon
// Phi's higher power rating makes the energy-trained predictor lean
// harder on the GPU, while the performance-trained one happily burns
// watts for speed.
package main

import (
	"fmt"
	"log"

	"heteromap"
)

func main() {
	pair := heteromap.PrimaryPair()

	build := func(obj heteromap.Objective) *heteromap.System {
		deep := heteromap.NewDeepPredictor(pair, 128)
		cfg := heteromap.FastTraining()
		cfg.Objective = obj
		db := heteromap.BuildTrainingDB(pair, cfg)
		if err := deep.Train(db.Samples); err != nil {
			log.Fatal(err)
		}
		return heteromap.NewSystem(pair, deep, obj)
	}
	perfSys := build(heteromap.Performance)
	energySys := build(heteromap.Energy)

	fmt.Printf("%-18s | %-9s %11s %9s | %-9s %11s %9s\n",
		"combination", "perf-pick", "time(s)", "J",
		"engy-pick", "time(s)", "J")

	datasets := heteromap.Datasets(false)
	var perfJ, energyJ float64
	for _, benchName := range []string{
		heteromap.BenchmarkSSSPBF, heteromap.BenchmarkSSSPDelta,
		heteromap.BenchmarkPageRank, heteromap.BenchmarkCommunity,
	} {
		for _, short := range []string{heteromap.DatasetCA, heteromap.DatasetFB, heteromap.DatasetTwtr} {
			bench, err := heteromap.BenchmarkByName(benchName)
			if err != nil {
				log.Fatal(err)
			}
			ds, err := heteromap.DatasetByName(datasets, short)
			if err != nil {
				log.Fatal(err)
			}
			w, err := perfSys.Characterize(bench, ds)
			if err != nil {
				log.Fatal(err)
			}
			p := perfSys.Run(w)
			e := energySys.Run(w)
			perfJ += p.Machine.EnergyJ
			energyJ += e.Machine.EnergyJ
			fmt.Printf("%-18s | %-9s %11.4g %9.3g | %-9s %11.4g %9.3g\n",
				w.Name(),
				p.Chosen.Accelerator, p.Machine.Seconds, p.Machine.EnergyJ,
				e.Chosen.Accelerator, e.Machine.Seconds, e.Machine.EnergyJ)
		}
	}
	fmt.Printf("\ntotal energy: performance-trained %.4g J, energy-trained %.4g J (%.2fx reduction)\n",
		perfJ, energyJ, perfJ/energyJ)
}
