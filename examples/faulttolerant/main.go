// Fault-tolerant example: operate the multi-accelerator system when
// things go wrong. Three scenarios:
//
//  1. A broken predictor (emitting NaN machine choices) degrades through
//     the fallback chain — trained model -> decision tree -> fixed
//     choice — instead of crashing or deploying garbage.
//  2. A chaos sweep injects transient failures, thermal slowdown and
//     memory-capacity loss at increasing rates; retries, backoff and
//     failover keep every job completing, with the honest makespan cost
//     charged and reported.
//  3. A persistently dead GPU trips its circuit breaker, so the batch
//     reroutes to the multicore instead of burning retries on every job.
package main

import (
	"fmt"
	"log"
	"math"

	"heteromap"
	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/feature"
	"heteromap/internal/gen"
	"heteromap/internal/sched"
)

// brokenPredictor stands in for a mistrained model whose weights turned
// to NaN: every prediction is poisoned.
type brokenPredictor struct{}

func (brokenPredictor) Name() string { return "Deep.128 (corrupted)" }
func (brokenPredictor) Predict(feature.Vector) config.M {
	return config.M{Accelerator: config.GPU, PlaceCore: math.NaN()}
}

func main() {
	pair := heteromap.PrimaryPair()
	tree := heteromap.NewDecisionTree(pair)

	ws, err := core.CharacterizeAll(algo.All(), gen.TableICached(gen.Small))
	if err != nil {
		log.Fatal(err)
	}

	// Scenario 1: predictor degradation chain.
	fmt.Println("--- predictor fallback chain ---")
	sys := heteromap.NewSystem(pair, brokenPredictor{}, heteromap.Performance).
		WithFallbacks(tree)
	rep := sys.Run(ws[0])
	fmt.Printf("%s: primary predictor poisoned, scheduled by %q on %s\n",
		ws[0].Name(), rep.PredictorUsed, rep.Chosen.Accelerator)
	for _, e := range rep.FallbackEvents {
		fmt.Printf("  fallback: %s\n", e)
	}

	// Scenario 2: chaos sweep over the whole batch.
	fmt.Println("\n--- chaos sweep (81 jobs) ---")
	pol := heteromap.DefaultFaultPolicy()
	for _, rate := range []float64{0, 0.1, 0.3} {
		var inj *heteromap.FaultInjector
		if rate > 0 {
			inj = heteromap.NewChaosInjector(42, rate)
		}
		plan := sched.AssignResilient(pair, tree, ws, inj, pol)
		fmt.Printf("rate %.1f: makespan %.4gs, %d retries, %d failovers, %d lost, %.4gs fault time\n",
			rate, plan.Makespan, plan.Retries, plan.Failovers, plan.Incomplete, plan.FaultSeconds)
	}

	// Scenario 3: a dead GPU and the circuit breaker.
	fmt.Println("\n--- dead GPU: circuit breaker + failover ---")
	dead := heteromap.NewFaultInjector(7).
		SetProfile(config.GPU, heteromap.FaultProfile{TransientRate: 1})
	pol.BreakerThreshold = 2
	plan := sched.AssignResilient(pair, tree, ws, dead, pol)
	fmt.Println(plan)
	fmt.Printf("every job completed on the multicore: %v (GPU jobs: %d)\n",
		plan.Incomplete == 0, len(plan.GPUJobs))
}
