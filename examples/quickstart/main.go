// Quickstart: build the default HeteroMap system (primary GTX-750Ti +
// Xeon Phi pair, deep predictor trained on a fast synthetic database) and
// schedule one benchmark-input combination, comparing the prediction
// against the tuned single-accelerator baselines.
package main

import (
	"fmt"
	"log"

	"heteromap"
)

func main() {
	sys, err := heteromap.NewDefaultSystem()
	if err != nil {
		log.Fatal(err)
	}

	rep, err := sys.Schedule(heteromap.BenchmarkBFS, heteromap.DatasetTwtr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("combination: %s\n", rep.Workload.Name())
	fmt.Printf("characterization: %s\n", rep.Workload.Features)
	fmt.Printf("predicted machine choices: %s\n", rep.Chosen)
	fmt.Printf("completion: %.6gs on %s (util %.0f%%, %.3g J)\n",
		rep.Machine.Seconds, rep.Machine.Accel,
		rep.Machine.Utilization*100, rep.Machine.EnergyJ)

	bl := sys.Baselines(rep.Workload)
	fmt.Printf("GPU-only baseline: %.6gs, multicore-only: %.6gs, ideal: %.6gs\n",
		bl.GPUOnly.Seconds, bl.MulticoreOnly.Seconds, bl.Ideal.Seconds)
	fmt.Printf("HeteroMap vs ideal: %+.1f%%\n",
		(rep.TotalSeconds/bl.Ideal.Seconds-1)*100)
}
