// Scheduler example: the Fig 11 workflow on a subset of combinations —
// compare GPU-only, multicore-only, the decision tree and a trained deep
// predictor per combination, normalized to the GPU-only baseline.
//
// This is the paper's motivating scenario: neither accelerator wins
// everywhere, and the predictor captures most of the best-of-both
// potential at negligible overhead.
package main

import (
	"fmt"
	"log"

	"heteromap"
)

func main() {
	pair := heteromap.PrimaryPair()

	// The decision tree needs no training; the deep model trains on a
	// fast synthetic database.
	tree := heteromap.NewDecisionTree(pair)
	deep := heteromap.NewDeepPredictor(pair, 128)
	db := heteromap.BuildTrainingDB(pair, heteromap.FastTraining())
	if err := deep.Train(db.Samples); err != nil {
		log.Fatal(err)
	}

	treeSys := heteromap.NewSystem(pair, tree, heteromap.Performance)
	deepSys := heteromap.NewSystem(pair, deep, heteromap.Performance)

	combos := []struct{ bench, input string }{
		{heteromap.BenchmarkSSSPBF, heteromap.DatasetCA},
		{heteromap.BenchmarkSSSPDelta, heteromap.DatasetCA},
		{heteromap.BenchmarkSSSPDelta, heteromap.DatasetCAGE},
		{heteromap.BenchmarkBFS, heteromap.DatasetTwtr},
		{heteromap.BenchmarkDFS, heteromap.DatasetCO},
		{heteromap.BenchmarkPageRank, heteromap.DatasetFB},
		{heteromap.BenchmarkTriangle, heteromap.DatasetLJ},
		{heteromap.BenchmarkConnComp, heteromap.DatasetKron},
	}

	fmt.Printf("%-18s %9s %9s %9s %9s  %s\n",
		"combination", "GPU-only", "MC-only", "tree", "deep", "tree/deep choices")
	datasets := heteromap.Datasets(false)
	for _, combo := range combos {
		bench, err := heteromap.BenchmarkByName(combo.bench)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := heteromap.DatasetByName(datasets, combo.input)
		if err != nil {
			log.Fatal(err)
		}
		w, err := treeSys.Characterize(bench, ds)
		if err != nil {
			log.Fatal(err)
		}
		bl := treeSys.Baselines(w)
		treeRep := treeSys.Run(w)
		deepRep := deepSys.Run(w)
		gpu := bl.GPUOnly.Seconds
		fmt.Printf("%-18s %9.2f %9.2f %9.2f %9.2f  %s / %s\n",
			w.Name(), 1.0,
			bl.MulticoreOnly.Seconds/gpu,
			treeRep.TotalSeconds/gpu,
			deepRep.TotalSeconds/gpu,
			treeRep.Chosen.Accelerator, deepRep.Chosen.Accelerator)
	}
	fmt.Println("\n(normalized completion time; lower is better, 1.00 = tuned GPU-only)")
}
