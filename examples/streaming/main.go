// Streaming example (Section II's Stinger workflow): a graph whose
// paper-scale footprint exceeds the accelerator's attached memory is
// partitioned into memory-sized chunks that are processed one by one,
// and the per-chunk results are combined. The example runs PageRank-style
// degree accumulation over chunks and verifies the chunked pass touches
// exactly the same edges as the monolithic one; it then shows how the
// simulated completion time of a Twitter-scale workload reacts to
// accelerator memory size (the Fig 16 effect).
package main

import (
	"fmt"
	"log"

	"heteromap"
	"heteromap/internal/core"
	"heteromap/internal/stream"
)

func main() {
	datasets := heteromap.Datasets(false)
	ds, err := heteromap.DatasetByName(datasets, heteromap.DatasetTwtr)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph

	// Partition the generated analog into four chunks and accumulate
	// out-degrees chunk by chunk.
	chunks := stream.Partition(g, 4)
	fmt.Printf("graph %s: %d vertices, %d edges -> %d chunks\n",
		g.Name, g.NumVertices(), g.NumEdges(), len(chunks))
	deg := make([]int64, g.NumVertices())
	var streamedEdges int64
	for _, c := range chunks {
		fmt.Printf("  %s\n", c)
		for v := c.FirstVertex; v < c.LastVertex; v++ {
			deg[v] += int64(c.Graph.Degree(v))
			streamedEdges += int64(c.Graph.Degree(v))
		}
	}
	if streamedEdges != g.NumEdges() {
		log.Fatalf("chunked pass saw %d edges, monolithic graph has %d",
			streamedEdges, g.NumEdges())
	}
	fmt.Printf("chunked pass covered all %d edges exactly once\n", streamedEdges)

	// Paper-scale effect: Twitter's declared footprint needs chunking on
	// a 2 GB GPU; sweep accelerator memory and watch the simulated time.
	bench, err := heteromap.BenchmarkByName(heteromap.BenchmarkPageRank)
	if err != nil {
		log.Fatal(err)
	}
	w, err := core.Characterize(bench, ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeclared footprint: %.1f GB\n",
		float64(ds.Declared.FootprintBytes())/(1<<30))
	fmt.Printf("%-8s %8s %8s\n", "mem", "chunks", "time(s)")
	pair := heteromap.PrimaryPair()
	for _, gbs := range []int64{1, 2, 4, 8, 16} {
		mc := pair.Multicore.WithMemory(gbs << 30)
		m := heteromap.NewDecisionTree(heteromap.Pair{GPU: pair.GPU, Multicore: mc}).
			Predict(w.Features)
		rep := mc.Evaluate(w.Job, m)
		fmt.Printf("%-8s %8d %8.4g\n",
			fmt.Sprintf("%dGB", gbs), rep.Breakdown.Chunks, rep.Seconds)
	}
}
