module heteromap

go 1.22
