// Package heteromap is a Go reproduction of "HeteroMap: A Runtime
// Performance Predictor for Efficient Processing of Graph Analytics on
// Heterogeneous Multi-Accelerators" (Ahmad, Dogan, Michael, Khan —
// ISPASS 2019).
//
// HeteroMap schedules graph benchmark-input combinations onto a
// heterogeneous pair of accelerators (a GPU and a multicore): it
// characterizes the benchmark into thirteen B variables and the input
// graph into four I variables, feeds the 17-dimensional characterization
// to a predictor (a hand-built decision tree, regressions, or feed-
// forward neural networks trained offline on synthetic combinations),
// and deploys the predicted machine-choice vector M (accelerator plus
// nineteen concurrency knobs). Because Go has no GPU substrate, the
// accelerators are calibrated analytical simulators driven by
// instrumented executions of the real graph algorithms (see DESIGN.md).
//
// Quick start:
//
//	sys, _ := heteromap.NewDefaultSystem()
//	report, _ := sys.Schedule(heteromap.BenchmarkBFS, heteromap.DatasetFB)
//	fmt.Println(report.Chosen, report.TotalSeconds)
//
// The subpackages under internal/ implement the substrates; everything a
// downstream user needs is re-exported here: systems (NewSystem,
// NewDefaultSystem), predictors (NewDecisionTree, TrainDeepPredictor,
// ...), the Table I dataset catalog, the nine benchmarks, and the
// characterization primitives.
package heteromap

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/fault"
	"heteromap/internal/feature"
	"heteromap/internal/gen"
	"heteromap/internal/graph"
	"heteromap/internal/machine"
	"heteromap/internal/obs"
	"heteromap/internal/phased"
	"heteromap/internal/predict"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/predict/nn"
	"heteromap/internal/predict/regress"
	"heteromap/internal/train"
)

// Re-exported core types. The type aliases keep the public API a single
// import while the implementation stays modular under internal/.
type (
	// Graph is the CSR graph representation.
	Graph = graph.Graph
	// Dataset couples a generated input graph with its declared
	// paper-scale metadata (Table I).
	Dataset = gen.Dataset
	// Benchmark is one of the nine graph benchmarks.
	Benchmark = algo.Benchmark
	// Workload is a characterized benchmark-input combination.
	Workload = core.Workload
	// M is the machine-choice vector (M1-M20).
	M = config.M
	// Accelerator describes one simulated accelerator.
	Accelerator = machine.Accel
	// Pair is a GPU+multicore system.
	Pair = machine.Pair
	// Predictor maps characterizations to machine choices.
	Predictor = predict.Predictor
	// TrainablePredictor is a predictor fitted on the offline database.
	TrainablePredictor = predict.Trainable
	// FeatureVector is the 17-dimensional (B, I) characterization.
	FeatureVector = feature.Vector
	// RunReport is the outcome of one scheduled execution.
	RunReport = core.RunReport
	// Baselines holds the GPU-only / multicore-only / ideal references.
	Baselines = core.Baselines
	// TrainingConfig sizes offline training.
	TrainingConfig = train.Config
	// TrainingDB is the offline (B,I) -> M database.
	TrainingDB = train.DB
	// Objective selects performance or energy optimization.
	Objective = core.Objective

	// FaultProfile describes one accelerator's injected fault behaviour
	// (transient failures, thermal slowdown, memory-capacity loss).
	FaultProfile = fault.Profile
	// FaultInjector deterministically injects faults into executions.
	FaultInjector = fault.Injector
	// FaultPolicy configures retries, backoff, circuit breaking and
	// migration costs for resilient execution.
	FaultPolicy = fault.Policy
	// FixedChoice is the degenerate always-one-M predictor (the final
	// link of every fallback chain).
	FixedChoice = core.FixedChoice

	// Tracer is the request-scoped tracing and decision-provenance
	// engine; attach one with System.WithTracer to get per-run traces
	// (see RunReport.TraceID) and queryable provenance.
	Tracer = obs.Tracer
	// TracerOptions configure NewTracer (ring size, sampling, seed).
	TracerOptions = obs.Options
)

// NewTracer builds a tracer for traced Run/RunResilient calls.
func NewTracer(o TracerOptions) *Tracer { return obs.NewTracer(o) }

// Objectives.
const (
	// Performance minimizes completion time.
	Performance = core.Performance
	// Energy minimizes energy.
	Energy = core.Energy
)

// Benchmark names (paper Section VI-B).
const (
	BenchmarkSSSPBF     = algo.NameSSSPBF
	BenchmarkSSSPDelta  = algo.NameSSSPDelta
	BenchmarkBFS        = algo.NameBFS
	BenchmarkDFS        = algo.NameDFS
	BenchmarkPageRank   = algo.NamePageRank
	BenchmarkPageRankDP = algo.NamePageRankDP
	BenchmarkTriangle   = algo.NameTriangle
	BenchmarkCommunity  = algo.NameCommunity
	BenchmarkConnComp   = algo.NameConnComp
)

// Dataset short names (paper Table I).
const (
	DatasetCA   = "CA"
	DatasetFB   = "FB"
	DatasetLJ   = "LJ"
	DatasetTwtr = "Twtr"
	DatasetFrnd = "Frnd"
	DatasetCO   = "CO"
	DatasetCAGE = "CAGE"
	DatasetRgg  = "Rgg"
	DatasetKron = "Kron"
)

// Benchmarks returns the nine paper benchmarks.
func Benchmarks() []Benchmark { return algo.All() }

// BenchmarkByName looks a benchmark up by its paper name.
func BenchmarkByName(name string) (Benchmark, error) { return algo.ByName(name) }

// Datasets returns the Table I evaluation catalog. Small analogs keep
// everything fast; pass large=true for the bigger structural analogs used
// by the experiment harness.
func Datasets(large bool) []*Dataset {
	if large {
		return gen.TableICached(gen.Medium)
	}
	return gen.TableICached(gen.Small)
}

// DatasetByName finds a dataset by its Table I abbreviation (e.g. "CA").
func DatasetByName(datasets []*Dataset, short string) (*Dataset, error) {
	if d := gen.ByShort(datasets, short); d != nil {
		return d, nil
	}
	return nil, fmt.Errorf("heteromap: unknown dataset %q", short)
}

// LoadEdgeListFile reads a whitespace-separated edge-list file ("src dst
// [weight]" per line, '#'/'%' comments) into a schedulable Dataset: the
// graph's structure is measured directly (including a diameter
// approximation), so user graphs flow through exactly the same
// characterize -> predict -> deploy path as the Table I catalog.
func LoadEdgeListFile(path string, undirected bool) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("heteromap: load edge list: %w", err)
	}
	defer f.Close()
	name := filepath.Base(path)
	g, err := graph.ReadEdgeList(f, strings.TrimSuffix(name, filepath.Ext(name)), 0, undirected)
	if err != nil {
		return nil, fmt.Errorf("heteromap: load edge list %s: %w", path, err)
	}
	return feature.DatasetFromGraph(g), nil
}

// DatasetFromGraph wraps an in-memory graph as a schedulable Dataset
// with measured characteristics.
func DatasetFromGraph(g *Graph) *Dataset { return feature.DatasetFromGraph(g) }

// Accelerator constructors (Table II).
var (
	GTX750Ti     = machine.GTX750Ti
	GTX970       = machine.GTX970
	XeonPhi7120P = machine.XeonPhi7120P
	CPU40        = machine.CPU40
)

// PrimaryPair returns the paper's primary system: GTX-750Ti + Xeon Phi.
func PrimaryPair() Pair { return machine.PrimaryPair() }

// Pairs returns the four accelerator combinations of Section VI-A.
func Pairs() []Pair { return machine.AllPairs() }

// NewDecisionTree builds the Section IV analytical predictor for a pair.
func NewDecisionTree(p Pair) Predictor { return dtree.New(p.Limits()) }

// NewFaultInjector builds a fault injector with no active profiles; use
// SetProfile to break individual accelerators.
func NewFaultInjector(seed int64) *FaultInjector { return fault.NewInjector(seed) }

// NewChaosInjector builds an injector degrading both accelerators at the
// given fault rate (the -chaos flag's engine): transient failures at the
// rate, plus rate-scaled slowdown and memory-capacity loss.
func NewChaosInjector(seed int64, rate float64) *FaultInjector {
	return fault.NewChaosInjector(seed, rate)
}

// ChaosProfile returns the per-accelerator fault profile NewChaosInjector
// installs for a rate.
func ChaosProfile(rate float64) FaultProfile { return fault.ScaledProfile(rate) }

// DefaultFaultPolicy is the retry/backoff/breaker policy used by -chaos.
func DefaultFaultPolicy() FaultPolicy { return fault.DefaultPolicy() }

// NewDeepPredictor builds an untrained feed-forward network with the
// given hidden width (paper: 16/32/64/128; 128 is the selected model).
func NewDeepPredictor(p Pair, hidden int) TrainablePredictor {
	return nn.New(p.Limits(), nn.Options{Hidden: hidden})
}

// NewLinearRegression builds the Table IV linear baseline.
func NewLinearRegression(p Pair) TrainablePredictor { return regress.NewLinear(p.Limits()) }

// NewMultiRegression builds the 7th-order multiple regression.
func NewMultiRegression(p Pair) TrainablePredictor { return regress.NewMulti(p.Limits()) }

// BuildTrainingDB generates the offline database of Section V for a pair:
// synthetic benchmark-input combinations auto-tuned to their best M.
func BuildTrainingDB(p Pair, cfg TrainingConfig) *TrainingDB {
	return train.BuildDatabase(p, cfg)
}

// FastTraining returns a training configuration sized for interactive
// use; DefaultTraining matches the experiment harness.
func FastTraining() TrainingConfig    { return train.FastConfig() }
func DefaultTraining() TrainingConfig { return train.DefaultConfig() }

// System is the HeteroMap runtime: characterize -> predict -> deploy.
type System struct {
	inner    *core.System
	datasets []*Dataset
}

// NewSystem assembles a runtime from a pair and a (trained) predictor.
func NewSystem(p Pair, pred Predictor, obj Objective) *System {
	return &System{
		inner:    core.NewSystem(p, pred, obj),
		datasets: Datasets(false),
	}
}

// NewDefaultSystem builds the primary pair with a freshly trained deep
// predictor (fast training configuration) optimizing performance. The
// analytical decision tree is installed as a fallback: if the trained
// network ever panics or emits a non-finite M, scheduling degrades to
// the tree (and finally to a fixed multicore choice) instead of failing.
func NewDefaultSystem() (*System, error) {
	pair := PrimaryPair()
	deep := NewDeepPredictor(pair, 128)
	db := BuildTrainingDB(pair, FastTraining())
	if err := deep.Train(db.Samples); err != nil {
		return nil, err
	}
	return NewSystem(pair, deep, Performance).WithFallbacks(NewDecisionTree(pair)), nil
}

// Pair returns the system's accelerator pair.
func (s *System) Pair() Pair { return s.inner.Pair }

// Predictor returns the system's predictor.
func (s *System) Predictor() Predictor { return s.inner.Predictor }

// Characterize runs a benchmark on a dataset's generated graph and
// packages the measured profile with the (B, I) characterization.
func (s *System) Characterize(bench Benchmark, ds *Dataset) (*Workload, error) {
	return core.Characterize(bench, ds)
}

// WithTracer attaches a tracer so each Run/RunResilient produces a
// retained trace and RunReport.TraceID identifies it.
func (s *System) WithTracer(t *Tracer) *System {
	s.inner.WithTracer(t)
	return s
}

// WithFallbacks installs predictors consulted (in order) when the
// primary predictor panics or emits an invalid M, and returns the system
// for chaining. The chain always ends in a fixed deployable choice.
func (s *System) WithFallbacks(ps ...Predictor) *System {
	s.inner.WithFallbacks(ps...)
	return s
}

// Run deploys an already characterized workload.
func (s *System) Run(w *Workload) RunReport { return s.inner.Run(w) }

// RunResilient deploys a workload under injected faults: transient
// failures are retried with capped exponential backoff and failed over
// to the other accelerator, with every retry, wait and migration charged
// into the report's TotalSeconds. A nil injector injects nothing.
func (s *System) RunResilient(w *Workload, inj *FaultInjector, pol FaultPolicy) RunReport {
	return s.inner.RunResilient(w, inj, pol, nil)
}

// Schedule characterizes and deploys a benchmark on a named Table I
// dataset in one call.
func (s *System) Schedule(benchName, datasetShort string) (RunReport, error) {
	bench, err := BenchmarkByName(benchName)
	if err != nil {
		return RunReport{}, err
	}
	ds, err := DatasetByName(s.datasets, datasetShort)
	if err != nil {
		return RunReport{}, err
	}
	w, err := s.Characterize(bench, ds)
	if err != nil {
		return RunReport{}, err
	}
	return s.Run(w), nil
}

// Baselines computes the GPU-only, multicore-only and ideal references
// for a workload on this system's pair.
func (s *System) Baselines(w *Workload) Baselines {
	return core.ComputeBaselines(s.inner.Pair, w, s.inner.Objective)
}

// PhasedSchedule is a phase-level execution plan (the temporal extension
// the paper leaves as future work — see internal/phased).
type PhasedSchedule = phased.Schedule

// PlanPhased assigns each phase of an already characterized workload to
// its best accelerator, charging per-iteration PCIe migration costs, and
// returns the plan together with the single-accelerator baseline it must
// beat. The per-accelerator configurations come from this system's
// predictor (forced onto each accelerator in turn).
func (s *System) PlanPhased(w *Workload) PhasedSchedule {
	pair := s.inner.Pair
	limits := pair.Limits()
	m := s.inner.Predictor.Predict(w.Features)
	gpuM, mcM := m, m
	gpuM.Accelerator = config.GPU
	mcM.Accelerator = config.Multicore
	// Fill the side the predictor did not configure with deployable
	// defaults.
	if m.Accelerator == config.GPU {
		d := config.DefaultMulticore(limits)
		mcM.Cores, mcM.ThreadsPerCore, mcM.SIMDWidth = d.Cores, d.ThreadsPerCore, d.SIMDWidth
	} else {
		d := config.DefaultGPU(limits)
		gpuM.GlobalThreads, gpuM.LocalThreads = d.GlobalThreads, d.LocalThreads
	}
	return phased.Plan(pair, w.Job, gpuM.Clamp(limits), mcM.Clamp(limits))
}
