package heteromap

import (
	"os"
	"strings"
	"sync"
	"testing"

	"heteromap/internal/config"
)

var (
	sysOnce sync.Once
	sysErr  error
	sys     *System
)

func defaultSystem(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() { sys, sysErr = NewDefaultSystem() })
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sys
}

func TestPublicCatalogs(t *testing.T) {
	if len(Benchmarks()) != 9 {
		t.Fatal("nine benchmarks")
	}
	if len(Datasets(false)) != 9 {
		t.Fatal("nine datasets")
	}
	if len(Pairs()) != 4 {
		t.Fatal("four pairs")
	}
	if _, err := BenchmarkByName(BenchmarkSSSPDelta); err != nil {
		t.Fatal(err)
	}
	if _, err := BenchmarkByName("missing"); err == nil {
		t.Fatal("expected benchmark error")
	}
	if _, err := DatasetByName(Datasets(false), DatasetCA); err != nil {
		t.Fatal(err)
	}
	if _, err := DatasetByName(Datasets(false), "missing"); err == nil {
		t.Fatal("expected dataset error")
	}
}

func TestAcceleratorConstructors(t *testing.T) {
	if GTX750Ti().Name != "GTX-750Ti" || XeonPhi7120P().Name != "Xeon-Phi-7120P" {
		t.Fatal("accelerator constructors")
	}
	p := PrimaryPair()
	if p.GPU.Name != "GTX-750Ti" {
		t.Fatal("primary pair")
	}
}

func TestDecisionTreeSystemEndToEnd(t *testing.T) {
	pair := PrimaryPair()
	s := NewSystem(pair, NewDecisionTree(pair), Performance)
	rep, err := s.Schedule(BenchmarkSSSPDelta, DatasetCA)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 7: SSSP-Delta on CA selects the multicore.
	if rep.Chosen.Accelerator != config.Multicore {
		t.Fatalf("SSSP-Delta-CA chose %v", rep.Chosen.Accelerator)
	}
	if rep.TotalSeconds <= 0 {
		t.Fatal("no simulated time")
	}
	bl := s.Baselines(rep.Workload)
	if bl.Ideal.Seconds <= 0 {
		t.Fatal("baselines")
	}
	// The prediction must land in the ideal's neighbourhood.
	if rep.TotalSeconds > bl.Ideal.Seconds*2 {
		t.Fatalf("prediction %v far from ideal %v", rep.TotalSeconds, bl.Ideal.Seconds)
	}
}

func TestDefaultSystemQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a deep model")
	}
	s := defaultSystem(t)
	rep, err := s.Schedule(BenchmarkBFS, DatasetTwtr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload.Name() != "BFS-Twtr" {
		t.Fatal("workload identity")
	}
	if rep.Machine.Utilization <= 0 || rep.Machine.EnergyJ <= 0 {
		t.Fatal("degenerate report")
	}
}

func TestTrainablePredictorsThroughPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	pair := PrimaryPair()
	db := BuildTrainingDB(pair, TrainingConfig{Samples: 120, Seed: 3})
	if len(db.Samples) != 120 {
		t.Fatal("db size")
	}
	for _, p := range []TrainablePredictor{
		NewDeepPredictor(pair, 16),
		NewLinearRegression(pair),
		NewMultiRegression(pair),
	} {
		if err := p.Train(db.Samples); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		s := NewSystem(pair, p, Performance)
		rep, err := s.Schedule(BenchmarkPageRank, DatasetFB)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if rep.TotalSeconds <= 0 {
			t.Fatalf("%s: no time", p.Name())
		}
	}
}

func TestCharacterizeExposesDerivedB(t *testing.T) {
	pair := PrimaryPair()
	s := NewSystem(pair, NewDecisionTree(pair), Performance)
	b, _ := BenchmarkByName(BenchmarkDFS)
	ds, _ := DatasetByName(Datasets(false), DatasetCO)
	w, err := s.Characterize(b, ds)
	if err != nil {
		t.Fatal(err)
	}
	if w.DerivedB.PhaseSum() == 0 {
		t.Fatal("derived B missing")
	}
	if w.Work.TotalOps() == 0 {
		t.Fatal("profile missing")
	}
}

func TestLoadEdgeListFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/mini.el"
	content := "# test graph\n0 1 2\n1 2 3\n2 3 1\n3 0 4\n0 2 2\n"
	if err := writeFile(path, content); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadEdgeListFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "mini" {
		t.Fatalf("dataset name %q", ds.Name)
	}
	if ds.Graph.NumVertices() != 4 || ds.Graph.NumEdges() != 10 {
		t.Fatalf("V=%d E=%d", ds.Graph.NumVertices(), ds.Graph.NumEdges())
	}
	// User graphs flow through the normal scheduling path.
	pair := PrimaryPair()
	s := NewSystem(pair, NewDecisionTree(pair), Performance)
	b, _ := BenchmarkByName(BenchmarkSSSPBF)
	w, err := s.Characterize(b, ds)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run(w)
	if rep.TotalSeconds <= 0 {
		t.Fatal("no simulated time for user graph")
	}
	// Missing files error.
	if _, err := LoadEdgeListFile(dir+"/missing.el", true); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadEdgeListFileMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := []struct{ name, content, want string }{
		{"garbage.el", "0 1\nnot an edge\n", "line 2"},
		{"negative.el", "0 1\n-3 4\n", "negative vertex id"},
		{"empty.el", "", "empty edge list"},
	}
	for _, c := range cases {
		path := dir + "/" + c.name
		if err := writeFile(path, c.content); err != nil {
			t.Fatal(err)
		}
		_, err := LoadEdgeListFile(path, true)
		if err == nil {
			t.Errorf("%s: malformed edge list accepted", c.name)
			continue
		}
		// The error must name the file and the failure.
		if !strings.Contains(err.Error(), path) {
			t.Errorf("%s: error %q does not name the path", c.name, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func writeFile(path, content string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(content); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestPlanPhasedPublicAPI(t *testing.T) {
	pair := PrimaryPair()
	s := NewSystem(pair, NewDecisionTree(pair), Performance)
	b, _ := BenchmarkByName(BenchmarkSSSPDelta)
	ds, _ := DatasetByName(Datasets(false), DatasetCA)
	w, err := s.Characterize(b, ds)
	if err != nil {
		t.Fatal(err)
	}
	plan := s.PlanPhased(w)
	if len(plan.Assignments) != len(w.Work.Phases) {
		t.Fatalf("plan covers %d phases, work has %d",
			len(plan.Assignments), len(w.Work.Phases))
	}
	if plan.TotalSeconds <= 0 || plan.SingleSeconds <= 0 {
		t.Fatal("degenerate phased plan")
	}
	if plan.TotalSeconds > plan.SingleSeconds*1.0000001 {
		t.Fatal("phased plan must never lose to its own single baseline")
	}
}

func TestEnergyObjectiveSystem(t *testing.T) {
	pair := PrimaryPair()
	s := NewSystem(pair, NewDecisionTree(pair), Energy)
	rep, err := s.Schedule(BenchmarkCommunity, DatasetFB)
	if err != nil {
		t.Fatal(err)
	}
	bl := s.Baselines(rep.Workload)
	// Energy baselines must minimize energy, not time.
	minE := bl.GPUOnly.EnergyJ
	if bl.MulticoreOnly.EnergyJ < minE {
		minE = bl.MulticoreOnly.EnergyJ
	}
	if bl.Ideal.EnergyJ != minE {
		t.Fatal("energy ideal selection")
	}
}
