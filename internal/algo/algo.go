// Package algo implements the nine graph benchmarks of the HeteroMap paper
// (Section VI-B): SSSP-Bellman-Ford, SSSP-Delta-stepping, BFS, DFS,
// PageRank, PageRank-DP, Triangle Counting, Community Detection and
// Connected Components.
//
// Every benchmark actually computes its result (tests validate against
// reference implementations) while recording an instruction/access-level
// work profile (internal/profile). The profile is what the accelerator
// simulator consumes; the result is what correctness tests consume. The
// phase structure of each implementation matches the paper's B-variable
// classification in Fig 5/6 — e.g. SSSP-BF is pure vertex division,
// BFS is pareto-division, DFS is push-pop, SSSP-Delta mixes push-pop with
// a GAP-style bucket reduction.
package algo

import (
	"fmt"

	"heteromap/internal/graph"
	"heteromap/internal/profile"
)

// Result summarizes a benchmark execution for validation purposes.
type Result struct {
	// Checksum is an algorithm-specific scalar (sum of distances,
	// triangle count, ...) compared against reference implementations.
	Checksum float64
	// Iterations is the number of outer iterations until convergence.
	Iterations int64
	// Visited counts vertices touched, where meaningful.
	Visited int64
}

// RunFunc executes a benchmark on a graph and returns its result and
// measured work profile.
type RunFunc func(g *graph.Graph) (Result, *profile.Work)

// Benchmark describes one registered graph benchmark.
type Benchmark struct {
	// Name is the paper's benchmark name, e.g. "SSSP-BF".
	Name string
	// NeedsWeights marks benchmarks that read edge weights (unweighted
	// graphs are treated as unit-weight).
	NeedsWeights bool
	// NeedsUndirected marks benchmarks whose semantics assume symmetric
	// adjacency (triangle counting, community detection, components).
	NeedsUndirected bool
	// Run executes the benchmark.
	Run RunFunc
}

// Benchmark names in the paper's order (Fig 5 / Fig 11).
const (
	NameSSSPBF     = "SSSP-BF"
	NameSSSPDelta  = "SSSP-Delta"
	NameBFS        = "BFS"
	NameDFS        = "DFS"
	NamePageRank   = "PageRank"
	NamePageRankDP = "PageRank-DP"
	NameTriangle   = "Tri.Cnt"
	NameCommunity  = "Comm"
	NameConnComp   = "Conn.Comp"
)

// All returns the nine paper benchmarks in Fig 5 order.
func All() []Benchmark {
	return []Benchmark{
		{Name: NameSSSPBF, NeedsWeights: true, Run: runSSSPBF},
		{Name: NameSSSPDelta, NeedsWeights: true, Run: runSSSPDelta},
		{Name: NameBFS, Run: runBFS},
		{Name: NameDFS, Run: runDFS},
		{Name: NamePageRankDP, Run: runPageRankDP},
		{Name: NamePageRank, Run: runPageRank},
		{Name: NameTriangle, NeedsUndirected: true, Run: runTriangle},
		{Name: NameCommunity, NeedsUndirected: true, Run: runCommunity},
		{Name: NameConnComp, NeedsUndirected: true, Run: runConnComp},
	}
}

// ByName returns the benchmark with the given paper name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("algo: unknown benchmark %q", name)
}

// Names returns the nine benchmark names in paper order.
func Names() []string {
	bs := All()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

// SourceVertex picks the deterministic traversal source used by all
// traversal benchmarks: the highest-degree vertex (ties to the lowest id).
// High-degree sources sit inside the giant component of every catalog
// graph, so traversals exercise the whole structure.
func SourceVertex(g *graph.Graph) int {
	best, bestDeg := 0, -1
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// recorder accumulates a profile.Work during an instrumented run.
type recorder struct {
	work   profile.Work
	index  map[string]int
	gStats graph.DegreeStats
}

func newRecorder(bench string, g *graph.Graph) *recorder {
	r := &recorder{index: make(map[string]int)}
	// Preallocate so phase() pointers stay valid: appends must never
	// reallocate the backing array while callers hold phase pointers.
	r.work.Phases = make([]profile.Phase, 0, 8)
	r.work.Benchmark = bench
	r.work.Graph = g.Name
	r.work.Locality = graph.LocalityScore(g)
	r.gStats = graph.ComputeDegreeStats(g)
	r.work.Skew = r.gStats.Skew
	return r
}

// phase returns the accumulator for a named phase, creating it on first
// use. All iterations of a benchmark accumulate into the same phase
// entry. Callers hold the returned pointer for the whole run, so the
// phase slice must never reallocate (see newRecorder).
func (r *recorder) phase(name string, kind profile.PhaseKind) *profile.Phase {
	if i, ok := r.index[name]; ok {
		return &r.work.Phases[i]
	}
	if len(r.work.Phases) == cap(r.work.Phases) {
		panic("algo: too many phases; raise the recorder preallocation")
	}
	r.index[name] = len(r.work.Phases)
	r.work.Phases = append(r.work.Phases, profile.Phase{Kind: kind, Name: name})
	return &r.work.Phases[len(r.work.Phases)-1]
}

// barrier records global barriers (B13).
func (r *recorder) barrier(n int64) { r.work.Barriers += n }

// markDiameterBound flags profiles whose iteration count tracks the
// input diameter (see profile.Work.DiameterBound).
func (r *recorder) markDiameterBound() { r.work.DiameterBound = true }

// finish stamps iteration counts and returns the completed profile.
func (r *recorder) finish(iterations int64) *profile.Work {
	r.work.Iterations = iterations
	return &r.work
}

// edgeWeight returns the weight of edge index i of vertex v, treating
// unweighted graphs as unit weight.
func edgeWeight(ws []float32, i int) float32 {
	if ws == nil {
		return 1
	}
	return ws[i]
}

const (
	bytesPerEdge   = 4
	bytesPerVertex = 4
	bytesPerRank   = 8
)
