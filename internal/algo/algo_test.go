package algo

import (
	"testing"

	"heteromap/internal/gen"
	"heteromap/internal/graph"
	"heteromap/internal/profile"
)

// Shared small test graphs.

func lineGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("line", n).Undirected().Weighted()
	for i := 0; i < n-1; i++ {
		b.Add(int32(i), int32(i+1), float32(i%3+1))
	}
	return b.MustBuild()
}

func smallRandom(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	return gen.UniformUndirected("rand", 60, 200, 8, seed)
}

func TestAllRegistersNineBenchmarks(t *testing.T) {
	bs := All()
	if len(bs) != 9 {
		t.Fatalf("got %d benchmarks, want 9", len(bs))
	}
	want := map[string]bool{
		NameSSSPBF: true, NameSSSPDelta: true, NameBFS: true, NameDFS: true,
		NamePageRank: true, NamePageRankDP: true, NameTriangle: true,
		NameCommunity: true, NameConnComp: true,
	}
	for _, b := range bs {
		if !want[b.Name] {
			t.Errorf("unexpected benchmark %q", b.Name)
		}
		delete(want, b.Name)
		if b.Run == nil {
			t.Errorf("%s has nil Run", b.Name)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing benchmarks: %v", want)
	}
}

func TestByName(t *testing.T) {
	b, err := ByName(NameBFS)
	if err != nil || b.Name != NameBFS {
		t.Fatalf("ByName(BFS)=%v,%v", b.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
	if len(Names()) != 9 {
		t.Fatal("Names() should list nine")
	}
}

func TestSourceVertexPicksHighestDegree(t *testing.T) {
	b := graph.NewBuilder("star", 5).Undirected()
	for i := 1; i < 5; i++ {
		b.Add(2, int32(i%5), 0)
	}
	g := b.MustBuild()
	if got := SourceVertex(g); got != 2 {
		t.Fatalf("source=%d want hub 2", got)
	}
}

func TestEveryBenchmarkProducesValidProfile(t *testing.T) {
	g := smallRandom(t, 3)
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, w := b.Run(g)
			if err := w.Validate(); err != nil {
				t.Fatalf("profile invalid: %v", err)
			}
			if w.Benchmark != b.Name {
				t.Fatalf("profile benchmark %q", w.Benchmark)
			}
			if w.TotalOps() == 0 {
				t.Fatal("no work recorded")
			}
			if res.Iterations <= 0 {
				t.Fatalf("iterations=%d", res.Iterations)
			}
			if w.Locality < 0 || w.Locality > 1 {
				t.Fatalf("locality %v", w.Locality)
			}
		})
	}
}

func TestPhaseKindsMatchPaperClassification(t *testing.T) {
	g := smallRandom(t, 4)
	wantKinds := map[string]profile.PhaseKind{
		NameSSSPBF:     profile.VertexDivision,
		NameBFS:        profile.ParetoDynamic,
		NameDFS:        profile.PushPop,
		NameSSSPDelta:  profile.PushPop,
		NamePageRank:   profile.VertexDivision,
		NamePageRankDP: profile.VertexDivision,
		NameTriangle:   profile.VertexDivision,
		NameCommunity:  profile.VertexDivision,
		NameConnComp:   profile.VertexDivision,
	}
	for _, b := range All() {
		_, w := b.Run(g)
		shares := w.PhaseShare()
		dominant := profile.PhaseKind(0)
		for k := profile.PhaseKind(1); k < profile.NumPhaseKinds; k++ {
			if shares[k] > shares[dominant] {
				dominant = k
			}
		}
		if dominant != wantKinds[b.Name] {
			t.Errorf("%s dominant phase %v want %v (B classification)",
				b.Name, dominant, wantKinds[b.Name])
		}
	}
}

func TestDiameterBoundFlags(t *testing.T) {
	g := smallRandom(t, 5)
	wantBound := map[string]bool{
		NameSSSPBF: true, NameSSSPDelta: true, NameBFS: true, NameDFS: true,
		NameConnComp: true,
		NamePageRank: false, NamePageRankDP: false, NameTriangle: false,
		NameCommunity: false,
	}
	for _, b := range All() {
		_, w := b.Run(g)
		if w.DiameterBound != wantBound[b.Name] {
			t.Errorf("%s DiameterBound=%v want %v", b.Name, w.DiameterBound, wantBound[b.Name])
		}
	}
}

func TestEmptyGraphsDoNotPanic(t *testing.T) {
	empty := graph.NewBuilder("empty", 0).MustBuild()
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on empty graph: %v", r)
				}
			}()
			// SourceVertex of an empty graph is 0 which is out of range;
			// benchmarks guard internally via n == 0 checks, so call the
			// algorithm entry points directly.
			switch b.Name {
			case NameSSSPBF:
				SSSPBellmanFord(empty, 0)
			case NameSSSPDelta:
				SSSPDelta(empty, 0, 0)
			case NameBFS:
				BFS(empty, 0)
			case NameDFS:
				DFS(empty, 0)
			case NamePageRank:
				PageRank(empty, 0)
			case NamePageRankDP:
				PageRankDP(empty, 0)
			case NameTriangle:
				TriangleCount(empty)
			case NameCommunity:
				CommunityDetect(empty, 0)
			case NameConnComp:
				ConnectedComponents(empty)
			}
		})
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g := graph.NewBuilder("one", 1).MustBuild()
	if _, res, _ := BFS(g, 0); res.Visited != 1 {
		t.Fatalf("BFS single vertex visited=%d", res.Visited)
	}
	if _, res, _ := DFS(g, 0); res.Visited != 1 {
		t.Fatalf("DFS single vertex visited=%d", res.Visited)
	}
	if dist, _, _ := SSSPBellmanFord(g, 0); dist[0] != 0 {
		t.Fatalf("SSSP single vertex dist=%v", dist[0])
	}
}
