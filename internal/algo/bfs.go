package algo

import (
	"heteromap/internal/graph"
	"heteromap/internal/profile"
)

// BFS computes breadth-first distances with the level-synchronous frontier
// algorithm. The paper classifies BFS as pure pareto-division (B3): the
// frontier is a dynamically growing vertex front, one global barrier
// separates levels, and visited-marking is the only contended update.
func BFS(g *graph.Graph, src int) ([]int32, Result, *profile.Work) {
	n := g.NumVertices()
	rec := newRecorder(NameBFS, g)
	rec.markDiameterBound()
	ph := rec.phase("frontier-expand", profile.ParetoDynamic)

	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	if n == 0 {
		return depth, Result{}, rec.finish(0)
	}
	depth[src] = 0

	frontier := []int32{int32(src)}
	var levels int64
	var visited int64 = 1
	var maxFrontier int64 = 1
	for len(frontier) > 0 {
		levels++
		var next []int32
		for _, v := range frontier {
			ph.VertexOps++
			dv := depth[v]
			for _, u := range g.Neighbors(int(v)) {
				ph.EdgeOps++
				ph.IndexedAccesses += 2 // depth[u] read + frontier append
				if depth[u] < 0 {
					ph.Atomics++ // CAS-style visited marking
					depth[u] = dv + 1
					next = append(next, u)
					visited++
				}
			}
		}
		if int64(len(next)) > maxFrontier {
			maxFrontier = int64(len(next))
		}
		rec.barrier(1)
		frontier = next
	}

	ph.ReadOnlyBytes = g.FootprintBytes()
	ph.ReadWriteBytes = 2 * int64(n) * bytesPerVertex // depth + frontier arrays
	ph.LocalBytes = maxFrontier * bytesPerVertex
	ph.ChainLength = levels
	ph.ParallelItems = maxFrontier

	var sum float64
	for _, d := range depth {
		if d >= 0 {
			sum += float64(d)
		}
	}
	res := Result{Checksum: sum, Iterations: levels, Visited: visited}
	return depth, res, rec.finish(levels)
}

func runBFS(g *graph.Graph) (Result, *profile.Work) {
	_, res, w := BFS(g, SourceVertex(g))
	return res, w
}
