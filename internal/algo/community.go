package algo

import (
	"heteromap/internal/graph"
	"heteromap/internal/profile"
)

// Community detection parameters.
const (
	commMaxIters = 10
	// commStableFrac stops iterating once fewer than this fraction of
	// vertices change labels in a sweep.
	commStableFrac = 0.001
)

// CommunityDetect runs synchronous weighted label propagation: every
// vertex adopts the label with the largest total incident edge weight
// among its neighbors (ties to the smallest label, which keeps the
// algorithm deterministic), iterating until labels stabilize. Weight
// accumulation is floating point (B6), the label array is read-write
// shared (B10), and the per-sweep change count is a reduction (B5) — the
// profile that sends Comm to the multicore in the paper.
//
// It returns the final label per vertex.
func CommunityDetect(g *graph.Graph, maxIters int) ([]int32, Result, *profile.Work) {
	n := g.NumVertices()
	rec := newRecorder(NameCommunity, g)
	prop := rec.phase("label-propagate", profile.VertexDivision)
	red := rec.phase("change-reduce", profile.Reduction)

	labels := make([]int32, n)
	next := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	if n == 0 {
		return labels, Result{}, rec.finish(0)
	}
	if maxIters <= 0 {
		maxIters = commMaxIters
	}

	// Labels are vertex ids, so a direct-indexed score table with a
	// touched list gives O(degree) scoring per vertex (a hash table here
	// would dominate runtime on hub-heavy graphs).
	scores := make([]float64, n)
	touched := make([]int32, 0, 64)
	var iterations int64
	for iter := 0; iter < maxIters; iter++ {
		iterations++
		changes := 0
		for v := 0; v < n; v++ {
			prop.VertexOps++
			nb := g.Neighbors(v)
			ws := g.NeighborWeights(v)
			if len(nb) == 0 {
				next[v] = labels[v]
				continue
			}
			for i, u := range nb {
				prop.EdgeOps++
				prop.FPOps++              // weight accumulate
				prop.IndexedAccesses += 2 // label[u], weight
				prop.IndirectAccesses++   // score table is data-addressed
				lbl := labels[u]
				if scores[lbl] == 0 {
					touched = append(touched, lbl)
				}
				scores[lbl] += float64(edgeWeight(ws, i))
			}
			best := labels[v]
			var bestScore float64 = -1
			for _, lbl := range touched {
				prop.FPOps++
				s := scores[lbl]
				if s > bestScore || (s == bestScore && lbl < best) {
					best, bestScore = lbl, s
				}
				scores[lbl] = 0
			}
			touched = touched[:0]
			next[v] = best
			if best != labels[v] {
				changes++
			}
		}
		rec.barrier(1)
		// Reduction: count label changes to decide convergence.
		for v := 0; v < n; v++ {
			red.VertexOps++
			red.IndexedAccesses += 2
		}
		red.Atomics += int64(n) / 64
		rec.barrier(1)
		labels, next = next, labels
		if float64(changes) < commStableFrac*float64(n) {
			break
		}
	}

	prop.ReadOnlyBytes = g.FootprintBytes()
	prop.ReadWriteBytes = 2 * int64(n) * bytesPerVertex
	prop.LocalBytes = int64(n) * bytesPerVertex / 4 // per-thread score tables
	prop.ChainLength = iterations
	prop.ParallelItems = int64(n)
	red.ReadWriteBytes = int64(n) * bytesPerVertex
	red.ChainLength = iterations
	red.ParallelItems = int64(n)

	// Count distinct communities for the checksum.
	seen := make(map[int32]struct{}, 64)
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	res := Result{Checksum: float64(len(seen)), Iterations: iterations, Visited: int64(n)}
	return labels, res, rec.finish(iterations)
}

func runCommunity(g *graph.Graph) (Result, *profile.Work) {
	_, res, w := CommunityDetect(g, 0)
	return res, w
}
