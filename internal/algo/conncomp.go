package algo

import (
	"heteromap/internal/graph"
	"heteromap/internal/profile"
)

// ConnectedComponents labels weakly connected components with a
// Shiloach-Vishkin style hook-and-compress algorithm: every edge hooks the
// larger parent onto the smaller (an indirect, data-dependent write —
// exactly the B8 "double pointer" pattern the paper flags for
// Conn.Comp.), then pointer-jumping compresses parent chains until a fixed
// point. The graph should be undirected for component semantics.
//
// It returns the representative (component root) per vertex.
func ConnectedComponents(g *graph.Graph) ([]int32, Result, *profile.Work) {
	n := g.NumVertices()
	rec := newRecorder(NameConnComp, g)
	rec.markDiameterBound()
	hook := rec.phase("hook", profile.VertexDivision)
	jump := rec.phase("compress", profile.Reduction)

	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	if n == 0 {
		return parent, Result{}, rec.finish(0)
	}

	var iterations int64
	for {
		iterations++
		changed := false
		// Hook: parent[parent[v]] = min over neighbors (indirect writes).
		for v := 0; v < n; v++ {
			hook.VertexOps++
			pv := parent[v]
			hook.IndexedAccesses++
			for _, u := range g.Neighbors(v) {
				hook.EdgeOps++
				hook.IntOps++
				hook.IndirectAccesses += 2 // parent[u] and parent[parent[..]] chase
				pu := parent[u]
				if pu < pv {
					// Hook the tree root, not just the vertex — the
					// indirect double-pointer write.
					parent[pv] = pu
					hook.Atomics++ // contended min-update
					pv = pu
					changed = true
				}
			}
		}
		rec.barrier(1)
		// Compress: pointer jumping until every vertex points at a root.
		for v := 0; v < n; v++ {
			jump.VertexOps++
			for parent[v] != parent[parent[v]] {
				jump.IndirectAccesses += 2
				jump.IntOps++
				parent[v] = parent[parent[v]]
			}
			jump.IndexedAccesses++
		}
		rec.barrier(1)
		if !changed {
			break
		}
	}

	hook.ReadOnlyBytes = g.FootprintBytes()
	hook.ReadWriteBytes = int64(n) * bytesPerVertex
	hook.LocalBytes = int64(n) * bytesPerVertex / 8
	hook.ChainLength = iterations
	hook.ParallelItems = int64(n)
	jump.ReadWriteBytes = int64(n) * bytesPerVertex
	jump.ChainLength = iterations
	jump.ParallelItems = int64(n)

	seen := make(map[int32]struct{}, 64)
	for _, p := range parent {
		seen[p] = struct{}{}
	}
	res := Result{Checksum: float64(len(seen)), Iterations: iterations, Visited: int64(n)}
	return parent, res, rec.finish(iterations)
}

func runConnComp(g *graph.Graph) (Result, *profile.Work) {
	_, res, w := ConnectedComponents(g)
	return res, w
}
