package algo

import (
	"math"
	"testing"
	"testing/quick"

	"heteromap/internal/gen"
	"heteromap/internal/graph"
)

func TestSSSPBellmanFordMatchesDijkstra(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := smallRandom(t, seed)
		src := SourceVertex(g)
		got, _, _ := SSSPBellmanFord(g, src)
		want := refDijkstra(g, src)
		for v := range want {
			if math.Abs(float64(got[v]-want[v])) > 1e-3 {
				t.Fatalf("seed %d: dist[%d]=%v want %v", seed, v, got[v], want[v])
			}
		}
	}
}

func TestSSSPDeltaMatchesDijkstra(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := smallRandom(t, seed)
		src := SourceVertex(g)
		got, _, _ := SSSPDelta(g, src, 0)
		want := refDijkstra(g, src)
		for v := range want {
			if math.Abs(float64(got[v]-want[v])) > 1e-3 {
				t.Fatalf("seed %d: dist[%d]=%v want %v", seed, v, got[v], want[v])
			}
		}
	}
}

func TestSSSPDeltaVariousBucketWidths(t *testing.T) {
	g := smallRandom(t, 9)
	src := SourceVertex(g)
	want := refDijkstra(g, src)
	for _, delta := range []float32{0.5, 1, 4, 16, 1000} {
		got, _, _ := SSSPDelta(g, src, delta)
		for v := range want {
			if math.Abs(float64(got[v]-want[v])) > 1e-3 {
				t.Fatalf("delta=%v: dist[%d]=%v want %v", delta, v, got[v], want[v])
			}
		}
	}
}

func TestSSSPUnweightedGraphUsesUnitWeights(t *testing.T) {
	b := graph.NewBuilder("unweighted", 4).Undirected()
	b.Add(0, 1, 0)
	b.Add(1, 2, 0)
	b.Add(2, 3, 0)
	g := b.MustBuild()
	dist, _, _ := SSSPBellmanFord(g, 0)
	for v, want := range []float32{0, 1, 2, 3} {
		if dist[v] != want {
			t.Fatalf("dist[%d]=%v want %v", v, dist[v], want)
		}
	}
}

func TestSSSPUnreachableStaysInfinite(t *testing.T) {
	b := graph.NewBuilder("dc", 4).Undirected().Weighted()
	b.Add(0, 1, 1)
	// 2, 3 disconnected.
	g := b.MustBuild()
	dist, res, _ := SSSPBellmanFord(g, 0)
	if !math.IsInf(float64(dist[2]), 1) || !math.IsInf(float64(dist[3]), 1) {
		t.Fatalf("unreachable distances %v %v", dist[2], dist[3])
	}
	if res.Visited != 2 {
		t.Fatalf("visited=%d want 2", res.Visited)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := smallRandom(t, seed)
		src := SourceVertex(g)
		got, _, _ := BFS(g, src)
		want := refBFSDepths(g, src)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("seed %d: depth[%d]=%d want %d", seed, v, got[v], want[v])
			}
		}
	}
}

func TestBFSLevelsEqualLineLength(t *testing.T) {
	g := lineGraph(t, 12)
	_, res, w := BFS(g, 0)
	if res.Iterations != 12 { // 11 levels of expansion + final empty check loop runs 11 times... levels counted per non-empty frontier
		// levels = 12 frontiers processed (vertex 0 .. 11)
		t.Fatalf("levels=%d want 12", res.Iterations)
	}
	if w.Phases[0].ChainLength != res.Iterations {
		t.Fatalf("chain %d != levels %d", w.Phases[0].ChainLength, res.Iterations)
	}
}

func TestDFSVisitsExactlyReachable(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := smallRandom(t, seed)
		src := SourceVertex(g)
		order, res, _ := DFS(g, src)
		want := refBFSDepths(g, src) // reachability reference
		for v := range want {
			reached := order[v] >= 0
			if reached != (want[v] >= 0) {
				t.Fatalf("seed %d: vertex %d reachability mismatch", seed, v)
			}
		}
		// Discovery order is a permutation 0..visited-1.
		seen := map[int32]bool{}
		for _, o := range order {
			if o < 0 {
				continue
			}
			if seen[o] {
				t.Fatalf("duplicate discovery index %d", o)
			}
			seen[o] = true
		}
		if int64(len(seen)) != res.Visited {
			t.Fatalf("order indices %d != visited %d", len(seen), res.Visited)
		}
	}
}

func TestDFSDeterministicOrder(t *testing.T) {
	g := smallRandom(t, 7)
	src := SourceVertex(g)
	a, _, _ := DFS(g, src)
	b, _, _ := DFS(g, src)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("DFS order not deterministic")
		}
	}
	if a[src] != 0 {
		t.Fatalf("source discovery index %d want 0", a[src])
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	g := smallRandom(t, 11)
	got, _, _ := PageRank(g, 0)
	want := refPageRank(g, prMaxIters)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d]=%v want %v", v, got[v], want[v])
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	// On graphs without dangling vertices (undirected connected), rank
	// mass is conserved.
	g := lineGraph(t, 20)
	ranks, res, _ := PageRank(g, 0)
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %v", sum)
	}
	if res.Iterations < 2 {
		t.Fatalf("iterations=%d suspiciously low", res.Iterations)
	}
}

func TestPageRankDPMatchesPull(t *testing.T) {
	// Push and pull formulations agree on symmetric graphs without
	// dangling vertices.
	g := lineGraph(t, 15)
	pull, _, _ := PageRank(g, 5)
	push, _, _ := PageRankDP(g, 5)
	for v := range pull {
		if math.Abs(pull[v]-push[v]) > 1e-9 {
			t.Fatalf("rank[%d]: pull %v push %v", v, pull[v], push[v])
		}
	}
}

func TestPageRankHubRanksHigher(t *testing.T) {
	// Star graph: the hub must out-rank every leaf.
	b := graph.NewBuilder("star", 10).Undirected()
	for i := 1; i < 10; i++ {
		b.Add(0, int32(i), 0)
	}
	g := b.MustBuild()
	ranks, _, _ := PageRank(g, 0)
	for v := 1; v < 10; v++ {
		if ranks[0] <= ranks[v] {
			t.Fatalf("hub rank %v <= leaf rank %v", ranks[0], ranks[v])
		}
	}
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := gen.UniformUndirected("t", 30, 90, 0, seed)
		got, _, _ := TriangleCount(g)
		want := refTriangles(g)
		if got != want {
			t.Fatalf("seed %d: triangles=%d want %d", seed, got, want)
		}
	}
}

func TestTriangleCountKnownShapes(t *testing.T) {
	// A 4-clique has exactly 4 triangles.
	b := graph.NewBuilder("k4", 4).Undirected()
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.Add(int32(i), int32(j), 0)
		}
	}
	if got, _, _ := TriangleCount(b.MustBuild()); got != 4 {
		t.Fatalf("K4 triangles=%d want 4", got)
	}
	// A tree has none.
	if got, _, _ := TriangleCount(lineGraph(t, 10)); got != 0 {
		t.Fatalf("line triangles=%d want 0", got)
	}
}

func TestConnectedComponentsMatchesUnionFind(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := gen.UniformUndirected("cc", 50, 60, 0, seed)
		labels, res, _ := ConnectedComponents(g)
		want := refComponents(g)
		if int(res.Checksum) != want {
			t.Fatalf("seed %d: components=%v want %d", seed, res.Checksum, want)
		}
		// Same-component vertices share labels; edges never cross labels.
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(v) {
				if labels[v] != labels[u] {
					t.Fatalf("edge (%d,%d) crosses labels %d/%d", v, u, labels[v], labels[u])
				}
			}
		}
	}
}

func TestCommunityDetectConverges(t *testing.T) {
	// Two dense cliques joined by one weak edge must split into (at
	// most) two communities containing each clique wholly.
	b := graph.NewBuilder("2clique", 12).Undirected().Weighted()
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.Add(int32(i), int32(j), 10)
			b.Add(int32(i+6), int32(j+6), 10)
		}
	}
	b.Add(0, 6, 0.1)
	g := b.MustBuild()
	labels, res, _ := CommunityDetect(g, 0)
	if res.Checksum > 4 {
		t.Fatalf("found %v communities in two cliques", res.Checksum)
	}
	for i := 1; i < 6; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("clique A split: label[%d]=%d label[0]=%d", i, labels[i], labels[0])
		}
		if labels[i+6] != labels[6] {
			t.Fatalf("clique B split")
		}
	}
}

func TestCommunityDeterministic(t *testing.T) {
	g := smallRandom(t, 13)
	a, _, _ := CommunityDetect(g, 0)
	b, _, _ := CommunityDetect(g, 0)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("community detection not deterministic")
		}
	}
}

func TestAlgorithmsAgreeProperty(t *testing.T) {
	// Property over random graphs: BFS reachable count == DFS visited ==
	// SSSP visited (same source, same connectivity).
	f := func(seed int64) bool {
		g := gen.UniformUndirected("p", 40, 100, 8, seed)
		src := SourceVertex(g)
		_, bfsRes, _ := BFS(g, src)
		_, dfsRes, _ := DFS(g, src)
		_, ssspRes, _ := SSSPBellmanFord(g, src)
		return bfsRes.Visited == dfsRes.Visited && bfsRes.Visited == ssspRes.Visited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaAndBFMatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.UniformUndirected("p", 35, 90, 16, seed)
		src := SourceVertex(g)
		bf, _, _ := SSSPBellmanFord(g, src)
		dl, _, _ := SSSPDelta(g, src, 0)
		for v := range bf {
			bi, di := math.IsInf(float64(bf[v]), 1), math.IsInf(float64(dl[v]), 1)
			if bi != di {
				return false
			}
			if !bi && math.Abs(float64(bf[v]-dl[v])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
