package algo

import (
	"heteromap/internal/graph"
	"heteromap/internal/profile"
)

// DFS performs an iterative depth-first traversal from src. The paper
// classifies DFS as pure push-pop (B4) with complex indirect accesses
// (B8): stack discipline orders vertex processing, the stack addressing is
// data-manipulated, and available parallelism is limited to the inner
// neighbor loops — the structure that makes DFS favour the multicore for
// dense inputs (DFS-CO in Fig 11).
//
// It returns the discovery order index per vertex (-1 for unreached).
func DFS(g *graph.Graph, src int) ([]int32, Result, *profile.Work) {
	n := g.NumVertices()
	rec := newRecorder(NameDFS, g)
	rec.markDiameterBound()
	ph := rec.phase("stack-walk", profile.PushPop)

	order := make([]int32, n)
	for i := range order {
		order[i] = -1
	}
	if n == 0 {
		return order, Result{}, rec.finish(0)
	}

	stack := make([]int32, 0, 64)
	stack = append(stack, int32(src))
	ph.PushPops++
	var counter int32
	var maxDepth int64 = 1
	var avgFanout int64
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ph.PushPops++ // pop
		ph.VertexOps++
		ph.IndirectAccesses++ // stack top is data-dependent
		if order[v] >= 0 {
			continue
		}
		order[v] = counter
		counter++
		nb := g.Neighbors(int(v))
		// Push in reverse so the numerically smallest neighbor is
		// visited first, keeping traversal order deterministic.
		for i := len(nb) - 1; i >= 0; i-- {
			u := nb[i]
			ph.EdgeOps++
			ph.IndirectAccesses += 2 // visited check + stack slot
			if order[u] < 0 {
				stack = append(stack, u)
				ph.PushPops++
				avgFanout++
			}
		}
		if d := int64(len(stack)); d > maxDepth {
			maxDepth = d
		}
	}

	ph.ReadOnlyBytes = g.FootprintBytes()
	ph.ReadWriteBytes = 2 * int64(n) * bytesPerVertex // order + stack
	ph.LocalBytes = maxDepth * bytesPerVertex
	ph.ChainLength = int64(counter) // strictly ordered visitation
	// Parallelism is limited to concurrently pushable neighbors.
	if counter > 0 {
		ph.ParallelItems = maxInt64(1, avgFanout/int64(counter))
	} else {
		ph.ParallelItems = 1
	}
	rec.barrier(1)

	res := Result{
		Checksum:   float64(counter),
		Iterations: int64(counter),
		Visited:    int64(counter),
	}
	return order, res, rec.finish(int64(counter))
}

func runDFS(g *graph.Graph) (Result, *profile.Work) {
	_, res, w := DFS(g, SourceVertex(g))
	return res, w
}
