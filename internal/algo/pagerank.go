package algo

import (
	"math"

	"heteromap/internal/graph"
	"heteromap/internal/profile"
)

// PageRank iteration parameters shared by both variants.
const (
	prDamping   = 0.85
	prTolerance = 1e-4
	prMaxIters  = 20
)

// PageRank computes ranks with the classic pull-based power iteration:
// each vertex gathers contributions from its in-neighbors (here: CSR
// neighbors, so run it on symmetrized graphs for the textbook semantics),
// applies damping (floating-point heavy, B6), and a reduction phase
// accumulates the L1 error that decides convergence (B5). Rank arrays are
// read-write shared data (B10), which is what biases PageRank to the
// multicore in the paper for large inputs.
func PageRank(g *graph.Graph, maxIters int) ([]float64, Result, *profile.Work) {
	n := g.NumVertices()
	rec := newRecorder(NamePageRank, g)
	gather := rec.phase("rank-gather", profile.VertexDivision)
	errRed := rec.phase("error-reduce", profile.Reduction)

	ranks := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return ranks, Result{}, rec.finish(0)
	}
	if maxIters <= 0 {
		maxIters = prMaxIters
	}
	inv := 1 / float64(n)
	for i := range ranks {
		ranks[i] = inv
	}
	// Out-degree contribution denominators.
	contrib := make([]float64, n)

	var iterations int64
	for iter := 0; iter < maxIters; iter++ {
		iterations++
		for v := 0; v < n; v++ {
			gather.VertexOps++
			d := g.Degree(v)
			if d > 0 {
				contrib[v] = ranks[v] / float64(d)
				gather.FPOps++
			} else {
				contrib[v] = 0
			}
			gather.IndexedAccesses += 2
		}
		rec.barrier(1)
		for v := 0; v < n; v++ {
			gather.VertexOps++
			var sum float64
			for _, u := range g.Neighbors(v) {
				gather.EdgeOps++
				gather.FPOps++ // add
				gather.IndexedAccesses += 2
				sum += contrib[u]
			}
			next[v] = (1-prDamping)*inv + prDamping*sum
			gather.FPOps += 2 // damping multiply-add
		}
		rec.barrier(1)
		// Reduction: L1 delta across all vertices.
		var delta float64
		for v := 0; v < n; v++ {
			errRed.VertexOps++
			errRed.FPOps += 2 // abs diff + accumulate
			errRed.IndexedAccesses += 2
			delta += math.Abs(next[v] - ranks[v])
		}
		errRed.Atomics += int64(n) / 64 // per-chunk reduction combines
		rec.barrier(1)
		ranks, next = next, ranks
		if delta < prTolerance {
			break
		}
	}

	gather.ReadOnlyBytes = g.FootprintBytes()
	gather.ReadWriteBytes = 2 * int64(n) * bytesPerRank
	gather.LocalBytes = int64(n) * bytesPerRank / 4
	gather.ChainLength = iterations
	gather.ParallelItems = int64(n)
	errRed.ReadWriteBytes = int64(n) * bytesPerRank
	errRed.ChainLength = iterations
	errRed.ParallelItems = int64(n)

	var sum float64
	for _, r := range ranks {
		sum += r
	}
	res := Result{Checksum: sum, Iterations: iterations, Visited: int64(n)}
	return ranks, res, rec.finish(iterations)
}

// PageRankDP computes ranks with the push-based "data-parallel" variant
// (PageRank-DP in the paper): every edge atomically accumulates its
// contribution into the destination's next rank. The atomic
// floating-point adds per edge make the contention profile (B12) much
// heavier than pull-based PageRank, which is exactly the distinction the
// paper's B classification draws between the two.
func PageRankDP(g *graph.Graph, maxIters int) ([]float64, Result, *profile.Work) {
	n := g.NumVertices()
	rec := newRecorder(NamePageRankDP, g)
	scatter := rec.phase("rank-scatter", profile.VertexDivision)
	errRed := rec.phase("error-reduce", profile.Reduction)

	ranks := make([]float64, n)
	next := make([]float64, n)
	if n == 0 {
		return ranks, Result{}, rec.finish(0)
	}
	if maxIters <= 0 {
		maxIters = prMaxIters
	}
	inv := 1 / float64(n)
	for i := range ranks {
		ranks[i] = inv
	}

	var iterations int64
	for iter := 0; iter < maxIters; iter++ {
		iterations++
		base := (1 - prDamping) * inv
		for v := 0; v < n; v++ {
			next[v] = base
		}
		rec.barrier(1)
		for v := 0; v < n; v++ {
			scatter.VertexOps++
			d := g.Degree(v)
			if d == 0 {
				continue
			}
			share := prDamping * ranks[v] / float64(d)
			scatter.FPOps += 2
			for _, u := range g.Neighbors(v) {
				scatter.EdgeOps++
				scatter.FPOps++
				scatter.Atomics++ // atomic FP add into next[u]
				scatter.IndexedAccesses += 2
				next[u] += share
			}
		}
		rec.barrier(1)
		var delta float64
		for v := 0; v < n; v++ {
			errRed.VertexOps++
			errRed.FPOps += 2
			errRed.IndexedAccesses += 2
			delta += math.Abs(next[v] - ranks[v])
		}
		errRed.Atomics += int64(n) / 64
		rec.barrier(1)
		ranks, next = next, ranks
		if delta < prTolerance {
			break
		}
	}

	scatter.ReadOnlyBytes = g.FootprintBytes()
	scatter.ReadWriteBytes = 2 * int64(n) * bytesPerRank
	scatter.LocalBytes = int64(n) * bytesPerRank / 8
	scatter.ChainLength = iterations
	scatter.ParallelItems = int64(n)
	errRed.ReadWriteBytes = int64(n) * bytesPerRank
	errRed.ChainLength = iterations
	errRed.ParallelItems = int64(n)

	var sum float64
	for _, r := range ranks {
		sum += r
	}
	res := Result{Checksum: sum, Iterations: iterations, Visited: int64(n)}
	return ranks, res, rec.finish(iterations)
}

func runPageRank(g *graph.Graph) (Result, *profile.Work) {
	_, res, w := PageRank(g, 0)
	return res, w
}

func runPageRankDP(g *graph.Graph) (Result, *profile.Work) {
	_, res, w := PageRankDP(g, 0)
	return res, w
}
