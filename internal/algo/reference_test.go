package algo

// Reference implementations used to validate the instrumented benchmarks.

import (
	"container/heap"
	"math"

	"heteromap/internal/graph"
)

// refDijkstra computes exact shortest paths with a binary heap.
func refDijkstra(g *graph.Graph, src int) []float32 {
	n := g.NumVertices()
	dist := make([]float32, n)
	inf := float32(math.Inf(1))
	for i := range dist {
		dist[i] = inf
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	pq := &vertexHeap{{v: int32(src), d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(heapItem)
		if item.d > dist[item.v] {
			continue
		}
		nb := g.Neighbors(int(item.v))
		ws := g.NeighborWeights(int(item.v))
		for i, u := range nb {
			w := float32(1)
			if ws != nil {
				w = ws[i]
			}
			if cand := item.d + w; cand < dist[u] {
				dist[u] = cand
				heap.Push(pq, heapItem{v: u, d: cand})
			}
		}
	}
	return dist
}

type heapItem struct {
	v int32
	d float32
}

type vertexHeap []heapItem

func (h vertexHeap) Len() int            { return len(h) }
func (h vertexHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h vertexHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *vertexHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *vertexHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// refBFSDepths computes exact BFS levels with a simple queue.
func refBFSDepths(g *graph.Graph, src int) []int32 {
	n := g.NumVertices()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	if n == 0 {
		return depth
	}
	depth[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(int(v)) {
			if depth[u] < 0 {
				depth[u] = depth[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return depth
}

// refTriangles counts triangles by brute force over vertex triples.
func refTriangles(g *graph.Graph) int64 {
	n := g.NumVertices()
	adj := make([]map[int32]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int32]bool, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			adj[v][u] = true
		}
	}
	var count int64
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !adj[a][int32(b)] {
				continue
			}
			for c := b + 1; c < n; c++ {
				if adj[a][int32(c)] && adj[b][int32(c)] {
					count++
				}
			}
		}
	}
	return count
}

// refComponents labels weakly connected components with union-find.
func refComponents(g *graph.Graph) int {
	n := g.NumVertices()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			a, b := find(v), find(int(u))
			if a != b {
				parent[a] = b
			}
		}
	}
	seen := map[int]bool{}
	for v := 0; v < n; v++ {
		seen[find(v)] = true
	}
	return len(seen)
}

// refPageRank is a straightforward pull-based power iteration matching
// the production kernel's convergence rule.
func refPageRank(g *graph.Graph, maxIters int) []float64 {
	n := g.NumVertices()
	ranks := make([]float64, n)
	if n == 0 {
		return ranks
	}
	inv := 1 / float64(n)
	for i := range ranks {
		ranks[i] = inv
	}
	next := make([]float64, n)
	for iter := 0; iter < maxIters; iter++ {
		var delta float64
		for v := 0; v < n; v++ {
			var sum float64
			for _, u := range g.Neighbors(v) {
				if d := g.Degree(int(u)); d > 0 {
					sum += ranks[u] / float64(d)
				}
			}
			next[v] = (1-prDamping)*inv + prDamping*sum
			delta += math.Abs(next[v] - ranks[v])
		}
		ranks, next = next, ranks
		if delta < prTolerance {
			break
		}
	}
	return ranks
}
