package algo

import (
	"math"

	"heteromap/internal/graph"
	"heteromap/internal/profile"
)

// SSSPBellmanFord computes single-source shortest paths with the iterative
// data-parallel Bellman-Ford variant described in the paper's Fig 6
// pseudocode: every iteration relaxes all edges through a temporary
// distance array (D_tmp), commits updates to the global array (D) under a
// lock, and two global barriers separate the relax and commit phases. The
// whole program is vertex division (B1=1), distance arithmetic is
// fixed-point (B6=0), accesses are loop-indexed (B7), the graph is
// read-only shared (B9) and the distance arrays read-write shared (B10).
//
// It returns the distance array, the result summary and the measured work
// profile.
func SSSPBellmanFord(g *graph.Graph, src int) ([]float32, Result, *profile.Work) {
	n := g.NumVertices()
	rec := newRecorder(NameSSSPBF, g)
	rec.markDiameterBound()
	relax := rec.phase("relax", profile.VertexDivision)

	dist := make([]float32, n)
	dtmp := make([]float32, n)
	inf := float32(math.Inf(1))
	for i := range dist {
		dist[i] = inf
		dtmp[i] = inf
	}
	if n == 0 {
		return dist, Result{}, rec.finish(0)
	}
	dist[src] = 0
	dtmp[src] = 0

	var iterations int64
	for iter := 0; iter < n; iter++ {
		iterations++
		changed := false
		// Relax phase: D_tmp[u] = min(D_tmp[u], D[v] + W[v,u]).
		for v := 0; v < n; v++ {
			relax.VertexOps++
			dv := dist[v]
			if math.IsInf(float64(dv), 1) {
				relax.IndexedAccesses++
				continue
			}
			nb := g.Neighbors(v)
			ws := g.NeighborWeights(v)
			for i, u := range nb {
				relax.EdgeOps++
				relax.IntOps++             // fixed-point add
				relax.IndexedAccesses += 2 // W[v,i] and D_tmp[u]; D[v] stays in a register
				cand := dv + edgeWeight(ws, i)
				if cand < dtmp[u] {
					dtmp[u] = cand
					changed = true
				}
			}
		}
		rec.barrier(1)
		// Commit phase: D[u] = D_tmp[u] under the paper's per-element
		// lock on the D array.
		for u := 0; u < n; u++ {
			relax.IndexedAccesses += 2
			if dtmp[u] < dist[u] {
				dist[u] = dtmp[u]
				relax.Atomics++ // lock-protected write to D
			}
		}
		rec.barrier(1)
		if !changed {
			break
		}
	}

	// Footprints: graph structure is read-only shared, distance arrays
	// read-write shared, D_tmp additionally acts as the thread-local
	// scratch the paper assigns ~20% of program data to.
	relax.ReadOnlyBytes = g.FootprintBytes()
	relax.ReadWriteBytes = 2 * int64(n) * bytesPerVertex
	relax.LocalBytes = int64(n) * bytesPerVertex
	relax.ChainLength = iterations
	relax.ParallelItems = int64(n)

	var sum float64
	var visited int64
	for _, d := range dist {
		if !math.IsInf(float64(d), 1) {
			sum += float64(d)
			visited++
		}
	}
	res := Result{Checksum: sum, Iterations: iterations, Visited: visited}
	return dist, res, rec.finish(iterations)
}

func runSSSPBF(g *graph.Graph) (Result, *profile.Work) {
	_, res, w := SSSPBellmanFord(g, SourceVertex(g))
	return res, w
}
