package algo

import (
	"math"

	"heteromap/internal/graph"
	"heteromap/internal/profile"
)

// DefaultDelta picks the bucket width for delta-stepping from the graph's
// weight range: a quarter of the maximum edge weight, minimum 1. The GAP
// suite uses a similar heuristic.
func DefaultDelta(g *graph.Graph) float32 {
	var maxW float32 = 1
	for _, w := range g.Weights {
		if w > maxW {
			maxW = w
		}
	}
	d := maxW / 4
	if d < 1 {
		d = 1
	}
	return d
}

// SSSPDelta computes single-source shortest paths with Δ-stepping (GAP
// benchmark variant). Vertices live in distance buckets of width delta;
// the algorithm repeatedly pops the lowest non-empty bucket (push-pop
// phase, B4), relaxes the popped vertices' edges with locked distance
// updates, and then runs a reduction (B5) over the bucket index space to
// select the next bucket — the structure that biases this benchmark
// toward the multicore in the paper.
func SSSPDelta(g *graph.Graph, src int, delta float32) ([]float32, Result, *profile.Work) {
	n := g.NumVertices()
	rec := newRecorder(NameSSSPDelta, g)
	rec.markDiameterBound()
	pp := rec.phase("bucket-process", profile.PushPop)
	red := rec.phase("bucket-select", profile.Reduction)

	dist := make([]float32, n)
	inf := float32(math.Inf(1))
	for i := range dist {
		dist[i] = inf
	}
	if n == 0 {
		return dist, Result{}, rec.finish(0)
	}
	if delta <= 0 {
		delta = DefaultDelta(g)
	}
	dist[src] = 0

	buckets := map[int][]int32{0: {int32(src)}}
	inBucket := make([]int32, n) // bucket index + 1; 0 = none
	inBucket[src] = 1
	maxBucket := 0

	bucketOf := func(d float32) int { return int(d / delta) }

	var iterations int64
	var maxChain int64
	cur := 0
	for {
		// Reduction: scan bucket indices for the next non-empty bucket.
		next := -1
		for b := cur; b <= maxBucket; b++ {
			red.VertexOps++
			red.IndexedAccesses++
			if len(buckets[b]) > 0 {
				next = b
				break
			}
		}
		red.Atomics++ // shared "current bucket" update
		rec.barrier(1)
		if next < 0 {
			break
		}
		cur = next
		iterations++

		// Push-pop: drain the current bucket; re-insertions into the same
		// bucket are processed in the same outer iteration.
		var chain int64
		for len(buckets[cur]) > 0 {
			chain++
			frontier := buckets[cur]
			buckets[cur] = nil
			for _, v := range frontier {
				pp.PushPops++ // pop
				pp.VertexOps++
				inBucket[v] = 0
				dv := dist[v]
				if bucketOf(dv) != cur {
					continue // stale entry
				}
				nb := g.Neighbors(int(v))
				ws := g.NeighborWeights(int(v))
				for i, u := range nb {
					pp.EdgeOps++
					pp.IntOps++
					pp.IndexedAccesses += 2 // dist[u], W
					cand := dv + edgeWeight(ws, i)
					if cand < dist[u] {
						dist[u] = cand
						pp.Atomics++          // locked distance update
						pp.IndirectAccesses++ // bucket insert is data-driven
						nbkt := bucketOf(cand)
						if nbkt > maxBucket {
							maxBucket = nbkt
						}
						if int(inBucket[u])-1 != nbkt {
							buckets[nbkt] = append(buckets[nbkt], u)
							inBucket[u] = int32(nbkt + 1)
							pp.PushPops++ // push
						}
					}
				}
			}
			rec.barrier(1)
		}
		if chain > maxChain {
			maxChain = chain
		}
		cur++
	}

	pp.ReadOnlyBytes = g.FootprintBytes()
	pp.ReadWriteBytes = 2 * int64(n) * bytesPerVertex // dist + bucket membership
	pp.LocalBytes = int64(n) / 4 * bytesPerVertex
	pp.ChainLength = iterations + maxChain
	pp.ParallelItems = int64(n) / maxInt64(1, iterations)
	red.ReadWriteBytes = int64(maxBucket+1) * bytesPerVertex
	red.ChainLength = iterations
	red.ParallelItems = int64(maxBucket + 1)

	var sum float64
	var visited int64
	for _, d := range dist {
		if !math.IsInf(float64(d), 1) {
			sum += float64(d)
			visited++
		}
	}
	res := Result{Checksum: sum, Iterations: iterations, Visited: visited}
	return dist, res, rec.finish(iterations)
}

func runSSSPDelta(g *graph.Graph) (Result, *profile.Work) {
	_, res, w := SSSPDelta(g, SourceVertex(g), 0)
	return res, w
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
