package algo

import (
	"heteromap/internal/graph"
	"heteromap/internal/profile"
)

// TriangleCount counts triangles with the sorted-adjacency intersection
// algorithm: for every edge (v,u) with v<u, merge-intersect N(v) and N(u)
// counting common neighbors greater than u. The graph must be undirected
// (both edge directions present); each triangle is then counted exactly
// once. The paper classifies triangle counting as vertex division plus a
// reduction on the global counter, with heavy read-only shared data — the
// combination that favours the multicore's caches.
func TriangleCount(g *graph.Graph) (int64, Result, *profile.Work) {
	n := g.NumVertices()
	rec := newRecorder(NameTriangle, g)
	inter := rec.phase("intersect", profile.VertexDivision)
	red := rec.phase("count-reduce", profile.Reduction)

	var triangles int64
	for v := 0; v < n; v++ {
		inter.VertexOps++
		nv := g.Neighbors(v)
		for _, u := range nv {
			if int(u) <= v {
				continue // orient edges low->high
			}
			inter.EdgeOps++
			nu := g.Neighbors(int(u))
			// Merge-intersect counting common neighbors w > u.
			i, j := 0, 0
			for i < len(nv) && j < len(nu) {
				inter.IntOps++
				inter.IndexedAccesses += 2
				a, b := nv[i], nu[j]
				if a <= u {
					i++
					continue
				}
				if b <= u {
					j++
					continue
				}
				switch {
				case a == b:
					triangles++
					red.Atomics++ // contribution to the global counter
					red.VertexOps++
					i++
					j++
				case a < b:
					i++
				default:
					j++
				}
			}
		}
	}
	rec.barrier(1)

	inter.ReadOnlyBytes = g.FootprintBytes() // adjacency is read-only, reused heavily
	inter.ReadWriteBytes = int64(n) * bytesPerVertex / 8
	inter.LocalBytes = int64(n) * bytesPerVertex / 4
	inter.ChainLength = 1
	inter.ParallelItems = int64(n)
	red.ReadWriteBytes = 64 // the single shared counter line
	red.ChainLength = 1
	red.ParallelItems = maxInt64(1, triangles)

	res := Result{Checksum: float64(triangles), Iterations: 1, Visited: int64(n)}
	return triangles, res, rec.finish(1)
}

func runTriangle(g *graph.Graph) (Result, *profile.Work) {
	_, res, w := TriangleCount(g)
	return res, w
}
