package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The cluster chaos harness: a 3-node cluster under a storm of traffic
// with forwarding-layer faults armed (slow peers, partitions, synthetic
// dead nodes) takes a real node kill mid-storm — and availability must
// stay at or above 99%, with the replica picking up the dead node's
// keyspace instead of a cold-start 5xx burst.
func TestClusterChaosStormSurvivesNodeKill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm takes ~1.5s of wall clock")
	}
	lc := startLocalT(t, LocalOptions{
		Nodes:         3,
		ProbeInterval: 25 * time.Millisecond,
		Chaos:         true,
	})
	rt := lc.Router

	// Arm forwarding-layer chaos through the public endpoint, as the CI
	// smoke job and `loadtest -cluster -chaos` do.
	profile := map[string]float64{
		"slow_peer_rate": 0.3,
		"slow_peer_ms":   10,
		"partition_rate": 0.01,
		"node_kill_rate": 0.04,
	}
	presp, pbody := postJSON(t, lc.URL()+"/v1/chaos", profile)
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("arming chaos: %d: %s", presp.StatusCode, pbody)
	}

	const storm = 1200 * time.Millisecond
	var (
		total, ok atomic.Uint64
		mu        sync.Mutex
		samples   []string
	)
	deadline := time.Now().Add(storm)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 3 * time.Second}
			for i := w; time.Now().Before(deadline); i += 6 {
				data, _ := json.Marshal(clusterReq(i % 200))
				resp, err := client.Post(lc.URL()+"/v1/predict", "application/json",
					bytes.NewReader(data))
				total.Add(1)
				if err != nil {
					mu.Lock()
					if len(samples) < 5 {
						samples = append(samples, "transport: "+err.Error())
					}
					mu.Unlock()
					continue
				}
				if resp.StatusCode == http.StatusOK {
					ok.Add(1)
				} else {
					mu.Lock()
					if len(samples) < 5 {
						samples = append(samples, resp.Status+" route="+resp.Header.Get(RouteHeader))
					}
					mu.Unlock()
				}
				resp.Body.Close()
			}
		}(w)
	}

	// Mid-storm, hard-kill a node — no drain, no warning.
	time.Sleep(storm / 2)
	victim := lc.NodeAddr(2)
	lc.KillNode(2)

	wg.Wait()

	if total.Load() < 200 {
		t.Fatalf("storm too small to be meaningful: %d requests", total.Load())
	}
	avail := float64(ok.Load()) / float64(total.Load())
	t.Logf("storm: %d requests, availability %.4f, failovers=%d hedges=%d chaos(kill=%d partition=%d slow=%d)",
		total.Load(), avail, rt.Metrics().Failovers.Load(), rt.Metrics().Hedges.Load(),
		rt.Metrics().ChaosNodeKills.Load(), rt.Metrics().ChaosPartitions.Load(),
		rt.Metrics().ChaosSlowPeers.Load())
	if avail < 0.99 {
		t.Fatalf("availability %.4f below the 0.99 floor; failure samples: %v", avail, samples)
	}
	// The storm must actually have exercised the fault paths.
	if rt.Metrics().ChaosSlowPeers.Load() == 0 || rt.Metrics().ChaosNodeKills.Load() == 0 {
		t.Fatal("chaos profile never fired; storm proved nothing")
	}
	if rt.Metrics().Failovers.Load() == 0 {
		t.Fatal("no failovers recorded despite a killed node and chaos kills")
	}

	// Post-storm: the dead node is off the ring, survivors are healthy.
	waitFor(t, 3*time.Second, "dead node deregistration", func() bool {
		return !rt.Ring().Has(victim)
	})
	for i := 0; i < 2; i++ {
		resp, err := http.Get("http://" + lc.NodeAddr(i) + "/healthz")
		if err != nil {
			t.Fatalf("survivor %d unhealthy: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("survivor %d /healthz: %d", i, resp.StatusCode)
		}
	}
	// Calm the profile and confirm the replica now serves the dead
	// node's keyspace first-try.
	postJSON(t, lc.URL()+"/v1/chaos", map[string]float64{})
	for i := 0; i < 20; i++ {
		resp, body := postJSON(t, lc.URL()+"/v1/predict", clusterReq(i%200))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-storm request %d failed: %d: %s", i, resp.StatusCode, body)
		}
		if peer := resp.Header.Get(PeerHeader); peer == victim {
			t.Fatalf("post-storm request answered by the dead node")
		}
		if route := resp.Header.Get(RouteHeader); route != "primary" {
			t.Fatalf("post-storm request %d routed %q, want primary", i, route)
		}
	}
	// The chaos counters surface on /metrics for the smoke job to check.
	mresp, err := http.Get(lc.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "heteromap_router_chaos_node_kills_total") {
		t.Fatal("chaos counters missing from router metrics")
	}
}
