package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// A planned shutdown must be invisible to clients: the draining node
// announces via /healthz, the router deregisters it from the ring, and
// only then does the node stop — so with traffic flowing the whole time,
// not a single request may see a 5xx or a transport error.
func TestClusterGracefulDrainZeroFiveHundreds(t *testing.T) {
	lc := startLocalT(t, LocalOptions{Nodes: 3, ProbeInterval: 15 * time.Millisecond})
	rt := lc.Router
	victim := lc.NodeAddr(1)

	var (
		stop     atomic.Bool
		total    atomic.Uint64
		failures atomic.Uint64
		mu       sync.Mutex
		samples  []string
	)
	noteFailure := func(s string) {
		failures.Add(1)
		mu.Lock()
		if len(samples) < 5 {
			samples = append(samples, s)
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 2 * time.Second}
			for i := 0; !stop.Load(); i++ {
				req := clusterReq(w*1000 + i%50)
				data, _ := json.Marshal(req)
				resp, err := client.Post(lc.URL()+"/v1/predict", "application/json",
					bytes.NewReader(data))
				total.Add(1)
				if err != nil {
					noteFailure("transport: " + err.Error())
					continue
				}
				if resp.StatusCode >= 500 {
					noteFailure(resp.Status + " route=" + resp.Header.Get(RouteHeader))
				}
				resp.Body.Close()
			}
		}(w)
	}

	// Let traffic settle, then drain the victim under load.
	time.Sleep(100 * time.Millisecond)
	lc.DrainNode(1)

	// The router notices the drain announcement and takes the node off
	// the ring; the node keeps answering during this detection window.
	waitFor(t, 3*time.Second, "drain deregistration", func() bool {
		p := rt.Peer(victim)
		return p.State() == PeerDraining && !rt.Ring().Has(victim)
	})

	// Only now does the node actually stop — the drain protocol's whole
	// point. Traffic keeps flowing for a beat to catch stragglers.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := lc.ShutdownNode(ctx, 1); err != nil {
		t.Fatalf("drained node shutdown: %v", err)
	}
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if total.Load() < 100 {
		t.Fatalf("only %d requests flowed; the drain window was not exercised", total.Load())
	}
	if failures.Load() != 0 {
		t.Fatalf("%d/%d requests failed during a planned drain; samples: %v",
			failures.Load(), total.Load(), samples)
	}

	// The drained peer eventually reads dead (its process is gone), and
	// the survivors own the whole ring.
	waitFor(t, 3*time.Second, "drained peer marked dead", func() bool {
		return rt.Peer(victim).State() == PeerDead
	})
	if rt.Ring().Len() != 2 {
		t.Fatalf("ring has %d nodes after drain, want 2", rt.Ring().Len())
	}
}

// The draining node itself must answer /healthz with "draining" while
// still serving predictions — that contract is what the router's
// detection window leans on.
func TestServeNodeDrainingHealthzStillServes(t *testing.T) {
	lc := startLocalT(t, LocalOptions{Nodes: 1, ProbeInterval: time.Hour})
	node := lc.Nodes[0]
	addr := lc.NodeAddr(0)

	node.BeginDrain()

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hv struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hv.Status != "draining" {
		t.Fatalf("draining node healthz status %q", hv.Status)
	}
	// Predictions still succeed mid-drain.
	presp, body := postJSON(t, "http://"+addr+"/v1/predict", clusterReq(0))
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("draining node refused a predict: %d: %s", presp.StatusCode, body)
	}
}
