package cluster

import (
	"testing"
)

// FuzzRingLookup drives Lookup with arbitrary hashes, replica counts and
// node-set shapes: it must never panic, and every returned node must be
// a live ring member, distinct within the group, with the primary stable
// under membership of unrelated nodes.
func FuzzRingLookup(f *testing.F) {
	f.Add(uint64(0), 1, uint8(1), uint8(1))
	f.Add(uint64(1<<63), 2, uint8(3), uint8(64))
	f.Add(^uint64(0), 5, uint8(7), uint8(3))
	f.Add(uint64(42), -1, uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, hash uint64, n int, nodeCount, vnodes uint8) {
		nodes := ringNodes(int(nodeCount % 12))
		r := New(nodes, int(vnodes%130))
		got := r.Lookup(hash, n)

		if len(nodes) == 0 || n <= 0 {
			if got != nil {
				t.Fatalf("degenerate lookup returned %v, want nil", got)
			}
			return
		}
		want := n
		if want > len(nodes) {
			want = len(nodes)
		}
		if len(got) != want {
			t.Fatalf("Lookup(%#x, %d) over %d nodes returned %d owners, want %d",
				hash, n, len(nodes), len(got), want)
		}
		seen := map[string]bool{}
		for _, owner := range got {
			if !r.Has(owner) {
				t.Fatalf("lookup landed on off-ring node %q", owner)
			}
			if seen[owner] {
				t.Fatalf("duplicate owner %q in %v", owner, got)
			}
			seen[owner] = true
		}
		// Removing a node that is not the primary must keep the primary.
		if len(nodes) > 1 {
			var other string
			for _, cand := range nodes {
				if cand != got[0] {
					other = cand
					break
				}
			}
			after := r.Without(other).Lookup(hash, 1)
			if len(after) != 1 || after[0] != got[0] {
				t.Fatalf("removing non-owner %q moved the primary: %v -> %v", other, got[0], after)
			}
		}
	})
}
