package cluster

import (
	"context"
	"fmt"
	"net"
	"time"

	"heteromap/internal/fault"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/serve"
)

// LocalOptions size an in-process cluster (see StartLocal).
type LocalOptions struct {
	// Nodes is the serve-node count (3).
	Nodes int
	// Replicas is the per-shard replica-group size (2).
	Replicas int
	// ProbeInterval is the router's health-probe cadence (50ms — local
	// clusters exist to exercise failover fast).
	ProbeInterval time.Duration
	// HedgeAfter is the router's hedge threshold (25ms).
	HedgeAfter time.Duration
	// Seed seeds the chaos injectors when Chaos is set (42).
	Seed int64
	// Chaos arms fault injectors on the router (forwarding-layer
	// profiles) and every node (serve-path profiles).
	Chaos bool
	// NodeOptions, when set, adapts each node's serve options before the
	// node starts (the addr and chaos injector are already filled in).
	NodeOptions func(i int, opts serve.Options) serve.Options
	// RouterOptions, when set, adapts the router's options before it
	// starts (peers and chaos injector are already filled in) — how
	// tests install a keep-everything tracer or a tight SLO.
	RouterOptions func(opts RouterOptions) RouterOptions
}

func (o LocalOptions) withDefaults() LocalOptions {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 50 * time.Millisecond
	}
	if o.HedgeAfter <= 0 {
		o.HedgeAfter = 25 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Local is an in-process cluster: N serve nodes on ephemeral ports
// behind one router, each node carrying the builtin decision-tree model.
// It backs the cluster tests and `loadtest -cluster`, and doubles as the
// kill -9 stand-in: KillNode closes a node's listener and connections
// without any drain, exactly what the chaos harness needs.
type Local struct {
	Router *Router
	Nodes  []*serve.Server

	nodeErr   []chan error
	routerErr chan error

	// Per-node base options and bound addresses, recorded at StartLocal
	// so RestartNode can bring a killed node back as the same node: same
	// address (the prober readmits it through half-open), same durable
	// directory (the recovery ladder warms it back up).
	nodeOpts  []serve.Options
	nodeAddrs []string
}

// startServer starts a serve.Server on an ephemeral port and waits for
// the bind (Start listens synchronously, but from another goroutine).
func startServer(srv *serve.Server, errCh chan error) error {
	go func() { errCh <- srv.Start() }()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Addr() == "127.0.0.1:0" && time.Now().Before(deadline) {
		select {
		case err := <-errCh:
			return fmt.Errorf("cluster: node failed to start: %w", err)
		case <-time.After(2 * time.Millisecond):
		}
	}
	if srv.Addr() == "127.0.0.1:0" {
		return fmt.Errorf("cluster: node did not bind within 2s")
	}
	return nil
}

// newLocalNode starts a serve node on a fixed address with the builtin
// decision-tree model — the restart half of recovery tests, where a
// killed node's replacement must come up on the old address for the
// prober to readmit it.
func newLocalNode(addr string) (*serve.Server, error) {
	return newLocalNodeOpts(serve.Options{Addr: addr})
}

// newLocalNodeOpts is newLocalNode with full serve options: the restart
// path uses it to revive a node with its original durability settings,
// running the recovery ladder before the listener accepts traffic so
// the first probe already sees the warmed cache.
func newLocalNodeOpts(opts serve.Options) (*serve.Server, error) {
	addr := opts.Addr
	srv := serve.New(opts)
	pair := machine.PrimaryPair()
	if _, err := srv.Registry().Register("tree", "builtin decision tree", dtree.New(pair.Limits())); err != nil {
		return nil, err
	}
	if opts.DurableDir != "" {
		srv.RecoverDurable()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Start() }()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-errCh:
			return nil, fmt.Errorf("cluster: node failed to start on %s: %w", addr, err)
		default:
		}
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			return srv, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, fmt.Errorf("cluster: node did not bind %s within 2s", addr)
}

// StartLocal boots an in-process cluster and blocks until every node and
// the router are listening. Callers own Stop.
func StartLocal(opts LocalOptions) (*Local, error) {
	opts = opts.withDefaults()
	lc := &Local{}
	pair := machine.PrimaryPair()
	for i := 0; i < opts.Nodes; i++ {
		sopts := serve.Options{Addr: "127.0.0.1:0"}
		if opts.Chaos {
			sopts.Chaos = fault.NewServeInjector(opts.Seed + int64(i))
		}
		if opts.NodeOptions != nil {
			sopts = opts.NodeOptions(i, sopts)
		}
		srv := serve.New(sopts)
		if _, err := srv.Registry().Register("tree", "builtin decision tree", dtree.New(pair.Limits())); err != nil {
			lc.Stop()
			return nil, err
		}
		if sopts.DurableDir != "" {
			srv.RecoverDurable()
		}
		errCh := make(chan error, 1)
		if err := startServer(srv, errCh); err != nil {
			lc.Stop()
			return nil, err
		}
		lc.Nodes = append(lc.Nodes, srv)
		lc.nodeErr = append(lc.nodeErr, errCh)
		lc.nodeOpts = append(lc.nodeOpts, sopts)
		lc.nodeAddrs = append(lc.nodeAddrs, srv.Addr())
	}

	peers := make([]string, len(lc.Nodes))
	for i, n := range lc.Nodes {
		peers[i] = n.Addr()
	}
	ropts := RouterOptions{
		Addr:          "127.0.0.1:0",
		Peers:         peers,
		Replicas:      opts.Replicas,
		ProbeInterval: opts.ProbeInterval,
		HedgeAfter:    opts.HedgeAfter,
	}
	if opts.Chaos {
		ropts.Chaos = fault.NewServeInjector(opts.Seed - 1)
	}
	if opts.RouterOptions != nil {
		ropts = opts.RouterOptions(ropts)
	}
	rt, err := NewRouter(ropts)
	if err != nil {
		lc.Stop()
		return nil, err
	}
	lc.Router = rt
	lc.routerErr = make(chan error, 1)
	go func() { lc.routerErr <- rt.Start() }()
	deadline := time.Now().Add(2 * time.Second)
	for rt.Addr() == "127.0.0.1:0" && time.Now().Before(deadline) {
		select {
		case err := <-lc.routerErr:
			lc.Stop()
			return nil, fmt.Errorf("cluster: router failed to start: %w", err)
		case <-time.After(2 * time.Millisecond):
		}
	}
	return lc, nil
}

// URL returns the router's base URL.
func (lc *Local) URL() string { return "http://" + lc.Router.Addr() }

// NodeAddr returns node i's listen address.
func (lc *Local) NodeAddr(i int) string { return lc.Nodes[i].Addr() }

// KillNode hard-kills node i: listener and live connections close
// immediately, with no drain — the in-process kill -9.
func (lc *Local) KillNode(i int) { lc.Nodes[i].Kill() }

// RestartNode replaces a killed node i with a fresh server on the same
// address and the same base options, so the router's half-open prober
// readmits it as the node it knew. A node started with a durable
// directory comes back through the recovery ladder — cache warmed,
// registry version floor raised — before the listener accepts traffic.
// The freed port can linger briefly after a hard kill, so the bind is
// retried for a short window.
func (lc *Local) RestartNode(i int) error {
	if i < 0 || i >= len(lc.Nodes) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	opts := lc.nodeOpts[i]
	opts.Addr = lc.nodeAddrs[i]
	var srv *serve.Server
	var err error
	deadline := time.Now().Add(3 * time.Second)
	for {
		srv, err = newLocalNodeOpts(opts)
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("cluster: restart node %d: %w", i, err)
	}
	lc.Nodes[i] = srv
	return nil
}

// DrainNode starts a graceful drain on node i: its /healthz flips to
// draining so the router deregisters it, while in-flight (and
// detection-window) requests keep succeeding. Call ShutdownNode once the
// router has moved on.
func (lc *Local) DrainNode(i int) { lc.Nodes[i].BeginDrain() }

// ShutdownNode gracefully stops node i.
func (lc *Local) ShutdownNode(ctx context.Context, i int) error {
	return lc.Nodes[i].Shutdown(ctx)
}

// Stop tears the cluster down, router first.
func (lc *Local) Stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if lc.Router != nil {
		lc.Router.Shutdown(ctx)
	}
	for _, n := range lc.Nodes {
		n.Shutdown(ctx)
	}
}
