package cluster

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"heteromap/internal/serve"
)

// RouterMetrics counts the router's routing decisions. Counters are
// monotonic and lock-free; the exposition format mirrors the serve
// node's (Prometheus text, heteromap_router_* namespace) so the same
// scrape pipeline covers both tiers.
type RouterMetrics struct {
	// Requests is client requests accepted for routing (batch items
	// count individually).
	Requests atomic.Uint64
	// Forwards is attempts dispatched to peers (includes hedges,
	// failovers and chaos-killed attempts).
	Forwards atomic.Uint64
	// Failovers is requests answered by a non-primary rung of the
	// ladder after the primary failed hard or shed.
	Failovers atomic.Uint64
	// Hedges is hedge attempts launched against a slow primary.
	Hedges atomic.Uint64
	// HedgeWins is hedges whose answer was served.
	HedgeWins atomic.Uint64
	// HedgeVersionSkips is hedges suppressed because the replica's last
	// observed model version differed from (or was unknown relative to)
	// the primary's — the rolling-reload safety gate engaging.
	HedgeVersionSkips atomic.Uint64
	// HedgeMixedDiscards is hedge answers thrown away post hoc because
	// the actual answering version differed from the expected one.
	HedgeMixedDiscards atomic.Uint64
	// NoReplica is requests refused because no live peer owned the
	// shard.
	NoReplica atomic.Uint64
	// PeerErrors is hard peer failures (transport error or non-shed
	// 5xx) fed to breakers.
	PeerErrors atomic.Uint64
	// HTTPErrors is >=400 responses the router returned to clients.
	HTTPErrors atomic.Uint64
	// Deregistered / Readmitted count ring membership transitions.
	Deregistered atomic.Uint64
	Readmitted   atomic.Uint64
	// Chaos* count injected forwarding-layer faults.
	ChaosNodeKills  atomic.Uint64
	ChaosPartitions atomic.Uint64
	ChaosSlowPeers  atomic.Uint64

	// RouteLatency is end-to-end routed-request latency (same bucket
	// layout as the serve node's histograms).
	RouteLatency *serve.Histogram

	mu     sync.Mutex
	events []string // recent membership events, newest last
}

// NewRouterMetrics builds an empty metrics set.
func NewRouterMetrics() *RouterMetrics {
	return &RouterMetrics{RouteLatency: serve.NewHistogram()}
}

// maxEvents bounds the membership event log kept for /v1/cluster.
const maxEvents = 32

func (m *RouterMetrics) noteEvent(e string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events = append(m.events, e)
	if len(m.events) > maxEvents {
		m.events = m.events[len(m.events)-maxEvents:]
	}
}

// Events returns the recent membership events, oldest first.
func (m *RouterMetrics) Events() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.events))
	copy(out, m.events)
	return out
}

// WritePrometheus emits the router's metrics in Prometheus text format,
// including a per-peer state gauge (0 live, 1 draining, 2 dead) and
// ring-membership gauge derived from the given peer snapshot.
func (m *RouterMetrics) WritePrometheus(w io.Writer, peers []PeerInfo) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("heteromap_router_requests_total", "Client requests accepted for routing.", m.Requests.Load())
	counter("heteromap_router_forwards_total", "Attempts dispatched to peers.", m.Forwards.Load())
	counter("heteromap_router_failovers_total", "Requests answered by a failover replica.", m.Failovers.Load())
	counter("heteromap_router_hedges_total", "Hedge attempts launched.", m.Hedges.Load())
	counter("heteromap_router_hedge_wins_total", "Hedge answers served.", m.HedgeWins.Load())
	counter("heteromap_router_hedge_version_skips_total", "Hedges suppressed by the version gate.", m.HedgeVersionSkips.Load())
	counter("heteromap_router_hedge_mixed_discards_total", "Hedge answers discarded for version mismatch.", m.HedgeMixedDiscards.Load())
	counter("heteromap_router_no_replica_total", "Requests refused with no live replica.", m.NoReplica.Load())
	counter("heteromap_router_peer_errors_total", "Hard peer failures fed to breakers.", m.PeerErrors.Load())
	counter("heteromap_router_http_errors_total", "Error responses returned to clients.", m.HTTPErrors.Load())
	counter("heteromap_router_deregistered_total", "Peers taken off the ring.", m.Deregistered.Load())
	counter("heteromap_router_readmitted_total", "Peers readmitted to the ring.", m.Readmitted.Load())
	counter("heteromap_router_chaos_node_kills_total", "Chaos-injected dead-node attempts.", m.ChaosNodeKills.Load())
	counter("heteromap_router_chaos_partitions_total", "Chaos-injected partitioned attempts.", m.ChaosPartitions.Load())
	counter("heteromap_router_chaos_slow_peers_total", "Chaos-injected slow-link attempts.", m.ChaosSlowPeers.Load())

	fmt.Fprintf(w, "# HELP heteromap_router_peer_state Peer lifecycle state (0 live, 1 draining, 2 dead).\n")
	fmt.Fprintf(w, "# TYPE heteromap_router_peer_state gauge\n")
	for _, p := range peers {
		state := 0
		switch p.State {
		case PeerDraining.String():
			state = 1
		case PeerDead.String():
			state = 2
		}
		fmt.Fprintf(w, "heteromap_router_peer_state{peer=%q} %d\n", p.Addr, state)
	}
	fmt.Fprintf(w, "# HELP heteromap_router_peer_on_ring Whether the peer currently owns ring keyspace.\n")
	fmt.Fprintf(w, "# TYPE heteromap_router_peer_on_ring gauge\n")
	for _, p := range peers {
		on := 0
		if p.OnRing {
			on = 1
		}
		fmt.Fprintf(w, "heteromap_router_peer_on_ring{peer=%q} %d\n", p.Addr, on)
	}
	m.RouteLatency.WriteProm(w, "heteromap_router_route_latency_seconds", "")
}
