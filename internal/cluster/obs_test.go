package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"heteromap/internal/obs"
	"heteromap/internal/serve"
)

// keepAllTracers configures a local cluster whose router and nodes
// retain every trace (SampleRate 1), so stitching tests never race the
// sampling decision.
func keepAllTracers(opts LocalOptions) LocalOptions {
	prevNode := opts.NodeOptions
	opts.NodeOptions = func(i int, so serve.Options) serve.Options {
		so.Tracer = obs.NewTracer(obs.Options{SampleRate: 1})
		if prevNode != nil {
			so = prevNode(i, so)
		}
		return so
	}
	prevRouter := opts.RouterOptions
	opts.RouterOptions = func(ro RouterOptions) RouterOptions {
		ro.Tracer = obs.NewTracer(obs.Options{SampleRate: 1})
		if prevRouter != nil {
			ro = prevRouter(ro)
		}
		return ro
	}
	return opts
}

// fetchTimeline GETs /v1/trace/{id} from the router.
func fetchTimeline(t *testing.T, base, id string) (int, obs.StitchedTimeline) {
	t.Helper()
	resp, err := http.Get(base + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tl obs.StitchedTimeline
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, tl
}

// assertCausalTimeline checks the /v1/trace contract: every span's
// parent appears before it, and no child starts before its parent.
func assertCausalTimeline(t *testing.T, tl obs.StitchedTimeline) {
	t.Helper()
	pos := map[string]int{}
	for i, s := range tl.Spans {
		pos[s.ID] = i
	}
	for i, s := range tl.Spans {
		if s.Parent == "" {
			continue
		}
		pi, ok := pos[s.Parent]
		if !ok {
			t.Fatalf("span %s has unknown parent %s", s.ID, s.Parent)
		}
		if pi >= i {
			t.Fatalf("span %s emitted before its parent %s", s.ID, s.Parent)
		}
		if s.StartUS < tl.Spans[pi].StartUS {
			t.Fatalf("span %s starts at %.1fus before parent %s at %.1fus",
				s.ID, s.StartUS, s.Parent, tl.Spans[pi].StartUS)
		}
	}
}

// TestClusterTracePropagatesAcrossNodes is the happy-path propagation
// contract: the router's response names a trace id, the answering node
// joined that trace (same id, re-parented under the router's hop span),
// and /v1/trace/{id} returns one causally ordered timeline spanning
// both processes.
func TestClusterTracePropagatesAcrossNodes(t *testing.T) {
	lc := startLocalT(t, keepAllTracers(LocalOptions{Nodes: 3}))

	resp, body := postJSON(t, lc.URL()+"/v1/predict", clusterReq(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get(obs.TraceHeader)
	if id == "" {
		t.Fatalf("router response carries no %s header", obs.TraceHeader)
	}
	peer := resp.Header.Get(PeerHeader)

	status, tl := fetchTimeline(t, lc.URL(), id)
	if status != http.StatusOK {
		t.Fatalf("/v1/trace/%s: status %d", id, status)
	}
	if tl.TraceID != id {
		t.Fatalf("timeline id %q, want %q", tl.TraceID, id)
	}
	if len(tl.Nodes) < 2 {
		t.Fatalf("timeline covers %v, want router and the answering node", tl.Nodes)
	}
	nodeSeen := map[string]bool{}
	var routerRoot, peerRoot, hop *obs.StitchedSpan
	for i := range tl.Spans {
		s := &tl.Spans[i]
		nodeSeen[s.Node] = true
		switch {
		case s.Parent == "" && s.Name == "route":
			routerRoot = s
		case s.Node == peer && s.Name == "predict":
			peerRoot = s
		case s.Name == "forward:primary":
			hop = s
		}
	}
	if !nodeSeen[peer] {
		t.Fatalf("answering node %s contributed no spans: %v", peer, tl.Spans)
	}
	if routerRoot == nil || hop == nil || peerRoot == nil {
		t.Fatalf("missing route/forward/predict spans in %+v", tl.Spans)
	}
	// The peer's root must be re-parented under the router's hop span —
	// that is what ParentSpanHeader exists for.
	if peerRoot.Parent != hop.ID {
		t.Fatalf("peer root parented under %q, want the hop span %q", peerRoot.Parent, hop.ID)
	}
	if len(tl.Gaps) != 0 {
		t.Fatalf("healthy request reported gaps: %+v", tl.Gaps)
	}
	assertCausalTimeline(t, tl)
}

// TestClusterTraceSurvivesChaosStorm drives the trace pipeline through
// the fault injectors: slow peers force hedges, partitions force
// failovers, and every single answered request must still produce a
// stitched, causally ordered timeline under its propagated id.
func TestClusterTraceSurvivesChaosStorm(t *testing.T) {
	lc := startLocalT(t, keepAllTracers(LocalOptions{
		Nodes:      3,
		Chaos:      true,
		HedgeAfter: 10 * time.Millisecond,
	}))
	// Arm the router-side forwarding faults: half the forwards crawl past
	// the hedge threshold (forcing hedges), a quarter die instantly with a
	// refused connection (forcing failover rungs).
	resp, body := postJSON(t, lc.URL()+"/v1/chaos", clusterChaosRequest{
		SlowPeerRate: 0.5,
		SlowPeerMS:   40,
		NodeKillRate: 0.25,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arming chaos: status %d: %s", resp.StatusCode, body)
	}

	hedged, failedOver := false, false
	for i := 0; i < 40; i++ {
		resp, body := postJSON(t, lc.URL()+"/v1/predict", clusterReq(i))
		id := resp.Header.Get(obs.TraceHeader)
		if id == "" {
			t.Fatalf("request %d: no trace id on status %d: %s", i, resp.StatusCode, body)
		}
		if resp.StatusCode != http.StatusOK {
			continue // ladder exhausted under chaos: legal, separately traced
		}
		status, tl := fetchTimeline(t, lc.URL(), id)
		if status != http.StatusOK {
			t.Fatalf("request %d: /v1/trace/%s status %d", i, id, status)
		}
		assertCausalTimeline(t, tl)
		for _, s := range tl.Spans {
			switch s.Name {
			case "forward:hedge":
				hedged = true
			case "forward:failover":
				failedOver = true
			}
		}
		switch resp.Header.Get(RouteHeader) {
		case "hedge-win":
			if !containsFlag(tl.Flags, "hedge-win") {
				t.Fatalf("request %d hedge-win not flagged: %v", i, tl.Flags)
			}
		case "failover":
			if !containsFlag(tl.Flags, "failover") {
				t.Fatalf("request %d failover not flagged: %v", i, tl.Flags)
			}
		}
	}
	// The profile makes both paths near-certain over 40 requests; their
	// absence means the spans are not being recorded, not bad luck.
	if !hedged || !failedOver {
		t.Fatalf("chaos storm exercised hedge=%v failover=%v, want both", hedged, failedOver)
	}
	if lc.Router.Metrics().Hedges.Load() == 0 {
		t.Fatal("no hedges recorded by the router under a slow-peer storm")
	}
}

func containsFlag(flags []string, want string) bool {
	for _, f := range flags {
		if f == want {
			return true
		}
	}
	return false
}

// TestClusterFailoverAndBreakerTracesAlwaysRetained is the retention
// contract: with probabilistic sampling fully disabled (SampleRate<0),
// a clean trace vanishes but failover and breaker-open traces are in
// the always-retain flag set and survive.
func TestClusterFailoverAndBreakerTracesAlwaysRetained(t *testing.T) {
	bad := stubPeer(t, func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":"stub: wedged"}`)
	})
	good := stubPeer(t, func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"model":"tree","key":"stub"}`)
	})
	tracer := obs.NewTracer(obs.Options{SampleRate: -1}) // flagged traces only
	rt, err := NewRouter(RouterOptions{
		Addr:             "127.0.0.1:0",
		Peers:            []string{bad, good},
		Tracer:           tracer,
		BreakerThreshold: 1,
		ProbeInterval:    time.Hour, // keep the prober out of the breaker's way
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)

	// Find one request sharded to each stub.
	target := map[string]int{}
	for i := 0; i < 200 && len(target) < 2; i++ {
		req := clusterReq(i)
		feat, err := serve.ResolveFeatures(&req, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		primary := rt.Ring().Lookup(feat.ShardHash(), 1)[0]
		if _, seen := target[primary]; !seen {
			target[primary] = i
		}
	}
	if len(target) < 2 {
		t.Fatal("requests did not spread over both stub peers")
	}

	traceOf := func(i int, wantStatus int) string {
		t.Helper()
		resp, body := postJSON(t, srv.URL+"/v1/predict", clusterReq(i))
		if resp.StatusCode != wantStatus {
			t.Fatalf("request %d: status %d, want %d: %s", i, resp.StatusCode, wantStatus, body)
		}
		id := resp.Header.Get(obs.TraceHeader)
		if id == "" {
			t.Fatalf("request %d: no trace header", i)
		}
		return id
	}
	retained := func(id string) []obs.TraceRecord {
		return tracer.Ring().Snapshot(obs.TraceFilter{ID: id, Limit: 1})
	}

	// 1. A clean request through the healthy primary: unflagged, and with
	// sampling disabled it must NOT be retained.
	clean := traceOf(target[good], http.StatusOK)
	if recs := retained(clean); len(recs) != 0 {
		t.Fatalf("unflagged trace %s retained despite SampleRate<0: %+v", clean, recs)
	}

	// 2. The wedged primary hard-fails, the ladder fails over: the trace
	// must be retained with the failover flag.
	fo := traceOf(target[bad], http.StatusOK)
	recs := retained(fo)
	if len(recs) == 0 {
		t.Fatalf("failover trace %s was not retained", fo)
	}
	if !containsFlag(recs[0].Flags, "failover") {
		t.Fatalf("failover trace flags %v missing failover", recs[0].Flags)
	}

	// 3. That hard failure opened the peer's breaker (threshold 1): the
	// next request skips it, and the breaker-open trace is retained too.
	br := traceOf(target[bad], http.StatusOK)
	recs = retained(br)
	if len(recs) == 0 {
		t.Fatalf("breaker-open trace %s was not retained", br)
	}
	if !containsFlag(recs[0].Flags, "peer-breaker") {
		t.Fatalf("breaker trace flags %v missing peer-breaker", recs[0].Flags)
	}
	foundSkip := false
	for _, sp := range recs[0].Spans {
		if sp.Name == "peer:breaker-open" && sp.Attrs["peer"] == bad {
			foundSkip = true
		}
	}
	if !foundSkip {
		t.Fatalf("no peer:breaker-open span naming %s in %+v", bad, recs[0].Spans)
	}
}

// TestClusterTraceMarksDeadPeerGap kills the answering node after its
// request completes: the stitched timeline must still assemble from the
// router's spans and mark the unreachable peer as an explicit gap
// rather than silently shrinking.
func TestClusterTraceMarksDeadPeerGap(t *testing.T) {
	lc := startLocalT(t, keepAllTracers(LocalOptions{Nodes: 3, ProbeInterval: time.Hour}))

	resp, body := postJSON(t, lc.URL()+"/v1/predict", clusterReq(2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get(obs.TraceHeader)
	peer := resp.Header.Get(PeerHeader)
	for i := range lc.Nodes {
		if lc.NodeAddr(i) == peer {
			lc.KillNode(i)
		}
	}

	status, tl := fetchTimeline(t, lc.URL(), id)
	if status != http.StatusOK {
		t.Fatalf("/v1/trace/%s after peer kill: status %d", id, status)
	}
	assertCausalTimeline(t, tl)
	foundGap := false
	for _, g := range tl.Gaps {
		if g.Node == peer && g.Reason == "peer-unreachable" {
			foundGap = true
		}
	}
	if !foundGap {
		t.Fatalf("dead peer %s not marked as a gap: %+v", peer, tl.Gaps)
	}
}

// promLine finds the first sample line with the given prefix and
// returns its value field.
func promLine(t *testing.T, text, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no series with prefix %q in:\n%s", prefix, text)
	return 0
}

func getText(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// TestClusterMetricsFederation checks the /metrics/cluster contract:
// the cluster-summed counter equals the sum of the per-node scrapes,
// per-node series carry the node label, and a dead peer degrades to a
// stale marker — never a 5xx.
func TestClusterMetricsFederation(t *testing.T) {
	lc := startLocalT(t, LocalOptions{Nodes: 3, ProbeInterval: time.Hour})
	for i := 0; i < 12; i++ {
		resp, _ := postJSON(t, lc.URL()+"/v1/predict", clusterReq(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm request %d: status %d", i, resp.StatusCode)
		}
	}

	var perNodeSum float64
	for i := range lc.Nodes {
		code, text := getText(t, "http://"+lc.NodeAddr(i)+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("node %d /metrics: status %d", i, code)
		}
		perNodeSum += promLine(t, text, "heteromap_requests_total ")
	}

	code, fed := getText(t, lc.URL()+"/metrics/cluster")
	if code != http.StatusOK {
		t.Fatalf("/metrics/cluster: status %d", code)
	}
	if got := promLine(t, fed, "heteromap_requests_total "); got != perNodeSum {
		t.Fatalf("cluster-summed requests_total %g != per-node sum %g\n%s", got, perNodeSum, fed)
	}
	for i := range lc.Nodes {
		nodePrefix := fmt.Sprintf("heteromap_requests_total{node=%q}", lc.NodeAddr(i))
		promLine(t, fed, nodePrefix) // must exist
		stale := fmt.Sprintf("heteromap_federation_stale{node=%q} 0", lc.NodeAddr(i))
		if !strings.Contains(fed, stale) {
			t.Fatalf("healthy node %s missing stale=0 marker:\n%s", lc.NodeAddr(i), fed)
		}
	}

	// Kill one node: federation stays 200, the victim flips to stale=1
	// and its series disappear while the others keep reporting.
	victim := lc.NodeAddr(1)
	lc.KillNode(1)
	code, fed = getText(t, lc.URL()+"/metrics/cluster")
	if code != http.StatusOK {
		t.Fatalf("/metrics/cluster with dead peer: status %d", code)
	}
	if !strings.Contains(fed, fmt.Sprintf("heteromap_federation_stale{node=%q} 1", victim)) {
		t.Fatalf("dead peer %s not marked stale:\n%s", victim, fed)
	}
	if strings.Contains(fed, fmt.Sprintf("heteromap_requests_total{node=%q}", victim)) {
		t.Fatalf("dead peer %s still contributes series", victim)
	}
	if got := promLine(t, fed, "heteromap_requests_total "); got >= perNodeSum {
		t.Fatalf("cluster sum %g did not drop after losing a node (was %g)", got, perNodeSum)
	}
}

// TestClusterSLOEndpointAndGauges checks the router-side SLO surface:
// /v1/slo reports the objectives, /metrics carries the gauges, and a
// healthy cluster burns no budget.
func TestClusterSLOEndpointAndGauges(t *testing.T) {
	lc := startLocalT(t, LocalOptions{Nodes: 2, RouterOptions: func(ro RouterOptions) RouterOptions {
		ro.SLO = obs.NewSLO(obs.SLOOptions{Availability: 0.99})
		return ro
	}})
	for i := 0; i < 8; i++ {
		resp, _ := postJSON(t, lc.URL()+"/v1/predict", clusterReq(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	code, body := getText(t, lc.URL()+"/v1/slo")
	if code != http.StatusOK {
		t.Fatalf("/v1/slo status %d", code)
	}
	var snap obs.SLOSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Objectives) != 2 || snap.Exhausted || snap.AlertActive {
		t.Fatalf("healthy cluster SLO snapshot: %+v", snap)
	}
	if snap.Objectives[0].Requests < 8 {
		t.Fatalf("SLO saw %d requests, want >= 8", snap.Objectives[0].Requests)
	}
	code, metrics := getText(t, lc.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`heteromap_slo_budget_remaining{objective="availability"} 1`,
		`heteromap_slo_alert_active{objective="availability"} 0`,
		`heteromap_slo_burn_rate{objective="p99_latency",window="fast"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("router /metrics missing %q:\n%s", want, metrics)
		}
	}
}
