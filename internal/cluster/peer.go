package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"heteromap/internal/fault"
	"heteromap/internal/serve"
)

// PeerState is a peer's position in the router's failover ladder.
type PeerState int32

const (
	// PeerLive: on the ring, receiving traffic.
	PeerLive PeerState = iota
	// PeerDraining: announced a planned shutdown via /healthz; off the
	// ring (no new traffic) but still answering in-flight requests.
	PeerDraining
	// PeerDead: deregistered after sustained breaker-open or a failed
	// probe ladder; off the ring until a health probe readmits it.
	PeerDead
)

// String implements fmt.Stringer.
func (s PeerState) String() string {
	switch s {
	case PeerLive:
		return "live"
	case PeerDraining:
		return "draining"
	case PeerDead:
		return "dead"
	}
	return fmt.Sprintf("PeerState(%d)", int32(s))
}

// Peer is one serve node as the router sees it: its address, a circuit
// breaker fed by forwarded-request outcomes (the existing fault.Breaker,
// reused per *peer* rather than per model version), its lifecycle state
// and the model registry version it last reported. All fields are safe
// for concurrent use.
type Peer struct {
	Addr string

	breaker *fault.Breaker
	state   atomic.Int32
	// version is the peer's last observed default-model registry
	// version, learned from predict response headers and health probes.
	// 0 means "not yet observed" and disables hedging toward the peer —
	// a hedge must never be launched blind on version identity.
	version atomic.Uint64
}

func newPeer(addr string, threshold, cooldown int) *Peer {
	return &Peer{Addr: addr, breaker: fault.NewBreaker(threshold, cooldown)}
}

// State returns the peer's lifecycle state.
func (p *Peer) State() PeerState { return PeerState(p.state.Load()) }

func (p *Peer) setState(s PeerState) { p.state.Store(int32(s)) }

// Breaker returns the peer's circuit breaker.
func (p *Peer) Breaker() *fault.Breaker { return p.breaker }

// Version returns the peer's last observed registry version (0: never
// observed).
func (p *Peer) Version() uint64 { return p.version.Load() }

// observeVersion records a version seen on a response or probe.
func (p *Peer) observeVersion(v uint64) {
	if v > 0 {
		p.version.Store(v)
	}
}

// PeerInfo is the /v1/cluster wire representation of one peer.
type PeerInfo struct {
	Addr    string `json:"addr"`
	State   string `json:"state"`
	Breaker string `json:"breaker"`
	Version uint64 `json:"version"`
	OnRing  bool   `json:"on_ring"`
}

// healthzView is the slice of a node's /healthz body the prober reads.
type healthzView struct {
	Status          string `json:"status"`
	RegistryVersion uint64 `json:"registry_version"`
}

// probe performs one health check against a peer and classifies the
// outcome: ok (healthy), draining (planned shutdown announced), or an
// error (unreachable or unhealthy).
func probe(client *http.Client, addr string) (healthzView, error) {
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		return healthzView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return healthzView{}, fmt.Errorf("cluster: %s /healthz returned %d", addr, resp.StatusCode)
	}
	var hv healthzView
	if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
		return healthzView{}, fmt.Errorf("cluster: %s /healthz: %w", addr, err)
	}
	if hv.RegistryVersion == 0 {
		// Fall back to the version header for nodes that answer healthz
		// through a proxy that strips unknown JSON fields.
		if v := resp.Header.Get(serve.VersionHeader); v != "" {
			fmt.Sscanf(v, "%d", &hv.RegistryVersion)
		}
	}
	return hv, nil
}

// probeTimeout bounds one health check; probes must stay cheap enough to
// run every ProbeInterval against every peer.
const probeTimeout = time.Second
