package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heteromap/internal/serve"
)

// The restart half of the durability story, end to end: a cluster node
// with a durable cache is hard-killed mid-storm and restarted on the
// same address. The router must keep availability at or above 99%
// through the whole episode, readmit the reborn node through half-open,
// and — the point of the exercise — the restarted node must answer its
// keyspace from the restored cache (warm hit-rate at least half the
// pre-kill rate on the same probe set), never serving a corrupt model.
func TestClusterRestartUnderLoadWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("restart storm takes ~2s of wall clock")
	}
	base := t.TempDir()
	lc := startLocalT(t, LocalOptions{
		Nodes:         3,
		ProbeInterval: 20 * time.Millisecond,
		NodeOptions: func(i int, opts serve.Options) serve.Options {
			opts.DurableDir = filepath.Join(base, fmt.Sprintf("node-%d", i))
			opts.CacheSnapshotEvery = 40 * time.Millisecond
			return opts
		},
	})
	rt := lc.Router
	const victimIdx = 2
	victim := lc.NodeAddr(victimIdx)

	// Probe set: requests whose ring primary is the victim, so cache
	// warmth on the reborn node is observable through the router.
	var probes []serve.PredictRequest
	for i := 0; i < 300 && len(probes) < 12; i++ {
		req := clusterReq(i)
		feat, err := serve.ResolveFeatures(&req, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Ring().Lookup(feat.ShardHash(), 1)[0] == victim {
			probes = append(probes, req)
		}
	}
	if len(probes) < 4 {
		t.Fatalf("only %d probe requests shard to the victim", len(probes))
	}

	// sendProbes posts the probe set once and returns how many answers
	// came from the shard-local cache, failing on any corrupt serve.
	sendProbes := func(stage string) int {
		t.Helper()
		cached := 0
		for i, req := range probes {
			resp, body := postJSON(t, lc.URL()+"/v1/predict", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s probe %d: status %d: %s", stage, i, resp.StatusCode, body)
			}
			var pr serve.PredictResponse
			if err := json.Unmarshal(body, &pr); err != nil {
				t.Fatalf("%s probe %d: bad body %s: %v", stage, i, body, err)
			}
			if pr.Model != "tree" || pr.Key == "" {
				t.Fatalf("%s probe %d: corrupt serve %+v", stage, i, pr)
			}
			if pr.Cached {
				cached++
			}
		}
		return cached
	}

	// Warm the victim's cache, then measure the pre-kill hit-rate.
	sendProbes("warmup")
	preHits := sendProbes("pre-kill")
	if preHits == 0 {
		t.Fatal("warmup produced no cache hits; the warm-restart floor would be vacuous")
	}
	// The periodic snapshot loop must persist the warm entries before the
	// power cut: wait for a snapshot taken after the warmup completed.
	warmSnaps := lc.Nodes[victimIdx].DurableStats().Snapshots
	waitFor(t, 3*time.Second, "a post-warmup cache snapshot on the victim", func() bool {
		return lc.Nodes[victimIdx].DurableStats().Snapshots > warmSnaps
	})

	// Storm, with the kill and the restart both landing mid-flight.
	const storm = 1400 * time.Millisecond
	var total, okCount, corrupt atomic.Uint64
	deadline := time.Now().Add(storm)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 3 * time.Second}
			for i := w; time.Now().Before(deadline); i += 6 {
				data, _ := json.Marshal(clusterReq(i % 120))
				resp, err := client.Post(lc.URL()+"/v1/predict", "application/json",
					bytes.NewReader(data))
				total.Add(1)
				if err != nil {
					continue
				}
				if resp.StatusCode == http.StatusOK {
					var pr serve.PredictResponse
					if jerr := json.NewDecoder(resp.Body).Decode(&pr); jerr != nil || pr.Model != "tree" {
						corrupt.Add(1)
					} else {
						okCount.Add(1)
					}
				}
				resp.Body.Close()
			}
		}(w)
	}

	time.Sleep(storm / 4)
	lc.KillNode(victimIdx)
	time.Sleep(storm / 8)
	if err := lc.RestartNode(victimIdx); err != nil {
		t.Fatalf("restart: %v", err)
	}
	waitFor(t, 5*time.Second, "reborn node readmission", func() bool {
		p := rt.Peer(victim)
		return p.State() == PeerLive && rt.Ring().Has(victim)
	})
	wg.Wait()

	if total.Load() < 200 {
		t.Fatalf("storm too small to be meaningful: %d requests", total.Load())
	}
	if corrupt.Load() != 0 {
		t.Fatalf("%d corrupt serves during the restart storm", corrupt.Load())
	}
	avail := float64(okCount.Load()) / float64(total.Load())
	t.Logf("restart storm: %d requests, availability %.4f, failovers=%d readmitted=%d",
		total.Load(), avail, rt.Metrics().Failovers.Load(), rt.Metrics().Readmitted.Load())
	if avail < 0.99 {
		t.Fatalf("availability %.4f below the 0.99 floor across kill+restart", avail)
	}
	if rt.Metrics().Readmitted.Load() == 0 {
		t.Fatal("the reborn node was never readmitted through half-open")
	}

	// The reborn node came back warm, not cold: the recovery ladder
	// restored cache entries, and the same probe set hits at least half
	// its pre-kill rate on the first post-restart pass.
	st := lc.Nodes[victimIdx].DurableStats()
	if !st.SnapshotRestored || st.CacheRestored == 0 {
		t.Fatalf("reborn node restored nothing: %+v", st)
	}
	if st.Quarantines != 0 {
		t.Fatalf("reborn node quarantined %d artifacts from a clean crash", st.Quarantines)
	}
	postHits := sendProbes("post-restart")
	t.Logf("warm restart: probe hits %d/%d pre-kill, %d/%d post-restart (restored %d entries)",
		preHits, len(probes), postHits, len(probes), st.CacheRestored)
	if 2*postHits < preHits {
		t.Fatalf("post-restart hit-rate %d/%d below half the pre-kill %d/%d",
			postHits, len(probes), preHits, len(probes))
	}
}
