// Package cluster is the horizontal scale-out tier: a consistent-hash
// ring over the discretized (B, I) keyspace routes predictions across a
// set of serve nodes, each shard backed by a replica group, behind a
// router front-end that fails over on node death, hedges slow primaries
// against their replicas, and keeps hedged pairs on one model version
// during rolling reloads.
//
// One serving process is a single point of failure no matter how
// self-healing it is; this package is what lets the predictor survive a
// kill -9 mid-storm while the loadtest availability floor (≥99%) still
// holds. Placement is deterministic: every router instance, given the
// same node set, places every key identically, because the ring is a
// pure function of (node names, virtual-node count) and the shard key is
// the canonical feature.Vector.Key. Sharding on the cache key means each
// node's LRU prediction cache stays hot on exactly its slice of the
// keyspace — routing and caching agree by construction.
package cluster

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node. 64 points
// per node keeps the placement spread tight (removing one of N nodes
// remaps ~1/N of keys, tested as a property) while a full ring rebuild
// stays microseconds even for dozens of nodes.
const DefaultVNodes = 64

// point is one virtual node on the hash circle.
type point struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring. Mutations (With, Without)
// return a new ring, so routers can publish snapshots behind an atomic
// pointer and look up lock-free on the hot path.
type Ring struct {
	nodes  []string
	points []point // sorted by hash
	vnodes int
}

// hashString is the ring's placement hash (FNV-1a 64), shared with
// feature.Vector.ShardHash so key placement is stable across processes.
func hashString(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	return h.Sum64()
}

// New builds a ring over the given nodes with vnodes virtual nodes each
// (<= 0 selects DefaultVNodes). Duplicate node names are collapsed; node
// order does not affect placement — the ring is a pure function of the
// node *set*.
func New(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	// Sorting the node list makes the ring canonical for a node set, so
	// two routers configured with the same peers in different order
	// agree on every placement.
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, vnodes: vnodes}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for i, n := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hashString(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// Len returns the number of (physical) nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the ring's node set, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Has reports whether a node is on the ring.
func (r *Ring) Has(node string) bool {
	i := sort.SearchStrings(r.nodes, node)
	return i < len(r.nodes) && r.nodes[i] == node
}

// Lookup returns up to n distinct nodes owning the hash, in preference
// order: the primary is the first virtual node clockwise from the hash,
// the replicas the next distinct physical nodes continuing clockwise.
// Returns nil on an empty ring. The walk visits each physical node at
// most once, so n >= Len() returns every node.
func (r *Ring) Lookup(hash uint64, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hash })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// LookupKey is Lookup over the placement hash of a string key.
func (r *Ring) LookupKey(key string, n int) []string {
	return r.Lookup(hashString(key), n)
}

// With returns a ring with the node added (or the receiver when it is
// already present).
func (r *Ring) With(node string) *Ring {
	if node == "" || r.Has(node) {
		return r
	}
	return New(append(r.Nodes(), node), r.vnodes)
}

// Without returns a ring with the node removed (or the receiver when it
// is absent). Only keys owned by the removed node change owners — the
// bounded-rebalance property that makes failover cheap.
func (r *Ring) Without(node string) *Ring {
	if !r.Has(node) {
		return r
	}
	keep := make([]string, 0, len(r.nodes)-1)
	for _, n := range r.nodes {
		if n != node {
			keep = append(keep, n)
		}
	}
	return New(keep, r.vnodes)
}
