package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"heteromap/internal/feature"
)

func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	return out
}

func TestRingCanonicalForNodeSet(t *testing.T) {
	nodes := ringNodes(5)
	shuffled := append([]string(nil), nodes...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a, b := New(nodes, 0), New(shuffled, 0)
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Fatalf("node order leaked into the ring: %v vs %v", a.Nodes(), b.Nodes())
	}
	for i := 0; i < 1000; i++ {
		h := rand.New(rand.NewSource(int64(i))).Uint64()
		if ga, gb := a.Lookup(h, 2), b.Lookup(h, 2); !reflect.DeepEqual(ga, gb) {
			t.Fatalf("hash %#x placed differently: %v vs %v", h, ga, gb)
		}
	}
}

func TestRingDedupAndEmptyNames(t *testing.T) {
	r := New([]string{"a", "", "b", "a", "b"}, 8)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if !r.Has("a") || !r.Has("b") || r.Has("") {
		t.Fatalf("membership wrong: %v", r.Nodes())
	}
}

func TestRingLookupDistinctPreferenceOrder(t *testing.T) {
	r := New(ringNodes(4), 0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		h := rng.Uint64()
		got := r.Lookup(h, 3)
		if len(got) != 3 {
			t.Fatalf("Lookup returned %d nodes, want 3", len(got))
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("duplicate node %q in replica group %v", n, got)
			}
			seen[n] = true
			if !r.Has(n) {
				t.Fatalf("lookup returned off-ring node %q", n)
			}
		}
		// The primary must be stable under a larger n: growing the group
		// only appends replicas.
		if wide := r.Lookup(h, 4); wide[0] != got[0] || wide[1] != got[1] {
			t.Fatalf("replica-group prefix unstable: %v vs %v", got, wide)
		}
	}
	// n beyond Len returns every node exactly once.
	if got := r.Lookup(42, 100); len(got) != 4 {
		t.Fatalf("over-wide lookup returned %d nodes, want 4", len(got))
	}
}

func TestRingEmptyAndZeroN(t *testing.T) {
	empty := New(nil, 0)
	if got := empty.Lookup(1, 2); got != nil {
		t.Fatalf("empty ring lookup = %v, want nil", got)
	}
	r := New(ringNodes(2), 0)
	if got := r.Lookup(1, 0); got != nil {
		t.Fatalf("n=0 lookup = %v, want nil", got)
	}
}

func TestRingWithWithout(t *testing.T) {
	r := New(ringNodes(3), 0)
	if r.With(ringNodes(3)[0]) != r {
		t.Fatal("With(existing) should return the receiver")
	}
	if r.Without("absent") != r {
		t.Fatal("Without(absent) should return the receiver")
	}
	grown := r.With("10.0.0.9:8080")
	if grown.Len() != 4 || !grown.Has("10.0.0.9:8080") {
		t.Fatalf("With did not add: %v", grown.Nodes())
	}
	if r.Len() != 3 {
		t.Fatal("With mutated the receiver")
	}
	shrunk := grown.Without("10.0.0.9:8080")
	if !reflect.DeepEqual(shrunk.Nodes(), r.Nodes()) {
		t.Fatalf("Without round-trip mismatch: %v vs %v", shrunk.Nodes(), r.Nodes())
	}
}

// Removing 1 of N nodes must remap only the removed node's keys — and
// the removed node owns ~1/N of the keyspace, so the observed remap
// fraction stays near 1/N. This is the property that makes failover
// cheap: a dead node's load spreads without reshuffling live nodes'
// cache-hot keyspace slices.
func TestRingBoundedRebalanceProperty(t *testing.T) {
	const keys = 20000
	for _, n := range []int{3, 5, 8} {
		nodes := ringNodes(n)
		full := New(nodes, 0)
		victim := nodes[n/2]
		reduced := full.Without(victim)
		moved, ownedByVictim := 0, 0
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < keys; i++ {
			h := rng.Uint64()
			before := full.Lookup(h, 1)[0]
			after := reduced.Lookup(h, 1)[0]
			if before == victim {
				ownedByVictim++
				continue // these must move; counted separately
			}
			if before != after {
				moved++
			}
		}
		if moved != 0 {
			t.Fatalf("n=%d: %d keys not owned by the removed node changed owners", n, moved)
		}
		frac := float64(ownedByVictim) / keys
		// ~1/n with slack for vnode placement variance.
		lo, hi := 0.4/float64(n), 1.9/float64(n)
		if frac < lo || frac > hi {
			t.Fatalf("n=%d: removed node owned %.3f of keys, want within [%.3f, %.3f] (~1/N)",
				n, frac, lo, hi)
		}
	}
}

// Ring placement and feature.Vector.ShardHash share one hash convention:
// LookupKey(key) must agree with Lookup(ShardHash) for the canonical
// discretized key, so every process places a vector identically.
func TestRingAgreesWithShardHash(t *testing.T) {
	r := New(ringNodes(4), 0)
	v := feature.Vector{0.12, 0.34, 0.56, 0.78, 0.9, 0.1, 0.2, 0.3}.
		Discretized(feature.DiscretizationStep)
	byHash := r.Lookup(v.ShardHash(), 2)
	byKey := r.LookupKey(v.Key(), 2)
	if !reflect.DeepEqual(byHash, byKey) {
		t.Fatalf("ShardHash and LookupKey disagree: %v vs %v", byHash, byKey)
	}
}

func BenchmarkRingLookup(b *testing.B) {
	r := New(ringNodes(8), 0)
	rng := rand.New(rand.NewSource(3))
	hashes := make([]uint64, 1024)
	for i := range hashes {
		hashes[i] = rng.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(hashes[i%len(hashes)], 2)
	}
}
