package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"heteromap/internal/fault"
	"heteromap/internal/feature"
	"heteromap/internal/serve"
)

// RouterOptions size the cluster front-end; zero values select the
// defaults in parentheses.
type RouterOptions struct {
	// Addr is the router's listen address ("127.0.0.1:8100").
	Addr string
	// Peers are the serve-node addresses (host:port) forming the ring.
	// The peer set is fixed at construction; ring *membership* changes
	// dynamically as peers die, drain and recover.
	Peers []string
	// Replicas is the replica-group size per shard, primary included
	// (2). Requests fail over (and hedge) within the group.
	Replicas int
	// VNodes is the virtual-node count per peer (DefaultVNodes).
	VNodes int
	// Step is the feature discretization increment used to resolve the
	// shard key; it must match the nodes' configuration
	// (feature.DiscretizationStep).
	Step float64

	// HedgeAfter is how long the primary may take before the router
	// hedges the request against the replica (25ms) — the cluster analog
	// of the batcher's stage budget.
	HedgeAfter time.Duration
	// PerTryTimeout bounds one forwarded attempt (1s), so a partitioned
	// peer costs one try, not the whole request deadline.
	PerTryTimeout time.Duration
	// RequestTimeout bounds one routed request end to end (5s).
	RequestTimeout time.Duration

	// ProbeInterval is the health-probe cadence (250ms): live peers are
	// watched for drain announcements and sustained breaker-open, dead
	// peers for recovery.
	ProbeInterval time.Duration
	// BreakerThreshold/BreakerCooldown configure the per-peer circuit
	// breakers (5 consecutive hard failures / 64 refused dispatches
	// before a half-open probe), mirroring the per-version breakers
	// inside one node.
	BreakerThreshold int
	BreakerCooldown  int

	// MaxBodyBytes bounds a request body (1 MiB).
	MaxBodyBytes int64
	// Chaos injects forwarding-layer faults (slow-peer, partition,
	// node-kill) for the cluster chaos harness (nil: none). The
	// /v1/chaos endpoint is enabled only when this is set.
	Chaos *fault.ServeInjector
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:8100"
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.Step <= 0 {
		o.Step = feature.DiscretizationStep
	}
	if o.HedgeAfter <= 0 {
		o.HedgeAfter = 25 * time.Millisecond
	}
	if o.PerTryTimeout <= 0 {
		o.PerTryTimeout = time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 64
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	return o
}

// Router headers: which peer answered, how the answer was routed
// (primary, failover, hedge-win), and the answering model version
// (passed through from the node).
const (
	PeerHeader  = "X-Heteromap-Peer"
	RouteHeader = "X-Heteromap-Route"
)

// Router is the cluster front-end: it resolves each request's shard key
// (the canonical discretized feature key), walks the consistent-hash
// ring for the shard's replica group, and forwards to the primary with
// peer-aware failover and version-gated hedging. A background prober
// deregisters peers whose breaker sticks open (or that announce a
// drain) and readmits them when health probes succeed again.
type Router struct {
	opts    RouterOptions
	peers   map[string]*Peer
	metrics *RouterMetrics
	client  *http.Client

	mu   sync.Mutex // guards ring read-modify-write
	ring atomicRing

	http *http.Server
	// ln is set once by Start and read by Addr, commonly from the
	// goroutine polling for the ephemeral port to bind.
	ln atomic.Pointer[net.Listener]

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// atomicRing is a minimal atomic holder for immutable *Ring snapshots.
type atomicRing struct {
	mu sync.RWMutex
	r  *Ring
}

func (a *atomicRing) load() *Ring {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.r
}

func (a *atomicRing) store(r *Ring) {
	a.mu.Lock()
	a.r = r
	a.mu.Unlock()
}

// NewRouter assembles a router over the given peers (without listening;
// see Start and Handler).
func NewRouter(opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one peer")
	}
	rt := &Router{
		opts:    opts,
		peers:   make(map[string]*Peer, len(opts.Peers)),
		metrics: NewRouterMetrics(),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
		}},
		stop: make(chan struct{}),
	}
	for _, addr := range opts.Peers {
		if addr == "" {
			continue
		}
		if _, dup := rt.peers[addr]; dup {
			continue
		}
		rt.peers[addr] = newPeer(addr, opts.BreakerThreshold, opts.BreakerCooldown)
	}
	if len(rt.peers) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one non-empty peer")
	}
	addrs := make([]string, 0, len(rt.peers))
	for a := range rt.peers {
		addrs = append(addrs, a)
	}
	rt.ring.store(New(addrs, opts.VNodes))
	rt.http = &http.Server{Addr: opts.Addr, Handler: rt.Handler()}
	rt.wg.Add(1)
	go rt.proberLoop()
	return rt, nil
}

// Metrics returns the router's metrics set.
func (rt *Router) Metrics() *RouterMetrics { return rt.metrics }

// Ring returns the current ring snapshot.
func (rt *Router) Ring() *Ring { return rt.ring.load() }

// Peer returns a peer by address (nil when unknown).
func (rt *Router) Peer(addr string) *Peer { return rt.peers[addr] }

// PeerInfos describes every peer for /v1/cluster, sorted by address.
func (rt *Router) PeerInfos() []PeerInfo {
	ring := rt.ring.load()
	out := make([]PeerInfo, 0, len(rt.peers))
	for _, addr := range New(rt.opts.Peers, 1).Nodes() { // canonical sorted order
		p := rt.peers[addr]
		if p == nil {
			continue
		}
		out = append(out, PeerInfo{
			Addr:    addr,
			State:   p.State().String(),
			Breaker: p.breaker.State().String(),
			Version: p.Version(),
			OnRing:  ring.Has(addr),
		})
	}
	return out
}

// Handler returns the router's API mux.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", rt.handlePredict)
	mux.HandleFunc("/v1/predict/batch", rt.handlePredictBatch)
	mux.HandleFunc("/v1/cluster", rt.handleCluster)
	mux.HandleFunc("/v1/chaos", rt.handleChaos)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return mux
}

// Start listens on Options.Addr and serves until Shutdown.
func (rt *Router) Start() error {
	ln, err := net.Listen("tcp", rt.opts.Addr)
	if err != nil {
		return fmt.Errorf("cluster: listen %s: %w", rt.opts.Addr, err)
	}
	rt.ln.Store(&ln)
	err = rt.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Addr returns the bound listen address (valid after Start's Listen).
func (rt *Router) Addr() string {
	ln := rt.ln.Load()
	if ln == nil {
		return rt.opts.Addr
	}
	return (*ln).Addr().String()
}

// Shutdown stops the listener and the prober.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.once.Do(func() { close(rt.stop) })
	err := rt.http.Shutdown(ctx)
	rt.wg.Wait()
	return err
}

// deregister takes a peer off the ring in the given terminal state; its
// shard keys fall to the replicas by ring construction.
func (rt *Router) deregister(p *Peer, state PeerState, reason string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ring := rt.ring.load()
	if !ring.Has(p.Addr) {
		p.setState(state)
		return
	}
	p.setState(state)
	rt.ring.store(ring.Without(p.Addr))
	rt.metrics.Deregistered.Add(1)
	rt.metrics.noteEvent(fmt.Sprintf("deregistered %s: %s", p.Addr, reason))
}

// readmit puts a recovered peer back on the ring with a closed breaker.
func (rt *Router) readmit(p *Peer) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	p.breaker.RecordSuccess() // closes the circuit
	p.setState(PeerLive)
	ring := rt.ring.load()
	if !ring.Has(p.Addr) {
		rt.ring.store(ring.With(p.Addr))
		rt.metrics.Readmitted.Add(1)
		rt.metrics.noteEvent("readmitted " + p.Addr)
	}
}

// proberLoop drives the peer lifecycle: live peers are watched for drain
// announcements and sustained breaker-open (-> deregister), draining and
// dead peers are probed for recovery (-> readmit). This is the
// health-probe half-open path: a deregistered peer receives no traffic,
// so only a successful probe can bring it back.
func (rt *Router) proberLoop() {
	defer rt.wg.Done()
	client := &http.Client{Timeout: probeTimeout}
	ticker := time.NewTicker(rt.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
		for _, p := range rt.peers {
			rt.probeOne(client, p)
		}
	}
}

// probeOne advances one peer through the lifecycle.
func (rt *Router) probeOne(client *http.Client, p *Peer) {
	hv, err := probe(client, p.Addr)
	switch p.State() {
	case PeerLive:
		switch {
		case err != nil:
			// Probe failures feed the same breaker as request failures;
			// a silent peer with no traffic still gets deregistered.
			p.breaker.RecordFailure()
			if p.breaker.State() == fault.BreakerOpen {
				rt.deregister(p, PeerDead, "health probe failing, breaker open")
			}
		case hv.Status == "draining":
			rt.deregister(p, PeerDraining, "peer announced drain")
		default:
			p.observeVersion(hv.RegistryVersion)
			// Requests may have opened the breaker between probes; a
			// sustained-open breaker means the peer is deregistered even
			// though /healthz still answers (e.g. the predict path is
			// wedged while the mux lives).
			if p.breaker.State() == fault.BreakerOpen {
				rt.deregister(p, PeerDead, "request breaker open")
			}
		}
	case PeerDraining:
		switch {
		case err != nil:
			// The drained node finished exiting.
			p.setState(PeerDead)
		case hv.Status != "draining":
			rt.readmit(p)
			p.observeVersion(hv.RegistryVersion)
		}
	case PeerDead:
		if err == nil && hv.Status == "ok" {
			rt.readmit(p)
			p.observeVersion(hv.RegistryVersion)
		}
	}
}

// fwdResult is one forwarded attempt's outcome.
type fwdResult struct {
	status  int
	body    []byte
	version uint64 // answering model version (from the node's header)
	// Retry-After passthrough for shed responses.
	retryAfterSec string
	retryAfterMS  string
	err           error
}

// ok reports a usable answer: the peer responded and did not fail
// server-side (4xx is the client's fault and passes through).
func (r fwdResult) ok() bool { return r.err == nil && r.status < 500 }

// shed reports a 503: the peer is alive but saturated — worth a
// failover, not a breaker failure.
func (r fwdResult) shed() bool { return r.err == nil && r.status == http.StatusServiceUnavailable }

// hardFail reports a dead-or-broken peer: transport error or a non-shed
// 5xx. Only hard failures feed the peer breaker, so a shedding node is
// never deregistered for being busy.
func (r fwdResult) hardFail() bool {
	return r.err != nil || (r.status >= 500 && r.status != http.StatusServiceUnavailable)
}

// errPartitioned is the synthetic error of a chaos-injected partition.
var errPartitioned = errors.New("cluster: request blackholed (chaos partition)")

// errNodeKilled is the synthetic error of a chaos-injected dead node.
var errNodeKilled = errors.New("cluster: connection refused (chaos node-kill)")

// forwardTo sends the body to one peer's /v1/predict under the per-try
// timeout, applying the chaos profile's forwarding-layer faults first.
// It does no bookkeeping; callers settle the breaker via finish.
func (rt *Router) forwardTo(ctx context.Context, p *Peer, body []byte) fwdResult {
	rt.metrics.Forwards.Add(1)
	if rt.opts.Chaos.KillNode() {
		rt.metrics.ChaosNodeKills.Add(1)
		return fwdResult{err: errNodeKilled}
	}
	if rt.opts.Chaos.PartitionPeer() {
		// A partition hangs until the attempt deadline, never reaching
		// the peer — the worst case the per-try timeout exists for.
		rt.metrics.ChaosPartitions.Add(1)
		t := time.NewTimer(rt.opts.PerTryTimeout)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return fwdResult{err: ctx.Err()}
		case <-t.C:
			return fwdResult{err: errPartitioned}
		}
	}
	if d, slow := rt.opts.Chaos.SlowPeer(); slow {
		rt.metrics.ChaosSlowPeers.Add(1)
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return fwdResult{err: ctx.Err()}
		case <-t.C:
		}
	}
	tctx, cancel := context.WithTimeout(ctx, rt.opts.PerTryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost,
		"http://"+p.Addr+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		return fwdResult{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return fwdResult{err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, rt.opts.MaxBodyBytes))
	if err != nil {
		return fwdResult{err: err}
	}
	res := fwdResult{
		status:        resp.StatusCode,
		body:          data,
		retryAfterSec: resp.Header.Get("Retry-After"),
		retryAfterMS:  resp.Header.Get(serve.RetryAfterMSHeader),
	}
	if v := resp.Header.Get(serve.VersionHeader); v != "" {
		res.version, _ = strconv.ParseUint(v, 10, 64)
	}
	return res
}

// finish settles one attempt's peer bookkeeping: hard failures feed the
// breaker, usable answers close it and refresh the peer's known model
// version.
func (rt *Router) finish(p *Peer, res fwdResult) {
	if res.hardFail() {
		rt.metrics.PeerErrors.Add(1)
		p.breaker.RecordFailure()
		return
	}
	p.breaker.RecordSuccess()
	p.observeVersion(res.version)
}

// hedgedForward forwards to the primary and, when the primary is slow
// past HedgeAfter, races a hedge against the replica — but only when
// both peers' last observed model versions agree (and are known):
// mid-rolling-reload the hedge is suppressed instead, so one request can
// never be answered by a mixed-version pair. The gate is also enforced
// post hoc: a hedge answer whose actual version differs from the
// expected one is discarded, never served.
func (rt *Router) hedgedForward(ctx context.Context, primary, hedge *Peer, body []byte) (fwdResult, *Peer, string) {
	pch := make(chan fwdResult, 1)
	go func() { pch <- rt.forwardTo(ctx, primary, body) }()

	expect := primary.Version()
	var timerC <-chan time.Time
	if hedge != nil {
		if expect != 0 && hedge.Version() == expect {
			t := time.NewTimer(rt.opts.HedgeAfter)
			defer t.Stop()
			timerC = t.C
		} else {
			rt.metrics.HedgeVersionSkips.Add(1)
		}
	}

	var hch chan fwdResult
	for {
		select {
		case res := <-pch:
			rt.finish(primary, res)
			if res.ok() || hch == nil {
				return res, primary, "primary"
			}
			// Primary failed hard with a hedge in flight: its answer is
			// now the only hope for this rung of the ladder.
			select {
			case hres := <-hch:
				rt.finish(hedge, hres)
				if hres.ok() && hres.version == expect {
					rt.metrics.HedgeWins.Add(1)
					return hres, hedge, "hedge-win"
				}
				if hres.ok() {
					rt.metrics.HedgeMixedDiscards.Add(1)
				}
				return res, primary, "primary"
			case <-ctx.Done():
				return fwdResult{err: ctx.Err()}, primary, "primary"
			}
		case <-timerC:
			timerC = nil
			rt.metrics.Hedges.Add(1)
			hch = make(chan fwdResult, 1)
			go func() { hch <- rt.forwardTo(ctx, hedge, body) }()
		case hres := <-hch:
			rt.finish(hedge, hres)
			if hres.ok() {
				if hres.version == expect {
					rt.metrics.HedgeWins.Add(1)
					// The primary attempt finishes into its buffered
					// channel; settle its bookkeeping off the hot path.
					go func() { rt.finish(primary, <-pch) }()
					return hres, hedge, "hedge-win"
				}
				// Version skew discovered at answer time (the replica
				// reloaded after our last observation): discard the
				// answer, keep waiting on the primary.
				rt.metrics.HedgeMixedDiscards.Add(1)
			}
			hch = nil
		case <-ctx.Done():
			return fwdResult{err: ctx.Err()}, primary, "primary"
		}
	}
}

// routeOne routes one prediction body by shard hash: the ring names the
// replica group, the failover ladder walks it (hedged primary first,
// then sequential failover), and the first usable answer wins.
func (rt *Router) routeOne(ctx context.Context, body []byte, hash uint64) (fwdResult, string, string) {
	owners := rt.ring.load().Lookup(hash, rt.opts.Replicas)
	cands := make([]*Peer, 0, len(owners))
	for _, addr := range owners {
		p := rt.peers[addr]
		if p == nil || p.State() != PeerLive {
			continue
		}
		if !p.breaker.Allow() {
			continue
		}
		cands = append(cands, p)
	}
	if len(cands) == 0 {
		rt.metrics.NoReplica.Add(1)
		return fwdResult{
			status: http.StatusServiceUnavailable,
			body:   []byte(`{"error":"cluster: no live replica for shard"}`),
		}, "", "no-replica"
	}

	var last fwdResult
	lastPeer := cands[0].Addr
	for i, p := range cands {
		var res fwdResult
		answered, route := p, "primary"
		if i == 0 {
			var hedge *Peer
			if len(cands) > 1 {
				hedge = cands[1]
			}
			res, answered, route = rt.hedgedForward(ctx, p, hedge, body)
		} else {
			route = "failover"
			res = rt.forwardTo(ctx, p, body)
			rt.finish(p, res)
		}
		if res.ok() {
			if i > 0 {
				rt.metrics.Failovers.Add(1)
			}
			return res, answered.Addr, route
		}
		last, lastPeer = res, answered.Addr
		if ctx.Err() != nil {
			break
		}
	}
	// Ladder exhausted: surface the last failure honestly (a shed 503
	// keeps its Retry-After; a transport error becomes 502).
	if last.err != nil {
		return fwdResult{
			status: http.StatusBadGateway,
			body:   []byte(fmt.Sprintf(`{"error":%q}`, "cluster: all replicas failed: "+last.err.Error())),
		}, lastPeer, "exhausted"
	}
	return last, lastPeer, "exhausted"
}

// writeRouted emits a routed result with the router's annotations.
func (rt *Router) writeRouted(w http.ResponseWriter, res fwdResult, peer, route string, elapsed time.Duration) {
	rt.metrics.RouteLatency.Observe(elapsed)
	if res.status >= 400 {
		rt.metrics.HTTPErrors.Add(1)
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if peer != "" {
		h.Set(PeerHeader, peer)
	}
	h.Set(RouteHeader, route)
	if res.version > 0 {
		h.Set(serve.VersionHeader, strconv.FormatUint(res.version, 10))
	}
	if res.retryAfterSec != "" {
		h.Set("Retry-After", res.retryAfterSec)
	}
	if res.retryAfterMS != "" {
		h.Set(serve.RetryAfterMSHeader, res.retryAfterMS)
	}
	status := res.status
	if status == 0 {
		status = http.StatusBadGateway
	}
	w.WriteHeader(status)
	w.Write(res.body)
}

// readRequest decodes a predict request while keeping the raw bytes for
// forwarding, and resolves its shard hash from the canonical discretized
// feature key.
func (rt *Router) readRequest(w http.ResponseWriter, r *http.Request) ([]byte, uint64, error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opts.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, 0, &routeError{http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return nil, 0, &routeError{http.StatusBadRequest, err}
	}
	var req serve.PredictRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, 0, &routeError{http.StatusBadRequest, fmt.Errorf("decode request: %w", err)}
	}
	feat, err := serve.ResolveFeatures(&req, rt.opts.Step)
	if err != nil {
		return nil, 0, &routeError{http.StatusBadRequest, err}
	}
	return raw, feat.ShardHash(), nil
}

// routeError carries the HTTP status a routing-layer error should wear.
type routeError struct {
	status int
	err    error
}

func (e *routeError) Error() string { return e.err.Error() }

func (rt *Router) errorJSON(w http.ResponseWriter, status int, err error) {
	rt.metrics.HTTPErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	rt.metrics.Requests.Add(1)
	body, hash, err := rt.readRequest(w, r)
	if err != nil {
		re := err.(*routeError)
		rt.errorJSON(w, re.status, re.err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.RequestTimeout)
	defer cancel()
	start := time.Now()
	res, peer, route := rt.routeOne(ctx, body, hash)
	rt.writeRouted(w, res, peer, route, time.Since(start))
}

func (rt *Router) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opts.MaxBodyBytes))
	if err != nil {
		rt.errorJSON(w, http.StatusBadRequest, err)
		return
	}
	var batch serve.BatchRequest
	if err := json.Unmarshal(raw, &batch); err != nil {
		rt.errorJSON(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(batch.Requests) == 0 {
		rt.errorJSON(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	rt.metrics.Requests.Add(uint64(len(batch.Requests)))
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.RequestTimeout)
	defer cancel()

	// Batch items shard independently, so they fan out to their owning
	// nodes concurrently and reassemble positionally — the cluster
	// analog of the single-node batch endpoint's queue fan-in.
	start := time.Now()
	resps := make([]serve.PredictResponse, len(batch.Requests))
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			item := &batch.Requests[i]
			feat, err := serve.ResolveFeatures(item, rt.opts.Step)
			if err != nil {
				resps[i] = serve.PredictResponse{Error: err.Error()}
				return
			}
			body, err := json.Marshal(item)
			if err != nil {
				resps[i] = serve.PredictResponse{Error: err.Error()}
				return
			}
			res, _, _ := rt.routeOne(ctx, body, feat.ShardHash())
			if !res.ok() {
				msg := fmt.Sprintf("cluster: upstream status %d", res.status)
				if res.err != nil {
					msg = res.err.Error()
				} else if len(res.body) > 0 {
					var e struct {
						Error string `json:"error"`
					}
					if json.Unmarshal(res.body, &e) == nil && e.Error != "" {
						msg = e.Error
					}
				}
				resps[i] = serve.PredictResponse{Error: msg}
				return
			}
			if err := json.Unmarshal(res.body, &resps[i]); err != nil {
				resps[i] = serve.PredictResponse{Error: "cluster: bad upstream body: " + err.Error()}
			}
		}(i)
	}
	wg.Wait()
	rt.metrics.RouteLatency.Observe(time.Since(start))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(serve.BatchResponse{Responses: resps})
}

func (rt *Router) handleCluster(w http.ResponseWriter, _ *http.Request) {
	ring := rt.ring.load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"peers":    rt.PeerInfos(),
		"ring":     ring.Nodes(),
		"replicas": rt.opts.Replicas,
		"vnodes":   rt.opts.VNodes,
		"events":   rt.metrics.Events(),
	})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	live := 0
	for _, p := range rt.peers {
		if p.State() == PeerLive {
			live++
		}
	}
	status := "ok"
	if live == 0 {
		status = "no-live-peers"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":     status,
		"role":       "router",
		"peers":      len(rt.peers),
		"live_peers": live,
		"ring_size":  rt.ring.load().Len(),
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.metrics.WritePrometheus(w, rt.PeerInfos())
}

// clusterChaosRequest is the router's /v1/chaos body; rates in [0,1],
// delays in milliseconds, so profiles are scriptable from curl and from
// the loadgen chaos flipper's cluster mode.
type clusterChaosRequest struct {
	SlowPeerRate  float64 `json:"slow_peer_rate"`
	SlowPeerMS    float64 `json:"slow_peer_ms"`
	PartitionRate float64 `json:"partition_rate"`
	NodeKillRate  float64 `json:"node_kill_rate"`
}

func (rt *Router) handleChaos(w http.ResponseWriter, r *http.Request) {
	if rt.opts.Chaos == nil {
		rt.errorJSON(w, http.StatusConflict,
			fmt.Errorf("chaos injection not enabled (start the router with -chaos-serve)"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		p := rt.opts.Chaos.ServeProfile()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(clusterChaosRequest{
			SlowPeerRate:  p.SlowPeerRate,
			SlowPeerMS:    float64(p.SlowPeerDelay.Milliseconds()),
			PartitionRate: p.PeerPartitionRate,
			NodeKillRate:  p.NodeKillRate,
		})
	case http.MethodPost:
		var req clusterChaosRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.opts.MaxBodyBytes)).Decode(&req); err != nil {
			rt.errorJSON(w, http.StatusBadRequest, err)
			return
		}
		if req.SlowPeerRate > 0 && req.SlowPeerMS <= 0 {
			req.SlowPeerMS = 50
		}
		rt.opts.Chaos.SetServeProfile(fault.ServeProfile{
			SlowPeerRate:      req.SlowPeerRate,
			SlowPeerDelay:     time.Duration(req.SlowPeerMS * float64(time.Millisecond)),
			PeerPartitionRate: req.PartitionRate,
			NodeKillRate:      req.NodeKillRate,
		})
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{
			"profile": rt.opts.Chaos.ServeProfile().String(),
		})
	default:
		rt.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}
