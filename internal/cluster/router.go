package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"heteromap/internal/fault"
	"heteromap/internal/feature"
	"heteromap/internal/obs"
	"heteromap/internal/serve"
)

// RouterOptions size the cluster front-end; zero values select the
// defaults in parentheses.
type RouterOptions struct {
	// Addr is the router's listen address ("127.0.0.1:8100").
	Addr string
	// Peers are the serve-node addresses (host:port) forming the ring.
	// The peer set is fixed at construction; ring *membership* changes
	// dynamically as peers die, drain and recover.
	Peers []string
	// Replicas is the replica-group size per shard, primary included
	// (2). Requests fail over (and hedge) within the group.
	Replicas int
	// VNodes is the virtual-node count per peer (DefaultVNodes).
	VNodes int
	// Step is the feature discretization increment used to resolve the
	// shard key; it must match the nodes' configuration
	// (feature.DiscretizationStep).
	Step float64

	// HedgeAfter is how long the primary may take before the router
	// hedges the request against the replica (25ms) — the cluster analog
	// of the batcher's stage budget.
	HedgeAfter time.Duration
	// PerTryTimeout bounds one forwarded attempt (1s), so a partitioned
	// peer costs one try, not the whole request deadline.
	PerTryTimeout time.Duration
	// RequestTimeout bounds one routed request end to end (5s).
	RequestTimeout time.Duration

	// ProbeInterval is the health-probe cadence (250ms): live peers are
	// watched for drain announcements and sustained breaker-open, dead
	// peers for recovery.
	ProbeInterval time.Duration
	// BreakerThreshold/BreakerCooldown configure the per-peer circuit
	// breakers (5 consecutive hard failures / 64 refused dispatches
	// before a half-open probe), mirroring the per-version breakers
	// inside one node.
	BreakerThreshold int
	BreakerCooldown  int

	// MaxBodyBytes bounds a request body (1 MiB).
	MaxBodyBytes int64
	// Chaos injects forwarding-layer faults (slow-peer, partition,
	// node-kill) for the cluster chaos harness (nil: none). The
	// /v1/chaos endpoint is enabled only when this is set.
	Chaos *fault.ServeInjector

	// Tracer records routed-request traces (hop spans for every
	// forward, hedge and failover) into the router's own sampling ring;
	// nil builds a default tracer unless DisableTracing is set. The
	// trace id is propagated to peers on every forward so
	// /v1/trace/{id} can stitch the cross-process timeline.
	Tracer *obs.Tracer
	// DisableTracing turns router tracing (and propagation) off.
	DisableTracing bool
	// SLO tracks the cluster-level availability and p99 objectives over
	// routed requests, exposes /v1/slo and the heteromap_slo_* gauges,
	// and — once the error budget exhausts — tightens HedgeAfter so the
	// router spends spare capacity defending the tail. Nil disables.
	SLO *obs.SLO
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:8100"
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.Step <= 0 {
		o.Step = feature.DiscretizationStep
	}
	if o.HedgeAfter <= 0 {
		o.HedgeAfter = 25 * time.Millisecond
	}
	if o.PerTryTimeout <= 0 {
		o.PerTryTimeout = time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 64
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.Tracer == nil && !o.DisableTracing {
		o.Tracer = obs.NewTracer(obs.Options{})
	}
	if o.DisableTracing {
		o.Tracer = nil
	}
	return o
}

// Router headers: which peer answered, how the answer was routed
// (primary, failover, hedge-win), and the answering model version
// (passed through from the node).
const (
	PeerHeader  = "X-Heteromap-Peer"
	RouteHeader = "X-Heteromap-Route"
)

// Router is the cluster front-end: it resolves each request's shard key
// (the canonical discretized feature key), walks the consistent-hash
// ring for the shard's replica group, and forwards to the primary with
// peer-aware failover and version-gated hedging. A background prober
// deregisters peers whose breaker sticks open (or that announce a
// drain) and readmits them when health probes succeed again.
type Router struct {
	opts    RouterOptions
	peers   map[string]*Peer
	metrics *RouterMetrics
	client  *http.Client
	tracer  *obs.Tracer // nil when tracing is disabled
	slo     *obs.SLO    // nil when SLO tracking is disabled

	mu   sync.Mutex // guards ring read-modify-write
	ring atomicRing

	http *http.Server
	// ln is set once by Start and read by Addr, commonly from the
	// goroutine polling for the ephemeral port to bind.
	ln atomic.Pointer[net.Listener]

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// atomicRing is a minimal atomic holder for immutable *Ring snapshots.
type atomicRing struct {
	mu sync.RWMutex
	r  *Ring
}

func (a *atomicRing) load() *Ring {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.r
}

func (a *atomicRing) store(r *Ring) {
	a.mu.Lock()
	a.r = r
	a.mu.Unlock()
}

// NewRouter assembles a router over the given peers (without listening;
// see Start and Handler).
func NewRouter(opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one peer")
	}
	rt := &Router{
		opts:    opts,
		peers:   make(map[string]*Peer, len(opts.Peers)),
		metrics: NewRouterMetrics(),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
		}},
		tracer: opts.Tracer,
		slo:    opts.SLO,
		stop:   make(chan struct{}),
	}
	for _, addr := range opts.Peers {
		if addr == "" {
			continue
		}
		if _, dup := rt.peers[addr]; dup {
			continue
		}
		rt.peers[addr] = newPeer(addr, opts.BreakerThreshold, opts.BreakerCooldown)
	}
	if len(rt.peers) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one non-empty peer")
	}
	addrs := make([]string, 0, len(rt.peers))
	for a := range rt.peers {
		addrs = append(addrs, a)
	}
	rt.ring.store(New(addrs, opts.VNodes))
	rt.http = &http.Server{Addr: opts.Addr, Handler: rt.Handler()}
	rt.wg.Add(1)
	go rt.proberLoop()
	return rt, nil
}

// Metrics returns the router's metrics set.
func (rt *Router) Metrics() *RouterMetrics { return rt.metrics }

// Ring returns the current ring snapshot.
func (rt *Router) Ring() *Ring { return rt.ring.load() }

// Peer returns a peer by address (nil when unknown).
func (rt *Router) Peer(addr string) *Peer { return rt.peers[addr] }

// PeerInfos describes every peer for /v1/cluster, sorted by address.
func (rt *Router) PeerInfos() []PeerInfo {
	ring := rt.ring.load()
	out := make([]PeerInfo, 0, len(rt.peers))
	for _, addr := range New(rt.opts.Peers, 1).Nodes() { // canonical sorted order
		p := rt.peers[addr]
		if p == nil {
			continue
		}
		out = append(out, PeerInfo{
			Addr:    addr,
			State:   p.State().String(),
			Breaker: p.breaker.State().String(),
			Version: p.Version(),
			OnRing:  ring.Has(addr),
		})
	}
	return out
}

// Handler returns the router's API mux.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", rt.handlePredict)
	mux.HandleFunc("/v1/predict/batch", rt.handlePredictBatch)
	mux.HandleFunc("/v1/cluster", rt.handleCluster)
	mux.HandleFunc("/v1/chaos", rt.handleChaos)
	mux.HandleFunc("/v1/trace/", rt.handleTrace)
	mux.Handle("/v1/slo", rt.slo.Handler())
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/metrics/cluster", rt.handleMetricsCluster)
	mux.Handle("/debug/traces", rt.tracer.TracesHandler())
	return mux
}

// Tracer returns the router's tracer (nil when tracing is disabled).
func (rt *Router) Tracer() *obs.Tracer { return rt.tracer }

// SLO returns the router's SLO tracker (nil when disabled).
func (rt *Router) SLO() *obs.SLO { return rt.slo }

// Start listens on Options.Addr and serves until Shutdown.
func (rt *Router) Start() error {
	ln, err := net.Listen("tcp", rt.opts.Addr)
	if err != nil {
		return fmt.Errorf("cluster: listen %s: %w", rt.opts.Addr, err)
	}
	rt.ln.Store(&ln)
	err = rt.http.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Addr returns the bound listen address (valid after Start's Listen).
func (rt *Router) Addr() string {
	ln := rt.ln.Load()
	if ln == nil {
		return rt.opts.Addr
	}
	return (*ln).Addr().String()
}

// Shutdown stops the listener and the prober.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.once.Do(func() { close(rt.stop) })
	err := rt.http.Shutdown(ctx)
	rt.wg.Wait()
	return err
}

// deregister takes a peer off the ring in the given terminal state; its
// shard keys fall to the replicas by ring construction.
func (rt *Router) deregister(p *Peer, state PeerState, reason string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ring := rt.ring.load()
	if !ring.Has(p.Addr) {
		p.setState(state)
		return
	}
	p.setState(state)
	rt.ring.store(ring.Without(p.Addr))
	rt.metrics.Deregistered.Add(1)
	rt.metrics.noteEvent(fmt.Sprintf("deregistered %s: %s", p.Addr, reason))
}

// readmit puts a recovered peer back on the ring with a closed breaker.
func (rt *Router) readmit(p *Peer) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	p.breaker.RecordSuccess() // closes the circuit
	p.setState(PeerLive)
	ring := rt.ring.load()
	if !ring.Has(p.Addr) {
		rt.ring.store(ring.With(p.Addr))
		rt.metrics.Readmitted.Add(1)
		rt.metrics.noteEvent("readmitted " + p.Addr)
	}
}

// proberLoop drives the peer lifecycle: live peers are watched for drain
// announcements and sustained breaker-open (-> deregister), draining and
// dead peers are probed for recovery (-> readmit). This is the
// health-probe half-open path: a deregistered peer receives no traffic,
// so only a successful probe can bring it back.
func (rt *Router) proberLoop() {
	defer rt.wg.Done()
	client := &http.Client{Timeout: probeTimeout}
	ticker := time.NewTicker(rt.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
		}
		for _, p := range rt.peers {
			rt.probeOne(client, p)
		}
	}
}

// probeOne advances one peer through the lifecycle.
func (rt *Router) probeOne(client *http.Client, p *Peer) {
	hv, err := probe(client, p.Addr)
	switch p.State() {
	case PeerLive:
		switch {
		case err != nil:
			// Probe failures feed the same breaker as request failures;
			// a silent peer with no traffic still gets deregistered.
			p.breaker.RecordFailure()
			if p.breaker.State() == fault.BreakerOpen {
				rt.deregister(p, PeerDead, "health probe failing, breaker open")
			}
		case hv.Status == "draining":
			rt.deregister(p, PeerDraining, "peer announced drain")
		default:
			p.observeVersion(hv.RegistryVersion)
			// Requests may have opened the breaker between probes; a
			// sustained-open breaker means the peer is deregistered even
			// though /healthz still answers (e.g. the predict path is
			// wedged while the mux lives).
			if p.breaker.State() == fault.BreakerOpen {
				rt.deregister(p, PeerDead, "request breaker open")
			}
		}
	case PeerDraining:
		switch {
		case err != nil:
			// The drained node finished exiting.
			p.setState(PeerDead)
		case hv.Status != "draining":
			rt.readmit(p)
			p.observeVersion(hv.RegistryVersion)
		}
	case PeerDead:
		if err == nil && hv.Status == "ok" {
			rt.readmit(p)
			p.observeVersion(hv.RegistryVersion)
		}
	}
}

// fwdResult is one forwarded attempt's outcome.
type fwdResult struct {
	status  int
	body    []byte
	version uint64 // answering model version (from the node's header)
	// Retry-After passthrough for shed responses.
	retryAfterSec string
	retryAfterMS  string
	err           error
	// span is the attempt's hop span, left open by forwardTo so the
	// caller can settle its outcome (a hedge answer may be discarded
	// after the transport succeeded).
	span *obs.Span
}

// settle closes the attempt's hop span with the transport outcome.
func (r fwdResult) settle() {
	switch {
	case r.err != nil:
		r.span.EndErr(r.err)
	case r.status == http.StatusServiceUnavailable:
		r.span.EndOutcome("shed")
	case r.status >= 500:
		r.span.EndOutcome("5xx")
	default:
		r.span.End()
	}
}

// ok reports a usable answer: the peer responded and did not fail
// server-side (4xx is the client's fault and passes through).
func (r fwdResult) ok() bool { return r.err == nil && r.status < 500 }

// shed reports a 503: the peer is alive but saturated — worth a
// failover, not a breaker failure.
func (r fwdResult) shed() bool { return r.err == nil && r.status == http.StatusServiceUnavailable }

// hardFail reports a dead-or-broken peer: transport error or a non-shed
// 5xx. Only hard failures feed the peer breaker, so a shedding node is
// never deregistered for being busy.
func (r fwdResult) hardFail() bool {
	return r.err != nil || (r.status >= 500 && r.status != http.StatusServiceUnavailable)
}

// errPartitioned is the synthetic error of a chaos-injected partition.
var errPartitioned = errors.New("cluster: request blackholed (chaos partition)")

// errNodeKilled is the synthetic error of a chaos-injected dead node.
var errNodeKilled = errors.New("cluster: connection refused (chaos node-kill)")

// forwardTo sends the body to one peer's /v1/predict under the per-try
// timeout, applying the chaos profile's forwarding-layer faults first.
// Each attempt is a hop span ("forward:"+route) and carries the trace
// id, this span's id and an incremented hop count on the wire, so the
// peer's own trace joins this one and /v1/trace/{id} can re-parent its
// span set under this hop. The span is returned open in fwdResult.span;
// callers settle it (and the breaker, via finish) once the attempt's
// fate — served, discarded, abandoned — is known.
func (rt *Router) forwardTo(ctx context.Context, p *Peer, body []byte, route string) fwdResult {
	sp := obs.NewSpan(ctx, "forward:"+route)
	sp.SetAttr("peer", p.Addr)
	return rt.forwardSpan(ctx, p, body, sp)
}

// forwardSpan is forwardTo with a caller-owned hop span, so hedgedForward
// can hold the primary attempt's span and mark it abandoned the moment a
// hedge answer is served instead.
func (rt *Router) forwardSpan(ctx context.Context, p *Peer, body []byte, sp *obs.Span) fwdResult {
	rt.metrics.Forwards.Add(1)
	if rt.opts.Chaos.KillNode() {
		rt.metrics.ChaosNodeKills.Add(1)
		return fwdResult{err: errNodeKilled, span: sp}
	}
	if rt.opts.Chaos.PartitionPeer() {
		// A partition hangs until the attempt deadline, never reaching
		// the peer — the worst case the per-try timeout exists for.
		rt.metrics.ChaosPartitions.Add(1)
		t := time.NewTimer(rt.opts.PerTryTimeout)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return fwdResult{err: ctx.Err(), span: sp}
		case <-t.C:
			return fwdResult{err: errPartitioned, span: sp}
		}
	}
	if d, slow := rt.opts.Chaos.SlowPeer(); slow {
		rt.metrics.ChaosSlowPeers.Add(1)
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return fwdResult{err: ctx.Err(), span: sp}
		case <-t.C:
		}
	}
	tctx, cancel := context.WithTimeout(ctx, rt.opts.PerTryTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost,
		"http://"+p.Addr+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		return fwdResult{err: err, span: sp}
	}
	req.Header.Set("Content-Type", "application/json")
	if tid := obs.TraceID(ctx); tid != "" {
		req.Header.Set(obs.TraceHeader, tid)
		req.Header.Set(obs.ParentSpanHeader, strconv.Itoa(sp.ID()))
		hop := 1
		if h := obs.TraceFromContext(ctx).Attr("hop"); h != "" {
			if n, err := strconv.Atoi(h); err == nil {
				hop = n + 1
			}
		}
		req.Header.Set(obs.HopHeader, strconv.Itoa(hop))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return fwdResult{err: err, span: sp}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, rt.opts.MaxBodyBytes))
	if err != nil {
		return fwdResult{err: err, span: sp}
	}
	res := fwdResult{
		status:        resp.StatusCode,
		body:          data,
		retryAfterSec: resp.Header.Get("Retry-After"),
		retryAfterMS:  resp.Header.Get(serve.RetryAfterMSHeader),
		span:          sp,
	}
	if v := resp.Header.Get(serve.VersionHeader); v != "" {
		res.version, _ = strconv.ParseUint(v, 10, 64)
	}
	return res
}

// finish settles one attempt's peer bookkeeping: hard failures feed the
// breaker, usable answers close it and refresh the peer's known model
// version.
func (rt *Router) finish(p *Peer, res fwdResult) {
	if res.hardFail() {
		rt.metrics.PeerErrors.Add(1)
		p.breaker.RecordFailure()
		return
	}
	p.breaker.RecordSuccess()
	p.observeVersion(res.version)
}

// hedgedForward forwards to the primary and, when the primary is slow
// past HedgeAfter, races a hedge against the replica — but only when
// both peers' last observed model versions agree (and are known):
// mid-rolling-reload the hedge is suppressed instead, so one request can
// never be answered by a mixed-version pair. The gate is also enforced
// post hoc: a hedge answer whose actual version differs from the
// expected one is discarded, never served.
func (rt *Router) hedgedForward(ctx context.Context, primary, hedge *Peer, body []byte) (fwdResult, *Peer, string) {
	psp := obs.NewSpan(ctx, "forward:primary")
	psp.SetAttr("peer", primary.Addr)
	pch := make(chan fwdResult, 1)
	go func() { pch <- rt.forwardSpan(ctx, primary, body, psp) }()

	hedgeAfter := rt.opts.HedgeAfter
	if rt.slo.Exhausted() {
		// Error budget spent: hedge four times sooner, trading spare
		// replica capacity for tail latency while the budget recovers.
		hedgeAfter /= 4
	}
	expect := primary.Version()
	var timerC <-chan time.Time
	if hedge != nil {
		if expect != 0 && hedge.Version() == expect {
			t := time.NewTimer(hedgeAfter)
			defer t.Stop()
			timerC = t.C
		} else {
			rt.metrics.HedgeVersionSkips.Add(1)
			obs.AddSpan(ctx, "hedge:version-skip", time.Now(), 0,
				obs.Attr{Key: "peer", Value: hedge.Addr},
				obs.Attr{Key: "primary_version", Value: strconv.FormatUint(expect, 10)},
				obs.Attr{Key: "hedge_version", Value: strconv.FormatUint(hedge.Version(), 10)})
		}
	}

	var hch chan fwdResult
	for {
		select {
		case res := <-pch:
			rt.finish(primary, res)
			res.settle()
			if res.ok() || hch == nil {
				return res, primary, "primary"
			}
			// Primary failed hard with a hedge in flight: its answer is
			// now the only hope for this rung of the ladder.
			select {
			case hres := <-hch:
				rt.finish(hedge, hres)
				if hres.ok() && hres.version == expect {
					rt.metrics.HedgeWins.Add(1)
					obs.KeepTrace(ctx, obs.FlagHedgeWin)
					hres.settle()
					return hres, hedge, "hedge-win"
				}
				if hres.ok() {
					rt.metrics.HedgeMixedDiscards.Add(1)
					hres.span.SetAttr("reason", "version-mismatch")
					hres.span.EndOutcome("discarded")
				} else {
					hres.settle()
				}
				return res, primary, "primary"
			case <-ctx.Done():
				return fwdResult{err: ctx.Err()}, primary, "primary"
			}
		case <-timerC:
			timerC = nil
			rt.metrics.Hedges.Add(1)
			hch = make(chan fwdResult, 1)
			go func() { hch <- rt.forwardTo(ctx, hedge, body, "hedge") }()
		case hres := <-hch:
			rt.finish(hedge, hres)
			if hres.ok() {
				if hres.version == expect {
					rt.metrics.HedgeWins.Add(1)
					obs.KeepTrace(ctx, obs.FlagHedgeWin)
					hres.settle()
					// The hedge answered first: the primary attempt is
					// abandoned from the request's point of view (first
					// close wins, so the late transport outcome is kept
					// only as breaker bookkeeping, off the hot path).
					psp.EndOutcome("abandoned")
					go func() { rt.finish(primary, <-pch) }()
					return hres, hedge, "hedge-win"
				}
				// Version skew discovered at answer time (the replica
				// reloaded after our last observation): discard the
				// answer, keep waiting on the primary.
				rt.metrics.HedgeMixedDiscards.Add(1)
				hres.span.SetAttr("reason", "version-mismatch")
				hres.span.EndOutcome("discarded")
			} else {
				hres.settle()
			}
			hch = nil
		case <-ctx.Done():
			return fwdResult{err: ctx.Err()}, primary, "primary"
		}
	}
}

// routeOne routes one prediction body by shard hash: the ring names the
// replica group, the failover ladder walks it (hedged primary first,
// then sequential failover), and the first usable answer wins.
func (rt *Router) routeOne(ctx context.Context, body []byte, hash uint64) (fwdResult, string, string) {
	owners := rt.ring.load().Lookup(hash, rt.opts.Replicas)
	cands := make([]*Peer, 0, len(owners))
	for _, addr := range owners {
		p := rt.peers[addr]
		if p == nil || p.State() != PeerLive {
			continue
		}
		if !p.breaker.Allow() {
			// A breaker-refused replica is real routing history: keep the
			// trace and record which peer was skipped.
			obs.KeepTrace(ctx, obs.FlagPeerBreaker)
			obs.AddSpan(ctx, "peer:breaker-open", time.Now(), 0,
				obs.Attr{Key: "peer", Value: p.Addr})
			continue
		}
		cands = append(cands, p)
	}
	if len(cands) == 0 {
		rt.metrics.NoReplica.Add(1)
		return fwdResult{
			status: http.StatusServiceUnavailable,
			body:   []byte(`{"error":"cluster: no live replica for shard"}`),
		}, "", "no-replica"
	}

	var last fwdResult
	lastPeer := cands[0].Addr
	for i, p := range cands {
		var res fwdResult
		answered, route := p, "primary"
		if i == 0 {
			var hedge *Peer
			if len(cands) > 1 {
				hedge = cands[1]
			}
			res, answered, route = rt.hedgedForward(ctx, p, hedge, body)
		} else {
			route = "failover"
			obs.KeepTrace(ctx, obs.FlagFailover)
			res = rt.forwardTo(ctx, p, body, "failover")
			rt.finish(p, res)
			res.settle()
		}
		if res.ok() {
			if i > 0 {
				rt.metrics.Failovers.Add(1)
			}
			return res, answered.Addr, route
		}
		last, lastPeer = res, answered.Addr
		if ctx.Err() != nil {
			break
		}
	}
	// Ladder exhausted: surface the last failure honestly (a shed 503
	// keeps its Retry-After; a transport error becomes 502).
	if last.err != nil {
		return fwdResult{
			status: http.StatusBadGateway,
			body:   []byte(fmt.Sprintf(`{"error":%q}`, "cluster: all replicas failed: "+last.err.Error())),
		}, lastPeer, "exhausted"
	}
	return last, lastPeer, "exhausted"
}

// writeRouted emits a routed result with the router's annotations.
func (rt *Router) writeRouted(w http.ResponseWriter, res fwdResult, peer, route string, elapsed time.Duration) {
	rt.metrics.RouteLatency.Observe(elapsed)
	if res.status >= 400 {
		rt.metrics.HTTPErrors.Add(1)
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if peer != "" {
		h.Set(PeerHeader, peer)
	}
	h.Set(RouteHeader, route)
	if res.version > 0 {
		h.Set(serve.VersionHeader, strconv.FormatUint(res.version, 10))
	}
	if res.retryAfterSec != "" {
		h.Set("Retry-After", res.retryAfterSec)
	}
	if res.retryAfterMS != "" {
		h.Set(serve.RetryAfterMSHeader, res.retryAfterMS)
	}
	status := res.status
	if status == 0 {
		status = http.StatusBadGateway
	}
	w.WriteHeader(status)
	w.Write(res.body)
}

// readRequest decodes a predict request while keeping the raw bytes for
// forwarding, and resolves its shard hash from the canonical discretized
// feature key.
func (rt *Router) readRequest(w http.ResponseWriter, r *http.Request) ([]byte, uint64, error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opts.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, 0, &routeError{http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return nil, 0, &routeError{http.StatusBadRequest, err}
	}
	var req serve.PredictRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, 0, &routeError{http.StatusBadRequest, fmt.Errorf("decode request: %w", err)}
	}
	feat, err := serve.ResolveFeatures(&req, rt.opts.Step)
	if err != nil {
		return nil, 0, &routeError{http.StatusBadRequest, err}
	}
	return raw, feat.ShardHash(), nil
}

// routeError carries the HTTP status a routing-layer error should wear.
type routeError struct {
	status int
	err    error
}

func (e *routeError) Error() string { return e.err.Error() }

func (rt *Router) errorJSON(w http.ResponseWriter, status int, err error) {
	rt.metrics.HTTPErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// startRequestTrace opens the router's trace for one inbound request,
// adopting a propagated trace id (anti-loop guarded by HopHeader) the
// same way a serve node does — a request may arrive via another router.
func (rt *Router) startRequestTrace(r *http.Request, name string) (context.Context, *obs.Trace) {
	inbound := r.Header.Get(obs.TraceHeader)
	hop := r.Header.Get(obs.HopHeader)
	if hop != "" {
		if n, err := strconv.Atoi(hop); err != nil || n < 0 || n >= obs.MaxHops {
			inbound = ""
		}
	}
	ctx, tr := rt.tracer.StartTraceID(r.Context(), name, inbound)
	if tr != nil && inbound != "" && tr.ID() == inbound {
		if ps := r.Header.Get(obs.ParentSpanHeader); ps != "" {
			tr.SetAttr("parent_span", ps)
		}
		if hop != "" {
			tr.SetAttr("hop", hop)
		}
	}
	return ctx, tr
}

func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	rt.metrics.Requests.Add(1)
	start := time.Now()
	rctx, tr := rt.startRequestTrace(r, "route")
	defer tr.Finish()
	body, hash, err := rt.readRequest(w, r)
	if err != nil {
		re := err.(*routeError)
		rt.errorJSON(w, re.status, re.err)
		rt.slo.Observe(re.status < 500, time.Since(start))
		return
	}
	ctx, cancel := context.WithTimeout(rctx, rt.opts.RequestTimeout)
	defer cancel()
	if tr != nil {
		w.Header().Set(obs.TraceHeader, tr.ID())
	}
	res, peer, route := rt.routeOne(ctx, body, hash)
	tr.SetAttr("route", route)
	if peer != "" {
		tr.SetAttr("answered_by", peer)
	}
	status := res.status
	if status == 0 {
		status = http.StatusBadGateway
	}
	switch {
	case status == http.StatusServiceUnavailable:
		tr.Keep(obs.FlagShed)
	case status >= 500:
		tr.Keep(obs.Flag5xx)
	}
	elapsed := time.Since(start)
	rt.slo.Observe(status < 500, elapsed)
	rt.writeRouted(w, res, peer, route, elapsed)
}

func (rt *Router) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opts.MaxBodyBytes))
	if err != nil {
		rt.errorJSON(w, http.StatusBadRequest, err)
		return
	}
	var batch serve.BatchRequest
	if err := json.Unmarshal(raw, &batch); err != nil {
		rt.errorJSON(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(batch.Requests) == 0 {
		rt.errorJSON(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	rt.metrics.Requests.Add(uint64(len(batch.Requests)))
	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.RequestTimeout)
	defer cancel()

	// Batch items shard independently, so they fan out to their owning
	// nodes concurrently and reassemble positionally — the cluster
	// analog of the single-node batch endpoint's queue fan-in.
	start := time.Now()
	resps := make([]serve.PredictResponse, len(batch.Requests))
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			item := &batch.Requests[i]
			feat, err := serve.ResolveFeatures(item, rt.opts.Step)
			if err != nil {
				resps[i] = serve.PredictResponse{Error: err.Error()}
				return
			}
			body, err := json.Marshal(item)
			if err != nil {
				resps[i] = serve.PredictResponse{Error: err.Error()}
				return
			}
			res, _, _ := rt.routeOne(ctx, body, feat.ShardHash())
			if !res.ok() {
				msg := fmt.Sprintf("cluster: upstream status %d", res.status)
				if res.err != nil {
					msg = res.err.Error()
				} else if len(res.body) > 0 {
					var e struct {
						Error string `json:"error"`
					}
					if json.Unmarshal(res.body, &e) == nil && e.Error != "" {
						msg = e.Error
					}
				}
				resps[i] = serve.PredictResponse{Error: msg}
				return
			}
			if err := json.Unmarshal(res.body, &resps[i]); err != nil {
				resps[i] = serve.PredictResponse{Error: "cluster: bad upstream body: " + err.Error()}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	rt.metrics.RouteLatency.Observe(elapsed)
	rt.slo.Observe(true, elapsed)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(serve.BatchResponse{Responses: resps})
}

func (rt *Router) handleCluster(w http.ResponseWriter, _ *http.Request) {
	ring := rt.ring.load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"peers":    rt.PeerInfos(),
		"ring":     ring.Nodes(),
		"replicas": rt.opts.Replicas,
		"vnodes":   rt.opts.VNodes,
		"events":   rt.metrics.Events(),
	})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	live := 0
	for _, p := range rt.peers {
		if p.State() == PeerLive {
			live++
		}
	}
	status := "ok"
	if live == 0 {
		status = "no-live-peers"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":     status,
		"role":       "router",
		"peers":      len(rt.peers),
		"live_peers": live,
		"ring_size":  rt.ring.load().Len(),
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.metrics.WritePrometheus(w, rt.PeerInfos())
	rt.slo.WritePrometheus(w)
}

// handleTrace serves GET /v1/trace/{trace-id}: the router's own span
// set for the id plus a concurrent fan-out to every peer's
// /debug/traces ring, stitched into one causally ordered cross-process
// timeline with unrecoverable holes (dead peer, evicted ring entry)
// marked as explicit gaps.
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if id == "" || strings.Contains(id, "/") || !obs.ValidTraceID(id) {
		rt.errorJSON(w, http.StatusBadRequest, fmt.Errorf("usage: GET /v1/trace/{trace-id}"))
		return
	}
	if rt.tracer == nil {
		rt.errorJSON(w, http.StatusNotFound, fmt.Errorf("tracing disabled"))
		return
	}
	parts := make([]obs.NodeTrace, 1, len(rt.peers)+1)
	parts[0] = obs.NodeTrace{Node: rt.Addr()}
	if recs := rt.tracer.Ring().Snapshot(obs.TraceFilter{ID: id, Limit: 1}); len(recs) > 0 {
		rec := recs[0]
		parts[0].Rec = &rec
	}

	// Every configured peer is asked, dead or not — a peer that answers
	// its probe as dead may still hold the spans we need, and one that
	// truly cannot answer becomes a peer-unreachable gap, not an error.
	addrs := make([]string, 0, len(rt.peers))
	for a := range rt.peers {
		addrs = append(addrs, a)
	}
	results := make([]obs.NodeTrace, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			results[i] = rt.scrapeTrace(addr, id)
		}(i, addr)
	}
	wg.Wait()
	parts = append(parts, results...)

	tl := obs.Stitch(id, parts)
	if len(tl.Spans) == 0 {
		rt.errorJSON(w, http.StatusNotFound, fmt.Errorf("trace %s not found on any node", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(tl)
}

// scrapeTrace fetches one peer's retained record for a trace id.
func (rt *Router) scrapeTrace(addr, id string) obs.NodeTrace {
	nt := obs.NodeTrace{Node: addr}
	ctx, cancel := context.WithTimeout(context.Background(), scrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/debug/traces?id="+id+"&limit=1", nil)
	if err != nil {
		nt.Err = err
		return nt
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		nt.Err = err
		return nt
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		nt.Err = fmt.Errorf("status %d", resp.StatusCode)
		return nt
	}
	var env struct {
		Traces []obs.TraceRecord `json:"traces"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, rt.opts.MaxBodyBytes)).Decode(&env); err != nil {
		nt.Err = err
		return nt
	}
	if len(env.Traces) > 0 {
		nt.Rec = &env.Traces[0]
	}
	return nt
}

// scrapeTimeout bounds one federation or trace-stitch scrape: a dead
// peer costs one second of one goroutine, never the whole response.
const scrapeTimeout = time.Second

// handleMetricsCluster serves GET /metrics/cluster: every peer's
// /metrics scraped concurrently, re-labeled with node=<addr> and merged
// (counters summed, histograms bucket-merged, gauges per-node). A peer
// that cannot be scraped degrades to a heteromap_federation_stale
// marker — federation never answers 5xx because one node is down.
func (rt *Router) handleMetricsCluster(w http.ResponseWriter, _ *http.Request) {
	addrs := make([]string, 0, len(rt.peers))
	for a := range rt.peers {
		addrs = append(addrs, a)
	}
	nodes := make([]obs.NodeMetrics, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			nodes[i] = rt.scrapeMetricsNode(addr)
		}(i, addr)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.FederateMetrics(w, nodes)
}

// scrapeMetricsNode fetches one peer's /metrics page.
func (rt *Router) scrapeMetricsNode(addr string) obs.NodeMetrics {
	nm := obs.NodeMetrics{Node: addr}
	ctx, cancel := context.WithTimeout(context.Background(), scrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/metrics", nil)
	if err != nil {
		nm.Err = err
		return nm
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		nm.Err = err
		return nm
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, rt.opts.MaxBodyBytes))
	if err != nil {
		nm.Err = err
		return nm
	}
	if resp.StatusCode != http.StatusOK {
		nm.Err = fmt.Errorf("status %d", resp.StatusCode)
		return nm
	}
	nm.Text = string(data)
	return nm
}

// clusterChaosRequest is the router's /v1/chaos body; rates in [0,1],
// delays in milliseconds, so profiles are scriptable from curl and from
// the loadgen chaos flipper's cluster mode.
type clusterChaosRequest struct {
	SlowPeerRate  float64 `json:"slow_peer_rate"`
	SlowPeerMS    float64 `json:"slow_peer_ms"`
	PartitionRate float64 `json:"partition_rate"`
	NodeKillRate  float64 `json:"node_kill_rate"`
}

func (rt *Router) handleChaos(w http.ResponseWriter, r *http.Request) {
	if rt.opts.Chaos == nil {
		rt.errorJSON(w, http.StatusConflict,
			fmt.Errorf("chaos injection not enabled (start the router with -chaos-serve)"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		p := rt.opts.Chaos.ServeProfile()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(clusterChaosRequest{
			SlowPeerRate:  p.SlowPeerRate,
			SlowPeerMS:    float64(p.SlowPeerDelay.Milliseconds()),
			PartitionRate: p.PeerPartitionRate,
			NodeKillRate:  p.NodeKillRate,
		})
	case http.MethodPost:
		var req clusterChaosRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, rt.opts.MaxBodyBytes)).Decode(&req); err != nil {
			rt.errorJSON(w, http.StatusBadRequest, err)
			return
		}
		if req.SlowPeerRate > 0 && req.SlowPeerMS <= 0 {
			req.SlowPeerMS = 50
		}
		rt.opts.Chaos.SetServeProfile(fault.ServeProfile{
			SlowPeerRate:      req.SlowPeerRate,
			SlowPeerDelay:     time.Duration(req.SlowPeerMS * float64(time.Millisecond)),
			PeerPartitionRate: req.PartitionRate,
			NodeKillRate:      req.NodeKillRate,
		})
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{
			"profile": rt.opts.Chaos.ServeProfile().String(),
		})
	default:
		rt.errorJSON(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}
