package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"heteromap/internal/serve"
)

// clusterReq fabricates a distinct (benchmark, input) combination per
// index so requests spread across shards.
// clusterReq spreads requests over the keyspace: the 0.1-step
// discretization collapses nearby graph shapes onto the same shard key,
// so cycling the benchmark multiplies the distinct-hash count enough
// that every node owns some request in any window of ~30 values of i.
func clusterReq(i int) serve.PredictRequest {
	benches := []string{"BFS", "PageRank", "SSSP-Delta", "DFS", "Tri.Cnt", "Conn.Comp"}
	return serve.PredictRequest{
		Bench:     benches[i%len(benches)],
		Vertices:  int64(1e5 + i*7919),
		Edges:     int64(2e6 + i*104729),
		MaxDegree: int64(100 + i*31),
		Diameter:  int64(10 + i%40),
	}
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func startLocalT(t *testing.T, opts LocalOptions) *Local {
	t.Helper()
	lc, err := StartLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Stop)
	return lc
}

// waitFor polls until the condition holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestClusterRoutesDeterministicallyByShard(t *testing.T) {
	lc := startLocalT(t, LocalOptions{Nodes: 3})
	rt := lc.Router

	peerFor := map[int]string{}
	for i := 0; i < 30; i++ {
		req := clusterReq(i)
		resp, body := postJSON(t, lc.URL()+"/v1/predict", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		peer := resp.Header.Get(PeerHeader)
		if peer == "" {
			t.Fatalf("request %d: no %s header", i, PeerHeader)
		}
		if route := resp.Header.Get(RouteHeader); route != "primary" {
			t.Fatalf("request %d: route %q, want primary (healthy cluster)", i, route)
		}
		var pr serve.PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatalf("request %d: bad body %s: %v", i, body, err)
		}
		if pr.Model != "tree" || pr.Key == "" {
			t.Fatalf("request %d: unexpected response %+v", i, pr)
		}
		// Placement must match the ring's primary for the response's own
		// discretized key — routing and caching agree by construction.
		feat, err := serve.ResolveFeatures(&req, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if want := rt.Ring().Lookup(feat.ShardHash(), 1)[0]; peer != want {
			t.Fatalf("request %d landed on %s, ring primary is %s", i, peer, want)
		}
		peerFor[i] = peer
	}
	// Repeats land on the same peer (and hit its warm cache).
	for i := 0; i < 30; i += 5 {
		resp, body := postJSON(t, lc.URL()+"/v1/predict", clusterReq(i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repeat %d: status %d", i, resp.StatusCode)
		}
		if got := resp.Header.Get(PeerHeader); got != peerFor[i] {
			t.Fatalf("repeat %d moved peers: %s -> %s", i, peerFor[i], got)
		}
		var pr serve.PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if !pr.Cached {
			t.Fatalf("repeat %d missed the shard-local cache", i)
		}
	}
	// Every node should own some share of 30 spread-out requests.
	owners := map[string]int{}
	for _, p := range peerFor {
		owners[p]++
	}
	if len(owners) < 2 {
		t.Fatalf("placement did not spread: %v", owners)
	}
}

func TestClusterFailoverOnKilledNode(t *testing.T) {
	lc := startLocalT(t, LocalOptions{Nodes: 3, ProbeInterval: 25 * time.Millisecond})
	rt := lc.Router

	// Find a request whose primary is node 0 so the kill is observable.
	victim := lc.NodeAddr(0)
	target := -1
	for i := 0; i < 200; i++ {
		req := clusterReq(i)
		feat, err := serve.ResolveFeatures(&req, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Ring().Lookup(feat.ShardHash(), 1)[0] == victim {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no request shards to node 0")
	}

	lc.KillNode(0)

	// The very first request after the kill must already succeed: the
	// failover ladder covers the probe detection window, with the replica
	// serving the dead node's keys (no cold-start 5xx burst).
	for i := 0; i < 10; i++ {
		resp, body := postJSON(t, lc.URL()+"/v1/predict", clusterReq(target))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if peer := resp.Header.Get(PeerHeader); peer == victim {
			t.Fatalf("post-kill request %d answered by the dead node %s", i, peer)
		}
	}
	if rt.Metrics().Failovers.Load() == 0 {
		t.Fatal("no failover was recorded for the dead primary")
	}

	// The prober deregisters the dead peer from the ring.
	waitFor(t, 3*time.Second, "dead peer deregistration", func() bool {
		p := rt.Peer(victim)
		return p.State() == PeerDead && !rt.Ring().Has(victim)
	})
	if rt.Metrics().Deregistered.Load() == 0 {
		t.Fatal("deregistration not counted")
	}
	// Post-deregistration, the replica is the new ring primary.
	resp, _ := postJSON(t, lc.URL()+"/v1/predict", clusterReq(target))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-deregistration status %d", resp.StatusCode)
	}
	if route := resp.Header.Get(RouteHeader); route != "primary" {
		t.Fatalf("post-deregistration route %q, want primary", route)
	}
}

func TestClusterReadmitsRecoveredPeer(t *testing.T) {
	lc := startLocalT(t, LocalOptions{Nodes: 3, ProbeInterval: 20 * time.Millisecond})
	rt := lc.Router
	victim := lc.NodeAddr(1)

	lc.KillNode(1)
	waitFor(t, 3*time.Second, "dead peer deregistration", func() bool {
		return !rt.Ring().Has(victim)
	})

	// Restart a fresh node on the same address — the recovery the
	// health-probe half-open path exists for.
	replacement, err := newLocalNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		replacement.Shutdown(ctx)
	})

	waitFor(t, 3*time.Second, "peer readmission", func() bool {
		p := rt.Peer(victim)
		return p.State() == PeerLive && rt.Ring().Has(victim)
	})
	if rt.Metrics().Readmitted.Load() == 0 {
		t.Fatal("readmission not counted")
	}
	// The readmitted peer serves its keyspace again.
	for i := 0; i < 100; i++ {
		req := clusterReq(i)
		feat, err := serve.ResolveFeatures(&req, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if rt.Ring().Lookup(feat.ShardHash(), 1)[0] != victim {
			continue
		}
		resp, body := postJSON(t, lc.URL()+"/v1/predict", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readmitted-peer request: status %d: %s", resp.StatusCode, body)
		}
		if peer := resp.Header.Get(PeerHeader); peer != victim {
			t.Fatalf("request owned by readmitted peer answered by %s", peer)
		}
		return
	}
	t.Fatal("no request sharded to the readmitted peer")
}

func TestClusterBatchFansOutAcrossShards(t *testing.T) {
	lc := startLocalT(t, LocalOptions{Nodes: 3})
	var batch serve.BatchRequest
	for i := 0; i < 24; i++ {
		batch.Requests = append(batch.Requests, clusterReq(i))
	}
	resp, body := postJSON(t, lc.URL()+"/v1/predict/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Responses) != len(batch.Requests) {
		t.Fatalf("batch returned %d responses for %d items", len(br.Responses), len(batch.Requests))
	}
	for i, pr := range br.Responses {
		if pr.Error != "" {
			t.Fatalf("batch item %d errored: %s", i, pr.Error)
		}
		if pr.Model != "tree" {
			t.Fatalf("batch item %d answered by model %q", i, pr.Model)
		}
	}
	// Positional agreement with single-shot routing.
	single, sbody := postJSON(t, lc.URL()+"/v1/predict", batch.Requests[3])
	if single.StatusCode != http.StatusOK {
		t.Fatalf("single status %d", single.StatusCode)
	}
	var pr serve.PredictResponse
	if err := json.Unmarshal(sbody, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Key != br.Responses[3].Key {
		t.Fatalf("batch item 3 key %q != single key %q", br.Responses[3].Key, pr.Key)
	}
}

// stubPeer is an httptest-backed fake node for passthrough tests.
func stubPeer(t *testing.T, handler http.HandlerFunc) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"status":"ok","registry_version":1}`)
	})
	mux.HandleFunc("/v1/predict", handler)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func TestClusterPassesRetryAfterThroughOnShed(t *testing.T) {
	shed := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set(serve.RetryAfterMSHeader, "12")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"serve: request queue full"}`)
	}
	a, b := stubPeer(t, shed), stubPeer(t, shed)
	rt, err := NewRouter(RouterOptions{Addr: "127.0.0.1:0", Peers: []string{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)

	resp, body := postJSON(t, srv.URL+"/v1/predict", clusterReq(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	// Both replicas shed, so the ladder is exhausted and the node's
	// backpressure hint must reach the client intact.
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want 1", got)
	}
	if got := resp.Header.Get(serve.RetryAfterMSHeader); got != "12" {
		t.Fatalf("%s = %q, want 12", serve.RetryAfterMSHeader, got)
	}
	if route := resp.Header.Get(RouteHeader); route != "exhausted" {
		t.Fatalf("route %q, want exhausted", route)
	}
	// Shedding is not a peer failure: neither breaker may have opened.
	for _, addr := range []string{a, b} {
		if _, fails := rt.Peer(addr).Breaker().Stats(); fails != 0 {
			t.Fatalf("shed 503 fed peer %s breaker (%d failures)", addr, fails)
		}
	}
}

func TestClusterNoLiveReplica(t *testing.T) {
	lc := startLocalT(t, LocalOptions{Nodes: 2, ProbeInterval: 20 * time.Millisecond})
	lc.KillNode(0)
	lc.KillNode(1)
	waitFor(t, 3*time.Second, "all peers deregistered", func() bool {
		return lc.Router.Ring().Len() == 0
	})
	resp, body := postJSON(t, lc.URL()+"/v1/predict", clusterReq(0))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "no live replica") {
		t.Fatalf("body %q does not name the condition", body)
	}
	var health struct {
		Status string `json:"status"`
	}
	hresp, err := http.Get(lc.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "no-live-peers" {
		t.Fatalf("router healthz status %q", health.Status)
	}
}

func TestClusterEndpointsExposeMembership(t *testing.T) {
	lc := startLocalT(t, LocalOptions{Nodes: 3, ProbeInterval: 20 * time.Millisecond})
	lc.KillNode(2)
	victim := lc.NodeAddr(2)
	waitFor(t, 3*time.Second, "dead peer visible", func() bool {
		return !lc.Router.Ring().Has(victim)
	})

	resp, err := http.Get(lc.URL() + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		Peers    []PeerInfo `json:"peers"`
		Ring     []string   `json:"ring"`
		Replicas int        `json:"replicas"`
		Events   []string   `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(view.Peers) != 3 || len(view.Ring) != 2 || view.Replicas != 2 {
		t.Fatalf("cluster view: %+v", view)
	}
	foundDead := false
	for _, p := range view.Peers {
		if p.Addr == victim {
			foundDead = p.State == "dead" && !p.OnRing
		}
	}
	if !foundDead {
		t.Fatalf("dead peer not reported: %+v", view.Peers)
	}
	if len(view.Events) == 0 || !strings.Contains(view.Events[len(view.Events)-1], "deregistered") {
		t.Fatalf("membership events missing: %v", view.Events)
	}

	mresp, err := http.Get(lc.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"heteromap_router_requests_total",
		"heteromap_router_deregistered_total 1",
		fmt.Sprintf("heteromap_router_peer_state{peer=%q} 2", victim),
		fmt.Sprintf("heteromap_router_peer_on_ring{peer=%q} 0", victim),
		"heteromap_router_route_latency_seconds_bucket",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("router metrics missing %q:\n%s", want, mbody)
		}
	}
}
