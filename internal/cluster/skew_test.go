package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heteromap/internal/fault"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/serve"
)

// Rolling reloads must never mix model versions inside one hedged pair.
// Node A is pinned at registry version 1 and made slow (so the router
// wants to hedge every request toward the replica); node B's registry is
// reloaded continuously, racing its version past A's. The invariant:
// every answer served for A's keyspace carries version 1 — a hedge
// answer from B at any later version must be suppressed up front (the
// version gate) or discarded post hoc, never served. Run under -race,
// this also drives the reload/probe/hedge interleaving data-race free.
func TestClusterHedgeNeverMixesVersionsUnderReloadChurn(t *testing.T) {
	injectors := make([]*fault.ServeInjector, 2)
	lc := startLocalT(t, LocalOptions{
		Nodes:         2,
		ProbeInterval: 10 * time.Millisecond,
		HedgeAfter:    5 * time.Millisecond,
		NodeOptions: func(i int, opts serve.Options) serve.Options {
			injectors[i] = fault.NewServeInjector(int64(100 + i))
			opts.Chaos = injectors[i]
			return opts
		},
	})
	rt := lc.Router

	// Pick the "pinned" node A: primary owner of our request stream.
	// With two nodes, B is always the hedge replica.
	var reqs []serve.PredictRequest
	aIdx := -1
	for i := 0; i < 4000 && len(reqs) < 400; i++ {
		req := clusterReq(i)
		feat, err := serve.ResolveFeatures(&req, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		primary := rt.Ring().Lookup(feat.ShardHash(), 1)[0]
		if aIdx < 0 {
			for n := range lc.Nodes {
				if lc.NodeAddr(n) == primary {
					aIdx = n
				}
			}
		}
		if primary == lc.NodeAddr(aIdx) {
			reqs = append(reqs, req)
		}
	}
	if len(reqs) < 100 {
		t.Fatalf("only %d requests shard to the pinned node", len(reqs))
	}
	bIdx := 1 - aIdx

	// Slow every inference on A past HedgeAfter so the router reaches
	// for the hedge on each fresh key.
	injectors[aIdx].SetServeProfile(fault.ServeProfile{
		SlowModelRate:  1,
		SlowModelDelay: 15 * time.Millisecond,
	})

	// Wait until the router has observed both peers' versions at least
	// once, so early hedges aren't all suppressed by version 0.
	waitFor(t, 3*time.Second, "router observes peer versions", func() bool {
		return rt.Peer(lc.NodeAddr(aIdx)).Version() != 0 &&
			rt.Peer(lc.NodeAddr(bIdx)).Version() != 0
	})

	// Churn B's registry: every Register bumps its version, racing the
	// probe loop and in-flight hedges.
	var stop atomic.Bool
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		pair := machine.PrimaryPair()
		for !stop.Load() {
			if _, err := lc.Nodes[bIdx].Registry().Register(
				"tree", "reload churn", dtree.New(pair.Limits())); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	var served atomic.Uint64
	var wrongVersion atomic.Uint64
	deadline := time.Now().Add(800 * time.Millisecond)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 2 * time.Second}
			for i := w; time.Now().Before(deadline); i += 3 {
				req := reqs[i%len(reqs)]
				data, _ := json.Marshal(req)
				resp, err := client.Post(lc.URL()+"/v1/predict", "application/json",
					bytes.NewReader(data))
				if err != nil {
					continue
				}
				ver := resp.Header.Get(serve.VersionHeader)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					continue
				}
				served.Add(1)
				// A is pinned at version 1; any other served version
				// means a hedged pair mixed versions.
				if ver != "1" {
					wrongVersion.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	stop.Store(true)
	churn.Wait()

	if served.Load() < 30 {
		t.Fatalf("only %d requests served; churn window too small", served.Load())
	}
	if wrongVersion.Load() != 0 {
		t.Fatalf("%d/%d answers served with a non-pinned version: hedged pair mixed model versions",
			wrongVersion.Load(), served.Load())
	}
	// The gate must actually have engaged: with B's version racing ahead
	// of A's, hedges get suppressed up front and/or discarded post hoc.
	skips := rt.Metrics().HedgeVersionSkips.Load()
	discards := rt.Metrics().HedgeMixedDiscards.Load()
	if skips+discards == 0 {
		t.Fatalf("version gate never engaged (hedges=%d wins=%d): test exerted no skew pressure",
			rt.Metrics().Hedges.Load(), rt.Metrics().HedgeWins.Load())
	}
	t.Logf("served=%d hedges=%d wins=%d version-skips=%d mixed-discards=%d",
		served.Load(), rt.Metrics().Hedges.Load(), rt.Metrics().HedgeWins.Load(), skips, discards)
}
