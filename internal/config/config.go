// Package config defines the paper's machine-choice vector M (Fig 3): the
// inter-accelerator selection M1 plus the nineteen intra-accelerator
// concurrency knobs M2-M20, with their deployable ranges, normalization
// for learners, and discretized sweep spaces for the autotuner.
package config

import (
	"fmt"
	"math"
)

// Accel is the inter-accelerator choice (M1).
type Accel int

const (
	// GPU selects the GPU accelerator of the pair.
	GPU Accel = iota
	// Multicore selects the multicore accelerator of the pair.
	Multicore
)

// String implements fmt.Stringer.
func (a Accel) String() string {
	if a == GPU {
		return "GPU"
	}
	return "Multicore"
}

// Schedule is the OpenMP `omp for schedule` kind (M11).
type Schedule int

const (
	ScheduleStatic Schedule = iota
	ScheduleDynamic
	ScheduleGuided
	ScheduleAuto

	numSchedules = 4
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case ScheduleStatic:
		return "static"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleGuided:
		return "guided"
	case ScheduleAuto:
		return "auto"
	}
	return fmt.Sprintf("Schedule(%d)", int(s))
}

// NumVariables is the dimensionality of the M vector.
const NumVariables = 20

// M is one complete machine configuration. Field comments give the paper's
// variable number.
type M struct {
	Accelerator Accel // M1: GPU or multicore

	// Multicore hardware choices.
	Cores          int     // M2: cores used
	ThreadsPerCore int     // M3: hardware threads per core
	BlocktimeMS    int     // M4: KMP blocktime, 1..1000 ms
	PlaceCore      float64 // M5: core-id placement looseness, 0 compact .. 1 loose
	PlaceThread    float64 // M6: thread-id placement looseness
	PlaceOffset    float64 // M7: thread offset looseness
	Affinity       float64 // M8: 0 movable .. 1 strictly pinned
	ActiveWait     bool    // M9: OMP_WAIT_POLICY active vs passive
	SIMDWidth      int     // M10: #pragma simd lanes, 1..max

	// OpenMP runtime choices.
	Schedule        Schedule // M11: omp for schedule kind
	ChunkSize       int      // M12: schedule chunk size, 1..max
	Nested          bool     // M13: OMP_NESTED
	MaxActiveLevels int      // M14: OMP_MAX_ACTIVE_LEVELS, 1..4
	SpinCount       int      // M15: GOMP_SPINCOUNT, 0..max
	ProcBind        bool     // M16: OMP_PROC_BIND
	DynamicAdjust   bool     // M17: OMP_DYNAMIC thread adjustment
	WorkStealing    bool     // M18: runtime task/work stealing

	// GPU hardware choices.
	GlobalThreads int // M19: total global work items
	LocalThreads  int // M20: work-group size (threads per GPU core)
}

// Limits bounds the deployable M ranges for one accelerator pair; the
// machine package derives them from the pair's Table II parameters.
type Limits struct {
	MaxCores          int // multicore cores
	MaxThreadsPerCore int // multicore hw threads per core
	MaxSIMD           int // multicore SIMD lanes
	MaxBlocktimeMS    int // paper: max_thread_wait_time = 1000ms
	MaxChunk          int
	MaxActiveLevels   int
	MaxSpin           int
	MaxGlobalThreads  int // GPU
	MaxLocalThreads   int // GPU work-group limit (CL_KERNEL_WORK_GROUP_SIZE)
}

// DefaultSoftLimits fills the ranges that do not depend on the hardware.
func (l Limits) withDefaults() Limits {
	if l.MaxBlocktimeMS == 0 {
		l.MaxBlocktimeMS = 1000
	}
	if l.MaxChunk == 0 {
		l.MaxChunk = 4096
	}
	if l.MaxActiveLevels == 0 {
		l.MaxActiveLevels = 4
	}
	if l.MaxSpin == 0 {
		l.MaxSpin = 1 << 20
	}
	return l
}

// Clamp returns a copy of m with every knob forced into the deployable
// range for the given limits; the paper applies the same ceiling function
// when an equation resolves beyond a variable's maximum.
func (m M) Clamp(l Limits) M {
	l = l.withDefaults()
	m.Cores = clampInt(m.Cores, 1, l.MaxCores)
	m.ThreadsPerCore = clampInt(m.ThreadsPerCore, 1, l.MaxThreadsPerCore)
	m.BlocktimeMS = clampInt(m.BlocktimeMS, 1, l.MaxBlocktimeMS)
	m.PlaceCore = clampF(m.PlaceCore, 0, 1)
	m.PlaceThread = clampF(m.PlaceThread, 0, 1)
	m.PlaceOffset = clampF(m.PlaceOffset, 0, 1)
	m.Affinity = clampF(m.Affinity, 0, 1)
	m.SIMDWidth = clampInt(m.SIMDWidth, 1, l.MaxSIMD)
	if m.Schedule < 0 || m.Schedule >= numSchedules {
		m.Schedule = ScheduleStatic
	}
	m.ChunkSize = clampInt(m.ChunkSize, 1, l.MaxChunk)
	m.MaxActiveLevels = clampInt(m.MaxActiveLevels, 1, l.MaxActiveLevels)
	m.SpinCount = clampInt(m.SpinCount, 0, l.MaxSpin)
	m.GlobalThreads = clampInt(m.GlobalThreads, 1, l.MaxGlobalThreads)
	m.LocalThreads = clampInt(m.LocalThreads, 1, l.MaxLocalThreads)
	return m
}

// MulticoreThreads returns the total multicore thread count implied by M2
// and M3.
func (m M) MulticoreThreads() int { return m.Cores * m.ThreadsPerCore }

// Validate reports whether the configuration is sane enough to deploy:
// every float knob must be finite and the enumerated choices must name
// real alternatives. Clamp silently repairs out-of-range values (the
// paper's ceiling rule), but a non-finite or out-of-enum value signals a
// broken predictor (NaN weights from an undertrained network), and the
// fallback chain uses this check to reject the prediction instead of
// laundering it through the clamp.
func (m M) Validate(l Limits) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"PlaceCore", m.PlaceCore},
		{"PlaceThread", m.PlaceThread},
		{"PlaceOffset", m.PlaceOffset},
		{"Affinity", m.Affinity},
	} {
		if math.IsNaN(f.v) {
			return fmt.Errorf("config: %s is NaN", f.name)
		}
		if math.IsInf(f.v, 0) {
			return fmt.Errorf("config: %s is infinite", f.name)
		}
	}
	if m.Accelerator != GPU && m.Accelerator != Multicore {
		return fmt.Errorf("config: invalid accelerator choice %d", int(m.Accelerator))
	}
	if m.Schedule < 0 || m.Schedule >= numSchedules {
		return fmt.Errorf("config: invalid schedule kind %d", int(m.Schedule))
	}
	return nil
}

// ForceAccelerator retargets m onto the given accelerator. When the
// prediction configured the other side, the newly selected side's
// hardware knobs are filled with deployable defaults — the completion
// rule that batch scheduling, phased planning and failover share.
func (m M) ForceAccelerator(side Accel, l Limits) M {
	l = l.withDefaults()
	out := m
	out.Accelerator = side
	if m.Accelerator != side {
		if side == Multicore {
			d := DefaultMulticore(l)
			out.Cores, out.ThreadsPerCore, out.SIMDWidth = d.Cores, d.ThreadsPerCore, d.SIMDWidth
		} else {
			d := DefaultGPU(l)
			out.GlobalThreads, out.LocalThreads = d.GlobalThreads, d.LocalThreads
		}
	}
	return out.Clamp(l)
}

// Other returns the opposite accelerator choice.
func (a Accel) Other() Accel {
	if a == GPU {
		return Multicore
	}
	return GPU
}

// Normalize encodes the configuration as a NumVariables-long vector with
// every component in [0,1]; this is the output representation the
// learners are trained on.
func (m M) Normalize(l Limits) [NumVariables]float64 {
	l = l.withDefaults()
	var v [NumVariables]float64
	v[0] = float64(m.Accelerator)
	v[1] = ratio(m.Cores, l.MaxCores)
	v[2] = ratio(m.ThreadsPerCore, l.MaxThreadsPerCore)
	v[3] = ratio(m.BlocktimeMS, l.MaxBlocktimeMS)
	v[4] = clampF(m.PlaceCore, 0, 1)
	v[5] = clampF(m.PlaceThread, 0, 1)
	v[6] = clampF(m.PlaceOffset, 0, 1)
	v[7] = clampF(m.Affinity, 0, 1)
	v[8] = boolF(m.ActiveWait)
	v[9] = ratio(m.SIMDWidth, l.MaxSIMD)
	v[10] = float64(m.Schedule) / float64(numSchedules-1)
	v[11] = ratio(m.ChunkSize, l.MaxChunk)
	v[12] = boolF(m.Nested)
	v[13] = ratio(m.MaxActiveLevels, l.MaxActiveLevels)
	v[14] = ratio(m.SpinCount, l.MaxSpin)
	v[15] = boolF(m.ProcBind)
	v[16] = boolF(m.DynamicAdjust)
	v[17] = boolF(m.WorkStealing)
	v[18] = ratio(m.GlobalThreads, l.MaxGlobalThreads)
	v[19] = ratio(m.LocalThreads, l.MaxLocalThreads)
	return v
}

// FromNormalized decodes a learner output vector back into a deployable
// configuration, clamping every component.
func FromNormalized(v [NumVariables]float64, l Limits) M {
	l = l.withDefaults()
	m := M{
		Accelerator:     Accel(roundBool(v[0])),
		Cores:           scaleInt(v[1], l.MaxCores),
		ThreadsPerCore:  scaleInt(v[2], l.MaxThreadsPerCore),
		BlocktimeMS:     scaleInt(v[3], l.MaxBlocktimeMS),
		PlaceCore:       clampF(v[4], 0, 1),
		PlaceThread:     clampF(v[5], 0, 1),
		PlaceOffset:     clampF(v[6], 0, 1),
		Affinity:        clampF(v[7], 0, 1),
		ActiveWait:      v[8] >= 0.5,
		SIMDWidth:       scaleInt(v[9], l.MaxSIMD),
		Schedule:        Schedule(clampInt(int(math.Round(v[10]*float64(numSchedules-1))), 0, numSchedules-1)),
		ChunkSize:       scaleInt(v[11], l.MaxChunk),
		Nested:          v[12] >= 0.5,
		MaxActiveLevels: scaleInt(v[13], l.MaxActiveLevels),
		SpinCount:       scaleInt(v[14], l.MaxSpin),
		ProcBind:        v[15] >= 0.5,
		DynamicAdjust:   v[16] >= 0.5,
		WorkStealing:    v[17] >= 0.5,
		GlobalThreads:   scaleInt(v[18], l.MaxGlobalThreads),
		LocalThreads:    scaleInt(v[19], l.MaxLocalThreads),
	}
	return m.Clamp(l)
}

// DiscretizeChoices maps the configuration to the integer "choice
// selections" the paper compares for learner accuracy: each variable is
// binned to its 0.1-step discretization (booleans and enums keep their
// integer identity).
func (m M) DiscretizeChoices(l Limits) [NumVariables]int {
	v := m.Normalize(l)
	var out [NumVariables]int
	for i, x := range v {
		out[i] = int(math.Round(clampF(x, 0, 1) * 10))
	}
	// Enums keep exact identity rather than a 0.1 bin.
	out[0] = int(m.Accelerator)
	out[10] = int(m.Schedule)
	return out
}

// ChoiceAccuracy returns the fraction of discretized choice selections on
// which a and b agree — the paper's accuracy metric ("comparing the
// integer outputs constituting choice selections"). Enumerated choices
// (accelerator, schedule kind, booleans) must match exactly; scaled
// choices count as matching within one 0.1 bin, because adjacent grid
// levels deploy indistinguishably.
func ChoiceAccuracy(a, b M, l Limits) float64 {
	da, db := a.DiscretizeChoices(l), b.DiscretizeChoices(l)
	matches := 0
	for i := range da {
		d := da[i] - db[i]
		if d < 0 {
			d = -d
		}
		exact := i == 0 || i == 8 || i == 10 || i == 12 || i == 15 || i == 16 || i == 17
		if (exact && d == 0) || (!exact && d <= 1) {
			matches++
		}
	}
	return float64(matches) / float64(NumVariables)
}

// String renders a compact single-line summary of the deployed choices.
func (m M) String() string {
	if m.Accelerator == GPU {
		return fmt.Sprintf("GPU{global=%d local=%d}", m.GlobalThreads, m.LocalThreads)
	}
	return fmt.Sprintf("MC{cores=%d tpc=%d simd=%d sched=%s chunk=%d aff=%.1f place=%.1f blocktime=%dms}",
		m.Cores, m.ThreadsPerCore, m.SIMDWidth, m.Schedule, m.ChunkSize, m.Affinity, m.PlaceCore, m.BlocktimeMS)
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func clampF(x, lo, hi float64) float64 {
	// NaN compares false against everything, so without this guard a
	// non-finite predictor output would pass through the clamp unchanged
	// and poison the machine model downstream.
	if math.IsNaN(x) {
		return lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func ratio(x, maxV int) float64 {
	if maxV <= 0 {
		return 0
	}
	return clampF(float64(x)/float64(maxV), 0, 1)
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func roundBool(x float64) int {
	if x >= 0.5 {
		return 1
	}
	return 0
}

func scaleInt(x float64, maxV int) int {
	v := int(math.Round(clampF(x, 0, 1) * float64(maxV)))
	if v < 1 {
		v = 1
	}
	if v > maxV {
		v = maxV
	}
	return v
}
