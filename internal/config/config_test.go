package config

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testLimits() Limits {
	return Limits{
		MaxCores: 61, MaxThreadsPerCore: 4, MaxSIMD: 16,
		MaxGlobalThreads: 8192, MaxLocalThreads: 256,
	}
}

func TestAccelString(t *testing.T) {
	if GPU.String() != "GPU" || Multicore.String() != "Multicore" {
		t.Fatal("accel strings")
	}
}

func TestScheduleString(t *testing.T) {
	names := map[Schedule]string{
		ScheduleStatic: "static", ScheduleDynamic: "dynamic",
		ScheduleGuided: "guided", ScheduleAuto: "auto",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d -> %q want %q", s, got, want)
		}
	}
	if !strings.Contains(Schedule(9).String(), "9") {
		t.Error("unknown schedule string")
	}
}

func TestClampForcesRanges(t *testing.T) {
	l := testLimits()
	m := M{
		Cores: 1000, ThreadsPerCore: -2, BlocktimeMS: 5000,
		PlaceCore: 2, PlaceThread: -1, Affinity: 9,
		SIMDWidth: 99, Schedule: Schedule(7), ChunkSize: 0,
		MaxActiveLevels: 10, SpinCount: -5,
		GlobalThreads: 1 << 30, LocalThreads: 0,
	}.Clamp(l)
	if m.Cores != 61 || m.ThreadsPerCore != 1 {
		t.Fatalf("cores/tpc %d/%d", m.Cores, m.ThreadsPerCore)
	}
	if m.BlocktimeMS != 1000 {
		t.Fatalf("blocktime %d", m.BlocktimeMS)
	}
	if m.PlaceCore != 1 || m.PlaceThread != 0 || m.Affinity != 1 {
		t.Fatal("placement clamp")
	}
	if m.SIMDWidth != 16 || m.Schedule != ScheduleStatic {
		t.Fatalf("simd/schedule %d/%v", m.SIMDWidth, m.Schedule)
	}
	if m.ChunkSize != 1 || m.MaxActiveLevels != 4 || m.SpinCount != 0 {
		t.Fatal("chunk/levels/spin clamp")
	}
	if m.GlobalThreads != 8192 || m.LocalThreads != 1 {
		t.Fatalf("gpu threads %d/%d", m.GlobalThreads, m.LocalThreads)
	}
}

func TestNormalizeRoundTripOnGrid(t *testing.T) {
	l := testLimits()
	for _, m := range Enumerate(l) {
		back := FromNormalized(m.Normalize(l), l)
		// The encode/decode round trip must preserve the discrete
		// choices that matter (accelerator, schedule, booleans) and be
		// close on scaled integers.
		if back.Accelerator != m.Accelerator {
			t.Fatalf("accelerator flipped: %v -> %v", m, back)
		}
		if back.Schedule != m.Schedule {
			t.Fatalf("schedule flipped: %v -> %v", m, back)
		}
		if geoFar(back.Cores, m.Cores) || geoFar(back.GlobalThreads, m.GlobalThreads) {
			t.Fatalf("thread counts drifted: %v -> %v", m, back)
		}
	}
}

func geoFar(a, b int) bool {
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	r := float64(a) / float64(b)
	return r > 1.2 || r < 1/1.2
}

func TestNormalizedComponentsInRangeProperty(t *testing.T) {
	l := testLimits()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var v [NumVariables]float64
		for i := range v {
			v[i] = rng.Float64()*3 - 1 // deliberately out of range
		}
		m := FromNormalized(v, l)
		enc := m.Normalize(l)
		for _, x := range enc {
			if x < 0 || x > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMulticoreThreads(t *testing.T) {
	m := M{Cores: 10, ThreadsPerCore: 4}
	if m.MulticoreThreads() != 40 {
		t.Fatal("thread product")
	}
}

func TestChoiceAccuracyReflexive(t *testing.T) {
	l := testLimits()
	for _, m := range Enumerate(l)[:20] {
		if acc := ChoiceAccuracy(m, m, l); acc != 1 {
			t.Fatalf("self accuracy %v", acc)
		}
	}
}

func TestChoiceAccuracyPenalizesAccelFlip(t *testing.T) {
	l := testLimits()
	a := DefaultGPU(l)
	b := a
	b.Accelerator = Multicore
	if acc := ChoiceAccuracy(a, b, l); acc >= 1 {
		t.Fatalf("accelerator flip not penalized: %v", acc)
	}
}

func TestChoiceAccuracyToleratesOneBin(t *testing.T) {
	l := testLimits()
	a := DefaultMulticore(l)
	b := a
	b.Cores = a.Cores - 5 // within one 0.1 bin of 61
	if acc := ChoiceAccuracy(a, b, l); acc != 1 {
		t.Fatalf("one-bin difference penalized: %v", acc)
	}
	b.Cores = 10 // far away
	if acc := ChoiceAccuracy(a, b, l); acc >= 1 {
		t.Fatal("large core difference not penalized")
	}
}

func TestDefaults(t *testing.T) {
	l := testLimits()
	g := DefaultGPU(l)
	if g.Accelerator != GPU || g.GlobalThreads != l.MaxGlobalThreads ||
		g.LocalThreads != l.MaxLocalThreads {
		t.Fatalf("gpu default %+v", g)
	}
	m := DefaultMulticore(l)
	if m.Accelerator != Multicore || m.Cores != l.MaxCores ||
		m.ThreadsPerCore != l.MaxThreadsPerCore {
		t.Fatalf("mc default %+v", m)
	}
}

func TestEnumerateCoverage(t *testing.T) {
	l := testLimits()
	gpu := EnumerateGPU(l)
	mc := EnumerateMulticore(l)
	if len(gpu) == 0 || len(mc) == 0 {
		t.Fatal("empty sweep grids")
	}
	all := Enumerate(l)
	if len(all) != len(gpu)+len(mc) {
		t.Fatal("union size")
	}
	for _, m := range gpu {
		if m.Accelerator != GPU {
			t.Fatal("gpu grid contains multicore config")
		}
	}
	for _, m := range mc {
		if m.Accelerator != Multicore {
			t.Fatal("mc grid contains gpu config")
		}
	}
	// Grids must include the extreme thread counts.
	foundMin, foundMax := false, false
	for _, m := range gpu {
		if m.GlobalThreads == 1 {
			foundMin = true
		}
		if m.GlobalThreads == l.MaxGlobalThreads {
			foundMax = true
		}
	}
	if !foundMin || !foundMax {
		t.Fatal("gpu sweep missing extremes")
	}
	if got := EnumerateFor(GPU, l); len(got) != len(gpu) {
		t.Fatal("EnumerateFor(GPU)")
	}
	if got := EnumerateFor(Multicore, l); len(got) != len(mc) {
		t.Fatal("EnumerateFor(Multicore)")
	}
}

func TestEnumerateAllValid(t *testing.T) {
	l := testLimits()
	for _, m := range Enumerate(l) {
		c := m.Clamp(l)
		if c != m {
			t.Fatalf("enumerated config not already clamped: %+v vs %+v", m, c)
		}
	}
}

func TestSnappedIdempotent(t *testing.T) {
	l := testLimits()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var v [NumVariables]float64
		for i := range v {
			v[i] = rng.Float64()
		}
		m := FromNormalized(v, l).Snapped(l)
		return m.Snapped(l) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSnappedLandsOnGridLevels(t *testing.T) {
	l := testLimits()
	m := M{Accelerator: Multicore, Cores: 30, ThreadsPerCore: 3, SIMDWidth: 9,
		GlobalThreads: 3000, LocalThreads: 100, BlocktimeMS: 150, ChunkSize: 100}.Snapped(l)
	lv := levels(l.MaxCores, 6)
	found := false
	for _, v := range lv {
		if m.Cores == v {
			found = true
		}
	}
	if !found {
		t.Fatalf("snapped cores %d not on grid %v", m.Cores, lv)
	}
}

func TestLevels(t *testing.T) {
	lv := levels(61, 6)
	if lv[0] != 1 || lv[len(lv)-1] != 61 {
		t.Fatalf("levels endpoints %v", lv)
	}
	for i := 1; i < len(lv); i++ {
		if lv[i] <= lv[i-1] {
			t.Fatalf("levels not increasing: %v", lv)
		}
	}
	if got := levels(1, 5); len(got) != 1 || got[0] != 1 {
		t.Fatalf("levels(1)=%v", got)
	}
}

func TestMString(t *testing.T) {
	l := testLimits()
	if s := DefaultGPU(l).String(); !strings.Contains(s, "GPU") {
		t.Fatalf("gpu string %q", s)
	}
	if s := DefaultMulticore(l).String(); !strings.Contains(s, "cores=") {
		t.Fatalf("mc string %q", s)
	}
}

func TestDiscretizeChoicesEnumsExact(t *testing.T) {
	l := testLimits()
	m := DefaultMulticore(l)
	m.Schedule = ScheduleGuided
	d := m.DiscretizeChoices(l)
	if d[0] != int(Multicore) {
		t.Fatalf("accel choice %d", d[0])
	}
	if d[10] != int(ScheduleGuided) {
		t.Fatalf("schedule choice %d", d[10])
	}
}
