package config

import "fmt"

// VariableInfo documents one machine-choice variable with the paper's
// numbering (Fig 3). The CLI and reports use it to render full M vectors
// with their meanings.
type VariableInfo struct {
	// Number is the paper's variable index, 1-20.
	Number int
	// Name is the paper's label.
	Name string
	// Description explains the deployment semantics.
	Description string
	// GPUOnly / MulticoreOnly mark variables that only deploy on one
	// accelerator family.
	GPUOnly, MulticoreOnly bool
}

// Variables returns the twenty machine-choice variables in paper order.
func Variables() []VariableInfo {
	return []VariableInfo{
		{1, "Accelerator", "inter-accelerator selection: GPU or multicore", false, false},
		{2, "Cores", "multicore cores used", false, true},
		{3, "Threads/core", "hardware threads per multicore core", false, true},
		{4, "KMP blocktime", "ms a thread waits before sleeping on contended data", false, true},
		{5, "Place core-ids", "thread placement looseness across core ids", false, true},
		{6, "Place thread-ids", "thread placement looseness across thread ids", false, true},
		{7, "Place offsets", "thread placement offset looseness", false, true},
		{8, "KMP affinity", "pinning strength: movable (0) to strictly compact (1)", false, true},
		{9, "OMP wait policy", "active spinning vs passive waiting", false, true},
		{10, "SIMD width", "#pragma simd lanes per core", false, true},
		{11, "OMP schedule", "static / dynamic / guided / auto work distribution", false, true},
		{12, "Chunk size", "schedule chunk (tile) size", false, true},
		{13, "OMP nested", "nested parallelism within loops", false, true},
		{14, "Max active levels", "how many parallelism levels may nest", false, true},
		{15, "GOMP spincount", "how long threads actively wait for OpenMP calls", false, true},
		{16, "Proc bind", "bind OpenMP threads to places", false, true},
		{17, "OMP dynamic", "let the runtime adjust team sizes", false, true},
		{18, "Work stealing", "runtime task/work stealing", false, true},
		{19, "Global threads", "total GPU work items", true, false},
		{20, "Local threads", "GPU work-group size (CL_KERNEL_WORK_GROUP_SIZE)", true, false},
	}
}

// Describe renders the configuration variable by variable with the
// paper's numbering; variables that do not deploy on the selected
// accelerator are marked inactive.
func (m M) Describe(l Limits) []string {
	l = l.withDefaults()
	vals := []string{
		m.Accelerator.String(),
		fmt.Sprintf("%d / %d", m.Cores, l.MaxCores),
		fmt.Sprintf("%d / %d", m.ThreadsPerCore, l.MaxThreadsPerCore),
		fmt.Sprintf("%d ms", m.BlocktimeMS),
		fmt.Sprintf("%.2f", m.PlaceCore),
		fmt.Sprintf("%.2f", m.PlaceThread),
		fmt.Sprintf("%.2f", m.PlaceOffset),
		fmt.Sprintf("%.2f", m.Affinity),
		onOff(m.ActiveWait, "active", "passive"),
		fmt.Sprintf("%d / %d", m.SIMDWidth, l.MaxSIMD),
		m.Schedule.String(),
		fmt.Sprintf("%d", m.ChunkSize),
		onOff(m.Nested, "on", "off"),
		fmt.Sprintf("%d", m.MaxActiveLevels),
		fmt.Sprintf("%d", m.SpinCount),
		onOff(m.ProcBind, "on", "off"),
		onOff(m.DynamicAdjust, "on", "off"),
		onOff(m.WorkStealing, "on", "off"),
		fmt.Sprintf("%d / %d", m.GlobalThreads, l.MaxGlobalThreads),
		fmt.Sprintf("%d / %d", m.LocalThreads, l.MaxLocalThreads),
	}
	infos := Variables()
	out := make([]string, len(infos))
	for i, info := range infos {
		inactive := ""
		if (m.Accelerator == GPU && info.MulticoreOnly) ||
			(m.Accelerator == Multicore && info.GPUOnly) {
			inactive = "  (inactive on " + m.Accelerator.String() + ")"
		}
		out[i] = fmt.Sprintf("M%-2d %-18s %-14s %s%s",
			info.Number, info.Name, vals[i], info.Description, inactive)
	}
	return out
}

func onOff(b bool, yes, no string) string {
	if b {
		return yes
	}
	return no
}
