package config

import (
	"strings"
	"testing"
)

func TestVariablesCoverM1ToM20(t *testing.T) {
	vars := Variables()
	if len(vars) != NumVariables {
		t.Fatalf("got %d variables, want %d", len(vars), NumVariables)
	}
	for i, v := range vars {
		if v.Number != i+1 {
			t.Fatalf("variable %d numbered %d", i, v.Number)
		}
		if v.Name == "" || v.Description == "" {
			t.Fatalf("M%d undocumented", v.Number)
		}
		if v.GPUOnly && v.MulticoreOnly {
			t.Fatalf("M%d cannot be exclusive to both families", v.Number)
		}
	}
	// The paper's Fig 3 split: M19/M20 are GPU hardware choices, M2-M18
	// multicore/OpenMP choices, M1 neither.
	if !vars[18].GPUOnly || !vars[19].GPUOnly {
		t.Fatal("M19/M20 must be GPU-only")
	}
	if vars[0].GPUOnly || vars[0].MulticoreOnly {
		t.Fatal("M1 deploys on both")
	}
	for i := 1; i <= 17; i++ {
		if !vars[i].MulticoreOnly {
			t.Fatalf("M%d must be multicore-only", i+1)
		}
	}
}

func TestDescribeRendersEveryVariable(t *testing.T) {
	l := testLimits()
	lines := DefaultMulticore(l).Describe(l)
	if len(lines) != NumVariables {
		t.Fatalf("got %d lines", len(lines))
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"M1 ", "M20", "Multicore", "static", "work-group"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("describe missing %q:\n%s", want, joined)
		}
	}
	// GPU-only variables are flagged inactive on the multicore.
	if !strings.Contains(lines[18], "inactive on Multicore") {
		t.Fatalf("M19 not flagged inactive: %s", lines[18])
	}
	// And vice versa.
	gpuLines := DefaultGPU(l).Describe(l)
	if !strings.Contains(gpuLines[1], "inactive on GPU") {
		t.Fatalf("M2 not flagged inactive on GPU: %s", gpuLines[1])
	}
	if strings.Contains(gpuLines[18], "inactive") {
		t.Fatalf("M19 wrongly inactive on GPU: %s", gpuLines[18])
	}
}
