package config

import (
	"encoding/json"
	"fmt"
)

// JSON encoding of the machine-choice vector. API responses serialize M
// with the paper's knob names rather than bare struct-field or index
// positions, and enumerated choices (accelerator, schedule kind) as their
// symbolic names, so a serialized mapping is self-describing and stable
// across refactors of the in-memory layout.

// MarshalJSON implements json.Marshaler, emitting "GPU" / "Multicore".
func (a Accel) MarshalJSON() ([]byte, error) {
	return json.Marshal(a.String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *Accel) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "GPU":
		*a = GPU
	case "Multicore":
		*a = Multicore
	default:
		return fmt.Errorf("config: unknown accelerator %q", s)
	}
	return nil
}

// MarshalJSON implements json.Marshaler, emitting the schedule kind name.
func (s Schedule) MarshalJSON() ([]byte, error) {
	if s < 0 || s >= numSchedules {
		return nil, fmt.Errorf("config: invalid schedule kind %d", int(s))
	}
	return json.Marshal(s.String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for k := Schedule(0); k < numSchedules; k++ {
		if k.String() == name {
			*s = k
			return nil
		}
	}
	return fmt.Errorf("config: unknown schedule kind %q", name)
}

// mJSON is the wire shape of M: every knob under its paper name (the
// comment trail M1..M20 fixes the correspondence). encoding/json emits
// struct fields in declaration order, so the serialization is
// deterministic and golden-testable.
type mJSON struct {
	Accelerator     Accel    `json:"accelerator"`       // M1
	Cores           int      `json:"cores"`             // M2
	ThreadsPerCore  int      `json:"threads_per_core"`  // M3
	BlocktimeMS     int      `json:"blocktime_ms"`      // M4
	PlaceCore       float64  `json:"place_core"`        // M5
	PlaceThread     float64  `json:"place_thread"`      // M6
	PlaceOffset     float64  `json:"place_offset"`      // M7
	Affinity        float64  `json:"affinity"`          // M8
	ActiveWait      bool     `json:"active_wait"`       // M9
	SIMDWidth       int      `json:"simd_width"`        // M10
	Schedule        Schedule `json:"schedule"`          // M11
	ChunkSize       int      `json:"chunk_size"`        // M12
	Nested          bool     `json:"nested"`            // M13
	MaxActiveLevels int      `json:"max_active_levels"` // M14
	SpinCount       int      `json:"spin_count"`        // M15
	ProcBind        bool     `json:"proc_bind"`         // M16
	DynamicAdjust   bool     `json:"dynamic_adjust"`    // M17
	WorkStealing    bool     `json:"work_stealing"`     // M18
	GlobalThreads   int      `json:"global_threads"`    // M19
	LocalThreads    int      `json:"local_threads"`     // M20
}

// MarshalJSON implements json.Marshaler.
func (m M) MarshalJSON() ([]byte, error) {
	return json.Marshal(mJSON(m))
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *M) UnmarshalJSON(data []byte) error {
	var w mJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*m = M(w)
	return nil
}
