package config

import (
	"encoding/json"
	"testing"
)

// The serialized form is part of the serving API: knob names, not bare
// indices, and enum names, not ints. This golden string pins it.
const goldenMJSON = `{"accelerator":"Multicore","cores":61,"threads_per_core":4,` +
	`"blocktime_ms":200,"place_core":0.5,"place_thread":0.25,"place_offset":0,` +
	`"affinity":1,"active_wait":true,"simd_width":16,"schedule":"guided",` +
	`"chunk_size":64,"nested":false,"max_active_levels":2,"spin_count":1024,` +
	`"proc_bind":true,"dynamic_adjust":false,"work_stealing":true,` +
	`"global_threads":2048,"local_threads":128}`

func goldenM() M {
	return M{
		Accelerator:     Multicore,
		Cores:           61,
		ThreadsPerCore:  4,
		BlocktimeMS:     200,
		PlaceCore:       0.5,
		PlaceThread:     0.25,
		Affinity:        1,
		ActiveWait:      true,
		SIMDWidth:       16,
		Schedule:        ScheduleGuided,
		ChunkSize:       64,
		MaxActiveLevels: 2,
		SpinCount:       1024,
		ProcBind:        true,
		WorkStealing:    true,
		GlobalThreads:   2048,
		LocalThreads:    128,
	}
}

func TestMMarshalGolden(t *testing.T) {
	data, err := json.Marshal(goldenM())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != goldenMJSON {
		t.Fatalf("golden mismatch:\n got %s\nwant %s", data, goldenMJSON)
	}
}

func TestMJSONRoundTrip(t *testing.T) {
	want := goldenM()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got M
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// Marshalling must be deterministic call to call (map-order style
// nondeterminism would break byte-identity checks in the serving tests).
func TestMMarshalDeterministic(t *testing.T) {
	first, err := json.Marshal(goldenM())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, _ := json.Marshal(goldenM())
		if string(again) != string(first) {
			t.Fatalf("marshal not deterministic: %s vs %s", again, first)
		}
	}
}

func TestAccelScheduleUnmarshalErrors(t *testing.T) {
	var a Accel
	if err := json.Unmarshal([]byte(`"TPU"`), &a); err == nil {
		t.Fatal("unknown accelerator accepted")
	}
	var s Schedule
	if err := json.Unmarshal([]byte(`"chaotic"`), &s); err == nil {
		t.Fatal("unknown schedule accepted")
	}
	if err := json.Unmarshal([]byte(`"dynamic"`), &s); err != nil || s != ScheduleDynamic {
		t.Fatalf("dynamic: %v %v", s, err)
	}
}
