package config

import "math"

// This file enumerates discretized sweep spaces over the M vector. The
// autotuner explores these candidates when building the offline training
// database, and the "ideal" baseline exhaustively minimizes over them —
// the paper's "manually optimizes by running all possible configurations".

// DefaultMulticore returns a sensible multicore starting configuration:
// all cores, all hardware threads, static scheduling — what a user gets
// by running an OpenMP binary untuned.
func DefaultMulticore(l Limits) M {
	l = l.withDefaults()
	return M{
		Accelerator:     Multicore,
		Cores:           l.MaxCores,
		ThreadsPerCore:  l.MaxThreadsPerCore,
		BlocktimeMS:     200,
		PlaceCore:       0,
		PlaceThread:     0,
		PlaceOffset:     0,
		Affinity:        0,
		SIMDWidth:       1,
		Schedule:        ScheduleStatic,
		ChunkSize:       64,
		MaxActiveLevels: 1,
		SpinCount:       1024,
		GlobalThreads:   1,
		LocalThreads:    1,
	}.Clamp(l)
}

// DefaultGPU returns the untuned GPU configuration: maximum global and
// local threading.
func DefaultGPU(l Limits) M {
	l = l.withDefaults()
	return M{
		Accelerator:     GPU,
		Cores:           1,
		ThreadsPerCore:  1,
		BlocktimeMS:     1,
		SIMDWidth:       1,
		Schedule:        ScheduleStatic,
		ChunkSize:       64,
		MaxActiveLevels: 1,
		GlobalThreads:   l.MaxGlobalThreads,
		LocalThreads:    l.MaxLocalThreads,
	}.Clamp(l)
}

// levels returns about k geometrically spaced values in [1, maxV],
// always including 1 and maxV.
func levels(maxV, k int) []int {
	return appendLevels(nil, maxV, k)
}

// appendLevels is levels into a caller-provided buffer: the decode hot
// path (Snapped, on every NN inference) passes a stack array so grid
// snapping costs no heap allocations.
func appendLevels(dst []int, maxV, k int) []int {
	if maxV <= 1 {
		return append(dst, 1)
	}
	if k < 2 {
		k = 2
	}
	dst = append(dst, 1)
	step := math.Pow(float64(maxV), 1/float64(k-1))
	cur := 1.0
	for i := 1; i < k-1; i++ {
		cur *= step
		v := int(cur)
		if v > dst[len(dst)-1] {
			dst = append(dst, v)
		}
	}
	if dst[len(dst)-1] != maxV {
		dst = append(dst, maxV)
	}
	return dst
}

// EnumerateGPU returns the coarse GPU sweep grid: geometric levels of
// global threads crossed with work-group sizes. Soft knobs stay at
// defaults because they have no GPU semantics.
func EnumerateGPU(l Limits) []M {
	l = l.withDefaults()
	base := DefaultGPU(l)
	var out []M
	for _, gt := range levels(l.MaxGlobalThreads, 8) {
		for _, lt := range levels(l.MaxLocalThreads, 6) {
			m := base
			m.GlobalThreads = gt
			m.LocalThreads = lt
			out = append(out, m.Clamp(l))
		}
	}
	return out
}

// EnumerateMulticore returns the coarse multicore sweep grid: cores ×
// threads-per-core × SIMD × schedule × affinity/placement × blocktime.
// ~500 candidates for Xeon-Phi-like limits.
func EnumerateMulticore(l Limits) []M {
	l = l.withDefaults()
	base := DefaultMulticore(l)
	var out []M
	schedules := []Schedule{ScheduleStatic, ScheduleDynamic, ScheduleGuided}
	for _, c := range levels(l.MaxCores, 6) {
		for _, t := range levels(l.MaxThreadsPerCore, 3) {
			for _, s := range levels(l.MaxSIMD, 2) {
				for _, sch := range schedules {
					for _, place := range []float64{0, 0.5, 1} {
						for _, bt := range []int{1, 200} {
							m := base
							m.Cores = c
							m.ThreadsPerCore = t
							m.SIMDWidth = s
							m.Schedule = sch
							m.PlaceCore = place
							m.PlaceThread = place
							m.PlaceOffset = place
							m.Affinity = place
							m.BlocktimeMS = bt
							if sch == ScheduleDynamic {
								m.ChunkSize = 64
							} else {
								m.ChunkSize = 512
							}
							out = append(out, m.Clamp(l))
						}
					}
				}
			}
		}
	}
	return out
}

// Enumerate returns the union sweep over both accelerators — the search
// space of the inter+intra choice problem.
func Enumerate(l Limits) []M {
	gpu := EnumerateGPU(l)
	mc := EnumerateMulticore(l)
	out := make([]M, 0, len(gpu)+len(mc))
	out = append(out, gpu...)
	out = append(out, mc...)
	return out
}

// EnumerateFor returns the sweep restricted to one accelerator, used for
// the GPU-only / multicore-only baselines.
func EnumerateFor(a Accel, l Limits) []M {
	if a == GPU {
		return EnumerateGPU(l)
	}
	return EnumerateMulticore(l)
}

// Snapped quantizes the integer-valued knobs of m to the nearest level of
// the coarse sweep grids. Learners are trained on grid-optimal targets,
// so snapping is their natural decode step: it removes the
// regression-to-the-mean error on thread counts that would otherwise
// deploy configurations no tuner ever evaluated.
func (m M) Snapped(l Limits) M {
	l = l.withDefaults()
	m = m.Clamp(l)
	var buf [8]int
	m.Cores = snapTo(m.Cores, appendLevels(buf[:0], l.MaxCores, 6))
	m.ThreadsPerCore = snapTo(m.ThreadsPerCore, appendLevels(buf[:0], l.MaxThreadsPerCore, 3))
	m.SIMDWidth = snapTo(m.SIMDWidth, appendLevels(buf[:0], l.MaxSIMD, 2))
	m.GlobalThreads = snapTo(m.GlobalThreads, appendLevels(buf[:0], l.MaxGlobalThreads, 8))
	m.LocalThreads = snapTo(m.LocalThreads, appendLevels(buf[:0], l.MaxLocalThreads, 6))
	m.BlocktimeMS = snapTo(m.BlocktimeMS, append(buf[:0], 1, 200, l.MaxBlocktimeMS))
	m.ChunkSize = snapTo(m.ChunkSize, append(buf[:0], 1, 64, 512, l.MaxChunk))
	return m
}

// snapTo returns the level geometrically closest to x.
func snapTo(x int, lv []int) int {
	best := lv[0]
	bestDist := geoDist(x, best)
	for _, v := range lv[1:] {
		if d := geoDist(x, v); d < bestDist {
			best, bestDist = v, d
		}
	}
	return best
}

func geoDist(a, b int) float64 {
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	r := float64(a) / float64(b)
	if r < 1 {
		r = 1 / r
	}
	return r
}
