package config

import (
	"math"
	"testing"
)

// nonFiniteMs enumerates configurations a broken predictor could emit:
// each float knob poisoned with NaN, +Inf and -Inf in turn.
func nonFiniteMs() []M {
	var out []M
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		for field := 0; field < 4; field++ {
			m := DefaultMulticore(testLimits())
			switch field {
			case 0:
				m.PlaceCore = bad
			case 1:
				m.PlaceThread = bad
			case 2:
				m.PlaceOffset = bad
			case 3:
				m.Affinity = bad
			}
			out = append(out, m)
		}
	}
	return out
}

func TestValidateRejectsNonFinite(t *testing.T) {
	l := testLimits()
	for i, m := range nonFiniteMs() {
		if err := m.Validate(l); err == nil {
			t.Errorf("case %d: non-finite M validated", i)
		}
	}
	if err := DefaultMulticore(l).Validate(l); err != nil {
		t.Errorf("default multicore invalid: %v", err)
	}
	if err := DefaultGPU(l).Validate(l); err != nil {
		t.Errorf("default GPU invalid: %v", err)
	}
}

func TestValidateRejectsBadEnums(t *testing.T) {
	l := testLimits()
	m := DefaultMulticore(l)
	m.Schedule = Schedule(99)
	if err := m.Validate(l); err == nil {
		t.Error("invalid schedule validated")
	}
	m = DefaultGPU(l)
	m.Accelerator = Accel(7)
	if err := m.Validate(l); err == nil {
		t.Error("invalid accelerator validated")
	}
}

func TestClampSanitizesNonFinite(t *testing.T) {
	l := testLimits()
	for i, m := range nonFiniteMs() {
		c := m.Clamp(l)
		for name, v := range map[string]float64{
			"PlaceCore": c.PlaceCore, "PlaceThread": c.PlaceThread,
			"PlaceOffset": c.PlaceOffset, "Affinity": c.Affinity,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
				t.Errorf("case %d: Clamp left %s = %v", i, name, v)
			}
		}
	}
}

func TestNormalizeSanitizesNonFinite(t *testing.T) {
	l := testLimits()
	for i, m := range nonFiniteMs() {
		v := m.Normalize(l)
		for j, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 || x > 1 {
				t.Errorf("case %d: Normalize[%d] = %v", i, j, x)
			}
		}
	}
}

func TestFromNormalizedNonFiniteVector(t *testing.T) {
	l := testLimits()
	var v [NumVariables]float64
	for i := range v {
		switch i % 3 {
		case 0:
			v[i] = math.NaN()
		case 1:
			v[i] = math.Inf(1)
		default:
			v[i] = math.Inf(-1)
		}
	}
	m := FromNormalized(v, l)
	if err := m.Validate(l); err != nil {
		t.Fatalf("FromNormalized on non-finite vector produced invalid M: %v", err)
	}
	if m.Cores < 1 || m.Cores > l.MaxCores || m.GlobalThreads < 1 {
		t.Fatalf("FromNormalized produced undeployable ints: %+v", m)
	}
}

func TestForceAccelerator(t *testing.T) {
	l := testLimits()
	gpuM := DefaultGPU(l)

	mc := gpuM.ForceAccelerator(Multicore, l)
	if mc.Accelerator != Multicore {
		t.Fatal("not retargeted")
	}
	if mc.Cores != l.MaxCores || mc.ThreadsPerCore != l.MaxThreadsPerCore {
		t.Fatalf("multicore side not filled with defaults: %+v", mc)
	}

	back := mc.ForceAccelerator(GPU, l)
	if back.Accelerator != GPU {
		t.Fatal("not retargeted back")
	}
	if back.GlobalThreads != l.MaxGlobalThreads || back.LocalThreads != l.MaxLocalThreads {
		t.Fatalf("GPU side not filled with defaults: %+v", back)
	}

	// Same-side forcing keeps the knobs (modulo clamping).
	same := gpuM.ForceAccelerator(GPU, l)
	if same != gpuM {
		t.Fatalf("same-side force changed config: %+v vs %+v", same, gpuM)
	}
}
