package conformance

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// BenchSchemaVersion tags the BENCH_*.json layout. Bump it only with a
// migration note in EXPERIMENTS.md — CI compares reports across
// commits, so silent layout changes would break the regression gate.
const BenchSchemaVersion = 1

// BenchEnvironment records where a BENCH report was measured. Absolute
// ns/op are only comparable within one environment; the gate in
// CompareBench is advisory across different hosts.
type BenchEnvironment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Short marks a -short run (reduced workloads; comparable only to
	// other short runs).
	Short bool `json:"short"`
	// Benchtime is the per-target measurement budget ("1s").
	Benchtime string `json:"benchtime"`
}

// BenchResult is one hot-path measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Metrics carries per-target custom metrics (e.g. samples/sec for
	// database builds) reported via testing.B.ReportMetric.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the schema-versioned perf artifact cmd/hmbench emits
// (BENCH_4.json at the repository root is the committed baseline).
type BenchReport struct {
	SchemaVersion int              `json:"schema_version"`
	GeneratedBy   string           `json:"generated_by"`
	UnixTime      int64            `json:"unix_time"`
	Env           BenchEnvironment `json:"env"`
	Results       []BenchResult    `json:"results"`
}

// Result returns the named measurement, or nil.
func (r *BenchReport) Result(name string) *BenchResult {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// WriteBench serializes a report as indented JSON (stable field order,
// trailing newline) so committed baselines diff cleanly.
func WriteBench(w io.Writer, r *BenchReport) error {
	sort.Slice(r.Results, func(i, j int) bool { return r.Results[i].Name < r.Results[j].Name })
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadBench parses and validates a BENCH report.
func ReadBench(rd io.Reader) (*BenchReport, error) {
	var r BenchReport
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("conformance: parse BENCH report: %w", err)
	}
	if r.SchemaVersion != BenchSchemaVersion {
		return nil, fmt.Errorf("conformance: BENCH schema version %d, this build reads %d",
			r.SchemaVersion, BenchSchemaVersion)
	}
	if len(r.Results) == 0 {
		return nil, fmt.Errorf("conformance: BENCH report has no results")
	}
	for _, res := range r.Results {
		if res.Name == "" || res.NsPerOp <= 0 {
			return nil, fmt.Errorf("conformance: BENCH result %+v is malformed", res)
		}
	}
	return &r, nil
}

// Regression is one gate violation from CompareBench.
type Regression struct {
	Name   string  // target name
	Metric string  // "ns/op" or "allocs/op"
	Base   float64 // baseline value
	Cur    float64 // current value
	Ratio  float64 // Cur / Base
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx)",
		r.Name, r.Metric, r.Base, r.Cur, r.Ratio)
}

// CompareBench gates cur against base: any target whose ns/op grew by
// more than maxRegress (0.20 = 20%), whose allocs/op grew at all
// beyond slack, or that allocates at all where the baseline records
// zero allocs/op, is returned as a regression. Targets present in only
// one report are skipped (additions and retirements are not
// regressions — the committed baseline is refreshed alongside them).
func CompareBench(base, cur *BenchReport, maxRegress float64) []Regression {
	var out []Regression
	for _, b := range base.Results {
		c := cur.Result(b.Name)
		if c == nil {
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+maxRegress) {
			out = append(out, Regression{
				Name: b.Name, Metric: "ns/op",
				Base: b.NsPerOp, Cur: c.NsPerOp, Ratio: c.NsPerOp / b.NsPerOp,
			})
		}
		// Allocation counts are near-deterministic, so they get the
		// same relative gate; it catches accidental per-op allocations
		// on paths that were allocation-free.
		if b.AllocsPerOp > 0 && float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+maxRegress) {
			out = append(out, Regression{
				Name: b.Name, Metric: "allocs/op",
				Base: float64(b.AllocsPerOp), Cur: float64(c.AllocsPerOp),
				Ratio: float64(c.AllocsPerOp) / float64(b.AllocsPerOp),
			})
		}
		// A zero-alloc baseline is a hard floor, not a ratio: the first
		// allocation on a path committed at 0 allocs/op (the cache-hit
		// fast path, the binary-key hash) is a regression no matter how
		// small, because it means the path escapes to the heap again.
		if b.AllocsPerOp == 0 && c.AllocsPerOp > 0 {
			out = append(out, Regression{
				Name: b.Name, Metric: "allocs/op",
				Base: 0, Cur: float64(c.AllocsPerOp),
				Ratio: math.Inf(1),
			})
		}
	}
	return out
}
