package conformance

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

func sampleReport() *BenchReport {
	return &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		GeneratedBy:   "test",
		Env:           BenchEnvironment{GoVersion: "go", GOOS: "linux", GOARCH: "amd64", NumCPU: 1, GOMAXPROCS: 1, Benchtime: "1s"},
		Results: []BenchResult{
			{Name: "b/two", Iterations: 10, NsPerOp: 200, AllocsPerOp: 4},
			{Name: "a/one", Iterations: 10, NsPerOp: 100, AllocsPerOp: 0,
				Metrics: map[string]float64{"samples/sec": 42}},
		},
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	r := sampleReport()
	if err := WriteBench(&buf, r); err != nil {
		t.Fatal(err)
	}
	// Stable serialization: results sorted by name, trailing newline.
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("report missing trailing newline")
	}
	if strings.Index(buf.String(), "a/one") > strings.Index(buf.String(), "b/two") {
		t.Error("results not sorted by name")
	}
	got, err := ReadBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result("a/one") == nil || got.Result("a/one").Metrics["samples/sec"] != 42 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestReadBenchRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"wrong-schema":  `{"schema_version": 99, "generated_by": "x", "unix_time": 0, "env": {"go_version":"go","goos":"l","goarch":"a","num_cpu":1,"gomaxprocs":1,"short":false,"benchtime":"1s"}, "results": [{"name":"a","iterations":1,"ns_per_op":1,"allocs_per_op":0,"bytes_per_op":0}]}`,
		"no-results":    `{"schema_version": 1, "generated_by": "x", "unix_time": 0, "env": {"go_version":"go","goos":"l","goarch":"a","num_cpu":1,"gomaxprocs":1,"short":false,"benchtime":"1s"}, "results": []}`,
		"zero-ns":       `{"schema_version": 1, "generated_by": "x", "unix_time": 0, "env": {"go_version":"go","goos":"l","goarch":"a","num_cpu":1,"gomaxprocs":1,"short":false,"benchtime":"1s"}, "results": [{"name":"a","iterations":1,"ns_per_op":0,"allocs_per_op":0,"bytes_per_op":0}]}`,
		"unknown-field": `{"schema_version": 1, "bogus": true}`,
		"not-json":      `BENCH`,
	}
	for name, body := range cases {
		if _, err := ReadBench(strings.NewReader(body)); err == nil {
			t.Errorf("%s: malformed report accepted", name)
		}
	}
}

func TestCompareBenchGates(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()

	if regs := CompareBench(base, cur, 0.20); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %v", regs)
	}

	// 19% slower: inside the gate.
	cur.Results[0].NsPerOp = 238
	if regs := CompareBench(base, cur, 0.20); len(regs) != 0 {
		t.Fatalf("19%% growth flagged at a 20%% gate: %v", regs)
	}

	// 25% slower: regression.
	cur.Results[0].NsPerOp = 250
	regs := CompareBench(base, cur, 0.20)
	if len(regs) != 1 || regs[0].Name != "b/two" || regs[0].Metric != "ns/op" {
		t.Fatalf("expected one ns/op regression on b/two, got %v", regs)
	}

	// Alloc growth is gated too.
	cur = sampleReport()
	cur.Results[0].AllocsPerOp = 6
	regs = CompareBench(base, cur, 0.20)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("expected one allocs/op regression, got %v", regs)
	}

	// A zero-alloc baseline is a hard floor: one allocation fails the
	// gate regardless of the relative slack.
	cur = sampleReport()
	cur.Results[1].AllocsPerOp = 1
	regs = CompareBench(base, cur, 100)
	if len(regs) != 1 || regs[0].Name != "a/one" || regs[0].Metric != "allocs/op" {
		t.Fatalf("expected one zero-floor allocs/op regression on a/one, got %v", regs)
	}

	// Targets only in one report are not regressions.
	cur = sampleReport()
	cur.Results = cur.Results[:1]
	if regs := CompareBench(base, cur, 0.20); len(regs) != 0 {
		t.Fatalf("missing target flagged: %v", regs)
	}
}

// Every target must run under the short configuration — this is the
// guard that keeps hmbench's target list executable, and (because the
// full tier-1 suite runs it) keeps the committed baseline's names live.
func TestBenchTargetsRunShort(t *testing.T) {
	if testing.Short() {
		t.Skip("meta-benchmarking is not worth running twice in -short CI")
	}
	// Keep the tier-1 suite fast: a tiny measurement budget still proves
	// every target sets up, iterates and tears down.
	old := flag.Lookup("test.benchtime").Value.String()
	if err := flag.Set("test.benchtime", "10ms"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("test.benchtime", old)
	for _, target := range BenchTargets(true) {
		target := target
		t.Run(strings.ReplaceAll(target.Name, "/", "_"), func(t *testing.T) {
			res, err := RunTarget(target)
			if err != nil {
				t.Fatal(err)
			}
			if res.NsPerOp <= 0 || res.Iterations <= 0 {
				t.Fatalf("degenerate measurement: %+v", res)
			}
		})
	}
}
