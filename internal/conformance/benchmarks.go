package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"heteromap/internal/config"
	"heteromap/internal/durable"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/obs"
	"heteromap/internal/online"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/predict/nn"
	"heteromap/internal/serve"
	"heteromap/internal/train"
)

// BenchTarget is one hot-path measurement cmd/hmbench runs (and the
// root Conformance* benchmarks wrap for `go test -bench`). Run bodies
// follow testing.B conventions: setup before ResetTimer, b.N iterations.
type BenchTarget struct {
	// Name is the stable BENCH_*.json key ("feature/discretize").
	// Renaming a target orphans its baseline row, so treat names as API.
	Name string
	// Doc is the one-line description hmbench -list prints.
	Doc string
	// Run measures the target.
	Run func(b *testing.B)
}

// BenchTargets returns every hot-path target. short selects reduced
// workload sizes (the CI smoke configuration); short and full runs are
// not comparable to each other and the report's environment stanza
// records which one produced it.
func BenchTargets(short bool) []BenchTarget {
	return []BenchTarget{
		{
			Name: "feature/discretize",
			Doc:  "17-dim vector clamp+snap onto the 0.1 grid (cache-key normalization)",
			Run:  benchFeatureDiscretize,
		},
		{
			Name: "feature/key-roundtrip",
			Doc:  "cache-key render + parse round trip of a discretized vector",
			Run:  benchFeatureKeyRoundTrip,
		},
		{
			Name: "machine/evaluate",
			Doc:  "one machine-model cost evaluation (GPU side, synthesized job)",
			Run:  benchMachineEvaluate,
		},
		{
			Name: "predict/tree",
			Doc:  "analytical decision-tree inference (M1 tree + M2-M20 equations)",
			Run:  benchPredictTree,
		},
		{
			Name: "predict/deep128",
			Doc:  "Deep.128 forward pass (17 -> 128 -> 20)",
			Run:  benchPredictDeep128(short),
		},
		{
			Name: "serve/predict-e2e",
			Doc:  "HTTP POST /v1/predict end to end (batcher, cache, tree model)",
			Run:  benchServePredict,
		},
		{
			Name: "serve/predict-cachehit",
			Doc:  "in-process cache-hit fast path (binary key build + sharded LRU hit); gated at 0 allocs/op",
			Run:  benchServeCacheHit,
		},
		{
			Name: "serve/obs-overhead",
			Doc:  "predict e2e with tracing on (ns/op) vs off (untraced_ns/op, overhead_pct)",
			Run:  benchServeObsOverhead,
		},
		{
			Name: "serve/federation-scrape",
			Doc:  "one /metrics/cluster federation pass: parse + merge 3 node expositions (counters summed, histograms bucket-merged, node labels)",
			Run:  benchFederationScrape,
		},
		{
			Name: "train/build-db",
			Doc:  "offline database build throughput (exhaustive sweep per sample)",
			Run:  benchTrainBuildDB(short),
		},
		{
			Name: "train/load-db",
			Doc:  "checksummed database load (ns/op) vs the unchecksummed legacy format (legacy_ns/op, verify_overhead_pct)",
			Run:  benchTrainLoadDB(short),
		},
		{
			Name: "durable/wal-append",
			Doc:  "one framed+checksummed feedback-WAL append (outcome-sized payload), fsync amortized per 16-record batch",
			Run:  benchDurableWALAppend,
		},
		{
			Name: "online/feedback-ingest",
			Doc:  "predict e2e with the learning-loop hook (ns/op) vs without (plain_ns/op, overhead_pct)",
			Run:  benchOnlineFeedbackIngest,
		},
		{
			Name: "online/drift-check",
			Doc:  "one drift-detector observation (EWMA + cell stats + signal window) plus the arming check",
			Run:  benchOnlineDriftCheck,
		},
	}
}

// TargetNames lists the stable target names the committed baseline must
// cover.
func TargetNames() []string {
	ts := BenchTargets(true)
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return names
}

// benchPoints returns a deterministic set of characterization points
// shared by the single-process benchmarks.
func benchPoints(n int) []Point {
	return GridPoints(1729, n)
}

func benchFeatureDiscretize(b *testing.B) {
	pts := benchPoints(64)
	// Undiscretized inputs: jitter off the grid so the snap does work.
	rng := rand.New(rand.NewSource(9))
	raw := make([]feature.Vector, len(pts))
	for i, p := range pts {
		raw[i] = p.Features
		for j := range raw[i] {
			raw[i][j] += rng.Float64() * 0.049
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := raw[i%len(raw)].Discretized(feature.DiscretizationStep)
		if v[0] < 0 {
			b.Fatal("impossible")
		}
	}
}

func benchFeatureKeyRoundTrip(b *testing.B) {
	pts := benchPoints(64)
	keys := make([]string, len(pts))
	for i, p := range pts {
		keys[i] = p.Features.Discretized(feature.DiscretizationStep).Key()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := feature.ParseKey(keys[i%len(keys)])
		if err != nil {
			b.Fatal(err)
		}
		if v.Key() == "" {
			b.Fatal("empty key")
		}
	}
}

func benchMachineEvaluate(b *testing.B) {
	pair := machine.PrimaryPair()
	pts := benchPoints(16)
	m := config.DefaultGPU(pair.Limits())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := pair.GPU.Evaluate(pts[i%len(pts)].Job, m)
		if rep.Seconds <= 0 {
			b.Fatal("non-positive cost")
		}
	}
}

func benchPredictTree(b *testing.B) {
	pair := machine.PrimaryPair()
	tree := dtree.New(pair.Limits())
	pts := benchPoints(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Predict(pts[i%len(pts)].Features)
	}
}

func benchPredictDeep128(short bool) func(b *testing.B) {
	return func(b *testing.B) {
		pair := machine.PrimaryPair()
		samples := 256
		if short {
			samples = 64
		}
		db := train.BuildDatabase(pair, train.Config{Samples: samples, Seed: 7})
		net := nn.New(pair.Limits(), nn.Options{Hidden: 128, Epochs: 5, Seed: 7})
		if err := net.Train(db.Samples); err != nil {
			b.Fatal(err)
		}
		pts := benchPoints(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Predict(pts[i%len(pts)].Features)
		}
	}
}

// benchServeSetup starts a serve.Server (with the given extra options)
// behind an httptest listener, registers the tree model, and prepares a
// rotation of distinct predict bodies. The caller must call stop.
func benchServeSetup(b *testing.B, opts serve.Options) (ts *httptest.Server, bodies [][]byte, stop func()) {
	pair := machine.PrimaryPair()
	opts.Pair = pair
	s := serve.New(opts)
	if _, err := s.Registry().Register("tree", "bench", dtree.New(pair.Limits())); err != nil {
		b.Fatal(err)
	}
	ts = httptest.NewServer(s.Handler())
	stop = func() {
		ts.Close()
		s.Shutdown(context.Background())
	}
	pts := benchPoints(64)
	bodies = make([][]byte, len(pts))
	for i, p := range pts {
		f := p.Features.Discretized(feature.DiscretizationStep)
		buf, err := json.Marshal(serve.PredictRequest{Model: "tree", Features: f[:]})
		if err != nil {
			stop()
			b.Fatal(err)
		}
		bodies[i] = buf
	}
	return ts, bodies, stop
}

func servePredictOnce(b *testing.B, client *http.Client, url string, body []byte) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("predict returned %d", resp.StatusCode)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
}

func benchServePredict(b *testing.B) {
	// Rotate over distinct raw-feature requests: after the first lap the
	// cache serves them, so the measurement covers the steady-state
	// serve path (HTTP + batcher + cache hit) a production replica sees.
	ts, bodies, stop := benchServeSetup(b, serve.Options{})
	defer stop()
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servePredictOnce(b, client, ts.URL+"/v1/predict", bodies[i%len(bodies)])
	}
}

// benchServeCacheHit prices the cache-hit fast path with the HTTP and
// JSON layers peeled off: one PredictCached call — registry resolve,
// binary cache-key build, sharded-LRU hit, latency accounting — per
// iteration. This is the floor the e2e number decomposes onto, and the
// target the allocs/op gate pins at zero: any per-hit allocation that
// sneaks onto this path (a string key, an escaping closure, a trace
// exemplar) fails the baseline comparison.
func benchServeCacheHit(b *testing.B) {
	pair := machine.PrimaryPair()
	s := serve.New(serve.Options{Pair: pair, DisableTracing: true})
	defer s.Shutdown(context.Background())
	if _, err := s.Registry().Register("tree", "bench", dtree.New(pair.Limits())); err != nil {
		b.Fatal(err)
	}
	pts := benchPoints(64)
	feats := make([]feature.Vector, len(pts))
	h := s.Handler()
	for i, p := range pts {
		feats[i] = p.Features.Discretized(feature.DiscretizationStep)
		// Warm each key through the full predict path once.
		body, err := json.Marshal(serve.PredictRequest{Model: "tree", Features: feats[i][:]})
		if err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("warmup predict returned %d: %s", rec.Code, rec.Body.String())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := s.PredictCached("tree", feats[i%len(feats)]); !ok {
			b.Fatal("warmed key missed the cache")
		}
	}
}

// benchServeObsOverhead prices the tracing instrumentation: ns/op is the
// traced serve path (the default configuration, same steady-state mix as
// serve/predict-e2e), and a stopped-timer reference run against an
// untraced server yields untraced_ns/op plus the relative overhead_pct
// the acceptance gate watches (tracing must stay within a few percent).
func benchServeObsOverhead(b *testing.B) {
	traced, tracedBodies, stopTraced := benchServeSetup(b, serve.Options{})
	defer stopTraced()
	untraced, untracedBodies, stopUntraced := benchServeSetup(b, serve.Options{DisableTracing: true})
	defer stopUntraced()
	tc, uc := traced.Client(), untraced.Client()

	// Warm both caches so both measurements cover the cache-hit path.
	for i := range tracedBodies {
		servePredictOnce(b, tc, traced.URL+"/v1/predict", tracedBodies[i])
		servePredictOnce(b, uc, untraced.URL+"/v1/predict", untracedBodies[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servePredictOnce(b, tc, traced.URL+"/v1/predict", tracedBodies[i%len(tracedBodies)])
	}
	b.StopTimer()
	tracedNS := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

	// Match the reference sample to the measured iteration count (within
	// bounds) so both sides see comparable scheduler and cache behaviour.
	refN := b.N
	if refN > 4096 {
		refN = 4096
	}
	if refN < 256 {
		refN = 256
	}
	start := time.Now()
	for i := 0; i < refN; i++ {
		servePredictOnce(b, uc, untraced.URL+"/v1/predict", untracedBodies[i%len(untracedBodies)])
	}
	untracedNS := float64(time.Since(start).Nanoseconds()) / float64(refN)
	b.ReportMetric(untracedNS, "untraced_ns/op")
	if untracedNS > 0 {
		b.ReportMetric((tracedNS-untracedNS)/untracedNS*100, "overhead_pct")
	}
}

// benchFederationScrape prices the router-side cost of one
// /metrics/cluster federation pass with the network peeled off: three
// realistic node expositions (captured from a warmed serve instance)
// parsed and merged — counters summed, histogram buckets merged, every
// series re-labeled with its node — per iteration. The scrape fan-out
// itself is bounded by the slowest peer, not this merge, so the merge
// is the part a baseline can hold still.
func benchFederationScrape(b *testing.B) {
	ts, bodies, stop := benchServeSetup(b, serve.Options{})
	defer stop()
	client := ts.Client()
	// Populate counters, latency histograms and cache stats so the
	// captured page has the production families, then scrape it once.
	for i := range bodies {
		servePredictOnce(b, client, ts.URL+"/v1/predict", bodies[i])
	}
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		b.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	text := string(page)
	nodes := []obs.NodeMetrics{
		{Node: "127.0.0.1:9001", Text: text},
		{Node: "127.0.0.1:9002", Text: text},
		{Node: "127.0.0.1:9003", Text: text},
	}
	b.SetBytes(int64(3 * len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs.FederateMetrics(io.Discard, nodes)
	}
}

func benchTrainBuildDB(short bool) func(b *testing.B) {
	return func(b *testing.B) {
		pair := machine.PrimaryPair()
		samples := 128
		if short {
			samples = 48
		}
		b.ResetTimer()
		var built int
		for i := 0; i < b.N; i++ {
			db := train.BuildDatabase(pair, train.Config{Samples: samples, Seed: int64(i + 1)})
			built += len(db.Samples)
		}
		b.StopTimer()
		if b.Elapsed() > 0 {
			b.ReportMetric(float64(built)/b.Elapsed().Seconds(), "samples/sec")
		}
		if built != b.N*samples {
			b.Fatalf("built %d samples, want %d", built, b.N*samples)
		}
	}
}

// benchTrainLoadDB prices the durability tax on model loads: ns/op is a
// full checksummed (HMD2) database load — every record CRC-verified and
// the sealed footer checked — while a stopped-timer reference load of
// the same samples in the legacy unchecksummed format yields
// legacy_ns/op and verify_overhead_pct. The acceptance budget is 5%.
func benchTrainLoadDB(short bool) func(b *testing.B) {
	return func(b *testing.B) {
		pair := machine.PrimaryPair()
		samples := 512
		if short {
			samples = 128
		}
		db := train.BuildDatabase(pair, train.Config{Samples: samples, Seed: 7})
		var v2, legacy bytes.Buffer
		if err := db.Save(&v2); err != nil {
			b.Fatal(err)
		}
		if err := db.SaveLegacy(&legacy); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := train.LoadDB(bytes.NewReader(v2.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if len(got.Samples) != samples {
				b.Fatalf("loaded %d samples, want %d", len(got.Samples), samples)
			}
		}
		b.StopTimer()
		v2NS := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

		refN := b.N
		if refN > 512 {
			refN = 512
		}
		if refN < 16 {
			refN = 16
		}
		start := time.Now()
		for i := 0; i < refN; i++ {
			if _, err := train.LoadDB(bytes.NewReader(legacy.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
		legacyNS := float64(time.Since(start).Nanoseconds()) / float64(refN)
		b.ReportMetric(legacyNS, "legacy_ns/op")
		if legacyNS > 0 {
			b.ReportMetric((v2NS-legacyNS)/legacyNS*100, "verify_overhead_pct")
		}
	}
}

// benchDurableWALAppend prices one feedback-journal append as the
// collector tick pays it: frame + CRC an outcome-sized payload into the
// active segment, with the batch-boundary fsync amortized over
// 16-record batches (the tick seals once per batch, not per record).
func benchDurableWALAppend(b *testing.B) {
	w, err := durable.OpenWAL(durable.WALOptions{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := make([]byte, 600) // ~ encoded Outcome size
	rng := rand.New(rand.NewSource(17))
	rng.Read(payload)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(payload); err != nil {
			b.Fatal(err)
		}
		if i%16 == 15 {
			if err := w.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchOnlineFeedbackIngest prices the serve-path cost of closing the
// learning loop: ns/op is the steady-state predict e2e with the online
// manager's feedback hook enqueueing every decision, plain_ns/op a
// matched reference run without the hook, and overhead_pct their
// relative cost. The acceptance budget is 2%: the hook is a sharded
// overwrite-oldest ring enqueue, and every expensive step (machine-model
// realization, drift accounting, retraining) happens in the background
// collector — which stays stopped here so the measurement isolates what
// the request path pays.
func benchOnlineFeedbackIngest(b *testing.B) {
	mgr := online.New(online.Options{Pair: machine.PrimaryPair(), Model: "tree"})
	hooked, hookedBodies, stopHooked := benchServeSetup(b, serve.Options{Online: mgr})
	defer stopHooked()
	plain, plainBodies, stopPlain := benchServeSetup(b, serve.Options{})
	defer stopPlain()
	hc, pc := hooked.Client(), plain.Client()

	// Warm both caches so both measurements cover the cache-hit path.
	for i := range hookedBodies {
		servePredictOnce(b, hc, hooked.URL+"/v1/predict", hookedBodies[i])
		servePredictOnce(b, pc, plain.URL+"/v1/predict", plainBodies[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		servePredictOnce(b, hc, hooked.URL+"/v1/predict", hookedBodies[i%len(hookedBodies)])
	}
	b.StopTimer()
	hookedNS := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	if got := mgr.Snapshot().Ingested; got < uint64(b.N) {
		b.Fatalf("hook enqueued %d samples, want at least %d", got, b.N)
	}

	refN := b.N
	if refN > 4096 {
		refN = 4096
	}
	if refN < 256 {
		refN = 256
	}
	start := time.Now()
	for i := 0; i < refN; i++ {
		servePredictOnce(b, pc, plain.URL+"/v1/predict", plainBodies[i%len(plainBodies)])
	}
	plainNS := float64(time.Since(start).Nanoseconds()) / float64(refN)
	b.ReportMetric(plainNS, "plain_ns/op")
	if plainNS > 0 {
		b.ReportMetric((hookedNS-plainNS)/plainNS*100, "overhead_pct")
	}
}

// benchOnlineDriftCheck prices the collector-side drift accounting per
// outcome: one Detector.Observe (family EWMA, per-cell stats, the
// consecutive-over-threshold window) plus the Drifting check the
// retrain scheduler makes. Gaps stay below threshold so the signal
// never arms and every iteration walks the same path.
func benchOnlineDriftCheck(b *testing.B) {
	det := online.NewDetector(0.1, 0.25, 16)
	pts := benchPoints(64)
	keys := make([]string, len(pts))
	for i, p := range pts {
		keys[i] = p.Features.Discretized(feature.DiscretizationStep).Key()
	}
	rng := rand.New(rand.NewSource(31))
	gaps := make([]float64, 256)
	for i := range gaps {
		gaps[i] = rng.Float64() * 0.2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Observe("tree", keys[i%len(keys)], gaps[i%len(gaps)])
		if det.Drifting("tree") {
			b.Fatal("sub-threshold gaps armed the drift signal")
		}
	}
}

// RunTarget measures one named target with testing.Benchmark and folds
// the result into a BenchResult row.
func RunTarget(t BenchTarget) (BenchResult, error) {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs() // alloc counts feed the allocs/op regression gate
		t.Run(b)
	})
	if res.N == 0 {
		return BenchResult{}, fmt.Errorf("conformance: target %s did not run (failed inside testing.Benchmark)", t.Name)
	}
	out := BenchResult{
		Name:        t.Name,
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if len(res.Extra) > 0 {
		out.Metrics = make(map[string]float64, len(res.Extra))
		for k, v := range res.Extra {
			out.Metrics[k] = v
		}
	}
	return out, nil
}
