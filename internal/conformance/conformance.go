// Package conformance is the always-on verification layer for the
// predictor stack: a differential oracle that re-checks every learner
// against the exhaustive-sweep "ideal" baseline (the paper's Section VII
// reference), a metamorphic property suite over the characterization and
// scheduling pipelines, golden pinning of the experiment-artifact shapes
// recorded in EXPERIMENTS.md, and the schema-versioned BENCH report the
// perf runner (cmd/hmbench) emits so the repository's performance
// trajectory has a regression baseline.
//
// The oracle gates (Thresholds, recorded from the seed run) and the
// metamorphic suite run in CI on every change; a predictor edit that
// silently degrades choice agreement with the sweep, or a pipeline edit
// that breaks a seeded invariant, fails the build instead of surfacing
// months later as an unexplained speedup-table shift.
package conformance

import (
	"fmt"
	"math/rand"

	"heteromap/internal/feature"
	"heteromap/internal/gen"
	"heteromap/internal/machine"
	"heteromap/internal/train"
)

// Point is one oracle evaluation point: a (B, I) characterization with
// its materialized synthetic job, exactly the form the training sweep
// scores.
type Point struct {
	// Name labels the point in reports ("grid-17", "BFS/CA").
	Name string
	// Features is the 17-dimensional characterization.
	Features feature.Vector
	// Job is the materialized work the machine model evaluates.
	Job machine.Job
}

// pointFrom materializes a (B, I) pair into an evaluation point using
// the training synthesizer, so the oracle scores predictors on the same
// job distribution the learners were fitted to.
func pointFrom(name string, b feature.BVector, iv feature.IVector, rng *rand.Rand) Point {
	combo := train.Synthesize(b, iv, rng)
	return Point{
		Name:     name,
		Features: combo.Features,
		Job:      machine.Job{Work: combo.Work, FootprintBytes: combo.Footprint},
	}
}

// GridPoints draws n seeded synthetic characterizations from the same
// (B, I) distribution as the training sweep (Table III coverage plus
// real-neighbourhood perturbations). Each point's RNG derives from the
// seed and the point index alone, so the grid is identical across runs,
// worker counts and platforms.
func GridPoints(seed int64, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		rng := rand.New(rand.NewSource(seed + int64(i)*104729))
		b := train.RandomB(rng)
		iv := train.RandomI(rng)
		pts[i] = pointFrom(fmt.Sprintf("grid-%d", i), b, iv, rng)
	}
	return pts
}

// TableIPoints pairs catalog B characterizations with the nine Table I
// input analogs' declared I vectors — the paper's 81 benchmark-input
// combinations in characterization space. benches selects a subset of
// benchmark names (nil: all nine catalog rows).
func TableIPoints(seed int64, benches []string) ([]Point, error) {
	if benches == nil {
		benches = []string{
			"SSSP-BF", "SSSP-Delta", "BFS", "DFS", "PageRank",
			"PageRank-DP", "Tri.Cnt", "Comm", "Conn.Comp",
		}
	}
	datasets := gen.TableICached(gen.Small)
	var pts []Point
	for _, bench := range benches {
		b, err := feature.Catalog(bench)
		if err != nil {
			return nil, err
		}
		for _, ds := range datasets {
			iv := feature.IFromDeclared(ds.Declared)
			rng := rand.New(rand.NewSource(seed + int64(len(pts))*15485863))
			pts = append(pts, pointFrom(bench+"/"+ds.Short, b, iv, rng))
		}
	}
	return pts, nil
}
