package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/obs"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/predict/nn"
	"heteromap/internal/serve"
	"heteromap/internal/train"
)

// The differential fastpath suite: the serve layer's optimized paths —
// the cache-hit fast path that answers before the batcher, the
// in-process PredictCached entry point, and batch-native NN inference —
// must be observationally identical to the slow reference paths they
// shortcut. Every test here compares an optimized answer byte-for-byte
// (via canonical JSON) against the unoptimized one and against the
// registry-direct core Select, so a fast path that drifts by even one
// ULP or one provenance field fails the build.

// postPredict issues one in-process /v1/predict and decodes the answer.
func postPredict(t testing.TB, h http.Handler, body []byte) serve.PredictResponse {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict returned %d: %s", rec.Code, rec.Body.String())
	}
	var resp serve.PredictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad predict response: %v", err)
	}
	return resp
}

// mustJSON canonicalizes a value for byte comparison.
func mustJSON(t testing.TB, v any) string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// explainRecords fetches the provenance records for one trace.
func explainRecords(t *testing.T, h http.Handler, traceID string) []obs.Provenance {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/explain/"+traceID, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain %s returned %d: %s", traceID, rec.Code, rec.Body.String())
	}
	var body struct {
		TraceID     string           `json:"trace_id"`
		Predictions []obs.Provenance `json:"predictions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad explain response: %v", err)
	}
	return body.Predictions
}

// TestFastPathMatchesBatcherPath drives every grid point through the
// slow path (cold cache -> batcher -> inference) and then the cache-hit
// fast path, and requires the two answers to be byte-identical in every
// semantic field: M, key, predictor, model identity — and identical to
// the registry-direct chain Select the serve layer wraps. Explain
// provenance for the warm request must match the cold one's in all
// decision fields (only trace id, cached flag and timestamp may differ).
func TestFastPathMatchesBatcherPath(t *testing.T) {
	pair := machine.PrimaryPair()
	s := serve.New(serve.Options{Pair: pair})
	defer s.Shutdown(context.Background())
	if _, err := s.Registry().Register("tree", "fastpath", dtree.New(pair.Limits())); err != nil {
		t.Fatal(err)
	}
	mod, err := s.Registry().Get("tree")
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	for _, p := range GridPoints(4242, 24) {
		f := p.Features.Discretized(feature.DiscretizationStep)
		body, err := json.Marshal(serve.PredictRequest{Model: "tree", Features: f[:]})
		if err != nil {
			t.Fatal(err)
		}
		cold := postPredict(t, h, body)
		warm := postPredict(t, h, body)

		if cold.Cached {
			t.Fatalf("%s: first request answered from cache", p.Name)
		}
		if !warm.Cached {
			t.Fatalf("%s: second request missed the cache", p.Name)
		}
		if got, want := mustJSON(t, warm.M), mustJSON(t, cold.M); got != want {
			t.Fatalf("%s: fast-path M drifted: %s != %s", p.Name, got, want)
		}
		if warm.Key != cold.Key || warm.PredictorUsed != cold.PredictorUsed ||
			warm.Model != cold.Model || warm.Version != cold.Version {
			t.Fatalf("%s: fast-path identity drifted: %+v != %+v", p.Name, warm, cold)
		}
		// Both must equal the core chain answer on the same snapshot.
		if got, want := mustJSON(t, cold.M), mustJSON(t, mod.Select(f).M); got != want {
			t.Fatalf("%s: served M %s != core Select %s", p.Name, got, want)
		}

		// The in-process fast path agrees with the HTTP one.
		m, used, version, ok := s.PredictCached("tree", f)
		if !ok {
			t.Fatalf("%s: PredictCached missed a warmed key", p.Name)
		}
		if got, want := mustJSON(t, m), mustJSON(t, warm.M); got != want || used != warm.PredictorUsed || version != warm.Version {
			t.Fatalf("%s: PredictCached = (%s, %s, %d), HTTP warm = (%s, %s, %d)",
				p.Name, got, used, version, want, warm.PredictorUsed, warm.Version)
		}

		// Explain provenance: the warm record differs from the cold one
		// only in trace id, the cached flag and the timestamp.
		coldProv := explainRecords(t, h, cold.TraceID)
		warmProv := explainRecords(t, h, warm.TraceID)
		if len(coldProv) != 1 || len(warmProv) != 1 {
			t.Fatalf("%s: provenance records cold=%d warm=%d, want 1 each",
				p.Name, len(coldProv), len(warmProv))
		}
		cp, wp := coldProv[0], warmProv[0]
		if !wp.Cached || cp.Cached {
			t.Fatalf("%s: provenance cached flags cold=%v warm=%v", p.Name, cp.Cached, wp.Cached)
		}
		cp.TraceID, wp.TraceID = "", ""
		cp.Cached, wp.Cached = false, false
		cp.When = wp.When
		if got, want := mustJSON(t, wp), mustJSON(t, cp); got != want {
			t.Fatalf("%s: fast-path provenance drifted:\n%s\n%s", p.Name, got, want)
		}
	}
}

// TestBatchNativeNNMatchesPerItem registers the same trained network on
// two servers and answers the same characterizations once as a cold
// /v1/predict/batch (the batch-native single-pass inference) and once
// as sequential cold single-shot requests (per-item inference). Every
// positional answer must be byte-identical across the two, and equal to
// the registry-direct Select — batching may change latency, never
// results.
func TestBatchNativeNNMatchesPerItem(t *testing.T) {
	pair := machine.PrimaryPair()
	db := train.BuildDatabase(pair, train.Config{Samples: 64, Seed: 7})
	net := nn.New(pair.Limits(), nn.Options{Hidden: 32, Epochs: 3, Seed: 7})
	if err := net.Train(db.Samples); err != nil {
		t.Fatal(err)
	}

	batchSrv := serve.New(serve.Options{Pair: pair})
	defer batchSrv.Shutdown(context.Background())
	itemSrv := serve.New(serve.Options{Pair: pair})
	defer itemSrv.Shutdown(context.Background())
	for _, s := range []*serve.Server{batchSrv, itemSrv} {
		if _, err := s.Registry().Register("nn", "fastpath", net); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := itemSrv.Registry().Get("nn")
	if err != nil {
		t.Fatal(err)
	}

	pts := GridPoints(90210, 12)
	var batch serve.BatchRequest
	feats := make([]feature.Vector, len(pts))
	for i, p := range pts {
		feats[i] = p.Features.Discretized(feature.DiscretizationStep)
		batch.Requests = append(batch.Requests,
			serve.PredictRequest{Model: "nn", Features: feats[i][:]})
	}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/predict/batch", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	batchSrv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch predict returned %d: %s", rec.Code, rec.Body.String())
	}
	var got serve.BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Responses) != len(pts) {
		t.Fatalf("batch answered %d of %d requests", len(got.Responses), len(pts))
	}

	ih := itemSrv.Handler()
	for i := range pts {
		if got.Responses[i].Error != "" {
			t.Fatalf("batch row %d errored: %s", i, got.Responses[i].Error)
		}
		single, err := json.Marshal(batch.Requests[i])
		if err != nil {
			t.Fatal(err)
		}
		item := postPredict(t, ih, single)
		bm, im := mustJSON(t, got.Responses[i].M), mustJSON(t, item.M)
		if bm != im {
			t.Fatalf("row %d: batch-native M %s != per-item M %s", i, bm, im)
		}
		if got.Responses[i].Key != item.Key || got.Responses[i].PredictorUsed != item.PredictorUsed {
			t.Fatalf("row %d: batch identity (%s, %s) != per-item (%s, %s)", i,
				got.Responses[i].Key, got.Responses[i].PredictorUsed, item.Key, item.PredictorUsed)
		}
		if want := mustJSON(t, ref.Select(feats[i]).M); bm != want {
			t.Fatalf("row %d: batch-native M %s != core Select %s", i, bm, want)
		}
	}
}

// TestFastPathStableUnderConcurrentReload hammers the predict path
// (alternating cold misses and fast-path hits) while another goroutine
// hot-swaps the model, and requires every single answer to carry the
// semantics of SOME registered snapshot — here all snapshots are the
// analytical tree, so every answer must equal the tree's. Run under
// -race in CI, this pins the fast path's lock discipline: a torn read
// of the model snapshot or the cache shard would either trip the
// detector or serve a mongrel answer.
func TestFastPathStableUnderConcurrentReload(t *testing.T) {
	pair := machine.PrimaryPair()
	s := serve.New(serve.Options{Pair: pair})
	defer s.Shutdown(context.Background())
	if _, err := s.Registry().Register("live", "v0", dtree.New(pair.Limits())); err != nil {
		t.Fatal(err)
	}
	ref, err := s.Registry().Get("live")
	if err != nil {
		t.Fatal(err)
	}

	pts := GridPoints(777, 8)
	bodies := make([][]byte, len(pts))
	wants := make([]string, len(pts))
	for i, p := range pts {
		f := p.Features.Discretized(feature.DiscretizationStep)
		var err error
		if bodies[i], err = json.Marshal(serve.PredictRequest{Model: "live", Features: f[:]}); err != nil {
			t.Fatal(err)
		}
		wants[i] = mustJSON(t, ref.Select(f).M)
	}

	h := s.Handler()
	const (
		readers = 4
		laps    = 30
		reloads = 40
	)
	// postOne is the goroutine-safe predict: all failures flow back as
	// errors (t.Fatal is owned by the test goroutine).
	postOne := func(body []byte) (serve.PredictResponse, error) {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var resp serve.PredictResponse
		if rec.Code != http.StatusOK {
			return resp, fmt.Errorf("predict returned %d: %s", rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			return resp, fmt.Errorf("bad predict response: %w", err)
		}
		return resp, nil
	}
	var wg sync.WaitGroup
	errc := make(chan error, readers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			if _, err := s.Registry().Register("live", fmt.Sprintf("v%d", i+1), dtree.New(pair.Limits())); err != nil {
				errc <- err
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for lap := 0; lap < laps; lap++ {
				for i := range bodies {
					resp, err := postOne(bodies[i])
					if err != nil {
						errc <- fmt.Errorf("reader %d: %w", r, err)
						return
					}
					buf, err := json.Marshal(resp.M)
					if err != nil {
						errc <- err
						return
					}
					if got := string(buf); got != wants[i] {
						errc <- fmt.Errorf("reader %d: point %d served %s, want %s (version %d, cached %v)",
							r, i, got, wants[i], resp.Version, resp.Cached)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
