package conformance

// Golden pinning of the hmexp artifacts the paper narrates in prose:
// who wins where (Fig 1), what the decision tree selects (Fig 7) and
// how the learners order (Table IV), all under the deterministic fast
// context. The golden file stores rendered strings (floats at %.6g) so
// a drift in any headline number is a reviewed diff, not a silent
// change:
//
//	go test ./internal/conformance/ -run Golden -update
//
// regenerates internal/conformance/testdata/golden_fastctx.json.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/experiments"
	"heteromap/internal/machine"
	"heteromap/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fastGolden is the pinned shape of the fast-context artifact suite.
type fastGolden struct {
	// Fig1Winners maps input name to "<accel> by <factor>x".
	Fig1Winners map[string]string `json:"fig1_winners"`
	// Fig7Rows maps benchmark to "<accel> gap=<pct>% M=<machine vector>".
	Fig7Rows map[string]string `json:"fig7_rows"`
	// Table4Best is the highest-speedup learner.
	Table4Best string `json:"table4_best"`
	// Table4Order lists learners best-first by speedup.
	Table4Order []string `json:"table4_order"`
	// Table4Rows maps learner to "speedup=<pct>% accuracy=<pct>%". The
	// speedup here strips the measured (wall-clock, hence nondeterministic)
	// inference overhead that Table4 itself folds into TotalSeconds, so the
	// golden stays byte-stable across machines.
	Table4Rows map[string]string `json:"table4_rows"`
}

func goldenPath() string {
	return filepath.Join("testdata", "golden_fastctx.json")
}

func computeFastGolden(t *testing.T) fastGolden {
	t.Helper()
	c := experiments.NewFastContext()

	g := fastGolden{
		Fig1Winners: map[string]string{},
		Fig7Rows:    map[string]string{},
		Table4Rows:  map[string]string{},
	}

	fig1, err := experiments.Fig1(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range fig1.Graphs {
		g.Fig1Winners[gr.Input] = fmt.Sprintf("%s by %.6gx", gr.Winner, gr.Factor)
	}

	fig7, err := experiments.Fig7(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig7.Rows {
		g.Fig7Rows[row.Benchmark] = fmt.Sprintf("%s gap=%.6g%% M=%s",
			row.SelectedAccel, row.GapPct, row.SelectedM)
	}

	// Table IV learner comparison, recomputed overhead-free (see the
	// Table4Rows field comment): simulated seconds and choice accuracy per
	// learner against the cached ideal baselines.
	ws, err := c.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	pair := machine.PrimaryPair()
	limits := pair.Limits()
	gpuTimes := make([]float64, len(ws))
	idealM := make([]config.M, len(ws))
	for i, w := range ws {
		bl := c.Baselines(pair, w, core.Performance)
		gpuTimes[i] = bl.GPUOnly.Seconds
		idealM[i] = bl.IdealM
	}
	gpuGeo := stats.MustGeomean(gpuTimes)

	type t4row struct {
		learner           string
		speedup, accuracy float64
	}
	var rows []t4row
	for _, name := range experiments.TableIVLearners() {
		sys, err := c.System(pair, core.Performance, name)
		if err != nil {
			t.Fatal(err)
		}
		times := make([]float64, len(ws))
		var accSum float64
		for i, w := range ws {
			rep := sys.Run(w)
			times[i] = rep.Machine.Seconds
			accSum += config.ChoiceAccuracy(rep.Chosen, idealM[i], limits)
		}
		rows = append(rows, t4row{
			learner:  name,
			speedup:  (gpuGeo/stats.MustGeomean(times) - 1) * 100,
			accuracy: accSum / float64(len(ws)) * 100,
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].speedup > rows[j].speedup })
	g.Table4Best = rows[0].learner
	for _, row := range rows {
		g.Table4Order = append(g.Table4Order, row.learner)
		g.Table4Rows[row.learner] = fmt.Sprintf("speedup=%.6g%% accuracy=%.6g%%",
			row.speedup, row.accuracy)
	}
	return g
}

// TestGoldenFastContextArtifacts regenerates the fast-context artifact
// suite and compares it field-for-field against the committed golden.
func TestGoldenFastContextArtifacts(t *testing.T) {
	got := computeFastGolden(t)

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath())
		return
	}

	buf, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var want fastGolden
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Fatalf("fast-context artifacts drifted from golden (rerun with -update "+
			"after reviewing the diff):\ngot:\n%s\nwant:\n%s", gotJSON, buf)
	}

	// The golden itself must keep telling the paper's story, whatever the
	// exact numbers: the multicore wins the sparse road network (Fig 1),
	// and network capacity pays off in Table IV (Deep.128 above Deep.16;
	// the paper's full-scale run crowns Deep.128 outright, the fast
	// context keeps at least the capacity ordering).
	if winner := want.Fig1Winners["CA"]; winner == "" || winner[:4] == "GTX-" {
		t.Errorf("golden Fig1 CA winner %q contradicts the paper (Xeon Phi wins)", winner)
	}
	if len(want.Table4Order) != len(experiments.TableIVLearners()) {
		t.Errorf("golden Table IV order has %d learners, want %d",
			len(want.Table4Order), len(experiments.TableIVLearners()))
	}
	rank := map[string]int{}
	for i, name := range want.Table4Order {
		rank[name] = i
	}
	if rank[experiments.LearnerDeep128] > rank[experiments.LearnerDeep16] {
		t.Errorf("golden Table IV ranks Deep.128 (#%d) below Deep.16 (#%d)",
			rank[experiments.LearnerDeep128], rank[experiments.LearnerDeep16])
	}
}
