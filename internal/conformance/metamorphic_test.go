package conformance

// The metamorphic property suite: seeded invariants of the
// characterization and scheduling pipelines that must hold for EVERY
// input, not just the fixtures the unit tests pin. Each property names
// the transformation and the invariant it must preserve; a violation
// prints the seed so the failing case replays deterministically.

import (
	"math"
	"math/rand"
	"testing"

	"heteromap/internal/algo"
	"heteromap/internal/core"
	"heteromap/internal/fault"
	"heteromap/internal/feature"
	"heteromap/internal/gen"
	"heteromap/internal/graph"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/sched"
	"heteromap/internal/stats"
)

// Property: Discretized is idempotent — snapping a snapped vector is a
// no-op — and every output component lands on the step grid inside
// [0, 1], even for raw inputs far outside the normalized range.
func TestDiscretizedIdempotentAndOnGrid(t *testing.T) {
	const step = feature.DiscretizationStep
	rng := rand.New(rand.NewSource(271828))
	for trial := 0; trial < 2000; trial++ {
		var v feature.Vector
		for i := range v {
			switch rng.Intn(4) {
			case 0: // in range
				v[i] = rng.Float64()
			case 1: // negative
				v[i] = -rng.Float64() * 10
			case 2: // above 1
				v[i] = 1 + rng.Float64()*10
			default: // near a bin boundary, where rounding bugs live
				v[i] = stats.Discretize(rng.Float64(), step) + (rng.Float64()-0.5)*1e-9
			}
		}
		once := v.Discretized(step)
		twice := once.Discretized(step)
		if once != twice {
			t.Fatalf("trial %d: Discretized not idempotent:\nin    %v\nonce  %v\ntwice %v",
				trial, v, once, twice)
		}
		for i, x := range once {
			if x < 0 || x > 1 {
				t.Fatalf("trial %d: component %d = %g outside [0,1] (in %g)", trial, i, x, v[i])
			}
			if snapped := stats.Discretize(x, step); math.Abs(snapped-x) > 1e-12 {
				t.Fatalf("trial %d: component %d = %g not on the %g grid", trial, i, x, step)
			}
		}
	}
}

// Property: Key/ParseKey composed with Discretized round-trips exactly —
// the serve cache key is a bijection on the discretized grid.
func TestKeyRoundTripComposesWithDiscretized(t *testing.T) {
	rng := rand.New(rand.NewSource(314159))
	for trial := 0; trial < 2000; trial++ {
		var v feature.Vector
		for i := range v {
			v[i] = rng.Float64() * 1.5 // includes out-of-range raw values
		}
		d := v.Discretized(feature.DiscretizationStep)
		back, err := feature.ParseKey(d.Key())
		if err != nil {
			t.Fatalf("trial %d: ParseKey(%q): %v", trial, d.Key(), err)
		}
		if back != d {
			t.Fatalf("trial %d: round trip changed the vector:\nd    %v\nback %v", trial, d, back)
		}
		if back.Discretized(feature.DiscretizationStep) != back {
			t.Fatalf("trial %d: parsed key not a fixed point of Discretized", trial)
		}
	}
}

// Property: the I characterization of a graph is invariant under
// edge-list permutation — the order edges arrive in changes nothing
// about the structure the predictor sees.
func TestIVariablesPermutationInvariant(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(400)
		edges := make([]graph.Edge, 0, n*4)
		for i := 0; i < n*4; i++ {
			edges = append(edges, graph.Edge{
				Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n)), Weight: 1,
			})
		}
		build := func(es []graph.Edge) feature.IVector {
			g, err := graph.FromEdges("perm", n, es, true, false)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return feature.IFromGraph(g)
		}
		want := build(edges)
		for p := 0; p < 3; p++ {
			shuffled := append([]graph.Edge(nil), edges...)
			rand.New(rand.NewSource(seed+int64(p)*101)).Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			if got := build(shuffled); got != want {
				t.Fatalf("seed %d perm %d: I changed under edge permutation: %v vs %v",
					seed, p, got, want)
			}
		}
	}
}

// metamorphicWorkloads characterizes a small real batch for the
// scheduling properties below.
func metamorphicWorkloads(t *testing.T) (machine.Pair, []*core.Workload) {
	t.Helper()
	pair := machine.PrimaryPair()
	datasets := gen.TableICached(gen.Small)[:3]
	var ws []*core.Workload
	for _, name := range []string{"BFS", "SSSP-BF"} {
		b, err := algo.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, ds := range datasets {
			w, err := core.Characterize(b, ds)
			if err != nil {
				t.Fatal(err)
			}
			ws = append(ws, w)
		}
	}
	return pair, ws
}

// Property: with circuit breakers pinned closed, the resilient batch
// makespan is non-decreasing in the injected fault rate — more faults
// can never make the honest accounting faster. Swept densely here (the
// sched package pins the coarse 0/0.1/0.3 acceptance case).
func TestMakespanMonotoneInFaultRate(t *testing.T) {
	pair, ws := metamorphicWorkloads(t)
	tree := dtree.New(pair.Limits())
	pol := fault.DefaultPolicy()
	pol.BreakerThreshold = 1 << 30 // an opening breaker may legally shorten the plan
	for _, seed := range []int64{3, 17} {
		prev := -1.0
		prevRate := 0.0
		for _, rate := range []float64{0, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5} {
			var inj *fault.Injector
			if rate > 0 {
				inj = fault.NewChaosInjector(seed, rate)
			}
			plan := sched.AssignResilient(pair, tree, ws, inj, pol)
			if plan.Incomplete != 0 {
				t.Fatalf("seed %d rate %v: %d jobs lost", seed, rate, plan.Incomplete)
			}
			if plan.Makespan < prev {
				t.Fatalf("seed %d: makespan decreased %.4g@rate=%v -> %.4g@rate=%v",
					seed, prev, prevRate, plan.Makespan, rate)
			}
			prev, prevRate = plan.Makespan, rate
		}
	}
}

// Property: a zero-rate injector is indistinguishable from no injector.
func TestZeroFaultRateIsIdentity(t *testing.T) {
	pair, ws := metamorphicWorkloads(t)
	tree := dtree.New(pair.Limits())
	pol := fault.DefaultPolicy()
	base := sched.AssignResilient(pair, tree, ws, nil, pol)
	zero := sched.AssignResilient(pair, tree, ws, fault.NewChaosInjector(5, 0), pol)
	if base.Makespan != zero.Makespan || base.Retries != zero.Retries ||
		base.Failovers != zero.Failovers {
		t.Fatalf("zero-rate injector changed the plan: %+v vs %+v", zero, base)
	}
}
