package conformance

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"heteromap/internal/config"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
	"heteromap/internal/predict/adaptive"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/predict/nn"
	"heteromap/internal/predict/regress"
	"heteromap/internal/train"
	"heteromap/internal/tune"
)

// Learner names the oracle reports under — the Table IV rows the paper
// compares. They match experiments.TableIVLearners for the shared set.
const (
	LearnerTree     = "Decision Tree"
	LearnerLinear   = "Linear Regression"
	LearnerMulti    = "Multi Regression"
	LearnerAdaptive = "Adaptive Library"
	LearnerDeep16   = "Deep.16"
	LearnerDeep32   = "Deep.32"
	LearnerDeep64   = "Deep.64"
	LearnerDeep128  = "Deep.128"
)

// OracleLearners lists every learner the differential oracle gates, in
// report order.
func OracleLearners() []string {
	return []string{
		LearnerTree, LearnerLinear, LearnerMulti, LearnerAdaptive,
		LearnerDeep16, LearnerDeep32, LearnerDeep64, LearnerDeep128,
	}
}

// OracleConfig sizes one differential-oracle run. The zero value is not
// runnable; use ShortOracleConfig or FullOracleConfig.
type OracleConfig struct {
	// Seed fixes the synthetic grid, the training database and the
	// learner initializations, making the whole run reproducible.
	Seed int64
	// GridPoints is the synthetic (B, I) grid size.
	GridPoints int
	// TableIBenches selects which catalog benchmarks to pair with the
	// nine Table I inputs (nil: all nine; empty non-nil slice: none).
	TableIBenches []string
	// TrainSamples sizes the offline database the trained learners fit.
	TrainSamples int
	// NNEpochs bounds neural network training.
	NNEpochs int
	// Objective selects the optimization target of both the sweep and
	// the learners.
	Objective train.Objective
	// Learners restricts the run to a subset (nil: OracleLearners()).
	Learners []string
}

// ShortOracleConfig is the CI / -short configuration: small grid, three
// benchmark families, the fast training size.
func ShortOracleConfig() OracleConfig {
	return OracleConfig{
		Seed:          42,
		GridPoints:    32,
		TableIBenches: []string{"SSSP-BF", "BFS", "PageRank"},
		TrainSamples:  300,
		NNEpochs:      25,
	}
}

// FullOracleConfig is the full conformance run: a denser grid and all
// nine Table I benchmark families at the default training size.
func FullOracleConfig() OracleConfig {
	return OracleConfig{
		Seed:         42,
		GridPoints:   128,
		TrainSamples: 3000,
		NNEpochs:     0, // learner default
	}
}

// GapStats summarizes a cost-gap distribution. Gaps are relative:
// cost(predicted M) / cost(exhaustive best M) - 1, so 0 means the
// prediction deploys exactly as fast as the ideal sweep choice.
type GapStats struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	Max  float64 `json:"max"`
}

// LearnerReport is one learner's agreement with the exhaustive oracle.
type LearnerReport struct {
	Learner string `json:"learner"`
	Points  int    `json:"points"`
	// AccelAgreement is the fraction of points whose inter-accelerator
	// choice (M1) matches the exhaustive best — the paper's headline
	// "choice selection" signal.
	AccelAgreement float64 `json:"accel_agreement"`
	// ChoiceAccuracy is the mean per-variable agreement over all twenty
	// choices (config.ChoiceAccuracy against the sweep winner).
	ChoiceAccuracy float64 `json:"choice_accuracy"`
	// CostGap is the distribution of deployed-cost excess over ideal.
	CostGap GapStats `json:"cost_gap"`
}

// OracleReport is the outcome of one differential-oracle run.
type OracleReport struct {
	SchemaVersion int             `json:"schema_version"`
	Seed          int64           `json:"seed"`
	GridPoints    int             `json:"grid_points"`
	TableIPoints  int             `json:"table1_points"`
	Pair          string          `json:"pair"`
	Objective     string          `json:"objective"`
	Learners      []LearnerReport `json:"learners"`
}

// OracleSchemaVersion tags serialized oracle reports.
const OracleSchemaVersion = 1

// Learner returns the report row for a learner name, or a zero row.
func (r OracleReport) Learner(name string) LearnerReport {
	for _, l := range r.Learners {
		if l.Learner == name {
			return l
		}
	}
	return LearnerReport{}
}

// String renders the report as the fixed-width table hmbench prints.
func (r OracleReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "differential oracle: %d grid + %d Table-I points, pair %s, objective %s\n",
		r.GridPoints, r.TableIPoints, r.Pair, r.Objective)
	fmt.Fprintf(&sb, "%-18s %8s %8s %8s %8s %8s %8s\n",
		"learner", "M1-agree", "choices", "gapMean", "gapP50", "gapP95", "gapMax")
	for _, l := range r.Learners {
		fmt.Fprintf(&sb, "%-18s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			l.Learner, l.AccelAgreement*100, l.ChoiceAccuracy*100,
			l.CostGap.Mean*100, l.CostGap.P50*100, l.CostGap.P95*100, l.CostGap.Max*100)
	}
	return sb.String()
}

// newLearner constructs (and trains, where needed) one oracle learner.
func newLearner(name string, limits config.Limits, db *train.DB, cfg OracleConfig) (predict.Predictor, error) {
	var trainable predict.Trainable
	switch name {
	case LearnerTree:
		return dtree.New(limits), nil
	case LearnerLinear:
		trainable = regress.NewLinear(limits)
	case LearnerMulti:
		trainable = regress.NewMulti(limits)
	case LearnerAdaptive:
		trainable = adaptive.New(limits)
	case LearnerDeep16, LearnerDeep32, LearnerDeep64, LearnerDeep128:
		hidden := map[string]int{
			LearnerDeep16: 16, LearnerDeep32: 32,
			LearnerDeep64: 64, LearnerDeep128: 128,
		}[name]
		trainable = nn.New(limits, nn.Options{Hidden: hidden, Epochs: cfg.NNEpochs, Seed: cfg.Seed})
	default:
		return nil, fmt.Errorf("conformance: unknown learner %q", name)
	}
	if err := trainable.Train(db.Samples); err != nil {
		return nil, fmt.Errorf("conformance: train %s: %w", name, err)
	}
	return trainable, nil
}

// RunOracle executes the differential oracle on an accelerator pair:
// for every seeded grid point and Table I analog it sweeps the full
// candidate space exhaustively (the "ideal" baseline that "manually
// optimizes by running all possible configurations"), then scores each
// learner's prediction against the sweep winner.
func RunOracle(pair machine.Pair, cfg OracleConfig) (OracleReport, error) {
	limits := pair.Limits()
	pts := GridPoints(cfg.Seed, cfg.GridPoints)
	gridN := len(pts)
	t1, err := TableIPoints(cfg.Seed+1, cfg.TableIBenches)
	if err != nil {
		return OracleReport{}, err
	}
	pts = append(pts, t1...)
	if len(pts) == 0 {
		return OracleReport{}, fmt.Errorf("conformance: oracle has no evaluation points")
	}

	// Exhaustive references, one sweep per point, fanned out over a
	// worker pool (the per-point sweep is serial; see tune).
	cands := config.Enumerate(limits)
	refs := make([]tune.Result, len(pts))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pts) {
		workers = len(pts)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(pts) {
					return
				}
				job := pts[i].Job
				refs[i] = tune.ExhaustiveSerial(cands, func(m config.M) float64 {
					return train.Metric(pair, cfg.Objective, job, m)
				})
			}
		}()
	}
	wg.Wait()

	// One shared training database for every trained learner, exactly
	// as the experiment harness builds it.
	db := train.BuildDatabase(pair, train.Config{
		Samples: cfg.TrainSamples, Seed: cfg.Seed, Objective: cfg.Objective,
	})

	learners := cfg.Learners
	if learners == nil {
		learners = OracleLearners()
	}
	rep := OracleReport{
		SchemaVersion: OracleSchemaVersion,
		Seed:          cfg.Seed,
		GridPoints:    gridN,
		TableIPoints:  len(t1),
		Pair:          pair.Name(),
		Objective:     cfg.Objective.String(),
	}
	for _, name := range learners {
		p, err := newLearner(name, limits, db, cfg)
		if err != nil {
			return rep, err
		}
		var agree, accSum float64
		gaps := make([]float64, len(pts))
		for i := range pts {
			m := p.Predict(pts[i].Features)
			if m.Accelerator == refs[i].Best.Accelerator {
				agree++
			}
			accSum += config.ChoiceAccuracy(m, refs[i].Best, limits)
			cost := train.Metric(pair, cfg.Objective, pts[i].Job, m)
			if refs[i].Score > 0 {
				gaps[i] = cost/refs[i].Score - 1
			}
		}
		rep.Learners = append(rep.Learners, LearnerReport{
			Learner:        name,
			Points:         len(pts),
			AccelAgreement: agree / float64(len(pts)),
			ChoiceAccuracy: accSum / float64(len(pts)),
			CostGap:        gapStats(gaps),
		})
	}
	return rep, nil
}

// gapStats summarizes a gap sample (not mutated; sorted copy).
func gapStats(gaps []float64) GapStats {
	if len(gaps) == 0 {
		return GapStats{}
	}
	s := append([]float64(nil), gaps...)
	sort.Float64s(s)
	var sum float64
	for _, g := range s {
		sum += g
	}
	pct := func(p float64) float64 {
		if len(s) == 0 {
			return 0
		}
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return GapStats{
		Mean: sum / float64(len(s)),
		P50:  pct(0.50),
		P95:  pct(0.95),
		Max:  s[len(s)-1],
	}
}
