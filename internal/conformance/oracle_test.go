package conformance

import (
	"strings"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/machine"
	"heteromap/internal/train"
	"heteromap/internal/tune"
)

// The CI conformance gate: the short differential-oracle run must stay
// within the thresholds recorded from the seed run. A predictor change
// that drops a learner's agreement with the exhaustive sweep below its
// recorded floor fails here, not in a quarterly reproduction run.
func TestOracleGatesAgainstSeedThresholds(t *testing.T) {
	rep, err := RunOracle(machine.PrimaryPair(), ShortOracleConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep)
	if err := rep.Gate(SeedThresholds); err != nil {
		t.Errorf("conformance gate violated:\n%v", err)
	}
	if len(rep.Learners) != len(OracleLearners()) {
		t.Fatalf("report covers %d learners, want %d", len(rep.Learners), len(OracleLearners()))
	}
	for _, l := range rep.Learners {
		if _, ok := SeedThresholds[l.Learner]; !ok {
			t.Errorf("learner %q has no recorded threshold — record one from a seed run", l.Learner)
		}
	}
}

// The oracle's evaluation points must be a pure function of the seed:
// same seed, same grid, same jobs — otherwise the gates drift between
// CI runs and threshold violations stop being attributable.
func TestOraclePointsDeterministic(t *testing.T) {
	a := GridPoints(7, 16)
	b := GridPoints(7, 16)
	if len(a) != 16 {
		t.Fatalf("got %d points", len(a))
	}
	for i := range a {
		if a[i].Features != b[i].Features {
			t.Fatalf("point %d features differ between identical seeds", i)
		}
		if a[i].Job.Work.Iterations != b[i].Job.Work.Iterations ||
			len(a[i].Job.Work.Phases) != len(b[i].Job.Work.Phases) {
			t.Fatalf("point %d job differs between identical seeds", i)
		}
	}
	c := GridPoints(8, 16)
	same := 0
	for i := range a {
		if a[i].Features == c[i].Features {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical grid")
	}
}

// Table I points must cover benches x nine inputs with the catalog B
// rows attached unchanged.
func TestTableIPoints(t *testing.T) {
	pts, err := TableIPoints(1, []string{"BFS", "PageRank"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 18 {
		t.Fatalf("got %d points, want 18", len(pts))
	}
	if !strings.HasPrefix(pts[0].Name, "BFS/") {
		t.Fatalf("unexpected point name %q", pts[0].Name)
	}
	if _, err := TableIPoints(1, []string{"no-such-bench"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// A learner that returns the exhaustive winner must score perfectly —
// the oracle's scoring itself is checked against a known-good subject.
func TestOracleScoresPerfectPredictorAtCeiling(t *testing.T) {
	pair := machine.PrimaryPair()
	limits := pair.Limits()
	cands := config.Enumerate(limits)
	pts := GridPoints(3, 8)
	for i := range pts {
		best := tune.ExhaustiveSerial(cands, func(m config.M) float64 {
			return train.Metric(pair, train.Performance, pts[i].Job, m)
		})
		cost := train.Metric(pair, train.Performance, pts[i].Job, best.Best)
		if cost != best.Score {
			t.Fatalf("point %d: re-evaluating the winner gives %g, sweep scored %g", i, cost, best.Score)
		}
	}
}

func TestGateReportsViolations(t *testing.T) {
	rep := OracleReport{Learners: []LearnerReport{
		{Learner: LearnerTree, AccelAgreement: 0.10, ChoiceAccuracy: 0.10,
			CostGap: GapStats{Mean: 9, P95: 9}},
		{Learner: "unknown", AccelAgreement: 0},
	}}
	err := rep.Gate(SeedThresholds)
	if err == nil {
		t.Fatal("degenerate report passed the gate")
	}
	for _, want := range []string{"M1 agreement", "choice accuracy", "mean cost gap", "p95 cost gap"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error missing %q violation:\n%v", want, err)
		}
	}
}
