package conformance

import (
	"errors"
	"fmt"
)

// Threshold is one learner's conformance floor: the oracle run must
// report at least MinAccelAgreement and MinChoiceAccuracy and at most
// MaxMeanGap / MaxP95Gap, or the gate fails.
type Threshold struct {
	MinAccelAgreement float64
	MinChoiceAccuracy float64
	MaxMeanGap        float64
	MaxP95Gap         float64
}

// SeedThresholds are the hard gates recorded from the seed conformance
// run (ShortOracleConfig, seed 42, primary pair — the run committed
// alongside this file; see EXPERIMENTS.md "Continuous conformance").
// Each floor sits one safety margin below the recorded value so that
// benign refactors pass while a real predictor regression — a tree-rule
// edit that flips decisions, a training change that stops converging —
// fails loudly. Raise a floor only with a recorded run justifying it.
var SeedThresholds = map[string]Threshold{
	// Recorded: agree 67.8%, choices 73.4%, gapMean 50.4%, gapP95 79.9%.
	// The tree's mean gap is inflated by a single pathological grid
	// point (max ~20x); the P50 is 5.4%.
	LearnerTree: {MinAccelAgreement: 0.60, MinChoiceAccuracy: 0.68, MaxMeanGap: 0.70, MaxP95Gap: 1.20},
	// Recorded: 69.5% / 77.2% / 25.3% / 131.7%.
	LearnerLinear: {MinAccelAgreement: 0.60, MinChoiceAccuracy: 0.70, MaxMeanGap: 0.45, MaxP95Gap: 2.00},
	// Recorded: 78.0% / 83.0% / 20.6% / 135.8%.
	LearnerMulti: {MinAccelAgreement: 0.70, MinChoiceAccuracy: 0.76, MaxMeanGap: 0.40, MaxP95Gap: 2.00},
	// Recorded: 35.6% / 75.5% / 66.8% / 134.8% — the adaptive library
	// is the weak Table IV baseline by design; the gate only pins its
	// recorded envelope so it cannot silently become the default.
	LearnerAdaptive: {MinAccelAgreement: 0.28, MinChoiceAccuracy: 0.68, MaxMeanGap: 0.95, MaxP95Gap: 2.00},
	// Recorded: 76.3% / 73.3% / 140.9% / 239.5% — 16 hidden units
	// underfit at the short training size; the envelope is loose.
	LearnerDeep16: {MinAccelAgreement: 0.65, MinChoiceAccuracy: 0.65, MaxMeanGap: 1.90, MaxP95Gap: 3.20},
	// Recorded: 74.6% / 79.0% / 22.1% / 143.6%.
	LearnerDeep32: {MinAccelAgreement: 0.65, MinChoiceAccuracy: 0.72, MaxMeanGap: 0.45, MaxP95Gap: 2.00},
	// Recorded: 79.7% / 86.1% / 23.9% / 179.4%.
	LearnerDeep64: {MinAccelAgreement: 0.70, MinChoiceAccuracy: 0.78, MaxMeanGap: 0.45, MaxP95Gap: 2.40},
	// Recorded: 79.7% / 86.0% / 28.1% / 53.8%.
	LearnerDeep128: {MinAccelAgreement: 0.70, MinChoiceAccuracy: 0.78, MaxMeanGap: 0.50, MaxP95Gap: 1.20},
}

// Gate checks every learner row against its threshold and returns one
// error listing all violations (nil when the report conforms). Learners
// without a threshold entry pass unchecked.
func (r OracleReport) Gate(th map[string]Threshold) error {
	var errs []error
	for _, l := range r.Learners {
		t, ok := th[l.Learner]
		if !ok {
			continue
		}
		if l.AccelAgreement < t.MinAccelAgreement {
			errs = append(errs, fmt.Errorf("%s: M1 agreement %.1f%% < floor %.1f%%",
				l.Learner, l.AccelAgreement*100, t.MinAccelAgreement*100))
		}
		if l.ChoiceAccuracy < t.MinChoiceAccuracy {
			errs = append(errs, fmt.Errorf("%s: choice accuracy %.1f%% < floor %.1f%%",
				l.Learner, l.ChoiceAccuracy*100, t.MinChoiceAccuracy*100))
		}
		if t.MaxMeanGap > 0 && l.CostGap.Mean > t.MaxMeanGap {
			errs = append(errs, fmt.Errorf("%s: mean cost gap %.1f%% > ceiling %.1f%%",
				l.Learner, l.CostGap.Mean*100, t.MaxMeanGap*100))
		}
		if t.MaxP95Gap > 0 && l.CostGap.P95 > t.MaxP95Gap {
			errs = append(errs, fmt.Errorf("%s: p95 cost gap %.1f%% > ceiling %.1f%%",
				l.Learner, l.CostGap.P95*100, t.MaxP95Gap*100))
		}
	}
	return errors.Join(errs...)
}
