// Package core is the HeteroMap runtime (the paper's primary
// contribution): it characterizes a graph benchmark-input combination
// into (B, I) variables, asks a predictor for the machine-choice vector
// M, deploys the combination on the chosen accelerator of the
// multi-accelerator system, and reports completion time (with the
// predictor's own overhead added, as in Section V-A), energy and core
// utilization. It also provides the paper's baselines: GPU-only,
// multicore-only and the exhaustively tuned ideal.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/fault"
	"heteromap/internal/feature"
	"heteromap/internal/gen"
	"heteromap/internal/graph"
	"heteromap/internal/machine"
	"heteromap/internal/obs"
	"heteromap/internal/predict"
	"heteromap/internal/profile"
	"heteromap/internal/train"
	"heteromap/internal/tune"
)

// Workload is one characterized benchmark-input combination, ready to be
// deployed under any M configuration. Characterize builds it once; every
// scheduler and baseline then reuses it.
type Workload struct {
	Benchmark algo.Benchmark
	Dataset   *gen.Dataset

	// Features is the (B, I) characterization the predictors consume
	// (static B catalog + declared I metadata, the paper's
	// programmer-specified path).
	Features feature.Vector

	// Work is the instrumented profile measured by actually running the
	// benchmark on the generated analog, scaled to declared paper-scale
	// magnitudes.
	Work *profile.Work

	// DerivedB is the automation path: B variables extracted from the
	// measured profile rather than the static catalog.
	DerivedB feature.BVector

	// Result is the benchmark's computed answer (checksums for tests).
	Result algo.Result

	// Job is the machine-model input (profile + dataset footprint).
	Job machine.Job
}

// Name renders the paper's combination label, e.g. "SSSP-BF-CA".
func (w *Workload) Name() string {
	return w.Benchmark.Name + "-" + w.Dataset.Short
}

// Characterize runs the benchmark on the dataset's generated analog,
// measures its work profile, scales the profile to the declared
// paper-scale magnitudes and packages the characterization.
func Characterize(b algo.Benchmark, ds *gen.Dataset) (*Workload, error) {
	bvec, err := feature.Catalog(b.Name)
	if err != nil {
		return nil, err
	}
	res, work := b.Run(ds.Graph)
	if err := work.Validate(); err != nil {
		return nil, fmt.Errorf("core: characterize %s on %s: %w", b.Name, ds.Short, err)
	}

	chainScale := 1.0
	if measured := graph.EstimateDiameter(ds.Graph, 1, 2); measured > 0 {
		chainScale = float64(ds.Declared.Diameter) / float64(measured)
		if chainScale < 1 {
			chainScale = 1
		}
	}
	scaled := work.Scaled(ds.VertexScale(), ds.EdgeScale(), chainScale)

	return &Workload{
		Benchmark: b,
		Dataset:   ds,
		Features:  feature.Combine(bvec, feature.IFromDataset(ds)),
		Work:      scaled,
		DerivedB:  feature.DeriveB(work),
		Result:    res,
		Job:       machine.Job{Work: scaled, FootprintBytes: ds.Declared.FootprintBytes()},
	}, nil
}

// Objective re-exports the training objective for runtime selection.
type Objective = train.Objective

// Objective values.
const (
	Performance = train.Performance
	Energy      = train.Energy
)

// System is a configured HeteroMap deployment: an accelerator pair plus a
// predictor, optionally backed by fallback predictors forming a graceful
// degradation chain.
type System struct {
	Pair      machine.Pair
	Predictor predict.Predictor
	Objective Objective

	// Fallbacks are consulted in order when the primary predictor
	// panics or emits a non-finite/invalid M (e.g. a trained NN backed
	// by the analytical decision tree); the chain always terminates in
	// a fixed deployable default, so Run never trusts an M vector
	// unconditionally.
	Fallbacks []predict.Predictor

	// overheadOnce caches the measured predictor inference overhead.
	overheadOnce sync.Once
	overhead     time.Duration

	// tracer, when installed via WithTracer, records a trace per Run —
	// the CLI's equivalent of the serve path's per-request tracing.
	tracer *obs.Tracer
}

// NewSystem assembles a runtime.
func NewSystem(pair machine.Pair, p predict.Predictor, obj Objective) *System {
	return &System{Pair: pair, Predictor: p, Objective: obj}
}

// WithFallbacks installs the degradation chain behind the primary
// predictor and returns the system for chaining.
func (s *System) WithFallbacks(ps ...predict.Predictor) *System {
	s.Fallbacks = ps
	return s
}

// WithTracer installs an observability tracer (nil disables tracing)
// and returns the system for chaining.
func (s *System) WithTracer(t *obs.Tracer) *System {
	s.tracer = t
	return s
}

// Tracer returns the installed tracer (nil when tracing is off).
func (s *System) Tracer() *obs.Tracer { return s.tracer }

// Chain materializes the system's predictor fallback chain (primary,
// then fallbacks, then the built-in FixedChoice default).
func (s *System) Chain() *fault.Chain {
	preds := make([]predict.Predictor, 0, 1+len(s.Fallbacks))
	preds = append(preds, s.Predictor)
	preds = append(preds, s.Fallbacks...)
	return fault.NewChain(s.Pair.Limits(), preds...)
}

// RunReport is the outcome of one scheduled execution.
type RunReport struct {
	Workload *Workload
	Chosen   config.M
	Machine  machine.Report
	// PredictOverhead is the measured wall-clock inference cost of the
	// predictor, which the paper adds to completion time.
	PredictOverhead time.Duration
	// TotalSeconds is simulated completion time plus predictor overhead
	// — including, for resilient runs, every failed attempt, backoff
	// wait and migration.
	TotalSeconds float64

	// PredictorUsed names the chain link that produced Chosen; it only
	// differs from the primary predictor's name when the chain degraded.
	PredictorUsed string
	// FallbackEvents records each predictor failure that forced the
	// chain to degrade, in order.
	FallbackEvents []string

	// Attempts counts execution attempts (1 for fault-free runs);
	// Retries counts the attempts beyond the first on each side.
	Attempts int
	Retries  int
	// FailedOver reports the job migrated to the other accelerator.
	FailedOver bool
	// Completed is false only when every attempt on both sides failed.
	Completed bool
	// BackoffSeconds and MigrationSeconds itemize resilience overhead
	// already included in TotalSeconds.
	BackoffSeconds   float64
	MigrationSeconds float64
	// FaultEvents narrates injected faults and recovery decisions.
	FaultEvents []string

	// TraceID identifies this run's trace in the system tracer's ring
	// buffer; empty when tracing is off.
	TraceID string
}

// Degraded reports whether the predictor fallback chain was exercised.
func (r RunReport) Degraded() bool { return len(r.FallbackEvents) > 0 }

// Metric returns the report's value under an objective.
func (r RunReport) Metric(obj Objective) float64 {
	if obj == Energy {
		return r.Machine.EnergyJ
	}
	return r.TotalSeconds
}

// Run characterizes nothing — it deploys an already characterized
// workload: predict M through the fallback chain, simulate on the chosen
// accelerator, add overhead. The prediction is validated (never trusted
// unconditionally): a panicking predictor or a non-finite M degrades to
// the next chain link instead of crashing or poisoning the machine model.
func (s *System) Run(w *Workload) RunReport {
	ctx, tr := s.tracer.StartTrace(context.Background(), "core.run")
	tr.SetAttr("workload", w.Name())

	start := time.Now()
	pctx, psp := obs.StartSpan(ctx, "predict")
	sel := s.Chain().SelectCtx(pctx, w.Features)
	psp.SetAttr("used", sel.Used)
	psp.End()
	elapsed := time.Since(start)
	if sel.Degraded() {
		tr.Keep(obs.FlagFallback)
	}

	ov := s.PredictorOverhead()
	if elapsed > ov {
		ov = elapsed
	}
	_, esp := obs.StartSpan(ctx, "evaluate")
	esp.SetAttr("accelerator", sel.M.Accelerator.String())
	rep := s.Pair.Select(sel.M.Accelerator).Evaluate(w.Job, sel.M)
	esp.End()
	tr.Finish()
	return RunReport{
		Workload:        w,
		Chosen:          sel.M,
		Machine:         rep,
		PredictOverhead: ov,
		TotalSeconds:    rep.Seconds + ov.Seconds(),
		PredictorUsed:   sel.Used,
		FallbackEvents:  sel.Fallbacks,
		Attempts:        1,
		Completed:       true,
		TraceID:         tr.ID(),
	}
}

// RunResilient deploys a workload under fault injection: the prediction
// flows through the fallback chain, and execution retries transient
// failures with capped exponential backoff, failing over to the other
// accelerator when retries are exhausted or its circuit breaker is open.
// All retry, backoff and migration time is charged into TotalSeconds so
// degraded runs stay honestly comparable with the paper baselines. A nil
// injector injects nothing; a nil brs tracks health for this run only
// (pass a shared *fault.Breakers to persist health across a batch).
func (s *System) RunResilient(w *Workload, inj *fault.Injector, pol fault.Policy, brs *fault.Breakers) RunReport {
	ctx, tr := s.tracer.StartTrace(context.Background(), "core.run-resilient")
	tr.SetAttr("workload", w.Name())

	start := time.Now()
	pctx, psp := obs.StartSpan(ctx, "predict")
	sel := s.Chain().SelectCtx(pctx, w.Features)
	psp.SetAttr("used", sel.Used)
	psp.End()
	elapsed := time.Since(start)
	if sel.Degraded() {
		tr.Keep(obs.FlagFallback)
	}

	ov := s.PredictorOverhead()
	if elapsed > ov {
		ov = elapsed
	}
	_, esp := obs.StartSpan(ctx, "execute")
	res := fault.Execute(s.Pair, s.Pair.Limits(), sel.M, w.Job, w.Name(), inj, pol, brs)
	esp.SetAttr("accelerator", res.FinalM.Accelerator.String())
	if !res.Completed {
		tr.Keep(obs.FlagError)
		esp.EndErr(fmt.Errorf("every attempt failed on both accelerators"))
	} else {
		esp.End()
	}
	tr.Finish()
	return RunReport{
		Workload:         w,
		Chosen:           res.FinalM,
		Machine:          res.Report,
		PredictOverhead:  ov,
		TotalSeconds:     res.TotalSeconds() + ov.Seconds(),
		PredictorUsed:    sel.Used,
		FallbackEvents:   sel.Fallbacks,
		Attempts:         res.Attempts,
		Retries:          res.Retries,
		FailedOver:       res.FailedOver,
		Completed:        res.Completed,
		BackoffSeconds:   res.BackoffSeconds,
		MigrationSeconds: res.MigrationSeconds,
		FaultEvents:      res.Events,
		TraceID:          tr.ID(),
	}
}

// PredictorOverhead measures (once) the predictor's steady-state
// inference latency on a representative feature vector.
func (s *System) PredictorOverhead() time.Duration {
	s.overheadOnce.Do(func() {
		s.overhead = MeasureOverhead(s.Predictor)
	})
	return s.overhead
}

// MeasureOverhead times repeated Predict calls and returns the mean.
func MeasureOverhead(p predict.Predictor) time.Duration {
	f := feature.Combine(feature.MustCatalog(algo.NameSSSPBF),
		feature.IVector{0.5, 0.5, 0.5, 0.5})
	const reps = 200
	// Warm up.
	for i := 0; i < 10; i++ {
		p.Predict(f)
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		p.Predict(f)
	}
	return time.Since(start) / reps
}

// FixedChoice is a degenerate predictor that always returns one M vector;
// the single-accelerator baselines use it.
type FixedChoice struct {
	Label string
	M     config.M
}

// Name implements predict.Predictor.
func (f FixedChoice) Name() string { return f.Label }

// Predict implements predict.Predictor.
func (f FixedChoice) Predict(feature.Vector) config.M { return f.M }

// Baselines computes the paper's reference points for one workload:
//
//   - GPUOnly: the best configuration restricted to the GPU (the paper
//     manually tunes single-accelerator baselines with OpenTuner).
//   - MulticoreOnly: likewise restricted to the multicore.
//   - Ideal: the best configuration across both accelerators with no
//     predictor overhead.
type Baselines struct {
	GPUOnly       machine.Report
	GPUOnlyM      config.M
	MulticoreOnly machine.Report
	MulticoreM    config.M
	Ideal         machine.Report
	IdealM        config.M
}

// ComputeBaselines exhaustively tunes the workload on each accelerator.
func ComputeBaselines(pair machine.Pair, w *Workload, obj Objective) Baselines {
	limits := pair.Limits()
	eval := func(m config.M) float64 {
		return train.Metric(pair, obj, w.Job, m)
	}
	gpu := tune.Exhaustive(config.EnumerateFor(config.GPU, limits), eval)
	mc := tune.Exhaustive(config.EnumerateFor(config.Multicore, limits), eval)

	gpuRep := pair.GPU.Evaluate(w.Job, gpu.Best)
	mcRep := pair.Multicore.Evaluate(w.Job, mc.Best)
	b := Baselines{
		GPUOnly: gpuRep, GPUOnlyM: gpu.Best,
		MulticoreOnly: mcRep, MulticoreM: mc.Best,
	}
	if gpu.Score <= mc.Score {
		b.Ideal, b.IdealM = gpuRep, gpu.Best
	} else {
		b.Ideal, b.IdealM = mcRep, mc.Best
	}
	return b
}

// CharacterizeAll builds workloads for every (benchmark, dataset)
// combination, skipping benchmarks whose requirements a dataset cannot
// meet (none of the Table I analogs skip in practice).
func CharacterizeAll(benchmarks []algo.Benchmark, datasets []*gen.Dataset) ([]*Workload, error) {
	var out []*Workload
	for _, b := range benchmarks {
		for _, d := range datasets {
			w, err := Characterize(b, d)
			if err != nil {
				return nil, err
			}
			out = append(out, w)
		}
	}
	return out, nil
}
