package core

import (
	"testing"
	"time"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/gen"
	"heteromap/internal/graph"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/profile"
)

func testDataset(t testing.TB, short string) *gen.Dataset {
	t.Helper()
	d := gen.ByShort(gen.TableICached(gen.Small), short)
	if d == nil {
		t.Fatalf("missing dataset %s", short)
	}
	return d
}

func TestCharacterizePopulatesWorkload(t *testing.T) {
	b, err := algo.ByName(algo.NameBFS)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Characterize(b, testDataset(t, "FB"))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "BFS-FB" {
		t.Fatalf("name %q", w.Name())
	}
	if err := w.Work.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Job.FootprintBytes != w.Dataset.Declared.FootprintBytes() {
		t.Fatal("job footprint must be the declared paper-scale footprint")
	}
	// Scaled work must be paper-scale: edge ops >= declared edge count.
	if w.Work.TotalEdgeOps() < w.Dataset.Declared.E {
		t.Fatalf("scaled edge ops %d below declared %d",
			w.Work.TotalEdgeOps(), w.Dataset.Declared.E)
	}
	// Features combine the static catalog with declared I.
	if w.Features.B() != feature.MustCatalog(algo.NameBFS) {
		t.Fatal("features must use the catalog B")
	}
	if w.Features.I() != feature.IFromDataset(w.Dataset) {
		t.Fatal("features must use the declared I")
	}
	if w.Result.Visited == 0 {
		t.Fatal("benchmark did not execute")
	}
}

func TestCharacterizeScalesDiameterBoundOnly(t *testing.T) {
	ca := testDataset(t, "CA")
	bfs, _ := algo.ByName(algo.NameBFS)
	pr, _ := algo.ByName(algo.NamePageRank)
	wBFS, err := Characterize(bfs, ca)
	if err != nil {
		t.Fatal(err)
	}
	wPR, err := Characterize(pr, ca)
	if err != nil {
		t.Fatal(err)
	}
	// BFS levels must be scaled toward the declared 850 diameter.
	if wBFS.Work.Iterations < 400 {
		t.Fatalf("BFS-CA scaled iterations %d want near declared diameter 850",
			wBFS.Work.Iterations)
	}
	// PageRank iterations must stay at its convergence count (~20).
	if wPR.Work.Iterations > 25 {
		t.Fatalf("PageRank iterations %d must not be diameter-scaled", wPR.Work.Iterations)
	}
}

func TestCharacterizeAllCount(t *testing.T) {
	ws, err := CharacterizeAll(algo.All(), gen.TableICached(gen.Small))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 81 {
		t.Fatalf("workloads=%d want 9x9", len(ws))
	}
}

func TestSystemRun(t *testing.T) {
	pair := machine.PrimaryPair()
	sys := NewSystem(pair, dtree.New(pair.Limits()), Performance)
	b, _ := algo.ByName(algo.NameSSSPBF)
	w, err := Characterize(b, testDataset(t, "CA"))
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(w)
	if rep.Machine.Seconds <= 0 {
		t.Fatal("no simulated time")
	}
	if rep.PredictOverhead <= 0 {
		t.Fatal("predictor overhead not measured")
	}
	if rep.TotalSeconds < rep.Machine.Seconds {
		t.Fatal("total must include the predictor overhead")
	}
	if rep.Metric(Performance) != rep.TotalSeconds {
		t.Fatal("performance metric")
	}
	if rep.Metric(Energy) != rep.Machine.EnergyJ {
		t.Fatal("energy metric")
	}
}

func TestComputeBaselines(t *testing.T) {
	pair := machine.PrimaryPair()
	b, _ := algo.ByName(algo.NameSSSPDelta)
	w, err := Characterize(b, testDataset(t, "CA"))
	if err != nil {
		t.Fatal(err)
	}
	bl := ComputeBaselines(pair, w, Performance)
	if bl.GPUOnlyM.Accelerator != config.GPU {
		t.Fatal("GPU baseline on wrong accelerator")
	}
	if bl.MulticoreM.Accelerator != config.Multicore {
		t.Fatal("multicore baseline on wrong accelerator")
	}
	minSingle := bl.GPUOnly.Seconds
	if bl.MulticoreOnly.Seconds < minSingle {
		minSingle = bl.MulticoreOnly.Seconds
	}
	if bl.Ideal.Seconds != minSingle {
		t.Fatalf("ideal %v must equal the better single baseline %v",
			bl.Ideal.Seconds, minSingle)
	}
	// Fig 1/7 anchor: the multicore wins SSSP-Delta on the road network.
	if bl.MulticoreOnly.Seconds >= bl.GPUOnly.Seconds {
		t.Fatalf("SSSP-Delta-CA: multicore (%v) must beat GPU (%v)",
			bl.MulticoreOnly.Seconds, bl.GPUOnly.Seconds)
	}
}

func TestEnergyObjectiveBaselines(t *testing.T) {
	pair := machine.PrimaryPair()
	b, _ := algo.ByName(algo.NamePageRank)
	w, err := Characterize(b, testDataset(t, "FB"))
	if err != nil {
		t.Fatal(err)
	}
	bl := ComputeBaselines(pair, w, Energy)
	minSingle := bl.GPUOnly.EnergyJ
	if bl.MulticoreOnly.EnergyJ < minSingle {
		minSingle = bl.MulticoreOnly.EnergyJ
	}
	if bl.Ideal.EnergyJ != minSingle {
		t.Fatal("energy ideal must minimize energy")
	}
}

func TestCharacterizeRejectsInvalidProfiles(t *testing.T) {
	// Failure injection: a benchmark that emits a corrupt work profile
	// must be rejected at characterization time, not blow up inside the
	// simulator.
	bad := algo.Benchmark{
		Name: algo.NameBFS, // valid catalog entry, broken instrumentation
		Run: func(g *graph.Graph) (algo.Result, *profile.Work) {
			return algo.Result{}, &profile.Work{
				Benchmark: "broken", Graph: g.Name,
				Phases: []profile.Phase{{Kind: profile.PhaseKind(99), Name: "bad"}},
			}
		},
	}
	if _, err := Characterize(bad, testDataset(t, "FB")); err == nil {
		t.Fatal("invalid profile accepted")
	}

	negative := algo.Benchmark{
		Name: algo.NameBFS,
		Run: func(g *graph.Graph) (algo.Result, *profile.Work) {
			return algo.Result{}, &profile.Work{
				Benchmark: "broken", Graph: g.Name,
				Phases: []profile.Phase{{Kind: profile.VertexDivision, Name: "neg", EdgeOps: -5}},
			}
		},
	}
	if _, err := Characterize(negative, testDataset(t, "FB")); err == nil {
		t.Fatal("negative counters accepted")
	}
}

func TestCharacterizeUnknownBenchmarkName(t *testing.T) {
	// A benchmark whose name has no B catalog entry cannot be
	// characterized (the predictors would have no features).
	unknown := algo.Benchmark{
		Name: "NotInCatalog",
		Run: func(g *graph.Graph) (algo.Result, *profile.Work) {
			return algo.Result{}, &profile.Work{}
		},
	}
	if _, err := Characterize(unknown, testDataset(t, "FB")); err == nil {
		t.Fatal("uncatalogued benchmark accepted")
	}
}

func TestFixedChoice(t *testing.T) {
	m := config.M{Accelerator: config.GPU, GlobalThreads: 7, LocalThreads: 3}
	fc := FixedChoice{Label: "fixed", M: m}
	if fc.Name() != "fixed" {
		t.Fatal("name")
	}
	if fc.Predict(feature.Vector{}) != m {
		t.Fatal("fixed choice must echo its M")
	}
}

func TestMeasureOverheadPositiveAndCached(t *testing.T) {
	pair := machine.PrimaryPair()
	sys := NewSystem(pair, dtree.New(pair.Limits()), Performance)
	a := sys.PredictorOverhead()
	if a <= 0 {
		t.Fatal("overhead must be positive")
	}
	b := sys.PredictorOverhead()
	if a != b {
		t.Fatal("overhead must be measured once and cached")
	}
	if d := MeasureOverhead(FixedChoice{}); d < 0 {
		t.Fatal("negative duration")
	}
	if MeasureOverhead(dtree.New(pair.Limits())) > time.Millisecond {
		t.Fatal("decision tree overhead suspiciously high")
	}
}

func TestSlowPredictorOverheadDominatesMeasurement(t *testing.T) {
	pair := machine.PrimaryPair()
	slow := slowPredictor{inner: dtree.New(pair.Limits())}
	sys := NewSystem(pair, slow, Performance)
	if sys.PredictorOverhead() < 100*time.Microsecond {
		t.Fatalf("slow predictor overhead %v not captured", sys.PredictorOverhead())
	}
}

type slowPredictor struct{ inner *dtree.Tree }

func (s slowPredictor) Name() string { return "slow" }
func (s slowPredictor) Predict(f feature.Vector) config.M {
	time.Sleep(150 * time.Microsecond)
	return s.inner.Predict(f)
}
