package core

import (
	"math"
	"strings"
	"testing"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/fault"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
)

// nanPredictor simulates a broken trained model emitting non-finite M.
type nanPredictor struct{}

func (nanPredictor) Name() string { return "Deep.128" }
func (nanPredictor) Predict(feature.Vector) config.M {
	return config.M{Accelerator: config.GPU, PlaceCore: math.NaN()}
}

// panicPredictor simulates a predictor crashing outright.
type panicPredictor struct{}

func (panicPredictor) Name() string                    { return "Crashy" }
func (panicPredictor) Predict(feature.Vector) config.M { panic("model corrupted") }

func resilientWorkload(t *testing.T) *Workload {
	t.Helper()
	b, _ := algo.ByName(algo.NameSSSPBF)
	w, err := Characterize(b, testDataset(t, "CA"))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunFallsBackOnNaNPredictor(t *testing.T) {
	pair := machine.PrimaryPair()
	tree := dtree.New(pair.Limits())
	sys := NewSystem(pair, nanPredictor{}, Performance).WithFallbacks(tree)
	w := resilientWorkload(t)
	rep := sys.Run(w)
	if rep.PredictorUsed != tree.Name() {
		t.Fatalf("used %q, want fallback %q", rep.PredictorUsed, tree.Name())
	}
	if !rep.Degraded() || len(rep.FallbackEvents) != 1 {
		t.Fatalf("fallback not recorded: %v", rep.FallbackEvents)
	}
	if err := rep.Chosen.Validate(pair.Limits()); err != nil {
		t.Fatalf("degraded M invalid: %v", err)
	}
	if rep.Machine.Seconds <= 0 || !rep.Completed {
		t.Fatalf("degraded run did not execute: %+v", rep)
	}
}

func TestRunExhaustedChainUsesFixedChoice(t *testing.T) {
	pair := machine.PrimaryPair()
	sys := NewSystem(pair, nanPredictor{}, Performance).WithFallbacks(panicPredictor{})
	w := resilientWorkload(t)
	rep := sys.Run(w)
	if rep.PredictorUsed != "FixedChoice" {
		t.Fatalf("used %q, want FixedChoice", rep.PredictorUsed)
	}
	if len(rep.FallbackEvents) != 2 {
		t.Fatalf("fallback events: %v", rep.FallbackEvents)
	}
	if rep.Machine.Seconds <= 0 {
		t.Fatal("fixed-choice run did not execute")
	}
}

func TestRunHealthyPredictorUnchanged(t *testing.T) {
	// With a healthy primary, the chain must be invisible: same M and
	// simulated time as the pre-resilience pipeline.
	pair := machine.PrimaryPair()
	tree := dtree.New(pair.Limits())
	sys := NewSystem(pair, tree, Performance).WithFallbacks()
	w := resilientWorkload(t)
	rep := sys.Run(w)
	if rep.Degraded() || rep.PredictorUsed != tree.Name() {
		t.Fatalf("healthy run degraded: %+v", rep.FallbackEvents)
	}
	want := tree.Predict(w.Features)
	if rep.Chosen != want {
		t.Fatalf("chain changed the prediction: %+v vs %+v", rep.Chosen, want)
	}
	clean := pair.Select(want.Accelerator).Evaluate(w.Job, want)
	if rep.Machine.Seconds != clean.Seconds {
		t.Fatal("chain changed the simulated time")
	}
}

func TestRunResilientFaultFreeMatchesRun(t *testing.T) {
	pair := machine.PrimaryPair()
	sys := NewSystem(pair, dtree.New(pair.Limits()), Performance)
	w := resilientWorkload(t)
	plain := sys.Run(w)
	res := sys.RunResilient(w, nil, fault.DefaultPolicy(), nil)
	if !res.Completed || res.FailedOver || res.Retries != 0 {
		t.Fatalf("fault-free resilient run degraded: %+v", res)
	}
	if res.Machine.Seconds != plain.Machine.Seconds {
		t.Fatalf("fault-free resilient time %v, plain %v",
			res.Machine.Seconds, plain.Machine.Seconds)
	}
	if res.Chosen != plain.Chosen {
		t.Fatal("resilient path changed the fault-free prediction")
	}
}

func TestRunResilientChargesFaults(t *testing.T) {
	pair := machine.PrimaryPair()
	sys := NewSystem(pair, dtree.New(pair.Limits()), Performance)
	w := resilientWorkload(t)
	clean := sys.RunResilient(w, nil, fault.DefaultPolicy(), nil)

	inj := fault.NewChaosInjector(11, 0.4)
	brs := fault.NewBreakers(fault.DefaultPolicy())
	chaos := sys.RunResilient(w, inj, fault.DefaultPolicy(), brs)
	if !chaos.Completed {
		t.Fatalf("lost job at rate 0.4: %v", chaos.FaultEvents)
	}
	// Chaos can only add time: every failed attempt, backoff and
	// migration is charged on top of the final attempt.
	if chaos.TotalSeconds < clean.TotalSeconds {
		t.Fatalf("chaos total %v below clean %v", chaos.TotalSeconds, clean.TotalSeconds)
	}
	if chaos.Retries > 0 && chaos.BackoffSeconds <= 0 {
		t.Fatal("retries without backoff charge")
	}
	if chaos.FailedOver && chaos.MigrationSeconds <= 0 {
		t.Fatal("failover without migration charge")
	}
}

func TestRunResilientFailsOverOnDeadSide(t *testing.T) {
	pair := machine.PrimaryPair()
	tree := dtree.New(pair.Limits())
	sys := NewSystem(pair, tree, Performance)
	w := resilientWorkload(t)
	predicted := tree.Predict(w.Features).Accelerator

	inj := fault.NewInjector(3).SetProfile(predicted, fault.Profile{TransientRate: 1})
	rep := sys.RunResilient(w, inj, fault.DefaultPolicy(), nil)
	if !rep.Completed || !rep.FailedOver {
		t.Fatalf("dead predicted side not failed over: %+v", rep)
	}
	if rep.Chosen.Accelerator != predicted.Other() {
		t.Fatalf("final side %v, want %v", rep.Chosen.Accelerator, predicted.Other())
	}
	if err := rep.Chosen.Validate(pair.Limits()); err != nil {
		t.Fatalf("failover M invalid: %v", err)
	}
	found := false
	for _, e := range rep.FaultEvents {
		if strings.Contains(e, "failing over") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing failover event: %v", rep.FaultEvents)
	}
}
