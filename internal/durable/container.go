package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// A container is the snapshot format: a typed, checksummed, sealed
// record file. Unlike the WAL — which tolerates a torn tail because
// appends race crashes — a container is written atomically, so any
// integrity failure means corruption (bit rot, truncation after the
// fact) and the whole artifact is rejected; callers quarantine it and
// fall back down the recovery ladder.
//
//	"HMCF" | u16 version | u16 kindLen | kind
//	record: u32 len | u32 crc32c(payload) | payload   (repeated)
//	footer: u32 0xFFFFFFFF | u64 count
//	        u32 crc32c(all bytes from magic through count) | "HMCE"
const (
	containerMagic    = "HMCF"
	containerEndMagic = "HMCE"
	containerVersion  = 1
	// containerSentinel is the length value that can never open a real
	// record and therefore introduces the footer.
	containerSentinel = ^uint32(0)
	// maxContainerRecord bounds one record so a corrupt length cannot
	// drive an allocation bomb.
	maxContainerRecord = 64 << 20
)

// castagnoli is the CRC32-C polynomial table shared by every checksum
// in this package (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcWriter forwards writes while accumulating a running CRC32-C and a
// byte count over everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	cw.n += int64(n)
	return n, err
}

// crcReader forwards reads while accumulating the same running CRC the
// writer computed, so the reader can verify the footer's whole-file
// checksum without buffering the file.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, castagnoli, p[:n])
	return n, err
}

// WriteContainer atomically writes records as a sealed container of the
// given kind. target labels the write for the crash-injection seam.
func WriteContainer(path, kind string, records [][]byte, target string, kill KillFunc) error {
	if len(kind) > 1<<15 {
		return fmt.Errorf("durable: container kind too long")
	}
	return WriteFileAtomic(path, target, kill, func(w io.Writer) error {
		bw := bufio.NewWriter(w)
		cw := &crcWriter{w: bw}
		le := binary.LittleEndian
		var scratch [12]byte
		if _, err := io.WriteString(cw, containerMagic); err != nil {
			return err
		}
		le.PutUint16(scratch[0:2], containerVersion)
		le.PutUint16(scratch[2:4], uint16(len(kind)))
		if _, err := cw.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := io.WriteString(cw, kind); err != nil {
			return err
		}
		for _, rec := range records {
			if int64(len(rec)) > maxContainerRecord {
				return fmt.Errorf("durable: container record of %d bytes exceeds limit", len(rec))
			}
			le.PutUint32(scratch[0:4], uint32(len(rec)))
			le.PutUint32(scratch[4:8], crc32.Checksum(rec, castagnoli))
			if _, err := cw.Write(scratch[:8]); err != nil {
				return err
			}
			if _, err := cw.Write(rec); err != nil {
				return err
			}
		}
		le.PutUint32(scratch[0:4], containerSentinel)
		le.PutUint64(scratch[4:12], uint64(len(records)))
		if _, err := cw.Write(scratch[:12]); err != nil {
			return err
		}
		// Everything through the count is covered by the seal; the seal
		// itself and the end magic are written outside the running CRC.
		le.PutUint32(scratch[0:4], cw.crc)
		if _, err := bw.Write(scratch[:4]); err != nil {
			return err
		}
		if _, err := bw.WriteString(containerEndMagic); err != nil {
			return err
		}
		return bw.Flush()
	})
}

// ReadContainer reads and strictly verifies a sealed container,
// returning its records. Any integrity failure — wrong magic or kind,
// a record checksum mismatch, a missing or wrong footer, trailing
// bytes — is an error; containers are never partially believed.
func ReadContainer(path, kind string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readContainer(f, kind)
}

func readContainer(r io.Reader, kind string) ([][]byte, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	le := binary.LittleEndian
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("durable: container: "+format, args...)
	}
	head := make([]byte, 4+4)
	if _, err := io.ReadFull(cr, head); err != nil {
		return nil, corrupt("truncated header: %v", err)
	}
	if string(head[:4]) != containerMagic {
		return nil, corrupt("bad magic %q", head[:4])
	}
	if v := le.Uint16(head[4:6]); v != containerVersion {
		return nil, corrupt("unsupported version %d", v)
	}
	kindLen := int(le.Uint16(head[6:8]))
	kindBytes := make([]byte, kindLen)
	if _, err := io.ReadFull(cr, kindBytes); err != nil {
		return nil, corrupt("truncated kind: %v", err)
	}
	if string(kindBytes) != kind {
		return nil, corrupt("kind %q, want %q", kindBytes, kind)
	}
	var records [][]byte
	var scratch [12]byte
	for {
		if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
			return nil, corrupt("truncated before footer: %v", err)
		}
		length := le.Uint32(scratch[:4])
		if length == containerSentinel {
			break
		}
		if int64(length) > maxContainerRecord {
			return nil, corrupt("implausible record length %d", length)
		}
		if _, err := io.ReadFull(cr, scratch[4:8]); err != nil {
			return nil, corrupt("truncated record header: %v", err)
		}
		want := le.Uint32(scratch[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(cr, payload); err != nil {
			return nil, corrupt("truncated record payload: %v", err)
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return nil, corrupt("record %d checksum mismatch", len(records))
		}
		records = append(records, payload)
	}
	if _, err := io.ReadFull(cr, scratch[4:12]); err != nil {
		return nil, corrupt("truncated footer count: %v", err)
	}
	count := le.Uint64(scratch[4:12])
	if count != uint64(len(records)) {
		return nil, corrupt("footer count %d, read %d records", count, len(records))
	}
	sealed := cr.crc
	// The seal and end magic sit outside the running CRC.
	tail := make([]byte, 4+4)
	if _, err := io.ReadFull(br, tail); err != nil {
		return nil, corrupt("unsealed: missing footer checksum: %v", err)
	}
	if le.Uint32(tail[:4]) != sealed {
		return nil, corrupt("file checksum mismatch")
	}
	if string(tail[4:8]) != containerEndMagic {
		return nil, corrupt("bad end magic %q", tail[4:8])
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, corrupt("trailing bytes after seal")
	}
	return records, nil
}
