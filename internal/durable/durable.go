// Package durable provides the crash-safety primitives the serving
// stack persists through: atomic file replacement, checksummed sealed
// record containers for snapshots, and a segment-rotated write-ahead
// log for the online feedback stream.
//
// Every write path in this package is crash-only software: the on-disk
// artifact is either the complete previous generation or the complete
// new one, never a torn hybrid under its real name, and every reader
// verifies checksums before believing a byte. The same discipline is
// testable: all writers thread a KillFunc seam that simulates a process
// death at an exact byte offset, leaving precisely the torn state a
// real kill -9 would — the crash-injection harness sweeps those
// offsets and asserts recovery from each one.
package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// KillFunc is the crash-injection seam threaded through every artifact
// write. It is consulted once per write with the artifact's target
// label; when it reports armed, the write dies with ErrKilled after
// exactly offset bytes have reached the file — the on-disk state is
// byte-identical to a process killed at that point, and nothing after
// the kill (fsync, rename, cleanup) runs. Production passes nil; the
// fault injector's WriteKill method binds here.
type KillFunc func(target string) (offset int64, armed bool)

// ErrKilled marks a write aborted by an injected crash. The temp or
// partial file is deliberately left behind — a dead process cannot
// clean up — so recovery code sees the true post-crash filesystem.
var ErrKilled = errors.New("durable: write killed by injected crash")

// TempPrefix marks in-progress atomic writes; RemoveStaleTemps sweeps
// abandoned ones during recovery.
const TempPrefix = ".durable-"

// crashWriter forwards writes until the armed offset is reached, then
// fails with ErrKilled, forever. The partial chunk before the offset is
// still written, so the kill lands on an exact byte boundary.
type crashWriter struct {
	w      io.Writer
	remain int64
	dead   bool
}

func (cw *crashWriter) Write(p []byte) (int, error) {
	if cw.dead {
		return 0, ErrKilled
	}
	if int64(len(p)) <= cw.remain {
		n, err := cw.w.Write(p)
		cw.remain -= int64(n)
		return n, err
	}
	cw.dead = true
	n := 0
	if cw.remain > 0 {
		var err error
		n, err = cw.w.Write(p[:cw.remain])
		cw.remain -= int64(n)
		if err != nil {
			return n, err
		}
	}
	return n, ErrKilled
}

// WriteFileAtomic writes an artifact via the temp + fsync + rename
// discipline: write writes the content into a temp file in path's
// directory, the temp is fsynced and renamed over path in one step, and
// the directory is fsynced so the rename itself is durable. A crash (or
// injected kill) at any point leaves the previous artifact intact under
// path. target labels the artifact for the kill seam; an armed offset
// at or beyond the content size kills between the last byte and the
// rename — the fully-written-but-never-committed state.
func WriteFileAtomic(path, target string, kill KillFunc, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, TempPrefix+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	var out io.Writer = tmp
	armed := false
	var offset int64
	if kill != nil {
		if offset, armed = kill(target); armed {
			out = &crashWriter{w: tmp, remain: offset}
		}
	}
	cleanup := func(err error) error {
		tmp.Close()
		if !errors.Is(err, ErrKilled) {
			// A real failure cleans up; an injected crash leaves the temp
			// litter a dead process would, for recovery to sweep.
			os.Remove(tmp.Name())
		}
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	if err := write(out); err != nil {
		return cleanup(err)
	}
	if armed {
		// The content fit under the armed offset, so the kill lands in
		// the commit window: after the last byte, before the rename.
		return cleanup(ErrKilled)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss. Errors are ignored: some filesystems refuse directory fsync,
// and the rename itself already happened.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// QuarantineFile moves a corrupt artifact aside (path -> path.corrupt,
// numbered if that name is taken) so recovery can proceed without it
// while the evidence survives for inspection. It returns the new name.
func QuarantineFile(path string) (string, error) {
	dst := path + ".corrupt"
	for i := 1; ; i++ {
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
		dst = fmt.Sprintf("%s.corrupt.%d", path, i)
	}
	if err := os.Rename(path, dst); err != nil {
		return "", fmt.Errorf("durable: quarantine %s: %w", path, err)
	}
	syncDir(filepath.Dir(path))
	return dst, nil
}

// RemoveStaleTemps sweeps abandoned atomic-write temp files out of dir
// (the litter a crash mid-write leaves behind) and reports how many
// were removed. Recovery runs it first.
func RemoveStaleTemps(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), TempPrefix) {
			if os.Remove(filepath.Join(dir, e.Name())) == nil {
				removed++
			}
		}
	}
	return removed
}
