package durable

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// armedAt returns a KillFunc arming every target at the given offset.
func armedAt(offset int64) KillFunc {
	return func(string) (int64, bool) { return offset, true }
}

func writeBlob(t *testing.T, path string, blob []byte, kill KillFunc) error {
	t.Helper()
	return WriteFileAtomic(path, "test", kill, func(w io.Writer) error {
		_, err := w.Write(blob)
		return err
	})
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	want := []byte("the committed generation")
	if err := writeBlob(t, path, want, nil); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
}

// TestWriteFileAtomicKillSweep arms a kill at every byte offset of the
// write, including the commit window between the last byte and the
// rename, and asserts the committed file is byte-identical to the
// previous generation after each injected crash.
func TestWriteFileAtomicKillSweep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	prev := []byte("previous generation")
	if err := writeBlob(t, path, prev, nil); err != nil {
		t.Fatal(err)
	}
	next := []byte("next generation, somewhat longer")
	for off := int64(0); off <= int64(len(next)); off++ {
		err := writeBlob(t, path, next, armedAt(off))
		if err == nil {
			t.Fatalf("offset %d: killed write reported success", off)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("offset %d: committed file unreadable: %v", off, rerr)
		}
		if !bytes.Equal(got, prev) {
			t.Fatalf("offset %d: committed file mutated by killed write", off)
		}
	}
	// The dead process left temp litter; recovery sweeps it.
	if n := RemoveStaleTemps(dir); n == 0 {
		t.Fatal("kill sweep left no temp litter to sweep")
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			t.Fatalf("stale temp %s survived the sweep", e.Name())
		}
	}
	// With the injector disarmed the same write commits.
	if err := writeBlob(t, path, next, nil); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, next) {
		t.Fatal("post-recovery write did not commit")
	}
}

func TestQuarantineFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	if err := os.WriteFile(path, []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	moved, err := QuarantineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Lstat(path); !os.IsNotExist(err) {
		t.Fatal("quarantined file still present under its real name")
	}
	if _, err := os.Lstat(moved); err != nil {
		t.Fatalf("quarantine evidence missing: %v", err)
	}
	// A second quarantine of the same name must not clobber the first.
	if err := os.WriteFile(path, []byte("corrupt again"), 0o644); err != nil {
		t.Fatal(err)
	}
	moved2, err := QuarantineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if moved2 == moved {
		t.Fatal("second quarantine clobbered the first")
	}
}

func TestContainerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	records := [][]byte{[]byte("meta"), []byte(""), []byte("payload two"), bytes.Repeat([]byte{0xAB}, 4096)}
	if err := WriteContainer(path, "test-kind", records, "snapshot/test", nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadContainer(path, "test-kind")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(records) {
		t.Fatalf("read %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
	if _, err := ReadContainer(path, "other-kind"); err == nil {
		t.Fatal("container accepted under the wrong kind")
	}
}

func TestContainerEmptyRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	if err := WriteContainer(path, "k", nil, "snapshot/test", nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadContainer(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty container read %d records", len(got))
	}
}

// TestContainerRejectsAnyCorruption is the strict-verification sweep: a
// container with any single byte flipped, or truncated at any length,
// must be rejected outright.
func TestContainerRejectsAnyCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap")
	records := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	if err := WriteContainer(path, "k", records, "snapshot/test", nil); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		mutated := append([]byte(nil), full...)
		mutated[i] ^= 0x40
		if _, err := readContainer(bytes.NewReader(mutated), "k"); err == nil {
			t.Fatalf("byte flip at %d accepted", i)
		}
	}
	for n := 0; n < len(full); n++ {
		if _, err := readContainer(bytes.NewReader(full[:n]), "k"); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := readContainer(bytes.NewReader(append(full, 0)), "k"); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestContainerKillSweep: an injected crash at every offset of a
// container write leaves the previous container readable and intact.
func TestContainerKillSweep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	prev := [][]byte{[]byte("old state")}
	if err := WriteContainer(path, "k", prev, "snapshot/test", nil); err != nil {
		t.Fatal(err)
	}
	next := [][]byte{[]byte("new state"), []byte("more state")}
	info, _ := os.Stat(path)
	// Sweep past the file size into the commit window.
	for off := int64(0); off <= info.Size()+32; off += 1 {
		err := WriteContainer(path, "k", next, "snapshot/test", armedAt(off))
		if err == nil {
			t.Fatalf("offset %d: killed snapshot write reported success", off)
		}
		got, rerr := ReadContainer(path, "k")
		if rerr != nil {
			t.Fatalf("offset %d: previous snapshot unreadable: %v", off, rerr)
		}
		if len(got) != 1 || !bytes.Equal(got[0], prev[0]) {
			t.Fatalf("offset %d: previous snapshot mutated", off)
		}
	}
	RemoveStaleTemps(dir)
}
