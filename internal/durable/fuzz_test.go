package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// writeCorpusEntry writes one seed input in the Go fuzz corpus format
// under testdata/fuzz/<fuzzName>/ — the checked-in corpus CI fuzzes
// from without warm-up.
func writeCorpusEntry(t *testing.T, fuzzName, entry string, data []byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, entry), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpus when
// HM_WRITE_FUZZ_CORPUS=1; otherwise it verifies the corpus directories
// exist (CI's bounded fuzz runs start from them).
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("HM_WRITE_FUZZ_CORPUS") == "" {
		for _, name := range []string{"FuzzWALSegment", "FuzzContainer"} {
			if _, err := os.Stat(filepath.Join("testdata", "fuzz", name)); err != nil {
				t.Fatalf("checked-in corpus missing for %s (regenerate with HM_WRITE_FUZZ_CORPUS=1): %v", name, err)
			}
		}
		return
	}
	writeCorpusEntry(t, "FuzzWALSegment", "valid-3-records", validSegment(3))
	tampered := validSegment(2)
	tampered[walHeader] ^= 0xFF
	writeCorpusEntry(t, "FuzzWALSegment", "corrupt-payload", tampered)
	writeCorpusEntry(t, "FuzzWALSegment", "torn-tail", validSegment(2)[:walHeader+1])
	writeCorpusEntry(t, "FuzzWALSegment", "magic-noise", bytes.Repeat([]byte{0x48}, 64))

	dir := t.TempDir()
	path := filepath.Join(dir, "seed")
	if err := WriteContainer(path, "k", [][]byte{[]byte("a"), []byte("bb")}, "t", nil); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	writeCorpusEntry(t, "FuzzContainer", "sealed", valid)
	writeCorpusEntry(t, "FuzzContainer", "truncated-footer", valid[:len(valid)-3])
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0x10
	writeCorpusEntry(t, "FuzzContainer", "bit-rot", mut)
}

// validSegment builds a well-formed WAL segment with n records, for
// seeding the fuzzers with inputs that exercise the happy path.
func validSegment(n int) []byte {
	var buf bytes.Buffer
	le := binary.LittleEndian
	for i := 0; i < n; i++ {
		payload := []byte{byte(i), 0xAA, byte(i * 3)}
		var head [walHeader]byte
		le.PutUint32(head[0:4], walRecMagic)
		le.PutUint64(head[4:12], uint64(i+1))
		le.PutUint32(head[12:16], uint32(len(payload)))
		crc := crc32.Update(0, castagnoli, head[4:16])
		crc = crc32.Update(crc, castagnoli, payload)
		le.PutUint32(head[16:20], crc)
		buf.Write(head[:])
		buf.Write(payload)
	}
	return buf.Bytes()
}

// FuzzWALSegment feeds arbitrary bytes through the WAL record decoder:
// no input may panic, and no record may be delivered unless its
// framing and checksum verify — corrupt bytes are skipped-and-counted
// or abandoned as a torn tail, never silently accepted.
func FuzzWALSegment(f *testing.F) {
	f.Add([]byte{})
	f.Add(validSegment(1))
	f.Add(validSegment(3))
	tampered := validSegment(2)
	tampered[walHeader] ^= 0xFF // corrupt first payload byte
	f.Add(tampered)
	f.Add(validSegment(2)[:walHeader+1]) // torn tail
	f.Add(bytes.Repeat([]byte{0x48}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		delivered := 0
		stats, err := ReplayWAL(dir, 0, func(seq uint64, payload []byte) error {
			delivered++
			if seq == 0 {
				t.Fatal("delivered record with zero sequence")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay of fuzzed segment errored (must skip-and-count): %v", err)
		}
		if delivered != stats.Replayed {
			t.Fatalf("delivered %d records but stats counted %d", delivered, stats.Replayed)
		}
		// Every record delivered was fully framed inside the input.
		if min := delivered * walHeader; min > len(data) {
			t.Fatalf("delivered %d records from only %d bytes", delivered, len(data))
		}
	})
}

// FuzzContainer feeds arbitrary bytes through the sealed-container
// reader: no input may panic, and only a byte-perfect container is
// accepted.
func FuzzContainer(f *testing.F) {
	dir := f.TempDir()
	path := filepath.Join(dir, "seed")
	if err := WriteContainer(path, "k", [][]byte{[]byte("a"), []byte("bb")}, "t", nil); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0x10
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := readContainer(bytes.NewReader(data), "k")
		if err != nil {
			return
		}
		// Accepted: the input must round-trip byte-identically through a
		// rewrite, i.e. it really was a sealed container.
		p := filepath.Join(t.TempDir(), "rt")
		if werr := WriteContainer(p, "k", recs, "t", nil); werr != nil {
			t.Fatalf("accepted container failed rewrite: %v", werr)
		}
		back, rerr := os.ReadFile(p)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("accepted container does not round-trip byte-identically")
		}
	})
}
