package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The write-ahead log is a directory of append-only segment files, each
// named by the sequence number of its first record:
//
//	wal-00000000000000000001.seg
//	record: u32 magic | u64 seq | u32 len | u32 crc32c(seq|len|payload) | payload
//
// Appends go to the newest segment until it exceeds the rotation
// threshold, then a fresh segment opens. A crash can only tear the
// final record of the final segment — everything before it was fully
// framed — so replay reads records in order, skips-and-counts any
// checksum mismatch, and stops a segment at its torn tail. Reopening
// after a crash always starts a new segment: nothing ever appends
// after a tear, so one fsync discipline covers every record that
// matters. Sealed segments made redundant by a snapshot are deleted by
// TruncateThrough.
const (
	walRecMagic uint32 = 0x4C57_4D48 // "HMWL" little-endian
	walHeader          = 4 + 8 + 4 + 4
	// DefaultSegmentBytes is the rotation threshold (1 MiB).
	DefaultSegmentBytes = 1 << 20
	// maxWALRecord bounds one record so a corrupt length cannot drive an
	// allocation bomb during replay.
	maxWALRecord = 16 << 20

	walPrefix = "wal-"
	walSuffix = ".seg"
)

// WALOptions configures OpenWAL.
type WALOptions struct {
	// Dir holds the segment files (created if missing).
	Dir string
	// SegmentBytes is the rotation threshold (DefaultSegmentBytes).
	SegmentBytes int64
	// Target labels appends for the crash-injection seam ("wal").
	Target string
	// Kill is the crash-injection seam (nil in production).
	Kill KillFunc
}

// WAL is an open, appendable write-ahead log. Safe for concurrent use.
type WAL struct {
	opts WALOptions

	mu      sync.Mutex
	f       *os.File
	segSize int64 // bytes in the active segment
	written int64 // bytes appended since open, across segments (kill offsets index this)
	nextSeq uint64
	dead    bool // an injected crash happened; the process is "gone"
}

// OpenWAL opens dir for appending, scanning existing segments to find
// the next sequence number. Appends always go to a fresh segment —
// never after a possibly-torn tail — so every committed record is
// reachable by replay.
func OpenWAL(opts WALOptions) (*WAL, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("durable: wal: empty dir")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Target == "" {
		opts.Target = "wal"
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: wal: %w", err)
	}
	stats, err := ReplayWAL(opts.Dir, 0, nil)
	if err != nil {
		return nil, err
	}
	w := &WAL{opts: opts, nextSeq: stats.LastSeq + 1}
	if w.nextSeq == 0 {
		w.nextSeq = 1
	}
	if err := w.rotateLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// rotateLocked opens a fresh segment named by the next sequence number.
func (w *WAL) rotateLocked() error {
	if w.f != nil {
		w.f.Sync()
		w.f.Close()
		w.f = nil
	}
	path := filepath.Join(w.opts.Dir, segmentName(w.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if os.IsExist(err) {
		// A name collision means the existing segment holds no committed
		// record — any valid record in it would have advanced the scanned
		// sequence past its name. A byte-empty file is just an idle
		// restart's leftover: reuse it. Anything else is all tear; move
		// it aside as evidence and take the name.
		if fi, serr := os.Stat(path); serr == nil && fi.Size() == 0 {
			f, err = os.OpenFile(path, os.O_TRUNC|os.O_WRONLY, 0o644)
		} else {
			if _, qerr := QuarantineFile(path); qerr != nil {
				return qerr
			}
			f, err = os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		}
	}
	if err != nil {
		return fmt.Errorf("durable: wal: %w", err)
	}
	w.f = f
	w.segSize = 0
	syncDir(w.opts.Dir)
	return nil
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", walPrefix, firstSeq, walSuffix)
}

// Append frames and appends one record, returning its sequence number.
// Appends are not individually fsynced; call Sync at a batch boundary
// (the collector tick does). An injected crash mid-append leaves the
// exact torn bytes a real kill would and permanently fails the WAL, as
// a dead process would.
func (w *WAL) Append(payload []byte) (uint64, error) {
	if int64(len(payload)) > maxWALRecord {
		return 0, fmt.Errorf("durable: wal: record of %d bytes exceeds limit", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return 0, ErrKilled
	}
	if w.f == nil {
		return 0, fmt.Errorf("durable: wal: closed")
	}
	if w.segSize >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := w.nextSeq
	rec := make([]byte, walHeader+len(payload))
	le := binary.LittleEndian
	le.PutUint32(rec[0:4], walRecMagic)
	le.PutUint64(rec[4:12], seq)
	le.PutUint32(rec[12:16], uint32(len(payload)))
	copy(rec[walHeader:], payload)
	crc := crc32.Update(0, castagnoli, rec[4:16])
	crc = crc32.Update(crc, castagnoli, payload)
	le.PutUint32(rec[16:20], crc)

	if w.opts.Kill != nil {
		if offset, armed := w.opts.Kill(w.opts.Target); armed && w.written+int64(len(rec)) > offset {
			keep := offset - w.written
			if keep < 0 {
				keep = 0
			}
			n, _ := w.f.Write(rec[:keep])
			w.written += int64(n)
			w.f.Sync()
			w.dead = true
			return 0, ErrKilled
		}
	}
	n, err := w.f.Write(rec)
	w.segSize += int64(n)
	w.written += int64(n)
	if err != nil {
		return 0, fmt.Errorf("durable: wal append: %w", err)
	}
	w.nextSeq++
	return seq, nil
}

// Sync flushes appended records to stable storage — the seal on a
// collector tick's batch.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return ErrKilled
	}
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// Close syncs and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if !w.dead {
		w.f.Sync()
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// LastSeq returns the sequence number of the last appended record (0:
// none yet).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// TruncateThrough deletes sealed segments whose every record has
// sequence number <= seq — the GC a successful snapshot runs. The
// active segment is never deleted. Returns how many segments went.
func (w *WAL) TruncateThrough(seq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := listSegments(w.opts.Dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		// Segment i's records all precede segment i+1's first sequence
		// number; it is fully covered iff that bound is <= seq+1.
		if segs[i+1].firstSeq <= seq+1 {
			if os.Remove(segs[i].path) == nil {
				removed++
			}
		}
	}
	if removed > 0 {
		syncDir(w.opts.Dir)
	}
	return removed, nil
}

type segmentFile struct {
	path     string
	firstSeq uint64
}

// listSegments returns dir's segment files sorted by first sequence.
func listSegments(dir string) ([]segmentFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("durable: wal: %w", err)
	}
	var segs []segmentFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		numeric := strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix)
		first, err := strconv.ParseUint(numeric, 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segmentFile{path: filepath.Join(dir, name), firstSeq: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Replayed counts records delivered to the callback.
	Replayed int
	// Skipped counts records below or at the caller's floor.
	Skipped int
	// Corrupt counts records dropped for a checksum mismatch with intact
	// framing — skipped-and-counted, never silently accepted.
	Corrupt int
	// Torn counts segments abandoned at an unreadable tail (short read
	// or mangled framing) — the signature of a crash mid-append.
	Torn int
	// LastSeq is the highest valid sequence number seen anywhere.
	LastSeq uint64
}

// ReplayWAL scans every segment in dir in order, delivering each valid
// record with sequence number > after to fn (which may be nil to scan
// for stats only). A checksum mismatch with intact framing skips just
// that record; a torn or mangled tail abandons the rest of its segment.
// An fn error aborts the replay.
func ReplayWAL(dir string, after uint64, fn func(seq uint64, payload []byte) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		return stats, err
	}
	for _, seg := range segs {
		if err := replaySegment(seg.path, after, fn, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

func replaySegment(path string, after uint64, fn func(uint64, []byte) error, stats *ReplayStats) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("durable: wal replay: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	le := binary.LittleEndian
	var head [walHeader]byte
	for {
		_, err := io.ReadFull(br, head[:])
		if err == io.EOF {
			return nil // clean end of segment
		}
		if err != nil {
			stats.Torn++ // partial header: crash mid-append
			return nil
		}
		if le.Uint32(head[0:4]) != walRecMagic {
			// Framing lost; nothing after this point can be trusted.
			stats.Torn++
			return nil
		}
		seq := le.Uint64(head[4:12])
		length := le.Uint32(head[12:16])
		if int64(length) > maxWALRecord {
			stats.Torn++
			return nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			stats.Torn++ // torn tail: header landed, payload did not
			return nil
		}
		crc := crc32.Update(0, castagnoli, head[4:16])
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != le.Uint32(head[16:20]) {
			stats.Corrupt++
			continue // framing intact: skip-and-count just this record
		}
		if seq > stats.LastSeq {
			stats.LastSeq = seq
		}
		if seq <= after {
			stats.Skipped++
			continue
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return err
			}
		}
		stats.Replayed++
	}
}
