package durable

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

func appendN(t *testing.T, w *WAL, n int) []uint64 {
	t.Helper()
	var seqs []uint64
	for i := 0; i < n; i++ {
		seq, err := w.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 20)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []string
	stats, err := ReplayWAL(dir, 0, func(seq uint64, payload []byte) error {
		got = append(got, string(payload))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 20 || stats.Corrupt != 0 || stats.Torn != 0 {
		t.Fatalf("stats = %+v, want 20 clean records", stats)
	}
	if stats.LastSeq != 20 {
		t.Fatalf("LastSeq = %d, want 20", stats.LastSeq)
	}
	for i, p := range got {
		if want := fmt.Sprintf("record-%d", i); p != want {
			t.Fatalf("record %d = %q, want %q (order lost)", i, p, want)
		}
	}
	// The floor skips replayed-already records.
	stats, err = ReplayWAL(dir, 15, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 5 || stats.Skipped != 15 {
		t.Fatalf("floored stats = %+v, want 5 replayed / 15 skipped", stats)
	}
}

// TestWALReopenContinuesSequence: a reopened WAL appends with strictly
// increasing sequence numbers into a fresh segment, and replay sees one
// continuous history.
func TestWALReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 5)
	w.Close()
	w2, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seqs := appendN(t, w2, 3)
	if seqs[0] != 6 {
		t.Fatalf("reopened WAL started at seq %d, want 6", seqs[0])
	}
	w2.Close()
	stats, err := ReplayWAL(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 8 || stats.LastSeq != 8 {
		t.Fatalf("stats = %+v, want 8 records through seq 8", stats)
	}
}

// TestWALRotationAndGC: small segments rotate; a snapshot's
// TruncateThrough deletes exactly the fully covered sealed segments.
func TestWALRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 40)
	w.Sync()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce at least 3", len(segs))
	}
	// GC through a mid-stream snapshot point: earlier sealed segments
	// go, the segment containing seq 20 and everything after stays.
	removed, err := w.TruncateThrough(20)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("GC removed nothing despite covered segments")
	}
	stats, err := ReplayWAL(dir, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 20 {
		t.Fatalf("post-GC replay above floor = %d records, want 20", stats.Replayed)
	}
	if stats.LastSeq != 40 {
		t.Fatalf("post-GC LastSeq = %d, want 40", stats.LastSeq)
	}
	// GC through the end never deletes the active segment.
	w.TruncateThrough(40)
	segs, _ = listSegments(dir)
	if len(segs) == 0 {
		t.Fatal("GC deleted the active segment")
	}
	w.Close()
}

// TestWALCorruptRecordSkippedAndCounted: a bit flip inside one record's
// payload drops exactly that record; records after it in the same
// segment still replay.
func TestWALCorruptRecordSkippedAndCounted(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 3)
	w.Close()
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle record's payload (records are
	// header + "record-N", all the same length here).
	recLen := len(data) / 3
	data[recLen+walHeader] ^= 0x01
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	stats, err := ReplayWAL(dir, 0, func(seq uint64, _ []byte) error {
		got = append(got, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", stats.Corrupt)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("replayed seqs %v, want [1 3]", got)
	}
}

// TestWALTornTail: truncating the final record mid-payload abandons
// only the tear; every fully framed record before it replays.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 3)
	w.Close()
	segs, _ := listSegments(dir)
	data, _ := os.ReadFile(segs[0].path)
	if err := os.WriteFile(segs[0].path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := ReplayWAL(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 2 || stats.Torn != 1 {
		t.Fatalf("stats = %+v, want 2 replayed / 1 torn", stats)
	}
}

// TestWALKillSweep is the crash-safety property for the journal: for a
// kill injected at every byte offset of the append stream, replay
// recovers exactly the records whose append returned success before the
// crash — no committed record lost, no torn record accepted.
func TestWALKillSweep(t *testing.T) {
	payload := func(i int) []byte { return []byte(fmt.Sprintf("outcome-%02d", i)) }
	recBytes := walHeader + len(payload(0))
	total := int64(recBytes * 8)
	for off := int64(0); off < total; off++ {
		dir := t.TempDir()
		w, err := OpenWAL(WALOptions{Dir: dir, Kill: armedAt(off), Target: "wal"})
		if err != nil {
			t.Fatal(err)
		}
		var committed []uint64
		var killed bool
		for i := 0; i < 8; i++ {
			seq, err := w.Append(payload(i))
			if err == ErrKilled {
				killed = true
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			committed = append(committed, seq)
		}
		if !killed {
			t.Fatalf("offset %d: no kill landed within 8 appends", off)
		}
		// The process is dead; a new one replays the directory.
		var replayed []uint64
		stats, err := ReplayWAL(dir, 0, func(seq uint64, p []byte) error {
			if !bytes.Equal(p, payload(int(seq-1))) {
				t.Fatalf("offset %d: seq %d replayed corrupt payload %q", off, seq, p)
			}
			replayed = append(replayed, seq)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(replayed) != len(committed) {
			t.Fatalf("offset %d: replayed %d records, committed %d (stats %+v)",
				off, len(replayed), len(committed), stats)
		}
		for i := range committed {
			if replayed[i] != committed[i] {
				t.Fatalf("offset %d: replay order %v != committed %v", off, replayed, committed)
			}
		}
		// Recovery appends into a fresh segment past the tear.
		w2, err := OpenWAL(WALOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := w2.Append([]byte("post-crash"))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(len(committed))+1 {
			t.Fatalf("offset %d: post-crash seq %d, want %d", off, seq, len(committed)+1)
		}
		w2.Close()
	}
}
