package exec

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/gen"
)

var allSchedules = []config.Schedule{
	config.ScheduleStatic, config.ScheduleDynamic,
	config.ScheduleGuided, config.ScheduleAuto,
}

func TestNewPoolMapsM(t *testing.T) {
	m := config.M{Cores: 2, ThreadsPerCore: 2, Schedule: config.ScheduleDynamic, ChunkSize: 8}
	p := NewPool(m)
	if p.Workers() < 1 || p.Workers() > 4 {
		t.Fatalf("workers=%d", p.Workers())
	}
	if NewPool(config.M{}).Workers() != 1 {
		t.Fatal("zero config must fall back to one worker")
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, sched := range allSchedules {
		for _, workers := range []int{1, 2, 4, 7} {
			p := NewPoolN(workers, sched, 3)
			n := 1000
			counts := make([]atomic.Int32, n)
			p.For(n, func(start, end int) {
				for i := start; i < end; i++ {
					counts[i].Add(1)
				}
			})
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("sched=%v workers=%d: index %d visited %d times",
						sched, workers, i, c)
				}
			}
		}
	}
}

func TestForEmptyAndTiny(t *testing.T) {
	p := NewPoolN(4, config.ScheduleDynamic, 16)
	p.For(0, func(int, int) { t.Fatal("body called for n=0") })
	ran := false
	p.For(1, func(s, e int) {
		if s != 0 || e != 1 {
			t.Fatalf("range [%d,%d)", s, e)
		}
		ran = true
	})
	if !ran {
		t.Fatal("body not called for n=1")
	}
}

func TestReduceFloat64(t *testing.T) {
	for _, sched := range allSchedules {
		p := NewPoolN(4, sched, 7)
		sum := p.ReduceFloat64(100, func(start, end int) float64 {
			var s float64
			for i := start; i < end; i++ {
				s += float64(i)
			}
			return s
		})
		if sum != 4950 {
			t.Fatalf("sched=%v: sum=%v", sched, sum)
		}
	}
	if got := NewPoolN(2, config.ScheduleStatic, 1).ReduceFloat64(0, nil); got != 0 {
		t.Fatal("empty reduce")
	}
}

func TestReduceInt64(t *testing.T) {
	p := NewPoolN(8, config.ScheduleGuided, 4)
	sum := p.ReduceInt64(257, func(start, end int) int64 {
		return int64(end - start)
	})
	if sum != 257 {
		t.Fatalf("sum=%d", sum)
	}
}

func TestParallelBFSMatchesSequential(t *testing.T) {
	for _, sched := range allSchedules {
		g := gen.ByShort(gen.TableICached(gen.Small), "FB").Graph
		src := algo.SourceVertex(g)
		want, _, _ := algo.BFS(g, src)
		p := NewPoolN(4, sched, 32)
		got := BFS(p, g, src)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("sched=%v: depth[%d]=%d want %d", sched, v, got[v], want[v])
			}
		}
	}
}

func TestParallelBellmanFordMatchesSequential(t *testing.T) {
	g := gen.ByShort(gen.TableICached(gen.Small), "CA").Graph
	src := algo.SourceVertex(g)
	want, _, _ := algo.SSSPBellmanFord(g, src)
	p := NewPoolN(8, config.ScheduleDynamic, 64)
	got := BellmanFord(p, g, src)
	for v := range want {
		wi, gi := math.IsInf(float64(want[v]), 1), math.IsInf(float64(got[v]), 1)
		if wi != gi {
			t.Fatalf("reachability mismatch at %d", v)
		}
		if !wi && math.Abs(float64(want[v]-got[v])) > 1e-3 {
			t.Fatalf("dist[%d]=%v want %v", v, got[v], want[v])
		}
	}
}

func TestParallelPageRankMatchesSequential(t *testing.T) {
	g := gen.ByShort(gen.TableICached(gen.Small), "CAGE").Graph
	want, _, _ := algo.PageRank(g, 10)
	p := NewPoolN(4, config.ScheduleStatic, 16)
	got := PageRank(p, g, 10)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d]=%v want %v", v, got[v], want[v])
		}
	}
}

func TestParallelTriangleMatchesSequential(t *testing.T) {
	g := gen.ByShort(gen.TableICached(gen.Small), "CO").Graph
	want, _, _ := algo.TriangleCount(g)
	for _, workers := range []int{1, 3, 8} {
		p := NewPoolN(workers, config.ScheduleDynamic, 8)
		if got := TriangleCount(p, g); got != want {
			t.Fatalf("workers=%d: triangles=%d want %d", workers, got, want)
		}
	}
}

func TestParallelComponentsMatchSequential(t *testing.T) {
	g := gen.ByShort(gen.TableICached(gen.Small), "Rgg").Graph
	_, res, _ := algo.ConnectedComponents(g)
	p := NewPoolN(6, config.ScheduleGuided, 16)
	labels := ConnectedComponents(p, g)
	seen := map[int32]bool{}
	for v := 0; v < g.NumVertices(); v++ {
		seen[labels[v]] = true
		for _, u := range g.Neighbors(v) {
			if labels[v] != labels[u] {
				t.Fatalf("edge (%d,%d) crosses labels", v, u)
			}
		}
	}
	if len(seen) != int(res.Checksum) {
		t.Fatalf("components=%d want %v", len(seen), res.Checksum)
	}
}

func TestParallelKernelsDeterministicProperty(t *testing.T) {
	// BFS depths and BF distances are deterministic across runs and
	// worker counts on random graphs.
	f := func(seed int64) bool {
		g := gen.UniformUndirected("p", 50, 150, 8, seed)
		src := algo.SourceVertex(g)
		d1 := BFS(NewPoolN(2, config.ScheduleDynamic, 4), g, src)
		d2 := BFS(NewPoolN(7, config.ScheduleGuided, 2), g, src)
		for v := range d1 {
			if d1[v] != d2[v] {
				return false
			}
		}
		b1 := BellmanFord(NewPoolN(3, config.ScheduleStatic, 1), g, src)
		b2 := BellmanFord(NewPoolN(5, config.ScheduleDynamic, 16), g, src)
		for v := range b1 {
			if math.Float32bits(b1[v]) != math.Float32bits(b2[v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleVertexKernels(t *testing.T) {
	single := gen.Uniform("single", 1, 0, 0, 1)
	p := NewPoolN(2, config.ScheduleDynamic, 4)
	if d := BFS(p, single, 0); d[0] != 0 {
		t.Fatal("single vertex BFS")
	}
	if l := ConnectedComponents(p, single); l[0] != 0 {
		t.Fatal("single vertex CC")
	}
	if d := BellmanFord(p, single, 0); d[0] != 0 {
		t.Fatal("single vertex BF")
	}
}
