package exec

import (
	"math"
	"sync"
	"sync/atomic"

	"heteromap/internal/graph"
)

// Parallel graph kernels deployed through the pool. Each kernel computes
// exactly the same answer as its instrumented sequential counterpart in
// internal/algo (tests enforce the equivalence); the concurrency
// discipline mirrors what the paper's OpenMP benchmarks do on the
// multicore: level-synchronous frontiers with CAS visited-marking,
// atomic-min distance relaxation, double-buffered rank updates.

// BFS computes breadth-first levels in parallel: each level's frontier
// expands concurrently, visited marking uses compare-and-swap, and the
// per-worker next-frontier fragments are concatenated at the barrier.
// Levels are deterministic regardless of interleaving.
func BFS(p *Pool, g *graph.Graph, src int) []int32 {
	n := g.NumVertices()
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	if n == 0 {
		return depth
	}
	adepth := make([]atomic.Int32, n)
	for i := range adepth {
		adepth[i].Store(-1)
	}
	adepth[src].Store(0)

	frontier := []int32{int32(src)}
	var level int32
	for len(frontier) > 0 {
		level++
		var mu sync.Mutex
		var next []int32
		p.For(len(frontier), func(start, end int) {
			var local []int32
			for _, v := range frontier[start:end] {
				for _, u := range g.Neighbors(int(v)) {
					if adepth[u].CompareAndSwap(-1, level) {
						local = append(local, u)
					}
				}
			}
			if len(local) > 0 {
				mu.Lock()
				next = append(next, local...)
				mu.Unlock()
			}
		})
		frontier = next
	}
	for i := range depth {
		depth[i] = adepth[i].Load()
	}
	return depth
}

// BellmanFord relaxes all edges per round in parallel with atomic-min
// distance updates (CAS on the float bit pattern; non-negative IEEE 754
// floats order like their unsigned bit patterns), iterating to the fixed
// point. Distances are deterministic.
func BellmanFord(p *Pool, g *graph.Graph, src int) []float32 {
	n := g.NumVertices()
	dist := make([]atomic.Uint32, n)
	inf := math.Float32bits(float32(math.Inf(1)))
	for i := range dist {
		dist[i].Store(inf)
	}
	out := make([]float32, n)
	if n == 0 {
		return out
	}
	dist[src].Store(math.Float32bits(0))

	atomicMin := func(a *atomic.Uint32, v float32) bool {
		bits := math.Float32bits(v)
		for {
			cur := a.Load()
			if bits >= cur {
				return false
			}
			if a.CompareAndSwap(cur, bits) {
				return true
			}
		}
	}

	for round := 0; round < n; round++ {
		var changed atomic.Bool
		p.For(n, func(start, end int) {
			for v := start; v < end; v++ {
				dv := math.Float32frombits(dist[v].Load())
				if math.IsInf(float64(dv), 1) {
					continue
				}
				nb := g.Neighbors(v)
				ws := g.NeighborWeights(v)
				for i, u := range nb {
					w := float32(1)
					if ws != nil {
						w = ws[i]
					}
					if atomicMin(&dist[u], dv+w) {
						changed.Store(true)
					}
				}
			}
		})
		if !changed.Load() {
			break
		}
	}
	for i := range out {
		out[i] = math.Float32frombits(dist[i].Load())
	}
	return out
}

// PageRank runs the pull-based power iteration in parallel with double
// buffering; the per-sweep L1 error reduces across workers. Matching
// internal/algo's convergence rule keeps results bit-stable enough for
// the equivalence tests (same damping, tolerance, iteration cap).
func PageRank(p *Pool, g *graph.Graph, maxIters int) []float64 {
	const (
		damping   = 0.85
		tolerance = 1e-4
	)
	n := g.NumVertices()
	ranks := make([]float64, n)
	if n == 0 {
		return ranks
	}
	if maxIters <= 0 {
		maxIters = 20
	}
	inv := 1 / float64(n)
	for i := range ranks {
		ranks[i] = inv
	}
	next := make([]float64, n)
	contrib := make([]float64, n)

	for iter := 0; iter < maxIters; iter++ {
		p.For(n, func(start, end int) {
			for v := start; v < end; v++ {
				if d := g.Degree(v); d > 0 {
					contrib[v] = ranks[v] / float64(d)
				} else {
					contrib[v] = 0
				}
			}
		})
		p.For(n, func(start, end int) {
			for v := start; v < end; v++ {
				var sum float64
				for _, u := range g.Neighbors(v) {
					sum += contrib[u]
				}
				next[v] = (1-damping)*inv + damping*sum
			}
		})
		delta := p.ReduceFloat64(n, func(start, end int) float64 {
			var d float64
			for v := start; v < end; v++ {
				d += math.Abs(next[v] - ranks[v])
			}
			return d
		})
		ranks, next = next, ranks
		if delta < tolerance {
			break
		}
	}
	return ranks
}

// TriangleCount counts triangles in parallel over vertices with
// per-worker partial counters (same oriented merge-intersection as the
// sequential kernel).
func TriangleCount(p *Pool, g *graph.Graph) int64 {
	n := g.NumVertices()
	return p.ReduceInt64(n, func(start, end int) int64 {
		var local int64
		for v := start; v < end; v++ {
			nv := g.Neighbors(v)
			for _, u := range nv {
				if int(u) <= v {
					continue
				}
				nu := g.Neighbors(int(u))
				i, j := 0, 0
				for i < len(nv) && j < len(nu) {
					a, b := nv[i], nu[j]
					if a <= u {
						i++
						continue
					}
					if b <= u {
						j++
						continue
					}
					switch {
					case a == b:
						local++
						i++
						j++
					case a < b:
						i++
					default:
						j++
					}
				}
			}
		}
		return local
	})
}

// ConnectedComponents labels components in parallel: rounds of
// atomic-min label propagation over edges until a fixed point. The
// converged labels (the minimum vertex id of each component) are
// deterministic.
func ConnectedComponents(p *Pool, g *graph.Graph) []int32 {
	n := g.NumVertices()
	labels := make([]atomic.Int32, n)
	for i := range labels {
		labels[i].Store(int32(i))
	}
	out := make([]int32, n)
	if n == 0 {
		return out
	}
	atomicMin := func(a *atomic.Int32, v int32) bool {
		for {
			cur := a.Load()
			if v >= cur {
				return false
			}
			if a.CompareAndSwap(cur, v) {
				return true
			}
		}
	}
	for {
		var changed atomic.Bool
		p.For(n, func(start, end int) {
			for v := start; v < end; v++ {
				lv := labels[v].Load()
				for _, u := range g.Neighbors(v) {
					lu := labels[u].Load()
					switch {
					case lu < lv:
						if atomicMin(&labels[v], lu) {
							changed.Store(true)
						}
						lv = labels[v].Load()
					case lv < lu:
						if atomicMin(&labels[u], lv) {
							changed.Store(true)
						}
					}
				}
			}
		})
		if !changed.Load() {
			break
		}
	}
	for i := range out {
		out[i] = labels[i].Load()
	}
	return out
}
