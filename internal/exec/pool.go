// Package exec deploys machine choices on the host: an OpenMP-like
// parallel runtime whose scheduling kind, chunk size and worker count
// come from the M vector, plus parallel implementations of the
// data-parallel graph kernels. The simulator (internal/machine) prices
// configurations; this package is the part of deployment that can run
// for real on the host CPU — the reproduction's stand-in for launching
// the tuned OpenMP binary of the paper's Fig 8 step 3.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"heteromap/internal/config"
)

// Pool is a reusable team of workers honoring an M configuration's
// multicore choices. The zero value is not usable; construct with
// NewPool.
type Pool struct {
	workers  int
	schedule config.Schedule
	chunk    int
}

// NewPool maps a multicore M configuration onto the host: worker count
// is the configured thread total capped by the host's parallelism, the
// scheduling kind and chunk size transfer directly.
func NewPool(m config.M) *Pool {
	workers := m.MulticoreThreads()
	if maxP := runtime.GOMAXPROCS(0); workers > maxP {
		workers = maxP
	}
	if workers < 1 {
		workers = 1
	}
	chunk := m.ChunkSize
	if chunk < 1 {
		chunk = 1
	}
	return &Pool{workers: workers, schedule: m.Schedule, chunk: chunk}
}

// NewPoolN builds a pool with an explicit worker count and schedule.
// Unlike NewPool it takes the count literally — tests and sweeps may
// deliberately oversubscribe the host.
func NewPoolN(workers int, schedule config.Schedule, chunk int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if chunk < 1 {
		chunk = 1
	}
	return &Pool{workers: workers, schedule: schedule, chunk: chunk}
}

// Workers returns the deployed worker count.
func (p *Pool) Workers() int { return p.workers }

// For executes body(start, end) over disjoint sub-ranges covering
// [0, n), in parallel across the pool's workers, using the configured
// scheduling discipline:
//
//   - static: contiguous near-equal ranges, one per worker
//   - dynamic: workers grab fixed-size chunks from a shared counter
//   - guided: like dynamic with geometrically shrinking chunks
//   - auto: dynamic
//
// For returns when every index has been processed. Bodies run
// concurrently and must synchronize any shared writes themselves.
func (p *Pool) For(n int, body func(start, end int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 {
		body(0, n)
		return
	}
	switch p.schedule {
	case config.ScheduleStatic:
		p.forStatic(n, body)
	case config.ScheduleGuided:
		p.forGuided(n, body)
	default: // dynamic, auto
		p.forDynamic(n, p.chunk, body)
	}
}

func (p *Pool) forStatic(n int, body func(start, end int)) {
	var wg sync.WaitGroup
	per := (n + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		start := w * per
		if start >= n {
			break
		}
		end := start + per
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			body(s, e)
		}(start, end)
	}
	wg.Wait()
}

func (p *Pool) forDynamic(n, chunk int, body func(start, end int)) {
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				body(start, end)
			}
		}()
	}
	wg.Wait()
}

func (p *Pool) forGuided(n int, body func(start, end int)) {
	// Guided scheduling: each grab takes remaining/(2*workers), floored
	// at the configured chunk size.
	var mu sync.Mutex
	cursor := 0
	grab := func() (int, int) {
		mu.Lock()
		defer mu.Unlock()
		if cursor >= n {
			return -1, -1
		}
		remaining := n - cursor
		size := remaining / (2 * p.workers)
		if size < p.chunk {
			size = p.chunk
		}
		if size > remaining {
			size = remaining
		}
		start := cursor
		cursor += size
		return start, start + size
	}
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s, e := grab()
				if s < 0 {
					return
				}
				body(s, e)
			}
		}()
	}
	wg.Wait()
}

// ReduceFloat64 runs body over [0, n) like For, collecting one float64
// partial per invocation and summing them — the parallel-reduction
// primitive the benchmarks' error/count phases use.
func (p *Pool) ReduceFloat64(n int, body func(start, end int) float64) float64 {
	if n <= 0 {
		return 0
	}
	var mu sync.Mutex
	total := 0.0
	p.For(n, func(start, end int) {
		partial := body(start, end)
		mu.Lock()
		total += partial
		mu.Unlock()
	})
	return total
}

// ReduceInt64 is ReduceFloat64 for integer counters, lock-free.
func (p *Pool) ReduceInt64(n int, body func(start, end int) int64) int64 {
	if n <= 0 {
		return 0
	}
	var total atomic.Int64
	p.For(n, func(start, end int) {
		total.Add(body(start, end))
	})
	return total.Load()
}
