// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII): Table I-IV and Figures 1, 4-5, 7, 11-16. Each
// experiment is a function returning a typed result with a String()
// rendering; cmd/hmexp exposes them on the command line and the
// repository-root benchmarks wrap them as testing.B targets.
package experiments

import (
	"sync"

	"heteromap/internal/algo"
	"heteromap/internal/core"
	"heteromap/internal/gen"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
	"heteromap/internal/predict/adaptive"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/predict/nn"
	"heteromap/internal/predict/regress"
	"heteromap/internal/train"
)

// Context caches the expensive shared state of the experiment suite:
// characterized workloads, baselines, training databases and trained
// learners. A Context is safe for concurrent use by independent
// experiments once constructed.
type Context struct {
	// Size selects the generated-analog scale.
	Size gen.Size
	// TrainCfg sizes the offline training runs.
	TrainCfg train.Config
	// NNEpochs overrides neural network training epochs (0 = default).
	NNEpochs int

	mu        sync.Mutex
	datasets  []*gen.Dataset
	workloads []*core.Workload
	baselines map[baselineKey]core.Baselines
	dbs       map[dbKey]*train.DB
	learners  map[learnerKey]predict.Predictor
}

type baselineKey struct {
	pair      string
	workload  string
	objective train.Objective
}

type dbKey struct {
	pair      string
	objective train.Objective
}

type learnerKey struct {
	pair      string
	objective train.Objective
	name      string
}

// NewContext returns a full-scale experiment context (Medium analogs,
// default training size).
func NewContext() *Context {
	return &Context{
		Size:      gen.Medium,
		TrainCfg:  train.DefaultConfig(),
		baselines: map[baselineKey]core.Baselines{},
		dbs:       map[dbKey]*train.DB{},
		learners:  map[learnerKey]predict.Predictor{},
	}
}

// NewFastContext returns a context sized for unit tests and quick runs:
// Small analogs and a reduced training set.
func NewFastContext() *Context {
	c := NewContext()
	c.Size = gen.Small
	c.TrainCfg = train.FastConfig()
	c.NNEpochs = 25
	return c
}

// Datasets returns the Table I catalog at the context's scale.
func (c *Context) Datasets() []*gen.Dataset {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.datasets == nil {
		c.datasets = gen.TableICached(c.Size)
	}
	return c.datasets
}

// Workloads returns all 81 characterized benchmark-input combinations.
func (c *Context) Workloads() ([]*core.Workload, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.workloads == nil {
		if c.datasets == nil {
			c.datasets = gen.TableICached(c.Size)
		}
		ws, err := core.CharacterizeAll(algo.All(), c.datasets)
		if err != nil {
			return nil, err
		}
		c.workloads = ws
	}
	return c.workloads, nil
}

// Baselines returns (and caches) the exhaustively tuned single-accelerator
// and ideal references for one workload on one pair.
func (c *Context) Baselines(pair machine.Pair, w *core.Workload, obj train.Objective) core.Baselines {
	key := baselineKey{pair: pair.Name(), workload: w.Name(), objective: obj}
	c.mu.Lock()
	if b, ok := c.baselines[key]; ok {
		c.mu.Unlock()
		return b
	}
	c.mu.Unlock()
	b := core.ComputeBaselines(pair, w, obj)
	c.mu.Lock()
	c.baselines[key] = b
	c.mu.Unlock()
	return b
}

// DB returns (and caches) the offline training database for a pair and
// objective.
func (c *Context) DB(pair machine.Pair, obj train.Objective) *train.DB {
	key := dbKey{pair: pair.Name(), objective: obj}
	c.mu.Lock()
	if db, ok := c.dbs[key]; ok {
		c.mu.Unlock()
		return db
	}
	c.mu.Unlock()
	cfg := c.TrainCfg
	cfg.Objective = obj
	db := train.BuildDatabase(pair, cfg)
	c.mu.Lock()
	c.dbs[key] = db
	c.mu.Unlock()
	return db
}

// Learner names used across Table IV and the scheduler figures.
const (
	LearnerDecisionTree = "Decision Tree"
	LearnerLinear       = "Linear Regression"
	LearnerMulti        = "Multi Regression"
	LearnerAdaptive     = "Adaptive Library"
	LearnerDeep16       = "Deep.16"
	LearnerDeep32       = "Deep.32"
	LearnerDeep64       = "Deep.64"
	LearnerDeep128      = "Deep.128"
	// LearnerDeep128L is the larger-database Deep.128 row at the bottom
	// of Table IV.
	LearnerDeep128L = "Deep.128 (large)"
)

// TableIVLearners lists the Table IV rows in paper order.
func TableIVLearners() []string {
	return []string{
		LearnerDecisionTree, LearnerLinear, LearnerMulti, LearnerAdaptive,
		LearnerDeep16, LearnerDeep32, LearnerDeep64, LearnerDeep128,
		LearnerDeep128L,
	}
}

// Learner returns (and caches) a trained predictor by Table IV name for a
// pair and objective. The decision tree needs no training; everything
// else trains on the cached database.
func (c *Context) Learner(pair machine.Pair, obj train.Objective, name string) (predict.Predictor, error) {
	key := learnerKey{pair: pair.Name(), objective: obj, name: name}
	c.mu.Lock()
	if p, ok := c.learners[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()

	limits := pair.Limits()
	var p predict.Predictor
	var trainable predict.Trainable
	switch name {
	case LearnerDecisionTree:
		p = dtree.New(limits)
	case LearnerLinear:
		trainable = regress.NewLinear(limits)
	case LearnerMulti:
		trainable = regress.NewMulti(limits)
	case LearnerAdaptive:
		trainable = adaptive.New(limits)
	case LearnerDeep16, LearnerDeep32, LearnerDeep64, LearnerDeep128, LearnerDeep128L:
		hidden := map[string]int{
			LearnerDeep16: 16, LearnerDeep32: 32, LearnerDeep64: 64,
			LearnerDeep128: 128, LearnerDeep128L: 128,
		}[name]
		trainable = nn.New(limits, nn.Options{Hidden: hidden, Epochs: c.NNEpochs})
	default:
		return nil, errUnknownLearner(name)
	}
	if trainable != nil {
		db := c.DB(pair, obj)
		samples := db.Samples
		if name == LearnerDeep128L {
			// The paper's final Table IV row trains the best model on a
			// larger database; reuse the base database plus an extra
			// energy-agnostic batch.
			extraCfg := c.TrainCfg
			extraCfg.Objective = obj
			extraCfg.Seed = c.TrainCfg.Seed + 9973
			extra := train.BuildDatabase(pair, extraCfg)
			samples = append(append([]predict.Sample{}, samples...), extra.Samples...)
		}
		if err := trainable.Train(samples); err != nil {
			return nil, err
		}
		p = trainable
	}
	c.mu.Lock()
	c.learners[key] = p
	c.mu.Unlock()
	return p, nil
}

// System builds a core runtime for a trained learner.
func (c *Context) System(pair machine.Pair, obj train.Objective, learner string) (*core.System, error) {
	p, err := c.Learner(pair, obj, learner)
	if err != nil {
		return nil, err
	}
	return core.NewSystem(pair, p, obj), nil
}

type errUnknownLearner string

func (e errUnknownLearner) Error() string {
	return "experiments: unknown learner " + string(e)
}

// workloadsFor filters workloads by benchmark name.
func workloadsFor(ws []*core.Workload, bench string) []*core.Workload {
	var out []*core.Workload
	for _, w := range ws {
		if w.Benchmark.Name == bench {
			out = append(out, w)
		}
	}
	return out
}
