package experiments

import (
	"strings"
	"sync"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/machine"
)

// The fast context is expensive enough to share across tests.
var (
	ctxOnce sync.Once
	ctx     *Context
)

func fastCtx() *Context {
	ctxOnce.Do(func() { ctx = NewFastContext() })
	return ctx
}

func TestTable1(t *testing.T) {
	res := Table1(fastCtx())
	if len(res.Rows) != 9 {
		t.Fatalf("rows=%d want 9", len(res.Rows))
	}
	ca := res.Rows[0]
	if ca.Short != "CA" || ca.V != 1_900_000 || ca.Diameter != 850 {
		t.Fatalf("CA row %+v deviates from Table I", ca)
	}
	// Fig 4 worked example: CA discretizes to (0.1, 0.1, 0, 0.8).
	want := [4]float64{0.1, 0.1, 0, 0.8}
	for i := range want {
		if diff := ca.I[i] - want[i]; diff > 0.051 || diff < -0.051 {
			t.Fatalf("CA I%d=%v want %v", i+1, ca.I[i], want[i])
		}
	}
	if !strings.Contains(res.String(), "USA-Cal") {
		t.Fatal("rendering")
	}
}

func TestTable2(t *testing.T) {
	res := Table2()
	if len(res.Accels) != 4 {
		t.Fatal("Table II lists four accelerators")
	}
	s := res.String()
	for _, name := range []string{"GTX-750Ti", "GTX-970", "Xeon-Phi-7120P", "CPU-40-Core"} {
		if !strings.Contains(s, name) {
			t.Fatalf("rendering missing %s", name)
		}
	}
}

func TestTable3(t *testing.T) {
	res := Table3(fastCtx())
	if len(res.Rows) != 2 {
		t.Fatal("Table III has uniform-random and Kronecker rows")
	}
	if res.Samples <= 0 {
		t.Fatal("sample count")
	}
	if !strings.Contains(res.String(), "Kronecker") {
		t.Fatal("rendering")
	}
}

func TestFig1(t *testing.T) {
	res, err := Fig1(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Graphs) != 2 {
		t.Fatal("Fig 1 sweeps CA and CAGE")
	}
	ca := res.Graphs[0]
	if ca.Input != "CA" {
		t.Fatal("first sweep must be the road network")
	}
	// Paper: "The multicore performs better than the GPU for the sparse
	// road network".
	if ca.Winner != machine.PrimaryPair().Multicore.Name {
		t.Fatalf("CA winner %s, paper expects the Xeon Phi", ca.Winner)
	}
	// Threading curves must actually vary (the whole point of Fig 1)...
	for _, g := range res.Graphs {
		for _, s := range []Fig1Series{g.GPU, g.MC} {
			if len(s.Points) < 5 {
				t.Fatalf("%s/%s sweep too sparse", g.Input, s.Accel)
			}
			_, best := s.Best()
			worst := 0.0
			for _, p := range s.Points {
				if p.Seconds > worst {
					worst = p.Seconds
				}
			}
			if worst < best*2 {
				t.Fatalf("%s/%s: flat thread curve (%v..%v)", g.Input, s.Accel, best, worst)
			}
		}
		// ...and the GPU optimum must be at intermediate threading
		// ("intermediate threading performs best on the GPU").
		frac, _ := g.GPU.Best()
		if frac <= 0.001 || frac >= 0.999 {
			t.Errorf("%s: GPU best thread fraction %v should be intermediate", g.Input, frac)
		}
	}
	if !strings.Contains(res.String(), "winner") {
		t.Fatal("rendering")
	}
}

func TestFig5(t *testing.T) {
	res, err := Fig5(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatal("nine benchmark rows")
	}
	for _, row := range res.Rows {
		if row.Catalog.PhaseSum() < 0.99 {
			t.Errorf("%s catalog phase sum %v", row.Benchmark, row.Catalog.PhaseSum())
		}
		if row.Derived.PhaseSum() == 0 {
			t.Errorf("%s derived B empty", row.Benchmark)
		}
	}
	if !strings.Contains(res.String(), "SSSP-BF") {
		t.Fatal("rendering")
	}
}

func TestFig7(t *testing.T) {
	res, err := Fig7(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatal("Fig 7 walks SSSP-BF and SSSP-Delta")
	}
	bf, delta := res.Rows[0], res.Rows[1]
	if bf.SelectedAccel != config.GPU {
		t.Fatalf("SSSP-BF selected %v, Fig 7 selects the GPU", bf.SelectedAccel)
	}
	if delta.SelectedAccel != config.Multicore {
		t.Fatalf("SSSP-Delta selected %v, Fig 7 selects the multicore", delta.SelectedAccel)
	}
	for _, row := range res.Rows {
		if row.GapPct < -1e-9 {
			t.Fatalf("%s selected beats the exhaustive optimum: gap %v%%",
				row.Benchmark, row.GapPct)
		}
		// Paper reports ~15%; the reproduction stays within the same
		// regime (bounded well below 2x).
		if row.GapPct > 60 {
			t.Fatalf("%s selected-vs-optimal gap %v%% too large", row.Benchmark, row.GapPct)
		}
	}
}

func TestFig16(t *testing.T) {
	res, err := Fig16(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweeps) != 2 {
		t.Fatal("Fig 16 sweeps two pairings")
	}
	for _, sweep := range res.Sweeps {
		if len(sweep.Points) == 0 {
			t.Fatal("empty sweep")
		}
		// Normalization: nothing above 1.
		for _, p := range sweep.Points {
			if p.GPUOnly > 1+1e-9 || p.MCOnly > 1+1e-9 {
				t.Fatalf("normalization violated: %+v", p)
			}
			if p.BestOfPair > p.GPUOnly+1e-9 || p.BestOfPair > p.MCOnly+1e-9 {
				t.Fatalf("best-of-pair worse than a member: %+v", p)
			}
		}
		// "The multicore performs better when exposed to its full main
		// memory".
		if sweep.MCGainPct < 0 {
			t.Fatalf("%s: multicore memory gain %v%% negative", sweep.Pair, sweep.MCGainPct)
		}
	}
}

func TestWorkloadsCached(t *testing.T) {
	c := fastCtx()
	a, err := c.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 81 || &a[0] != &b[0] {
		t.Fatal("workloads must be characterized once and cached")
	}
}

func TestLearnerUnknown(t *testing.T) {
	if _, err := fastCtx().Learner(machine.PrimaryPair(), 0, "bogus"); err == nil {
		t.Fatal("expected unknown-learner error")
	}
}

func TestTableIVLearnerList(t *testing.T) {
	ls := TableIVLearners()
	if len(ls) != 9 {
		t.Fatalf("Table IV has nine rows, got %d", len(ls))
	}
	if ls[0] != LearnerDecisionTree || ls[len(ls)-1] != LearnerDeep128L {
		t.Fatal("row order deviates from the paper")
	}
}
