package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV export so experiment outputs can feed external plotting (the
// paper's figures are bar/line charts; cmd/hmexp -csv writes one file
// per experiment).

// Tabular is implemented by experiment results that export rows.
type Tabular interface {
	CSV() (header []string, rows [][]string)
}

// WriteCSV emits any Tabular result.
func WriteCSV(w io.Writer, t Tabular) error {
	cw := csv.NewWriter(w)
	header, rows := t.CSV()
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV implements Tabular.
func (r Table1Result) CSV() ([]string, [][]string) {
	header := []string{"dataset", "short", "V", "E", "maxdeg", "diameter",
		"genV", "genE", "I1", "I2", "I3", "I4"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name, row.Short,
			fmt.Sprint(row.V), fmt.Sprint(row.E),
			fmt.Sprint(row.MaxDeg), fmt.Sprint(row.Diameter),
			fmt.Sprint(row.GeneratedV), fmt.Sprint(row.GeneratedE),
			f1(row.I[0]), f1(row.I[1]), f1(row.I[2]), f1(row.I[3]),
		})
	}
	return header, rows
}

// CSV implements Tabular.
func (r Table4Result) CSV() ([]string, [][]string) {
	header := []string{"learner", "speedup_pct", "accuracy_pct", "overhead_ns"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Learner, f1(row.SpeedupPct), f1(row.AccuracyPct),
			fmt.Sprint(row.Overhead.Nanoseconds()),
		})
	}
	return header, rows
}

// CSV implements Tabular.
func (r SchedulerResult) CSV() ([]string, [][]string) {
	header := []string{"combo", "gpu_only", "mc_only", "heteromap", "ideal", "chosen"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Combo, f3(row.GPUOnly), f3(row.MCOnly), f3(row.HeteroMap),
			f3(row.Ideal), row.ChosenAccel.String(),
		})
	}
	return header, rows
}

// CSV implements Tabular.
func (r Fig1Result) CSV() ([]string, [][]string) {
	header := []string{"input", "accel", "threads", "thread_frac", "seconds"}
	var rows [][]string
	for _, g := range r.Graphs {
		for _, s := range []Fig1Series{g.GPU, g.MC} {
			for _, p := range s.Points {
				rows = append(rows, []string{
					g.Input, s.Accel, fmt.Sprint(p.Threads),
					f3(p.ThreadFrac), fmt.Sprintf("%.6g", p.Seconds),
				})
			}
		}
	}
	return header, rows
}

// CSV implements Tabular.
func (r Fig12Result) CSV() ([]string, [][]string) {
	header := []string{"benchmark", "gpu_only", "mc_only", "heteromap", "ideal"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Benchmark, f3(row.GPUOnly), f3(row.MCOnly),
			f3(row.HeteroMap), f3(row.Ideal),
		})
	}
	return header, rows
}

// CSV implements Tabular.
func (r Fig13Result) CSV() ([]string, [][]string) {
	header := []string{"benchmark", "gpu_only_pct", "mc_only_pct", "heteromap_pct"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Benchmark, f1(row.GPUOnly), f1(row.MCOnly), f1(row.HeteroMap),
		})
	}
	return header, rows
}

// CSV implements Tabular.
func (r Fig16Result) CSV() ([]string, [][]string) {
	header := []string{"pair", "gpu_mem_gb", "mc_mem_gb", "gpu_only", "mc_only", "best_of_pair"}
	var rows [][]string
	for _, sweep := range r.Sweeps {
		for _, p := range sweep.Points {
			rows = append(rows, []string{
				sweep.Pair, fmt.Sprint(p.GPUMemGB), fmt.Sprint(p.MCMemGB),
				f3(p.GPUOnly), f3(p.MCOnly), f3(p.BestOfPair),
			})
		}
	}
	return header, rows
}

// CSV implements Tabular.
func (r Fig15Result) CSV() ([]string, [][]string) {
	header := []string{"pair", "benchmark", "gpu_only", "cpu_only", "heteromap"}
	var rows [][]string
	for _, p := range r.Pairs {
		for _, row := range p.Rows {
			rows = append(rows, []string{
				p.Pair, row.Benchmark, f2(row.GPUOnly), f2(row.CPUOnly), f2(row.HeteroMap),
			})
		}
	}
	return header, rows
}
