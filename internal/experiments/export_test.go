package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1CSV(t *testing.T) {
	res := Table1(fastCtx())
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 { // header + 9 datasets
		t.Fatalf("lines=%d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "dataset,short,") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "USA-Cal,CA,1900000") {
		t.Fatalf("row %q", lines[1])
	}
}

func TestFig1CSV(t *testing.T) {
	res, err := Fig1(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CA", "CAGE", "GTX-750Ti", "Xeon-Phi-7120P"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q", want)
		}
	}
}

func TestFig16CSV(t *testing.T) {
	res, err := Fig16(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	wantRows := 0
	for _, s := range res.Sweeps {
		wantRows += len(s.Points)
	}
	if len(lines) != wantRows+1 {
		t.Fatalf("lines=%d want %d", len(lines), wantRows+1)
	}
}

func TestAllTabularResultsExport(t *testing.T) {
	// Every Tabular implementation must emit a header and consistent
	// column counts.
	check := func(name string, tab Tabular) {
		header, rows := tab.CSV()
		if len(header) == 0 {
			t.Fatalf("%s: empty header", name)
		}
		for i, row := range rows {
			if len(row) != len(header) {
				t.Fatalf("%s row %d: %d cells, header has %d", name, i, len(row), len(header))
			}
		}
	}
	check("table1", Table1(fastCtx()))
	if res, err := Fig1(fastCtx()); err == nil {
		check("fig1", res)
	}
	if res, err := Fig16(fastCtx()); err == nil {
		check("fig16", res)
	}
	// Typed zero values cover the remaining implementations' shapes.
	check("table4", Table4Result{Rows: []Table4Row{{Learner: "x"}}})
	check("scheduler", SchedulerResult{Rows: []SchedulerRow{{Combo: "x"}}})
	check("fig12", Fig12Result{Rows: []Fig12Row{{Benchmark: "x"}}})
	check("fig13", Fig13Result{Rows: []Fig13Row{{Benchmark: "x"}}})
	check("fig15", Fig15Result{Pairs: []Fig15Pair{{Pair: "p", Rows: []Fig15Row{{Benchmark: "x"}}}}})
}
