package experiments

import (
	"fmt"
	"math"
	"strings"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/gen"
	"heteromap/internal/machine"
	"heteromap/internal/stats"
)

// Fig1Point is one (thread fraction, completion time) sample of a sweep.
type Fig1Point struct {
	// ThreadFrac is the deployed thread count normalized to the
	// accelerator's maximum (the paper's normalized x-axis).
	ThreadFrac float64
	Threads    int
	Seconds    float64
}

// Fig1Series is a sweep for one accelerator on one input.
type Fig1Series struct {
	Accel  string
	Points []Fig1Point
}

// Best returns the minimum completion time and its thread fraction.
func (s Fig1Series) Best() (frac, seconds float64) {
	best := -1
	for i, p := range s.Points {
		if best < 0 || p.Seconds < s.Points[best].Seconds {
			best = i
		}
	}
	if best < 0 {
		return 0, 0
	}
	return s.Points[best].ThreadFrac, s.Points[best].Seconds
}

// Fig1Graph holds both accelerators' sweeps on one input.
type Fig1Graph struct {
	Input  string
	GPU    Fig1Series
	MC     Fig1Series
	Winner string
	Factor float64 // winner advantage at each side's best threading
}

// Fig1Result reproduces Fig 1: OpenTuner-style thread sweeps of
// delta-stepping SSSP on a sparse road network (CA) and a dense matrix
// graph (CAGE) on both accelerators of the primary pair.
type Fig1Result struct {
	Graphs []Fig1Graph
}

// Fig1 runs the sweep with the primary (GTX-750Ti, Xeon Phi) pair.
func Fig1(c *Context) (Fig1Result, error) {
	pair := machine.PrimaryPair()
	limits := pair.Limits()
	bench, err := algo.ByName(algo.NameSSSPDelta)
	if err != nil {
		return Fig1Result{}, err
	}

	var res Fig1Result
	for _, short := range []string{"CA", "CAGE"} {
		ds := gen.ByShort(c.Datasets(), short)
		w, err := core.Characterize(bench, ds)
		if err != nil {
			return res, err
		}
		g := Fig1Graph{Input: short}

		// GPU sweep: global threads from 1 to max, best local threading
		// per point (the paper tunes remaining knobs with OpenTuner).
		base := config.DefaultGPU(limits)
		for _, gt := range sweepLevels(limits.MaxGlobalThreads) {
			bestSec := -1.0
			for _, lt := range sweepLevels(limits.MaxLocalThreads) {
				m := base
				m.GlobalThreads = gt
				m.LocalThreads = lt
				sec := pair.GPU.Evaluate(w.Job, m.Clamp(limits)).Seconds
				if bestSec < 0 || sec < bestSec {
					bestSec = sec
				}
			}
			g.GPU.Accel = pair.GPU.Name
			g.GPU.Points = append(g.GPU.Points, Fig1Point{
				ThreadFrac: float64(gt) / float64(limits.MaxGlobalThreads),
				Threads:    gt,
				Seconds:    bestSec,
			})
		}

		// Multicore sweep: total threads from 1 to max; schedule and
		// SIMD tuned per point.
		mcBase := config.DefaultMulticore(limits)
		maxThreads := limits.MaxCores * limits.MaxThreadsPerCore
		for _, tc := range sweepLevels(maxThreads) {
			bestSec := -1.0
			for _, sched := range []config.Schedule{config.ScheduleStatic, config.ScheduleDynamic} {
				for _, simd := range []int{1, limits.MaxSIMD} {
					m := mcBase
					m.Cores = stats.ClampInt(tc, 1, limits.MaxCores)
					m.ThreadsPerCore = stats.ClampInt((tc+m.Cores-1)/m.Cores, 1, limits.MaxThreadsPerCore)
					m.Schedule = sched
					m.SIMDWidth = simd
					sec := pair.Multicore.Evaluate(w.Job, m.Clamp(limits)).Seconds
					if bestSec < 0 || sec < bestSec {
						bestSec = sec
					}
				}
			}
			g.MC.Accel = pair.Multicore.Name
			g.MC.Points = append(g.MC.Points, Fig1Point{
				ThreadFrac: float64(tc) / float64(maxThreads),
				Threads:    tc,
				Seconds:    bestSec,
			})
		}

		_, gpuBest := g.GPU.Best()
		_, mcBest := g.MC.Best()
		if gpuBest <= mcBest {
			g.Winner, g.Factor = pair.GPU.Name, mcBest/gpuBest
		} else {
			g.Winner, g.Factor = pair.Multicore.Name, gpuBest/mcBest
		}
		res.Graphs = append(res.Graphs, g)
	}
	return res, nil
}

// sweepLevels returns ~12 geometrically spaced thread counts in [1, max].
func sweepLevels(maxV int) []int {
	if maxV <= 1 {
		return []int{1}
	}
	out := []int{1}
	cur := 1.0
	for cur < float64(maxV) {
		cur *= 2.2
		v := int(cur)
		if v >= maxV {
			break
		}
		if v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return append(out, maxV)
}

// String renders both sweeps as aligned series with an ASCII miniature
// of the paper's completion-time curves.
func (r Fig1Result) String() string {
	out := ""
	for _, g := range r.Graphs {
		t := newTable(fmt.Sprintf("Fig 1: SSSP-Delta thread sweep on %s", g.Input),
			"Accel", "threads", "frac", "seconds", "curve (log scale)")
		maxSec := 0.0
		minSec := -1.0
		for _, s := range []Fig1Series{g.GPU, g.MC} {
			for _, p := range s.Points {
				if p.Seconds > maxSec {
					maxSec = p.Seconds
				}
				if minSec < 0 || p.Seconds < minSec {
					minSec = p.Seconds
				}
			}
		}
		for _, s := range []Fig1Series{g.GPU, g.MC} {
			for _, p := range s.Points {
				t.add(s.Accel, fmt.Sprint(p.Threads), f2(p.ThreadFrac),
					fmt.Sprintf("%.3g", p.Seconds), bar(p.Seconds, minSec, maxSec, 34))
			}
		}
		t.addf("winner on %s: %s by %.2fx", g.Input, g.Winner, g.Factor)
		out += t.String() + "\n"
	}
	return out
}

// bar renders v on a log scale between lo and hi as a fixed-width ASCII
// bar — enough to see the U-shapes and crossovers in terminal output.
func bar(v, lo, hi float64, width int) string {
	if v <= 0 || hi <= lo || lo <= 0 {
		return ""
	}
	frac := math.Log(v/lo) / math.Log(hi/lo)
	n := int(frac*float64(width-1)) + 1
	if n < 1 {
		n = 1
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
