package experiments

import (
	"fmt"
	"strings"

	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/machine"
	"heteromap/internal/stats"
)

// SchedulerRow is one benchmark-input combination's comparison: all times
// normalized to the GPU-only baseline (the paper's Fig 11/14 axis,
// "higher is worse").
type SchedulerRow struct {
	Combo       string
	GPUOnly     float64 // always 1.0 by construction
	MCOnly      float64
	HeteroMap   float64
	Ideal       float64
	ChosenAccel config.Accel
}

// SchedulerResult reproduces Fig 11 (primary pair) and Fig 14 (GTX-970
// pair): per-combination scheduler comparisons with the deep learning
// model.
type SchedulerResult struct {
	Pair    string
	Learner string
	Rows    []SchedulerRow

	// Geomean summary: the paper's headline numbers ("the framework is
	// 31% better than a GPU-only and 75% better than a Xeon-Phi-only
	// setup"; 14% and 3.8x for the GTX-970 pair).
	GainOverGPUPct float64
	GainOverMCx    float64
	// VsIdealPct is how far HeteroMap lands from the no-overhead ideal
	// (paper: within 10%).
	VsIdealPct float64
}

// Scheduler runs the per-combination comparison for a pair.
func Scheduler(c *Context, pair machine.Pair, learner string) (SchedulerResult, error) {
	ws, err := c.Workloads()
	if err != nil {
		return SchedulerResult{}, err
	}
	sys, err := c.System(pair, core.Performance, learner)
	if err != nil {
		return SchedulerResult{}, err
	}

	res := SchedulerResult{Pair: pair.Name(), Learner: learner}
	var gpuT, mcT, hmT, idT []float64
	for _, w := range ws {
		bl := c.Baselines(pair, w, core.Performance)
		rep := sys.Run(w)
		gpu := bl.GPUOnly.Seconds
		row := SchedulerRow{
			Combo:       w.Name(),
			GPUOnly:     1,
			MCOnly:      bl.MulticoreOnly.Seconds / gpu,
			HeteroMap:   rep.TotalSeconds / gpu,
			Ideal:       bl.Ideal.Seconds / gpu,
			ChosenAccel: rep.Chosen.Accelerator,
		}
		res.Rows = append(res.Rows, row)
		gpuT = append(gpuT, gpu)
		mcT = append(mcT, bl.MulticoreOnly.Seconds)
		hmT = append(hmT, rep.TotalSeconds)
		idT = append(idT, bl.Ideal.Seconds)
	}
	hmGeo := stats.MustGeomean(hmT)
	res.GainOverGPUPct = (stats.MustGeomean(gpuT)/hmGeo - 1) * 100
	res.GainOverMCx = stats.MustGeomean(mcT) / hmGeo
	res.VsIdealPct = (hmGeo/stats.MustGeomean(idT) - 1) * 100
	return res, nil
}

// Fig11 is the primary-pair scheduler comparison.
func Fig11(c *Context) (SchedulerResult, error) {
	return Scheduler(c, machine.PrimaryPair(), LearnerDeep128)
}

// Fig14 swaps in the stronger GTX-970 ("machine learning models are
// re-learned for this architectural change" — the context trains a fresh
// database for the pair).
func Fig14(c *Context) (SchedulerResult, error) {
	return Scheduler(c, machine.StrongGPUPair(), LearnerDeep128)
}

// BenchmarkSummary aggregates the per-combination rows to per-benchmark
// geomeans (the bar heights of the paper's Fig 11/14 when read
// benchmark-wise).
type BenchmarkSummary struct {
	Benchmark string
	MCOnly    float64
	HeteroMap float64
	Ideal     float64
}

// PerBenchmark computes geomean rows per benchmark (combination labels
// are "<benchmark>-<input>").
func (r SchedulerResult) PerBenchmark() []BenchmarkSummary {
	order := []string{}
	groups := map[string][]SchedulerRow{}
	for _, row := range r.Rows {
		idx := strings.LastIndex(row.Combo, "-")
		if idx < 0 {
			continue
		}
		name := row.Combo[:idx]
		if _, ok := groups[name]; !ok {
			order = append(order, name)
		}
		groups[name] = append(groups[name], row)
	}
	var out []BenchmarkSummary
	for _, name := range order {
		var mc, hm, id []float64
		for _, row := range groups[name] {
			mc = append(mc, row.MCOnly)
			hm = append(hm, row.HeteroMap)
			id = append(id, row.Ideal)
		}
		out = append(out, BenchmarkSummary{
			Benchmark: name,
			MCOnly:    stats.MustGeomean(mc),
			HeteroMap: stats.MustGeomean(hm),
			Ideal:     stats.MustGeomean(id),
		})
	}
	return out
}

// String renders the per-combination comparison.
func (r SchedulerResult) String() string {
	t := newTable(
		fmt.Sprintf("Scheduler comparison on %s with %s (normalized to GPU-only; higher is worse)",
			r.Pair, r.Learner),
		"Combo", "GPU-only", "MC-only", "HeteroMap", "Ideal", "chosen")
	for _, row := range r.Rows {
		t.add(row.Combo, f2(row.GPUOnly), f2(row.MCOnly), f2(row.HeteroMap),
			f2(row.Ideal), row.ChosenAccel.String())
	}
	t.addf("HeteroMap vs GPU-only: +%.1f%%  vs MC-only: %.2fx  vs ideal: +%.1f%%",
		r.GainOverGPUPct, r.GainOverMCx, r.VsIdealPct)
	out := t.String()

	bt := newTable("per-benchmark geomeans (normalized to GPU-only)",
		"Benchmark", "MC-only", "HeteroMap", "Ideal")
	for _, row := range r.PerBenchmark() {
		bt.add(row.Benchmark, f2(row.MCOnly), f2(row.HeteroMap), f2(row.Ideal))
	}
	return out + "\n" + bt.String()
}
