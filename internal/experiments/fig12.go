package experiments

import (
	"heteromap/internal/algo"
	"heteromap/internal/core"
	"heteromap/internal/machine"
	"heteromap/internal/stats"
)

// Fig12Row is one benchmark's energy comparison, geomeaned across inputs
// and normalized to the maximum energy of any combination (the paper's
// Fig 12 axis).
type Fig12Row struct {
	Benchmark string
	GPUOnly   float64
	MCOnly    float64
	HeteroMap float64
	Ideal     float64
}

// Fig12Result reproduces Fig 12: energy benefits with the
// energy-objective-trained HeteroMap on the primary pair.
type Fig12Result struct {
	Rows []Fig12Row
	// Headline factors: paper reports HeteroMap reduces energy from
	// (0.15, 0.16) to 0.06, ~2.4x, vs ideal 0.03.
	GPUOnlyMean, MCOnlyMean, HeteroMapMean, IdealMean float64
	ReductionX                                        float64
}

// Fig12 evaluates the energy objective per benchmark.
func Fig12(c *Context) (Fig12Result, error) {
	pair := machine.PrimaryPair()
	ws, err := c.Workloads()
	if err != nil {
		return Fig12Result{}, err
	}
	sys, err := c.System(pair, core.Energy, LearnerDeep128)
	if err != nil {
		return Fig12Result{}, err
	}

	// Normalize per combination to the worse single-accelerator energy
	// (the paper normalizes "to the maximal energy used for any B-I
	// combination"; per-combination normalization keeps the geomeans
	// readable when simulated energies span orders of magnitude between
	// the tiny and the billion-edge inputs).
	type cell struct{ gpu, mc, hm, ideal float64 }
	cells := map[string][]cell{}
	for _, w := range ws {
		bl := c.Baselines(pair, w, core.Energy)
		rep := sys.Run(w)
		maxE := bl.GPUOnly.EnergyJ
		if bl.MulticoreOnly.EnergyJ > maxE {
			maxE = bl.MulticoreOnly.EnergyJ
		}
		if maxE <= 0 {
			maxE = 1
		}
		cells[w.Benchmark.Name] = append(cells[w.Benchmark.Name], cell{
			gpu:   bl.GPUOnly.EnergyJ / maxE,
			mc:    bl.MulticoreOnly.EnergyJ / maxE,
			hm:    rep.Machine.EnergyJ / maxE,
			ideal: bl.Ideal.EnergyJ / maxE,
		})
	}

	var res Fig12Result
	var gAll, mAll, hAll, iAll []float64
	for _, name := range algo.Names() {
		cs := cells[name]
		var g, m, h, id []float64
		for _, cl := range cs {
			g = append(g, cl.gpu)
			m = append(m, cl.mc)
			h = append(h, cl.hm)
			id = append(id, cl.ideal)
		}
		res.Rows = append(res.Rows, Fig12Row{
			Benchmark: name,
			GPUOnly:   stats.MustGeomean(g),
			MCOnly:    stats.MustGeomean(m),
			HeteroMap: stats.MustGeomean(h),
			Ideal:     stats.MustGeomean(id),
		})
		gAll = append(gAll, g...)
		mAll = append(mAll, m...)
		hAll = append(hAll, h...)
		iAll = append(iAll, id...)
	}
	res.GPUOnlyMean = stats.MustGeomean(gAll)
	res.MCOnlyMean = stats.MustGeomean(mAll)
	res.HeteroMapMean = stats.MustGeomean(hAll)
	res.IdealMean = stats.MustGeomean(iAll)
	if res.HeteroMapMean > 0 {
		res.ReductionX = stats.Min([]float64{res.GPUOnlyMean, res.MCOnlyMean}) /
			res.HeteroMapMean
	}
	return res, nil
}

// String renders the energy comparison.
func (r Fig12Result) String() string {
	t := newTable("Fig 12: normalized energy per benchmark (geomean across inputs)",
		"Benchmark", "GPU-only", "MC-only", "HeteroMap", "Ideal")
	for _, row := range r.Rows {
		t.add(row.Benchmark, f3(row.GPUOnly), f3(row.MCOnly), f3(row.HeteroMap),
			f3(row.Ideal))
	}
	t.addf("geomeans: GPU=%.3f MC=%.3f HeteroMap=%.3f Ideal=%.3f (reduction %.2fx)",
		r.GPUOnlyMean, r.MCOnlyMean, r.HeteroMapMean, r.IdealMean, r.ReductionX)
	return t.String()
}
