package experiments

import (
	"heteromap/internal/algo"
	"heteromap/internal/core"
	"heteromap/internal/machine"
	"heteromap/internal/stats"
)

// Fig13Row is one benchmark's raw core utilization (%), averaged across
// inputs (the paper's Fig 13).
type Fig13Row struct {
	Benchmark string
	GPUOnly   float64
	MCOnly    float64
	HeteroMap float64
}

// Fig13Result reproduces Fig 13: core utilization benefits. The paper
// reports HeteroMap improving the geomean by ~20% over both machines.
type Fig13Result struct {
	Rows []Fig13Row

	GPUGeo, MCGeo, HeteroMapGeo float64
	// ImprovementPct is HeteroMap's geomean gain over the better
	// single-accelerator geomean.
	ImprovementPct float64
}

// Fig13 measures utilization under the performance-trained scheduler.
func Fig13(c *Context) (Fig13Result, error) {
	pair := machine.PrimaryPair()
	ws, err := c.Workloads()
	if err != nil {
		return Fig13Result{}, err
	}
	sys, err := c.System(pair, core.Performance, LearnerDeep128)
	if err != nil {
		return Fig13Result{}, err
	}

	type cell struct{ gpu, mc, hm float64 }
	cells := map[string][]cell{}
	for _, w := range ws {
		bl := c.Baselines(pair, w, core.Performance)
		rep := sys.Run(w)
		cells[w.Benchmark.Name] = append(cells[w.Benchmark.Name], cell{
			gpu: bl.GPUOnly.Utilization * 100,
			mc:  bl.MulticoreOnly.Utilization * 100,
			hm:  rep.Machine.Utilization * 100,
		})
	}

	var res Fig13Result
	var gAll, mAll, hAll []float64
	for _, name := range algo.Names() {
		var g, m, h float64
		for _, cl := range cells[name] {
			g += cl.gpu
			m += cl.mc
			h += cl.hm
		}
		n := float64(len(cells[name]))
		row := Fig13Row{Benchmark: name, GPUOnly: g / n, MCOnly: m / n, HeteroMap: h / n}
		res.Rows = append(res.Rows, row)
		gAll = append(gAll, row.GPUOnly)
		mAll = append(mAll, row.MCOnly)
		hAll = append(hAll, row.HeteroMap)
	}
	res.GPUGeo = stats.MustGeomean(gAll)
	res.MCGeo = stats.MustGeomean(mAll)
	res.HeteroMapGeo = stats.MustGeomean(hAll)
	better := stats.Max([]float64{res.GPUGeo, res.MCGeo})
	res.ImprovementPct = (res.HeteroMapGeo/better - 1) * 100
	return res, nil
}

// String renders the utilization comparison.
func (r Fig13Result) String() string {
	t := newTable("Fig 13: raw core utilization (%) averaged across inputs",
		"Benchmark", "GPU-only", "MC-only", "HeteroMap")
	for _, row := range r.Rows {
		t.add(row.Benchmark, f1(row.GPUOnly), f1(row.MCOnly), f1(row.HeteroMap))
	}
	t.addf("geomeans: GPU=%.1f%% MC=%.1f%% HeteroMap=%.1f%% (improvement %.1f%%)",
		r.GPUGeo, r.MCGeo, r.HeteroMapGeo, r.ImprovementPct)
	return t.String()
}
