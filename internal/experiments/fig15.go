package experiments

import (
	"fmt"

	"heteromap/internal/algo"
	"heteromap/internal/core"
	"heteromap/internal/machine"
	"heteromap/internal/stats"
)

// Fig15Row is one benchmark's geomean (across inputs) comparison for a
// 40-core-CPU pair, normalized to the pair's GPU.
type Fig15Row struct {
	Benchmark string
	GPUOnly   float64 // 1 by construction
	CPUOnly   float64
	HeteroMap float64
}

// Fig15Pair is the comparison for one GPU + CPU-40 pairing.
type Fig15Pair struct {
	Pair string
	Rows []Fig15Row
	// HeteroMap's geomean gain over the GPU (paper: 22% for GTX-750Ti,
	// 5% for GTX-970).
	GainOverGPUPct float64
	// CPUvsGPUPct is the CPU-only geomean gain over the GPU-only
	// baseline (paper: CPU 3% better than GTX-750, 10% worse than 970).
	CPUvsGPUPct float64
}

// Fig15Result reproduces Fig 15: the 40-core CPU against both GPUs.
type Fig15Result struct {
	Pairs []Fig15Pair
}

// Fig15 evaluates both CPU-40 pairings.
func Fig15(c *Context) (Fig15Result, error) {
	var res Fig15Result
	for _, pair := range []machine.Pair{machine.CPU40Pair(), machine.StrongCPU40Pair()} {
		sys, err := c.System(pair, core.Performance, LearnerDeep128)
		if err != nil {
			return res, err
		}
		ws, err := c.Workloads()
		if err != nil {
			return res, err
		}
		p := Fig15Pair{Pair: pair.Name()}
		var gAll, cAll, hAll []float64
		for _, name := range algo.Names() {
			var g, cpu, hm []float64
			for _, w := range workloadsFor(ws, name) {
				bl := c.Baselines(pair, w, core.Performance)
				rep := sys.Run(w)
				g = append(g, bl.GPUOnly.Seconds)
				cpu = append(cpu, bl.MulticoreOnly.Seconds)
				hm = append(hm, rep.TotalSeconds)
			}
			gGeo := stats.MustGeomean(g)
			p.Rows = append(p.Rows, Fig15Row{
				Benchmark: name,
				GPUOnly:   1,
				CPUOnly:   stats.MustGeomean(cpu) / gGeo,
				HeteroMap: stats.MustGeomean(hm) / gGeo,
			})
			gAll = append(gAll, g...)
			cAll = append(cAll, cpu...)
			hAll = append(hAll, hm...)
		}
		gGeo := stats.MustGeomean(gAll)
		p.GainOverGPUPct = (gGeo/stats.MustGeomean(hAll) - 1) * 100
		p.CPUvsGPUPct = (gGeo/stats.MustGeomean(cAll) - 1) * 100
		res.Pairs = append(res.Pairs, p)
	}
	return res, nil
}

// String renders both pairings.
func (r Fig15Result) String() string {
	out := ""
	for _, p := range r.Pairs {
		t := newTable(
			fmt.Sprintf("Fig 15: 40-core CPU vs GPU (%s), normalized to GPU (higher is worse)", p.Pair),
			"Benchmark", "GPU-only", "CPU-only", "HeteroMap")
		for _, row := range p.Rows {
			t.add(row.Benchmark, f2(row.GPUOnly), f2(row.CPUOnly), f2(row.HeteroMap))
		}
		t.addf("HeteroMap gain over GPU: %.1f%%; CPU-only vs GPU-only: %.1f%%",
			p.GainOverGPUPct, p.CPUvsGPUPct)
		out += t.String() + "\n"
	}
	return out
}
