package experiments

import (
	"fmt"

	"heteromap/internal/core"
	"heteromap/internal/machine"
	"heteromap/internal/stats"
)

// Fig16Point is one memory-size combination of a sweep: geomean
// completion times (across all benchmark-input combinations) normalized
// to the sweep's maximum, for each accelerator alone and for the
// best-of-pair selection HeteroMap can reach.
type Fig16Point struct {
	GPUMemGB, MCMemGB int64
	GPUOnly           float64
	MCOnly            float64
	BestOfPair        float64
}

// Fig16Sweep is the grid for one accelerator pairing.
type Fig16Sweep struct {
	Pair   string
	Points []Fig16Point
	// MCGainPct is how much the multicore improves from its smallest to
	// largest memory (the paper: the Phi "performs better when exposed
	// to its full main memory", 15-30% vs the GPUs).
	MCGainPct float64
}

// Fig16Result reproduces Fig 16: memory-size sensitivity for the
// GPU-Xeon-Phi and GPU-CPU40 systems.
type Fig16Result struct {
	Sweeps []Fig16Sweep
}

const gb = int64(1) << 30

// Fig16 sweeps attached memory sizes. Streaming chunk counts react to the
// memory size (internal/stream semantics inside the machine model), so
// graphs larger than memory benefit directly from bigger memories.
func Fig16(c *Context) (Fig16Result, error) {
	ws, err := c.Workloads()
	if err != nil {
		return Fig16Result{}, err
	}

	type sweepSpec struct {
		pair   machine.Pair
		gpuMem []int64
		mcMem  []int64
	}
	specs := []sweepSpec{
		{pair: machine.PrimaryPair(), gpuMem: []int64{1, 2}, mcMem: []int64{1, 2, 4, 8, 16}},
		{pair: machine.CPU40Pair(), gpuMem: []int64{1, 2}, mcMem: []int64{2, 8, 16, 64}},
	}

	var res Fig16Result
	for _, spec := range specs {
		sweep := Fig16Sweep{Pair: spec.pair.Name()}
		var raw []Fig16Point
		maxVal := 0.0
		for _, gm := range spec.gpuMem {
			for _, mm := range spec.mcMem {
				pair := machine.Pair{
					GPU:       spec.pair.GPU.WithMemory(gm * gb),
					Multicore: spec.pair.Multicore.WithMemory(mm * gb),
				}
				var g, m, best []float64
				for _, w := range ws {
					bl := core.ComputeBaselines(pair, w, core.Performance)
					g = append(g, bl.GPUOnly.Seconds)
					m = append(m, bl.MulticoreOnly.Seconds)
					best = append(best, bl.Ideal.Seconds)
				}
				p := Fig16Point{
					GPUMemGB: gm, MCMemGB: mm,
					GPUOnly:    stats.MustGeomean(g),
					MCOnly:     stats.MustGeomean(m),
					BestOfPair: stats.MustGeomean(best),
				}
				for _, v := range []float64{p.GPUOnly, p.MCOnly} {
					if v > maxVal {
						maxVal = v
					}
				}
				raw = append(raw, p)
			}
		}
		if maxVal <= 0 {
			maxVal = 1
		}
		for _, p := range raw {
			p.GPUOnly /= maxVal
			p.MCOnly /= maxVal
			p.BestOfPair /= maxVal
			sweep.Points = append(sweep.Points, p)
		}
		// Multicore improvement from smallest to largest memory at the
		// largest GPU memory setting.
		var first, last float64
		for _, p := range sweep.Points {
			if p.GPUMemGB == spec.gpuMem[len(spec.gpuMem)-1] {
				if first == 0 {
					first = p.MCOnly
				}
				last = p.MCOnly
			}
		}
		if last > 0 {
			sweep.MCGainPct = (first/last - 1) * 100
		}
		res.Sweeps = append(res.Sweeps, sweep)
	}
	return res, nil
}

// String renders both sweeps.
func (r Fig16Result) String() string {
	out := ""
	for _, sweep := range r.Sweeps {
		t := newTable(
			fmt.Sprintf("Fig 16: memory-size sensitivity (%s), normalized to sweep max", sweep.Pair),
			"GPU mem", "MC mem", "GPU-only", "MC-only", "best-of-pair")
		for _, p := range sweep.Points {
			t.add(fmt.Sprintf("%dGB", p.GPUMemGB), fmt.Sprintf("%dGB", p.MCMemGB),
				f3(p.GPUOnly), f3(p.MCOnly), f3(p.BestOfPair))
		}
		t.addf("multicore gain from full memory: %.1f%%", sweep.MCGainPct)
		out += t.String() + "\n"
	}
	return out
}
