package experiments

import (
	"fmt"

	"heteromap/internal/algo"
	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/gen"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
)

// Fig7Row is one decision-tree walk: the tree's selected accelerator and
// M choices for a benchmark on USA-Cal, with the selected performance
// compared against the exhaustively tuned optimum.
type Fig7Row struct {
	Benchmark     string
	SelectedAccel config.Accel
	SelectedM     config.M
	// SelectedSeconds is the simulated time under the tree's choices.
	SelectedSeconds float64
	// OptimalSeconds is the exhaustive-sweep optimum across both
	// accelerators.
	OptimalSeconds float64
	OptimalM       config.M
	// GapPct is how far the selection is from optimal (paper: ~15%).
	GapPct float64
}

// Fig7Result reproduces Fig 7: the decision-tree heuristic flow for
// SSSP-BF and SSSP-Delta with the USA-Cal input.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7 walks the decision tree for both SSSP variants on CA.
func Fig7(c *Context) (Fig7Result, error) {
	pair := machine.PrimaryPair()
	tree := dtree.New(pair.Limits())
	ds := gen.ByShort(c.Datasets(), "CA")

	var res Fig7Result
	for _, name := range []string{algo.NameSSSPBF, algo.NameSSSPDelta} {
		bench, err := algo.ByName(name)
		if err != nil {
			return res, err
		}
		w, err := core.Characterize(bench, ds)
		if err != nil {
			return res, err
		}
		m := tree.Predict(w.Features)
		sel := pair.Select(m.Accelerator).Evaluate(w.Job, m)
		bl := c.Baselines(pair, w, core.Performance)
		row := Fig7Row{
			Benchmark:       name,
			SelectedAccel:   m.Accelerator,
			SelectedM:       m,
			SelectedSeconds: sel.Seconds,
			OptimalSeconds:  bl.Ideal.Seconds,
			OptimalM:        bl.IdealM,
		}
		row.GapPct = (sel.Seconds/bl.Ideal.Seconds - 1) * 100
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the selection flow.
func (r Fig7Result) String() string {
	t := newTable("Fig 7: decision-tree flow on USA-Cal (CA)",
		"Benchmark", "Selected", "Selected M", "t_sel(s)", "t_opt(s)", "gap%")
	for _, row := range r.Rows {
		t.add(row.Benchmark, row.SelectedAccel.String(), row.SelectedM.String(),
			fmt.Sprintf("%.4g", row.SelectedSeconds),
			fmt.Sprintf("%.4g", row.OptimalSeconds), f1(row.GapPct))
	}
	return t.String()
}
