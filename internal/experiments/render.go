package experiments

import (
	"fmt"
	"strings"
)

// table is a tiny text-table renderer for experiment outputs.
type table struct {
	title  string
	header []string
	rows   [][]string
	notes  []string
}

func newTable(title string, header ...string) *table {
	return &table{title: title, header: header}
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(t.header) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

func si(x int64) string {
	switch {
	case x >= 1_000_000_000:
		return fmt.Sprintf("%.2fB", float64(x)/1e9)
	case x >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(x)/1e6)
	case x >= 10_000:
		return fmt.Sprintf("%.0fK", float64(x)/1e3)
	}
	return fmt.Sprintf("%d", x)
}
