package experiments

import (
	"strings"
	"testing"

	"heteromap/internal/machine"
)

// These tests train learners on the fast database (a few seconds each);
// `go test -short` skips them.

func TestTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("trains learners")
	}
	res, err := Table4(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows=%d want 9", len(res.Rows))
	}
	tree := res.Row(LearnerDecisionTree)
	// The hand-built tree needs no training and must deliver a solid
	// speedup over the tuned GPU baseline (paper: 28%).
	if tree.SpeedupPct < 10 {
		t.Fatalf("decision tree speedup %v%% too low", tree.SpeedupPct)
	}
	if tree.Overhead <= 0 {
		t.Fatal("overhead not measured")
	}
	for _, row := range res.Rows {
		if row.AccuracyPct < 30 || row.AccuracyPct > 100 {
			t.Fatalf("%s accuracy %v%%", row.Learner, row.AccuracyPct)
		}
	}
	// The cheap models must be cheaper than the deep/polynomial ones
	// (Table IV's overhead column ordering).
	if tree.Overhead >= res.Row(LearnerMulti).Overhead {
		t.Fatal("decision tree should be cheaper than multi regression")
	}
	if res.Row(LearnerLinear).Overhead >= res.Row(LearnerDeep128).Overhead {
		t.Fatal("linear regression should be cheaper than Deep.128")
	}
	if !strings.Contains(res.String(), "Decision Tree") {
		t.Fatal("rendering")
	}
}

func TestTable4ForOtherPair(t *testing.T) {
	if testing.Short() {
		t.Skip("trains learners")
	}
	res, err := Table4For(fastCtx(), machine.StrongGPUPair())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// With a re-learned database the per-pair comparison still has a
	// positive best learner.
	best := res.Row(res.BestLearner)
	if best.SpeedupPct <= 0 {
		t.Fatalf("best learner %s speedup %v%%", best.Learner, best.SpeedupPct)
	}
}

func TestFig11SchedulerGains(t *testing.T) {
	if testing.Short() {
		t.Skip("trains learners")
	}
	res, err := Scheduler(fastCtx(), machine.PrimaryPair(), LearnerDecisionTree)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 81 {
		t.Fatalf("rows=%d want 81", len(res.Rows))
	}
	// HeteroMap must beat both single-accelerator geomeans (the paper's
	// headline: +31% over GPU-only, +75% over Phi-only).
	if res.GainOverGPUPct <= 0 {
		t.Fatalf("no gain over GPU-only: %v%%", res.GainOverGPUPct)
	}
	if res.GainOverMCx <= 1 {
		t.Fatalf("no gain over multicore-only: %vx", res.GainOverMCx)
	}
	// And stay in the ideal's neighbourhood (paper: within 10%).
	if res.VsIdealPct < 0 || res.VsIdealPct > 40 {
		t.Fatalf("vs ideal %v%% out of regime", res.VsIdealPct)
	}
	for _, row := range res.Rows {
		if row.Ideal > 1+1e-9 && row.Ideal > row.MCOnly+1e-9 {
			t.Fatalf("%s: ideal worse than both baselines", row.Combo)
		}
		// The "ideal" is the exhaustive sweep over the coarse grid; a
		// predictor's off-grid configuration may edge it out slightly,
		// but never by a wide margin.
		if row.HeteroMap < row.Ideal*0.9 {
			t.Fatalf("%s: HeteroMap (%v) far below the exhaustive ideal (%v)",
				row.Combo, row.HeteroMap, row.Ideal)
		}
	}
	if !strings.Contains(res.String(), "HeteroMap") {
		t.Fatal("rendering")
	}
}

func TestFig12Energy(t *testing.T) {
	if testing.Short() {
		t.Skip("trains learners")
	}
	res, err := Fig12(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, v := range []float64{row.GPUOnly, row.MCOnly, row.HeteroMap, row.Ideal} {
			if v <= 0 || v > 1+1e-9 {
				t.Fatalf("%s: normalized energy %v outside (0,1]", row.Benchmark, v)
			}
		}
		if row.Ideal > row.GPUOnly+1e-9 || row.Ideal > row.MCOnly+1e-9 {
			t.Fatalf("%s: ideal energy above a baseline", row.Benchmark)
		}
	}
	// The energy-trained scheduler must clearly beat the worse
	// single-accelerator setup and stay competitive with the better one.
	// (The paper reports a 2.4x reduction against *both* baselines; in
	// this reproduction the GPU's 60 W keep it close to energy-optimal
	// on most combinations, so the headroom over the better baseline is
	// smaller — see EXPERIMENTS.md.)
	worse := res.GPUOnlyMean
	if res.MCOnlyMean > worse {
		worse = res.MCOnlyMean
	}
	if res.HeteroMapMean >= worse {
		t.Fatalf("HeteroMap energy %v not below the worse baseline %v",
			res.HeteroMapMean, worse)
	}
	better := res.GPUOnlyMean
	if res.MCOnlyMean < better {
		better = res.MCOnlyMean
	}
	// 25% tolerance at the fast training scale.
	if res.HeteroMapMean > better*1.25 {
		t.Fatalf("HeteroMap energy %v not competitive with the better baseline %v",
			res.HeteroMapMean, better)
	}
	if res.IdealMean > res.HeteroMapMean*1.001 {
		t.Fatal("ideal energy above HeteroMap")
	}
}

func TestFig13Utilization(t *testing.T) {
	if testing.Short() {
		t.Skip("trains learners")
	}
	res, err := Fig13(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, v := range []float64{row.GPUOnly, row.MCOnly, row.HeteroMap} {
			if v < 0 || v > 100 {
				t.Fatalf("%s: utilization %v%%", row.Benchmark, v)
			}
		}
	}
	// Paper Fig 13: SSSP utilization is low on the Phi ("cores spend
	// most of their time waiting"), the GPU hides latency better.
	for _, row := range res.Rows {
		if row.Benchmark == "SSSP-BF" && row.MCOnly >= row.GPUOnly {
			t.Fatalf("SSSP-BF: Phi utilization %v%% should trail GPU %v%%",
				row.MCOnly, row.GPUOnly)
		}
	}
}

func TestFig14StrongGPU(t *testing.T) {
	if testing.Short() {
		t.Skip("trains learners")
	}
	// The paper re-learns the ML models for the architectural change, so
	// the Fig 14 comparison uses the (re-trained) deep model rather than
	// the static hand-built tree.
	res, err := Fig14(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	// "HeteroMap outperforms a GPU-only case by 14% and a Xeon-Phi-only
	// case by 3.8x ... the magnitude by which the GPU outperforms Xeon
	// Phi in some cases is higher compared to the GTX-750": the gain
	// over the multicore must grow with the stronger GPU.
	primary, err := Scheduler(fastCtx(), machine.PrimaryPair(), LearnerDeep128)
	if err != nil {
		t.Fatal(err)
	}
	if res.GainOverMCx <= primary.GainOverMCx {
		t.Fatalf("GTX-970 pair gain over MC (%vx) should exceed primary (%vx)",
			res.GainOverMCx, primary.GainOverMCx)
	}
	if res.GainOverGPUPct <= -5 {
		t.Fatalf("substantially negative gain over the GTX-970: %v%%", res.GainOverGPUPct)
	}
}

func TestFig15CPU40(t *testing.T) {
	if testing.Short() {
		t.Skip("trains learners")
	}
	res, err := Fig15(fastCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2 {
		t.Fatal("Fig 15 compares two CPU-40 pairings")
	}
	for _, p := range res.Pairs {
		if len(p.Rows) != 9 {
			t.Fatalf("%s: rows=%d", p.Pair, len(p.Rows))
		}
		if p.GainOverGPUPct <= 0 {
			t.Fatalf("%s: HeteroMap gain %v%%", p.Pair, p.GainOverGPUPct)
		}
	}
	// "The 40-core multicore outperforms the GTX750 ... for the case
	// with the GTX-970, the GPU performs better": the CPU's relative
	// standing must degrade against the stronger GPU.
	if res.Pairs[1].CPUvsGPUPct >= res.Pairs[0].CPUvsGPUPct {
		t.Fatalf("CPU standing vs GTX-970 (%v%%) should trail vs GTX-750Ti (%v%%)",
			res.Pairs[1].CPUvsGPUPct, res.Pairs[0].CPUvsGPUPct)
	}
	if !strings.Contains(res.String(), "CPU-only") {
		t.Fatal("rendering")
	}
}
