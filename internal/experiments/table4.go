package experiments

import (
	"time"

	"heteromap/internal/config"
	"heteromap/internal/core"
	"heteromap/internal/machine"
	"heteromap/internal/stats"
)

// Table4Row is one learner's evaluation: speedup over the GPU-only
// baseline, choice-selection accuracy against the ideal, and inference
// overhead.
type Table4Row struct {
	Learner     string
	SpeedupPct  float64
	AccuracyPct float64
	Overhead    time.Duration
}

// Table4Result reproduces Table IV: learning model strategies on the
// primary (GTX-750Ti, Xeon Phi) pair.
type Table4Result struct {
	Rows []Table4Row
	// BestLearner is the row with the highest speedup (the paper selects
	// Deep.128).
	BestLearner string
}

// Row returns the row for a learner name, or a zero row.
func (r Table4Result) Row(name string) Table4Row {
	for _, row := range r.Rows {
		if row.Learner == name {
			return row
		}
	}
	return Table4Row{}
}

// Table4 trains and evaluates every Table IV learner on all
// benchmark-input combinations of the primary pair.
func Table4(c *Context) (Table4Result, error) {
	return Table4For(c, machine.PrimaryPair())
}

// Table4For runs the learner comparison on any accelerator pair — the
// paper re-learns its models per setup (Section VII-D), so the learner
// ordering can be checked beyond the primary system.
func Table4For(c *Context, pair machine.Pair) (Table4Result, error) {
	ws, err := c.Workloads()
	if err != nil {
		return Table4Result{}, err
	}

	// Reference times per workload.
	gpuTimes := make([]float64, len(ws))
	idealM := make([]config.M, len(ws))
	for i, w := range ws {
		bl := c.Baselines(pair, w, core.Performance)
		gpuTimes[i] = bl.GPUOnly.Seconds
		idealM[i] = bl.IdealM
	}
	gpuGeo := stats.MustGeomean(gpuTimes)
	limits := pair.Limits()

	var res Table4Result
	bestSpeedup := -1e18
	for _, name := range TableIVLearners() {
		sys, err := c.System(pair, core.Performance, name)
		if err != nil {
			return res, err
		}
		times := make([]float64, len(ws))
		var accSum float64
		for i, w := range ws {
			rep := sys.Run(w)
			times[i] = rep.TotalSeconds
			accSum += config.ChoiceAccuracy(rep.Chosen, idealM[i], limits)
		}
		row := Table4Row{
			Learner:     name,
			SpeedupPct:  (gpuGeo/stats.MustGeomean(times) - 1) * 100,
			AccuracyPct: accSum / float64(len(ws)) * 100,
			Overhead:    sys.PredictorOverhead(),
		}
		res.Rows = append(res.Rows, row)
		if row.SpeedupPct > bestSpeedup {
			bestSpeedup = row.SpeedupPct
			res.BestLearner = row.Learner
		}
	}
	return res, nil
}

// String renders Table IV.
func (r Table4Result) String() string {
	t := newTable("Table IV: learning model strategies (speedup over GTX-750Ti-only)",
		"Learner", "SpeedUp(%)", "Accuracy(%)", "Overhead")
	for _, row := range r.Rows {
		t.add(row.Learner, f1(row.SpeedupPct), f1(row.AccuracyPct),
			row.Overhead.String())
	}
	t.addf("selected learner: %s", r.BestLearner)
	return t.String()
}
