package experiments

import (
	"fmt"

	"heteromap/internal/algo"
	"heteromap/internal/feature"
	"heteromap/internal/gen"
	"heteromap/internal/machine"
)

// Table1Row is one input dataset with its declared characteristics
// (Table I) and discretized I variables (Fig 4).
type Table1Row struct {
	Name, Short      string
	V, E             int64
	MaxDeg, Diameter int64
	GeneratedV       int
	GeneratedE       int64
	I                feature.IVector
}

// Table1Result reproduces Table I and Fig 4 together.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 characterizes the nine evaluation datasets.
func Table1(c *Context) Table1Result {
	var res Table1Result
	for _, d := range c.Datasets() {
		res.Rows = append(res.Rows, Table1Row{
			Name: d.Name, Short: d.Short,
			V: d.Declared.V, E: d.Declared.E,
			MaxDeg: d.Declared.MaxDeg, Diameter: d.Declared.Diameter,
			GeneratedV: d.Graph.NumVertices(), GeneratedE: d.Graph.NumEdges(),
			I: feature.IFromDataset(d),
		})
	}
	return res
}

// String renders the Table I / Fig 4 reproduction.
func (r Table1Result) String() string {
	t := newTable("Table I + Fig 4: input datasets and I variables",
		"Dataset", "Short", "#V", "#E", "Max.Deg", "Diameter", "genV", "genE",
		"I1", "I2", "I3", "I4")
	for _, row := range r.Rows {
		t.add(row.Name, row.Short, si(row.V), si(row.E), si(row.MaxDeg),
			si(row.Diameter), si(int64(row.GeneratedV)), si(row.GeneratedE),
			f1(row.I[0]), f1(row.I[1]), f1(row.I[2]), f1(row.I[3]))
	}
	return t.String()
}

// Table2Result reproduces Table II: the accelerator configurations.
type Table2Result struct {
	Accels []*machine.Accel
}

// Table2 lists the four accelerators.
func Table2() Table2Result {
	return Table2Result{Accels: []*machine.Accel{
		machine.GTX750Ti(), machine.GTX970(),
		machine.XeonPhi7120P(), machine.CPU40(),
	}}
}

// String renders Table II.
func (r Table2Result) String() string {
	t := newTable("Table II: accelerator configurations",
		"Accelerator", "Kind", "Cores", "Threads", "Cache", "Coh", "Mem(GB)",
		"BW(GB/s)", "SP(TF)", "DP(TF)", "Freq(GHz)", "TDP(W)")
	for _, a := range r.Accels {
		t.add(a.Name, a.Kind.String(), fmt.Sprint(a.Cores),
			fmt.Sprint(a.HWThreads()), fmt.Sprintf("%dMB", a.CacheBytes>>20),
			fmt.Sprint(a.Coherent), fmt.Sprint(a.MemBytes>>30),
			f1(a.MemBWGBs), f1(a.SPTflops), f2(a.DPTflops), f2(a.FreqGHz),
			f1(a.TDPWatts))
	}
	return t.String()
}

// Table3Result reproduces Table III: the synthetic training inputs.
type Table3Result struct {
	Samples int
	Seed    int64
	Rows    []Table3Row
}

// Table3Row describes one synthetic generator family.
type Table3Row struct {
	Family   string
	VRange   string
	ERange   string
	DegRange string
	SizeGB   string
}

// Table3 describes the training sweep.
func Table3(c *Context) Table3Result {
	return Table3Result{
		Samples: c.TrainCfg.Samples,
		Seed:    c.TrainCfg.Seed,
		Rows: []Table3Row{
			{Family: "Unif. Rand.", VRange: "16-65M", ERange: "16-2B", DegRange: "1-32K", SizeGB: "0.01-32"},
			{Family: "Kronecker", VRange: "16-65M", ERange: "16-2B", DegRange: "1-32K", SizeGB: "0.01-32"},
		},
	}
}

// String renders Table III.
func (r Table3Result) String() string {
	t := newTable("Table III: synthetic training inputs",
		"Training Data", "#Vertices", "#Edges", "Avg.Deg.", "Size(GB)")
	for _, row := range r.Rows {
		t.add(row.Family, row.VRange, row.ERange, row.DegRange, row.SizeGB)
	}
	t.addf("training combinations sampled per pair: %d (seed %d)", r.Samples, r.Seed)
	return t.String()
}

// Fig5Row pairs the catalog (programmer-specified) and derived
// (instrumentation-extracted) B variables for one benchmark.
type Fig5Row struct {
	Benchmark string
	Catalog   feature.BVector
	Derived   feature.BVector
}

// Fig5Result reproduces Fig 5 (and the Fig 6 worked example row for
// SSSP-BF), cross-checked against the measured profiles.
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5 classifies all nine benchmarks, deriving B from a run on the FB
// analog (any mid-sized input produces the same classification).
func Fig5(c *Context) (Fig5Result, error) {
	var res Fig5Result
	ds := gen.ByShort(c.Datasets(), "FB")
	for _, b := range algo.All() {
		cat, err := feature.Catalog(b.Name)
		if err != nil {
			return res, err
		}
		_, work := b.Run(ds.Graph)
		res.Rows = append(res.Rows, Fig5Row{
			Benchmark: b.Name,
			Catalog:   cat,
			Derived:   feature.DeriveB(work),
		})
	}
	return res, nil
}

// String renders the B matrix with catalog values and check marks.
func (r Fig5Result) String() string {
	header := []string{"Benchmark"}
	for i := 1; i <= feature.NumB; i++ {
		header = append(header, fmt.Sprintf("B%d", i))
	}
	t := newTable("Fig 5/6: benchmark (B) variables — catalog value (✓ = used)", header...)
	for _, row := range r.Rows {
		cells := []string{row.Benchmark}
		for _, v := range row.Catalog {
			if v > 0 {
				cells = append(cells, fmt.Sprintf("%.1f✓", v))
			} else {
				cells = append(cells, "-")
			}
		}
		t.add(cells...)
	}
	return t.String()
}
