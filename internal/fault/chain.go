package fault

import (
	"context"
	"fmt"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/obs"
	"heteromap/internal/predict"
)

// Selection is the outcome of consulting a fallback chain: the chosen
// configuration, which predictor produced it, and every degradation
// event on the way there.
type Selection struct {
	// M is the deployable (validated and clamped) configuration.
	M config.M
	// Used names the predictor that produced M — the first link of the
	// chain that returned a valid prediction.
	Used string
	// Fallbacks records each upstream predictor failure ("Deep.128:
	// non-finite output ...") in chain order; empty when the primary
	// predictor answered.
	Fallbacks []string
}

// Degraded reports whether the primary predictor had to be bypassed.
func (s Selection) Degraded() bool { return len(s.Fallbacks) > 0 }

// Chain is a graceful predictor degradation sequence: each predictor is
// tried in order (typically trained NN -> decision tree), and a
// prediction is accepted only if the predictor neither panics nor emits
// a non-finite/invalid M. When every predictor fails, the chain falls
// back to a fixed deployable default, so Select never returns garbage
// and never crashes the runtime.
//
// A Chain is immutable after construction and Select only reads it, so
// one chain may serve concurrent goroutines — provided every predictor's
// inference path is itself pure, which holds for all in-repo predictors
// (see TestChainSelectConcurrentlySafe).
type Chain struct {
	// Limits bound the deployable M ranges used for validation.
	Limits config.Limits
	// Predictors are tried in order; earlier entries are preferred.
	Predictors []predict.Predictor
	// DefaultLabel names the terminal fixed choice in reports.
	DefaultLabel string
	// Default is the safety-net configuration; NewChain initializes it
	// to the untuned multicore default (the conservative side: it always
	// fits and never needs GPU streaming).
	Default config.M
}

// NewChain assembles a degradation chain over the given predictors.
func NewChain(limits config.Limits, preds ...predict.Predictor) *Chain {
	return &Chain{
		Limits:       limits,
		Predictors:   preds,
		DefaultLabel: "FixedChoice",
		Default:      config.DefaultMulticore(limits),
	}
}

// Select walks the chain and returns the first valid prediction.
func (c *Chain) Select(f feature.Vector) Selection {
	return c.SelectCtx(context.Background(), f)
}

// SelectCtx is Select with per-link tracing: each predictor consult
// runs under an obs span recording the link and outcome, so chain
// degradation is visible stage-by-stage in a request trace, not just
// as the flattened Fallbacks list. Untraced contexts cost one context
// value lookup per link and nothing else.
func (c *Chain) SelectCtx(ctx context.Context, f feature.Vector) Selection {
	var events []string
	for _, p := range c.Predictors {
		if p == nil {
			continue
		}
		_, sp := obs.StartSpan(ctx, "consult:"+p.Name())
		m, err := tryPredict(p, f)
		if err == nil {
			err = m.Validate(c.Limits)
		}
		if err != nil {
			sp.EndErr(err)
			events = append(events, fmt.Sprintf("%s: %v", p.Name(), err))
			continue
		}
		sp.End()
		return Selection{M: m.Clamp(c.Limits), Used: p.Name(), Fallbacks: events}
	}
	_, sp := obs.StartSpan(ctx, "consult:"+c.DefaultLabel)
	sp.End()
	return Selection{M: c.Default.Clamp(c.Limits), Used: c.DefaultLabel, Fallbacks: events}
}

// BatchCapable reports whether the chain's primary predictor can answer
// whole micro-batches in one pass. The serving batcher checks it before
// routing a deduplicated batch through SelectBatchCtx.
func (c *Chain) BatchCapable() bool {
	for _, p := range c.Predictors {
		if p != nil {
			_, ok := p.(predict.BatchPredictor)
			return ok
		}
	}
	return false
}

// SelectBatchCtx consults the chain for a whole micro-batch, filling
// dst[i] with the selection for feats[i] (dst must hold len(feats)
// entries). When the primary predictor is batch-capable and every row of
// its single-pass answer validates, each selection is exactly what
// SelectCtx would have produced — same raw prediction bits, same
// validation, same clamp — under one consult span instead of one per
// row. Any batch error, panic or invalid row abandons the batch answer
// and re-derives every row through the per-item path, so batching can
// change latency but never results.
func (c *Chain) SelectBatchCtx(ctx context.Context, feats []feature.Vector, dst []Selection) {
	if len(feats) == 0 {
		return
	}
	var primary predict.Predictor
	for _, p := range c.Predictors {
		if p != nil {
			primary = p
			break
		}
	}
	if bp, ok := primary.(predict.BatchPredictor); ok {
		_, sp := obs.StartSpan(ctx, "consult:"+primary.Name())
		ms := make([]config.M, len(feats))
		err := tryPredictBatch(bp, feats, ms)
		if err == nil {
			for i := range ms {
				if verr := ms[i].Validate(c.Limits); verr != nil {
					err = fmt.Errorf("row %d: %w", i, verr)
					break
				}
			}
		}
		if err == nil {
			sp.End()
			for i := range feats {
				dst[i] = Selection{M: ms[i].Clamp(c.Limits), Used: primary.Name()}
			}
			return
		}
		sp.EndErr(err)
	}
	for i := range feats {
		dst[i] = c.SelectCtx(ctx, feats[i])
	}
}

// tryPredictBatch consults the batch interface, converting panics into
// errors like tryPredict does for the per-item path.
func tryPredictBatch(bp predict.BatchPredictor, feats []feature.Vector, dst []config.M) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("predictor panicked: %v", r)
		}
	}()
	return bp.PredictBatchChecked(feats, dst)
}

// Name implements predict.Predictor, labelled by the primary link.
func (c *Chain) Name() string {
	for _, p := range c.Predictors {
		if p != nil {
			return p.Name()
		}
	}
	return c.DefaultLabel
}

// Predict implements predict.Predictor, so a chain can stand in
// anywhere a predictor is expected with the degradation behaviour
// attached (the per-fallback events are dropped on this path — use
// Select when they matter).
func (c *Chain) Predict(f feature.Vector) config.M { return c.Select(f).M }

// tryPredict consults one predictor, converting panics into errors and
// preferring the checked interface when the predictor implements it.
func tryPredict(p predict.Predictor, f feature.Vector) (m config.M, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("predictor panicked: %v", r)
		}
	}()
	if cp, ok := p.(predict.Checked); ok {
		return cp.PredictChecked(f)
	}
	return p.Predict(f), nil
}
