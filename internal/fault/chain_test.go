package fault

import (
	"math"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
)

// nanPredictor simulates an undertrained NN emitting non-finite M.
type nanPredictor struct{}

func (nanPredictor) Name() string { return "Deep.128" }
func (nanPredictor) Predict(feature.Vector) config.M {
	return config.M{Accelerator: config.GPU, PlaceCore: math.NaN(), Affinity: math.Inf(1)}
}

// panicPredictor simulates a predictor crashing outright.
type panicPredictor struct{}

func (panicPredictor) Name() string                    { return "Crashy" }
func (panicPredictor) Predict(feature.Vector) config.M { panic("model file corrupted") }

func TestChainPrimaryHealthy(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	tree := dtree.New(limits)
	c := NewChain(limits, tree)
	sel := c.Select(feature.Vector{})
	if sel.Used != tree.Name() || sel.Degraded() {
		t.Fatalf("healthy primary bypassed: used=%q fallbacks=%v", sel.Used, sel.Fallbacks)
	}
	if err := sel.M.Validate(limits); err != nil {
		t.Fatal(err)
	}
}

func TestChainFallsBackOnNaN(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	tree := dtree.New(limits)
	c := NewChain(limits, nanPredictor{}, tree)
	sel := c.Select(feature.Vector{})
	if sel.Used != tree.Name() {
		t.Fatalf("expected fallback to %q, used %q", tree.Name(), sel.Used)
	}
	if len(sel.Fallbacks) != 1 {
		t.Fatalf("fallback events: %v", sel.Fallbacks)
	}
	if err := sel.M.Validate(limits); err != nil {
		t.Fatal(err)
	}
}

func TestChainRecoversPanic(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	tree := dtree.New(limits)
	c := NewChain(limits, panicPredictor{}, tree)
	sel := c.Select(feature.Vector{})
	if sel.Used != tree.Name() || len(sel.Fallbacks) != 1 {
		t.Fatalf("panic not recovered into fallback: %+v", sel)
	}
}

func TestChainExhaustedFallsToFixedChoice(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	c := NewChain(limits, nanPredictor{}, panicPredictor{})
	sel := c.Select(feature.Vector{})
	if sel.Used != c.DefaultLabel {
		t.Fatalf("expected %q, used %q", c.DefaultLabel, sel.Used)
	}
	if len(sel.Fallbacks) != 2 {
		t.Fatalf("fallback events: %v", sel.Fallbacks)
	}
	if err := sel.M.Validate(limits); err != nil {
		t.Fatalf("fixed choice invalid: %v", err)
	}
	if sel.M.Accelerator != config.Multicore {
		t.Fatal("fixed choice should be the conservative multicore default")
	}
}

func TestChainAsPredictor(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	tree := dtree.New(limits)
	c := NewChain(limits, nanPredictor{}, tree)
	if c.Name() != "Deep.128" {
		t.Fatalf("chain name %q", c.Name())
	}
	m := c.Predict(feature.Vector{})
	if err := m.Validate(limits); err != nil {
		t.Fatal(err)
	}
}
