package fault

import (
	"errors"
	"sync"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
)

// flakyPred fails on some inputs, exercising the degradation path.
type flakyPred struct{ limits config.Limits }

func (p flakyPred) Name() string { return "Flaky" }

func (p flakyPred) Predict(f feature.Vector) config.M {
	if f[0] >= 0.5 {
		panic("flaky predictor exploded")
	}
	return config.DefaultGPU(p.limits)
}

// A chain is consulted concurrently by every serving worker, so Select
// must be safe to call from parallel goroutines (the chain itself is
// read-only after construction; predictor implementations must be pure
// on their inference path). Run under -race.
func TestChainSelectConcurrentlySafe(t *testing.T) {
	limits := machine.PrimaryPair().Limits()
	chain := NewChain(limits,
		flakyPred{limits},
		errPred{},
		fixed{m: config.DefaultMulticore(limits)},
	)

	queries := make([]feature.Vector, 6)
	for i := range queries {
		for j := range queries[i] {
			queries[i][j] = float64((i*2+j)%11) / 10
		}
	}
	want := make([]Selection, len(queries))
	for i, q := range queries {
		want[i] = chain.Select(q)
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 100; iter++ {
				q := (g + iter) % len(queries)
				got := chain.Select(queries[q])
				if got.M != want[q].M || got.Used != want[q].Used ||
					len(got.Fallbacks) != len(want[q].Fallbacks) {
					t.Errorf("goroutine %d: Select diverged on query %d: %+v != %+v",
						g, q, got, want[q])
					return
				}
				if err := got.M.Validate(limits); err != nil {
					t.Errorf("goroutine %d: invalid M: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// errPred always reports failure through the checked interface.
type errPred struct{}

func (errPred) Name() string                    { return "AlwaysErr" }
func (errPred) Predict(feature.Vector) config.M { return config.M{} }
func (errPred) PredictChecked(feature.Vector) (config.M, error) {
	return config.M{}, errors.New("always fails")
}

// fixed always answers with one M.
type fixed struct{ m config.M }

func (f fixed) Name() string                    { return "Fixed" }
func (f fixed) Predict(feature.Vector) config.M { return f.m }

var _ predict.Checked = errPred{}
