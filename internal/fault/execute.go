package fault

import (
	"fmt"

	"heteromap/internal/config"
	"heteromap/internal/machine"
)

// Result is the complete accounting of one resilient job execution:
// which accelerator finally ran it, under what configuration, and every
// simulated second the faults cost on each side.
type Result struct {
	// FinalM is the configuration of the last attempt.
	FinalM config.M
	// Side is the accelerator the job finally ran on.
	Side config.Accel
	// Report is the machine report of the final attempt (the successful
	// one, or the last failed one for jobs that never completed).
	Report machine.Report
	// Attempts counts every execution attempt across both sides.
	Attempts int
	// Retries counts attempts beyond the first on each side.
	Retries int
	// FailedOver reports whether the job moved to the other accelerator
	// (after exhausting retries, or because the circuit was open).
	FailedOver bool
	// Completed is false only when both sides exhausted their retries.
	Completed bool
	// BackoffSeconds is the total simulated backoff wait.
	BackoffSeconds float64
	// MigrationSeconds is the simulated dataset-transfer cost of
	// failing over.
	MigrationSeconds float64
	// GPUSeconds and MCSeconds are the busy-time charges per side:
	// every attempt (failed or not), its backoff waits, and the
	// migration (charged to the receiving side).
	GPUSeconds, MCSeconds float64
	// Events narrates each fault and recovery decision in order.
	Events []string
}

// TotalSeconds is the job's complete resilient completion time: all
// attempts, waits and migrations on both sides (they serialize for a
// single job).
func (r Result) TotalSeconds() float64 { return r.GPUSeconds + r.MCSeconds }

// LostSeconds is the time charged beyond the final attempt itself —
// failed attempts, backoff waits and migration.
func (r Result) LostSeconds() float64 {
	lost := r.TotalSeconds() - r.Report.Seconds
	if lost < 0 {
		return 0
	}
	return lost
}

// Execute runs one job resiliently on the pair: try the predicted
// accelerator with capped-exponential-backoff retries, then fail over to
// the other accelerator (re-targeting m with the broken side masked out
// of the decision) when retries are exhausted or the circuit breaker is
// open. A nil injector means no faults; a nil brs tracks health for
// this call only.
func Execute(pair machine.Pair, limits config.Limits, m config.M, job machine.Job, key string, inj *Injector, pol Policy, brs *Breakers) Result {
	pol = pol.withDefaults()
	if brs == nil {
		brs = NewBreakers(pol)
	}
	res := Result{FinalM: m, Side: m.Accelerator, Completed: false}

	side := m.Accelerator
	if !brs.Side(side).Allow() {
		res.Events = append(res.Events,
			fmt.Sprintf("%s circuit open: failing over without attempting", side))
		res.FailedOver = true
		side = side.Other()
		m = m.ForceAccelerator(side, limits)
		res.charge(side, res.migrate(pol, job))
		// The healthy side must still run the job even if its own
		// breaker is open — refusing both sides would lose the job.
		brs.Side(side).Allow()
	}

	if res.attemptSide(pair, side, m, job, key, inj, pol, brs) {
		return res
	}

	// Retries exhausted: mask the broken side out and re-deploy on the
	// other accelerator.
	res.Events = append(res.Events,
		fmt.Sprintf("%s exhausted %d attempts: failing over", side, pol.MaxRetries+1))
	res.FailedOver = true
	other := side.Other()
	m2 := m.ForceAccelerator(other, limits)
	res.charge(other, res.migrate(pol, job))
	brs.Side(other).Allow()
	if !res.attemptSide(pair, other, m2, job, key, inj, pol, brs) {
		res.Events = append(res.Events, "job failed on both accelerators")
	}
	return res
}

// attemptSide runs the retry loop on one accelerator; true on success.
func (res *Result) attemptSide(pair machine.Pair, side config.Accel, m config.M, job machine.Job, key string, inj *Injector, pol Policy, brs *Breakers) bool {
	accel := pair.Select(side)
	br := brs.Side(side)
	for attempt := 0; attempt <= pol.MaxRetries; attempt++ {
		res.Attempts++
		if attempt > 0 {
			res.Retries++
			wait := Backoff(pol.BackoffBaseSeconds, pol.BackoffCapSeconds, attempt)
			res.BackoffSeconds += wait
			res.charge(side, wait)
		}
		rep, failed := inj.Evaluate(accel, side, job, m, key, attempt)
		res.charge(side, rep.Seconds)
		res.FinalM, res.Side, res.Report = m, side, rep
		if !failed {
			br.RecordSuccess()
			res.Completed = true
			return true
		}
		br.RecordFailure()
		res.Events = append(res.Events,
			fmt.Sprintf("%s attempt %d failed (%.4gs charged)", side, attempt+1, rep.Seconds))
	}
	return false
}

func (res *Result) migrate(pol Policy, job machine.Job) float64 {
	mig := pol.MigrationSeconds(job.FootprintBytes)
	res.MigrationSeconds += mig
	return mig
}

func (res *Result) charge(side config.Accel, seconds float64) {
	if side == config.GPU {
		res.GPUSeconds += seconds
	} else {
		res.MCSeconds += seconds
	}
}
