package fault

import (
	"strings"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/machine"
)

func execSetup() (machine.Pair, config.Limits, config.M, machine.Job) {
	pair := machine.PrimaryPair()
	limits := pair.Limits()
	return pair, limits, config.DefaultGPU(limits), testJob()
}

func TestExecuteFaultFree(t *testing.T) {
	pair, limits, m, job := execSetup()
	res := Execute(pair, limits, m, job, "BFS-FB", nil, DefaultPolicy(), nil)
	if !res.Completed || res.FailedOver || res.Attempts != 1 || res.Retries != 0 {
		t.Fatalf("fault-free execution degraded: %+v", res)
	}
	clean := pair.GPU.Evaluate(job, m)
	if res.TotalSeconds() != clean.Seconds {
		t.Fatalf("fault-free charge %v, clean %v", res.TotalSeconds(), clean.Seconds)
	}
	if res.MCSeconds != 0 {
		t.Fatal("fault-free GPU job charged the multicore")
	}
}

func TestExecuteRetriesThenSucceeds(t *testing.T) {
	pair, limits, m, job := execSetup()
	// Find a seed/key whose first GPU attempt fails but a later one
	// succeeds within the retry budget.
	var inj *Injector
	key := ""
	for seed := int64(1); seed < 200 && key == ""; seed++ {
		cand := NewInjector(seed).SetProfile(config.GPU, Profile{TransientRate: 0.5})
		if cand.ShouldFail(config.GPU, "job", 0) && !cand.ShouldFail(config.GPU, "job", 1) {
			inj, key = cand, "job"
		}
	}
	if key == "" {
		t.Fatal("no suitable seed found")
	}
	res := Execute(pair, limits, m, job, key, inj, DefaultPolicy(), nil)
	if !res.Completed || res.FailedOver {
		t.Fatalf("retry did not recover: %+v", res)
	}
	if res.Attempts != 2 || res.Retries != 1 {
		t.Fatalf("attempts=%d retries=%d", res.Attempts, res.Retries)
	}
	if res.BackoffSeconds <= 0 {
		t.Fatal("retry without backoff charge")
	}
	clean := pair.GPU.Evaluate(job, m)
	// Both attempts plus the backoff must be charged to the GPU.
	wantMin := clean.Seconds*2 + res.BackoffSeconds
	if res.GPUSeconds < wantMin*(1-1e-9) {
		t.Fatalf("GPU charge %v, want >= %v", res.GPUSeconds, wantMin)
	}
	if res.LostSeconds() <= 0 {
		t.Fatal("no lost time accounted")
	}
}

func TestExecuteFailsOver(t *testing.T) {
	pair, limits, m, job := execSetup()
	// GPU always fails, multicore is clean: the job must fail over.
	inj := NewInjector(3).SetProfile(config.GPU, Profile{TransientRate: 1})
	pol := DefaultPolicy()
	res := Execute(pair, limits, m, job, "BFS-FB", inj, pol, nil)
	if !res.Completed || !res.FailedOver {
		t.Fatalf("no failover: %+v", res)
	}
	if res.Side != config.Multicore || res.FinalM.Accelerator != config.Multicore {
		t.Fatalf("final side %v", res.Side)
	}
	if res.Attempts != pol.MaxRetries+2 {
		t.Fatalf("attempts %d want %d", res.Attempts, pol.MaxRetries+2)
	}
	if res.MigrationSeconds <= 0 {
		t.Fatal("failover without migration charge")
	}
	if res.GPUSeconds <= 0 || res.MCSeconds <= 0 {
		t.Fatalf("charges GPU=%v MC=%v", res.GPUSeconds, res.MCSeconds)
	}
	// The re-targeted M must carry deployable multicore knobs.
	if res.FinalM.Cores < 1 || res.FinalM.MulticoreThreads() < 1 {
		t.Fatalf("failover M undeployable: %+v", res.FinalM)
	}
}

func TestExecuteBothSidesDown(t *testing.T) {
	pair, limits, m, job := execSetup()
	inj := NewInjector(3).
		SetProfile(config.GPU, Profile{TransientRate: 1}).
		SetProfile(config.Multicore, Profile{TransientRate: 1})
	res := Execute(pair, limits, m, job, "BFS-FB", inj, DefaultPolicy(), nil)
	if res.Completed {
		t.Fatal("completed with both sides at 100% failure")
	}
	if !res.FailedOver || res.Report.Seconds <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	found := false
	for _, e := range res.Events {
		if strings.Contains(e, "both accelerators") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing both-sides event: %v", res.Events)
	}
}

func TestExecuteOpenBreakerSkipsBrokenSide(t *testing.T) {
	pair, limits, m, job := execSetup()
	pol := DefaultPolicy()
	brs := NewBreakers(pol)
	for i := 0; i < pol.BreakerThreshold; i++ {
		brs.Side(config.GPU).RecordFailure()
	}
	if brs.Side(config.GPU).State() != BreakerOpen {
		t.Fatal("setup: breaker not open")
	}
	res := Execute(pair, limits, m, job, "BFS-FB", nil, pol, brs)
	if !res.Completed || !res.FailedOver {
		t.Fatalf("open breaker not honored: %+v", res)
	}
	if res.Side != config.Multicore {
		t.Fatalf("ran on broken side: %v", res.Side)
	}
	if res.GPUSeconds != 0 {
		t.Fatalf("charged the skipped side: %v", res.GPUSeconds)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts %d", res.Attempts)
	}
}

func TestExecuteBreakerRecovers(t *testing.T) {
	// A run of failures opens the GPU breaker; after the cooldown, a
	// half-open probe on a now-healthy GPU closes it again.
	pair, limits, m, job := execSetup()
	pol := Policy{MaxRetries: 1, BreakerThreshold: 2, BreakerCooldown: 2}
	brs := NewBreakers(pol.withDefaults())
	down := NewInjector(5).SetProfile(config.GPU, Profile{TransientRate: 1})
	Execute(pair, limits, m, job, "j0", down, pol, brs)
	if brs.Side(config.GPU).State() != BreakerOpen {
		t.Fatalf("GPU breaker state %v after total failure", brs.Side(config.GPU).State())
	}
	// While open, GPU-predicted jobs go straight to the multicore.
	r := Execute(pair, limits, m, job, "j1", nil, pol, brs)
	if r.Side != config.Multicore || r.GPUSeconds != 0 {
		t.Fatal("open breaker did not redirect")
	}
	// Keep dispatching until the cooldown admits a probe; the fault is
	// gone, so the probe succeeds and the circuit closes.
	closed := false
	for i := 0; i < 10; i++ {
		res := Execute(pair, limits, m, job, "probe", nil, pol, brs)
		if !res.Completed {
			t.Fatalf("probe round %d incomplete", i)
		}
		if brs.Side(config.GPU).State() == BreakerClosed {
			closed = true
			break
		}
	}
	if !closed {
		t.Fatal("breaker never recovered")
	}
}
