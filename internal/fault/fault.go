// Package fault is the resilience layer of the runtime: a deterministic,
// seedable fault injector over the machine model, per-accelerator health
// tracking with a circuit breaker, capped-exponential-backoff retry with
// failover to the healthy accelerator, and a graceful predictor
// degradation chain (trained learner -> decision tree -> fixed default).
//
// The paper's Section II operational setting assumes both accelerators
// stay healthy for the whole batch; real heterogeneous deployments see
// transient job failures, sustained thermal throttling and memory
// capacity loss. This package lets the characterize -> predict -> deploy
// pipeline survive all three while keeping the makespan accounting
// honest: every failed attempt, backoff wait and migration is charged to
// the accelerator that incurred it, so degraded plans remain comparable
// against the paper baselines.
//
// Determinism: every fault decision is a pure hash of (seed, accelerator
// side, job key, attempt index). Two runs with the same seed see the
// same faults, and raising the fault rate can only turn successes into
// failures, never the reverse — which is what makes "makespan is
// non-decreasing in fault rate" a testable property rather than a
// statistical hope.
package fault

import (
	"fmt"
	"hash/fnv"

	"heteromap/internal/config"
	"heteromap/internal/machine"
)

// Profile describes one accelerator's failure modes. The zero value
// injects nothing.
type Profile struct {
	// TransientRate is the per-attempt probability that a job execution
	// fails (crash, ECC error, watchdog kill) and must be retried.
	TransientRate float64
	// Slowdown is a sustained completion-time multiplier >= 1 modelling
	// thermal throttling; values <= 1 mean no throttle.
	Slowdown float64
	// MemLossFrac in [0,1) is the fraction of attached memory that has
	// dropped out (failed DIMM/partition); losing capacity forces extra
	// streaming chunks for datasets that no longer fit.
	MemLossFrac float64
}

// Active reports whether the profile injects any fault at all.
func (p Profile) Active() bool {
	return p.TransientRate > 0 || p.Slowdown > 1 || p.MemLossFrac > 0
}

// String implements fmt.Stringer.
func (p Profile) String() string {
	return fmt.Sprintf("fail=%.2f slowdown=%.2fx memloss=%.0f%%",
		p.TransientRate, effectiveSlowdown(p), p.MemLossFrac*100)
}

// ScaledProfile derives a whole-system chaos profile from a single fault
// rate in [0,1]: transient failures at the rate itself, throttling and
// memory loss growing proportionally. The -chaos flag and the chaos
// test sweeps use it so that one number controls the fault intensity
// monotonically.
func ScaledProfile(rate float64) Profile {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return Profile{
		TransientRate: rate,
		Slowdown:      1 + 0.5*rate,
		MemLossFrac:   0.5 * rate,
	}
}

func effectiveSlowdown(p Profile) float64 {
	if p.Slowdown < 1 {
		return 1
	}
	return p.Slowdown
}

// Injector deterministically injects the configured fault profiles into
// machine-model evaluations. A nil *Injector is valid and injects
// nothing, so fault-free call sites need no branching. The injector is
// stateless after construction and safe for concurrent use.
type Injector struct {
	seed     int64
	profiles [2]Profile // indexed by config.Accel
}

// NewInjector returns an injector with no active profiles; the seed
// fixes every future fault decision.
func NewInjector(seed int64) *Injector {
	return &Injector{seed: seed}
}

// NewChaosInjector returns an injector with the rate-scaled profile
// applied to both accelerators.
func NewChaosInjector(seed int64, rate float64) *Injector {
	return NewInjector(seed).
		SetProfile(config.GPU, ScaledProfile(rate)).
		SetProfile(config.Multicore, ScaledProfile(rate))
}

// SetProfile installs a fault profile for one accelerator side and
// returns the injector for chaining.
func (in *Injector) SetProfile(side config.Accel, p Profile) *Injector {
	in.profiles[sideIndex(side)] = p
	return in
}

// Profile returns the side's installed profile.
func (in *Injector) Profile(side config.Accel) Profile {
	if in == nil {
		return Profile{}
	}
	return in.profiles[sideIndex(side)]
}

// Enabled reports whether any side injects faults.
func (in *Injector) Enabled() bool {
	return in != nil && (in.profiles[0].Active() || in.profiles[1].Active())
}

// ShouldFail decides whether attempt number `attempt` of the job
// identified by key fails on the given side. The decision is a pure
// function of (seed, side, key, attempt): independent of call order and
// monotone in the side's TransientRate.
func (in *Injector) ShouldFail(side config.Accel, key string, attempt int) bool {
	if in == nil {
		return false
	}
	rate := in.Profile(side).TransientRate
	if rate <= 0 {
		return false
	}
	return in.roll(side, key, attempt) < rate
}

// roll returns the deterministic uniform draw in [0,1) for one attempt.
func (in *Injector) roll(side config.Accel, key string, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s|%d", in.seed, sideIndex(side), key, attempt)
	// splitmix64 finalizer decorrelates FNV's low-entropy tail bits.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Degrade returns the accelerator as the fault profile currently leaves
// it: memory-capacity loss shrinks attached memory (forcing extra
// streaming chunks for large footprints). The original is not modified.
func (in *Injector) Degrade(a *machine.Accel, side config.Accel) *machine.Accel {
	p := in.Profile(side)
	if p.MemLossFrac <= 0 {
		return a
	}
	loss := p.MemLossFrac
	if loss >= 1 {
		loss = 0.99
	}
	return a.WithMemory(int64(float64(a.MemBytes) * (1 - loss)))
}

// Evaluate simulates one execution attempt of job under m on the (fault-
// degraded) accelerator and reports whether the attempt failed. Failed
// attempts still return the full simulated report: the runtime only
// discovers the failure at completion, so the whole attempt's time is
// charged (this full-cost charging is also what keeps per-side busy time
// monotone in the fault rate).
func (in *Injector) Evaluate(a *machine.Accel, side config.Accel, job machine.Job, m config.M, key string, attempt int) (machine.Report, bool) {
	if in == nil {
		return a.Evaluate(job, m), false
	}
	p := in.Profile(side)
	rep := in.Degrade(a, side).Evaluate(job, m)
	if s := effectiveSlowdown(p); s > 1 {
		rep.Seconds *= s
		rep.EnergyJ *= s
	}
	return rep, in.ShouldFail(side, key, attempt)
}

func sideIndex(a config.Accel) int {
	if a == config.GPU {
		return 0
	}
	return 1
}
