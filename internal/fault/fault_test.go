package fault

import (
	"math"
	"sync"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/machine"
	"heteromap/internal/profile"
)

func testJob() machine.Job {
	w := &profile.Work{
		Phases: []profile.Phase{{
			Kind: profile.VertexDivision, ParallelItems: 1 << 16,
			VertexOps: 1 << 20, EdgeOps: 1 << 22, IndexedAccesses: 1 << 20,
			IndirectAccesses: 1 << 19, ReadOnlyBytes: 1 << 24, ReadWriteBytes: 1 << 22,
			ChainLength: 8,
		}},
		Locality: 0.4, Skew: 0.5, Barriers: 10,
	}
	return machine.Job{Work: w, FootprintBytes: 1 << 30}
}

func TestInjectorDeterministic(t *testing.T) {
	a := NewChaosInjector(7, 0.3)
	b := NewChaosInjector(7, 0.3)
	for attempt := 0; attempt < 50; attempt++ {
		for _, side := range []config.Accel{config.GPU, config.Multicore} {
			if a.ShouldFail(side, "BFS-FB", attempt) != b.ShouldFail(side, "BFS-FB", attempt) {
				t.Fatalf("same seed diverged at side=%v attempt=%d", side, attempt)
			}
		}
	}
	c := NewChaosInjector(8, 0.3)
	diff := 0
	for attempt := 0; attempt < 200; attempt++ {
		if a.ShouldFail(config.GPU, "BFS-FB", attempt) != c.ShouldFail(config.GPU, "BFS-FB", attempt) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestInjectorMonotoneInRate(t *testing.T) {
	// Raising the rate may only turn successes into failures — the
	// property the makespan-monotonicity guarantee rests on.
	lo := NewChaosInjector(42, 0.1)
	hi := NewChaosInjector(42, 0.3)
	for attempt := 0; attempt < 500; attempt++ {
		if lo.ShouldFail(config.GPU, "PR-Twtr", attempt) && !hi.ShouldFail(config.GPU, "PR-Twtr", attempt) {
			t.Fatalf("attempt %d fails at rate 0.1 but not 0.3", attempt)
		}
	}
}

func TestInjectorRateIsApproximate(t *testing.T) {
	in := NewChaosInjector(1, 0.3)
	fails := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if in.ShouldFail(config.GPU, "job", i) {
			fails++
		}
	}
	got := float64(fails) / n
	if math.Abs(got-0.3) > 0.05 {
		t.Fatalf("empirical fail rate %.3f, want ~0.30", got)
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in.ShouldFail(config.GPU, "x", 0) {
		t.Fatal("nil injector failed a job")
	}
	if in.Enabled() {
		t.Fatal("nil injector enabled")
	}
	pair := machine.PrimaryPair()
	job := testJob()
	m := config.DefaultGPU(pair.Limits())
	rep, failed := in.Evaluate(pair.GPU, config.GPU, job, m, "x", 0)
	if failed {
		t.Fatal("nil injector failed an evaluation")
	}
	clean := pair.GPU.Evaluate(job, m)
	if rep.Seconds != clean.Seconds {
		t.Fatalf("nil injector changed timing: %v vs %v", rep.Seconds, clean.Seconds)
	}
}

func TestSlowdownAndMemoryLoss(t *testing.T) {
	pair := machine.PrimaryPair()
	job := testJob() // 1 GB footprint fits the 2 GB GTX-750Ti cleanly
	m := config.DefaultGPU(pair.Limits())
	clean := pair.GPU.Evaluate(job, m)

	throttled := NewInjector(1).SetProfile(config.GPU, Profile{Slowdown: 2})
	rep, failed := throttled.Evaluate(pair.GPU, config.GPU, job, m, "x", 0)
	if failed {
		t.Fatal("slowdown-only profile failed a job")
	}
	if got, want := rep.Seconds, clean.Seconds*2; math.Abs(got-want) > want*1e-9 {
		t.Fatalf("2x throttle gave %v, clean %v", got, clean.Seconds)
	}

	// Losing 60% of 2 GB leaves 0.8 GB: the 1 GB footprint must stream.
	lossy := NewInjector(1).SetProfile(config.GPU, Profile{MemLossFrac: 0.6})
	rep2, _ := lossy.Evaluate(pair.GPU, config.GPU, job, m, "x", 0)
	if rep2.Breakdown.Chunks < 2 {
		t.Fatalf("memory loss did not force streaming: %d chunks", rep2.Breakdown.Chunks)
	}
	if rep2.Seconds <= clean.Seconds {
		t.Fatalf("streaming under memory loss not slower: %v vs %v", rep2.Seconds, clean.Seconds)
	}
}

func TestScaledProfileMonotone(t *testing.T) {
	prev := ScaledProfile(0)
	if prev.Active() {
		t.Fatal("rate 0 active")
	}
	for _, r := range []float64{0.1, 0.3, 0.5, 1} {
		p := ScaledProfile(r)
		if p.TransientRate < prev.TransientRate || p.Slowdown < prev.Slowdown || p.MemLossFrac < prev.MemLossFrac {
			t.Fatalf("profile not monotone at rate %v", r)
		}
		prev = p
	}
}

func TestBackoffCappedExponential(t *testing.T) {
	base, capSec := 0.02, 1.0
	want := []float64{0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.0, 1.0, 1.0}
	for i, w := range want {
		if got := Backoff(base, capSec, i+1); math.Abs(got-w) > 1e-12 {
			t.Fatalf("Backoff(%d) = %v want %v", i+1, got, w)
		}
	}
	if Backoff(0, 1, 3) != 0 {
		t.Fatal("zero base must not wait")
	}
	// Huge retry counts must not overflow into Inf.
	if got := Backoff(base, capSec, 10000); got != capSec {
		t.Fatalf("huge retry backoff %v", got)
	}
}

func TestMigrationSeconds(t *testing.T) {
	pol := DefaultPolicy()
	small := pol.MigrationSeconds(0)
	big := pol.MigrationSeconds(12e9) // 12 GB over 12 GB/s ~ 1s
	if small <= 0 || big < 1 || big > 1.1 {
		t.Fatalf("migration costs: small=%v big=%v", small, big)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(3, 2)
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("fresh breaker not closed")
	}
	b.RecordFailure()
	b.RecordFailure()
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened early")
	}
	b.RecordFailure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not open at threshold")
	}
	// Cooldown: two refusals, then a half-open probe.
	if b.Allow() {
		t.Fatal("open breaker allowed traffic")
	}
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatal("not half-open after probe")
	}
	if b.Allow() {
		t.Fatal("second probe admitted while one in flight")
	}
	// Failed probe re-opens; successful probe closes.
	b.RecordFailure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open")
	}
	b.Allow()
	b.Allow() // probe again
	b.RecordSuccess()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close breaker")
	}
	// Consecutive-failure counter must reset on success.
	b.RecordFailure()
	b.RecordSuccess()
	b.RecordFailure()
	b.RecordFailure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped breaker")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(-1, 0)
	for i := 0; i < 100; i++ {
		b.RecordFailure()
	}
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("disabled breaker tripped")
	}
}

func TestBreakerConcurrentAccess(t *testing.T) {
	// The breaker guards a concurrent batch scheduler; hammer it from
	// many goroutines so the race detector can see any unguarded state.
	b := NewBreaker(5, 3)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				if b.Allow() {
					if j%3 == 0 {
						b.RecordFailure()
					} else {
						b.RecordSuccess()
					}
				}
				b.State()
			}
		}(i)
	}
	wg.Wait()
	ok, fail := b.Stats()
	if ok == 0 || fail == 0 {
		t.Fatalf("stats ok=%d fail=%d", ok, fail)
	}
}
