package fault

import (
	"fmt"
	"sync"

	"heteromap/internal/config"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: the accelerator is healthy; traffic flows.
	BreakerClosed BreakerState = iota
	// BreakerOpen: too many consecutive failures; traffic is refused
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed; exactly one probe job is in
	// flight, and its outcome decides between Closed and Open.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// Breaker tracks one accelerator's health and trips after a run of
// consecutive failures, so the scheduler stops burning retries on a side
// that is clearly down and fails jobs over to the healthy one. Time is
// attempt-counted rather than wall-clocked: the runtime is a simulator,
// and attempt counts keep the breaker deterministic. Safe for concurrent
// use.
type Breaker struct {
	mu        sync.Mutex
	threshold int // consecutive failures that open the circuit
	cooldown  int // refused Allow() calls before a half-open probe
	state     BreakerState
	consec    int
	refused   int
	oks       int
	fails     int
}

// NewBreaker returns a closed breaker. threshold <= 0 disables tripping
// entirely (the breaker never opens); cooldown <= 0 defaults to the
// threshold so recovery probing scales with trip sensitivity.
func NewBreaker(threshold, cooldown int) *Breaker {
	if cooldown <= 0 {
		cooldown = threshold
	}
	if cooldown <= 0 {
		cooldown = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a job may be dispatched. While open, each
// refused call counts toward the cooldown; once the cooldown elapses the
// breaker half-opens and admits exactly one probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		// A probe is already in flight; refuse until it reports.
		return false
	default: // BreakerOpen
		b.refused++
		if b.refused >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	}
}

// RecordSuccess reports a completed job; it closes the circuit.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.oks++
	b.consec = 0
	b.state = BreakerClosed
}

// RecordFailure reports a failed attempt; enough consecutive failures
// (or any failed half-open probe) open the circuit.
func (b *Breaker) RecordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.consec++
	if b.state == BreakerHalfOpen || (b.threshold > 0 && b.consec >= b.threshold) {
		b.state = BreakerOpen
		b.refused = 0
	}
}

// State returns the breaker's position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns the lifetime success and failure counts.
func (b *Breaker) Stats() (successes, failures int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.oks, b.fails
}

// Breakers is the per-accelerator health state of one system: a breaker
// for each side of the pair.
type Breakers struct {
	gpu, mc *Breaker
}

// NewBreakers builds both breakers from a policy.
func NewBreakers(pol Policy) *Breakers {
	pol = pol.withDefaults()
	return &Breakers{
		gpu: NewBreaker(pol.BreakerThreshold, pol.BreakerCooldown),
		mc:  NewBreaker(pol.BreakerThreshold, pol.BreakerCooldown),
	}
}

// Side returns the breaker guarding one accelerator.
func (bs *Breakers) Side(a config.Accel) *Breaker {
	if a == config.GPU {
		return bs.gpu
	}
	return bs.mc
}
