package fault

// Write kill-points: deterministic crash injection for the durability
// layer. A kill-point arms one named write target ("store", "wal",
// "snapshot", "cache", ...) with a byte offset; the durable writer dies
// with durable.ErrKilled after emitting exactly that many bytes, so a
// test or the crash-smoke harness can place a simulated power cut at
// any byte of any artifact and then prove recovery. WriteKill has the
// exact shape of durable.KillFunc — pass in.WriteKill as the Kill
// option of any durable-aware component.
//
// Unlike the probabilistic serve faults, kill-points are not drawn:
// a crash at byte 17 of the WAL either is the scenario under test or
// it is not. Determinism comes from the caller choosing the offset
// (the crash-smoke job randomizes it from its own seeded source and
// logs it for replay).

// ArmWriteKill arms the named write target: the next durable write to
// it dies after offset bytes. Re-arming replaces the previous offset;
// the kill stays armed until DisarmWriteKill (a real crash takes the
// process with it, so repeated firing is the honest default).
func (in *ServeInjector) ArmWriteKill(target string, offset int64) {
	if in == nil {
		return
	}
	in.killMu.Lock()
	if in.kills == nil {
		in.kills = make(map[string]int64)
	}
	in.kills[target] = offset
	in.killMu.Unlock()
}

// DisarmWriteKill removes the named target's kill-point.
func (in *ServeInjector) DisarmWriteKill(target string) {
	if in == nil {
		return
	}
	in.killMu.Lock()
	delete(in.kills, target)
	in.killMu.Unlock()
}

// WriteKill reports whether the named target is armed and at which byte
// offset the write must die. It satisfies durable.KillFunc.
func (in *ServeInjector) WriteKill(target string) (int64, bool) {
	if in == nil {
		return 0, false
	}
	in.killMu.Lock()
	off, ok := in.kills[target]
	in.killMu.Unlock()
	return off, ok
}

// ArmedWriteKills returns a copy of the currently armed kill-points,
// for logging the crash schedule a run was exposed to.
func (in *ServeInjector) ArmedWriteKills() map[string]int64 {
	if in == nil {
		return nil
	}
	in.killMu.Lock()
	defer in.killMu.Unlock()
	if len(in.kills) == 0 {
		return nil
	}
	out := make(map[string]int64, len(in.kills))
	for k, v := range in.kills {
		out[k] = v
	}
	return out
}
