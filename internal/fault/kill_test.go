package fault

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"heteromap/internal/durable"
)

func TestWriteKillArmDisarm(t *testing.T) {
	in := NewServeInjector(1)
	if _, ok := in.WriteKill("store"); ok {
		t.Fatal("fresh injector has an armed kill-point")
	}
	in.ArmWriteKill("store", 17)
	if off, ok := in.WriteKill("store"); !ok || off != 17 {
		t.Fatalf("WriteKill(store) = %d %v, want 17 true", off, ok)
	}
	if _, ok := in.WriteKill("wal"); ok {
		t.Fatal("arming one target armed another")
	}
	in.ArmWriteKill("store", 99) // re-arm replaces
	if off, _ := in.WriteKill("store"); off != 99 {
		t.Fatalf("re-arm kept old offset %d", off)
	}
	armed := in.ArmedWriteKills()
	if len(armed) != 1 || armed["store"] != 99 {
		t.Fatalf("ArmedWriteKills = %v", armed)
	}
	in.DisarmWriteKill("store")
	if _, ok := in.WriteKill("store"); ok {
		t.Fatal("disarm did not disarm")
	}
	if in.ArmedWriteKills() != nil {
		t.Fatal("disarmed injector still reports kills")
	}
	// Nil injector: every method is a safe no-op.
	var nilIn *ServeInjector
	nilIn.ArmWriteKill("x", 1)
	nilIn.DisarmWriteKill("x")
	if _, ok := nilIn.WriteKill("x"); ok {
		t.Fatal("nil injector armed")
	}
}

// TestWriteKillDrivesDurableWriter: in.WriteKill plugs straight into the
// durable layer as its KillFunc and actually kills the write at the
// armed byte, leaving the committed file untouched.
func TestWriteKillDrivesDurableWriter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	in := NewServeInjector(1)
	write := func(w io.Writer) error {
		_, err := w.Write(bytes.Repeat([]byte{0xAB}, 64))
		return err
	}
	if err := durable.WriteFileAtomic(path, "store", in.WriteKill, write); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(path)

	in.ArmWriteKill("store", 10)
	err := durable.WriteFileAtomic(path, "store", in.WriteKill, write)
	if !errors.Is(err, durable.ErrKilled) {
		t.Fatalf("armed write returned %v, want ErrKilled", err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("killed write mutated the committed file")
	}
	in.DisarmWriteKill("store")
	if err := durable.WriteFileAtomic(path, "store", in.WriteKill, write); err != nil {
		t.Fatal(err)
	}
}
