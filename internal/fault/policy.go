package fault

// Policy configures the retry, backoff, circuit-breaker and migration
// behaviour of resilient execution. The zero value is usable: every
// field defaults via withDefaults.
type Policy struct {
	// MaxRetries is how many times a transiently failed job is retried
	// on the same accelerator before failing over to the other side.
	MaxRetries int
	// BackoffBaseSeconds is the first retry's simulated wait; each
	// further retry doubles it, capped at BackoffCapSeconds.
	BackoffBaseSeconds float64
	// BackoffCapSeconds caps the exponential backoff.
	BackoffCapSeconds float64
	// BreakerThreshold is the consecutive-failure count that opens an
	// accelerator's circuit breaker; < 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how many refused dispatches the open breaker
	// sits out before admitting a half-open probe.
	BreakerCooldown int
	// PCIeGBs is the host-accelerator transfer bandwidth charged when a
	// job migrates to the other accelerator.
	PCIeGBs float64
	// MigrationLatencySeconds is the flat per-migration setup cost.
	MigrationLatencySeconds float64
}

// DefaultPolicy returns the retry policy used by the -chaos flag and the
// resilient scheduler: up to 3 retries with 20ms..1s backoff, a breaker
// tripping after 5 consecutive failures, and PCIe-3.0-class migration.
func DefaultPolicy() Policy {
	return Policy{
		MaxRetries:              3,
		BackoffBaseSeconds:      0.02,
		BackoffCapSeconds:       1.0,
		BreakerThreshold:        5,
		BreakerCooldown:         8,
		PCIeGBs:                 12,
		MigrationLatencySeconds: 0.002,
	}
}

func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.MaxRetries == 0 {
		p.MaxRetries = d.MaxRetries
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.BackoffBaseSeconds <= 0 {
		p.BackoffBaseSeconds = d.BackoffBaseSeconds
	}
	if p.BackoffCapSeconds <= 0 {
		p.BackoffCapSeconds = d.BackoffCapSeconds
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = d.BreakerThreshold
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = d.BreakerCooldown
	}
	if p.PCIeGBs <= 0 {
		p.PCIeGBs = d.PCIeGBs
	}
	if p.MigrationLatencySeconds <= 0 {
		p.MigrationLatencySeconds = d.MigrationLatencySeconds
	}
	return p
}

// Backoff returns the capped exponential wait before retry number
// `retry` (1-based): base, 2*base, 4*base, ... capped.
func Backoff(base, capSec float64, retry int) float64 {
	if retry < 1 {
		retry = 1
	}
	if base <= 0 {
		return 0
	}
	wait := base
	for i := 1; i < retry; i++ {
		wait *= 2
		if wait >= capSec {
			return capSec
		}
	}
	if capSec > 0 && wait > capSec {
		wait = capSec
	}
	return wait
}

// MigrationSeconds is the simulated cost of moving a job's dataset to
// the other accelerator over PCIe.
func (p Policy) MigrationSeconds(footprintBytes int64) float64 {
	p = p.withDefaults()
	if footprintBytes < 0 {
		footprintBytes = 0
	}
	return p.MigrationLatencySeconds + float64(footprintBytes)/(p.PCIeGBs*1e9)
}
