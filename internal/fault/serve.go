package fault

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// ServeProfile describes the serve-path failure modes the serving chaos
// harness can inject, mirroring what takes real prediction services
// down: a pathologically slow model, a wedged batch worker, a corrupt
// model snapshot arriving through reload, and queue saturation. The
// zero value injects nothing.
type ServeProfile struct {
	// SlowModelRate is the per-inference probability that the model
	// stalls for SlowModelDelay before answering.
	SlowModelRate  float64
	SlowModelDelay time.Duration
	// StallWorkerRate is the per-batch probability that the draining
	// worker wedges for StallWorkerDelay before processing.
	StallWorkerRate  float64
	StallWorkerDelay time.Duration
	// CorruptReloadRate is the per-reload probability that the candidate
	// snapshot is treated as corrupt and must be rejected.
	CorruptReloadRate float64
	// QueueRejectRate is the per-submission probability that admission
	// behaves as if the bounded queue were saturated.
	QueueRejectRate float64

	// Cluster fault modes, injected at the router's forwarding layer
	// rather than inside one node. SlowPeerRate is the per-forward
	// probability that the network path to the target peer adds
	// SlowPeerDelay before the request goes out (a congested or
	// throttled link); PeerPartitionRate the per-forward probability
	// that the request blackholes — it hangs until the caller's
	// deadline, the signature of a network partition; NodeKillRate the
	// per-forward probability that the target behaves dead and the
	// connection is refused immediately, the signature of a crashed
	// process.
	SlowPeerRate      float64
	SlowPeerDelay     time.Duration
	PeerPartitionRate float64
	NodeKillRate      float64
}

// Active reports whether the profile injects any serve fault at all.
func (p ServeProfile) Active() bool {
	return p.SlowModelRate > 0 || p.StallWorkerRate > 0 ||
		p.CorruptReloadRate > 0 || p.QueueRejectRate > 0 ||
		p.SlowPeerRate > 0 || p.PeerPartitionRate > 0 || p.NodeKillRate > 0
}

// String implements fmt.Stringer.
func (p ServeProfile) String() string {
	s := fmt.Sprintf("slow=%.2f@%v stall=%.2f@%v corrupt-reload=%.2f queue-reject=%.2f",
		p.SlowModelRate, p.SlowModelDelay, p.StallWorkerRate, p.StallWorkerDelay,
		p.CorruptReloadRate, p.QueueRejectRate)
	if p.SlowPeerRate > 0 || p.PeerPartitionRate > 0 || p.NodeKillRate > 0 {
		s += fmt.Sprintf(" slow-peer=%.2f@%v partition=%.2f node-kill=%.2f",
			p.SlowPeerRate, p.SlowPeerDelay, p.PeerPartitionRate, p.NodeKillRate)
	}
	return s
}

// ScaledServeProfile derives a whole-pipeline serve chaos profile from a
// single rate in [0,1], the serving analog of ScaledProfile: one number
// controls fault intensity monotonically across all four modes. Delays
// are sized to hurt (they exceed any sane per-stage budget) without
// outliving a request deadline.
func ScaledServeProfile(rate float64) ServeProfile {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return ServeProfile{
		SlowModelRate:     rate,
		SlowModelDelay:    50 * time.Millisecond,
		StallWorkerRate:   0.5 * rate,
		StallWorkerDelay:  100 * time.Millisecond,
		CorruptReloadRate: rate,
		QueueRejectRate:   0.05 * rate,
	}
}

// ScaledClusterProfile derives a router-side chaos profile from a single
// rate in [0,1], the cluster analog of ScaledServeProfile: slow peers at
// the rate itself, partitions and node deaths rarer (they cost a full
// failover each), with the slow-peer delay sized to trip the router's
// hedge budget without outliving a request deadline.
func ScaledClusterProfile(rate float64) ServeProfile {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return ServeProfile{
		SlowPeerRate:      rate,
		SlowPeerDelay:     50 * time.Millisecond,
		PeerPartitionRate: 0.1 * rate,
		NodeKillRate:      0.1 * rate,
	}
}

// serve-injection draw kinds, also the per-kind sequence-counter index.
const (
	serveKindSlowModel = iota
	serveKindStallWorker
	serveKindCorruptReload
	serveKindQueueReject
	serveKindSlowPeer
	serveKindPeerPartition
	serveKindNodeKill
	numServeKinds
)

// ServeInjector injects ServeProfile faults into the serving pipeline.
// Like Injector, every decision is a deterministic hash — here of
// (seed, fault kind, per-kind draw sequence number) — so a seeded run
// replays the same fault schedule. Unlike Injector, the profile is
// swappable mid-run (chaos loadgen flips modes while traffic flows), so
// it lives behind an atomic pointer. A nil *ServeInjector is valid and
// injects nothing.
type ServeInjector struct {
	seed    int64
	profile atomic.Pointer[ServeProfile]
	seq     [numServeKinds]atomic.Uint64

	// Armed write kill-points (see kill.go): target name -> byte offset
	// at which the next durable write to that target must die.
	killMu sync.Mutex
	kills  map[string]int64
}

// NewServeInjector returns an injector with an empty profile; the seed
// fixes every future fault decision.
func NewServeInjector(seed int64) *ServeInjector {
	in := &ServeInjector{seed: seed}
	in.profile.Store(&ServeProfile{})
	return in
}

// SetServeProfile swaps the active profile; in-flight draws see either
// the old or the new profile, never a mix.
func (in *ServeInjector) SetServeProfile(p ServeProfile) {
	if in == nil {
		return
	}
	in.profile.Store(&p)
}

// ServeProfile returns the active profile.
func (in *ServeInjector) ServeProfile() ServeProfile {
	if in == nil {
		return ServeProfile{}
	}
	return *in.profile.Load()
}

// Enabled reports whether the injector currently injects anything.
func (in *ServeInjector) Enabled() bool {
	return in != nil && in.ServeProfile().Active()
}

// draw consumes the kind's next sequence number and returns the
// deterministic uniform value in [0,1) for it.
func (in *ServeInjector) draw(kind int) float64 {
	n := in.seq[kind].Add(1)
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|serve|%d|%d", in.seed, kind, n)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// SlowModel decides whether the next inference stalls, and for how long.
func (in *ServeInjector) SlowModel() (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	p := in.ServeProfile()
	if p.SlowModelRate <= 0 || p.SlowModelDelay <= 0 {
		return 0, false
	}
	if in.draw(serveKindSlowModel) < p.SlowModelRate {
		return p.SlowModelDelay, true
	}
	return 0, false
}

// StallWorker decides whether the next batch drain wedges its worker.
func (in *ServeInjector) StallWorker() (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	p := in.ServeProfile()
	if p.StallWorkerRate <= 0 || p.StallWorkerDelay <= 0 {
		return 0, false
	}
	if in.draw(serveKindStallWorker) < p.StallWorkerRate {
		return p.StallWorkerDelay, true
	}
	return 0, false
}

// CorruptReload decides whether the next reload's candidate snapshot is
// treated as corrupt.
func (in *ServeInjector) CorruptReload() bool {
	if in == nil {
		return false
	}
	p := in.ServeProfile()
	return p.CorruptReloadRate > 0 && in.draw(serveKindCorruptReload) < p.CorruptReloadRate
}

// RejectQueue decides whether the next submission is shed as if the
// queue were saturated.
func (in *ServeInjector) RejectQueue() bool {
	if in == nil {
		return false
	}
	p := in.ServeProfile()
	return p.QueueRejectRate > 0 && in.draw(serveKindQueueReject) < p.QueueRejectRate
}

// SlowPeer decides whether the next forwarded request's network path
// stalls, and for how long.
func (in *ServeInjector) SlowPeer() (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	p := in.ServeProfile()
	if p.SlowPeerRate <= 0 || p.SlowPeerDelay <= 0 {
		return 0, false
	}
	if in.draw(serveKindSlowPeer) < p.SlowPeerRate {
		return p.SlowPeerDelay, true
	}
	return 0, false
}

// PartitionPeer decides whether the next forwarded request blackholes:
// it hangs until the caller's deadline instead of ever reaching the peer.
func (in *ServeInjector) PartitionPeer() bool {
	if in == nil {
		return false
	}
	p := in.ServeProfile()
	return p.PeerPartitionRate > 0 && in.draw(serveKindPeerPartition) < p.PeerPartitionRate
}

// KillNode decides whether the next forwarded request finds the target
// dead: the connection is refused immediately, as to a crashed process.
func (in *ServeInjector) KillNode() bool {
	if in == nil {
		return false
	}
	p := in.ServeProfile()
	return p.NodeKillRate > 0 && in.draw(serveKindNodeKill) < p.NodeKillRate
}
