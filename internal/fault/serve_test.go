package fault

import (
	"testing"
	"time"
)

func TestServeProfileActiveAndScaling(t *testing.T) {
	if (ServeProfile{}).Active() {
		t.Fatal("zero profile active")
	}
	if !ScaledServeProfile(0.3).Active() {
		t.Fatal("scaled profile inactive")
	}
	if ScaledServeProfile(0).Active() {
		t.Fatal("zero-rate scaled profile active")
	}
	lo, hi := ScaledServeProfile(0.2), ScaledServeProfile(0.9)
	if hi.SlowModelRate <= lo.SlowModelRate || hi.StallWorkerRate <= lo.StallWorkerRate {
		t.Fatalf("scaling not monotone: %v vs %v", lo, hi)
	}
	clamped := ScaledServeProfile(7)
	if clamped.SlowModelRate != 1 {
		t.Fatalf("rate not clamped: %v", clamped)
	}
	if ScaledServeProfile(-1).Active() {
		t.Fatal("negative rate active")
	}
}

// Same seed, same draw order => same fault schedule; that is what makes
// chaos serving tests reproducible.
func TestServeInjectorDeterministic(t *testing.T) {
	run := func() []bool {
		in := NewServeInjector(99)
		in.SetServeProfile(ServeProfile{
			SlowModelRate: 0.5, SlowModelDelay: time.Millisecond,
			CorruptReloadRate: 0.5,
		})
		var out []bool
		for i := 0; i < 64; i++ {
			_, slow := in.SlowModel()
			out = append(out, slow, in.CorruptReload())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical seeded runs", i)
		}
	}
	any := false
	for _, v := range a {
		any = any || v
	}
	if !any {
		t.Fatal("rate 0.5 never fired in 128 draws")
	}
}

func TestServeInjectorNilAndEmpty(t *testing.T) {
	var in *ServeInjector
	if _, ok := in.SlowModel(); ok || in.CorruptReload() || in.RejectQueue() || in.Enabled() {
		t.Fatal("nil injector injected a fault")
	}
	if _, ok := in.StallWorker(); ok {
		t.Fatal("nil injector stalled a worker")
	}
	in.SetServeProfile(ScaledServeProfile(1)) // must not panic
	live := NewServeInjector(1)
	if live.Enabled() {
		t.Fatal("fresh injector enabled")
	}
	if _, ok := live.SlowModel(); ok {
		t.Fatal("empty profile injected")
	}
}

// Flipping the profile mid-run changes behaviour immediately: off means
// no faults, on at rate 1 means every draw fires.
func TestServeInjectorProfileFlip(t *testing.T) {
	in := NewServeInjector(7)
	in.SetServeProfile(ServeProfile{SlowModelRate: 1, SlowModelDelay: time.Millisecond})
	if _, ok := in.SlowModel(); !ok {
		t.Fatal("rate-1 slow model did not fire")
	}
	in.SetServeProfile(ServeProfile{})
	if _, ok := in.SlowModel(); ok {
		t.Fatal("cleared profile still fired")
	}
	in.SetServeProfile(ServeProfile{QueueRejectRate: 1})
	if !in.RejectQueue() {
		t.Fatal("rate-1 queue reject did not fire")
	}
	if got := in.ServeProfile().QueueRejectRate; got != 1 {
		t.Fatalf("profile readback = %v", got)
	}
}

func TestClusterProfileDrawsAndScaling(t *testing.T) {
	if (ServeProfile{SlowPeerRate: 0.2, SlowPeerDelay: time.Millisecond}).Active() == false {
		t.Fatal("slow-peer profile inactive")
	}
	if !ScaledClusterProfile(0.4).Active() || ScaledClusterProfile(0).Active() {
		t.Fatal("cluster scaling active/inactive wrong")
	}
	lo, hi := ScaledClusterProfile(0.2), ScaledClusterProfile(0.9)
	if hi.SlowPeerRate <= lo.SlowPeerRate || hi.NodeKillRate <= lo.NodeKillRate {
		t.Fatalf("cluster scaling not monotone: %v vs %v", lo, hi)
	}

	var nilIn *ServeInjector
	if _, ok := nilIn.SlowPeer(); ok || nilIn.PartitionPeer() || nilIn.KillNode() {
		t.Fatal("nil injector injected a cluster fault")
	}

	in := NewServeInjector(11)
	in.SetServeProfile(ServeProfile{
		SlowPeerRate: 1, SlowPeerDelay: time.Millisecond,
		PeerPartitionRate: 1, NodeKillRate: 1,
	})
	if d, ok := in.SlowPeer(); !ok || d != time.Millisecond {
		t.Fatalf("rate-1 slow peer: %v %v", d, ok)
	}
	if !in.PartitionPeer() || !in.KillNode() {
		t.Fatal("rate-1 partition/node-kill did not fire")
	}
	in.SetServeProfile(ServeProfile{})
	if _, ok := in.SlowPeer(); ok || in.PartitionPeer() || in.KillNode() {
		t.Fatal("cleared profile still fired a cluster fault")
	}
}

// Cluster draws are deterministic per seed, like every other kind.
func TestClusterDrawsDeterministic(t *testing.T) {
	run := func() []bool {
		in := NewServeInjector(17)
		in.SetServeProfile(ServeProfile{
			SlowPeerRate: 0.5, SlowPeerDelay: time.Millisecond,
			PeerPartitionRate: 0.5, NodeKillRate: 0.5,
		})
		var out []bool
		for i := 0; i < 48; i++ {
			_, slow := in.SlowPeer()
			out = append(out, slow, in.PartitionPeer(), in.KillNode())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cluster draw %d differs between identical seeded runs", i)
		}
	}
}
