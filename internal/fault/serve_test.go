package fault

import (
	"testing"
	"time"
)

func TestServeProfileActiveAndScaling(t *testing.T) {
	if (ServeProfile{}).Active() {
		t.Fatal("zero profile active")
	}
	if !ScaledServeProfile(0.3).Active() {
		t.Fatal("scaled profile inactive")
	}
	if ScaledServeProfile(0).Active() {
		t.Fatal("zero-rate scaled profile active")
	}
	lo, hi := ScaledServeProfile(0.2), ScaledServeProfile(0.9)
	if hi.SlowModelRate <= lo.SlowModelRate || hi.StallWorkerRate <= lo.StallWorkerRate {
		t.Fatalf("scaling not monotone: %v vs %v", lo, hi)
	}
	clamped := ScaledServeProfile(7)
	if clamped.SlowModelRate != 1 {
		t.Fatalf("rate not clamped: %v", clamped)
	}
	if ScaledServeProfile(-1).Active() {
		t.Fatal("negative rate active")
	}
}

// Same seed, same draw order => same fault schedule; that is what makes
// chaos serving tests reproducible.
func TestServeInjectorDeterministic(t *testing.T) {
	run := func() []bool {
		in := NewServeInjector(99)
		in.SetServeProfile(ServeProfile{
			SlowModelRate: 0.5, SlowModelDelay: time.Millisecond,
			CorruptReloadRate: 0.5,
		})
		var out []bool
		for i := 0; i < 64; i++ {
			_, slow := in.SlowModel()
			out = append(out, slow, in.CorruptReload())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical seeded runs", i)
		}
	}
	any := false
	for _, v := range a {
		any = any || v
	}
	if !any {
		t.Fatal("rate 0.5 never fired in 128 draws")
	}
}

func TestServeInjectorNilAndEmpty(t *testing.T) {
	var in *ServeInjector
	if _, ok := in.SlowModel(); ok || in.CorruptReload() || in.RejectQueue() || in.Enabled() {
		t.Fatal("nil injector injected a fault")
	}
	if _, ok := in.StallWorker(); ok {
		t.Fatal("nil injector stalled a worker")
	}
	in.SetServeProfile(ScaledServeProfile(1)) // must not panic
	live := NewServeInjector(1)
	if live.Enabled() {
		t.Fatal("fresh injector enabled")
	}
	if _, ok := live.SlowModel(); ok {
		t.Fatal("empty profile injected")
	}
}

// Flipping the profile mid-run changes behaviour immediately: off means
// no faults, on at rate 1 means every draw fires.
func TestServeInjectorProfileFlip(t *testing.T) {
	in := NewServeInjector(7)
	in.SetServeProfile(ServeProfile{SlowModelRate: 1, SlowModelDelay: time.Millisecond})
	if _, ok := in.SlowModel(); !ok {
		t.Fatal("rate-1 slow model did not fire")
	}
	in.SetServeProfile(ServeProfile{})
	if _, ok := in.SlowModel(); ok {
		t.Fatal("cleared profile still fired")
	}
	in.SetServeProfile(ServeProfile{QueueRejectRate: 1})
	if !in.RejectQueue() {
		t.Fatal("rate-1 queue reject did not fire")
	}
	if got := in.ServeProfile().QueueRejectRate; got != 1 {
		t.Fatalf("profile readback = %v", got)
	}
}
