package feature

import (
	"fmt"
	"math"
)

// BinaryKey is the fixed-size, comparable binary form of a vector: the
// raw IEEE-754 bits of every component. It is the serve hot path's cache
// key — a plain Go value usable directly as a map key, built and hashed
// without a single allocation, where the string Key costs ~19 allocs per
// render/parse round trip. Key()/ParseKey() remain the wire and debug
// format; Binary/FromBinary convert at that boundary.
//
// Equality tracks Key equality exactly: two vectors have equal BinaryKeys
// iff their components are bitwise equal, which is also when their
// shortest-exact-float string keys are equal.
type BinaryKey [NumFeatures]uint64

// FNV-1a constants, shared by the key hashes below. ShardHash's values
// are pinned by tests and by the cluster ring's placement contract, so
// these must stay the standard 64-bit FNV parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Binary packs the vector into its binary key. Zero allocations.
func (v Vector) Binary() BinaryKey {
	var k BinaryKey
	for i, x := range v {
		k[i] = math.Float64bits(x)
	}
	return k
}

// FromBinary inverts Binary. Binary keys come in from cache snapshots
// and peers, so like ParseKey it validates that every component is a
// finite normalized value.
func FromBinary(k BinaryKey) (Vector, error) {
	var v Vector
	for i, bits := range k {
		x := math.Float64frombits(bits)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Vector{}, fmt.Errorf("feature: binary key component %d is not finite", i)
		}
		if x < 0 || x > 1 {
			return Vector{}, fmt.Errorf("feature: binary key component %d = %g outside [0,1]", i, x)
		}
		v[i] = x
	}
	return v, nil
}

// Hash reduces the key to a 64-bit FNV-1a over its little-endian bytes,
// without allocating. It is NOT ShardHash: ShardHash is the externally
// pinned placement contract (a hash of the canonical key string), while
// Hash is free to hash the raw bits directly and exists for in-process
// uses — cache shard selection, map seeding — where only distribution
// matters.
func (k BinaryKey) Hash() uint64 {
	h := uint64(fnvOffset64)
	for _, bits := range k {
		for s := 0; s < 64; s += 8 {
			h = (h ^ uint64(byte(bits>>s))) * fnvPrime64
		}
	}
	return h
}

// String renders the key in the canonical wire format when it decodes to
// a valid vector, and a raw hex dump otherwise (debug output only).
func (k BinaryKey) String() string {
	v, err := FromBinary(k)
	if err != nil {
		return fmt.Sprintf("binarykey(%x)", [NumFeatures]uint64(k))
	}
	return v.Key()
}
