package feature

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"testing"

	"heteromap/internal/algo"
)

// gridVector returns a random vector on the 0.1 discretization grid.
func gridVector(rng *rand.Rand) Vector {
	var v Vector
	for j := range v {
		v[j] = float64(rng.Intn(11)) / 10
	}
	return v.Discretized(DiscretizationStep)
}

// Binary ∘ FromBinary is a bijection on the discretized grid: every grid
// vector round-trips exactly, and distinct vectors get distinct keys —
// the property that lets the binary key replace the string key as the
// prediction cache's identity.
func TestBinaryKeyBijectionOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seen := map[BinaryKey]Vector{}
	for i := 0; i < 1000; i++ {
		v := gridVector(rng)
		k := v.Binary()
		got, err := FromBinary(k)
		if err != nil {
			t.Fatalf("FromBinary(Binary(%v)): %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %v != %v", got, v)
		}
		if prev, ok := seen[k]; ok && prev != v {
			t.Fatalf("binary key collides: %v and %v", prev, v)
		}
		seen[k] = v
	}
	// The catalog crossed with I spreads round-trips too.
	for _, b := range algo.All() {
		v := Combine(MustCatalog(b.Name), IVector{0.1, 0.4, 0.7, 1})
		got, err := FromBinary(v.Binary())
		if err != nil || got != v {
			t.Fatalf("%s: round trip %v != %v (%v)", b.Name, got, v, err)
		}
	}
}

// Binary-key equality must track string-key equality exactly: the two
// formats are different encodings of the same identity, so a cache keyed
// on one answers precisely the requests the other would.
func TestBinaryKeyEqualityMatchesStringKey(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		a, b := gridVector(rng), gridVector(rng)
		if (a.Binary() == b.Binary()) != (a.Key() == b.Key()) {
			t.Fatalf("binary/string key equality diverge for %v vs %v", a, b)
		}
	}
}

func TestFromBinaryRejectsInvalid(t *testing.T) {
	valid := gridVector(rand.New(rand.NewSource(17))).Binary()
	for name, bits := range map[string]uint64{
		"NaN":      math.Float64bits(math.NaN()),
		"+Inf":     math.Float64bits(math.Inf(1)),
		"-Inf":     math.Float64bits(math.Inf(-1)),
		"negative": math.Float64bits(-0.5),
		"above1":   math.Float64bits(1.5),
	} {
		k := valid
		k[3] = bits
		if _, err := FromBinary(k); err == nil {
			t.Fatalf("FromBinary accepted %s component", name)
		}
	}
}

// ShardHash must stay exactly fnv64a of the canonical key string — the
// placement contract the cluster ring, the online loop's job seeding and
// every persisted layout rely on — even though it no longer builds the
// string. Checked across the catalog and random grid points.
func TestShardHashEqualsStringKeyHash(t *testing.T) {
	check := func(v Vector) {
		t.Helper()
		h := fnv.New64a()
		io.WriteString(h, v.Key())
		if got, want := v.ShardHash(), h.Sum64(); got != want {
			t.Fatalf("ShardHash(%v) = %x, want fnv64a(Key) = %x", v, got, want)
		}
	}
	check(Vector{})
	for _, b := range algo.All() {
		check(Combine(MustCatalog(b.Name), IVector{0.3, 0.6, 0.9, 0.1}))
	}
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 500; i++ {
		check(gridVector(rng))
	}
	// Off-grid values exercise long shortest-float renderings.
	for i := 0; i < 100; i++ {
		var v Vector
		for j := range v {
			v[j] = rng.Float64()
		}
		check(v)
	}
}

// The binary key is only worth having if building and hashing it costs
// nothing: these are hard gates, not benchmarks, so a regression fails
// `go test` even when nobody reruns hmbench.
func TestBinaryKeyZeroAlloc(t *testing.T) {
	v := Combine(MustCatalog(algo.NameBFS), IVector{0.1, 0.2, 0.3, 0.4})
	k := v.Binary()
	if n := testing.AllocsPerRun(1000, func() {
		k = v.Binary()
	}); n != 0 {
		t.Fatalf("Vector.Binary allocates %.1f times per call, want 0", n)
	}
	var sink uint64
	if n := testing.AllocsPerRun(1000, func() {
		sink += k.Hash()
	}); n != 0 {
		t.Fatalf("BinaryKey.Hash allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		sink += v.ShardHash()
	}); n != 0 {
		t.Fatalf("Vector.ShardHash allocates %.1f times per call, want 0", n)
	}
	_ = sink
}

// binaryKeyFromBytes decodes a fuzz payload into a BinaryKey (little-
// endian, 8 bytes per component).
func binaryKeyFromBytes(data []byte) (BinaryKey, bool) {
	var k BinaryKey
	if len(data) != NumFeatures*8 {
		return k, false
	}
	for i := range k {
		k[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return k, true
}

// FuzzBinaryKey: arbitrary 136-byte payloads decode into a BinaryKey
// that must either be rejected by FromBinary or yield a valid vector
// that round-trips through both the binary and the string key format,
// with ShardHash agreeing with the canonical string hash — never panic,
// never launder a non-finite or out-of-range component.
func FuzzBinaryKey(f *testing.F) {
	seed := func(v Vector) {
		k := v.Binary()
		buf := make([]byte, NumFeatures*8)
		for i, bits := range k {
			binary.LittleEndian.PutUint64(buf[i*8:], bits)
		}
		f.Add(buf)
	}
	seed(Vector{})
	seed(Combine(MustCatalog(algo.NameBFS), IVector{0.1, 0.2, 0.3, 0.4}))
	poison := Combine(MustCatalog(algo.NamePageRank), IVector{1, 1, 1, 1})
	pk := poison.Binary()
	pk[0] = math.Float64bits(math.NaN())
	buf := make([]byte, NumFeatures*8)
	for i, bits := range pk {
		binary.LittleEndian.PutUint64(buf[i*8:], bits)
	}
	f.Add(buf)
	f.Add([]byte("short"))
	f.Fuzz(func(t *testing.T, data []byte) {
		k, ok := binaryKeyFromBytes(data)
		if !ok {
			return
		}
		v, err := FromBinary(k)
		if err != nil {
			return
		}
		for i, x := range v {
			if x != x || x < 0 || x > 1 {
				t.Fatalf("FromBinary accepted component %d = %g", i, x)
			}
		}
		if v.Binary() != k {
			t.Fatalf("Binary(FromBinary(k)) != k for %v", v)
		}
		// The string wire format must agree on identity and placement.
		parsed, err := ParseKey(v.Key())
		if err != nil {
			t.Fatalf("canonical key %q failed to re-parse: %v", v.Key(), err)
		}
		if parsed.Binary() != k {
			t.Fatalf("string round trip changed the binary key for %v", v)
		}
		h := fnv.New64a()
		io.WriteString(h, v.Key())
		if v.ShardHash() != h.Sum64() {
			t.Fatalf("ShardHash diverged from fnv64a(Key) for %v", v)
		}
	})
}
