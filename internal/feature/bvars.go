package feature

import (
	"fmt"

	"heteromap/internal/algo"
	"heteromap/internal/profile"
	"heteromap/internal/stats"
)

// B variable indices within a BVector (paper Section III-C).
const (
	BVertexDivision = iota // B1: % program in vertex division
	BPareto                // B2: % program in pareto fronts
	BParetoDynamic         // B3: % program in dynamic paretos
	BPushPop               // B4: % program in push-pops
	BReduction             // B5: % program in reductions
	BFloatingPoint         // B6: % floating-point data/compute
	BDataAddressing        // B7: % accesses via loop indexes
	BIndirect              // B8: % accesses via indirect addressing
	BReadOnly              // B9: % read-only shared data
	BReadWrite             // B10: % read-write shared data
	BLocal                 // B11: % locally accessed data
	BContention            // B12: % data contended via atomics
	BBarriers              // B13: global barriers per iteration (x0.1)

	// NumB is the number of benchmark variables.
	NumB = 13
)

// BVector holds the thirteen discretized benchmark variables.
type BVector [NumB]float64

// String renders the vector compactly.
func (b BVector) String() string {
	s := ""
	for i, v := range b {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("B%d=%.1f", i+1, v)
	}
	return s
}

// PhaseSum returns B1+...+B5; the paper requires the phase shares of a
// valid benchmark to add to 1.
func (b BVector) PhaseSum() float64 {
	return b[BVertexDivision] + b[BPareto] + b[BParetoDynamic] + b[BPushPop] + b[BReduction]
}

// Catalog returns the paper's static B classification for the nine
// benchmarks (Fig 5, with the SSSP-BF row given exactly by the Fig 6
// worked example). These are the programmer-specified values the
// predictors consume during evaluation; DeriveB below is the automated
// path and tests hold the two consistent.
func Catalog(benchmark string) (BVector, error) {
	switch benchmark {
	case algo.NameSSSPBF:
		// Fig 6: pure vertex division, fixed-point, indexed accesses,
		// half RO (graph) / half RW (distance arrays), D_tmp local,
		// locks on D, two barriers per iteration.
		return BVector{1, 0, 0, 0, 0, 0, 0.8, 0, 0.5, 0.5, 0.2, 0.2, 0.2}, nil
	case algo.NameSSSPDelta:
		// Buckets pushed/popped (B4) with a GAP-style bucket-selection
		// reduction (B5); more contended and read-write heavy than BF.
		return BVector{0.2, 0, 0, 0.5, 0.3, 0, 0.6, 0.1, 0.4, 0.6, 0.2, 0.4, 0.3}, nil
	case algo.NameBFS:
		// "BFS uses only Pareto-division B3".
		return BVector{0, 0, 1, 0, 0, 0, 0.8, 0, 0.5, 0.5, 0.1, 0.1, 0.1}, nil
	case algo.NameDFS:
		// "DFS uses only Push-Pop B4" with complex indirect accesses B8.
		return BVector{0, 0, 0, 1, 0, 0, 0.3, 0.5, 0.4, 0.6, 0.2, 0.3, 0.1}, nil
	case algo.NamePageRank:
		// Vertex division + convergence reduction; FP heavy (B6).
		return BVector{0.8, 0, 0, 0, 0.2, 0.8, 0.9, 0, 0.5, 0.5, 0.3, 0.2, 0.3}, nil
	case algo.NamePageRankDP:
		// Push-based variant: same phases, more contention (atomic FP
		// scatter per edge).
		return BVector{0.7, 0, 0, 0, 0.3, 0.9, 0.9, 0, 0.4, 0.6, 0.2, 0.5, 0.3}, nil
	case algo.NameTriangle:
		// Intersections (vertex division) + global count reduction;
		// read-only dominated, fixed point.
		return BVector{0.6, 0, 0, 0, 0.4, 0, 0.8, 0, 0.7, 0.2, 0.3, 0.3, 0.1}, nil
	case algo.NameCommunity:
		// Weighted label propagation: FP scoring, read-write labels.
		return BVector{0.6, 0, 0, 0, 0.4, 0.6, 0.7, 0.1, 0.4, 0.6, 0.2, 0.4, 0.2}, nil
	case algo.NameConnComp:
		// Hook + compress: indirect parent chasing (B8), RW parents.
		return BVector{0.7, 0, 0, 0, 0.3, 0, 0.4, 0.5, 0.4, 0.6, 0.1, 0.3, 0.2}, nil
	}
	return BVector{}, fmt.Errorf("feature: no B catalog entry for benchmark %q", benchmark)
}

// MustCatalog is Catalog for the registered benchmark names.
func MustCatalog(benchmark string) BVector {
	b, err := Catalog(benchmark)
	if err != nil {
		panic(err)
	}
	return b
}

// DeriveB extracts B variables automatically from a measured work
// profile — the "based on compile-time information about loops and
// inputs ... approximate relative strengths" automation of Section III-C,
// realized here with runtime instrumentation instead of compile-time
// inspection.
func DeriveB(w *profile.Work) BVector {
	return DeriveBStep(w, DiscretizationStep)
}

// DeriveBStep is DeriveB with a configurable discretization step.
func DeriveBStep(w *profile.Work, step float64) BVector {
	var b BVector

	// B1-B5: share of program ops per phase kind.
	shares := w.PhaseShare()
	b[BVertexDivision] = shares[profile.VertexDivision]
	b[BPareto] = shares[profile.Pareto]
	b[BParetoDynamic] = shares[profile.ParetoDynamic]
	b[BPushPop] = shares[profile.PushPop]
	b[BReduction] = shares[profile.Reduction]

	var fp, ops, idx, ind int64
	var ro, rw, local float64
	var atomics int64
	for i := range w.Phases {
		p := &w.Phases[i]
		fp += p.FPOps
		ops += p.Ops()
		idx += p.IndexedAccesses
		ind += p.IndirectAccesses
		ro += float64(p.ReadOnlyBytes)
		rw += float64(p.ReadWriteBytes)
		local += float64(p.LocalBytes)
		atomics += p.Atomics
	}

	// B6: floating-point share of arithmetic.
	if ops > 0 {
		b[BFloatingPoint] = float64(fp) / float64(ops) * 2 // FP kernels alternate FP and bookkeeping ops
	}

	// B7/B8: addressing mode shares, scaled by the paper's convention
	// that some accesses (thread-local scratch) are counted in neither.
	if idx+ind > 0 {
		accessShare := 0.8 // ~20% of data is register/local resident
		b[BDataAddressing] = float64(idx) / float64(idx+ind) * accessShare
		b[BIndirect] = float64(ind) / float64(idx+ind) * accessShare
	}

	// B9-B11: data-movement class shares.
	if total := ro + rw + local; total > 0 {
		b[BReadOnly] = ro / total
		b[BReadWrite] = rw / total
		b[BLocal] = local / total
	}

	// B12: contention intensity (atomics per op, saturating).
	if ops > 0 {
		b[BContention] = stats.Clamp(float64(atomics)/float64(ops)*20, 0, 1)
	}

	// B13: barriers per iteration, each worth 0.1.
	iters := w.Iterations
	if iters < 1 {
		iters = 1
	}
	b[BBarriers] = stats.Clamp(float64(w.Barriers)/float64(iters)*0.1, 0, 1)

	for i := range b {
		b[i] = stats.Discretize(b[i], step)
	}
	// Re-normalize phase shares so they still sum to 1 after snapping.
	if s := b.PhaseSum(); s > 0 && s != 1 {
		for i := BVertexDivision; i <= BReduction; i++ {
			b[i] = stats.Discretize(b[i]/s, step)
		}
	}
	return b
}
