package feature

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"heteromap/internal/algo"
	"heteromap/internal/gen"
)

func TestIFromDeclaredReproducesPaperExamples(t *testing.T) {
	// Section III-B's worked examples: "I1,2 are set to 0.1 for USA-Cal,
	// but 0.8 for Friendster ... I3 is set as 0 [for USA-Cal] ... we set
	// I4 as 0.8 for USA-Cal", Twitter's 3M max degree is the I3=1
	// anchor, Rgg's 2622 diameter the I4=1 anchor.
	tests := []struct {
		short string
		want  IVector
	}{
		{"CA", IVector{0.1, 0.1, 0.0, 0.8}},
		{"Frnd", IVector{0.8, 0.8, 0.5, 0.2}},
		{"Twtr", IVector{0.7, 0.8, 1.0, 0.0}},
		{"Rgg", IVector{0.5, 0.6, 0.1, 1.0}},
		{"CO", IVector{0.0, 0.0, 0.4, 0.0}},
	}
	ds := gen.TableICached(gen.Small)
	for _, tc := range tests {
		d := gen.ByShort(ds, tc.short)
		got := IFromDataset(d)
		for i := range got {
			if math.Abs(got[i]-tc.want[i]) > 0.051 {
				t.Errorf("%s I%d = %.2f want %.1f", tc.short, i+1, got[i], tc.want[i])
			}
		}
	}
}

func TestIVectorDiscretized(t *testing.T) {
	iv := IFromCounts(3_000_000, 50_000_000, 1000, 100)
	for i, v := range iv {
		if math.Abs(v*10-math.Round(v*10)) > 1e-9 {
			t.Errorf("I%d=%v not on the 0.1 grid", i+1, v)
		}
	}
}

func TestIFromCountsMonotone(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := a%int64(1e9), b%int64(1e9)
		if x < 0 {
			x = -x
		}
		if y < 0 {
			y = -y
		}
		if x > y {
			x, y = y, x
		}
		ix := IFromCounts(x, 1, 1, 1)
		iy := IFromCounts(y, 1, 1, 1)
		return ix[0] <= iy[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInvertIRoundTrip(t *testing.T) {
	for _, iv := range []IVector{
		{0.1, 0.1, 0, 0.8},
		{0.5, 0.5, 0.5, 0.5},
		{0.8, 0.8, 0.5, 0.2},
		{1, 1, 1, 1},
		{0, 0, 0, 0},
	} {
		v, e, d, dia := InvertI(iv)
		back := IFromCounts(v, e, d, dia)
		for i := range back {
			if math.Abs(back[i]-iv[i]) > 0.1001 {
				t.Errorf("round trip I%d: %v -> (%d,%d,%d,%d) -> %v",
					i+1, iv, v, e, d, dia, back)
			}
		}
		if dia < 1 {
			t.Error("inverted diameter must be >= 1")
		}
	}
}

func TestAvgDegPaperFormula(t *testing.T) {
	// Avg.Deg = |I3 - (I2/I1)|, clamped to [0,1].
	iv := IVector{0.5, 0.25, 0.8, 0}
	if got := iv.AvgDeg(); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("AvgDeg=%v want 0.3", got)
	}
	// Small I1 is floored to one discretization step, not divided by 0.
	zero := IVector{0, 0.5, 0.2, 0}
	if got := zero.AvgDeg(); got != 1 {
		t.Fatalf("AvgDeg with I1=0: %v want clamped 1", got)
	}
}

func TestAvgDegDia(t *testing.T) {
	iv := IVector{0.5, 0.25, 0.8, 0.6}
	want := (0.6 + iv.AvgDeg()) / 2
	if got := iv.AvgDegDia(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("AvgDegDia=%v want %v", got, want)
	}
}

func TestCatalogCoversAllBenchmarks(t *testing.T) {
	for _, name := range algo.Names() {
		b, err := Catalog(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// "values for B1-5 variables for phases add to 1 for all
		// benchmarks".
		if math.Abs(b.PhaseSum()-1) > 1e-9 {
			t.Errorf("%s phase sum %v != 1", name, b.PhaseSum())
		}
		for i, v := range b {
			if v < 0 || v > 1 {
				t.Errorf("%s B%d=%v outside [0,1]", name, i+1, v)
			}
			if math.Abs(v*10-math.Round(v*10)) > 1e-9 {
				t.Errorf("%s B%d=%v not on the 0.1 grid", name, i+1, v)
			}
		}
	}
	if _, err := Catalog("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestCatalogSSSPBFMatchesFig6(t *testing.T) {
	// Fig 6's worked discretization, value by value.
	want := BVector{1, 0, 0, 0, 0, 0, 0.8, 0, 0.5, 0.5, 0.2, 0.2, 0.2}
	got := MustCatalog(algo.NameSSSPBF)
	if got != want {
		t.Fatalf("SSSP-BF catalog %v want Fig 6 values %v", got, want)
	}
}

func TestCatalogCheckmarksMatchFig5(t *testing.T) {
	// The ✓ pattern of Fig 5: which B variables are used per benchmark.
	used := func(name string, idx int) bool { return MustCatalog(name)[idx] > 0 }
	// "BFS uses only Pareto-division B3".
	if !used(algo.NameBFS, BParetoDynamic) || used(algo.NameBFS, BVertexDivision) ||
		used(algo.NameBFS, BPushPop) {
		t.Error("BFS phase checkmarks deviate from Fig 5")
	}
	// "DFS uses only Push-Pop B4" with indirect accesses B8.
	if !used(algo.NameDFS, BPushPop) || used(algo.NameDFS, BParetoDynamic) ||
		!used(algo.NameDFS, BIndirect) {
		t.Error("DFS checkmarks deviate from Fig 5")
	}
	// "DFS and Conn. Comp. have complex indirect data accesses".
	if !used(algo.NameConnComp, BIndirect) {
		t.Error("Conn.Comp must use B8")
	}
	// SSSP-Delta uses push-pop and reduction (GAP bucket selection).
	if !used(algo.NameSSSPDelta, BPushPop) || !used(algo.NameSSSPDelta, BReduction) {
		t.Error("SSSP-Delta checkmarks deviate from Fig 5")
	}
	// FP-heavy benchmarks carry B6.
	for _, name := range []string{algo.NamePageRank, algo.NamePageRankDP, algo.NameCommunity} {
		if !used(name, BFloatingPoint) {
			t.Errorf("%s must use B6", name)
		}
	}
	// "All workloads have data-driven accesses B7 and read-write shared
	// data B10" (DFS trades most of B7 for B8 but keeps some).
	for _, name := range algo.Names() {
		if !used(name, BDataAddressing) || !used(name, BReadWrite) {
			t.Errorf("%s must use B7 and B10", name)
		}
	}
}

func TestDeriveBConsistentWithCatalog(t *testing.T) {
	// The automated derivation must agree with the programmer catalog on
	// the dominant phase kind and the presence of FP/indirect/contention
	// signals.
	ds := gen.ByShort(gen.TableICached(gen.Small), "FB")
	for _, b := range algo.All() {
		_, w := b.Run(ds.Graph)
		derived := DeriveB(w)
		cat := MustCatalog(b.Name)
		if math.Abs(derived.PhaseSum()-1) > 0.15 {
			t.Errorf("%s derived phase sum %v", b.Name, derived.PhaseSum())
		}
		// Dominant phase kind must match.
		argmax := func(v BVector) int {
			best := 0
			for i := 1; i < BReduction+1; i++ {
				if v[i] > v[best] {
					best = i
				}
			}
			return best
		}
		if argmax(derived) != argmax(cat) {
			t.Errorf("%s dominant phase: derived B%d, catalog B%d",
				b.Name, argmax(derived)+1, argmax(cat)+1)
		}
		// FP presence must agree.
		if (derived[BFloatingPoint] > 0.2) != (cat[BFloatingPoint] > 0.2) {
			t.Errorf("%s FP signal: derived %v catalog %v",
				b.Name, derived[BFloatingPoint], cat[BFloatingPoint])
		}
	}
}

func TestDeriveBSSSPBFCloseToFig6(t *testing.T) {
	ds := gen.ByShort(gen.TableICached(gen.Small), "FB")
	b, _ := algo.ByName(algo.NameSSSPBF)
	_, w := b.Run(ds.Graph)
	derived := DeriveB(w)
	want := MustCatalog(algo.NameSSSPBF)
	// B1 (pure vertex division) must be exact; data-movement classes
	// within a loose tolerance.
	if derived[BVertexDivision] != 1 {
		t.Fatalf("derived B1=%v want 1", derived[BVertexDivision])
	}
	for _, idx := range []int{BReadOnly, BReadWrite} {
		if math.Abs(derived[idx]-want[idx]) > 0.4 {
			t.Errorf("derived B%d=%v far from Fig 6 %v", idx+1, derived[idx], want[idx])
		}
	}
}

func TestVectorCombineRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		var b BVector
		var iv IVector
		x := seed
		for i := range b {
			x = x*6364136223846793005 + 1442695040888963407
			b[i] = float64((x>>33)%11) / 10
		}
		for i := range iv {
			x = x*6364136223846793005 + 1442695040888963407
			iv[i] = float64((x>>33)%11) / 10
		}
		v := Combine(b, iv)
		return v.B() == b && v.I() == iv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStrings(t *testing.T) {
	v := Combine(MustCatalog(algo.NameSSSPBF), IVector{0.1, 0.1, 0, 0.8})
	if !strings.Contains(v.String(), "B1=1.0") || !strings.Contains(v.String(), "I4=0.8") {
		t.Fatalf("vector string %q", v.String())
	}
}

func TestIFromGraphMeasuresStructure(t *testing.T) {
	// A generated analog characterized by direct measurement must land
	// in the same region as its measured counts imply.
	d := gen.ByShort(gen.TableICached(gen.Small), "FB")
	g := d.Graph
	iv := IFromGraph(g)
	want := IFromCounts(int64(g.NumVertices()), g.NumEdges(),
		int64(g.MaxDegree()), 6 /* approximate small-world diameter */)
	// I1-I3 are exact measurements; I4 within one bin of the BFS
	// double-sweep estimate.
	for i := 0; i < 3; i++ {
		if iv[i] != want[i] {
			t.Fatalf("I%d=%v want %v", i+1, iv[i], want[i])
		}
	}
	if math.Abs(iv[3]-want[3]) > 0.15 {
		t.Fatalf("I4=%v want ~%v", iv[3], want[3])
	}
}

func TestDatasetFromGraph(t *testing.T) {
	d := gen.ByShort(gen.TableICached(gen.Small), "CAGE")
	wrapped := DatasetFromGraph(d.Graph)
	if wrapped.Graph != d.Graph {
		t.Fatal("graph identity lost")
	}
	if wrapped.Declared.V != int64(d.Graph.NumVertices()) ||
		wrapped.Declared.E != d.Graph.NumEdges() {
		t.Fatalf("declared counts %+v", wrapped.Declared)
	}
	if wrapped.Declared.Diameter < 1 {
		t.Fatal("declared diameter must be measured")
	}
	if !wrapped.Declared.Weighted {
		t.Fatal("weighted flag lost")
	}
	// Scales are 1 for measured datasets: the graph IS the workload.
	if wrapped.VertexScale() != 1 || wrapped.EdgeScale() != 1 {
		t.Fatalf("scales %v/%v want 1/1", wrapped.VertexScale(), wrapped.EdgeScale())
	}
}

func TestDiscretizationStepOverride(t *testing.T) {
	// Finer increments ("may be applied" per the paper) change the snap.
	v := IFromCountsStep(3_000_000, 50_000_000, 1000, 100, 0.05)
	coarse := IFromCounts(3_000_000, 50_000_000, 1000, 100)
	for i := range v {
		if math.Abs(v[i]-coarse[i]) > 0.05+1e-9 {
			t.Errorf("fine vs coarse I%d: %v vs %v", i+1, v[i], coarse[i])
		}
	}
}
