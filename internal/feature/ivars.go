// Package feature implements the paper's program characterization: the
// four input variables I1-I4 (Section III-B), the thirteen benchmark
// variables B1-B13 (Section III-C), their 0.1-step discretization, and
// the 17-dimensional feature vector the predictors consume.
package feature

import (
	"fmt"
	"math"

	"heteromap/internal/gen"
	"heteromap/internal/graph"
	"heteromap/internal/stats"
)

// IVector holds the discretized input variables:
//
//	I[0] = I1 graph size (vertex count)
//	I[1] = I2 edge density (edge count)
//	I[2] = I3 maximum degree
//	I[3] = I4 diameter
type IVector [4]float64

// Log-normalization anchors. The paper normalizes each characteristic
// against "the maximum values available in literature" with a logarithmic
// smoothing; these anchors reproduce the worked examples of Section III-B:
// USA-Cal gets I1=I2=0.1, I3=0, I4=0.8; Friendster gets I1=0.8; Twitter
// gets I3=1; rgg-n-24 (the largest catalogued diameter, 2622) gets I4=1.
const (
	vertexLo, vertexHi     = 1e6, 2e8
	edgeLo, edgeHi         = 2e6, 1e10
	degreeLo, degreeHi     = 10, 3e6
	diameterLo, diameterHi = 9.4, 2622
)

// DiscretizationStep is the paper's default increment for B and I values.
const DiscretizationStep = 0.1

// IFromCounts characterizes a graph from its raw structural counts.
func IFromCounts(vertices, edges, maxDegree, diameter int64) IVector {
	return IFromCountsStep(vertices, edges, maxDegree, diameter, DiscretizationStep)
}

// IFromCountsStep is IFromCounts with a configurable discretization step
// (the paper notes "finer increments may be applied"; the ablation bench
// sweeps this).
func IFromCountsStep(vertices, edges, maxDegree, diameter int64, step float64) IVector {
	return IVector{
		stats.Discretize(stats.LogNormalize(float64(vertices), vertexLo, vertexHi), step),
		stats.Discretize(stats.LogNormalize(float64(edges), edgeLo, edgeHi), step),
		stats.Discretize(stats.LogNormalize(float64(maxDegree), degreeLo, degreeHi), step),
		stats.Discretize(stats.LogNormalize(float64(diameter), diameterLo, diameterHi), step),
	}
}

// IFromDeclared characterizes a Table I dataset from its declared
// paper-scale metadata — the numbers the paper's predictor saw.
func IFromDeclared(d gen.Declared) IVector {
	return IFromCounts(d.V, d.E, d.MaxDeg, d.Diameter)
}

// IFromDataset characterizes a catalog dataset (declared metadata).
func IFromDataset(d *gen.Dataset) IVector { return IFromDeclared(d.Declared) }

// IFromGraph characterizes an arbitrary in-memory graph by measuring its
// structure directly: counts from the CSR arrays, the maximum degree by
// scan, and the diameter by the double-sweep approximation (the paper:
// I4 "is obtained alongside input graphs or using runtime
// approximations"). This is the path for user-supplied graphs that carry
// no declared metadata.
func IFromGraph(g *graph.Graph) IVector {
	return IFromCounts(
		int64(g.NumVertices()),
		g.NumEdges(),
		int64(g.MaxDegree()),
		int64(graph.EstimateDiameter(g, 1, 4)),
	)
}

// DatasetFromGraph wraps a user graph as a Dataset whose declared
// metadata is its measured structure, making it schedulable through the
// same runtime path as the Table I catalog.
func DatasetFromGraph(g *graph.Graph) *gen.Dataset {
	return &gen.Dataset{
		Name:  g.Name,
		Short: g.Name,
		Declared: gen.Declared{
			V:        int64(g.NumVertices()),
			E:        g.NumEdges(),
			MaxDeg:   int64(g.MaxDegree()),
			Diameter: int64(graph.EstimateDiameter(g, 1, 4)),
			Weighted: g.Weighted(),
		},
		Graph: g,
	}
}

// InvertI maps a discretized I vector back to representative structural
// counts (the geometric midpoint of each bin). The synthetic training
// generator uses it to materialize workload magnitudes for sampled
// characterizations.
func InvertI(iv IVector) (vertices, edges, maxDegree, diameter int64) {
	inv := func(x, lo, hi float64) int64 {
		if x <= 0 {
			return int64(lo)
		}
		if x >= 1 {
			return int64(hi)
		}
		return int64(lo * math.Pow(hi/lo, x))
	}
	vertices = inv(iv[0], vertexLo, vertexHi)
	edges = inv(iv[1], edgeLo, edgeHi)
	maxDegree = inv(iv[2], degreeLo, degreeHi)
	diameter = inv(iv[3], diameterLo, diameterHi)
	if diameter < 1 {
		diameter = 1
	}
	return vertices, edges, maxDegree, diameter
}

// AvgDeg implements the paper's average-degree proxy used by the intra-
// accelerator equations: Avg.Deg = |I3 - (I2/I1)|, clamped to [0,1].
func (iv IVector) AvgDeg() float64 {
	i1 := iv[0]
	if i1 <= 0 {
		i1 = DiscretizationStep // avoid division blowup on tiny graphs
	}
	v := iv[2] - iv[1]/i1
	if v < 0 {
		v = -v
	}
	return stats.Clamp(v, 0, 1)
}

// AvgDegDia implements the paper's Avg.Deg.Dia = |(I4 + Avg.Deg)/2| used
// for thread placement (M5-M7).
func (iv IVector) AvgDegDia() float64 {
	return stats.Clamp((iv[3]+iv.AvgDeg())/2, 0, 1)
}

// String renders the vector in the paper's Fig 4 style.
func (iv IVector) String() string {
	return fmt.Sprintf("I1=%.1f I2=%.1f I3=%.1f I4=%.1f", iv[0], iv[1], iv[2], iv[3])
}
