package feature

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"heteromap/internal/stats"
)

// Key renders the vector as a stable, comparable cache key. The paper's
// 0.1-step discretization makes the characterization space finite, so
// equal (B, I) characterizations — and only those — produce equal keys,
// which is what lets a prediction cache front the predictor stack.
// Components are formatted with the shortest exact float representation,
// so ParseKey round-trips bit-for-bit.
func (v Vector) Key() string {
	var sb strings.Builder
	sb.Grow(NumFeatures * 4)
	for i, x := range v {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	return sb.String()
}

// ParseKey inverts Key, recovering the exact vector. Keys come in over
// the wire (cache dumps, golden sets), so beyond shape it validates that
// every component is a finite normalized value: strconv accepts "NaN",
// "Inf" and huge magnitudes, none of which a Key ever produces.
func ParseKey(key string) (Vector, error) {
	parts := strings.Split(key, ",")
	if len(parts) != NumFeatures {
		return Vector{}, fmt.Errorf("feature: key has %d components, want %d", len(parts), NumFeatures)
	}
	var v Vector
	for i, p := range parts {
		x, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return Vector{}, fmt.Errorf("feature: key component %d: %w", i, err)
		}
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Vector{}, fmt.Errorf("feature: key component %d is not finite", i)
		}
		if x < 0 || x > 1 {
			return Vector{}, fmt.Errorf("feature: key component %d = %g outside [0,1]", i, x)
		}
		v[i] = x
	}
	return v, nil
}

// ShardHash reduces the canonical Key to a stable 64-bit FNV-1a hash —
// the cluster tier's shard key. Equal (B, I) characterizations (and only
// those) hash equally, so a consistent-hash ring over ShardHash keeps
// each node's prediction cache hot on its own slice of the discretized
// keyspace. The hash is a pure function of Key(), never of process
// state, so every router instance places a key identically.
//
// The value is exactly fnv64a(Key()) — ring placement, the online
// loop's deterministic job seeding and persisted layouts all depend on
// it — but computed by streaming each component's shortest-exact-float
// bytes through the hash from a stack buffer, so the per-request cost
// is zero allocations instead of materializing the key string.
func (v Vector) ShardHash() uint64 {
	h := uint64(fnvOffset64)
	var buf [32]byte
	for i, x := range v {
		if i > 0 {
			h = (h ^ uint64(',')) * fnvPrime64
		}
		b := strconv.AppendFloat(buf[:0], x, 'g', -1, 64)
		for _, c := range b {
			h = (h ^ uint64(c)) * fnvPrime64
		}
	}
	return h
}

// Discretized snaps every component to the given step after clamping to
// [0,1] — the shared normalization applied to raw (undiscretized)
// feature vectors before they reach a predictor or a cache key, so that
// near-identical characterizations collapse onto the same grid point.
func (v Vector) Discretized(step float64) Vector {
	var out Vector
	for i, x := range v {
		out[i] = stats.Discretize(stats.Clamp(x, 0, 1), step)
	}
	return out
}
