package feature

import (
	"hash/fnv"
	"io"
	"math/rand"
	"strings"
	"testing"

	"heteromap/internal/algo"
)

// Every catalog benchmark crossed with a spread of I vectors must
// round-trip Key -> ParseKey exactly.
func TestKeyRoundTripCatalog(t *testing.T) {
	ivs := []IVector{
		{0, 0, 0, 0},
		{0.1, 0.1, 0, 0.8},
		{0.8, 0.7, 1, 0.2},
		{1, 1, 1, 1},
	}
	for _, b := range algo.All() {
		bv := MustCatalog(b.Name)
		for _, iv := range ivs {
			v := Combine(bv, iv)
			got, err := ParseKey(v.Key())
			if err != nil {
				t.Fatalf("%s: ParseKey(%q): %v", b.Name, v.Key(), err)
			}
			if got != v {
				t.Fatalf("%s: round trip %v != %v", b.Name, got, v)
			}
		}
	}
}

// Random discretized vectors round-trip too, and distinct vectors get
// distinct keys (the property the prediction cache relies on).
func TestKeyRoundTripRandomAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[string]Vector{}
	for i := 0; i < 500; i++ {
		var v Vector
		for j := range v {
			v[j] = float64(rng.Intn(11)) / 10
		}
		v = v.Discretized(DiscretizationStep)
		key := v.Key()
		got, err := ParseKey(key)
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", key, err)
		}
		if got != v {
			t.Fatalf("round trip %v != %v", got, v)
		}
		if prev, ok := seen[key]; ok && prev != v {
			t.Fatalf("key %q collides: %v and %v", key, prev, v)
		}
		seen[key] = v
	}
}

func TestKeyEqualityMatchesVectorEquality(t *testing.T) {
	a := Combine(MustCatalog(algo.NameBFS), IVector{0.1, 0.2, 0.3, 0.4})
	b := Combine(MustCatalog(algo.NameBFS), IVector{0.1, 0.2, 0.3, 0.4})
	c := Combine(MustCatalog(algo.NameBFS), IVector{0.1, 0.2, 0.3, 0.5})
	if a.Key() != b.Key() {
		t.Fatalf("equal vectors, different keys: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() == c.Key() {
		t.Fatalf("distinct vectors share key %q", a.Key())
	}
}

func TestParseKeyErrors(t *testing.T) {
	if _, err := ParseKey("0.1,0.2"); err == nil {
		t.Fatal("short key accepted")
	}
	long := strings.Repeat("0.1,", NumFeatures) + "0.1"
	if _, err := ParseKey(long); err == nil {
		t.Fatal("long key accepted")
	}
	bad := strings.Repeat("0.1,", NumFeatures-1) + "zap"
	if _, err := ParseKey(bad); err == nil {
		t.Fatal("non-numeric component accepted")
	}
	// strconv parses these happily; ParseKey must not.
	for _, comp := range []string{"NaN", "Inf", "-Inf", "1e308", "-0.5", "1.5"} {
		key := strings.Repeat("0.1,", NumFeatures-1) + comp
		if _, err := ParseKey(key); err == nil {
			t.Fatalf("component %q accepted", comp)
		}
	}
}

// FuzzParseKey: arbitrary inputs must either parse into a valid vector
// that round-trips through Key, or error — never panic, never yield a
// non-finite or out-of-range component.
func FuzzParseKey(f *testing.F) {
	f.Add(Vector{}.Key())
	f.Add(Combine(MustCatalog(algo.NameBFS), IVector{0.1, 0.2, 0.3, 0.4}).Key())
	f.Add(strings.Repeat("1,", NumFeatures-1) + "1")
	f.Add("0.1,0.2")
	f.Add(strings.Repeat("NaN,", NumFeatures-1) + "NaN")
	f.Add(strings.Repeat("0.1,", NumFeatures-1) + "+Inf")
	f.Add(strings.Repeat("0.1,", NumFeatures-1) + "1e309")
	f.Add(strings.Repeat(",", NumFeatures-1))
	f.Add("")
	f.Fuzz(func(t *testing.T, key string) {
		v, err := ParseKey(key)
		if err != nil {
			return
		}
		for i, x := range v {
			if x != x || x < 0 || x > 1 {
				t.Fatalf("ParseKey(%q) accepted component %d = %g", key, i, x)
			}
		}
		// A parsed vector must round-trip through its canonical key.
		again, err := ParseKey(v.Key())
		if err != nil {
			t.Fatalf("canonical key %q failed to re-parse: %v", v.Key(), err)
		}
		if again != v {
			t.Fatalf("round trip %v != %v", again, v)
		}
	})
}

func TestDiscretizedSnapsAndClamps(t *testing.T) {
	var v Vector
	v[0], v[1], v[2] = 0.14, -3, 17
	got := v.Discretized(DiscretizationStep)
	if got[0] != 0.1 {
		t.Fatalf("0.14 snapped to %g, want 0.1", got[0])
	}
	if got[1] != 0 || got[2] != 1 {
		t.Fatalf("clamp failed: %g %g", got[1], got[2])
	}
}

func TestShardHashTracksKeyEquality(t *testing.T) {
	var a, b Vector
	a[0], a[5] = 0.3, 0.7
	b = a
	if a.ShardHash() != b.ShardHash() {
		t.Fatalf("equal vectors hash differently: %x vs %x", a.ShardHash(), b.ShardHash())
	}
	b[5] = 0.8
	if a.ShardHash() == b.ShardHash() {
		t.Fatalf("distinct grid points collided: %x", a.ShardHash())
	}
	// The hash is a pure function of the canonical key string, which is
	// the contract that lets every router place a key identically.
	h := fnv.New64a()
	io.WriteString(h, a.Key())
	if a.ShardHash() != h.Sum64() {
		t.Fatalf("ShardHash %x != fnv64a(Key) %x", a.ShardHash(), h.Sum64())
	}
}
