package feature

// Property tests for the discretization/key layer, complementing the
// example-based tests in feature_test.go and key_test.go: exhaustive
// sweeps of the 0.1-step grid, and the composition laws the serve cache
// and the conformance oracle depend on.

import (
	"math"
	"math/rand"
	"testing"

	"heteromap/internal/stats"
)

// Every component of a discretized vector must be a fixed point of
// another Discretized pass — checked exhaustively over the whole grid
// plus the float noise that accumulates around each bin.
func TestDiscretizedIdempotentOnWholeGrid(t *testing.T) {
	for k := 0; k <= 10; k++ {
		base := float64(k) / 10
		for _, eps := range []float64{0, 1e-15, -1e-15, 1e-9, -1e-9} {
			var v Vector
			for i := range v {
				v[i] = base + eps
			}
			once := v.Discretized(DiscretizationStep)
			if twice := once.Discretized(DiscretizationStep); twice != once {
				t.Fatalf("grid %v+%g: not idempotent (%v -> %v)", base, eps, once, twice)
			}
			for i, x := range once {
				if x < 0 || x > 1 {
					t.Fatalf("grid %v+%g: component %d = %g escapes [0,1]", base, eps, i, x)
				}
			}
		}
	}
}

// Every discretized component sits on a 0.1 multiple (up to float64
// representation): 10*x must be integral.
func TestDiscretizedComponentsOnTenthGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		var v Vector
		for i := range v {
			v[i] = rng.NormFloat64() // unbounded raw inputs
		}
		for i, x := range v.Discretized(DiscretizationStep) {
			scaled := x * 10
			if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
				t.Fatalf("trial %d: component %d = %.17g is not a 0.1 multiple", trial, i, x)
			}
		}
	}
}

// Key and ParseKey must satisfy the composition laws the serve cache
// relies on: ParseKey(d.Key()) == d for any discretized d, and the key
// string itself is idempotent under a parse/re-key cycle.
func TestKeyParseComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 500; trial++ {
		var v Vector
		for i := range v {
			v[i] = rng.Float64()*2 - 0.5 // straddles the clamp boundaries
		}
		d := v.Discretized(DiscretizationStep)
		back, err := ParseKey(d.Key())
		if err != nil {
			t.Fatalf("trial %d: ParseKey(%q): %v", trial, d.Key(), err)
		}
		if back != d {
			t.Fatalf("trial %d: parse(key) changed vector: %v vs %v", trial, back, d)
		}
		if back.Key() != d.Key() {
			t.Fatalf("trial %d: key not idempotent: %q vs %q", trial, back.Key(), d.Key())
		}
	}
}

// The public DiscretizationStep and stats.Discretize must agree with
// Vector.Discretized component-wise — the oracle grids are built from
// the former, the vectors from the latter.
func TestDiscretizedMatchesStatsDiscretize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		var v Vector
		for i := range v {
			v[i] = rng.Float64() * 1.4
		}
		d := v.Discretized(DiscretizationStep)
		for i := range v {
			want := stats.Discretize(math.Max(0, math.Min(1, v[i])), DiscretizationStep)
			if math.Abs(d[i]-want) > 1e-12 {
				t.Fatalf("trial %d component %d: Discretized %g vs clamp+Discretize %g (raw %g)",
					trial, i, d[i], want, v[i])
			}
		}
	}
}

// Sanity for the fuzz corpus: every committed seed must keep exercising
// the invariants FuzzParseKey enforces (valid seeds parse, invalid ones
// are rejected — never a crash).
func TestFuzzSeedCorpusStillInteresting(t *testing.T) {
	cases := []struct {
		key  string
		want bool // should parse
	}{
		{Vector{}.Key(), true},
		{"-0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1,0,0.1,0.2,0.3,0.4,0.5,0.6", false},
		{"1e-1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1,0,0.1,0.2,0.3,0.4,0.5,0.6", true},
		{" 0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1,0,0.1,0.2,0.3,0.4,0.5,0.6", false},
	}
	for _, c := range cases {
		v, err := ParseKey(c.key)
		if got := err == nil; got != c.want {
			t.Errorf("ParseKey(%q): parsed=%v want %v (err %v)", c.key, got, c.want, err)
		}
		if err == nil {
			if _, err := ParseKey(v.Key()); err != nil {
				t.Errorf("canonical re-parse of %q failed: %v", c.key, err)
			}
		}
	}
}
