package feature

import "fmt"

// NumFeatures is the predictor input dimensionality: 13 B variables plus
// 4 I variables — the paper's "benchmark-input characteristics are
// characterized as 17 input neurons".
const NumFeatures = NumB + 4

// Vector is the combined predictor input: B1-B13 followed by I1-I4.
type Vector [NumFeatures]float64

// Combine packs a B and an I characterization into one feature vector.
func Combine(b BVector, iv IVector) Vector {
	var v Vector
	copy(v[:NumB], b[:])
	copy(v[NumB:], iv[:])
	return v
}

// B returns the benchmark part of the vector.
func (v Vector) B() BVector {
	var b BVector
	copy(b[:], v[:NumB])
	return b
}

// I returns the input part of the vector.
func (v Vector) I() IVector {
	var iv IVector
	copy(iv[:], v[NumB:])
	return iv
}

// String renders both halves.
func (v Vector) String() string {
	return fmt.Sprintf("%s | %s", v.B(), v.I())
}
