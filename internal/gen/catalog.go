package gen

import (
	"fmt"
	"sync"

	"heteromap/internal/graph"
)

// Declared carries the paper-scale structural metadata of a Table I
// dataset. The generated analog is much smaller; characterization (the I
// variables) and workload-magnitude scaling use these declared values so
// the predictor sees the same inputs the paper's predictor saw.
type Declared struct {
	V        int64 // vertex count
	E        int64 // edge count
	MaxDeg   int64 // maximum degree
	Diameter int64 // graph diameter
	Weighted bool  // whether the workload treats the graph as weighted
}

// AvgDeg returns the declared average degree.
func (d Declared) AvgDeg() float64 {
	if d.V == 0 {
		return 0
	}
	return float64(d.E) / float64(d.V)
}

// FootprintBytes estimates the paper-scale in-memory size of the dataset
// in CSR form (8 B per vertex offset, 4 B per edge id, 4 B per weight).
// The streaming layer divides it by accelerator memory to derive chunking.
func (d Declared) FootprintBytes() int64 {
	b := d.V*8 + d.E*4
	if d.Weighted {
		b += d.E * 4
	}
	return b
}

// Dataset couples a generated structural analog with its declared
// paper-scale metadata.
type Dataset struct {
	// Name is the full Table I name, Short the paper's abbreviation.
	Name, Short string

	// Declared holds the paper-scale characteristics from Table I.
	Declared Declared

	// Graph is the generated scaled analog on which benchmarks actually
	// execute.
	Graph *graph.Graph
}

// VertexScale returns declared vertices per generated vertex.
func (d *Dataset) VertexScale() float64 {
	n := d.Graph.NumVertices()
	if n == 0 {
		return 1
	}
	return float64(d.Declared.V) / float64(n)
}

// EdgeScale returns declared edges per generated edge.
func (d *Dataset) EdgeScale() float64 {
	m := d.Graph.NumEdges()
	if m == 0 {
		return 1
	}
	return float64(d.Declared.E) / float64(m)
}

// String implements fmt.Stringer.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s (%s): declared V=%d E=%d maxdeg=%d dia=%d; generated %s",
		d.Name, d.Short, d.Declared.V, d.Declared.E, d.Declared.MaxDeg, d.Declared.Diameter, d.Graph)
}

// Size selects how large the generated analogs are. Small keeps unit tests
// fast; Medium is the default for experiments and benchmarks.
type Size int

const (
	// Small targets ~1-20k generated vertices per dataset.
	Small Size = iota
	// Medium targets ~10-130k generated vertices per dataset.
	Medium
)

func (s Size) divisor() int {
	if s == Small {
		return 10
	}
	return 1
}

// catalogSeed fixes generation so every run of the reproduction sees
// identical graphs.
const catalogSeed int64 = 0x48654d61 // "HeMa"

// The nine Table I datasets. Each constructor documents the structural
// analog choice.

// CA generates the USA-Cal road network analog: a 2-D grid (near-constant
// degree 2-4, huge diameter, strong locality), weighted like road segment
// lengths. Table I: V=1.9M, E=4.7M, MaxDeg=12, Dia=850.
func CA(size Size) *Dataset {
	div := size.divisor()
	rows, cols := 120/intSqrtDiv(div), 160/intSqrtDiv(div)
	return &Dataset{
		Name: "USA-Cal", Short: "CA",
		Declared: Declared{V: 1_900_000, E: 4_700_000, MaxDeg: 12, Diameter: 850, Weighted: true},
		Graph:    Grid("CA", rows, cols, 64, catalogSeed+1),
	}
}

// FB generates the Facebook analog: power-law social network with strong
// hubs. Table I: V=2.9M, E=41.9M, MaxDeg=90K, Dia=12.
func FB(size Size) *Dataset {
	div := size.divisor()
	n := 29_000 / div
	return &Dataset{
		Name: "Facebook", Short: "FB",
		Declared: Declared{V: 2_900_000, E: 41_900_000, MaxDeg: 90_000, Diameter: 12, Weighted: true},
		Graph:    PowerLaw("FB", n, 14.4, 2.2, 40, 64, catalogSeed+2),
	}
}

// LJ generates the LiveJournal analog. Table I: V=4.8M, E=85.7M,
// MaxDeg=20K, Dia=16.
func LJ(size Size) *Dataset {
	div := size.divisor()
	n := 48_000 / div
	return &Dataset{
		Name: "Livejournal", Short: "LJ",
		Declared: Declared{V: 4_800_000, E: 85_700_000, MaxDeg: 20_000, Diameter: 16, Weighted: true},
		Graph:    PowerLaw("LJ", n, 17.8, 2.3, 20, 64, catalogSeed+3),
	}
}

// Twtr generates the Twitter analog: extreme hubs (declared max degree 3M)
// and tiny diameter. Table I: V=41.7M, E=1.47B, MaxDeg=3M, Dia=5.
func Twtr(size Size) *Dataset {
	div := size.divisor()
	n := 41_000 / div
	return &Dataset{
		Name: "Twitter", Short: "Twtr",
		Declared: Declared{V: 41_700_000, E: 1_470_000_000, MaxDeg: 3_000_000, Diameter: 5, Weighted: true},
		Graph:    PowerLaw("Twtr", n, 35, 2.0, 120, 64, catalogSeed+4),
	}
}

// Frnd generates the Friendster analog. Table I: V=65.6M, E=1.81B,
// MaxDeg=5.2K, Dia=32.
func Frnd(size Size) *Dataset {
	div := size.divisor()
	n := 65_000 / div
	return &Dataset{
		Name: "Friendster", Short: "Frnd",
		Declared: Declared{V: 65_600_000, E: 1_810_000_000, MaxDeg: 5_200, Diameter: 32, Weighted: true},
		Graph:    PowerLaw("Frnd", n, 27.6, 2.5, 6, 64, catalogSeed+5),
	}
}

// CO generates the mouse retina connectome analog: 562 vertices at
// near-clique density. Generated at full declared scale (it is tiny).
// Table I: V=562, E=0.57M, MaxDeg=1027, Dia=1.
func CO(size Size) *Dataset {
	_ = size // CO is always generated at full scale
	return &Dataset{
		Name: "M. Ret. 3", Short: "CO",
		Declared: Declared{V: 562, E: 570_000, MaxDeg: 1027, Diameter: 1, Weighted: true},
		Graph:    DenseBlob("CO", 562, 0.9, 64, catalogSeed+6),
	}
}

// CAGE generates the Cage14 analog: a banded mesh with uniform moderate
// degree and strong locality (DNA electrophoresis matrix). Table I:
// V=1.5M, E=25.6M, MaxDeg=80, Dia=8.
func CAGE(size Size) *Dataset {
	div := size.divisor()
	n := 15_000 / div
	return &Dataset{
		Name: "Cage14", Short: "CAGE",
		Declared: Declared{V: 1_500_000, E: 25_600_000, MaxDeg: 80, Diameter: 8, Weighted: true},
		Graph:    BandedMesh("CAGE", n, 9, 40, 64, catalogSeed+7),
	}
}

// Rgg generates the rgg-n-24 analog: random geometric graph, the largest
// declared diameter of the catalog (2622). Table I: V=16.8M, E=387M,
// MaxDeg=40, Dia=2622.
func Rgg(size Size) *Dataset {
	div := size.divisor()
	n := 16_800 / div
	// radius chosen so average degree ~ n*pi*r^2 ~ 23.
	radius := 0.021
	if size == Small {
		radius = 0.066
	}
	return &Dataset{
		Name: "rgg-n-24", Short: "Rgg",
		Declared: Declared{V: 16_800_000, E: 387_000_000, MaxDeg: 40, Diameter: 2622, Weighted: true},
		Graph:    RandomGeometric("Rgg", n, radius, 64, catalogSeed+8),
	}
}

// Kron generates the KronLarge analog: a stochastic Kronecker graph.
// Table I: V=134M, E=2.15B, MaxDeg(avg. deg listed)=16, Dia=12.
func Kron(size Size) *Dataset {
	scale := 17
	if size == Small {
		scale = 13
	}
	return &Dataset{
		Name: "KronLarge", Short: "Kron",
		Declared: Declared{V: 134_000_000, E: 2_150_000_000, MaxDeg: 430_000, Diameter: 12, Weighted: true},
		Graph:    KroneckerUndirected("Kron", scale, 8, Graph500Initiator, 64, catalogSeed+9),
	}
}

// TableI returns the nine evaluation datasets in the paper's order.
func TableI(size Size) []*Dataset {
	return []*Dataset{
		CA(size), FB(size), LJ(size), Twtr(size), Frnd(size),
		CO(size), CAGE(size), Rgg(size), Kron(size),
	}
}

var (
	tableOnce  [2]sync.Once
	tableCache [2][]*Dataset
)

// TableICached returns a process-wide shared catalog, generating each size
// at most once. Experiments and tests that only read graphs should prefer
// it over TableI to avoid regenerating identical graphs.
func TableICached(size Size) []*Dataset {
	i := 0
	if size == Medium {
		i = 1
	}
	tableOnce[i].Do(func() { tableCache[i] = TableI(size) })
	return tableCache[i]
}

// ByShort finds a dataset by its paper abbreviation (case sensitive, e.g.
// "CA"). It returns nil when absent.
func ByShort(datasets []*Dataset, short string) *Dataset {
	for _, d := range datasets {
		if d.Short == short {
			return d
		}
	}
	return nil
}

// intSqrtDiv maps a divisor on vertex counts to a divisor on grid side
// lengths so grid datasets scale area-proportionally.
func intSqrtDiv(div int) int {
	switch {
	case div >= 100:
		return 10
	case div >= 9:
		return 3
	case div >= 4:
		return 2
	default:
		return 1
	}
}
