package gen

import (
	"testing"

	"heteromap/internal/graph"
)

func TestTableIHasNineDatasets(t *testing.T) {
	ds := TableI(Small)
	if len(ds) != 9 {
		t.Fatalf("got %d datasets, want 9", len(ds))
	}
	shorts := []string{"CA", "FB", "LJ", "Twtr", "Frnd", "CO", "CAGE", "Rgg", "Kron"}
	for i, want := range shorts {
		if ds[i].Short != want {
			t.Fatalf("dataset %d short %q want %q (paper order)", i, ds[i].Short, want)
		}
	}
}

func TestDeclaredMatchesPaperTableI(t *testing.T) {
	tests := []struct {
		short    string
		v, e     int64
		diameter int64
	}{
		{"CA", 1_900_000, 4_700_000, 850},
		{"FB", 2_900_000, 41_900_000, 12},
		{"LJ", 4_800_000, 85_700_000, 16},
		{"Twtr", 41_700_000, 1_470_000_000, 5},
		{"Frnd", 65_600_000, 1_810_000_000, 32},
		{"CO", 562, 570_000, 1},
		{"CAGE", 1_500_000, 25_600_000, 8},
		{"Rgg", 16_800_000, 387_000_000, 2622},
		{"Kron", 134_000_000, 2_150_000_000, 12},
	}
	ds := TableI(Small)
	for _, tc := range tests {
		d := ByShort(ds, tc.short)
		if d == nil {
			t.Fatalf("missing dataset %s", tc.short)
		}
		if d.Declared.V != tc.v || d.Declared.E != tc.e || d.Declared.Diameter != tc.diameter {
			t.Fatalf("%s declared %+v, want V=%d E=%d dia=%d",
				tc.short, d.Declared, tc.v, tc.e, tc.diameter)
		}
	}
}

func TestGeneratedAnalogsValidate(t *testing.T) {
	for _, d := range TableI(Small) {
		if err := d.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", d.Short, err)
		}
		if d.Graph.NumVertices() == 0 || d.Graph.NumEdges() == 0 {
			t.Errorf("%s: degenerate analog %s", d.Short, d.Graph)
		}
		if !d.Graph.Weighted() {
			t.Errorf("%s: analogs must carry weights for SSSP", d.Short)
		}
	}
}

func TestAnalogStructuralSignatures(t *testing.T) {
	ds := TableI(Small)
	locality := func(short string) float64 {
		return graph.LocalityScore(ByShort(ds, short).Graph)
	}
	skew := func(short string) float64 {
		return graph.ComputeDegreeStats(ByShort(ds, short).Graph).Skew
	}
	// Road network: regular and local; social networks: skewed.
	if locality("CA") < 0.8 {
		t.Errorf("CA locality %v want high", locality("CA"))
	}
	if skew("CA") > 0.5 {
		t.Errorf("CA skew %v want low", skew("CA"))
	}
	if skew("Twtr") < 1.5 {
		t.Errorf("Twtr skew %v want heavy-tailed", skew("Twtr"))
	}
	if skew("FB") < 1 {
		t.Errorf("FB skew %v want > 1", skew("FB"))
	}
	// Dense connectome is near-complete.
	co := ByShort(ds, "CO")
	if co.Graph.AvgDegree() < float64(co.Graph.NumVertices())/2 {
		t.Errorf("CO avg degree %.0f want near-clique", co.Graph.AvgDegree())
	}
	// Road analog has by far the largest generated diameter per vertex.
	caDia := graph.EstimateDiameter(ByShort(ds, "CA").Graph, 1, 2)
	fbDia := graph.EstimateDiameter(ByShort(ds, "FB").Graph, 1, 2)
	if caDia <= 3*fbDia {
		t.Errorf("CA diameter %d should dwarf FB diameter %d", caDia, fbDia)
	}
}

func TestScales(t *testing.T) {
	for _, d := range TableI(Small) {
		if d.VertexScale() < 1 {
			t.Errorf("%s vertex scale %v < 1", d.Short, d.VertexScale())
		}
		if d.EdgeScale() < 1 {
			t.Errorf("%s edge scale %v < 1", d.Short, d.EdgeScale())
		}
	}
	// CO is generated at full declared vertex count.
	co := CO(Small)
	if co.Graph.NumVertices() != 562 {
		t.Fatalf("CO generated V=%d want 562", co.Graph.NumVertices())
	}
}

func TestFootprint(t *testing.T) {
	d := Declared{V: 100, E: 1000, Weighted: false}
	if got := d.FootprintBytes(); got != 100*8+1000*4 {
		t.Fatalf("footprint %d", got)
	}
	d.Weighted = true
	if got := d.FootprintBytes(); got != 100*8+1000*8 {
		t.Fatalf("weighted footprint %d", got)
	}
	if d.AvgDeg() != 10 {
		t.Fatalf("avg deg %v", d.AvgDeg())
	}
	if (Declared{}).AvgDeg() != 0 {
		t.Fatal("zero-vertex avg deg")
	}
	// Twitter's declared footprint must exceed a 2 GB GPU memory — the
	// premise of the streaming experiments.
	tw := Twtr(Small)
	if tw.Declared.FootprintBytes() < 2<<30 {
		t.Fatal("Twtr footprint should exceed 2 GB")
	}
}

func TestMediumLargerThanSmall(t *testing.T) {
	small := CA(Small)
	medium := CA(Medium)
	if medium.Graph.NumVertices() <= small.Graph.NumVertices() {
		t.Fatalf("medium CA (%d) not larger than small (%d)",
			medium.Graph.NumVertices(), small.Graph.NumVertices())
	}
}

func TestTableICachedReturnsSameInstance(t *testing.T) {
	a := TableICached(Small)
	b := TableICached(Small)
	if len(a) != len(b) {
		t.Fatal("cache size mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cache returned different instances")
		}
	}
}

func TestByShortMissing(t *testing.T) {
	if ByShort(TableICached(Small), "nope") != nil {
		t.Fatal("expected nil for unknown short name")
	}
}

func TestDatasetString(t *testing.T) {
	if s := CA(Small).String(); s == "" {
		t.Fatal("empty dataset string")
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a, b := FB(Small), FB(Small)
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("catalog generation not deterministic")
	}
	for i := range a.Graph.Edges {
		if a.Graph.Edges[i] != b.Graph.Edges[i] {
			t.Fatal("catalog edges differ between constructions")
		}
	}
}
