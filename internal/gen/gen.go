// Package gen synthesizes the input graphs of the HeteroMap reproduction.
//
// The paper trains on synthetic uniform-random (GTgraph-style) and
// Kronecker graphs (Table III) and evaluates on nine real datasets
// (Table I: USA road network, Facebook, LiveJournal, Twitter, Friendster,
// mouse retina connectome, Cage14, rgg-n-24, KronLarge). The real datasets
// are not redistributable at paper scale, so this package generates scaled
// structural analogs: a 2-D grid with unit-ish weights for the road
// network, Chung-Lu power-law graphs for the social networks, a dense
// near-clique for the connectome, a banded mesh for Cage14, a random
// geometric graph for rgg and a Kronecker graph for KronLarge. Each analog
// preserves the *relative* I-variable signature of its original (see
// internal/feature); the declared paper-scale metadata travels with the
// generated graph so characterization and workload scaling can use the
// original magnitudes.
package gen

import (
	"math"
	"math/rand"

	"heteromap/internal/graph"
)

// Uniform generates a GTgraph-style uniform random directed graph with n
// vertices and approximately m edges (self loops and duplicates removed,
// so the final count can be slightly lower). Weights are uniform in
// [1, maxWeight]; pass maxWeight <= 0 for an unweighted graph.
func Uniform(name string, n int, m int64, maxWeight float32, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(name, n).Dedupe().NoSelfLoops()
	if maxWeight > 0 {
		b.Weighted()
	}
	for i := int64(0); i < m; i++ {
		src := int32(rng.Intn(n))
		dst := int32(rng.Intn(n))
		b.Add(src, dst, randWeight(rng, maxWeight))
	}
	return b.MustBuild()
}

// UniformUndirected is Uniform with mirrored edges.
func UniformUndirected(name string, n int, m int64, maxWeight float32, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(name, n).Dedupe().NoSelfLoops().Undirected()
	if maxWeight > 0 {
		b.Weighted()
	}
	for i := int64(0); i < m; i++ {
		src := int32(rng.Intn(n))
		dst := int32(rng.Intn(n))
		b.Add(src, dst, randWeight(rng, maxWeight))
	}
	return b.MustBuild()
}

func randWeight(rng *rand.Rand, maxWeight float32) float32 {
	if maxWeight <= 0 {
		return 0
	}
	return 1 + rng.Float32()*(maxWeight-1)
}

// Grid generates a rows x cols 2-D lattice (4-neighborhood), the standard
// structural analog of a road network: near-constant degree, very large
// diameter, high spatial locality. Weights model road segment lengths.
func Grid(name string, rows, cols int, maxWeight float32, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	b := graph.NewBuilder(name, n).Undirected()
	if maxWeight > 0 {
		b.Weighted()
	}
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.Add(id(r, c), id(r, c+1), randWeight(rng, maxWeight))
			}
			if r+1 < rows {
				b.Add(id(r, c), id(r+1, c), randWeight(rng, maxWeight))
			}
		}
	}
	return b.MustBuild()
}

// PowerLaw generates a Chung-Lu style graph whose expected degree sequence
// follows a power law with the given exponent (typically 2.0-2.5 for social
// networks). hubBoost multiplies the largest expected degree, reproducing
// the extreme-hub structure of Twitter-like graphs (huge I3).
func PowerLaw(name string, n int, avgDeg float64, exponent, hubBoost float64, maxWeight float32, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if exponent <= 1 {
		exponent = 2.1
	}
	if hubBoost < 1 {
		hubBoost = 1
	}
	// Expected weights w_i proportional to (i+1)^(-1/(exponent-1)).
	w := make([]float64, n)
	alpha := 1 / (exponent - 1)
	for i := 0; i < n; i++ {
		w[i] = 1 / math.Pow(float64(i+1), alpha)
	}
	w[0] *= hubBoost
	targetEdges := float64(n) * avgDeg / 2 // undirected underlying edges

	b := graph.NewBuilder(name, n).Dedupe().NoSelfLoops().Undirected()
	if maxWeight > 0 {
		b.Weighted()
	}
	// Sample endpoints proportional to w via the alias-free cumulative
	// method with binary search over prefix sums.
	prefix := make([]float64, n+1)
	for i := 0; i < n; i++ {
		prefix[i+1] = prefix[i] + w[i]
	}
	total := prefix[n]
	sample := func() int32 {
		x := rng.Float64() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if prefix[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	edges := int64(targetEdges)
	for i := int64(0); i < edges; i++ {
		b.Add(sample(), sample(), randWeight(rng, maxWeight))
	}
	return b.MustBuild()
}

// DenseBlob generates a near-clique: n vertices where each pair is
// connected with probability p. It is the structural analog of the mouse
// retina connectome (tiny vertex count, enormous density, diameter ~1-2).
func DenseBlob(name string, n int, p float64, maxWeight float32, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(name, n).Undirected()
	if maxWeight > 0 {
		b.Weighted()
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.Add(int32(i), int32(j), randWeight(rng, maxWeight))
			}
		}
	}
	return b.MustBuild()
}

// BandedMesh generates a matrix-like banded graph: each vertex connects to
// up to `band` following vertices within a window, the structural analog of
// the Cage14 DNA-electrophoresis matrix (uniform moderate degree, moderate
// diameter, strong locality).
func BandedMesh(name string, n, band, window int, maxWeight float32, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(name, n).Dedupe().Undirected()
	if maxWeight > 0 {
		b.Weighted()
	}
	if window < band {
		window = band
	}
	for v := 0; v < n; v++ {
		for k := 0; k < band; k++ {
			off := 1 + rng.Intn(window)
			u := v + off
			if u < n {
				b.Add(int32(v), int32(u), randWeight(rng, maxWeight))
			}
		}
	}
	return b.MustBuild()
}

// RandomGeometric generates a 2-D random geometric graph: n points uniform
// in the unit square, connected when within radius r. rgg-n-24's analog:
// moderate constant degree with a huge diameter.
func RandomGeometric(name string, n int, radius float64, maxWeight float32, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	// Grid-bucket the points so neighbor search is O(n) expected.
	cells := int(1/radius) + 1
	bucket := make(map[int][]int32)
	cellOf := func(i int) int {
		cx := int(xs[i] / radius)
		cy := int(ys[i] / radius)
		return cy*cells + cx
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		bucket[c] = append(bucket[c], int32(i))
	}
	b := graph.NewBuilder(name, n).Dedupe().NoSelfLoops().Undirected()
	if maxWeight > 0 {
		b.Weighted()
	}
	r2 := radius * radius
	for i := 0; i < n; i++ {
		cx := int(xs[i] / radius)
		cy := int(ys[i] / radius)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				for _, j := range bucket[(cy+dy)*cells+(cx+dx)] {
					if int(j) <= i {
						continue
					}
					ddx := xs[i] - xs[j]
					ddy := ys[i] - ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						b.Add(int32(i), j, randWeight(rng, maxWeight))
					}
				}
			}
		}
	}
	return b.MustBuild()
}
