package gen

import (
	"testing"

	"heteromap/internal/graph"
)

func TestUniformDeterministic(t *testing.T) {
	a := Uniform("u", 100, 400, 64, 7)
	b := Uniform("u", 100, 400, 64, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("same seed, different edge at %d", i)
		}
	}
	c := Uniform("u", 100, 400, 64, 8)
	if c.NumEdges() == a.NumEdges() {
		same := true
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestUniformShape(t *testing.T) {
	g := Uniform("u", 200, 1000, 64, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 200 {
		t.Fatalf("V=%d", g.NumVertices())
	}
	// Dedupe + self-loop removal can only shrink.
	if g.NumEdges() > 1000 || g.NumEdges() < 700 {
		t.Fatalf("E=%d want within (700,1000]", g.NumEdges())
	}
	if !g.Weighted() {
		t.Fatal("weights requested but missing")
	}
	for _, w := range g.Weights {
		if w < 1 || w > 64 {
			t.Fatalf("weight %v outside [1,64]", w)
		}
	}
	unweighted := Uniform("u", 50, 100, 0, 1)
	if unweighted.Weighted() {
		t.Fatal("maxWeight<=0 must be unweighted")
	}
}

func TestUniformUndirected(t *testing.T) {
	g := UniformUndirected("uu", 100, 300, 0, 3)
	if !g.Undirected {
		t.Fatal("undirected flag")
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			found := false
			for _, w := range g.Neighbors(int(u)) {
				if int(w) == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) not mirrored", v, u)
			}
		}
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid("g", 5, 7, 16, 1)
	if g.NumVertices() != 35 {
		t.Fatalf("V=%d", g.NumVertices())
	}
	// Interior degree 4, corner degree 2.
	ds := graph.ComputeDegreeStats(g)
	if ds.Max != 4 || ds.Min != 2 {
		t.Fatalf("grid degrees %+v", ds)
	}
	if graph.ConnectedComponentsCount(g) != 1 {
		t.Fatal("grid must be connected")
	}
	// Diameter = manhattan distance corner to corner.
	if d := graph.EstimateDiameter(g, 1, 4); d != 4+6 {
		t.Fatalf("grid diameter %d want 10", d)
	}
}

func TestPowerLawHubs(t *testing.T) {
	g := PowerLaw("pl", 2000, 10, 2.1, 20, 0, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ds := graph.ComputeDegreeStats(g)
	if float64(ds.Max) < 5*ds.Mean {
		t.Fatalf("power law lacks hubs: max=%d mean=%.1f", ds.Max, ds.Mean)
	}
	if ds.Skew < 0.8 {
		t.Fatalf("power law skew %v too low", ds.Skew)
	}
}

func TestDenseBlobDensity(t *testing.T) {
	g := DenseBlob("db", 60, 0.9, 0, 2)
	ds := graph.ComputeDegreeStats(g)
	if ds.Mean < 45 {
		t.Fatalf("dense blob mean degree %.1f want ~53", ds.Mean)
	}
	if d := graph.EstimateDiameter(g, 1, 2); d > 2 {
		t.Fatalf("dense blob diameter %d want <= 2", d)
	}
}

func TestBandedMeshLocality(t *testing.T) {
	g := BandedMesh("bm", 500, 6, 30, 0, 4)
	if l := graph.LocalityScore(g); l < 0.8 {
		t.Fatalf("banded mesh locality %v want >= 0.8", l)
	}
	ds := graph.ComputeDegreeStats(g)
	if ds.Skew > 0.6 {
		t.Fatalf("banded mesh skew %v want small", ds.Skew)
	}
}

func TestRandomGeometric(t *testing.T) {
	g := RandomGeometric("rg", 800, 0.08, 0, 6)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ds := graph.ComputeDegreeStats(g)
	// Expected degree ~ n*pi*r^2 ~ 16.
	if ds.Mean < 6 || ds.Mean > 32 {
		t.Fatalf("rgg mean degree %.1f want ~16", ds.Mean)
	}
	// Geometric graphs have meaningful diameter.
	if d := graph.EstimateDiameter(g, 1, 4); d < 8 {
		t.Fatalf("rgg diameter %d want >= 8", d)
	}
}

func TestKroneckerShape(t *testing.T) {
	g := Kronecker("k", 10, 8, Graph500Initiator, 64, 9)
	if g.NumVertices() != 1024 {
		t.Fatalf("V=%d want 1024", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ds := graph.ComputeDegreeStats(g)
	if ds.Skew < 1 {
		t.Fatalf("kronecker skew %v want >= 1 (heavy tail)", ds.Skew)
	}
	// Zero-probability initiator falls back to defaults.
	g2 := Kronecker("k0", 8, 4, KroneckerParams{}, 0, 9)
	if g2.NumVertices() != 256 || g2.NumEdges() == 0 {
		t.Fatal("fallback initiator failed")
	}
}

func TestKroneckerUndirected(t *testing.T) {
	g := KroneckerUndirected("ku", 9, 6, Graph500Initiator, 64, 11)
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			found := false
			for _, w := range g.Neighbors(int(u)) {
				if int(w) == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) not mirrored", v, u)
			}
		}
	}
}
