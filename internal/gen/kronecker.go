package gen

import (
	"math/rand"

	"heteromap/internal/graph"
)

// KroneckerParams are the 2x2 initiator probabilities of the stochastic
// Kronecker (R-MAT) model. The Graph500 defaults (0.57, 0.19, 0.19, 0.05)
// produce the skewed degree distributions the paper trains on.
type KroneckerParams struct {
	A, B, C, D float64
}

// Graph500Initiator is the standard R-MAT initiator matrix.
var Graph500Initiator = KroneckerParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// Kronecker generates a 2^scale-vertex stochastic Kronecker graph with
// edgeFactor edges per vertex. Self loops and duplicates are removed;
// weights are uniform in [1, maxWeight] when maxWeight > 0.
func Kronecker(name string, scale int, edgeFactor int, p KroneckerParams, maxWeight float32, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := int64(n) * int64(edgeFactor)
	total := p.A + p.B + p.C + p.D
	if total <= 0 {
		p = Graph500Initiator
		total = 1
	}
	a, b, c := p.A/total, p.B/total, p.C/total

	builder := graph.NewBuilder(name, n).Dedupe().NoSelfLoops()
	if maxWeight > 0 {
		builder.Weighted()
	}
	for i := int64(0); i < m; i++ {
		var src, dst int32
		for level := 0; level < scale; level++ {
			r := rng.Float64()
			src <<= 1
			dst <<= 1
			switch {
			case r < a:
				// top-left quadrant: neither bit set
			case r < a+b:
				dst |= 1
			case r < a+b+c:
				src |= 1
			default:
				src |= 1
				dst |= 1
			}
		}
		builder.Add(src, dst, randWeight(rng, maxWeight))
	}
	return builder.MustBuild()
}

// KroneckerUndirected generates the mirrored variant used by benchmarks
// that require symmetric adjacency (triangle counting, community
// detection, connected components).
func KroneckerUndirected(name string, scale int, edgeFactor int, p KroneckerParams, maxWeight float32, seed int64) *graph.Graph {
	g := Kronecker(name, scale, edgeFactor, p, maxWeight, seed)
	// Rebuild with mirroring. This costs one extra pass but keeps the
	// directed generator simple.
	b := graph.NewBuilder(name, g.NumVertices()).Dedupe().NoSelfLoops().Undirected()
	if g.Weighted() {
		b.Weighted()
	}
	for v := 0; v < g.NumVertices(); v++ {
		nb := g.Neighbors(v)
		ws := g.NeighborWeights(v)
		for i, u := range nb {
			var w float32
			if ws != nil {
				w = ws[i]
			}
			b.Add(int32(v), u, w)
		}
	}
	return b.MustBuild()
}
