package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is a single directed edge used while assembling a graph.
type Edge struct {
	Src, Dst int32
	Weight   float32
}

// Builder accumulates edges and produces a validated CSR Graph. The zero
// value is ready to use. Builders are not safe for concurrent use.
type Builder struct {
	name       string
	n          int
	edges      []Edge
	weighted   bool
	undirected bool
	dedupe     bool
	noSelf     bool
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(name string, n int) *Builder {
	return &Builder{name: name, n: n}
}

// Undirected makes Build mirror every added edge, producing a symmetric
// adjacency structure.
func (b *Builder) Undirected() *Builder { b.undirected = true; return b }

// Weighted makes Build keep per-edge weights.
func (b *Builder) Weighted() *Builder { b.weighted = true; return b }

// Dedupe makes Build drop duplicate (src,dst) pairs, keeping the first
// occurrence's weight.
func (b *Builder) Dedupe() *Builder { b.dedupe = true; return b }

// NoSelfLoops makes Build drop edges whose endpoints coincide.
func (b *Builder) NoSelfLoops() *Builder { b.noSelf = true; return b }

// Add appends a directed edge. Endpoints outside [0,n) are rejected at
// Build time.
func (b *Builder) Add(src, dst int32, w float32) {
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Weight: w})
}

// NumPending returns the number of edges added so far (before mirroring or
// deduplication).
func (b *Builder) NumPending() int { return len(b.edges) }

// Build assembles the CSR graph. It runs a counting sort over source
// vertices, so construction is O(V+E) plus O(E log E) when deduplication is
// requested.
func (b *Builder) Build() (*Graph, error) {
	if b.n < 0 {
		return nil, ErrNegativeCount
	}
	if b.n > math.MaxInt32 {
		return nil, ErrTooManyVerts
	}
	for _, e := range b.edges {
		if int(e.Src) < 0 || int(e.Src) >= b.n || int(e.Dst) < 0 || int(e.Dst) >= b.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.Src, e.Dst, b.n)
		}
	}

	work := b.edges
	if b.noSelf {
		work = filterSelfLoops(work)
	}
	if b.undirected {
		mirrored := make([]Edge, 0, 2*len(work))
		for _, e := range work {
			mirrored = append(mirrored, e)
			if e.Src != e.Dst {
				mirrored = append(mirrored, Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
			}
		}
		work = mirrored
	}
	if b.dedupe {
		work = dedupeEdges(work)
	}

	offsets := make([]int64, b.n+1)
	for _, e := range work {
		offsets[e.Src+1]++
	}
	for v := 0; v < b.n; v++ {
		offsets[v+1] += offsets[v]
	}
	edges := make([]int32, len(work))
	var weights []float32
	if b.weighted {
		weights = make([]float32, len(work))
	}
	cursor := make([]int64, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range work {
		i := cursor[e.Src]
		cursor[e.Src]++
		edges[i] = e.Dst
		if weights != nil {
			weights[i] = e.Weight
		}
	}
	// Sort each adjacency list for deterministic iteration and fast
	// intersection in triangle counting.
	for v := 0; v < b.n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		if weights == nil {
			seg := edges[lo:hi]
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
			continue
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = i
		}
		eseg, wseg := edges[lo:hi], weights[lo:hi]
		sort.Slice(idx, func(i, j int) bool { return eseg[idx[i]] < eseg[idx[j]] })
		esorted := make([]int32, len(idx))
		wsorted := make([]float32, len(idx))
		for i, j := range idx {
			esorted[i], wsorted[i] = eseg[j], wseg[j]
		}
		copy(eseg, esorted)
		copy(wseg, wsorted)
	}

	g := &Graph{
		Name:       b.name,
		Offsets:    offsets,
		Edges:      edges,
		Weights:    weights,
		Undirected: b.undirected,
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build for programmatically generated inputs; it panics on
// error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func filterSelfLoops(edges []Edge) []Edge {
	out := edges[:0:0]
	for _, e := range edges {
		if e.Src != e.Dst {
			out = append(out, e)
		}
	}
	return out
}

func dedupeEdges(edges []Edge) []Edge {
	if len(edges) == 0 {
		return edges
	}
	cp := append([]Edge(nil), edges...)
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].Src != cp[j].Src {
			return cp[i].Src < cp[j].Src
		}
		return cp[i].Dst < cp[j].Dst
	})
	out := cp[:1]
	for _, e := range cp[1:] {
		last := out[len(out)-1]
		if e.Src == last.Src && e.Dst == last.Dst {
			continue
		}
		out = append(out, e)
	}
	return out
}

// FromEdges is a convenience wrapper that builds a graph from an edge slice
// in one call. Weighted is inferred from withWeights.
func FromEdges(name string, n int, edges []Edge, undirected, withWeights bool) (*Graph, error) {
	b := NewBuilder(name, n)
	if undirected {
		b.Undirected()
	}
	if withWeights {
		b.Weighted()
	}
	b.Dedupe().NoSelfLoops()
	for _, e := range edges {
		b.Add(e.Src, e.Dst, e.Weight)
	}
	return b.Build()
}
