package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the text loader never panics and that every
// successfully parsed graph satisfies the CSR invariants.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# c\n0 1 2.5\n")
	f.Add("")
	f.Add("0 0\n0 1\n0 1\n")
	f.Add("5 5 5\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input), "fuzz", 0, true)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("loader produced invalid graph: %v", err)
		}
	})
}

// FuzzReadBinary checks the binary loader rejects arbitrary bytes without
// panicking, and that anything it accepts validates.
func FuzzReadBinary(f *testing.F) {
	// Seed with a genuine serialized graph plus mutations.
	b := NewBuilder("seed", 4).Weighted()
	b.Add(0, 1, 1)
	b.Add(2, 3, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b.MustBuild()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("HMG1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("loader accepted invalid graph: %v", err)
		}
	})
}
