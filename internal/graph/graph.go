// Package graph provides the compressed-sparse-row (CSR) graph
// representation shared by every benchmark, generator and simulator module
// in the HeteroMap reproduction, together with the structural statistics
// (degree distribution, diameter estimates, memory footprint) that feed the
// paper's I-variable characterization.
package graph

import (
	"errors"
	"fmt"
)

// Graph is an immutable directed graph in CSR form. Vertex v's outgoing
// edges are Edges[Offsets[v]:Offsets[v+1]]; Weights, when non-nil, runs
// parallel to Edges. Undirected graphs are stored with both edge
// directions present.
type Graph struct {
	// Name identifies the graph in reports and experiment rows.
	Name string

	// Offsets has length NumVertices()+1; Offsets[0] is always 0.
	Offsets []int64

	// Edges holds destination vertex ids grouped by source vertex.
	Edges []int32

	// Weights holds per-edge weights parallel to Edges, or nil for an
	// unweighted graph.
	Weights []float32

	// Undirected records that every edge appears in both directions.
	Undirected bool
}

// Errors returned by Validate.
var (
	ErrNoOffsets     = errors.New("graph: missing offsets (need at least [0])")
	ErrOffsetStart   = errors.New("graph: offsets must start at 0")
	ErrOffsetOrder   = errors.New("graph: offsets must be non-decreasing")
	ErrOffsetEnd     = errors.New("graph: last offset must equal len(edges)")
	ErrEdgeRange     = errors.New("graph: edge destination out of range")
	ErrWeightLen     = errors.New("graph: weights length must match edges")
	ErrTooManyVerts  = errors.New("graph: vertex count exceeds int32 range")
	ErrNegativeCount = errors.New("graph: negative vertex count")
)

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.Offsets) == 0 {
		return 0
	}
	return len(g.Offsets) - 1
}

// NumEdges returns the number of stored directed edges. For an undirected
// graph this counts each underlying edge twice (once per direction).
func (g *Graph) NumEdges() int64 { return int64(len(g.Edges)) }

// Degree returns the out-degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the adjacency slice of vertex v. The slice aliases the
// graph's storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// NeighborWeights returns the weight slice parallel to Neighbors(v).
// It returns nil for unweighted graphs.
func (g *Graph) NeighborWeights(v int) []float32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Offsets[v]:g.Offsets[v+1]]
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.Weights != nil }

// AvgDegree returns the mean out-degree, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// MaxDegree returns the largest out-degree in the graph.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// FootprintBytes estimates the in-memory size of the CSR structure: offsets
// (8 B each), edges (4 B each) and weights (4 B each when present). The
// streaming layer uses it to decide how many chunks a graph needs on an
// accelerator with a given memory size.
func (g *Graph) FootprintBytes() int64 {
	b := int64(len(g.Offsets))*8 + int64(len(g.Edges))*4
	if g.Weights != nil {
		b += int64(len(g.Weights)) * 4
	}
	return b
}

// Validate checks structural invariants of the CSR arrays. A Graph built
// through Builder or the generators always validates; Validate exists for
// graphs constructed by hand or loaded from external data.
func (g *Graph) Validate() error {
	if len(g.Offsets) == 0 {
		return ErrNoOffsets
	}
	if g.Offsets[0] != 0 {
		return ErrOffsetStart
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("%w: vertex %d", ErrOffsetOrder, v)
		}
	}
	if g.Offsets[n] != int64(len(g.Edges)) {
		return ErrOffsetEnd
	}
	for i, e := range g.Edges {
		if int(e) < 0 || int(e) >= n {
			return fmt.Errorf("%w: edge %d -> %d (n=%d)", ErrEdgeRange, i, e, n)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Edges) {
		return ErrWeightLen
	}
	return nil
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph %q: V=%d E=%d avgdeg=%.2f weighted=%v undirected=%v",
		g.Name, g.NumVertices(), g.NumEdges(), g.AvgDegree(), g.Weighted(), g.Undirected)
}
