package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// path builds 0-1-2-...-(n-1) as a directed chain.
func path(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder("path", n)
	for i := 0; i < n-1; i++ {
		b.Add(int32(i), int32(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewBuilder("empty", 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.AvgDegree() != 0 {
		t.Fatalf("avg degree of empty graph: %v", g.AvgDegree())
	}
	if g.MaxDegree() != 0 {
		t.Fatalf("max degree of empty graph: %v", g.MaxDegree())
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder("tri", 3).Weighted()
	b.Add(0, 1, 1.5)
	b.Add(0, 2, 2.5)
	b.Add(1, 2, 3.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors(0)=%v (must be sorted)", nb)
	}
	ws := g.NeighborWeights(0)
	if ws[0] != 1.5 || ws[1] != 2.5 {
		t.Fatalf("weights misaligned after sort: %v", ws)
	}
	if !g.Weighted() {
		t.Fatal("weighted flag lost")
	}
}

func TestBuilderUndirectedMirrors(t *testing.T) {
	b := NewBuilder("u", 3).Undirected()
	b.Add(0, 1, 0)
	b.Add(1, 2, 0)
	g := b.MustBuild()
	if g.NumEdges() != 4 {
		t.Fatalf("undirected edge count %d want 4", g.NumEdges())
	}
	if g.Degree(1) != 2 {
		t.Fatalf("degree(1)=%d want 2", g.Degree(1))
	}
	if !g.Undirected {
		t.Fatal("undirected flag lost")
	}
}

func TestBuilderDedupe(t *testing.T) {
	b := NewBuilder("d", 2).Dedupe()
	b.Add(0, 1, 0)
	b.Add(0, 1, 0)
	b.Add(0, 1, 0)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("dedupe left %d edges", g.NumEdges())
	}
}

func TestBuilderNoSelfLoops(t *testing.T) {
	b := NewBuilder("s", 2).NoSelfLoops()
	b.Add(0, 0, 0)
	b.Add(0, 1, 0)
	b.Add(1, 1, 0)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("self loops kept: %d edges", g.NumEdges())
	}
}

func TestBuilderUndirectedSelfLoopNotDoubled(t *testing.T) {
	b := NewBuilder("sl", 2).Undirected()
	b.Add(0, 0, 0)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("self loop mirrored: %d edges", g.NumEdges())
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder("bad", 2)
	b.Add(0, 5, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected out-of-range error")
	}
	b2 := NewBuilder("bad2", 2)
	b2.Add(-1, 0, 0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected negative-source error")
	}
}

func TestBuilderNegativeCount(t *testing.T) {
	if _, err := NewBuilder("neg", -1).Build(); !errors.Is(err, ErrNegativeCount) {
		t.Fatalf("want ErrNegativeCount, got %v", err)
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges("fe", 4, []Edge{{0, 1, 2}, {1, 1, 1}, {0, 1, 2}, {2, 3, 1}}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	// self loop dropped, duplicate dropped, rest mirrored: (0,1),(2,3) -> 4.
	if g.NumEdges() != 4 {
		t.Fatalf("edges=%d want 4", g.NumEdges())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Graph)
		want   error
	}{
		{"no offsets", func(g *Graph) { g.Offsets = nil }, ErrNoOffsets},
		{"offset start", func(g *Graph) { g.Offsets[0] = 1 }, ErrOffsetStart},
		{"offset order", func(g *Graph) { g.Offsets[1] = 99; g.Offsets[2] = 1 }, ErrOffsetOrder},
		{"offset end", func(g *Graph) { g.Offsets[len(g.Offsets)-1]++ }, ErrOffsetEnd},
		{"edge range", func(g *Graph) { g.Edges[0] = 99 }, ErrEdgeRange},
		{"weight len", func(g *Graph) { g.Weights = []float32{1} }, ErrWeightLen},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := path(t, 5)
			g.Weights = make([]float32, len(g.Edges))
			tc.mutate(g)
			if err := g.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
		})
	}
}

func TestFootprintBytes(t *testing.T) {
	g := path(t, 5) // 5 vertices, 4 edges, unweighted
	want := int64(6*8 + 4*4)
	if got := g.FootprintBytes(); got != want {
		t.Fatalf("footprint=%d want %d", got, want)
	}
	g.Weights = make([]float32, 4)
	if got := g.FootprintBytes(); got != want+16 {
		t.Fatalf("weighted footprint=%d want %d", got, want+16)
	}
}

func TestBuildProducesValidCSRProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		b := NewBuilder("rand", n).Dedupe().NoSelfLoops()
		if rng.Intn(2) == 0 {
			b.Undirected()
		}
		m := rng.Intn(120)
		for i := 0; i < m; i++ {
			b.Add(int32(rng.Intn(n)), int32(rng.Intn(n)), 1)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		// Adjacency sorted per vertex.
		for v := 0; v < n; v++ {
			nb := g.Neighbors(v)
			for i := 1; i < len(nb); i++ {
				if nb[i-1] > nb[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder("sym", n).Dedupe().NoSelfLoops().Undirected()
		for i := 0; i < 60; i++ {
			b.Add(int32(rng.Intn(n)), int32(rng.Intn(n)), 1)
		}
		g := b.MustBuild()
		// Every edge must have its reverse.
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(v) {
				if !hasEdge(g, int(u), int32(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func hasEdge(g *Graph, src int, dst int32) bool {
	for _, u := range g.Neighbors(src) {
		if u == dst {
			return true
		}
	}
	return false
}

func TestString(t *testing.T) {
	g := path(t, 3)
	s := g.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
