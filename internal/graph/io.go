package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file provides the loaders downstream users need to bring their own
// graphs: whitespace-separated edge lists (the de-facto interchange format
// of SNAP / DIMACS-style datasets) and a compact binary CSR format for
// fast reloads.

// ReadEdgeList parses a whitespace-separated edge list: one "src dst
// [weight]" triple per line, '#' or '%' comment lines ignored. Vertex ids
// are 0-based; the vertex count is one past the largest id unless a
// larger minVertices is given. Set undirected to mirror every edge.
func ReadEdgeList(r io.Reader, name string, minVertices int, undirected bool) (*Graph, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)

	var edges []Edge
	weighted := false
	maxID := int64(-1)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", lineNo, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", lineNo, err)
		}
		if src < 0 || dst < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		var w float64
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
			weighted = true
		}
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
		edges = append(edges, Edge{Src: int32(src), Dst: int32(dst), Weight: float32(w)})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	// An edge list with no edges is almost always a wrong path or a
	// truncated download; reject it unless the caller explicitly asked
	// for isolated vertices via minVertices.
	if len(edges) == 0 && minVertices <= 0 {
		return nil, fmt.Errorf("graph: %s: empty edge list (%d lines, no edges)", name, lineNo)
	}

	n := int(maxID + 1)
	if minVertices > n {
		n = minVertices
	}
	b := NewBuilder(name, n).Dedupe().NoSelfLoops()
	if weighted {
		b.Weighted()
	}
	if undirected {
		b.Undirected()
	}
	for _, e := range edges {
		b.Add(e.Src, e.Dst, e.Weight)
	}
	return b.Build()
}

// WriteEdgeList emits the graph as a parsable edge list (weights included
// for weighted graphs). For undirected graphs each underlying edge is
// written once (low id first).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# graph %s: V=%d E=%d\n", g.Name, g.NumVertices(), g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		nb := g.Neighbors(v)
		ws := g.NeighborWeights(v)
		for i, u := range nb {
			if g.Undirected && int(u) < v {
				continue
			}
			if ws != nil {
				fmt.Fprintf(bw, "%d %d %g\n", v, u, ws[i])
			} else {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}

// Binary CSR format:
//
//	magic "HMG1" | flags u32 (bit0 weighted, bit1 undirected)
//	nameLen u32 | name bytes
//	numVertices u64 | numEdges u64
//	offsets (numVertices+1) x u64 | edges numEdges x u32
//	[weights numEdges x f32]
const binaryMagic = "HMG1"

// WriteBinary serializes the CSR arrays.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var flags uint32
	if g.Weighted() {
		flags |= 1
	}
	if g.Undirected {
		flags |= 2
	}
	write := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := write(flags); err != nil {
		return err
	}
	if err := write(uint32(len(g.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(g.Name); err != nil {
		return err
	}
	if err := write(uint64(g.NumVertices())); err != nil {
		return err
	}
	if err := write(uint64(g.NumEdges())); err != nil {
		return err
	}
	for _, o := range g.Offsets {
		if err := write(uint64(o)); err != nil {
			return err
		}
	}
	for _, e := range g.Edges {
		if err := write(uint32(e)); err != nil {
			return err
		}
	}
	if g.Weighted() {
		for _, wt := range g.Weights {
			if err := write(wt); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var flags, nameLen uint32
	if err := read(&flags); err != nil {
		return nil, err
	}
	if err := read(&nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("graph: implausible name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, err
	}
	var nv, ne uint64
	if err := read(&nv); err != nil {
		return nil, err
	}
	if err := read(&ne); err != nil {
		return nil, err
	}
	// Cap sizes so a corrupted or hostile header cannot trigger a
	// multi-gigabyte allocation before the arrays fail to parse.
	const maxPlausible = 1 << 28
	if nv > maxPlausible || ne > maxPlausible {
		return nil, fmt.Errorf("graph: implausible sizes V=%d E=%d", nv, ne)
	}
	g := &Graph{
		Name:       string(nameBytes),
		Offsets:    make([]int64, nv+1),
		Edges:      make([]int32, ne),
		Undirected: flags&2 != 0,
	}
	for i := range g.Offsets {
		var o uint64
		if err := read(&o); err != nil {
			return nil, err
		}
		g.Offsets[i] = int64(o)
	}
	for i := range g.Edges {
		var e uint32
		if err := read(&e); err != nil {
			return nil, err
		}
		g.Edges[i] = int32(e)
	}
	if flags&1 != 0 {
		g.Weights = make([]float32, ne)
		for i := range g.Weights {
			if err := read(&g.Weights[i]); err != nil {
				return nil, err
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
