package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
% another comment
0 1 2.5
1 2 1.0

2 0 3.5
`
	g, err := ReadEdgeList(strings.NewReader(in), "tri", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.Weighted() {
		t.Fatal("weights lost")
	}
	if g.NeighborWeights(0)[0] != 2.5 {
		t.Fatalf("weight %v", g.NeighborWeights(0)[0])
	}
}

func TestReadEdgeListUnweighted(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"), "p", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.Weighted() {
		t.Fatal("unweighted input produced weights")
	}
	if !g.Undirected || g.NumEdges() != 4 {
		t.Fatalf("mirroring: E=%d", g.NumEdges())
	}
}

func TestReadEdgeListMinVertices(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), "iso", 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("V=%d want 10 (isolated vertices)", g.NumVertices())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",       // too few fields
		"a 1\n",     // bad src
		"0 b\n",     // bad dst
		"-1 2\n",    // negative id
		"0 1 zzz\n", // bad weight
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), "bad", 0, false); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestReadEdgeListErrorsNameLine(t *testing.T) {
	// Error messages must point the user at the offending line.
	cases := []struct{ in, want string }{
		{"0 1\n0\n", "line 2"},
		{"# c\n\n0 1\na b\n", "line 4"},
		{"0 1\n-1 2\n", "line 2: negative vertex id"},
		{"0 1\n0 1 zzz\n", "line 2: bad weight"},
	}
	for _, c := range cases {
		_, err := ReadEdgeList(strings.NewReader(c.in), "bad", 0, false)
		if err == nil {
			t.Errorf("input %q: expected error", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("input %q: error %q missing %q", c.in, err, c.want)
		}
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	// A file with no edges is a wrong path or truncated download, not a
	// valid graph.
	for _, in := range []string{"", "\n\n", "# only comments\n% more\n"} {
		_, err := ReadEdgeList(strings.NewReader(in), "empty", 0, false)
		if err == nil {
			t.Errorf("input %q: empty edge list accepted", in)
			continue
		}
		if !strings.Contains(err.Error(), "empty edge list") {
			t.Errorf("input %q: error %q", in, err)
		}
	}
	// Explicitly requested isolated vertices are still legal (round
	// trips of edgeless graphs rely on this).
	g, err := ReadEdgeList(strings.NewReader("# none\n"), "iso", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 0 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder("rt", 6).Weighted().Undirected()
	b.Add(0, 1, 1.5)
	b.Add(1, 2, 2)
	b.Add(3, 4, 4.25)
	g := b.MustBuild()

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, "rt", g.NumVertices(), true)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip V=%d E=%d want V=%d E=%d",
			back.NumVertices(), back.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, bnb := g.Neighbors(v), back.Neighbors(v)
		if len(a) != len(bnb) {
			t.Fatalf("vertex %d degree", v)
		}
		for i := range a {
			if a[i] != bnb[i] {
				t.Fatalf("vertex %d neighbor %d", v, i)
			}
			if g.NeighborWeights(v)[i] != back.NeighborWeights(v)[i] {
				t.Fatalf("vertex %d weight %d", v, i)
			}
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		n := 1 + rng.next()%30
		b := NewBuilder("bin", int(n)).Dedupe().NoSelfLoops()
		weighted := seed%2 == 0
		if weighted {
			b.Weighted()
		}
		for i := 0; i < 60; i++ {
			b.Add(int32(rng.next()%n), int32(rng.next()%n), float32(rng.next()%10)+1)
		}
		g := b.MustBuild()
		g.Undirected = seed%3 == 0

		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if back.Name != g.Name || back.Undirected != g.Undirected ||
			back.Weighted() != g.Weighted() {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for i := range g.Edges {
			if g.Edges[i] != back.Edges[i] {
				return false
			}
			if weighted && g.Weights[i] != back.Weights[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// newTestRand is a tiny deterministic generator for property tests that
// avoids importing math/rand in two places.
type testRand struct{ state uint64 }

func newTestRand(seed int64) *testRand {
	return &testRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *testRand) next() int64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	v := int64(r.state >> 33)
	if v < 0 {
		v = -v
	}
	return v
}

func TestReadBinaryRejectsCorruption(t *testing.T) {
	g := path(t, 5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte("XXXX"), good[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated stream.
	if _, err := ReadBinary(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Empty stream.
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestWriteEdgeListDirectedKeepsAllEdges(t *testing.T) {
	b := NewBuilder("d", 3)
	b.Add(0, 1, 0)
	b.Add(1, 0, 0)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if line != "" && line[0] != '#' {
			lines++
		}
	}
	if lines != 2 {
		t.Fatalf("directed writer emitted %d edges, want 2", lines)
	}
}
