package graph

import (
	"math"
	"math/rand"
)

// DegreeStats summarizes the out-degree distribution. Skew (coefficient of
// variation) drives the load-imbalance term of the accelerator cost model:
// the paper's I3 ("maximum edge count of any vertex ... defines ...
// divergence in work between threads") plays the same role.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	Stddev   float64
	// Skew is Stddev/Mean (coefficient of variation); 0 for regular graphs.
	Skew float64
}

// ComputeDegreeStats scans all vertices once.
func ComputeDegreeStats(g *Graph) DegreeStats {
	n := g.NumVertices()
	if n == 0 {
		return DegreeStats{}
	}
	ds := DegreeStats{Min: g.Degree(0)}
	var sum, sumSq float64
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		if d < ds.Min {
			ds.Min = d
		}
		if d > ds.Max {
			ds.Max = d
		}
		fd := float64(d)
		sum += fd
		sumSq += fd * fd
	}
	ds.Mean = sum / float64(n)
	variance := sumSq/float64(n) - ds.Mean*ds.Mean
	if variance < 0 {
		variance = 0
	}
	ds.Stddev = math.Sqrt(variance)
	if ds.Mean > 0 {
		ds.Skew = ds.Stddev / ds.Mean
	}
	return ds
}

// BFSDepth returns the eccentricity (deepest BFS level) reached from src
// and the number of vertices visited. Unreachable vertices are ignored.
func BFSDepth(g *Graph, src int) (depth, visited int) {
	n := g.NumVertices()
	if n == 0 {
		return 0, 0
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int32{int32(src)}
	visited = 1
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			du := dist[u]
			for _, w := range g.Neighbors(int(u)) {
				if dist[w] < 0 {
					dist[w] = du + 1
					if int(du+1) > depth {
						depth = int(du + 1)
					}
					next = append(next, w)
					visited++
				}
			}
		}
		frontier = next
	}
	return depth, visited
}

// EstimateDiameter approximates the graph diameter with the classic
// double-sweep heuristic plus a few random restarts: BFS from a seed, then
// BFS again from the deepest vertex found, keeping the maximum depth. The
// paper obtains I4 "alongside input graphs or using runtime approximations";
// this is that runtime approximation. restarts <= 0 defaults to 4.
func EstimateDiameter(g *Graph, seed int64, restarts int) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	if restarts <= 0 {
		restarts = 4
	}
	rng := rand.New(rand.NewSource(seed))
	best := 0
	for r := 0; r < restarts; r++ {
		src := rng.Intn(n)
		far, depth := farthestFrom(g, src)
		if depth > best {
			best = depth
		}
		// Second sweep from the farthest vertex of the first.
		if _, d2 := farthestFrom(g, far); d2 > best {
			best = d2
		}
	}
	return best
}

func farthestFrom(g *Graph, src int) (far, depth int) {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int32{int32(src)}
	far = src
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			du := dist[u]
			for _, w := range g.Neighbors(int(u)) {
				if dist[w] < 0 {
					dist[w] = du + 1
					if int(du+1) > depth {
						depth = int(du + 1)
						far = int(w)
					}
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return far, depth
}

// LocalityScore estimates spatial locality of the edge structure in [0,1]:
// 1 means neighbors are numerically adjacent to their source (regular,
// cache/coalescing friendly, e.g. grids), 0 means destinations are spread
// across the whole id space (random, cache hostile). The accelerator cache
// model uses it to derive miss rates for data-driven accesses.
func LocalityScore(g *Graph) float64 {
	n := g.NumVertices()
	if n <= 1 || g.NumEdges() == 0 {
		return 1
	}
	var sum float64
	var count int64
	// Sample at most ~100k edges for large graphs.
	stride := 1
	if g.NumEdges() > 100_000 {
		stride = int(g.NumEdges() / 100_000)
	}
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		for i := 0; i < len(nb); i += stride {
			d := math.Abs(float64(int(nb[i]) - v))
			sum += d
			count++
		}
	}
	if count == 0 {
		return 1
	}
	meanSpread := sum / float64(count)
	// Normalize against the expectation for uniformly random destinations
	// (~n/3 mean absolute distance).
	random := float64(n) / 3
	score := 1 - meanSpread/random
	if score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	return score
}

// ConnectedComponentsCount returns the number of weakly connected
// components treating edges as undirected (CSR must already contain both
// directions for undirected graphs; for directed graphs this is a forward-
// reachability approximation used only by generator sanity tests).
func ConnectedComponentsCount(g *Graph) int {
	n := g.NumVertices()
	seen := make([]bool, n)
	count := 0
	var stack []int32
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		count++
		seen[s] = true
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(int(u)) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return count
}
