package graph

import (
	"math"
	"testing"
)

// grid builds an rows x cols undirected lattice for structural tests.
func grid(t *testing.T, rows, cols int) *Graph {
	t.Helper()
	b := NewBuilder("grid", rows*cols).Undirected()
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.Add(id(r, c), id(r, c+1), 0)
			}
			if r+1 < rows {
				b.Add(id(r, c), id(r+1, c), 0)
			}
		}
	}
	return b.MustBuild()
}

func TestDegreeStatsRegular(t *testing.T) {
	// A cycle: every vertex has degree exactly 2.
	n := 10
	b := NewBuilder("cycle", n).Undirected()
	for i := 0; i < n; i++ {
		b.Add(int32(i), int32((i+1)%n), 0)
	}
	g := b.MustBuild()
	ds := ComputeDegreeStats(g)
	if ds.Min != 2 || ds.Max != 2 || ds.Mean != 2 {
		t.Fatalf("cycle stats %+v", ds)
	}
	if ds.Skew != 0 {
		t.Fatalf("regular graph skew %v want 0", ds.Skew)
	}
}

func TestDegreeStatsStar(t *testing.T) {
	// A star: hub degree n-1, leaves degree 1 -> high skew.
	n := 21
	b := NewBuilder("star", n).Undirected()
	for i := 1; i < n; i++ {
		b.Add(0, int32(i), 0)
	}
	g := b.MustBuild()
	ds := ComputeDegreeStats(g)
	if ds.Max != n-1 || ds.Min != 1 {
		t.Fatalf("star stats %+v", ds)
	}
	if ds.Skew < 1 {
		t.Fatalf("star skew %v want > 1", ds.Skew)
	}
}

func TestDegreeStatsEmpty(t *testing.T) {
	g := NewBuilder("e", 0).MustBuild()
	if ds := ComputeDegreeStats(g); ds != (DegreeStats{}) {
		t.Fatalf("empty stats %+v", ds)
	}
}

func TestBFSDepthPath(t *testing.T) {
	n := 8
	b := NewBuilder("p", n).Undirected()
	for i := 0; i < n-1; i++ {
		b.Add(int32(i), int32(i+1), 0)
	}
	g := b.MustBuild()
	depth, visited := BFSDepth(g, 0)
	if depth != n-1 {
		t.Fatalf("path depth from end: %d want %d", depth, n-1)
	}
	if visited != n {
		t.Fatalf("visited %d want %d", visited, n)
	}
	depth, _ = BFSDepth(g, n/2)
	if depth != n/2 {
		t.Fatalf("path depth from middle: %d want %d", depth, n/2)
	}
}

func TestBFSDepthDisconnected(t *testing.T) {
	b := NewBuilder("dc", 4).Undirected()
	b.Add(0, 1, 0)
	b.Add(2, 3, 0)
	g := b.MustBuild()
	depth, visited := BFSDepth(g, 0)
	if depth != 1 || visited != 2 {
		t.Fatalf("disconnected: depth=%d visited=%d", depth, visited)
	}
}

func TestEstimateDiameterPath(t *testing.T) {
	n := 30
	b := NewBuilder("p", n).Undirected()
	for i := 0; i < n-1; i++ {
		b.Add(int32(i), int32(i+1), 0)
	}
	g := b.MustBuild()
	// The double sweep finds the exact diameter of a path.
	if d := EstimateDiameter(g, 1, 4); d != n-1 {
		t.Fatalf("path diameter estimate %d want %d", d, n-1)
	}
}

func TestEstimateDiameterGrid(t *testing.T) {
	g := grid(t, 6, 9)
	d := EstimateDiameter(g, 1, 4)
	want := 6 - 1 + 9 - 1 // manhattan corner to corner
	if d < want*3/4 || d > want {
		t.Fatalf("grid diameter estimate %d want close to %d", d, want)
	}
}

func TestEstimateDiameterEmptyAndDefaults(t *testing.T) {
	g := NewBuilder("e", 0).MustBuild()
	if d := EstimateDiameter(g, 1, 0); d != 0 {
		t.Fatalf("empty diameter %d", d)
	}
	single := NewBuilder("one", 1).MustBuild()
	if d := EstimateDiameter(single, 1, -1); d != 0 {
		t.Fatalf("single vertex diameter %d", d)
	}
}

func TestLocalityGridVsRandom(t *testing.T) {
	gridG := grid(t, 20, 20)
	b := NewBuilder("rand", 400).Dedupe().NoSelfLoops()
	// Deterministic pseudo-random long-range edges.
	for i := 0; i < 1200; i++ {
		b.Add(int32(i*37%400), int32((i*211+123)%400), 0)
	}
	randG := b.MustBuild()
	lg, lr := LocalityScore(gridG), LocalityScore(randG)
	if lg <= lr {
		t.Fatalf("grid locality %v should exceed random %v", lg, lr)
	}
	if lg < 0.8 {
		t.Fatalf("grid locality %v want >= 0.8", lg)
	}
	if lr > 0.4 {
		t.Fatalf("random locality %v want <= 0.4", lr)
	}
}

func TestLocalityBounds(t *testing.T) {
	g := grid(t, 5, 5)
	l := LocalityScore(g)
	if l < 0 || l > 1 {
		t.Fatalf("locality out of range: %v", l)
	}
	empty := NewBuilder("e", 0).MustBuild()
	if LocalityScore(empty) != 1 {
		t.Fatal("empty graph locality should default to 1")
	}
}

func TestConnectedComponentsCount(t *testing.T) {
	b := NewBuilder("cc", 7).Undirected()
	b.Add(0, 1, 0)
	b.Add(1, 2, 0)
	b.Add(3, 4, 0)
	// 5, 6 isolated.
	g := b.MustBuild()
	if got := ConnectedComponentsCount(g); got != 4 {
		t.Fatalf("components=%d want 4", got)
	}
	if got := ConnectedComponentsCount(grid(t, 4, 4)); got != 1 {
		t.Fatalf("grid components=%d want 1", got)
	}
}

func TestDiameterMonotoneUnderGrowth(t *testing.T) {
	// Growing a path can only grow its diameter.
	prev := 0
	for _, n := range []int{5, 10, 20, 40} {
		b := NewBuilder("p", n).Undirected()
		for i := 0; i < n-1; i++ {
			b.Add(int32(i), int32(i+1), 0)
		}
		d := EstimateDiameter(b.MustBuild(), 7, 3)
		if d < prev {
			t.Fatalf("diameter shrank from %d to %d at n=%d", prev, d, n)
		}
		prev = d
	}
}

func TestAvgDegree(t *testing.T) {
	g := grid(t, 3, 3) // 9 vertices, 12 undirected edges -> 24 directed
	want := 24.0 / 9.0
	if got := g.AvgDegree(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("avg degree %v want %v", got, want)
	}
	if got := g.MaxDegree(); got != 4 {
		t.Fatalf("max degree %v want 4", got)
	}
}
