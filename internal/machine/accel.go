// Package machine simulates the heterogeneous accelerators of the paper's
// Table II: it turns a measured work profile (internal/profile) plus a
// machine configuration (internal/config) into completion time, energy and
// core utilization.
//
// This package is the substitution for the paper's physical GTX-750Ti /
// GTX-970 GPUs and Xeon Phi 7120P / 40-core Xeon E5 multicores (see
// DESIGN.md §2). The cost model encodes the paper's causal structure
// rather than silicon detail: GPUs deliver throughput on regular
// data-parallel phases but pay heavily for indirect addressing, atomics,
// divergence-prone push-pop phases and deep dependency chains; multicores
// pay more per unit of raw throughput but profit from coherent caches on
// shared read-write data, cheap synchronization and strong double-
// precision pipelines. Thread-count sweet spots arise from contention and
// bandwidth-pressure terms that grow with concurrency.
package machine

import (
	"fmt"

	"heteromap/internal/config"
)

// Kind distinguishes the two accelerator families.
type Kind int

const (
	// KindGPU is a throughput-oriented accelerator without coherent
	// caches (OpenCL programming model in the paper).
	KindGPU Kind = iota
	// KindMulticore is a cache-coherent many-core (OpenMP/pthreads).
	KindMulticore
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindGPU {
		return "gpu"
	}
	return "multicore"
}

// Accel describes one accelerator: the Table II hardware parameters plus
// the cost-model coefficients. All published Table II numbers appear
// verbatim; coefficients are model calibration (documented per field).
type Accel struct {
	Name string
	Kind Kind

	// Table II hardware parameters.
	Cores          int     // physical cores (GPU: CUDA cores)
	ThreadsPerCore int     // hw threads per core (GPU: latency-hiding slots)
	CacheBytes     int64   // last-level cache
	Coherent       bool    // hardware cache coherence
	MemBytes       int64   // attached memory size (sweepable, see WithMemory)
	MaxMemBytes    int64   // largest supported memory size
	MemBWGBs       float64 // memory bandwidth GB/s
	FreqGHz        float64 // core clock
	SPTflops       float64 // single-precision peak
	DPTflops       float64 // double-precision peak
	TDPWatts       float64 // board power at full load
	IdleWatts      float64 // board power when idle

	// GPU-specific deployment limits.
	MaxGlobalThreads int // total work items
	MaxLocalThreads  int // CL_KERNEL_WORK_GROUP_SIZE
	// Multicore-specific deployment limit.
	MaxSIMD int // SIMD lanes per core

	Cost CostParams
}

// CostParams are the calibration coefficients of the analytical model.
// Defaults come from DefaultGPUCost / DefaultMulticoreCost; they differ
// between the families exactly along the axes the paper argues about.
type CostParams struct {
	// OpCycles is the cycle cost of one scalar inner-loop operation.
	OpCycles float64
	// IPC is sustained instructions per cycle per thread context.
	IPC float64
	// ChainHopCycles is the latency of one step of a dependency chain
	// (kernel relaunch / frontier propagation on GPUs, coherent cache
	// line transfer on multicores).
	ChainHopCycles float64
	// AtomicCycles is the uncontended cost of one atomic/locked update.
	AtomicCycles float64
	// AtomicSerialize scales how strongly atomics serialize as thread
	// counts grow.
	AtomicSerialize float64
	// BarrierCycles is the base cost of a global barrier.
	BarrierCycles float64
	// PushPopCycles is the per-operation cost of queue/stack disciplines
	// (divergence + replay on GPUs).
	PushPopCycles float64
	// IndirectCycles is the extra address-resolution cost of one
	// indirect access.
	IndirectCycles float64
	// CacheReuse in [0,1] is how much of a cache-resident working set is
	// actually reused across accesses (coherent multicore caches reuse
	// well; small GPU caches thrash).
	CacheReuse float64
	// MemOverlap in [0,1] is how much memory latency overlaps compute
	// when the accelerator has enough concurrency (GPU latency hiding).
	MemOverlap float64
	// BWSaturationThreads is the concurrency needed to reach peak
	// bandwidth.
	BWSaturationThreads float64
	// MissLatencyCycles is the stall cost of one unhidden cache miss.
	MissLatencyCycles float64
	// RemoteHitCycles is the stall cost of a cache *hit* that lands in
	// another core's slice (KNC ring transfers ~250 cycles; a fast
	// shared L3 is far cheaper). Zero disables the term (GPUs).
	RemoteHitCycles float64
	// PrefetchEff in [0,1] is how much of the *sequential* miss stream
	// hardware prefetching (or GPU coalescing) hides.
	PrefetchEff float64
	// MLP is memory-level parallelism per thread context: outstanding
	// misses a single thread sustains (out-of-order cores > in-order).
	MLP float64
	// BWEffBase in [0,1] is the bandwidth fraction reachable on fully
	// irregular scalar access streams; locality and (on multicores)
	// SIMD gather raise efficiency from this floor toward StreamCeiling.
	// This is the term that keeps a Xeon Phi's 352 GB/s out of reach
	// for pointer-chasing code.
	BWEffBase float64
	// StreamCeiling in [0,1] caps achievable bandwidth even on perfect
	// streams (the Phi never sustains its paper bandwidth on real
	// kernels; GPUs get close to theirs when coalesced).
	StreamCeiling float64
	// PressureCoef scales the slowdown from oversubscribing threads
	// beyond the memory system's sweet spot.
	PressureCoef float64
	// DivergencePenalty multiplies compute in push-pop/reduction phases
	// (GPU warp divergence).
	DivergencePenalty float64
	// ChunkPenalty is the per-extra-chunk slowdown when a dataset
	// exceeds accelerator memory and must be streamed.
	ChunkPenalty float64
	// KnobSensitivity scales how strongly mis-set soft knobs (placement,
	// blocktime, scheduling, ...) hurt; ~0.3 reproduces the paper's
	// ~15% selected-vs-optimal gap when a few knobs are off.
	KnobSensitivity float64
}

// DefaultGPUCost returns the GPU-family coefficients.
func DefaultGPUCost() CostParams {
	return CostParams{
		OpCycles:            1.0,
		IPC:                 1.0,
		ChainHopCycles:      20000, // ~15us kernel-boundary latency per dependent step
		AtomicCycles:        25,    // hardware atomics at the L2/ROP units
		AtomicSerialize:     0.02,
		BarrierCycles:       39000, // ~30us global sync == kernel relaunch (flat)
		PushPopCycles:       45,
		IndirectCycles:      10,
		CacheReuse:          0.35,
		MemOverlap:          0.85,
		BWSaturationThreads: 2048,
		MissLatencyCycles:   600,
		PrefetchEff:         0.60, // coalescing units
		MLP:                 1,    // but thousands of contexts
		BWEffBase:           0.50, // coalescers keep scattered loads efficient
		StreamCeiling:       0.90,
		PressureCoef:        0.18,
		DivergencePenalty:   3.0,
		ChunkPenalty:        0.22,
		KnobSensitivity:     0.30,
	}
}

// DefaultMulticoreCost returns the multicore-family coefficients
// (Xeon-Phi-like in-order many-core; the 40-core CPU overrides IPC/MLP in
// its constructor).
func DefaultMulticoreCost() CostParams {
	return CostParams{
		OpCycles:            1.0,
		IPC:                 0.5, // in-order Phi pipelines on branchy code
		ChainHopCycles:      220, // coherent cache-to-cache transfer
		AtomicCycles:        22,
		AtomicSerialize:     0.02,
		BarrierCycles:       2000, // 244-thread OpenMP barrier
		PushPopCycles:       5,
		IndirectCycles:      3,
		CacheReuse:          0.90, // aggregate L2 keeps vertex state resident...
		RemoteHitCycles:     250,  // ...but remote-slice hits ride the slow ring
		MemOverlap:          0.35,
		BWSaturationThreads: 16,
		MissLatencyCycles:   340,
		PrefetchEff:         0.75,
		MLP:                 1.6,
		BWEffBase:           0.07, // scalar gather cannot stream 352 GB/s
		StreamCeiling:       0.15, // KNC never sustains its paper bandwidth
		PressureCoef:        0.20,
		DivergencePenalty:   1.0,
		ChunkPenalty:        0.22,
		KnobSensitivity:     0.30,
	}
}

const gb = int64(1) << 30

// GTX750Ti returns the weaker GPU of Table II: 640 cores, 2 MB cache,
// 2 GB @ 86 GB/s, 1.3 / 0.04 TFLOPs, 1.3 GHz class.
func GTX750Ti() *Accel {
	return &Accel{
		Name: "GTX-750Ti", Kind: KindGPU,
		Cores: 640, ThreadsPerCore: 16,
		CacheBytes: 2 << 20, Coherent: false,
		MemBytes: 2 * gb, MaxMemBytes: 4 * gb, MemBWGBs: 86,
		FreqGHz: 1.3, SPTflops: 1.3, DPTflops: 0.04,
		TDPWatts: 60, IdleWatts: 8,
		MaxGlobalThreads: 8192, MaxLocalThreads: 256,
		MaxSIMD: 1,
		Cost:    DefaultGPUCost(),
	}
}

// GTX970 returns the stronger GPU (Section VI-A): 1664 cores, 4 GB,
// 3.5 / 0.1 TFLOPs, 1.7 GHz class, larger cache.
func GTX970() *Accel {
	return &Accel{
		Name: "GTX-970", Kind: KindGPU,
		Cores: 1664, ThreadsPerCore: 16,
		CacheBytes: 3584 << 10, Coherent: false,
		MemBytes: 4 * gb, MaxMemBytes: 4 * gb, MemBWGBs: 224,
		FreqGHz: 1.7, SPTflops: 3.5, DPTflops: 0.1,
		TDPWatts: 145, IdleWatts: 12,
		MaxGlobalThreads: 16384, MaxLocalThreads: 256,
		MaxSIMD: 1,
		Cost:    DefaultGPUCost(),
	}
}

// XeonPhi7120P returns the primary multicore of Table II: 61 cores / 244
// threads, 32 MB coherent cache, 352 GB/s, 2.4 / 1.2 TFLOPs.
func XeonPhi7120P() *Accel {
	return &Accel{
		Name: "Xeon-Phi-7120P", Kind: KindMulticore,
		Cores: 61, ThreadsPerCore: 4,
		CacheBytes: 32 << 20, Coherent: true,
		MemBytes: 2 * gb, MaxMemBytes: 16 * gb, MemBWGBs: 352,
		FreqGHz: 1.238, SPTflops: 2.4, DPTflops: 1.2,
		TDPWatts: 300, IdleWatts: 95,
		MaxGlobalThreads: 1, MaxLocalThreads: 1,
		MaxSIMD: 16,
		Cost:    DefaultMulticoreCost(),
	}
}

// CPU40 returns the 40-core Xeon E5-2650 v3 system (4 sockets x 10
// hyper-threaded cores @ 2.3 GHz, large coherent LLC, up to 1 TB DDR4).
// Its out-of-order cores sustain much higher per-core throughput and
// memory-level parallelism than the Phi's in-order pipelines.
func CPU40() *Accel {
	cost := DefaultMulticoreCost()
	cost.IPC = 1.5 // out-of-order, but graph code stalls even wide cores
	cost.MLP = 4
	cost.BWEffBase = 0.12
	cost.StreamCeiling = 0.65
	cost.RemoteHitCycles = 140 // shared L3, but half the hits cross sockets
	cost.MissLatencyCycles = 260
	cost.ChainHopCycles = 320 // cross-socket coherence per dependent step
	cost.BarrierCycles = 2500 // four-socket barrier
	return &Accel{
		Name: "CPU-40-Core", Kind: KindMulticore,
		Cores: 40, ThreadsPerCore: 2,
		// 25 MB LLC per socket; NUMA effects mean only the local socket's
		// slice is usefully shared.
		CacheBytes: 32 << 20, Coherent: true,
		MemBytes: 16 * gb, MaxMemBytes: 1024 * gb, MemBWGBs: 272,
		FreqGHz: 2.3, SPTflops: 1.47, DPTflops: 0.74,
		TDPWatts: 420, IdleWatts: 160,
		MaxGlobalThreads: 1, MaxLocalThreads: 1,
		MaxSIMD: 8,
		Cost:    cost,
	}
}

// WithMemory returns a copy of the accelerator with a different attached
// memory size, clamped to [256 MB, MaxMemBytes]; the Fig 16 sensitivity
// study sweeps this.
func (a *Accel) WithMemory(bytes int64) *Accel {
	cp := *a
	minMem := int64(256) << 20
	if bytes < minMem {
		bytes = minMem
	}
	if bytes > a.MaxMemBytes {
		bytes = a.MaxMemBytes
	}
	cp.MemBytes = bytes
	return &cp
}

// HWThreads returns the accelerator's maximum live thread contexts.
func (a *Accel) HWThreads() int { return a.Cores * a.ThreadsPerCore }

// FreqHz returns the clock in Hz.
func (a *Accel) FreqHz() float64 { return a.FreqGHz * 1e9 }

// String implements fmt.Stringer.
func (a *Accel) String() string {
	return fmt.Sprintf("%s (%s, %d cores, %.1f GHz, %d MB cache, %d GB mem @ %.0f GB/s)",
		a.Name, a.Kind, a.Cores, a.FreqGHz, a.CacheBytes>>20, a.MemBytes>>30, a.MemBWGBs)
}

// Pair couples the two accelerators of a multi-accelerator system.
type Pair struct {
	GPU       *Accel
	Multicore *Accel
}

// PrimaryPair returns the paper's primary evaluation system:
// GTX-750Ti + Xeon Phi 7120P.
func PrimaryPair() Pair { return Pair{GPU: GTX750Ti(), Multicore: XeonPhi7120P()} }

// StrongGPUPair returns GTX-970 + Xeon Phi 7120P (Fig 14).
func StrongGPUPair() Pair { return Pair{GPU: GTX970(), Multicore: XeonPhi7120P()} }

// CPU40Pair returns GTX-750Ti + 40-core CPU (Fig 15). The paper pins
// both accelerators to the same memory size in this comparison ("for a
// 2 GB memory size for each accelerator").
func CPU40Pair() Pair {
	return Pair{GPU: GTX750Ti(), Multicore: CPU40().WithMemory(2 * gb)}
}

// StrongCPU40Pair returns GTX-970 + 40-core CPU at the paper's pinned
// 4 GB per accelerator (Fig 15).
func StrongCPU40Pair() Pair {
	return Pair{GPU: GTX970(), Multicore: CPU40().WithMemory(4 * gb)}
}

// AllPairs returns the four accelerator combinations analyzed in
// Section VI-A.
func AllPairs() []Pair {
	return []Pair{PrimaryPair(), StrongGPUPair(), CPU40Pair(), StrongCPU40Pair()}
}

// Select returns the accelerator chosen by an M1 value.
func (p Pair) Select(a config.Accel) *Accel {
	if a == config.GPU {
		return p.GPU
	}
	return p.Multicore
}

// Name renders the pair for experiment headers.
func (p Pair) Name() string { return p.GPU.Name + "+" + p.Multicore.Name }

// Limits derives the deployable M ranges from the pair's hardware.
func (p Pair) Limits() config.Limits {
	return config.Limits{
		MaxCores:          p.Multicore.Cores,
		MaxThreadsPerCore: p.Multicore.ThreadsPerCore,
		MaxSIMD:           p.Multicore.MaxSIMD,
		MaxGlobalThreads:  p.GPU.MaxGlobalThreads,
		MaxLocalThreads:   p.GPU.MaxLocalThreads,
	}
}
