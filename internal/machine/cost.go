package machine

import (
	"math"

	"heteromap/internal/config"
	"heteromap/internal/profile"
)

// Job is one benchmark-input execution request: the measured (and, for
// Table I analogs, paper-scale-scaled) work profile plus the dataset's
// paper-scale memory footprint, which drives chunked streaming when it
// exceeds the accelerator's memory.
type Job struct {
	Work *profile.Work
	// FootprintBytes is the dataset's in-memory size; 0 means "fits".
	FootprintBytes int64
}

// Breakdown itemizes where simulated time went (seconds).
type Breakdown struct {
	Chain    float64 // dependency-chain serialization
	Compute  float64 // scalar inner-loop work
	FP       float64 // floating-point work
	Memory   float64 // exposed (non-overlapped) memory time
	Atomics  float64 // contended atomic updates
	Barriers float64 // global barriers
	PushPop  float64 // queue/stack disciplines

	// KnobFactor is the multiplicative penalty from mis-set soft knobs
	// (1.0 = every knob at its profile-ideal value).
	KnobFactor float64
	// Chunks is how many memory-sized chunks the dataset was streamed in.
	Chunks int
	// ChunkFactor is the streaming slowdown multiplier.
	ChunkFactor float64
}

// Report is the simulated outcome of a Job under one M configuration.
type Report struct {
	Accel       string
	Seconds     float64
	EnergyJ     float64
	Utilization float64 // busy fraction of the selected cores, [0,1]
	Threads     int     // deployed thread count
	Breakdown   Breakdown
}

// minSeconds floors simulated time so ratios stay finite for degenerate
// (empty) profiles.
const minSeconds = 1e-9

// Evaluate simulates executing job on the accelerator under configuration
// m. The M vector is clamped to the accelerator's deployable ranges
// first, mirroring the paper's ceiling rule.
func (a *Accel) Evaluate(job Job, m config.M) Report {
	w := job.Work
	lim := a.selfLimits()
	m = m.Clamp(lim)

	threads := a.deployedThreads(m)
	freq := a.FreqHz()
	cost := a.Cost

	var bd Breakdown
	var busy, exposed float64

	avgWork := phaseAvgWork(w)
	for i := range w.Phases {
		p := &w.Phases[i]
		par := effectiveParallelism(threads, p.ParallelItems)
		computePar := a.computeParallelism(m, threads, p.ParallelItems)

		// --- dependency chain: inherently serial steps ---
		tChain := float64(p.ChainLength) * cost.ChainHopCycles / freq
		bd.Chain += tChain

		// --- scalar compute ---
		scalarOps := float64(p.VertexOps+p.EdgeOps+p.IntOps) +
			0.25*float64(p.IndexedAccesses)
		cycles := scalarOps * cost.OpCycles / cost.IPC
		// SIMD vectorizes regular inner loops on multicores — but only
		// when the inner loops are long enough to fill the lanes (the
		// paper: "PR-CA does not perform well on a Xeon Phi, because it
		// cannot take advantage of the SIMD capabilities due to the lack
		// of density") and the data is regular enough to stream.
		innerLen := 0.0
		if p.VertexOps > 0 {
			innerLen = float64(p.EdgeOps) / float64(p.VertexOps)
		}
		simdFill := math.Min(1, innerLen/16)
		if a.Kind == KindMulticore && m.SIMDWidth > 1 {
			simdEff := 1 + float64(m.SIMDWidth-1)*w.Locality*0.5*simdFill
			cycles /= simdEff
		}
		// Warp divergence on irregular phases.
		if a.Kind == KindGPU && (p.Kind == profile.PushPop || p.Kind == profile.Reduction) {
			cycles *= cost.DivergencePenalty
		}
		li := a.loadImbalance(m, w.Skew)
		// Dynamic scheduling pays a dispatch cost per chunk.
		dispatch := scheduleDispatchCycles(m, p.ParallelItems)
		tCompute := (cycles*li + dispatch) / (freq * computePar)
		// Indirect address resolution.
		tCompute += float64(p.IndirectAccesses) * cost.IndirectCycles / (freq * computePar)
		bd.Compute += tCompute

		// --- floating point ---
		tFP := 0.0
		if p.FPOps > 0 {
			tFP = float64(p.FPOps) / a.fpThroughput(m, threads, simdFill)
		}
		bd.FP += tFP

		// --- memory hierarchy ---
		tMem := a.memoryTime(p, w.Locality, threads, m, simdFill)

		// --- queue disciplines ---
		tPP := 0.0
		if p.PushPops > 0 {
			// Ordered queues serialize, but wide buckets/frontiers
			// (delta-stepping on dense low-diameter graphs) admit
			// parallel appends.
			qCap := 32 + float64(p.ParallelItems)/16
			qPar := math.Min(par, qCap)
			tPP = float64(p.PushPops) * cost.PushPopCycles / (freq * qPar)
		}
		bd.PushPop += tPP

		// --- atomics ---
		tAt := 0.0
		if p.Atomics > 0 {
			contention := atomicContention(p)
			serial := cost.AtomicSerialize * contention * math.Log2(1+par)
			tAt = float64(p.Atomics) * cost.AtomicCycles / freq * (1/par + serial)
		}
		bd.Atomics += tAt

		// Overlap compute and memory: accelerators with enough live
		// concurrency hide memory latency under compute.
		overlap := cost.MemOverlap * math.Min(1, float64(threads)/cost.BWSaturationThreads)
		core := tCompute + tFP + tPP
		memExposed := 0.0
		if tMem > core {
			memExposed = tMem - core*overlap
		} else {
			memExposed = tMem * (1 - overlap)
		}
		bd.Memory += memExposed

		busy += core + tChain*0.25 + tAt*0.5
		exposed += memExposed + tChain*0.75 + tAt*0.5
	}

	// Global barriers over the whole run: flat kernel-relaunch cost on
	// GPUs, tree-combining cost growing with thread count on multicores.
	barScale := 1.0
	if a.Kind == KindMulticore {
		barScale = math.Log2(1 + float64(threads))
	}
	tBar := float64(w.Barriers) * cost.BarrierCycles * barScale / freq
	bd.Barriers = tBar
	exposed += tBar

	total := bd.Chain + bd.Compute + bd.FP + bd.Memory + bd.Atomics + bd.Barriers + bd.PushPop

	// Soft-knob penalties (placement, blocktime, scheduling kind, ...).
	bd.KnobFactor = a.knobFactor(m, w, avgWork)
	total *= bd.KnobFactor

	// Streaming chunks when the dataset exceeds accelerator memory.
	bd.Chunks, bd.ChunkFactor = a.chunking(job.FootprintBytes)
	total *= bd.ChunkFactor

	if total < minSeconds {
		total = minSeconds
	}

	util := 0.0
	if busy+exposed > 0 {
		util = busy / (busy + exposed)
	}
	// GPUs earn utilization credit for latency they actually hide.
	if a.Kind == KindGPU {
		hide := math.Min(1, float64(threads)/cost.BWSaturationThreads) * 0.5
		util = util + (1-util)*hide
	}
	util = clamp01(util)

	power := a.power(m, threads, util)
	return Report{
		Accel:       a.Name,
		Seconds:     total,
		EnergyJ:     power * total,
		Utilization: util,
		Threads:     threads,
		Breakdown:   bd,
	}
}

// selfLimits builds single-accelerator deployment limits, used to clamp M
// before evaluation.
func (a *Accel) selfLimits() config.Limits {
	l := config.Limits{
		MaxCores:          a.Cores,
		MaxThreadsPerCore: a.ThreadsPerCore,
		MaxSIMD:           a.MaxSIMD,
		MaxGlobalThreads:  a.MaxGlobalThreads,
		MaxLocalThreads:   a.MaxLocalThreads,
	}
	if a.Kind == KindGPU {
		l.MaxCores = 1
		l.MaxThreadsPerCore = 1
		l.MaxSIMD = 1
	} else {
		l.MaxGlobalThreads = 1
		l.MaxLocalThreads = 1
	}
	return l
}

// deployedThreads maps the M vector to the live thread count.
func (a *Accel) deployedThreads(m config.M) int {
	if a.Kind == KindGPU {
		t := m.GlobalThreads
		if hw := a.HWThreads(); t > hw {
			t = hw // extra work items queue behind live contexts
		}
		if t < 1 {
			t = 1
		}
		return t
	}
	return m.MulticoreThreads()
}

// computeParallelism is the parallelism that raw ALU throughput scales
// with: GPUs only have Cores ALUs (extra contexts hide latency, they do
// not add issue width); multicore hyperthreads share pipelines with
// diminishing returns.
func (a *Accel) computeParallelism(m config.M, threads int, items int64) float64 {
	if a.Kind == KindGPU {
		p := math.Min(float64(threads), float64(a.Cores))
		return math.Max(1, math.Min(p, float64(maxI64(items, 1))))
	}
	cores := float64(m.Cores)
	ht := 1 + 0.3*float64(m.ThreadsPerCore-1)
	p := cores * ht
	return math.Max(1, math.Min(p, float64(maxI64(items, 1))))
}

func effectiveParallelism(threads int, items int64) float64 {
	p := math.Min(float64(threads), float64(maxI64(items, 1)))
	return math.Max(1, p)
}

// loadImbalance models the skew-induced straggler effect, mitigated by
// dynamic work distribution (the paper's "dynamic scheduling on
// read-write shared data ... mitigates contention and data movement").
func (a *Accel) loadImbalance(m config.M, skew float64) float64 {
	coef := 0.5
	if a.Kind == KindGPU {
		coef = 0.35 // per-warp scheduling is static
	} else {
		switch m.Schedule {
		case config.ScheduleDynamic:
			coef = 0.10
		case config.ScheduleGuided:
			coef = 0.18
		case config.ScheduleAuto:
			coef = 0.25
		default:
			coef = 0.50
		}
	}
	return 1 + skew*coef
}

// scheduleDispatchCycles charges dynamic/guided scheduling's per-chunk
// dispatch overhead.
func scheduleDispatchCycles(m config.M, items int64) float64 {
	if m.Accelerator == config.GPU {
		return 0
	}
	chunk := float64(m.ChunkSize)
	if chunk < 1 {
		chunk = 1
	}
	n := float64(maxI64(items, 1))
	switch m.Schedule {
	case config.ScheduleDynamic:
		return n / chunk * 40
	case config.ScheduleGuided:
		return n / chunk * 20
	case config.ScheduleAuto:
		return n / chunk * 10
	default:
		return 0
	}
}

// fpThroughput returns sustained FLOP/s for the deployed configuration.
// Graph-analytic FP mixes single and double precision (the paper: "the
// double precision capability of the Xeon Phi is higher, [but] not all
// benchmark combinations require it"); the blend exposes the Phi's DP
// advantage without letting it dominate. Multicore vector units only
// reach peak when inner loops are long enough to fill the lanes
// (simdFill), which is why PR on the sparse road network falls back to
// the GPU in the paper.
func (a *Accel) fpThroughput(m config.M, threads int, simdFill float64) float64 {
	peak := (0.7*a.SPTflops + 0.3*a.DPTflops) * 1e12
	if peak <= 0 {
		peak = 1e9
	}
	if a.Kind == KindGPU {
		occ := math.Min(1, float64(threads)/float64(a.Cores*4))
		return math.Max(peak*occ*0.7, 1e7)
	}
	coresFrac := float64(m.Cores) / float64(a.Cores)
	simdFrac := float64(m.SIMDWidth) / float64(maxI(a.MaxSIMD, 1))
	vecEff := 0.15 + 0.85*simdFrac*simdFill
	return math.Max(peak*coresFrac*vecEff, 1e7)
}

// memoryTime models the cache hierarchy: a bandwidth-bound term (line
// traffic over achievable bandwidth) raced against a latency-bound term
// (unhidden miss stalls over the outstanding-miss capacity of the thread
// contexts). The latency term is what makes a 244-thread Xeon Phi stall
// on irregular graph accesses that 10k GPU contexts hide — the paper's
// "cores spend most of their time waiting for low-locality memory
// accesses; GPUs can hide such latencies via thread switching". The
// oversubscription pressure term produces the U-shaped thread-count
// curves of Fig 1.
func (a *Accel) memoryTime(p *profile.Phase, locality float64, threads int, m config.M, simdFill float64) float64 {
	cost := a.Cost
	// The reusable resident state is the read-write + local data (rank,
	// distance, label arrays); the read-only graph structure streams
	// through without needing residency. A 32 MB coherent Phi cache
	// holds the vertex state of mid-sized graphs — exactly the regime
	// where the paper's multicore wins — while 2 MB of GPU cache never
	// does, and half-gigabyte state (Twitter/Friendster scale) evicts
	// everywhere, handing the advantage back to GPU thread counts.
	resident := float64(p.ReadWriteBytes + p.LocalBytes)
	cacheFit := 1.0
	if resident > 0 {
		cacheFit = math.Min(1, float64(a.CacheBytes)/resident)
	}
	reuse := cacheFit * cost.CacheReuse
	missIdx := (1 - locality*0.85) * (1 - reuse)
	missInd := 1 - reuse
	if missIdx < 0.01 {
		missIdx = 0.01
	}
	if missInd < 0.05 {
		missInd = 0.05
	}

	// Sequential (loop-indexed) misses amortize a 64 B line over ~16
	// 4 B elements; indirect misses waste the whole line.
	const lineBytes = 64
	seqLineMisses := float64(p.IndexedAccesses) * missIdx / 16
	randMisses := float64(p.IndirectAccesses) * missInd
	bytes := (seqLineMisses + randMisses) * lineBytes

	// Bandwidth-bound term: achievable bandwidth rises from the scalar-
	// gather floor toward peak with locality (and SIMD gather width on
	// multicores), and needs enough threads in flight.
	ceiling := cost.StreamCeiling
	if ceiling <= 0 {
		ceiling = 1
	}
	streamEff := cost.BWEffBase + (ceiling-cost.BWEffBase)*locality
	if a.Kind == KindMulticore && m.SIMDWidth > 1 {
		// Vector gathers widen the request stream, but far less than
		// their lane count (each lane still misses independently).
		simdFrac := float64(m.SIMDWidth) / float64(maxI(a.MaxSIMD, 1))
		streamEff = math.Min(ceiling, streamEff*(1+0.25*simdFrac*simdFill))
	}
	occupancy := math.Min(1, float64(threads)/cost.BWSaturationThreads)
	if occupancy < 0.05 {
		occupancy = 0.05
	}
	tBW := bytes / (a.MemBWGBs * 1e9 * streamEff * occupancy)

	// Latency-bound term: misses the prefetchers cannot cover stall the
	// thread contexts; total outstanding misses = threads x MLP.
	latMisses := randMisses + seqLineMisses*(1-cost.PrefetchEff)
	outstanding := float64(threads) * cost.MLP
	if outstanding < 1 {
		outstanding = 1
	}
	tLat := latMisses * cost.MissLatencyCycles / (a.FreqHz() * outstanding)

	// Remote-hit term: accesses that *hit* the aggregate cache but in a
	// remote slice still stall on the interconnect (the Phi's ring).
	// Loads pipeline, so remote hits enjoy extra memory-level
	// parallelism relative to true misses.
	if cost.RemoteHitCycles > 0 {
		rwShare := 0.0
		if total := float64(p.ReadOnlyBytes+p.ReadWriteBytes+p.LocalBytes) + 1; total > 1 {
			rwShare = float64(p.ReadWriteBytes) / total
		}
		residentHits := float64(p.Accesses()) * rwShare * reuse
		tLat += residentHits * cost.RemoteHitCycles / (a.FreqHz() * outstanding * 4)
	}

	tMem := math.Max(tBW, tLat)

	// Thread-oversubscription pressure: each live context keeps private
	// state resident; once the aggregate exceeds the cache, misses
	// climb. The effect saturates — real machines degrade tens of
	// percent at maximum threading (Fig 1), they do not fall off a
	// cliff.
	perThread := a.perThreadStateBytes(m)
	demand := float64(threads) * perThread
	if over := demand/float64(a.CacheBytes) - 1; over > 0 {
		pressure := 1 + cost.PressureCoef*over
		if pressure > 1.6 {
			pressure = 1.6
		}
		tMem *= pressure
	}
	return tMem
}

// perThreadStateBytes is the resident cache state per live thread context.
// Larger GPU work-groups (M20) pack more threads per core, raising
// per-core cache pressure — "spawning more threads raises stress on the
// GPU's already small cache system".
func (a *Accel) perThreadStateBytes(m config.M) float64 {
	if a.Kind == KindGPU {
		groupFrac := float64(m.LocalThreads) / float64(maxI(a.MaxLocalThreads, 1))
		return 512 + 1536*groupFrac
	}
	return 16 << 10
}

// atomicContention estimates how concentrated the atomics are: many
// atomics landing on few shared cache lines within one temporal step
// serialize hard; atomics spread over the data and over the phase's
// dependency steps stay cheap.
func atomicContention(p *profile.Phase) float64 {
	lines := float64(p.ReadWriteBytes)/64 + 1
	steps := float64(p.ChainLength)
	if steps < 1 {
		steps = 1
	}
	perStep := float64(p.Atomics) / steps
	return clamp01(perStep / lines / 8)
}

// power returns the draw in watts for a deployment at the given
// utilization.
func (a *Accel) power(m config.M, threads int, util float64) float64 {
	var coresFrac float64
	if a.Kind == KindGPU {
		coresFrac = math.Min(1, float64(threads)/float64(a.HWThreads()))
		// GPUs power all SMs once any work is resident.
		coresFrac = 0.4 + 0.6*coresFrac
	} else {
		coresFrac = float64(m.Cores) / float64(a.Cores)
	}
	dynamic := (a.TDPWatts - a.IdleWatts) * coresFrac * (0.45 + 0.55*util)
	return a.IdleWatts + dynamic
}

// chunking returns the chunk count and streaming multiplier for a dataset
// footprint against this accelerator's memory (Stinger-style streaming,
// Section II).
func (a *Accel) chunking(footprint int64) (int, float64) {
	if footprint <= 0 || footprint <= a.MemBytes {
		return 1, 1
	}
	chunks := int((footprint + a.MemBytes - 1) / a.MemBytes)
	return chunks, 1 + a.Cost.ChunkPenalty*float64(chunks-1)
}

// phaseAvgWork is the mean inner-loop work per outer item, the density
// proxy the paper ties GPU local threading to.
func phaseAvgWork(w *profile.Work) float64 {
	var v, e int64
	for i := range w.Phases {
		v += w.Phases[i].VertexOps
		e += w.Phases[i].EdgeOps
	}
	if v == 0 {
		return 0
	}
	return float64(e) / float64(v)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
