package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"heteromap/internal/config"
	"heteromap/internal/profile"
)

// Property tests over the cost model: invariants that must hold for any
// valid work profile and configuration, not just the calibrated
// workloads. Violations here are model bugs regardless of calibration.

// randomWork draws a structurally valid work profile.
func randomWork(rng *rand.Rand) *profile.Work {
	nPhases := 1 + rng.Intn(3)
	kinds := []profile.PhaseKind{
		profile.VertexDivision, profile.Pareto, profile.ParetoDynamic,
		profile.PushPop, profile.Reduction,
	}
	w := &profile.Work{
		Benchmark:  "prop",
		Graph:      "g",
		Iterations: int64(1 + rng.Intn(50)),
		Barriers:   int64(rng.Intn(200)),
		Locality:   rng.Float64(),
		Skew:       rng.Float64() * 3,
	}
	for i := 0; i < nPhases; i++ {
		scale := int64(1) << uint(10+rng.Intn(16))
		w.Phases = append(w.Phases, profile.Phase{
			Kind:             kinds[rng.Intn(len(kinds))],
			Name:             "p",
			VertexOps:        rng.Int63n(scale),
			EdgeOps:          rng.Int63n(scale * 8),
			IndexedAccesses:  rng.Int63n(scale * 16),
			IndirectAccesses: rng.Int63n(scale * 4),
			ReadOnlyBytes:    rng.Int63n(scale * 64),
			ReadWriteBytes:   rng.Int63n(scale * 16),
			LocalBytes:       rng.Int63n(scale * 4),
			FPOps:            rng.Int63n(scale * 2),
			IntOps:           rng.Int63n(scale * 4),
			Atomics:          rng.Int63n(scale / 4),
			PushPops:         rng.Int63n(scale / 2),
			ChainLength:      rng.Int63n(1000) + 1,
			ParallelItems:    rng.Int63n(scale) + 1,
		})
	}
	return w
}

func randomM(rng *rand.Rand, l config.Limits) config.M {
	var v [config.NumVariables]float64
	for i := range v {
		v[i] = rng.Float64()
	}
	return config.FromNormalized(v, l)
}

func accels() []*Accel {
	return []*Accel{GTX750Ti(), GTX970(), XeonPhi7120P(), CPU40()}
}

func TestEvaluateAlwaysFiniteAndPositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWork(rng)
		for _, a := range accels() {
			m := randomM(rng, a.selfLimits())
			rep := a.Evaluate(Job{Work: w, FootprintBytes: rng.Int63n(64 << 30)}, m)
			if !(rep.Seconds > 0) || !(rep.EnergyJ > 0) {
				return false
			}
			if rep.Utilization < 0 || rep.Utilization > 1 {
				return false
			}
			if rep.Seconds > 1e9 { // a simulated run must not exceed ~30 years
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreWorkNeverFaster(t *testing.T) {
	// Doubling every op counter must not reduce simulated time.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWork(rng)
		heavy := &profile.Work{
			Benchmark: w.Benchmark, Graph: w.Graph,
			Iterations: w.Iterations, Barriers: w.Barriers * 2,
			Locality: w.Locality, Skew: w.Skew,
		}
		for _, p := range w.Phases {
			p.VertexOps *= 2
			p.EdgeOps *= 2
			p.IndexedAccesses *= 2
			p.IndirectAccesses *= 2
			p.FPOps *= 2
			p.IntOps *= 2
			p.Atomics *= 2
			p.PushPops *= 2
			heavy.Phases = append(heavy.Phases, p)
		}
		for _, a := range accels() {
			m := randomM(rng, a.selfLimits())
			light := a.Evaluate(Job{Work: w}, m).Seconds
			dbl := a.Evaluate(Job{Work: heavy}, m).Seconds
			if dbl < light*0.999 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBiggerFootprintNeverFaster(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWork(rng)
		for _, a := range accels() {
			m := randomM(rng, a.selfLimits())
			small := a.Evaluate(Job{Work: w, FootprintBytes: 1 << 30}, m).Seconds
			large := a.Evaluate(Job{Work: w, FootprintBytes: 40 << 30}, m).Seconds
			if large < small*0.999 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHigherLocalityNeverSlower(t *testing.T) {
	// Raising spatial locality (with everything else fixed) must not
	// slow any accelerator: locality only improves caches, bandwidth
	// efficiency and SIMD.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWork(rng)
		w.Locality = 0.1
		better := *w
		better.Locality = 0.9
		for _, a := range accels() {
			m := randomM(rng, a.selfLimits())
			lo := a.Evaluate(Job{Work: w}, m).Seconds
			hi := a.Evaluate(Job{Work: &better}, m).Seconds
			if hi > lo*1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerSkewNeverSlowerAtTunedKnobs(t *testing.T) {
	// Under knob settings aligned with the balanced workload (loose-
	// placement knobs would legitimately prefer the skewed one), less
	// degree skew must not slow any accelerator.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWork(rng)
		w.Skew = 2.5
		balanced := *w
		balanced.Skew = 0
		for _, a := range accels() {
			var m config.M
			if a.Kind == KindGPU {
				m = config.DefaultGPU(a.selfLimits())
			} else {
				m = config.DefaultMulticore(a.selfLimits())
			}
			skewed := a.Evaluate(Job{Work: w}, m).Seconds
			flat := a.Evaluate(Job{Work: &balanced}, m).Seconds
			if flat > skewed*1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWork(rng)
		a := XeonPhi7120P()
		m := randomM(rng, a.selfLimits())
		r1 := a.Evaluate(Job{Work: w}, m)
		r2 := a.Evaluate(Job{Work: w}, m)
		return r1 == r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClampInvariance(t *testing.T) {
	// Evaluating a wildly out-of-range M equals evaluating its clamped
	// form: deployment clamping is part of the contract.
	a := GTX750Ti()
	w := randomWork(rand.New(rand.NewSource(1)))
	m := config.M{Accelerator: config.GPU, GlobalThreads: 1 << 30, LocalThreads: -5}
	r1 := a.Evaluate(Job{Work: w}, m)
	r2 := a.Evaluate(Job{Work: w}, m.Clamp(a.selfLimits()))
	if r1 != r2 {
		t.Fatal("clamped and unclamped evaluations differ")
	}
}
