package machine

import (
	"math"

	"heteromap/internal/config"
	"heteromap/internal/profile"
)

// This file models the soft intra-accelerator knobs (thread placement,
// affinity, blocktime, OpenMP runtime switches, GPU work-group sizing).
// Each knob has a profile-derived ideal value; deviation from the ideal
// multiplies completion time. The aggregate sensitivity is calibrated so
// that an entirely mis-set configuration costs tens of percent — matching
// the ~15% selected-vs-optimal gap the paper reports for its heuristic
// (Fig 7) — while a correct configuration costs nothing.

// KnobIdeals are the profile-derived optimal soft-knob settings for one
// accelerator. The decision-tree predictor and the cost model share this
// derivation, which is exactly the paper's premise: the linear M
// equations of Section IV approximate these relationships.
type KnobIdeals struct {
	Contention float64 // normalized lock/barrier pressure (drives M4, M15, M9)
	Placement  float64 // placement looseness (drives M5-M7)
	Affinity   float64 // pinning strength (drives M8)
	RWShare    float64 // read-write share of touched data (drives M11)
	WantDyn    bool    // dynamic scheduling preferred (M11)
	LocalFrac  float64 // GPU work-group fraction (drives M20)
}

// IdealsFor derives the soft-knob ideals from a work profile.
func IdealsFor(w *profile.Work, avgWork float64) KnobIdeals {
	var ro, rw, local float64
	var atomics, ops, chain int64
	for i := range w.Phases {
		p := &w.Phases[i]
		ro += float64(p.ReadOnlyBytes)
		rw += float64(p.ReadWriteBytes)
		local += float64(p.LocalBytes)
		atomics += p.Atomics
		ops += p.Ops()
		if p.ChainLength > chain {
			chain = p.ChainLength
		}
	}
	totalBytes := ro + rw + local
	rwShare := 0.0
	if totalBytes > 0 {
		rwShare = rw / totalBytes
	}
	contention := 0.0
	if ops > 0 {
		contention = clamp01(float64(atomics) / float64(ops) * 20)
	}
	contention = clamp01(contention + math.Min(0.3, float64(w.Barriers)/1e4))
	chainNorm := clamp01(float64(chain) / 5000)
	placement := clamp01(0.5*w.Skew + 0.5*chainNorm)
	affinity := clamp01(0.5*placement + 0.5*rwShare)
	wantDyn := w.Skew > 0.5 || rwShare > 0.5
	localFrac := clamp01(avgWork / 64)
	return KnobIdeals{
		Contention: contention,
		Placement:  placement,
		Affinity:   affinity,
		RWShare:    rwShare,
		WantDyn:    wantDyn,
		LocalFrac:  localFrac,
	}
}

// knobFactor returns the multiplicative penalty for the soft knobs of m
// against their profile ideals.
func (a *Accel) knobFactor(m config.M, w *profile.Work, avgWork float64) float64 {
	ideals := IdealsFor(w, avgWork)
	var penalty float64

	if a.Kind == KindGPU {
		// Work-group size: dense inputs want large groups, sparse ones
		// small (Fig 1's intermediate-threading optimum).
		actual := float64(m.LocalThreads) / float64(maxI(a.MaxLocalThreads, 1))
		penalty += 0.5 * math.Abs(actual-ideals.LocalFrac)
	} else {
		// Blocktime (M4): should track contention.
		bt := float64(m.BlocktimeMS) / 1000
		penalty += 0.25 * math.Abs(bt-ideals.Contention)

		// Placement (M5-M7): looseness should track skew + chain depth.
		place := (m.PlaceCore + m.PlaceThread + m.PlaceOffset) / 3
		penalty += 0.35 * math.Abs(place-ideals.Placement)

		// Affinity (M8): pinning should track shared read-write data.
		penalty += 0.25 * math.Abs(m.Affinity-ideals.Affinity)

		// Wait policy (M9) and spin count (M15): active waiting helps
		// under contention, wastes pipeline otherwise.
		active := 0.0
		if m.ActiveWait {
			active = 1
		}
		penalty += 0.10 * math.Abs(active-step(ideals.Contention, 0.3))
		spin := float64(m.SpinCount) / float64(1<<20)
		penalty += 0.10 * math.Abs(spin-ideals.Contention)

		// Schedule kind (M11) beyond the load-imbalance term: mismatched
		// kind costs a little extra dispatch/locality churn.
		wantDyn := 0.0
		if ideals.WantDyn {
			wantDyn = 1
		}
		isDyn := 0.0
		if m.Schedule == config.ScheduleDynamic || m.Schedule == config.ScheduleGuided {
			isDyn = 1
		}
		penalty += 0.20 * math.Abs(isDyn-wantDyn)

		// Nested parallelism (M13/M14): profitable only for two-level
		// loops with very wide inner work; otherwise pure overhead.
		if m.Nested {
			if avgWork < 32 {
				penalty += 0.08
			}
		} else if avgWork >= 256 {
			penalty += 0.05
		}

		// Proc bind (M16) follows affinity; dynamic adjust (M17) hurts
		// steady kernels; work stealing (M18) helps only heavy skew.
		bind := 0.0
		if m.ProcBind {
			bind = 1
		}
		penalty += 0.05 * math.Abs(bind-step(ideals.Affinity, 0.5))
		if m.DynamicAdjust {
			penalty += 0.04
		}
		steal := 0.0
		if m.WorkStealing {
			steal = 1
		}
		penalty += 0.05 * math.Abs(steal-step(w.Skew, 0.7))
	}

	f := 1 + a.Cost.KnobSensitivity*penalty
	if f > 1.6 {
		f = 1.6
	}
	return f
}

func step(x, threshold float64) float64 {
	if x > threshold {
		return 1
	}
	return 0
}
