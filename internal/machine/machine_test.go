package machine

import (
	"strings"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/profile"
)

// testWork builds a medium-sized regular vertex-division profile.
func testWork() *profile.Work {
	return &profile.Work{
		Benchmark: "test", Graph: "g",
		Iterations: 10, Barriers: 20, Locality: 0.5, Skew: 0.5,
		Phases: []profile.Phase{{
			Kind: profile.VertexDivision, Name: "main",
			VertexOps: 1_000_000, EdgeOps: 20_000_000,
			IndexedAccesses: 40_000_000, IndirectAccesses: 1_000_000,
			ReadOnlyBytes: 100 << 20, ReadWriteBytes: 8 << 20, LocalBytes: 1 << 20,
			IntOps: 20_000_000, Atomics: 100_000,
			ChainLength: 10, ParallelItems: 1_000_000,
		}},
	}
}

func TestTableIIParameters(t *testing.T) {
	gtx750 := GTX750Ti()
	if gtx750.Cores != 640 || gtx750.CacheBytes != 2<<20 || gtx750.MemBWGBs != 86 ||
		gtx750.SPTflops != 1.3 || gtx750.DPTflops != 0.04 {
		t.Fatalf("GTX-750Ti deviates from Table II: %+v", gtx750)
	}
	phi := XeonPhi7120P()
	if phi.Cores != 61 || phi.ThreadsPerCore != 4 || phi.CacheBytes != 32<<20 ||
		phi.MemBWGBs != 352 || phi.SPTflops != 2.4 || phi.DPTflops != 1.2 || !phi.Coherent {
		t.Fatalf("Xeon Phi deviates from Table II: %+v", phi)
	}
	gtx970 := GTX970()
	if gtx970.Cores != 1664 || gtx970.SPTflops != 3.5 || gtx970.MemBytes != 4<<30 {
		t.Fatalf("GTX-970 deviates from Section VI-A: %+v", gtx970)
	}
	cpu := CPU40()
	if cpu.Cores != 40 || cpu.ThreadsPerCore != 2 || cpu.FreqGHz != 2.3 {
		t.Fatalf("CPU-40 deviates from Section VI-A: %+v", cpu)
	}
}

func TestPairs(t *testing.T) {
	if len(AllPairs()) != 4 {
		t.Fatal("Section VI-A analyzes four pairs")
	}
	p := PrimaryPair()
	if p.GPU.Name != "GTX-750Ti" || p.Multicore.Name != "Xeon-Phi-7120P" {
		t.Fatalf("primary pair %s", p.Name())
	}
	if p.Select(config.GPU) != p.GPU || p.Select(config.Multicore) != p.Multicore {
		t.Fatal("Select broken")
	}
	l := p.Limits()
	if l.MaxCores != 61 || l.MaxGlobalThreads != p.GPU.MaxGlobalThreads {
		t.Fatalf("limits %+v", l)
	}
}

func TestWithMemoryClamps(t *testing.T) {
	a := XeonPhi7120P()
	if got := a.WithMemory(1 << 40).MemBytes; got != a.MaxMemBytes {
		t.Fatalf("over-max memory %d", got)
	}
	if got := a.WithMemory(1).MemBytes; got != 256<<20 {
		t.Fatalf("under-min memory %d", got)
	}
	if a.MemBytes != 2<<30 {
		t.Fatal("WithMemory mutated the receiver")
	}
}

func TestEvaluateBasicSanity(t *testing.T) {
	job := Job{Work: testWork()}
	for _, a := range []*Accel{GTX750Ti(), GTX970(), XeonPhi7120P(), CPU40()} {
		var m config.M
		if a.Kind == KindGPU {
			m = config.DefaultGPU(a.selfLimits())
		} else {
			m = config.DefaultMulticore(a.selfLimits())
		}
		rep := a.Evaluate(job, m)
		if rep.Seconds <= 0 {
			t.Errorf("%s: non-positive time", a.Name)
		}
		if rep.EnergyJ <= 0 {
			t.Errorf("%s: non-positive energy", a.Name)
		}
		if rep.Utilization < 0 || rep.Utilization > 1 {
			t.Errorf("%s: utilization %v", a.Name, rep.Utilization)
		}
		if rep.Threads < 1 {
			t.Errorf("%s: threads %d", a.Name, rep.Threads)
		}
		if rep.Accel != a.Name {
			t.Errorf("report accel %q", rep.Accel)
		}
		bd := rep.Breakdown
		if bd.KnobFactor < 1 || bd.KnobFactor > 1.6 {
			t.Errorf("%s: knob factor %v outside [1,1.6]", a.Name, bd.KnobFactor)
		}
		if bd.Chunks != 1 || bd.ChunkFactor != 1 {
			t.Errorf("%s: unexpected chunking for fitting dataset", a.Name)
		}
	}
}

func TestMoreThreadsHelpThenSaturate(t *testing.T) {
	a := XeonPhi7120P()
	job := Job{Work: testWork()}
	base := config.DefaultMulticore(a.selfLimits())
	base.Cores = 1
	base.ThreadsPerCore = 1
	t1 := a.Evaluate(job, base).Seconds
	base.Cores = 16
	t16 := a.Evaluate(job, base).Seconds
	base.Cores = 61
	base.ThreadsPerCore = 4
	tMax := a.Evaluate(job, base).Seconds
	if !(t1 > t16 && t16 > tMax) {
		t.Fatalf("thread scaling broken: 1->%v 16->%v max->%v", t1, t16, tMax)
	}
	if t1/tMax < 4 {
		t.Fatalf("parallel speedup only %.1fx", t1/tMax)
	}
}

func TestGPUThreadSweetSpot(t *testing.T) {
	// Cache-pressure and contention terms must produce a U-shape (Fig 1):
	// the best GPU thread count on a cache-sensitive workload is neither
	// minimal nor maximal.
	a := GTX750Ti()
	w := testWork()
	w.Phases[0].ReadWriteBytes = 64 << 20
	w.Phases[0].Atomics = 10_000_000
	job := Job{Work: w}
	m := config.DefaultGPU(a.selfLimits())
	times := map[int]float64{}
	for _, g := range []int{64, 2048, 8192} {
		m.GlobalThreads = g
		times[g] = a.Evaluate(job, m).Seconds
	}
	if !(times[2048] < times[64]) {
		t.Fatalf("mid threads not better than few: %v", times)
	}
	if !(times[2048] <= times[8192]) {
		t.Fatalf("max threads should not beat the sweet spot: %v", times)
	}
}

func TestGPUWinsRegularParallelWork(t *testing.T) {
	// A large, regular, low-sharing integer workload is the GPU's home
	// game (the paper's SSSP-BF/BFS class) — with a working set too big
	// for any cache.
	w := testWork()
	w.Locality = 0.1
	w.Phases[0].ReadWriteBytes = 600 << 20
	job := Job{Work: w}
	gpu, phi := GTX750Ti(), XeonPhi7120P()
	mg := config.DefaultGPU(gpu.selfLimits())
	mg.GlobalThreads = 2048 // the knee of the GPU's thread curve
	tg := gpu.Evaluate(job, mg).Seconds
	tm := phi.Evaluate(job, config.DefaultMulticore(phi.selfLimits())).Seconds
	if tg >= tm {
		t.Fatalf("GPU (%v) should beat Phi (%v) on regular parallel work", tg, tm)
	}
}

func TestMulticoreWinsChainHeavyWork(t *testing.T) {
	// Deep dependency chains with barriers every step (the paper's road
	// network delta-stepping) favour the multicore.
	w := testWork()
	w.Phases[0].ChainLength = 50_000
	w.Phases[0].EdgeOps = 1_000_000
	w.Phases[0].IndexedAccesses = 2_000_000
	w.Phases[0].ParallelItems = 2_000
	w.Barriers = 50_000
	w.DiameterBound = true
	job := Job{Work: w}
	gpu, phi := GTX750Ti(), XeonPhi7120P()
	tg := gpu.Evaluate(job, config.DefaultGPU(gpu.selfLimits())).Seconds
	tm := phi.Evaluate(job, config.DefaultMulticore(phi.selfLimits())).Seconds
	if tm >= tg {
		t.Fatalf("Phi (%v) should beat GPU (%v) on chain-heavy work", tm, tg)
	}
}

func TestMulticoreWinsCacheResidentShared(t *testing.T) {
	// Read-write shared state that fits the Phi's 32 MB but not the
	// GPU's 2 MB (the paper's PageRank/Comm class on mid-size graphs).
	w := testWork()
	w.Phases[0].ReadWriteBytes = 24 << 20
	w.Phases[0].IndirectAccesses = 30_000_000
	w.Phases[0].FPOps = 30_000_000
	w.Phases[0].IntOps = 0
	job := Job{Work: w}
	gpu, phi := GTX750Ti(), XeonPhi7120P()
	tg := gpu.Evaluate(job, config.DefaultGPU(gpu.selfLimits())).Seconds
	tm := phi.Evaluate(job, config.DefaultMulticore(phi.selfLimits())).Seconds
	if tm >= tg {
		t.Fatalf("Phi (%v) should beat GPU (%v) on cache-resident FP work", tm, tg)
	}
}

func TestAtomicsHurtGPUMore(t *testing.T) {
	w := testWork()
	base := Job{Work: w}
	heavy := *w
	heavyPhases := append([]profile.Phase(nil), w.Phases...)
	heavyPhases[0].Atomics = 40_000_000
	heavy.Phases = heavyPhases
	heavyJob := Job{Work: &heavy}

	gpu, phi := GTX750Ti(), XeonPhi7120P()
	mg := config.DefaultGPU(gpu.selfLimits())
	mm := config.DefaultMulticore(phi.selfLimits())
	gpuDelta := gpu.Evaluate(heavyJob, mg).Seconds - gpu.Evaluate(base, mg).Seconds
	phiDelta := phi.Evaluate(heavyJob, mm).Seconds - phi.Evaluate(base, mm).Seconds
	if gpuDelta <= phiDelta {
		t.Fatalf("added atomic time GPU %.4fs vs Phi %.4fs: GPU should pay more",
			gpuDelta, phiDelta)
	}
}

func TestChunkingKicksIn(t *testing.T) {
	a := GTX750Ti() // 2 GB
	job := Job{Work: testWork(), FootprintBytes: 7 << 30}
	rep := a.Evaluate(job, config.DefaultGPU(a.selfLimits()))
	if rep.Breakdown.Chunks != 4 {
		t.Fatalf("chunks=%d want 4", rep.Breakdown.Chunks)
	}
	if rep.Breakdown.ChunkFactor <= 1 {
		t.Fatal("chunk factor must exceed 1")
	}
	fits := a.Evaluate(Job{Work: testWork(), FootprintBytes: 1 << 30}, config.DefaultGPU(a.selfLimits()))
	if fits.Seconds >= rep.Seconds {
		t.Fatal("chunked run should be slower")
	}
}

func TestMoreMemoryNeverSlower(t *testing.T) {
	phi := XeonPhi7120P()
	job := Job{Work: testWork(), FootprintBytes: 12 << 30}
	m := config.DefaultMulticore(phi.selfLimits())
	prev := -1.0
	for _, gb := range []int64{1, 2, 4, 8, 16} {
		sec := phi.WithMemory(gb<<30).Evaluate(job, m).Seconds
		if prev > 0 && sec > prev*1.0001 {
			t.Fatalf("more memory got slower at %dGB: %v > %v", gb, sec, prev)
		}
		prev = sec
	}
}

func TestPowerWithinRatings(t *testing.T) {
	for _, a := range []*Accel{GTX750Ti(), GTX970(), XeonPhi7120P(), CPU40()} {
		var m config.M
		if a.Kind == KindGPU {
			m = config.DefaultGPU(a.selfLimits())
		} else {
			m = config.DefaultMulticore(a.selfLimits())
		}
		rep := a.Evaluate(Job{Work: testWork()}, m)
		watts := rep.EnergyJ / rep.Seconds
		if watts < a.IdleWatts || watts > a.TDPWatts {
			t.Errorf("%s draws %.0fW outside [%.0f, %.0f]", a.Name, watts, a.IdleWatts, a.TDPWatts)
		}
	}
}

func TestPhiBurnsMoreEnergyThanGPU(t *testing.T) {
	// "The Xeon Phi has a larger power rating compared to the two GPUs,
	// and hence it dissipates more energy" for comparable work.
	job := Job{Work: testWork()}
	gpu, phi := GTX750Ti(), XeonPhi7120P()
	eg := gpu.Evaluate(job, config.DefaultGPU(gpu.selfLimits())).EnergyJ
	em := phi.Evaluate(job, config.DefaultMulticore(phi.selfLimits())).EnergyJ
	if em <= eg {
		t.Fatalf("Phi energy %v should exceed GPU energy %v on this workload", em, eg)
	}
}

func TestGTX970BeatsGTX750(t *testing.T) {
	job := Job{Work: testWork()}
	weak, strong := GTX750Ti(), GTX970()
	tw := weak.Evaluate(job, config.DefaultGPU(weak.selfLimits())).Seconds
	ts := strong.Evaluate(job, config.DefaultGPU(strong.selfLimits())).Seconds
	if ts >= tw {
		t.Fatalf("GTX-970 (%v) should beat GTX-750Ti (%v)", ts, tw)
	}
}

func TestKnobIdealsBounded(t *testing.T) {
	w := testWork()
	ideals := IdealsFor(w, 20)
	vals := []float64{ideals.Contention, ideals.Placement, ideals.Affinity,
		ideals.RWShare, ideals.LocalFrac}
	for i, v := range vals {
		if v < 0 || v > 1 {
			t.Fatalf("ideal %d = %v out of range", i, v)
		}
	}
}

func TestIdealKnobsBeatMisSetKnobs(t *testing.T) {
	phi := XeonPhi7120P()
	w := testWork()
	w.Skew = 2 // wants loose placement + dynamic scheduling
	job := Job{Work: w}
	good := config.DefaultMulticore(phi.selfLimits())
	good.Schedule = config.ScheduleDynamic
	good.PlaceCore, good.PlaceThread, good.PlaceOffset = 0.6, 0.6, 0.6
	bad := good
	bad.Schedule = config.ScheduleStatic
	bad.PlaceCore, bad.PlaceThread, bad.PlaceOffset = 0, 0, 0
	bad.Nested = true
	bad.DynamicAdjust = true
	tg := phi.Evaluate(job, good).Seconds
	tb := phi.Evaluate(job, bad).Seconds
	if tb <= tg {
		t.Fatalf("mis-set knobs (%v) should lose to aligned knobs (%v)", tb, tg)
	}
}

func TestEmptyWorkFloored(t *testing.T) {
	a := GTX750Ti()
	w := &profile.Work{Benchmark: "empty", Graph: "g",
		Phases: []profile.Phase{{Kind: profile.VertexDivision, Name: "noop"}}}
	rep := a.Evaluate(Job{Work: w}, config.DefaultGPU(a.selfLimits()))
	if rep.Seconds < minSeconds {
		t.Fatalf("time %v below floor", rep.Seconds)
	}
}

func TestStrings(t *testing.T) {
	if s := GTX750Ti().String(); !strings.Contains(s, "GTX-750Ti") {
		t.Fatal("accel string")
	}
	if KindGPU.String() != "gpu" || KindMulticore.String() != "multicore" {
		t.Fatal("kind strings")
	}
	if PrimaryPair().Name() == "" {
		t.Fatal("pair name")
	}
}

func TestHWThreadsAndFreq(t *testing.T) {
	phi := XeonPhi7120P()
	if phi.HWThreads() != 244 {
		t.Fatalf("phi threads %d want 244 (Table II)", phi.HWThreads())
	}
	if phi.FreqHz() != phi.FreqGHz*1e9 {
		t.Fatal("freq conversion")
	}
}
