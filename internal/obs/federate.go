package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// NodeMetrics is one peer's /metrics scrape handed to FederateMetrics.
// A non-nil Err marks the node stale: its text is ignored and the
// federated exposition carries a heteromap_federation_stale marker for
// it instead of failing the whole scrape.
type NodeMetrics struct {
	Node string
	Text string
	Err  error
}

// promSeries is one parsed exposition sample: name, the raw label body
// (without braces, "" when unlabeled) and the value.
type promSeries struct {
	name   string
	labels string
	value  float64
}

// exposition is one node's parsed /metrics page.
type exposition struct {
	types  map[string]string // family → counter|gauge|histogram|untyped
	helps  map[string]string
	series []promSeries
}

// parseExposition parses Prometheus text format 0.0.4 the way this
// repo emits it: "# TYPE"/"# HELP" comments and "name{labels} value"
// samples with no timestamps. Unparseable lines are skipped — a
// federating scrape must not die on one odd series.
func parseExposition(text string) exposition {
	ex := exposition{types: map[string]string{}, helps: map[string]string{}}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				ex.types[fields[2]] = fields[3]
			} else if len(fields) >= 4 && fields[1] == "HELP" {
				ex.helps[fields[2]] = fields[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		id := line[:sp]
		s := promSeries{name: id, value: v}
		if open := strings.IndexByte(id, '{'); open >= 0 {
			if !strings.HasSuffix(id, "}") {
				continue
			}
			s.name = id[:open]
			s.labels = id[open+1 : len(id)-1]
		}
		ex.series = append(ex.series, s)
	}
	return ex
}

// familyOf maps a series name to its metric family: histogram
// components (_bucket/_sum/_count) belong to the base name that
// declared "# TYPE ... histogram".
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if types[base] == "histogram" {
				return base
			}
		}
	}
	return name
}

// federatedFamily accumulates one metric family across nodes.
type federatedFamily struct {
	name string
	typ  string
	help string

	// sumOrder/sums hold the cluster-summed series (counters and
	// histogram components) keyed by "name{labels}", in first-appearance
	// order so merged histogram buckets keep their le ordering.
	sumOrder []string
	sums     map[string]*promSeries

	// perNode holds each node's series in that node's own order.
	nodeOrder []string
	perNode   map[string][]promSeries
}

// FederateMetrics merges per-node /metrics scrapes into one cluster
// exposition: every series is re-emitted with a leading node=<addr>
// label, counters additionally get a cluster-summed series without the
// node label, histograms get bucket-merged cluster series (buckets,
// sum and count summed per label set), and gauges (and untyped series
// like exemplars) stay strictly per-node — summing a gauge across
// nodes is a lie. Stale nodes contribute only a
// heteromap_federation_stale{node=...} 1 marker; healthy nodes carry
// the marker at 0 so coverage is visible.
func FederateMetrics(w io.Writer, nodes []NodeMetrics) {
	sorted := make([]NodeMetrics, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })

	fmt.Fprintf(w, "# HELP heteromap_federation_stale Peers whose /metrics scrape failed this federation pass.\n")
	fmt.Fprintf(w, "# TYPE heteromap_federation_stale gauge\n")
	for _, n := range sorted {
		v := 0
		if n.Err != nil {
			v = 1
		}
		fmt.Fprintf(w, "heteromap_federation_stale{node=%q} %d\n", n.Node, v)
	}

	var famOrder []string
	fams := map[string]*federatedFamily{}
	for _, n := range sorted {
		if n.Err != nil {
			continue
		}
		ex := parseExposition(n.Text)
		for _, s := range ex.series {
			famName := familyOf(s.name, ex.types)
			fam := fams[famName]
			if fam == nil {
				fam = &federatedFamily{
					name:    famName,
					typ:     ex.types[famName],
					help:    ex.helps[famName],
					sums:    map[string]*promSeries{},
					perNode: map[string][]promSeries{},
				}
				if fam.typ == "" {
					fam.typ = "untyped"
				}
				fams[famName] = fam
				famOrder = append(famOrder, famName)
			}
			if _, seen := fam.perNode[n.Node]; !seen {
				fam.nodeOrder = append(fam.nodeOrder, n.Node)
			}
			fam.perNode[n.Node] = append(fam.perNode[n.Node], s)
			if fam.typ == "counter" || fam.typ == "histogram" {
				key := s.name + "{" + s.labels + "}"
				if e := fam.sums[key]; e != nil {
					e.value += s.value
				} else {
					fam.sums[key] = &promSeries{name: s.name, labels: s.labels, value: s.value}
					fam.sumOrder = append(fam.sumOrder, key)
				}
			}
		}
	}

	for _, famName := range famOrder {
		fam := fams[famName]
		if fam.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", fam.name, fam.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, key := range fam.sumOrder {
			s := fam.sums[key]
			writeSample(w, s.name, s.labels, s.value)
		}
		for _, node := range fam.nodeOrder {
			for _, s := range fam.perNode[node] {
				writeSample(w, s.name, nodeLabels(node, s.labels), s.value)
			}
		}
	}
}

// nodeLabels prefixes a raw label body with node=<addr>.
func nodeLabels(node, labels string) string {
	nl := "node=" + strconv.Quote(node)
	if labels == "" {
		return nl
	}
	return nl + "," + labels
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, strconv.FormatFloat(v, 'g', -1, 64))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}
