package obs

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// federateFixture is a deterministic three-nodes-plus-one-dead cluster
// scrape covering every merge rule: a bare counter, a labeled counter
// with an escaped label value, a gauge, a histogram, an untyped
// exemplar series, a node whose name itself needs label escaping, and
// an unreachable node that must degrade to a stale marker.
func federateFixture() []NodeMetrics {
	nodeA := `# HELP heteromap_requests_total Requests served.
# TYPE heteromap_requests_total counter
heteromap_requests_total 100
# TYPE heteromap_queue_depth gauge
heteromap_queue_depth 3
# HELP heteromap_request_duration_seconds Request latency.
# TYPE heteromap_request_duration_seconds histogram
heteromap_request_duration_seconds_bucket{le="0.005"} 90
heteromap_request_duration_seconds_bucket{le="+Inf"} 100
heteromap_request_duration_seconds_sum 0.5
heteromap_request_duration_seconds_count 100
# TYPE heteromap_model_requests_total counter
heteromap_model_requests_total{model="na\"ughty"} 7
heteromap_request_duration_seconds_exemplar{trace_id="aa-1"} 0.25
`
	nodeB := `# HELP heteromap_requests_total Requests served.
# TYPE heteromap_requests_total counter
heteromap_requests_total 150
# TYPE heteromap_queue_depth gauge
heteromap_queue_depth 5
# HELP heteromap_request_duration_seconds Request latency.
# TYPE heteromap_request_duration_seconds histogram
heteromap_request_duration_seconds_bucket{le="0.005"} 80
heteromap_request_duration_seconds_bucket{le="+Inf"} 120
heteromap_request_duration_seconds_sum 0.75
heteromap_request_duration_seconds_count 120
# TYPE heteromap_model_requests_total counter
heteromap_model_requests_total{model="na\"ughty"} 5
heteromap_model_requests_total{model="tree"} 11
`
	evil := `# TYPE heteromap_requests_total counter
heteromap_requests_total 1
`
	return []NodeMetrics{
		{Node: "127.0.0.1:9002", Text: nodeB},
		{Node: "127.0.0.1:9001", Text: nodeA},
		{Node: "127.0.0.1:9003", Err: errors.New("connection refused")},
		{Node: `evil"node`, Text: evil},
	}
}

func TestFederateGolden(t *testing.T) {
	var sb strings.Builder
	FederateMetrics(&sb, federateFixture())
	got := sb.String()

	golden := filepath.Join("testdata", "federation_golden.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("federated exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestFederateMergeRules(t *testing.T) {
	var sb strings.Builder
	FederateMetrics(&sb, federateFixture())
	lines := strings.Split(sb.String(), "\n")
	has := func(line string) bool {
		for _, l := range lines {
			if l == line {
				return true
			}
		}
		return false
	}

	// Counters: cluster sum without node label plus per-node series.
	for _, want := range []string{
		`heteromap_requests_total 251`,
		`heteromap_requests_total{node="127.0.0.1:9001"} 100`,
		`heteromap_requests_total{node="127.0.0.1:9002"} 150`,
		`heteromap_requests_total{node="evil\"node"} 1`,
		`heteromap_model_requests_total{model="na\"ughty"} 12`,
		`heteromap_model_requests_total{node="127.0.0.1:9002",model="tree"} 11`,
	} {
		if !has(want) {
			t.Fatalf("missing %q in:\n%s", want, sb.String())
		}
	}

	// Histograms: buckets, sum and count merged across nodes.
	for _, want := range []string{
		`heteromap_request_duration_seconds_bucket{le="0.005"} 170`,
		`heteromap_request_duration_seconds_bucket{le="+Inf"} 220`,
		`heteromap_request_duration_seconds_sum 1.25`,
		`heteromap_request_duration_seconds_count 220`,
		`heteromap_request_duration_seconds_bucket{node="127.0.0.1:9001",le="+Inf"} 100`,
	} {
		if !has(want) {
			t.Fatalf("missing merged histogram series %q in:\n%s", want, sb.String())
		}
	}

	// Gauges stay per-node: a bare cluster-summed gauge would be a lie.
	if has(`heteromap_queue_depth 8`) {
		t.Fatalf("gauge was cluster-summed:\n%s", sb.String())
	}
	if !has(`heteromap_queue_depth{node="127.0.0.1:9001"} 3`) {
		t.Fatalf("per-node gauge missing:\n%s", sb.String())
	}

	// Untyped exemplar series stay per-node too.
	if !has(`heteromap_request_duration_seconds_exemplar{node="127.0.0.1:9001",trace_id="aa-1"} 0.25`) {
		t.Fatalf("exemplar series lost:\n%s", sb.String())
	}
	if has(`heteromap_request_duration_seconds_exemplar{trace_id="aa-1"} 0.25`) {
		t.Fatalf("exemplar series was cluster-merged:\n%s", sb.String())
	}
}

func TestFederateStaleNodeDegradesGracefully(t *testing.T) {
	var sb strings.Builder
	FederateMetrics(&sb, federateFixture())
	text := sb.String()
	if !strings.Contains(text, `heteromap_federation_stale{node="127.0.0.1:9003"} 1`) {
		t.Fatalf("dead peer lost its stale marker:\n%s", text)
	}
	if !strings.Contains(text, `heteromap_federation_stale{node="127.0.0.1:9001"} 0`) {
		t.Fatalf("healthy peer missing stale=0 coverage marker:\n%s", text)
	}
	if strings.Contains(text, `node="127.0.0.1:9003"} `) && strings.Contains(text, `heteromap_requests_total{node="127.0.0.1:9003"}`) {
		t.Fatalf("dead peer contributed series:\n%s", text)
	}
}
