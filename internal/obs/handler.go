package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// TracesHandler serves the retained traces as JSON, newest first.
// Query parameters: min_us / min_ms (minimum duration), flagged=1 or
// error=1 (only flag-retained traces), model=<name>, limit=<n>.
func (t *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, `{"error":"tracing disabled"}`, http.StatusNotFound)
			return
		}
		var f TraceFilter
		q := r.URL.Query()
		if v := q.Get("min_us"); v != "" {
			us, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, `{"error":"bad min_us"}`, http.StatusBadRequest)
				return
			}
			f.MinDuration = time.Duration(us * 1e3)
		}
		if v := q.Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, `{"error":"bad min_ms"}`, http.StatusBadRequest)
				return
			}
			f.MinDuration = time.Duration(ms * 1e6)
		}
		f.Flagged = q.Get("flagged") == "1" || q.Get("error") == "1"
		f.Model = q.Get("model")
		f.ID = q.Get("id")
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, `{"error":"bad limit"}`, http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		traces := t.ring.Snapshot(f)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Stats    RingStats     `json:"stats"`
			Returned int           `json:"returned"`
			Traces   []TraceRecord `json:"traces"`
		}{t.ring.Stats(), len(traces), traces})
	})
}

// ExplainHandler serves provenance records at prefix+{trace-id}.
func (t *Tracer) ExplainHandler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, `{"error":"tracing disabled"}`, http.StatusNotFound)
			return
		}
		id := strings.TrimPrefix(r.URL.Path, prefix)
		if id == "" || strings.Contains(id, "/") {
			http.Error(w, `{"error":"missing trace id"}`, http.StatusBadRequest)
			return
		}
		recs := t.prov.Get(id)
		if len(recs) == 0 {
			http.Error(w, `{"error":"unknown or evicted trace id"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			TraceID     string       `json:"trace_id"`
			Predictions []Provenance `json:"predictions"`
		}{id, recs})
	})
}

// DebugMux builds the -debug-addr surface: net/http/pprof registered
// manually (the default-mux side effects of importing it blind are
// avoided) plus, when a tracer is given, /debug/traces. Safe with a
// nil tracer — profiling works even with tracing disabled.
func DebugMux(t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if t != nil {
		mux.Handle("/debug/traces", t.TracesHandler())
	}
	return mux
}
