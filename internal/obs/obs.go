// Package obs is the request-scoped observability layer of the predict
// path: lightweight tracing (no external dependencies), tail-based
// sampling into a bounded ring buffer, decision provenance records, and
// the debug/profiling HTTP surface.
//
// The span API is deliberately nil-safe end to end: a nil *Tracer, nil
// *Trace or nil *Span accepts every call and does nothing, so the serve
// and core hot paths are instrumented unconditionally and tracing is
// turned off by simply not installing a tracer. Trace context rides the
// standard context.Context, which the serving pipeline already threads
// through the batcher queue and worker dispatch for deadlines — the
// same propagation carries spans across goroutines.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	mrand "math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Flag marks a trace as interesting for tail-based sampling: a flagged
// trace is always retained, an unflagged one is kept with probability
// Options.SampleRate. Flags accumulate over the trace's lifetime — the
// "tail" part: the decision is made at Finish, when the outcome is known.
type Flag uint32

const (
	// FlagError marks a trace that carried any error.
	FlagError Flag = 1 << iota
	// Flag5xx marks a trace answered with a server-side failure.
	Flag5xx
	// FlagDeadline marks a trace whose deadline expired in the pipeline.
	FlagDeadline
	// FlagHedgeWin marks a trace answered by the hedge target.
	FlagHedgeWin
	// FlagFallback marks a trace whose predictor chain degraded.
	FlagFallback
	// FlagBreaker marks a trace routed by an open circuit breaker.
	FlagBreaker
	// FlagSafeDefault marks a trace answered by the fixed safety default.
	FlagSafeDefault
	// FlagCanaryReject marks a reload trace whose candidate was rejected.
	FlagCanaryReject
	// FlagShed marks a trace shed at admission (queue full).
	FlagShed
	// FlagFailover marks a trace the router answered from a failover
	// rung rather than its primary replica.
	FlagFailover
	// FlagPeerBreaker marks a trace that touched a peer whose circuit
	// breaker was open (the peer was skipped or the forward refused).
	FlagPeerBreaker
)

// Cross-node propagation headers. The router stamps these on every
// forward (primary, hedge, failover) so peers join the caller's trace
// instead of minting their own; serve echoes TraceHeader on responses
// so clients can correlate.
const (
	// TraceHeader carries the trace id across process boundaries.
	TraceHeader = "X-Heteromap-Trace"
	// ParentSpanHeader carries the numeric id of the caller's hop span,
	// so a stitched timeline can parent the peer's root under it.
	ParentSpanHeader = "X-Heteromap-Parent-Span"
	// HopHeader counts forwarding hops; peers reject loops past MaxHops.
	HopHeader = "X-Heteromap-Hop"
	// MaxHops bounds HopHeader: an inbound request deeper than this is
	// served with a fresh trace rather than extending a forwarding loop.
	MaxHops = 8
)

// flagNames renders the set bits for the JSON trace record.
func (f Flag) names() []string {
	var out []string
	for _, fn := range []struct {
		bit  Flag
		name string
	}{
		{FlagError, "error"},
		{Flag5xx, "5xx"},
		{FlagDeadline, "deadline"},
		{FlagHedgeWin, "hedge-win"},
		{FlagFallback, "fallback"},
		{FlagBreaker, "breaker"},
		{FlagSafeDefault, "safe-default"},
		{FlagCanaryReject, "canary-reject"},
		{FlagShed, "shed"},
		{FlagFailover, "failover"},
		{FlagPeerBreaker, "peer-breaker"},
	} {
		if f&fn.bit != 0 {
			out = append(out, fn.name)
		}
	}
	return out
}

// Options size the tracer; zero values select the defaults in
// parentheses.
type Options struct {
	// RingSize bounds the retained completed traces (512).
	RingSize int
	// SampleRate is the probability an unflagged trace survives
	// tail-based sampling (0.1). Flagged traces are always kept.
	// Negative disables sampling of unflagged traces entirely.
	SampleRate float64
	// ProvSize bounds the retained provenance records (4096).
	ProvSize int
	// Seed fixes the sampling RNG (1), making retention deterministic
	// for tests.
	Seed int64
	// Logger is the structured log sink for Log (slog.Default()).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.RingSize <= 0 {
		o.RingSize = 512
	}
	if o.SampleRate == 0 {
		o.SampleRate = 0.1
	}
	if o.SampleRate < 0 {
		o.SampleRate = 0
	}
	if o.ProvSize <= 0 {
		o.ProvSize = 4096
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Tracer creates traces, decides retention and owns the ring buffer and
// provenance store. Methods on a nil Tracer are no-ops, so callers
// instrument unconditionally.
type Tracer struct {
	opts Options
	ring *Ring
	prov *ProvStore

	// idPrefix makes trace ids unique across processes; idSeq across
	// traces within one.
	idPrefix string
	idSeq    atomic.Uint64

	mu  sync.Mutex // guards rng
	rng *mrand.Rand
}

// NewTracer builds a tracer.
func NewTracer(o Options) *Tracer {
	o = o.withDefaults()
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; ids merely
		// lose cross-process uniqueness, which tracing can live with.
		copy(b[:], []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x00})
	}
	return &Tracer{
		opts:     o,
		ring:     NewRing(o.RingSize),
		prov:     NewProvStore(o.ProvSize),
		idPrefix: hex.EncodeToString(b[:]),
		rng:      mrand.New(mrand.NewSource(o.Seed)),
	}
}

// Ring returns the completed-trace ring buffer (nil for a nil tracer).
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// Prov returns the provenance store (nil for a nil tracer).
func (t *Tracer) Prov() *ProvStore {
	if t == nil {
		return nil
	}
	return t.prov
}

// Attr is one key=value span or trace annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed pipeline stage within a trace. Spans are created
// through StartSpan/NewSpan/AddSpan and mutated only via their methods;
// all mutation is serialized on the owning trace's lock so spans may be
// started, annotated and ended from different goroutines (hedged
// dispatch does exactly that).
type Span struct {
	tr      *Trace
	id      int
	parent  int
	name    string
	start   time.Time
	dur     time.Duration
	outcome string // "" until ended; then ok, error, cancelled, shed, ...
	attrs   []Attr
}

// Trace is one request's span tree from ingress to response.
type Trace struct {
	tracer *Tracer
	id     string
	name   string
	start  time.Time

	mu       sync.Mutex
	spans    []*Span
	nextID   int
	flags    Flag
	attrs    []Attr
	finished bool
	root     *Span
}

type ctxKey struct{}

// StartTrace opens a trace named name with a root span of the same name
// and returns a context carrying it. A nil tracer returns the context
// unchanged and a nil trace.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Trace) {
	return t.StartTraceID(ctx, name, "")
}

// StartTraceID opens a trace that adopts the caller-provided id — the
// cross-node propagation entry point: a peer receiving a forwarded
// request joins the router's trace instead of minting a fresh id, so
// /v1/trace/{id} can later stitch both processes' span sets into one
// timeline. An empty id mints one, exactly like StartTrace.
func (t *Tracer) StartTraceID(ctx context.Context, name, id string) (context.Context, *Trace) {
	if t == nil {
		return ctx, nil
	}
	if id == "" || !ValidTraceID(id) {
		id = t.idPrefix + "-" + hexUint(t.idSeq.Add(1))
	}
	tr := &Trace{
		tracer: t,
		id:     id,
		name:   name,
		start:  time.Now(),
	}
	root := &Span{tr: tr, id: 0, parent: -1, name: name, start: tr.start}
	tr.spans = append(tr.spans, root)
	tr.nextID = 1
	tr.root = root
	return context.WithValue(ctx, ctxKey{}, root), tr
}

// ValidTraceID reports whether id is safe to adopt from the wire:
// non-empty, bounded, and limited to the hex-and-dash alphabet our own
// minting uses. Anything else is rejected so a hostile header cannot
// smuggle arbitrary bytes into logs, rings and stitched timelines.
func ValidTraceID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c == '-':
		default:
			return false
		}
	}
	return true
}

// hexUint renders n as lowercase hex without allocation-heavy fmt.
func hexUint(n uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	i := len(b)
	for {
		i--
		b[i] = digits[n&0xf]
		n >>= 4
		if n == 0 {
			break
		}
	}
	return string(b[i:])
}

// ID returns the trace id ("" for nil).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// SetAttr annotates the trace (filterable in /debug/traces).
func (tr *Trace) SetAttr(key, value string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.attrs {
		if tr.attrs[i].Key == key {
			tr.attrs[i].Value = value
			return
		}
	}
	tr.attrs = append(tr.attrs, Attr{key, value})
}

// Attr returns a trace attribute ("" when unset or nil).
func (tr *Trace) Attr(key string) string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.attrs {
		if tr.attrs[i].Key == key {
			return tr.attrs[i].Value
		}
	}
	return ""
}

// Keep flags the trace for unconditional retention at Finish.
func (tr *Trace) Keep(f Flag) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.flags |= f
	tr.mu.Unlock()
}

// Flags returns the accumulated retention flags.
func (tr *Trace) Flags() Flag {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.flags
}

// Finish ends the root span, applies the tail-based sampling decision
// and, when the trace is retained, snapshots it into the ring buffer.
// Finish is idempotent; spans ended after Finish are dropped silently
// (a hedge loser's goroutine may outlive the request).
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	if tr.root.outcome == "" {
		tr.root.dur = time.Since(tr.root.start)
		tr.root.outcome = "ok"
	}
	rec := tr.recordLocked()
	flags := tr.flags
	tr.mu.Unlock()

	t := tr.tracer
	t.ring.observe(flags != 0)
	if flags == 0 && !t.sample() {
		return
	}
	t.ring.add(rec)
}

// sample draws one probabilistic retention decision.
func (t *Tracer) sample() bool {
	if t.opts.SampleRate >= 1 {
		return true
	}
	if t.opts.SampleRate <= 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64() < t.opts.SampleRate
}

// recordLocked snapshots the trace; the caller holds tr.mu.
func (tr *Trace) recordLocked() TraceRecord {
	rec := TraceRecord{
		ID:         tr.id,
		Name:       tr.name,
		Start:      tr.start,
		DurationUS: float64(tr.root.dur.Nanoseconds()) / 1e3,
		Flags:      tr.flags.names(),
		Attrs:      attrMap(tr.attrs),
		Spans:      make([]SpanRecord, 0, len(tr.spans)),
	}
	for _, s := range tr.spans {
		outcome := s.outcome
		dur := s.dur
		if outcome == "" {
			outcome = "unfinished"
			dur = time.Since(s.start)
		}
		rec.Spans = append(rec.Spans, SpanRecord{
			ID:         s.id,
			Parent:     s.parent,
			Name:       s.name,
			OffsetUS:   float64(s.start.Sub(tr.start).Nanoseconds()) / 1e3,
			DurationUS: float64(dur.Nanoseconds()) / 1e3,
			Outcome:    outcome,
			Attrs:      attrMap(s.attrs),
		})
	}
	return rec
}

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// TraceFromContext returns the trace carried by ctx, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	if s, ok := ctx.Value(ctxKey{}).(*Span); ok {
		return s.tr
	}
	return nil
}

// TraceID returns the id of the trace carried by ctx ("" when untraced).
func TraceID(ctx context.Context) string {
	return TraceFromContext(ctx).ID()
}

// KeepTrace flags the trace carried by ctx, if any.
func KeepTrace(ctx context.Context, f Flag) {
	TraceFromContext(ctx).Keep(f)
}

// StartSpan opens a child span under the span carried by ctx and
// returns a context carrying the new span. Untraced contexts pass
// through unchanged with a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := NewSpan(ctx, name)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// NewSpan opens a child span without deriving a context — for stages
// whose end is observed by a different goroutine than continues the
// request (the batcher's queue span).
func NewSpan(ctx context.Context, name string) *Span {
	return newSpanAt(ctx, name, time.Now())
}

func newSpanAt(ctx context.Context, name string, start time.Time) *Span {
	if ctx == nil {
		return nil
	}
	parent, ok := ctx.Value(ctxKey{}).(*Span)
	if !ok || parent == nil {
		return nil
	}
	tr := parent.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.finished {
		return nil
	}
	sp := &Span{tr: tr, id: tr.nextID, parent: parent.id, name: name, start: start}
	tr.nextID++
	tr.spans = append(tr.spans, sp)
	return sp
}

// AddSpan records an already-completed stage (start + duration) under
// the span carried by ctx — how the batcher attributes shared work
// (one inference answering a deduplicated group) to every member's
// trace with the true timings.
func AddSpan(ctx context.Context, name string, start time.Time, d time.Duration, attrs ...Attr) {
	sp := newSpanAt(ctx, name, start)
	if sp == nil {
		return
	}
	tr := sp.tr
	tr.mu.Lock()
	sp.dur = d
	sp.outcome = "ok"
	sp.attrs = append(sp.attrs, attrs...)
	tr.mu.Unlock()
}

// ID returns the span's id within its trace (-1 for nil) — the value a
// forwarding layer puts in ParentSpanHeader so the peer's span set can
// be re-parented under this hop when timelines are stitched.
func (s *Span) ID() int {
	if s == nil {
		return -1
	}
	return s.id
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.tr.mu.Unlock()
}

// End closes the span with outcome "ok" (first close wins).
func (s *Span) End() { s.end("ok") }

// EndErr closes the span with outcome "error" and the error recorded.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetAttr("error", err.Error())
	}
	s.tr.Keep(FlagError)
	s.end("error")
}

// Cancel closes the span with outcome "cancelled" — the hedge race's
// loser.
func (s *Span) Cancel() { s.end("cancelled") }

// EndOutcome closes the span with a caller-chosen outcome ("shed").
func (s *Span) EndOutcome(outcome string) { s.end(outcome) }

func (s *Span) end(outcome string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.outcome == "" {
		s.outcome = outcome
		s.dur = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// Log emits one structured log line with the ctx's trace id attached as
// "trace_id", so logs, metrics and traces correlate on one key. A nil
// tracer drops the line.
func (t *Tracer) Log(ctx context.Context, level slog.Level, msg string, args ...any) {
	if t == nil {
		return
	}
	args = append(args, "trace_id", TraceID(ctx))
	t.opts.Logger.Log(ctx, level, msg, args...)
}
