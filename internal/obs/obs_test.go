package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"heteromap/internal/config"
)

// TestNilSafety pins the contract the hot paths rely on: every call on
// a nil tracer/trace/span is a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, trace := tr.StartTrace(context.Background(), "x")
	if trace != nil {
		t.Fatalf("nil tracer returned a trace")
	}
	trace.SetAttr("k", "v")
	trace.Keep(FlagError)
	trace.Finish()
	if got := trace.ID(); got != "" {
		t.Fatalf("nil trace ID = %q", got)
	}
	ctx2, sp := StartSpan(ctx, "child")
	if sp != nil {
		t.Fatalf("untraced context produced a span")
	}
	if ctx2 != ctx {
		t.Fatalf("untraced StartSpan changed the context")
	}
	sp.SetAttr("k", "v")
	sp.End()
	sp.EndErr(fmt.Errorf("boom"))
	sp.Cancel()
	NewSpan(ctx, "x").End()
	AddSpan(ctx, "x", time.Now(), time.Millisecond)
	if id := TraceID(ctx); id != "" {
		t.Fatalf("untraced TraceID = %q", id)
	}
	KeepTrace(ctx, Flag5xx)
	tr.Log(ctx, slog.LevelError, "dropped")
	if tr.Ring() != nil || tr.Prov() != nil {
		t.Fatalf("nil tracer exposed stores")
	}
	// nil context must behave like an untraced one.
	if TraceFromContext(nil) != nil || NewSpan(nil, "x") != nil {
		t.Fatalf("nil context produced trace state")
	}
}

// TestSpanTree pins ids, parents, attributes and outcomes of a small
// trace as recorded in the ring.
func TestSpanTree(t *testing.T) {
	tr := NewTracer(Options{SampleRate: 1})
	ctx, trace := tr.StartTrace(context.Background(), "predict")
	trace.SetAttr("model", "tree")

	ctx2, a := StartSpan(ctx, "resolve")
	a.SetAttr("key", "BFS|...")
	a.End()
	_, b := StartSpan(ctx2, "registry")
	b.EndErr(fmt.Errorf("no such model"))
	AddSpan(ctx, "cache", time.Now().Add(-time.Millisecond), time.Millisecond, Attr{"hit", "true"})
	trace.Finish()
	trace.Finish() // idempotent

	recs := tr.Ring().Snapshot(TraceFilter{})
	if len(recs) != 1 {
		t.Fatalf("ring holds %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.ID != trace.ID() || rec.Name != "predict" {
		t.Fatalf("record id/name = %q/%q", rec.ID, rec.Name)
	}
	if rec.Attrs["model"] != "tree" {
		t.Fatalf("trace attrs = %v", rec.Attrs)
	}
	if len(rec.Spans) != 4 {
		t.Fatalf("got %d spans, want 4 (root, resolve, registry, cache)", len(rec.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range rec.Spans {
		byName[s.Name] = s
	}
	root := byName["predict"]
	if root.Parent != -1 || root.Outcome != "ok" {
		t.Fatalf("root = %+v", root)
	}
	if byName["resolve"].Parent != root.ID || byName["resolve"].Outcome != "ok" {
		t.Fatalf("resolve = %+v", byName["resolve"])
	}
	// registry was opened under resolve's derived context.
	if byName["registry"].Parent != byName["resolve"].ID {
		t.Fatalf("registry parent = %d, want %d", byName["registry"].Parent, byName["resolve"].ID)
	}
	if byName["registry"].Outcome != "error" || byName["registry"].Attrs["error"] != "no such model" {
		t.Fatalf("registry = %+v", byName["registry"])
	}
	if byName["cache"].Outcome != "ok" || byName["cache"].Attrs["hit"] != "true" {
		t.Fatalf("cache = %+v", byName["cache"])
	}
	// EndErr must have flagged the trace.
	if len(rec.Flags) == 0 || rec.Flags[0] != "error" {
		t.Fatalf("flags = %v", rec.Flags)
	}
}

// TestTailSampling pins the retention policy: flagged traces always
// survive, unflagged ones at the configured rate (deterministic via
// the seeded RNG).
func TestTailSampling(t *testing.T) {
	tr := NewTracer(Options{RingSize: 4096, SampleRate: 0.1, Seed: 7})
	const n = 1000
	for i := 0; i < n; i++ {
		_, trace := tr.StartTrace(context.Background(), "plain")
		trace.Finish()
	}
	for i := 0; i < 10; i++ {
		_, trace := tr.StartTrace(context.Background(), "flagged")
		trace.Keep(FlagHedgeWin)
		trace.Finish()
	}
	stats := tr.Ring().Stats()
	if stats.Finished != n+10 || stats.Flagged != 10 {
		t.Fatalf("stats = %+v", stats)
	}
	flagged := tr.Ring().Snapshot(TraceFilter{Flagged: true})
	if len(flagged) != 10 {
		t.Fatalf("flagged retained %d/10", len(flagged))
	}
	plain := int(stats.Kept) - len(flagged)
	// 1000 draws at p=0.1: anything in [50, 200] is a sane seeded draw;
	// 0 or ~1000 would mean sampling is broken.
	if plain < 50 || plain > 200 {
		t.Fatalf("plain traces retained %d of %d at rate 0.1", plain, n)
	}

	// SampleRate < 0 disables unflagged retention entirely.
	none := NewTracer(Options{SampleRate: -1})
	_, trace := none.StartTrace(context.Background(), "plain")
	trace.Finish()
	_, trace = none.StartTrace(context.Background(), "kept")
	trace.Keep(Flag5xx)
	trace.Finish()
	recs := none.Ring().Snapshot(TraceFilter{})
	if len(recs) != 1 || recs[0].Name != "kept" {
		t.Fatalf("rate<0 retained %v", recs)
	}
}

// TestLogCarriesTraceID pins the log/metric/trace correlation key.
func TestLogCarriesTraceID(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	tr := NewTracer(Options{Logger: logger, SampleRate: 1})
	ctx, trace := tr.StartTrace(context.Background(), "predict")
	tr.Log(ctx, slog.LevelWarn, "fallback", "model", "tree")
	trace.Finish()

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, buf.String())
	}
	if line["trace_id"] != trace.ID() || line["model"] != "tree" || line["msg"] != "fallback" {
		t.Fatalf("log line = %v", line)
	}
}

// TestTracesHandlerFilters exercises the /debug/traces query surface.
func TestTracesHandlerFilters(t *testing.T) {
	tr := NewTracer(Options{SampleRate: 1})
	mk := func(name, model string, flag Flag, dur time.Duration) string {
		_, trace := tr.StartTrace(context.Background(), name)
		trace.SetAttr("model", model)
		if flag != 0 {
			trace.Keep(flag)
		}
		// Backdate the root so duration filters have something to bite.
		trace.root.start = trace.root.start.Add(-dur)
		trace.start = trace.root.start
		trace.Finish()
		return trace.ID()
	}
	slow := mk("predict", "tree", 0, 50*time.Millisecond)
	mk("predict", "tree", 0, time.Millisecond)
	flagged := mk("predict", "nn", Flag5xx, time.Millisecond)

	get := func(query string) (int, map[string]any) {
		req := httptest.NewRequest(http.MethodGet, "/debug/traces"+query, nil)
		w := httptest.NewRecorder()
		tr.TracesHandler().ServeHTTP(w, req)
		var body map[string]any
		if w.Code == http.StatusOK {
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
				t.Fatalf("bad JSON from %s: %v", query, err)
			}
		}
		return w.Code, body
	}

	ids := func(body map[string]any) []string {
		var out []string
		for _, raw := range body["traces"].([]any) {
			out = append(out, raw.(map[string]any)["id"].(string))
		}
		return out
	}

	if code, body := get(""); code != 200 || len(ids(body)) != 3 {
		t.Fatalf("unfiltered: code %d body %v", code, body)
	}
	if _, body := get("?min_ms=10"); len(ids(body)) != 1 || ids(body)[0] != slow {
		t.Fatalf("min_ms filter = %v", ids(body))
	}
	if _, body := get("?flagged=1"); len(ids(body)) != 1 || ids(body)[0] != flagged {
		t.Fatalf("flagged filter = %v", ids(body))
	}
	if _, body := get("?model=nn"); len(ids(body)) != 1 || ids(body)[0] != flagged {
		t.Fatalf("model filter = %v", ids(body))
	}
	if _, body := get("?limit=1"); len(ids(body)) != 1 {
		t.Fatalf("limit filter = %v", ids(body))
	}
	if code, _ := get("?limit=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad limit: code %d", code)
	}
	if code, _ := get("?min_us=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad min_us: code %d", code)
	}

	// Nil tracer: the handler answers 404 rather than panicking.
	var none *Tracer
	req := httptest.NewRequest(http.MethodGet, "/debug/traces", nil)
	w := httptest.NewRecorder()
	none.TracesHandler().ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Fatalf("nil tracer handler: code %d", w.Code)
	}
}

// TestExplainHandlerAndEviction covers /v1/explain resolution and the
// provenance store's bounded FIFO eviction.
func TestExplainHandlerAndEviction(t *testing.T) {
	tr := NewTracer(Options{ProvSize: 4, SampleRate: 1})
	margin := 0.37
	for i := 0; i < 6; i++ {
		tr.Prov().Add(Provenance{
			TraceID:       fmt.Sprintf("t-%d", i),
			Model:         "tree",
			Version:       1,
			PredictorUsed: "dtree",
			DTreePath:     []string{"layer1: large input"},
			NNMargin:      &margin,
			M:             config.M{Accelerator: config.GPU},
			When:          time.Unix(int64(i), 0),
		})
	}
	if got := tr.Prov().Len(); got != 4 {
		t.Fatalf("store holds %d records, want 4", got)
	}
	if tr.Prov().Get("t-0") != nil || tr.Prov().Get("t-1") != nil {
		t.Fatalf("oldest ids not evicted")
	}

	h := tr.ExplainHandler("/v1/explain/")
	req := httptest.NewRequest(http.MethodGet, "/v1/explain/t-5", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("explain: code %d body %s", w.Code, w.Body.String())
	}
	var body struct {
		TraceID     string       `json:"trace_id"`
		Predictions []Provenance `json:"predictions"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("explain JSON: %v", err)
	}
	if body.TraceID != "t-5" || len(body.Predictions) != 1 {
		t.Fatalf("explain body = %+v", body)
	}
	p := body.Predictions[0]
	if p.PredictorUsed != "dtree" || p.M.Accelerator != config.GPU || *p.NNMargin != margin {
		t.Fatalf("provenance = %+v", p)
	}

	for path, want := range map[string]int{
		"/v1/explain/t-0":     http.StatusNotFound,
		"/v1/explain/":        http.StatusBadRequest,
		"/v1/explain/a/b":     http.StatusBadRequest,
		"/v1/explain/unknown": http.StatusNotFound,
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != want {
			t.Fatalf("%s: code %d, want %d", path, w.Code, want)
		}
	}
}

// TestDebugMux pins the pprof wiring behind -debug-addr.
func TestDebugMux(t *testing.T) {
	tr := NewTracer(Options{SampleRate: 1})
	srv := httptest.NewServer(DebugMux(tr))
	defer srv.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/traces"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	// A nil tracer still serves pprof, without /debug/traces.
	bare := httptest.NewServer(DebugMux(nil))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET pprof on bare mux: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bare pprof status %d", resp.StatusCode)
	}
	resp, err = http.Get(bare.URL + "/debug/traces")
	if err != nil {
		t.Fatalf("GET traces on bare mux: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bare traces status %d, want 404", resp.StatusCode)
	}
}

// TestTraceIDUniqueness guards the id scheme across tracers (process
// prefix) and traces (sequence).
func TestTraceIDUniqueness(t *testing.T) {
	a := NewTracer(Options{})
	b := NewTracer(Options{})
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		_, ta := a.StartTrace(context.Background(), "x")
		_, tb := b.StartTrace(context.Background(), "x")
		for _, id := range []string{ta.ID(), tb.ID()} {
			if id == "" || seen[id] {
				t.Fatalf("duplicate or empty trace id %q", id)
			}
			if strings.Contains(id, "\n") || strings.Contains(id, "\"") {
				t.Fatalf("trace id %q not header/JSON safe", id)
			}
			seen[id] = true
		}
	}
}
