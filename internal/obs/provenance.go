package obs

import (
	"sync"
	"time"

	"heteromap/internal/config"
)

// Provenance explains one served prediction after the fact: which
// learner in the fallback chain answered, how it decided (decision-tree
// path or NN margin), the exact M1 + M2–M20 knobs returned, and every
// resilience event that altered the answer. Records are keyed by trace
// id and served from /v1/explain/{trace-id}; a batch request yields one
// record per item under the shared trace id.
type Provenance struct {
	TraceID string `json:"trace_id"`
	Model   string `json:"model"`
	Version uint64 `json:"version"`
	// PredictorUsed is the fallback-chain link that produced the answer
	// (e.g. "nn", "dtree", "default").
	PredictorUsed string `json:"predictor_used"`
	// DTreePath lists the decision-tree branches taken, when the
	// answering link is the tree.
	DTreePath []string `json:"dtree_path,omitempty"`
	// NNMargin is the network's distance from the accelerator decision
	// boundary, when the answering link is the NN.
	NNMargin *float64 `json:"nn_margin,omitempty"`
	// M is the full configuration returned to the client.
	M config.M `json:"m"`
	// Cached reports whether the answer came from the prediction cache
	// (the knobs were computed by an earlier request).
	Cached bool `json:"cached"`
	// Events lists fallback-chain degradations and resilience decisions
	// (hedge, breaker, safe-default) in pipeline order.
	Events []string  `json:"events,omitempty"`
	When   time.Time `json:"when"`
}

// ProvStore holds recent provenance records keyed by trace id, bounded
// by record count with FIFO eviction of whole trace ids (batch items
// under one id are evicted together).
type ProvStore struct {
	mu    sync.Mutex
	max   int
	count int
	byID  map[string][]Provenance
	order []string // trace ids oldest first, one entry per id
}

// NewProvStore builds a store retaining up to max records.
func NewProvStore(max int) *ProvStore {
	if max <= 0 {
		max = 4096
	}
	return &ProvStore{max: max, byID: make(map[string][]Provenance)}
}

// Add retains one record, evicting the oldest trace ids as needed.
// Records without a trace id are dropped (nothing could query them).
func (s *ProvStore) Add(p Provenance) {
	if s == nil || p.TraceID == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[p.TraceID]; !ok {
		s.order = append(s.order, p.TraceID)
	}
	s.byID[p.TraceID] = append(s.byID[p.TraceID], p)
	s.count++
	for s.count > s.max && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		s.count -= len(s.byID[oldest])
		delete(s.byID, oldest)
	}
}

// Get returns the records served under traceID (nil if unknown or
// evicted).
func (s *ProvStore) Get(traceID string) []Provenance {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.byID[traceID]
	if len(recs) == 0 {
		return nil
	}
	out := make([]Provenance, len(recs))
	copy(out, recs)
	return out
}

// Len reports the retained record count.
func (s *ProvStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}
