package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// TraceRecord is the immutable JSON snapshot of a finished, retained
// trace as served by /debug/traces.
type TraceRecord struct {
	ID         string            `json:"id"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationUS float64           `json:"duration_us"`
	Flags      []string          `json:"flags,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Spans      []SpanRecord      `json:"spans"`
}

// SpanRecord is one stage within a TraceRecord. Parent is -1 for the
// root; offsets are relative to the trace start.
type SpanRecord struct {
	ID         int               `json:"id"`
	Parent     int               `json:"parent"`
	Name       string            `json:"name"`
	OffsetUS   float64           `json:"offset_us"`
	DurationUS float64           `json:"duration_us"`
	Outcome    string            `json:"outcome"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Ring is a bounded buffer of retained trace records. Writers overwrite
// the oldest entry once full; Snapshot copies matching records newest
// first, so readers never see a record mid-write.
type Ring struct {
	total   atomic.Uint64 // finished traces, retained or not
	flagged atomic.Uint64 // finished traces that carried a retention flag

	mu   sync.Mutex
	buf  []TraceRecord
	next int
	n    int
	kept uint64
}

// NewRing builds a ring holding up to size records.
func NewRing(size int) *Ring {
	if size <= 0 {
		size = 512
	}
	return &Ring{buf: make([]TraceRecord, size)}
}

// observe counts a finished trace before the sampling decision.
func (r *Ring) observe(flagged bool) {
	if r == nil {
		return
	}
	r.total.Add(1)
	if flagged {
		r.flagged.Add(1)
	}
}

// add retains one record, evicting the oldest when full.
func (r *Ring) add(rec TraceRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.kept++
	r.mu.Unlock()
}

// RingStats summarize retention for the /debug/traces envelope.
type RingStats struct {
	// Finished counts every completed trace, retained or not.
	Finished uint64 `json:"finished"`
	// Flagged counts completed traces that carried a retention flag.
	Flagged uint64 `json:"flagged"`
	// Kept counts traces that survived sampling (>= buffered: the ring
	// overwrites, the counter does not).
	Kept uint64 `json:"kept"`
	// Buffered is how many records the ring currently holds.
	Buffered int `json:"buffered"`
}

// Stats reports retention counters.
func (r *Ring) Stats() RingStats {
	if r == nil {
		return RingStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return RingStats{
		Finished: r.total.Load(),
		Flagged:  r.flagged.Load(),
		Kept:     r.kept,
		Buffered: r.n,
	}
}

// TraceFilter selects records out of the ring; zero fields match
// everything.
type TraceFilter struct {
	// MinDuration drops traces that completed faster than this.
	MinDuration time.Duration
	// Flagged keeps only traces retained by flag (errors, 5xx, hedge
	// wins, ...), i.e. drops the probabilistically sampled rest.
	Flagged bool
	// Model keeps only traces whose "model" attribute equals this.
	Model string
	// ID keeps only the trace with exactly this id — the cross-node
	// stitching fan-out asks every peer's ring for one id.
	ID string
	// Limit caps the returned records (newest first); 0 means all.
	Limit int
}

func (f TraceFilter) match(rec *TraceRecord) bool {
	if f.ID != "" && rec.ID != f.ID {
		return false
	}
	if f.MinDuration > 0 && time.Duration(rec.DurationUS*1e3) < f.MinDuration {
		return false
	}
	if f.Flagged && len(rec.Flags) == 0 {
		return false
	}
	if f.Model != "" && rec.Attrs["model"] != f.Model {
		return false
	}
	return true
}

// Snapshot copies matching records newest first.
func (r *Ring) Snapshot(f TraceFilter) []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, r.n)
	for i := 0; i < r.n; i++ {
		// next-1 is the newest entry; walk backwards.
		idx := (r.next - 1 - i + len(r.buf)*2) % len(r.buf)
		rec := &r.buf[idx]
		if !f.match(rec) {
			continue
		}
		out = append(out, *rec)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}
