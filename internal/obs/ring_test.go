package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRingConcurrent hammers the ring from concurrent producers while
// readers snapshot — run under -race this is the satellite's ring
// safety test.
func TestRingConcurrent(t *testing.T) {
	tr := NewTracer(Options{RingSize: 64, SampleRate: 1})
	var wg sync.WaitGroup
	const producers, perProducer = 8, 200
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				ctx, trace := tr.StartTrace(context.Background(), "t")
				trace.SetAttr("model", fmt.Sprintf("m%d", p))
				_, sp := StartSpan(ctx, "stage")
				sp.End()
				if i%3 == 0 {
					trace.Keep(FlagFallback)
				}
				trace.Finish()
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
			recs := tr.Ring().Snapshot(TraceFilter{Limit: 16})
			for _, r := range recs {
				if r.ID == "" || len(r.Spans) == 0 {
					t.Errorf("torn record: %+v", r)
				}
			}
		}
	}
	stats := tr.Ring().Stats()
	if stats.Finished != producers*perProducer {
		t.Fatalf("finished %d, want %d", stats.Finished, producers*perProducer)
	}
	if stats.Buffered != 64 {
		t.Fatalf("buffered %d, want ring size 64", stats.Buffered)
	}
	if got := len(tr.Ring().Snapshot(TraceFilter{})); got != 64 {
		t.Fatalf("snapshot returned %d records, want 64", got)
	}
}

// TestConcurrentSpansOnOneTrace models hedged dispatch: several
// goroutines open, annotate and close spans on the same trace while
// another finishes it. Spans ended after Finish must be dropped, not
// race.
func TestConcurrentSpansOnOneTrace(t *testing.T) {
	tr := NewTracer(Options{SampleRate: 1})
	for iter := 0; iter < 50; iter++ {
		ctx, trace := tr.StartTrace(context.Background(), "predict")
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				_, sp := StartSpan(ctx, fmt.Sprintf("worker%d", g))
				sp.SetAttr("g", fmt.Sprint(g))
				if g%2 == 0 {
					sp.End()
				} else {
					sp.Cancel()
				}
				// Late span racing Finish: either attached or dropped,
				// never a panic or a torn record.
				NewSpan(ctx, "late").End()
				AddSpan(ctx, "added", time.Now(), time.Microsecond)
			}(g)
		}
		trace.Finish()
		wg.Wait()
	}
	recs := tr.Ring().Snapshot(TraceFilter{})
	if len(recs) != 50 {
		t.Fatalf("retained %d traces, want 50", len(recs))
	}
	for _, r := range recs {
		for _, s := range r.Spans {
			if s.Outcome == "" {
				t.Fatalf("span %q recorded without outcome", s.Name)
			}
		}
	}
}

// TestProvStoreConcurrent exercises Add/Get under contention.
func TestProvStoreConcurrent(t *testing.T) {
	s := NewProvStore(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("t-%d-%d", g, i)
				s.Add(Provenance{TraceID: id, Model: "tree"})
				if got := s.Get(id); len(got) != 1 {
					t.Errorf("Get(%s) = %d records", id, len(got))
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 128 {
		t.Fatalf("store holds %d, want cap 128", s.Len())
	}
}
