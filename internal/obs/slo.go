package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// SLO tracks service-level objectives — availability and p99 latency —
// over paired fast/slow sliding windows and derives Google-SRE-style
// burn rates: how many times faster than sustainable the error budget
// is being spent. An alert is active only while BOTH windows burn above
// the threshold (the multiwindow rule: the slow window proves the
// problem is real, the fast window proves it is still happening), which
// also makes alerts self-clearing once the fast window drains.
//
// All methods are nil-safe, mirroring the tracer: a serve or router
// process without objectives configured holds a nil *SLO and every
// Observe is a no-op.
type SLO struct {
	opts SLOOptions

	mu   sync.Mutex
	fast sloWindow
	slow sloWindow
}

// SLOOptions configure the objectives and windows; zero values select
// the defaults in parentheses.
type SLOOptions struct {
	// Availability is the availability objective, e.g. 0.999 (0.99).
	// The error budget is 1 - Availability.
	Availability float64
	// P99Latency is the latency objective: at most 1% of requests may
	// take longer than this (250ms). Zero keeps the default; negative
	// disables the latency objective.
	P99Latency time.Duration
	// FastWindow is the short burn-rate window (5m).
	FastWindow time.Duration
	// SlowWindow is the long burn-rate window (1h).
	SlowWindow time.Duration
	// AlertThreshold is the burn rate at which the multiwindow alert
	// fires (10): budget being spent ten times faster than sustainable.
	AlertThreshold float64
	// Now overrides the clock for deterministic tests (time.Now).
	Now func() time.Time
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.Availability <= 0 || o.Availability >= 1 {
		o.Availability = 0.99
	}
	if o.P99Latency == 0 {
		o.P99Latency = 250 * time.Millisecond
	}
	if o.FastWindow <= 0 {
		o.FastWindow = 5 * time.Minute
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = time.Hour
	}
	if o.SlowWindow < o.FastWindow {
		o.SlowWindow = o.FastWindow
	}
	if o.AlertThreshold <= 0 {
		o.AlertThreshold = 10
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// p99AllowedFraction is the violation budget of the latency objective:
// "p99 below X" means at most 1% of requests may exceed X.
const p99AllowedFraction = 0.01

// NewSLO builds an SLO tracker.
func NewSLO(o SLOOptions) *SLO {
	o = o.withDefaults()
	s := &SLO{opts: o}
	s.fast.init(o.FastWindow)
	s.slow.init(o.SlowWindow)
	return s
}

// Observe records one served request: whether it counted as available
// (no server-side failure) and how long it took. Cheap and alloc-free —
// a mutex and two array slots — so the serve handler calls it on every
// request.
func (s *SLO) Observe(ok bool, latency time.Duration) {
	if s == nil {
		return
	}
	latViol := latency > s.opts.P99Latency && s.opts.P99Latency > 0
	now := s.opts.Now()
	s.mu.Lock()
	s.fast.observe(now, !ok, latViol)
	s.slow.observe(now, !ok, latViol)
	s.mu.Unlock()
}

// SLOObjective is one objective's status within an SLOSnapshot.
type SLOObjective struct {
	// Name is "availability" or "p99_latency".
	Name string `json:"name"`
	// Objective restates the target: the availability fraction, or the
	// latency bound in seconds.
	Objective float64 `json:"objective"`
	// AllowedFraction is the violation budget (1-availability; 0.01).
	AllowedFraction float64 `json:"allowed_fraction"`
	// FastBurn / SlowBurn are the window burn rates: observed violation
	// rate divided by the allowed rate. 1.0 spends exactly the budget.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// BudgetRemaining is the unspent fraction of the slow-window error
	// budget, clamped to [0, 1].
	BudgetRemaining float64 `json:"budget_remaining"`
	// AlertActive is the multiwindow alert: both burns >= threshold.
	AlertActive bool `json:"alert_active"`
	// Requests / Violations count the slow window.
	Requests   uint64 `json:"requests"`
	Violations uint64 `json:"violations"`
}

// SLOSnapshot is the /v1/slo JSON body.
type SLOSnapshot struct {
	FastWindow     string         `json:"fast_window"`
	SlowWindow     string         `json:"slow_window"`
	AlertThreshold float64        `json:"alert_threshold"`
	Objectives     []SLOObjective `json:"objectives"`
	// Exhausted is true when any objective's budget remaining hit zero
	// — the signal the hedging machinery tightens on.
	Exhausted bool `json:"exhausted"`
	// AlertActive is true when any objective's multiwindow alert fires.
	AlertActive bool `json:"alert_active"`
}

// Snapshot computes the current burn rates and alert states.
func (s *SLO) Snapshot() SLOSnapshot {
	if s == nil {
		return SLOSnapshot{}
	}
	now := s.opts.Now()
	s.mu.Lock()
	fa, fl, ft := s.fast.totals(now)
	sa, sl, st := s.slow.totals(now)
	s.mu.Unlock()

	snap := SLOSnapshot{
		FastWindow:     s.opts.FastWindow.String(),
		SlowWindow:     s.opts.SlowWindow.String(),
		AlertThreshold: s.opts.AlertThreshold,
	}
	snap.Objectives = append(snap.Objectives,
		s.objective("availability", s.opts.Availability, 1-s.opts.Availability, fa, ft, sa, st))
	if s.opts.P99Latency > 0 {
		snap.Objectives = append(snap.Objectives,
			s.objective("p99_latency", s.opts.P99Latency.Seconds(), p99AllowedFraction, fl, ft, sl, st))
	}
	for _, o := range snap.Objectives {
		snap.Exhausted = snap.Exhausted || o.BudgetRemaining <= 0
		snap.AlertActive = snap.AlertActive || o.AlertActive
	}
	return snap
}

func (s *SLO) objective(name string, target, allowed float64, fastViol, fastTotal, slowViol, slowTotal uint64) SLOObjective {
	o := SLOObjective{
		Name:            name,
		Objective:       target,
		AllowedFraction: allowed,
		FastBurn:        burnRate(fastViol, fastTotal, allowed),
		SlowBurn:        burnRate(slowViol, slowTotal, allowed),
		Requests:        slowTotal,
		Violations:      slowViol,
	}
	o.BudgetRemaining = 1 - o.SlowBurn
	if o.BudgetRemaining < 0 {
		o.BudgetRemaining = 0
	}
	o.AlertActive = o.FastBurn >= s.opts.AlertThreshold && o.SlowBurn >= s.opts.AlertThreshold
	return o
}

// burnRate is the observed violation rate over the allowed rate; an
// empty window burns nothing.
func burnRate(viol, total uint64, allowed float64) float64 {
	if total == 0 || allowed <= 0 {
		return 0
	}
	return float64(viol) / float64(total) / allowed
}

// Exhausted reports whether any objective's slow-window error budget is
// fully spent — the "tighten hedging before the floor is breached"
// signal fed to the serve and router layers. Allocation-free so hot
// dispatch paths can ask per request.
func (s *SLO) Exhausted() bool {
	if s == nil {
		return false
	}
	now := s.opts.Now()
	s.mu.Lock()
	availViol, latViol, total := s.slow.totals(now)
	s.mu.Unlock()
	if burnRate(availViol, total, 1-s.opts.Availability) >= 1 {
		return true
	}
	return s.opts.P99Latency > 0 && burnRate(latViol, total, p99AllowedFraction) >= 1
}

// WritePrometheus appends the SLO gauges to a /metrics exposition.
func (s *SLO) WritePrometheus(w io.Writer) {
	if s == nil {
		return
	}
	snap := s.Snapshot()
	fmt.Fprintf(w, "# HELP heteromap_slo_budget_remaining Unspent fraction of the slow-window error budget.\n")
	fmt.Fprintf(w, "# TYPE heteromap_slo_budget_remaining gauge\n")
	for _, o := range snap.Objectives {
		fmt.Fprintf(w, "heteromap_slo_budget_remaining{objective=%q} %g\n", o.Name, o.BudgetRemaining)
	}
	fmt.Fprintf(w, "# HELP heteromap_slo_burn_rate Error-budget burn rate per window (1 = sustainable).\n")
	fmt.Fprintf(w, "# TYPE heteromap_slo_burn_rate gauge\n")
	for _, o := range snap.Objectives {
		fmt.Fprintf(w, "heteromap_slo_burn_rate{objective=%q,window=\"fast\"} %g\n", o.Name, o.FastBurn)
		fmt.Fprintf(w, "heteromap_slo_burn_rate{objective=%q,window=\"slow\"} %g\n", o.Name, o.SlowBurn)
	}
	fmt.Fprintf(w, "# HELP heteromap_slo_alert_active Multiwindow burn-rate alert state (1 = firing).\n")
	fmt.Fprintf(w, "# TYPE heteromap_slo_alert_active gauge\n")
	for _, o := range snap.Objectives {
		v := 0
		if o.AlertActive {
			v = 1
		}
		fmt.Fprintf(w, "heteromap_slo_alert_active{objective=%q} %d\n", o.Name, v)
	}
}

// Handler serves the /v1/slo JSON snapshot.
func (s *SLO) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s == nil {
			http.Error(w, `{"error":"slo tracking disabled"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Snapshot())
	})
}

// sloBucketCount fixes the window resolution: ~3% per bucket.
const sloBucketCount = 32

// sloWindow is one bucketed sliding window. Buckets are addressed by an
// absolute sequence number (now / bucketDur) so rotation is just
// zeroing the buckets skipped since the last touch — no timers.
type sloWindow struct {
	bucketDur time.Duration
	lastSeq   int64
	buckets   [sloBucketCount]sloBucket
}

type sloBucket struct {
	total     uint64
	availViol uint64
	latViol   uint64
}

func (w *sloWindow) init(span time.Duration) {
	w.bucketDur = span / sloBucketCount
	if w.bucketDur <= 0 {
		w.bucketDur = time.Millisecond
	}
	w.lastSeq = -1
}

// advance zeroes buckets between the last touched sequence and now.
func (w *sloWindow) advance(now time.Time) int64 {
	seq := now.UnixNano() / int64(w.bucketDur)
	if w.lastSeq < 0 {
		w.lastSeq = seq
		w.buckets = [sloBucketCount]sloBucket{}
		return seq
	}
	if gap := seq - w.lastSeq; gap > 0 {
		if gap >= sloBucketCount {
			w.buckets = [sloBucketCount]sloBucket{}
		} else {
			for s := w.lastSeq + 1; s <= seq; s++ {
				w.buckets[s%sloBucketCount] = sloBucket{}
			}
		}
		w.lastSeq = seq
	}
	return w.lastSeq
}

func (w *sloWindow) observe(now time.Time, availViol, latViol bool) {
	seq := w.advance(now)
	b := &w.buckets[seq%sloBucketCount]
	b.total++
	if availViol {
		b.availViol++
	}
	if latViol {
		b.latViol++
	}
}

func (w *sloWindow) totals(now time.Time) (availViol, latViol, total uint64) {
	w.advance(now)
	for i := range w.buckets {
		availViol += w.buckets[i].availViol
		latViol += w.buckets[i].latViol
		total += w.buckets[i].total
	}
	return
}
