package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// sloClock is a hand-advanced clock for deterministic window tests.
type sloClock struct{ now time.Time }

func (c *sloClock) Now() time.Time { return c.now }

func newTestSLO(c *sloClock) *SLO {
	return NewSLO(SLOOptions{
		Availability:   0.99,
		P99Latency:     100 * time.Millisecond,
		FastWindow:     32 * time.Second,
		SlowWindow:     320 * time.Second,
		AlertThreshold: 5,
		Now:            c.Now,
	})
}

func objByName(t *testing.T, snap SLOSnapshot, name string) SLOObjective {
	t.Helper()
	for _, o := range snap.Objectives {
		if o.Name == name {
			return o
		}
	}
	t.Fatalf("objective %q missing from snapshot %+v", name, snap)
	return SLOObjective{}
}

func TestSLOHealthyTrafficBurnsNothing(t *testing.T) {
	c := &sloClock{now: time.Unix(1000, 0)}
	s := newTestSLO(c)
	for i := 0; i < 100; i++ {
		s.Observe(true, time.Millisecond)
	}
	snap := s.Snapshot()
	avail := objByName(t, snap, "availability")
	if avail.FastBurn != 0 || avail.SlowBurn != 0 {
		t.Fatalf("healthy traffic burned budget: %+v", avail)
	}
	if avail.BudgetRemaining != 1 {
		t.Fatalf("budget remaining = %v, want 1", avail.BudgetRemaining)
	}
	if snap.AlertActive || snap.Exhausted {
		t.Fatalf("healthy traffic alerted: %+v", snap)
	}
}

func TestSLOStormFiresAndClears(t *testing.T) {
	c := &sloClock{now: time.Unix(1000, 0)}
	s := newTestSLO(c)
	// Calm baseline, then a storm with a 50% failure rate: violation
	// rate 0.25 over a 0.01 budget = burn 25, over the threshold of 5
	// in both windows.
	for i := 0; i < 100; i++ {
		s.Observe(true, time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		s.Observe(i%2 == 0, time.Millisecond)
	}
	snap := s.Snapshot()
	avail := objByName(t, snap, "availability")
	if got, want := avail.SlowBurn, 25.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("slow burn = %v, want %v", got, want)
	}
	if !avail.AlertActive || !snap.AlertActive {
		t.Fatalf("storm did not fire the multiwindow alert: %+v", avail)
	}
	if avail.BudgetRemaining != 0 || !snap.Exhausted {
		t.Fatalf("storm should exhaust the budget: %+v", avail)
	}

	// The fast window drains after the storm: the alert clears even
	// though the slow window still remembers the violations.
	c.now = c.now.Add(40 * time.Second)
	for i := 0; i < 100; i++ {
		s.Observe(true, time.Millisecond)
	}
	snap = s.Snapshot()
	avail = objByName(t, snap, "availability")
	if avail.FastBurn != 0 {
		t.Fatalf("fast window did not drain: %+v", avail)
	}
	if avail.SlowBurn == 0 {
		t.Fatalf("slow window forgot the storm too early: %+v", avail)
	}
	if avail.AlertActive || snap.AlertActive {
		t.Fatalf("alert should clear once the fast window drains: %+v", avail)
	}

	// And the slow window eventually forgets: full budget restored.
	c.now = c.now.Add(400 * time.Second)
	s.Observe(true, time.Millisecond)
	avail = objByName(t, s.Snapshot(), "availability")
	if avail.SlowBurn != 0 || avail.BudgetRemaining != 1 {
		t.Fatalf("slow window did not recover: %+v", avail)
	}
}

func TestSLOLatencyObjective(t *testing.T) {
	c := &sloClock{now: time.Unix(2000, 0)}
	s := newTestSLO(c)
	// 1 slow request in 200 = 0.5% violations against a 1% budget:
	// burn 0.5, half the budget spent, no alert.
	for i := 0; i < 200; i++ {
		lat := time.Millisecond
		if i == 7 {
			lat = 300 * time.Millisecond
		}
		s.Observe(true, lat)
	}
	snap := s.Snapshot()
	p99 := objByName(t, snap, "p99_latency")
	if got, want := p99.SlowBurn, 0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("latency burn = %v, want %v", got, want)
	}
	if got, want := p99.BudgetRemaining, 0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("latency budget remaining = %v, want %v", got, want)
	}
	if p99.AlertActive {
		t.Fatalf("half-spent latency budget must not alert: %+v", p99)
	}
	if avail := objByName(t, snap, "availability"); avail.SlowBurn != 0 {
		t.Fatalf("slow-but-available requests must not burn availability: %+v", avail)
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLO
	s.Observe(true, time.Second)
	if s.Exhausted() {
		t.Fatal("nil SLO reports exhausted")
	}
	if snap := s.Snapshot(); len(snap.Objectives) != 0 {
		t.Fatalf("nil SLO snapshot not empty: %+v", snap)
	}
	var sb strings.Builder
	s.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatalf("nil SLO wrote metrics: %q", sb.String())
	}
}

func TestSLOPrometheusGauges(t *testing.T) {
	c := &sloClock{now: time.Unix(3000, 0)}
	s := newTestSLO(c)
	for i := 0; i < 100; i++ {
		s.Observe(i%2 == 0, time.Millisecond)
	}
	var sb strings.Builder
	s.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		`heteromap_slo_budget_remaining{objective="availability"} 0`,
		`heteromap_slo_burn_rate{objective="availability",window="fast"} `,
		`heteromap_slo_burn_rate{objective="availability",window="slow"} `,
		`heteromap_slo_alert_active{objective="availability"} 1`,
		`heteromap_slo_alert_active{objective="p99_latency"} 0`,
		"# TYPE heteromap_slo_burn_rate gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSLOWindowRotationZeroesStaleBuckets(t *testing.T) {
	c := &sloClock{now: time.Unix(4000, 0)}
	s := newTestSLO(c)
	s.Observe(false, time.Millisecond)
	// A gap far longer than both windows wipes everything.
	c.now = c.now.Add(time.Hour)
	avail := objByName(t, s.Snapshot(), "availability")
	if avail.SlowBurn != 0 || avail.Requests != 0 {
		t.Fatalf("stale buckets survived rotation: %+v", avail)
	}
}
