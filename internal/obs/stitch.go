package obs

import (
	"sort"
	"strconv"
	"strings"
	"time"
)

// NodeTrace is one process's contribution to a stitched timeline: the
// node's address, its retained TraceRecord for the id (nil when the
// node had no record — evicted or never seen), and the scrape error
// when the node could not be asked at all.
type NodeTrace struct {
	Node string
	Rec  *TraceRecord
	Err  error
}

// StitchGap marks a hole in a stitched timeline: a peer the origin
// provably forwarded to whose span set could not be recovered.
type StitchGap struct {
	Node string `json:"node"`
	// Reason is "peer-unreachable" (scrape failed / dead peer),
	// "trace-evicted" (peer answered but its ring no longer holds the
	// id) or "peer-missing" (no scrape was attempted).
	Reason string `json:"reason"`
}

// StitchedSpan is one span of the merged cross-process timeline. IDs
// are namespaced "<node>/<local-id>" so span ids from different
// processes cannot collide; StartUS is the offset from the earliest
// trace start across all contributing processes.
type StitchedSpan struct {
	Node       string            `json:"node"`
	ID         string            `json:"id"`
	Parent     string            `json:"parent,omitempty"`
	Name       string            `json:"name"`
	StartUS    float64           `json:"start_us"`
	DurationUS float64           `json:"duration_us"`
	Outcome    string            `json:"outcome"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// StitchedTimeline is the /v1/trace/{id} response: one causally
// ordered span list across every process the request touched, with
// unrecoverable holes marked explicitly rather than silently absent.
type StitchedTimeline struct {
	TraceID    string         `json:"trace_id"`
	Nodes      []string       `json:"nodes"`
	Flags      []string       `json:"flags,omitempty"`
	DurationUS float64        `json:"duration_us"`
	Gaps       []StitchGap    `json:"gaps,omitempty"`
	Spans      []StitchedSpan `json:"spans"`
}

// Stitch merges per-process trace records into one causally ordered
// timeline. The origin process (the one whose record carries no
// parent_span attribute — the router) anchors the tree; each peer's
// root is re-parented under the origin hop span named by the peer
// record's parent_span attribute, which the router propagated in
// ParentSpanHeader. Spans are emitted parent-before-child and
// children never start before their parent (small negative clock skew
// is clamped and recorded as a skew_adjusted_us attribute). Peers the
// origin forwarded to (peer attributes on its hop spans) that
// contributed nothing become explicit gaps.
func Stitch(traceID string, parts []NodeTrace) StitchedTimeline {
	out := StitchedTimeline{TraceID: traceID}
	sorted := make([]NodeTrace, len(parts))
	copy(sorted, parts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })

	// The origin is the contribution that was not itself forwarded to.
	var origin *NodeTrace
	var globalStart time.Time
	flagSet := map[string]bool{}
	for i := range sorted {
		p := &sorted[i]
		if p.Rec == nil {
			continue
		}
		if globalStart.IsZero() || p.Rec.Start.Before(globalStart) {
			globalStart = p.Rec.Start
		}
		for _, f := range p.Rec.Flags {
			flagSet[f] = true
		}
		if p.Rec.Attrs["parent_span"] == "" && origin == nil {
			origin = p
		}
	}

	spans := map[string]*StitchedSpan{}
	var order []string // insertion order for deterministic child walk
	for i := range sorted {
		p := &sorted[i]
		if p.Rec == nil {
			continue
		}
		out.Nodes = append(out.Nodes, p.Node)
		base := float64(p.Rec.Start.Sub(globalStart).Nanoseconds()) / 1e3
		for _, sr := range p.Rec.Spans {
			id := p.Node + "/" + strconv.Itoa(sr.ID)
			parent := ""
			switch {
			case sr.Parent >= 0:
				parent = p.Node + "/" + strconv.Itoa(sr.Parent)
			case origin != nil && p != origin && p.Rec.Attrs["parent_span"] != "":
				parent = origin.Node + "/" + p.Rec.Attrs["parent_span"]
			}
			spans[id] = &StitchedSpan{
				Node:       p.Node,
				ID:         id,
				Parent:     parent,
				Name:       sr.Name,
				StartUS:    base + sr.OffsetUS,
				DurationUS: sr.DurationUS,
				Outcome:    sr.Outcome,
				Attrs:      sr.Attrs,
			}
			order = append(order, id)
		}
	}

	// Gap detection: every peer the origin's hop spans name must have
	// contributed a record.
	if origin != nil && origin.Rec != nil {
		expected := map[string]bool{}
		for _, sr := range origin.Rec.Spans {
			// Only actual forwards ("forward:*" hop spans) promise a
			// peer-side record; breaker-open and version-skip spans name
			// peers that were deliberately not contacted.
			if peer := sr.Attrs["peer"]; peer != "" && strings.HasPrefix(sr.Name, "forward") {
				expected[peer] = true
			}
		}
		var peers []string
		for peer := range expected {
			peers = append(peers, peer)
		}
		sort.Strings(peers)
		for _, peer := range peers {
			var part *NodeTrace
			for i := range sorted {
				if sorted[i].Node == peer {
					part = &sorted[i]
					break
				}
			}
			switch {
			case part == nil:
				out.Gaps = append(out.Gaps, StitchGap{Node: peer, Reason: "peer-missing"})
			case part.Err != nil:
				out.Gaps = append(out.Gaps, StitchGap{Node: peer, Reason: "peer-unreachable"})
			case part.Rec == nil:
				out.Gaps = append(out.Gaps, StitchGap{Node: peer, Reason: "trace-evicted"})
			}
		}
	}

	// Causal emission: depth-first from the roots in start order, so a
	// parent always precedes its children and siblings order by time.
	children := map[string][]string{}
	var roots []string
	for _, id := range order {
		s := spans[id]
		if s.Parent != "" {
			if _, ok := spans[s.Parent]; ok {
				children[s.Parent] = append(children[s.Parent], id)
				continue
			}
			s.Parent = "" // orphan: parent span not recovered
		}
		roots = append(roots, id)
	}
	byStart := func(ids []string) {
		sort.SliceStable(ids, func(i, j int) bool { return spans[ids[i]].StartUS < spans[ids[j]].StartUS })
	}
	byStart(roots)
	var walk func(id string, floor float64)
	walk = func(id string, floor float64) {
		s := spans[id]
		if s.StartUS < floor {
			skew := floor - s.StartUS
			s.StartUS = floor
			if s.Attrs == nil {
				s.Attrs = map[string]string{}
			}
			s.Attrs["skew_adjusted_us"] = strconv.FormatFloat(skew, 'f', 1, 64)
		}
		out.Spans = append(out.Spans, *s)
		if end := s.StartUS + s.DurationUS; end > out.DurationUS {
			out.DurationUS = end
		}
		kids := children[id]
		byStart(kids)
		for _, kid := range kids {
			walk(kid, s.StartUS)
		}
	}
	for _, root := range roots {
		walk(root, 0)
	}

	for f := range flagSet {
		out.Flags = append(out.Flags, f)
	}
	sort.Strings(out.Flags)
	return out
}
