package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// stitchFixture models a hedged, failed-over request: the router's
// record holds hop spans naming three peers; one peer contributes its
// span set, one is unreachable, one evicted the trace.
func stitchFixture() (string, []NodeTrace) {
	base := time.Unix(5000, 0)
	router := &TraceRecord{
		ID:    "aabbcc-1",
		Name:  "route",
		Start: base,
		Spans: []SpanRecord{
			{ID: 0, Parent: -1, Name: "route", OffsetUS: 0, DurationUS: 1000, Outcome: "ok"},
			{ID: 1, Parent: 0, Name: "forward", OffsetUS: 10, DurationUS: 500, Outcome: "ok",
				Attrs: map[string]string{"peer": "127.0.0.1:9001", "route": "primary"}},
			{ID: 2, Parent: 0, Name: "forward:hedge", OffsetUS: 200, DurationUS: 300, Outcome: "discarded",
				Attrs: map[string]string{"peer": "127.0.0.1:9002"}},
			{ID: 3, Parent: 0, Name: "forward:failover", OffsetUS: 600, DurationUS: 200, Outcome: "ok",
				Attrs: map[string]string{"peer": "127.0.0.1:9003"}},
		},
	}
	peer := &TraceRecord{
		ID:    "aabbcc-1",
		Name:  "predict",
		Start: base.Add(25 * time.Microsecond),
		Attrs: map[string]string{"parent_span": "1", "hop": "1"},
		Spans: []SpanRecord{
			{ID: 0, Parent: -1, Name: "predict", OffsetUS: 0, DurationUS: 400, Outcome: "ok"},
			{ID: 1, Parent: 0, Name: "infer", OffsetUS: 100, DurationUS: 200, Outcome: "ok"},
		},
	}
	parts := []NodeTrace{
		{Node: "127.0.0.1:8100", Rec: router},
		{Node: "127.0.0.1:9001", Rec: peer},
		{Node: "127.0.0.1:9002", Err: errors.New("dead")},
		{Node: "127.0.0.1:9003"}, // answered, but ring evicted the id
	}
	return "aabbcc-1", parts
}

// assertCausal fails unless every span appears after its parent and
// never starts before it.
func assertCausal(t *testing.T, tl StitchedTimeline) {
	t.Helper()
	pos := map[string]int{}
	for i, s := range tl.Spans {
		pos[s.ID] = i
	}
	for i, s := range tl.Spans {
		if s.Parent == "" {
			continue
		}
		pi, ok := pos[s.Parent]
		if !ok {
			t.Fatalf("span %s has unknown parent %s", s.ID, s.Parent)
		}
		if pi >= i {
			t.Fatalf("span %s emitted before its parent %s", s.ID, s.Parent)
		}
		if s.StartUS < tl.Spans[pi].StartUS {
			t.Fatalf("span %s starts at %v before parent %s at %v",
				s.ID, s.StartUS, s.Parent, tl.Spans[pi].StartUS)
		}
	}
}

func TestStitchMergesAcrossProcesses(t *testing.T) {
	id, parts := stitchFixture()
	tl := Stitch(id, parts)

	if tl.TraceID != id {
		t.Fatalf("trace id = %q, want %q", tl.TraceID, id)
	}
	if len(tl.Nodes) != 2 {
		t.Fatalf("nodes = %v, want router + one peer", tl.Nodes)
	}
	if len(tl.Spans) != 6 {
		t.Fatalf("got %d spans, want 6:\n%+v", len(tl.Spans), tl.Spans)
	}
	assertCausal(t, tl)

	// The peer's root is re-parented under the router's forward span.
	var peerRoot *StitchedSpan
	for i := range tl.Spans {
		if tl.Spans[i].ID == "127.0.0.1:9001/0" {
			peerRoot = &tl.Spans[i]
		}
	}
	if peerRoot == nil {
		t.Fatalf("peer root missing: %+v", tl.Spans)
	}
	if peerRoot.Parent != "127.0.0.1:8100/1" {
		t.Fatalf("peer root parent = %q, want the router hop span", peerRoot.Parent)
	}
	// And its clock offset is preserved: 25us after the router start.
	if peerRoot.StartUS != 25 {
		t.Fatalf("peer root start = %v, want 25", peerRoot.StartUS)
	}

	// The discarded hedge hop survives with its outcome.
	found := false
	for _, s := range tl.Spans {
		if s.Name == "forward:hedge" && s.Outcome == "discarded" {
			found = true
		}
	}
	if !found {
		t.Fatalf("discarded hedge span lost: %+v", tl.Spans)
	}
}

func TestStitchMarksGaps(t *testing.T) {
	id, parts := stitchFixture()
	tl := Stitch(id, parts)
	want := map[string]string{
		"127.0.0.1:9002": "peer-unreachable",
		"127.0.0.1:9003": "trace-evicted",
	}
	if len(tl.Gaps) != len(want) {
		t.Fatalf("gaps = %+v, want %v", tl.Gaps, want)
	}
	for _, g := range tl.Gaps {
		if want[g.Node] != g.Reason {
			t.Fatalf("gap %+v, want reason %q", g, want[g.Node])
		}
	}
}

func TestStitchClampsClockSkew(t *testing.T) {
	id, parts := stitchFixture()
	// Skew the peer's clock so its spans appear to start before the
	// router even forwarded: the stitcher must clamp to the parent.
	parts[1].Rec.Start = parts[0].Rec.Start.Add(-50 * time.Microsecond)
	tl := Stitch(id, parts)
	assertCausal(t, tl)
	for _, s := range tl.Spans {
		if s.ID == "127.0.0.1:9001/0" {
			if s.Attrs["skew_adjusted_us"] == "" {
				t.Fatalf("clamped span not annotated: %+v", s)
			}
		}
	}
}

func TestStitchSurvivesMissingOrigin(t *testing.T) {
	id, parts := stitchFixture()
	// The router's own ring evicted the record: peers still render,
	// just without cross-process parenting.
	parts[0].Rec = nil
	tl := Stitch(id, parts)
	if len(tl.Spans) != 2 {
		t.Fatalf("peer spans lost without origin: %+v", tl.Spans)
	}
	assertCausal(t, tl)
	if !strings.HasPrefix(tl.Spans[0].ID, "127.0.0.1:9001/") {
		t.Fatalf("unexpected span order: %+v", tl.Spans)
	}
}
