package online

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"heteromap/internal/config"
	"heteromap/internal/feature"
)

// The outcome codec is the wire format for one collected Outcome, used
// both as the payload of a feedback-WAL record and as the aux blob
// attached to a window-snapshot sample. Framing and integrity are the
// containing format's job (WAL record CRC, container record CRC); this
// layer only lays fields out:
//
//	u8  version (1)
//	u16 len | Key bytes
//	u16 len | Model bytes
//	u16 len | Predictor bytes
//	u8  Probed
//	NumFeatures  f64  Features
//	NumVariables f64  M (normalized against the pair limits)
//	NumVariables f64  BestM (normalized)
//	f64 ChosenCost | f64 BestCost | f64 Gap
//	i64 When (UnixNano)
//
// Configurations are stored normalized — the same encoding the training
// database uses — and decoded with config.FromNormalized, which is exact
// for any M drawn from the enumeration grid. TraceID is deliberately
// dropped: it links to an in-memory trace buffer that does not survive
// the restart the codec exists for.
const outcomeCodecVersion = 1

// maxCodecString bounds each string field; longer values are truncated
// on encode (keys and model names are tens of bytes in practice).
const maxCodecString = 1<<16 - 1

func appendCodecString(b []byte, s string) []byte {
	if len(s) > maxCodecString {
		s = s[:maxCodecString]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendCodecFloats(b []byte, vals []float64) []byte {
	for _, v := range vals {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// encodeOutcome serializes one outcome against the pair limits.
func encodeOutcome(o Outcome, limits config.Limits) []byte {
	b := make([]byte, 0, 512)
	b = append(b, outcomeCodecVersion)
	b = appendCodecString(b, o.Key)
	b = appendCodecString(b, o.Model)
	b = appendCodecString(b, o.Predictor)
	probed := byte(0)
	if o.Probed {
		probed = 1
	}
	b = append(b, probed)
	b = appendCodecFloats(b, o.Features[:])
	m := o.M.Normalize(limits)
	b = appendCodecFloats(b, m[:])
	best := o.BestM.Normalize(limits)
	b = appendCodecFloats(b, best[:])
	b = appendCodecFloats(b, []float64{o.ChosenCost, o.BestCost, o.Gap})
	b = binary.LittleEndian.AppendUint64(b, uint64(o.When.UnixNano()))
	return b
}

type codecReader struct {
	b   []byte
	off int
	err error
}

func (r *codecReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("online: outcome record truncated at byte %d", r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *codecReader) str() string {
	n := r.take(2)
	if r.err != nil {
		return ""
	}
	return string(r.take(int(binary.LittleEndian.Uint16(n))))
}

func (r *codecReader) floats(dst []float64) {
	raw := r.take(8 * len(dst))
	if r.err != nil {
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8 : i*8+8]))
	}
}

// decodeOutcome parses one encoded outcome. Integrity is the framing
// layer's job; this rejects only structural damage (bad version,
// truncation, trailing bytes), which after a CRC pass means a version
// skew, not corruption.
func decodeOutcome(b []byte, limits config.Limits) (Outcome, error) {
	var o Outcome
	if len(b) < 1 {
		return o, fmt.Errorf("online: empty outcome record")
	}
	if b[0] != outcomeCodecVersion {
		return o, fmt.Errorf("online: outcome codec version %d (want %d)", b[0], outcomeCodecVersion)
	}
	r := &codecReader{b: b, off: 1}
	o.Key = r.str()
	o.Model = r.str()
	o.Predictor = r.str()
	if p := r.take(1); r.err == nil {
		o.Probed = p[0] != 0
	}
	var feats [feature.NumFeatures]float64
	r.floats(feats[:])
	o.Features = feature.Vector(feats)
	var m, best [config.NumVariables]float64
	r.floats(m[:])
	r.floats(best[:])
	var costs [3]float64
	r.floats(costs[:])
	raw := r.take(8)
	if r.err != nil {
		return o, r.err
	}
	if r.off != len(b) {
		return o, fmt.Errorf("online: %d trailing bytes after outcome record", len(b)-r.off)
	}
	o.M = config.FromNormalized(m, limits)
	o.BestM = config.FromNormalized(best, limits)
	o.ChosenCost, o.BestCost, o.Gap = costs[0], costs[1], costs[2]
	o.When = time.Unix(0, int64(binary.LittleEndian.Uint64(raw)))
	return o, nil
}
