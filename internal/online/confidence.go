package online

import (
	"heteromap/internal/feature"
	"heteromap/internal/predict"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/predict/nn"
)

// neutralConfidence is the margin assigned to predictors whose geometry
// the package cannot introspect (lookup, regressions, fixed fallback):
// neither trusted nor distrusted a priori; the conformal residual term
// still deflates them when the feedback window says they are wrong.
const neutralConfidence = 0.5

// Assess computes the confidence of one served prediction and decides
// whether it should be re-derived by an exhaustive probe instead.
//
// Confidence is margin / (1 + residual): the served predictor's own
// geometric margin around the decision — how far the characterization
// sits from a decision boundary — deflated by the conformal residual
// quantile of that predictor's recent realized gaps. A predictor that
// is confidently wrong (large margin, large residuals) loses its
// routing privilege just like one that is honestly unsure.
//
// link is the chain predictor that produced the decision (nil is fine:
// fallback labels and unknown links assess at the neutral margin).
func (m *Manager) Assess(link predict.Predictor, f feature.Vector) (confidence float64, probe bool) {
	floor := m.opts.UncertaintyFloor
	if floor <= 0 {
		return 1, false
	}
	margin := neutralConfidence
	name := ""
	if link != nil {
		name = link.Name()
		switch p := link.(type) {
		case *dtree.Tree:
			// Normalize the grid-probe margin into (0, 1].
			margin = p.DecisionMargin(f) / dtree.MaxDecisionMargin
		case *nn.Network:
			// Squash the unbounded M1 output margin into [0, 1).
			v := p.M1Margin(f)
			if v < 0 {
				v = -v
			}
			margin = v / (1 + v)
		}
	}
	confidence = margin / (1 + m.residualQuantile(name))
	return confidence, confidence < floor
}
