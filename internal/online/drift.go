package online

import (
	"sort"
	"sync"
)

// Detector tracks realized-vs-predicted cost gaps per model family and
// per discretized feature cell, and raises a drift signal when a
// family's smoothed gap stays above threshold for a full window of
// consecutive observations. The statistic is the conformance oracle's:
// gap = cost(chosen M)/cost(exhaustive best M) - 1, so "drift" means
// exactly "the live predictor has moved away from what the offline
// conformance suite would accept".
//
// The EWMA seeds from the first observation (not from zero), so a
// workload that arrives already shifted signals after one window rather
// than waiting for the average to climb. Zero-gap feedback keeps the
// EWMA at its floor and can never signal — optimal serving is
// drift-free by construction (property-tested).
type Detector struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; higher reacts faster.
	Alpha float64
	// Threshold is the smoothed-gap level that counts as "over".
	Threshold float64
	// Window is how many consecutive over-threshold observations arm the
	// signal.
	Window int

	mu       sync.Mutex
	families map[string]*familyStats
	cells    map[string]*cellStats
}

// familyStats is the drift state for one model family.
type familyStats struct {
	ewma     float64
	n        uint64
	over     int  // consecutive observations with ewma > threshold
	drifting bool // signal currently armed
	signals  uint64
}

// cellStats accumulates the per-discretized-cell gap picture that the
// drift metrics and the post-promotion acceptance check read.
type cellStats struct {
	n    uint64
	sum  float64
	ewma float64
}

// NewDetector builds a detector; non-positive parameters take the
// package defaults.
func NewDetector(alpha, threshold float64, window int) *Detector {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultDriftAlpha
	}
	if threshold <= 0 {
		threshold = DefaultDriftThreshold
	}
	if window <= 0 {
		window = DefaultDriftWindow
	}
	return &Detector{
		Alpha:     alpha,
		Threshold: threshold,
		Window:    window,
		families:  make(map[string]*familyStats),
		cells:     make(map[string]*cellStats),
	}
}

// Observe feeds one realized gap for a model family and feature cell.
// It returns true on the rising edge of the family's drift signal.
func (d *Detector) Observe(model, cell string, gap float64) bool {
	if gap < 0 {
		gap = 0 // the exhaustive best bounds realizable cost from below
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	cs := d.cells[cell]
	if cs == nil {
		cs = &cellStats{ewma: gap}
		d.cells[cell] = cs
	} else {
		cs.ewma += d.Alpha * (gap - cs.ewma)
	}
	cs.n++
	cs.sum += gap

	fs := d.families[model]
	if fs == nil {
		fs = &familyStats{ewma: gap}
		d.families[model] = fs
	} else {
		fs.ewma += d.Alpha * (gap - fs.ewma)
	}
	fs.n++

	rising := false
	switch {
	case fs.ewma > d.Threshold:
		fs.over++
		if fs.over >= d.Window && !fs.drifting {
			fs.drifting = true
			fs.signals++
			rising = true
		}
	case fs.ewma < d.Threshold/2:
		// Hysteresis: only a clearly-recovered EWMA disarms, so the
		// signal doesn't chatter around the threshold.
		fs.over = 0
		fs.drifting = false
	default:
		fs.over = 0
	}
	return rising
}

// Drifting reports whether a family's signal is currently armed.
func (d *Detector) Drifting(model string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	fs := d.families[model]
	return fs != nil && fs.drifting
}

// DriftingFamilies returns the families whose signal is armed.
func (d *Detector) DriftingFamilies() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for name, fs := range d.families {
		if fs.drifting {
			out = append(out, name)
		}
	}
	return out
}

// EWMA returns a family's smoothed gap (0 if never observed).
func (d *Detector) EWMA(model string) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if fs := d.families[model]; fs != nil {
		return fs.ewma
	}
	return 0
}

// Signals returns how many times a family's drift signal has risen.
func (d *Detector) Signals(model string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if fs := d.families[model]; fs != nil {
		return fs.signals
	}
	return 0
}

// ClearSignal disarms a family's signal and resets its streak. The
// manager calls this after every retrain attempt — promoted or rejected
// — so one drift episode triggers one retrain, not a hot loop; fresh
// over-threshold evidence must accumulate for a full window to re-arm.
func (d *Detector) ClearSignal(model string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if fs := d.families[model]; fs != nil {
		fs.drifting = false
		fs.over = 0
	}
}

// CellGap reports a cell's observation count, mean gap, and smoothed
// gap.
func (d *Detector) CellGap(cell string) (n uint64, mean, ewma float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cs := d.cells[cell]
	if cs == nil || cs.n == 0 {
		return 0, 0, 0
	}
	return cs.n, cs.sum / float64(cs.n), cs.ewma
}

// Cells reports how many distinct feature cells have been observed.
func (d *Detector) Cells() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.cells)
}

// ResetCells drops the per-cell statistics (the manager does this after
// a promotion so post-promotion cell gaps measure the new model alone).
func (d *Detector) ResetCells() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cells = make(map[string]*cellStats)
}

// familySnapshot is one family's exported drift state.
type familySnapshot struct {
	Model    string  `json:"model"`
	EWMA     float64 `json:"ewma"`
	N        uint64  `json:"observations"`
	Over     int     `json:"over_streak"`
	Drifting bool    `json:"drifting"`
	Signals  uint64  `json:"signals"`
}

// familySnapshots copies every family's state for metrics and /v1/online.
func (d *Detector) familySnapshots() []familySnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]familySnapshot, 0, len(d.families))
	for name, fs := range d.families {
		out = append(out, familySnapshot{
			Model: name, EWMA: fs.ewma, N: fs.n,
			Over: fs.over, Drifting: fs.drifting, Signals: fs.signals,
		})
	}
	return out
}

// cellSnapshot is one discretized cell's exported gap statistics.
type cellSnapshot struct {
	Cell string  `json:"cell"`
	N    uint64  `json:"observations"`
	Sum  float64 `json:"gap_sum"`
	EWMA float64 `json:"ewma"`
}

// detectorState is the detector's full serializable state, embedded in
// the durable window snapshot so drift evidence survives a restart.
// Both slices are sorted by key, so equal states marshal identically —
// the equivalence the warm-restart tests assert.
type detectorState struct {
	Families []familySnapshot `json:"families"`
	Cells    []cellSnapshot   `json:"cells"`
}

// state exports the detector for a snapshot.
func (d *Detector) state() detectorState {
	st := detectorState{Families: d.familySnapshots()}
	sort.Slice(st.Families, func(i, j int) bool { return st.Families[i].Model < st.Families[j].Model })
	d.mu.Lock()
	st.Cells = make([]cellSnapshot, 0, len(d.cells))
	for cell, cs := range d.cells {
		st.Cells = append(st.Cells, cellSnapshot{Cell: cell, N: cs.n, Sum: cs.sum, EWMA: cs.ewma})
	}
	d.mu.Unlock()
	sort.Slice(st.Cells, func(i, j int) bool { return st.Cells[i].Cell < st.Cells[j].Cell })
	return st
}

// restore replaces the detector's state with a snapshot's. Observations
// replayed from the WAL afterwards continue the statistics exactly as
// if the process had never died.
func (d *Detector) restore(st detectorState) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.families = make(map[string]*familyStats, len(st.Families))
	for _, f := range st.Families {
		d.families[f.Model] = &familyStats{
			ewma: f.EWMA, n: f.N, over: f.Over, drifting: f.Drifting, signals: f.Signals,
		}
	}
	d.cells = make(map[string]*cellStats, len(st.Cells))
	for _, c := range st.Cells {
		d.cells[c.Cell] = &cellStats{n: c.N, sum: c.Sum, ewma: c.EWMA}
	}
}
