package online

import (
	"math"
	"math/rand"
	"testing"
)

// TestDetectorGoldenEWMA pins the exact EWMA trajectory for alpha=0.5
// on a fixed gap sequence. With seeding-from-first-observation the
// closed form is hand-checkable: e_1 = g_1, e_k = e_{k-1} + 0.5*(g_k -
// e_{k-1}).
func TestDetectorGoldenEWMA(t *testing.T) {
	d := NewDetector(0.5, 0.25, 3)
	gaps := []float64{0.8, 0.4, 0.2, 0.0, 0.0, 0.0}
	// Hand-computed: 0.8, 0.6, 0.4, 0.2, 0.1, 0.05.
	want := []float64{0.8, 0.6, 0.4, 0.2, 0.1, 0.05}
	for i, g := range gaps {
		d.Observe("tree", "cell", g)
		if got := d.EWMA("tree"); math.Abs(got-want[i]) > 1e-12 {
			t.Fatalf("after gap %d: ewma = %v, want %v", i+1, got, want[i])
		}
	}
	// The first three observations all kept the EWMA above 0.25, so the
	// window=3 signal rose exactly once...
	if got := d.Signals("tree"); got != 1 {
		t.Fatalf("signals = %d, want 1", got)
	}
	// ...and the decay through 0.125 (< threshold/2) disarmed it.
	if d.Drifting("tree") {
		t.Fatal("signal still armed after recovery below hysteresis floor")
	}
}

// TestDetectorSignalsAfterWindow checks the arming rule precisely: the
// signal rises on the Window-th consecutive over-threshold observation,
// not before.
func TestDetectorSignalsAfterWindow(t *testing.T) {
	d := NewDetector(0.5, 0.25, 4)
	for i := 0; i < 3; i++ {
		if rising := d.Observe("tree", "cell", 1.0); rising {
			t.Fatalf("signal rose on observation %d, want only on 4", i+1)
		}
	}
	if !d.Observe("tree", "cell", 1.0) {
		t.Fatal("signal did not rise on the 4th over-threshold observation")
	}
	if !d.Drifting("tree") {
		t.Fatal("family not drifting after rising edge")
	}
	// A second episode needs ClearSignal plus a fresh full window.
	d.ClearSignal("tree")
	if d.Drifting("tree") {
		t.Fatal("ClearSignal left the signal armed")
	}
	for i := 0; i < 3; i++ {
		d.Observe("tree", "cell", 1.0)
	}
	if d.Drifting("tree") {
		t.Fatal("signal re-armed before a fresh full window")
	}
	d.Observe("tree", "cell", 1.0)
	if !d.Drifting("tree") || d.Signals("tree") != 2 {
		t.Fatalf("second episode: drifting=%v signals=%d, want true/2",
			d.Drifting("tree"), d.Signals("tree"))
	}
}

// TestZeroErrorNeverDrifts is the property the loop's safety rests on:
// a predictor that always serves the exhaustive optimum (gap 0) must
// never signal drift, for any detector parameterization.
func TestZeroErrorNeverDrifts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		alpha := 0.05 + 0.95*rng.Float64()
		threshold := 0.01 + rng.Float64()
		window := 1 + rng.Intn(32)
		d := NewDetector(alpha, threshold, window)
		n := 100 + rng.Intn(400)
		for i := 0; i < n; i++ {
			if d.Observe("m", "c", 0) {
				t.Fatalf("trial %d (alpha=%v threshold=%v window=%d): zero-gap feedback signalled drift",
					trial, alpha, threshold, window)
			}
		}
		if d.Drifting("m") || d.Signals("m") != 0 || d.EWMA("m") != 0 {
			t.Fatalf("trial %d: drift state polluted by zero-gap feedback", trial)
		}
	}
}

// Negative gaps are clamped (the exhaustive best is a lower bound, so a
// negative gap can only be numeric noise) and must not disarm progress.
func TestDetectorClampsNegativeGaps(t *testing.T) {
	d := NewDetector(0.5, 0.25, 2)
	d.Observe("m", "c", -3)
	if got := d.EWMA("m"); got != 0 {
		t.Fatalf("ewma after negative gap = %v, want 0", got)
	}
}

func TestDetectorCellStats(t *testing.T) {
	d := NewDetector(0.5, 0.25, 4)
	d.Observe("m", "a", 0.2)
	d.Observe("m", "a", 0.4)
	d.Observe("m", "b", 1.0)
	n, mean, ewma := d.CellGap("a")
	if n != 2 || math.Abs(mean-0.3) > 1e-12 || math.Abs(ewma-0.3) > 1e-12 {
		t.Fatalf("cell a: n=%d mean=%v ewma=%v, want 2/0.3/0.3", n, mean, ewma)
	}
	if d.Cells() != 2 {
		t.Fatalf("cells = %d, want 2", d.Cells())
	}
	d.ResetCells()
	if d.Cells() != 0 {
		t.Fatal("ResetCells left cells behind")
	}
	// Family stats survive a cell reset.
	if d.EWMA("m") == 0 {
		t.Fatal("family stats lost on cell reset")
	}
}
