package online

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"heteromap/internal/config"
	"heteromap/internal/durable"
	"heteromap/internal/train"
)

// Durability layout under Options.DurableDir:
//
//	<dir>/window.snap   container (kind "online-window"): record 0 is
//	                    snapshotMeta JSON, records 1..n are encoded
//	                    outcomes, oldest first
//	<dir>/wal/          feedback write-ahead log segments
//
// The recovery ladder in recoverDurable runs strictly in order: sweep
// stale temps, restore the newest snapshot (quarantining it on any
// integrity failure), replay the WAL above the snapshot's sequence
// floor, then open a fresh WAL segment for new appends. Every rung
// degrades to the one below it — a corrupt snapshot costs the window
// prefix the WAL no longer covers, never the process.
const (
	snapshotKind = "online-window"
	snapshotFile = "window.snap"
	walSubdir    = "wal"
)

// snapshotMeta is record 0 of a window snapshot.
type snapshotMeta struct {
	// LastSeq is the WAL sequence number the snapshot covers: replay
	// resumes strictly above it.
	LastSeq uint64 `json:"last_seq"`
	// Drift is the detector state at snapshot time.
	Drift detectorState `json:"drift"`
	// Processed carries the collector's lifetime outcome count across
	// restarts, so the counter stays monotone over a crash.
	Processed uint64 `json:"processed"`
}

// DurableStats is the durability picture exposed at /v1/online and in
// the Prometheus exposition.
type DurableStats struct {
	Enabled bool `json:"enabled"`
	// SnapshotRestored reports whether startup restored a window snapshot.
	SnapshotRestored bool `json:"snapshot_restored"`
	// Replayed / Skipped / CorruptRecords / TornSegments summarize the
	// startup WAL replay.
	Replayed       int `json:"wal_replayed"`
	Skipped        int `json:"wal_skipped"`
	CorruptRecords int `json:"wal_corrupt_records"`
	TornSegments   int `json:"wal_torn_segments"`
	// DecodeErrors counts CRC-valid records the codec rejected (version
	// skew) at replay.
	DecodeErrors int `json:"wal_decode_errors"`
	// LastSeq is the WAL's current last appended sequence number.
	LastSeq uint64 `json:"wal_last_seq"`
	// AppendErrors counts failed WAL appends since start.
	AppendErrors uint64 `json:"wal_append_errors"`
	// Snapshots counts successful durable snapshots since start;
	// SnapshotErrors counts failed attempts.
	Snapshots      uint64 `json:"snapshots"`
	SnapshotErrors uint64 `json:"snapshot_errors"`
	// SegmentsGCd counts WAL segments deleted by post-snapshot GC.
	SegmentsGCd uint64 `json:"wal_segments_gcd"`
	// Quarantines counts artifacts moved aside for failing verification.
	Quarantines uint64 `json:"quarantines"`
	// StaleTemps counts orphaned temp files swept at startup.
	StaleTemps int `json:"stale_temps_removed"`
	// WindowFlushes counts periodic SaveWindow flushes; FlushErrors
	// counts failed ones (an empty window is not an error).
	WindowFlushes uint64 `json:"window_flushes"`
	FlushErrors   uint64 `json:"flush_errors"`
}

// durableState is the manager's durability bookkeeping. The WAL handle
// is set once at construction; the stats are mutated from the collector
// tick and read from the metrics path, so they live under their own
// mutex.
type durableState struct {
	wal *durable.WAL

	mu          sync.Mutex
	stats       DurableStats
	ticks       uint64 // collector ticks since start (snapshot cadence)
	snapshotSeq uint64 // WAL floor covered by the latest durable snapshot
}

// recoverDurable climbs the recovery ladder. Called from New before the
// manager is shared; errors degrade state, never fail construction.
func (m *Manager) recoverDurable() {
	dir := m.opts.DurableDir
	if dir == "" {
		return
	}
	walDir := filepath.Join(dir, walSubdir)
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		m.trace("durable dir unavailable, running volatile", "dir", dir, "err", err.Error())
		return
	}
	m.dur.stats.Enabled = true
	m.dur.stats.StaleTemps = durable.RemoveStaleTemps(dir) + durable.RemoveStaleTemps(walDir)

	// Rung 1: restore the window snapshot, quarantining on any failure.
	var floor uint64
	snapPath := filepath.Join(dir, snapshotFile)
	if recs, err := durable.ReadContainer(snapPath, snapshotKind); err == nil && len(recs) >= 1 {
		var meta snapshotMeta
		if jerr := json.Unmarshal(recs[0], &meta); jerr == nil {
			floor = meta.LastSeq
			m.drift.restore(meta.Drift)
			m.processed.Store(meta.Processed)
			for _, rec := range recs[1:] {
				o, derr := decodeOutcome(rec, m.limits)
				if derr != nil {
					m.dur.stats.DecodeErrors++
					continue
				}
				m.window.Add(o)
			}
			m.dur.stats.SnapshotRestored = true
		} else {
			m.quarantine(snapPath)
		}
	} else if err != nil && !os.IsNotExist(err) {
		m.quarantine(snapPath)
	}
	m.dur.snapshotSeq = floor

	// Rung 2: replay the feedback WAL above the snapshot's floor.
	stats, err := durable.ReplayWAL(walDir, floor, func(seq uint64, payload []byte) error {
		o, derr := decodeOutcome(payload, m.limits)
		if derr != nil {
			m.dur.stats.DecodeErrors++
			return nil
		}
		m.window.Add(o)
		m.drift.Observe(o.Model, o.Key, o.Gap)
		m.processed.Add(1)
		return nil
	})
	if err != nil {
		m.trace("wal replay failed", "dir", walDir, "err", err.Error())
	}
	m.dur.stats.Replayed = stats.Replayed
	m.dur.stats.Skipped = stats.Skipped
	m.dur.stats.CorruptRecords = stats.Corrupt
	m.dur.stats.TornSegments = stats.Torn

	// Rung 3: open a fresh WAL segment for new appends.
	w, err := durable.OpenWAL(durable.WALOptions{
		Dir:          walDir,
		SegmentBytes: m.opts.WALSegmentBytes,
		Target:       "wal",
		Kill:         m.opts.Kill,
	})
	if err != nil {
		m.trace("wal open failed, running volatile", "dir", walDir, "err", err.Error())
		m.dur.stats.Enabled = false
		return
	}
	m.dur.wal = w
	m.dur.stats.LastSeq = w.LastSeq()
	if m.window.Len() > 0 {
		m.refreshResiduals()
	}
	m.trace("durable state recovered",
		"snapshot", m.dur.stats.SnapshotRestored,
		"replayed", stats.Replayed, "corrupt", stats.Corrupt, "torn", stats.Torn,
		"window", m.window.Len())
}

func (m *Manager) quarantine(path string) {
	if to, err := durable.QuarantineFile(path); err == nil {
		m.dur.mu.Lock()
		m.dur.stats.Quarantines++
		m.dur.mu.Unlock()
		m.trace("artifact quarantined", "from", path, "to", to)
	}
}

// journal appends one collected outcome to the feedback WAL (collector
// tick only). Failures are counted, never fatal: the journal is a
// durability upgrade, not a serve-path dependency.
func (m *Manager) journal(o Outcome) {
	if m.dur.wal == nil {
		return
	}
	seq, err := m.dur.wal.Append(encodeOutcome(o, m.limits))
	m.dur.mu.Lock()
	defer m.dur.mu.Unlock()
	if err != nil {
		m.dur.stats.AppendErrors++
		return
	}
	m.dur.stats.LastSeq = seq
}

// sealBatch syncs the WAL at a tick boundary and takes the periodic
// durable snapshot when the cadence comes due.
func (m *Manager) sealBatch(appended int) {
	if m.dur.wal == nil {
		return
	}
	if appended > 0 {
		m.dur.wal.Sync()
	}
	m.dur.mu.Lock()
	m.dur.ticks++
	due := m.opts.SnapshotTicks > 0 && m.dur.ticks%uint64(m.opts.SnapshotTicks) == 0
	m.dur.mu.Unlock()
	if due {
		m.snapshotDurable()
	}
}

// snapshotDurable persists the window and drift state as one sealed
// container, then GCs WAL segments the snapshot fully covers. Crash
// safety comes from the container's atomic write: a kill mid-snapshot
// leaves the previous snapshot untouched and the WAL intact, so the
// ladder recovers the identical state.
func (m *Manager) snapshotDurable() error {
	if m.dur.wal == nil {
		return fmt.Errorf("online: durability disabled")
	}
	// Floor before window: an outcome is window.Add'ed before it is
	// journaled, so every record at or below this floor is already in the
	// snapshot we are about to take — replay can never lose an outcome.
	// (A concurrent tick can at worst duplicate one post-floor outcome.)
	lastSeq := m.dur.wal.LastSeq()
	outs := m.window.Snapshot()
	meta := snapshotMeta{
		LastSeq:   lastSeq,
		Drift:     m.drift.state(),
		Processed: m.processed.Load(),
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		m.snapshotFailed()
		return err
	}
	recs := make([][]byte, 0, len(outs)+1)
	recs = append(recs, metaJSON)
	for _, o := range outs {
		recs = append(recs, encodeOutcome(o, m.limits))
	}
	path := filepath.Join(m.opts.DurableDir, snapshotFile)
	if err := durable.WriteContainer(path, snapshotKind, recs, "snapshot", m.opts.Kill); err != nil {
		m.snapshotFailed()
		return err
	}
	removed, _ := m.dur.wal.TruncateThrough(lastSeq)
	m.dur.mu.Lock()
	m.dur.stats.Snapshots++
	m.dur.snapshotSeq = lastSeq
	m.dur.stats.SegmentsGCd += uint64(removed)
	m.dur.mu.Unlock()
	return nil
}

func (m *Manager) snapshotFailed() {
	m.dur.mu.Lock()
	m.dur.stats.SnapshotErrors++
	m.dur.mu.Unlock()
}

// SnapshotNow forces a durable snapshot outside the tick cadence
// (operator surface and tests).
func (m *Manager) SnapshotNow() error {
	return m.snapshotDurable()
}

// DurableStats returns the current durability picture.
func (m *Manager) DurableStats() DurableStats {
	m.dur.mu.Lock()
	s := m.dur.stats
	m.dur.mu.Unlock()
	if m.dur.wal != nil {
		s.LastSeq = m.dur.wal.LastSeq()
	}
	return s
}

// Close takes a final durable snapshot and closes the WAL — the clean
// half of crash-only shutdown (the dirty half is just dying; the ladder
// covers it). Stop the collector first.
func (m *Manager) Close() error {
	m.Stop()
	if m.dur.wal == nil {
		return nil
	}
	var errSnap error
	if m.window.Len() > 0 {
		errSnap = m.snapshotDurable()
	}
	if err := m.dur.wal.Close(); err != nil && errSnap == nil {
		errSnap = err
	}
	return errSnap
}

// FlushWindow persists the feedback window to path as a training
// database with full outcomes attached as aux blobs — readable by every
// aux-blind train.LoadDB consumer and reloadable into an equivalent
// drift state by LoadWindowFile. An empty window is a no-op.
func (m *Manager) FlushWindow(path string) error {
	outs := m.window.Snapshot()
	if len(outs) == 0 {
		return nil
	}
	db := windowDB(m.opts.Pair, m.opts.Objective, outs)
	aux := make([][]byte, len(outs))
	for i, o := range outs {
		aux[i] = encodeOutcome(o, m.limits)
	}
	err := db.SaveFileAux(path, aux, m.opts.Kill)
	m.dur.mu.Lock()
	if err != nil {
		m.dur.stats.FlushErrors++
	} else {
		m.dur.stats.WindowFlushes++
	}
	m.dur.mu.Unlock()
	return err
}

// LoadWindowFile reads a FlushWindow (or SaveWindow) artifact back into
// outcomes. Samples without an aux blob — a file written by plain
// hmtrain, say — decode to nothing; only genuine window flushes carry
// outcomes.
func LoadWindowFile(path string, limits config.Limits) ([]Outcome, error) {
	_, aux, err := train.LoadDBAuxFile(path)
	if err != nil {
		return nil, err
	}
	var outs []Outcome
	for _, rec := range aux {
		if len(rec) == 0 {
			continue
		}
		o, err := decodeOutcome(rec, limits)
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// AdoptOutcomes feeds recovered outcomes through the window and drift
// detector in order — the warm-import path for a flushed window file.
func (m *Manager) AdoptOutcomes(outs []Outcome) {
	for _, o := range outs {
		m.window.Add(o)
		m.drift.Observe(o.Model, o.Key, o.Gap)
	}
	if len(outs) > 0 {
		m.refreshResiduals()
	}
}
