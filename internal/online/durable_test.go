package online

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"heteromap/internal/durable"
	"heteromap/internal/machine"
	"heteromap/internal/train"
)

func newDurableManager(t *testing.T, dir string, kill durable.KillFunc) *Manager {
	t.Helper()
	return New(Options{
		Pair:           machine.PrimaryPair(),
		Model:          "tree",
		DriftAlpha:     0.5,
		DriftThreshold: 0.25,
		DriftWindow:    4,
		DurableDir:     dir,
		SnapshotTicks:  1 << 30, // snapshots only when a test asks
		Kill:           kill,
	})
}

func TestOutcomeCodecRoundTrip(t *testing.T) {
	m := newTestManager(t)
	cells := badCells(t, m, 4)
	feedGPU(m, cells, "FixedChoice")
	m.Tick()
	for i, o := range m.FeedbackWindow().Snapshot() {
		enc := encodeOutcome(o, m.limits)
		got, err := decodeOutcome(enc, m.limits)
		if err != nil {
			t.Fatalf("outcome %d failed decode: %v", i, err)
		}
		if got.Key != o.Key || got.Model != o.Model || got.Predictor != o.Predictor ||
			got.Probed != o.Probed || got.Features != o.Features ||
			got.ChosenCost != o.ChosenCost || got.BestCost != o.BestCost || got.Gap != o.Gap {
			t.Fatalf("outcome %d fields changed across codec round trip", i)
		}
		if got.When.UnixNano() != o.When.UnixNano() {
			t.Fatalf("outcome %d timestamp changed across codec round trip", i)
		}
		// Configurations decode via FromNormalized, which clamps to the
		// pair limits — a projection. From the first round trip on the
		// record is a fixed point: snapshot -> replay -> snapshot cycles
		// never walk the bytes.
		enc2 := encodeOutcome(got, m.limits)
		got2, err := decodeOutcome(enc2, m.limits)
		if err != nil {
			t.Fatalf("outcome %d failed second decode: %v", i, err)
		}
		if !bytes.Equal(encodeOutcome(got2, m.limits), enc2) {
			t.Fatalf("outcome %d codec is not a projection: bytes still drifting", i)
		}
		// Structural damage is rejected.
		if _, err := decodeOutcome(enc[:len(enc)-1], m.limits); err == nil {
			t.Fatal("truncated outcome record accepted")
		}
		if _, err := decodeOutcome(append(append([]byte(nil), enc...), 0), m.limits); err == nil {
			t.Fatal("trailing garbage after outcome record accepted")
		}
	}
}

// TestCrashRecoveryReplaysWAL: a manager that dies without any shutdown
// courtesy — no snapshot, no Close — comes back with its window and
// drift state rebuilt record-for-record from the feedback WAL.
func TestCrashRecoveryReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	m := newDurableManager(t, dir, nil)
	cells := badCells(t, m, 12)
	feedGPU(m, cells, "FixedChoice")
	m.Tick()
	wantOuts := m.FeedbackWindow().Snapshot()
	wantDrift := m.drift.state()
	// Simulated kill -9: the manager is simply abandoned.

	m2 := newDurableManager(t, dir, nil)
	d := m2.DurableStats()
	if !d.Enabled {
		t.Fatal("durability not enabled on restart")
	}
	if d.Replayed != len(wantOuts) {
		t.Fatalf("replayed %d outcomes, want %d", d.Replayed, len(wantOuts))
	}
	if d.CorruptRecords != 0 || d.TornSegments != 0 || d.DecodeErrors != 0 {
		t.Fatalf("clean WAL reported damage: %+v", d)
	}
	gotOuts := m2.FeedbackWindow().Snapshot()
	if len(gotOuts) != len(wantOuts) {
		t.Fatalf("recovered window holds %d outcomes, want %d", len(gotOuts), len(wantOuts))
	}
	for i := range wantOuts {
		if gotOuts[i].Key != wantOuts[i].Key || gotOuts[i].Gap != wantOuts[i].Gap {
			t.Fatalf("outcome %d differs after recovery", i)
		}
	}
	if got := m2.drift.state(); !reflect.DeepEqual(got, wantDrift) {
		t.Fatalf("recovered drift state differs:\n got %+v\nwant %+v", got, wantDrift)
	}
	if m2.processed.Load() != m.processed.Load() {
		t.Fatalf("processed counter regressed: %d -> %d", m.processed.Load(), m2.processed.Load())
	}
}

// TestSnapshotRestoreAndWALGC: a durable snapshot covers the whole WAL
// (GCing sealed segments), and a restart restores from the snapshot
// with nothing left to replay — drift state identical either way.
func TestSnapshotRestoreAndWALGC(t *testing.T) {
	dir := t.TempDir()
	m := newDurableManager(t, dir, nil)
	cells := badCells(t, m, 10)
	feedGPU(m, cells, "FixedChoice")
	m.Tick()
	if err := m.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	wantDrift := m.drift.state()
	wantLen := m.FeedbackWindow().Len()

	m2 := newDurableManager(t, dir, nil)
	d := m2.DurableStats()
	if !d.SnapshotRestored {
		t.Fatal("restart did not restore the snapshot")
	}
	if d.Replayed != 0 {
		t.Fatalf("snapshot-covered WAL still replayed %d records", d.Replayed)
	}
	if m2.FeedbackWindow().Len() != wantLen {
		t.Fatalf("restored window holds %d outcomes, want %d", m2.FeedbackWindow().Len(), wantLen)
	}
	if got := m2.drift.state(); !reflect.DeepEqual(got, wantDrift) {
		t.Fatal("snapshot-restored drift state differs from pre-crash state")
	}

	// Feedback after the snapshot layers on through WAL replay.
	feedGPU(m2, cells[:3], "FixedChoice")
	m2.Tick()
	want2 := m2.drift.state()
	m3 := newDurableManager(t, dir, nil)
	if d3 := m3.DurableStats(); d3.Replayed != 3 {
		t.Fatalf("second restart replayed %d records, want 3", d3.Replayed)
	}
	if got := m3.drift.state(); !reflect.DeepEqual(got, want2) {
		t.Fatal("snapshot+replay drift state differs from pre-crash state")
	}
}

// TestSnapshotKillSweepAndQuarantine: a crash at any byte of the
// snapshot write leaves the previous snapshot byte-intact and the WAL
// whole, so recovery is lossless; a bit-rotted snapshot is quarantined,
// not served.
func TestSnapshotKillSweep(t *testing.T) {
	dir := t.TempDir()
	m := newDurableManager(t, dir, nil)
	cells := badCells(t, m, 6)
	feedGPU(m, cells, "FixedChoice")
	m.Tick()
	if err := m.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, snapshotFile)
	before, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(before))
	stride := int64(1)
	if testing.Short() {
		stride = 29
	}
	for off := int64(0); off <= size; off += stride {
		armed := off
		m.opts.Kill = func(target string) (int64, bool) {
			if target != "snapshot" {
				return 0, false
			}
			return armed, true
		}
		err := m.SnapshotNow()
		if err == nil {
			t.Fatalf("offset %d: killed snapshot reported success", off)
		}
		if !errors.Is(err, durable.ErrKilled) {
			t.Fatalf("offset %d: unexpected error %v", off, err)
		}
		after, rerr := os.ReadFile(snapPath)
		if rerr != nil {
			t.Fatalf("offset %d: committed snapshot unreadable: %v", off, rerr)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("offset %d: killed snapshot mutated the committed snapshot", off)
		}
	}
	m.opts.Kill = nil

	// The committed snapshot restores cleanly despite all that abuse.
	m2 := newDurableManager(t, dir, nil)
	if !m2.DurableStats().SnapshotRestored {
		t.Fatal("snapshot failed to restore after kill sweep")
	}
	if m2.FeedbackWindow().Len() != m.FeedbackWindow().Len() {
		t.Fatal("window lost outcomes across kill sweep")
	}

	// Bit-rot the snapshot: restart quarantines it and falls down the
	// ladder instead of serving corrupt state.
	data, _ := os.ReadFile(snapPath)
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m3 := newDurableManager(t, dir, nil)
	d := m3.DurableStats()
	if d.SnapshotRestored {
		t.Fatal("corrupt snapshot restored as valid")
	}
	if d.Quarantines == 0 {
		t.Fatal("corrupt snapshot not quarantined")
	}
	if _, err := os.Stat(snapPath); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot still at its serving path")
	}
}

// TestWALKillDuringTick: an injected crash inside a WAL append never
// breaks collection — the tick completes, the failure is counted, and
// a restart replays exactly the committed prefix.
func TestWALKillDuringTick(t *testing.T) {
	dir := t.TempDir()
	kill := func(target string) (int64, bool) {
		if target != "wal" {
			return 0, false
		}
		return 700, true // lands inside the second ~490-byte record
	}
	m := newDurableManager(t, dir, kill)
	cells := badCells(t, m, 8)
	feedGPU(m, cells, "FixedChoice")
	if got := m.Tick(); got != 8 {
		t.Fatalf("tick processed %d, want 8", got)
	}
	if m.FeedbackWindow().Len() != 8 {
		t.Fatal("WAL crash lost in-memory outcomes")
	}
	d := m.DurableStats()
	if d.AppendErrors == 0 {
		t.Fatal("killed appends not counted")
	}
	committed := 8 - int(d.AppendErrors)

	m2 := newDurableManager(t, dir, nil)
	d2 := m2.DurableStats()
	if d2.Replayed != committed {
		t.Fatalf("replayed %d records, want committed prefix of %d", d2.Replayed, committed)
	}
	if m2.FeedbackWindow().Len() != committed {
		t.Fatalf("recovered window holds %d, want %d", m2.FeedbackWindow().Len(), committed)
	}
}

// TestFlushedWindowEquivalentDriftState (window auto-flush satellite):
// a FlushWindow artifact is an ordinary training database to aux-blind
// readers AND reloads into a manager whose drift state equals the
// original's.
func TestFlushedWindowEquivalentDriftState(t *testing.T) {
	m := newTestManager(t)
	cells := badCells(t, m, 15)
	feedGPU(m, cells, "FixedChoice")
	m.Tick()
	path := filepath.Join(t.TempDir(), "window.hmdb")
	if err := m.FlushWindow(path); err != nil {
		t.Fatal(err)
	}

	// Aux-blind reader: plain training database with one sample per
	// outcome.
	db, err := train.LoadDBFile(path)
	if err != nil {
		t.Fatalf("flushed window unreadable as training DB: %v", err)
	}
	if len(db.Samples) != 15 {
		t.Fatalf("flushed DB has %d samples, want 15", len(db.Samples))
	}

	// Aux-aware reader: full outcomes, rebuilding equivalent drift state.
	outs, err := LoadWindowFile(path, m.limits)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 15 {
		t.Fatalf("loaded %d outcomes, want 15", len(outs))
	}
	fresh := newTestManager(t)
	fresh.AdoptOutcomes(outs)
	if got, want := fresh.drift.state(), m.drift.state(); !reflect.DeepEqual(got, want) {
		t.Fatalf("adopted drift state differs:\n got %+v\nwant %+v", got, want)
	}
	if fresh.FeedbackWindow().Len() != m.FeedbackWindow().Len() {
		t.Fatal("adopted window length differs")
	}
	// Drift survives: the same signal is armed on both sides.
	if fresh.Drift().Drifting("tree") != m.Drift().Drifting("tree") {
		t.Fatal("drift signal state differs after window reload")
	}
}

// TestWindowAutoFlush: the background flush ticker persists the window
// without any explicit call.
func TestWindowAutoFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "window.hmdb")
	m := New(Options{
		Pair:             machine.PrimaryPair(),
		Model:            "tree",
		Interval:         5 * time.Millisecond,
		WindowFlushEvery: 10 * time.Millisecond,
		WindowFlushPath:  path,
	})
	cells := badCells(t, m, 4)
	feedGPU(m, cells, "FixedChoice")
	m.Start()
	defer m.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-flush never wrote the window file")
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	outs, err := LoadWindowFile(path, m.limits)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) == 0 {
		t.Fatal("auto-flushed window is empty")
	}
}

// TestSaveWindowStillGuardsEmpty: the public SaveWindow keeps its
// empty-window error contract.
func TestSaveWindowStillGuardsEmpty(t *testing.T) {
	m := newTestManager(t)
	if err := m.SaveWindow(filepath.Join(t.TempDir(), "w.hmdb")); err == nil {
		t.Fatal("empty window saved without error")
	}
}
