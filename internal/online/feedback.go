package online

import (
	"sync"
	"time"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict"
	"heteromap/internal/train"
)

// Sample is what the serve-path hook enqueues for one served prediction:
// just the decision and its identifiers, nothing computed. Keeping the
// hook this thin is what keeps its cost invisible next to the serve path
// (the online/feedback-ingest benchmark gates it).
type Sample struct {
	// Key is the discretized feature key the prediction was served under.
	Key string
	// Features is the discretized characterization.
	Features feature.Vector
	// M is the configuration that was served.
	M config.M
	// Model is the registry family that answered (drift is tracked per
	// family).
	Model string
	// Predictor is the chain link (or "probe") that produced M.
	Predictor string
	// TraceID links the outcome back to /v1/explain and /debug/traces.
	TraceID string
	// Probed marks write-backs from the uncertainty-routed probe path.
	Probed bool
}

// Outcome is a Sample the collector has executed against the machine
// models: the realized makespan of the served configuration, the
// exhaustive best over the candidate grid for the same cell, and the
// cost gap between them — the same statistic the conformance oracle
// computes offline.
type Outcome struct {
	Sample
	// ChosenCost is the realized makespan (or energy, under the energy
	// objective) of the served M on the cell's synthesized job.
	ChosenCost float64
	// BestCost and BestM are the exhaustive-sweep optimum for the cell.
	BestCost float64
	BestM    config.M
	// Gap is ChosenCost/BestCost - 1: zero when the served configuration
	// was optimal.
	Gap float64
	// When stamps collection time (not used by any statistic, so the
	// learning loop stays deterministic under test).
	When time.Time
}

// ingestRing is the bounded, sharded append log between the serve-path
// hook and the background collector. Each shard is an overwrite-oldest
// ring under its own mutex: the hook never blocks and never allocates,
// and a stalled collector costs dropped feedback (counted), never serve
// latency.
type ingestRing struct {
	shards []*ingestShard
}

type ingestShard struct {
	mu    sync.Mutex
	buf   []Sample
	head  int // next write position
	count int // live entries (<= len(buf))
	drops uint64
}

func newIngestRing(capacity, shards int) *ingestRing {
	if shards < 1 {
		shards = 1
	}
	if capacity < shards {
		capacity = shards
	}
	r := &ingestRing{shards: make([]*ingestShard, shards)}
	per := capacity / shards
	for i := range r.shards {
		r.shards[i] = &ingestShard{buf: make([]Sample, per)}
	}
	return r
}

// Add appends a sample, overwriting the oldest pending entry when the
// shard is full (the overwritten entry counts as a drop).
func (r *ingestRing) Add(s Sample) {
	sh := r.shards[int(s.Features.ShardHash()%uint64(len(r.shards)))]
	sh.mu.Lock()
	sh.buf[sh.head] = s
	sh.head = (sh.head + 1) % len(sh.buf)
	if sh.count < len(sh.buf) {
		sh.count++
	} else {
		sh.drops++
	}
	sh.mu.Unlock()
}

// Drain removes and returns up to max pending samples, oldest first
// within each shard, round-robining across shards so no shard starves.
func (r *ingestRing) Drain(max int) []Sample {
	if max <= 0 {
		max = 1
	}
	out := make([]Sample, 0, max)
	for _, sh := range r.shards {
		if len(out) >= max {
			break
		}
		sh.mu.Lock()
		take := sh.count
		if take > max-len(out) {
			take = max - len(out)
		}
		start := (sh.head - sh.count + len(sh.buf)*2) % len(sh.buf)
		for i := 0; i < take; i++ {
			out = append(out, sh.buf[(start+i)%len(sh.buf)])
		}
		sh.count -= take
		sh.mu.Unlock()
	}
	return out
}

// Pending reports how many samples await collection.
func (r *ingestRing) Pending() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.Lock()
		n += sh.count
		sh.mu.Unlock()
	}
	return n
}

// Drops reports how many samples were overwritten before collection.
func (r *ingestRing) Drops() uint64 {
	var n uint64
	for _, sh := range r.shards {
		sh.mu.Lock()
		n += sh.drops
		sh.mu.Unlock()
	}
	return n
}

// Window is the sliding window of completed outcomes: the retraining
// set, the conformal-residual source, and the drift evidence. It is a
// bounded ring (oldest evicted) with copy-out snapshots, so a shadow
// retrain reads a stable view while ingest keeps appending.
type Window struct {
	mu    sync.Mutex
	buf   []Outcome
	head  int
	count int
	total uint64
}

// NewWindow builds a window holding up to capacity outcomes.
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{buf: make([]Outcome, capacity)}
}

// Add appends an outcome, evicting the oldest at capacity.
func (w *Window) Add(o Outcome) {
	w.mu.Lock()
	w.buf[w.head] = o
	w.head = (w.head + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
	w.total++
	w.mu.Unlock()
}

// Len reports the live outcome count.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Total reports outcomes ever added (including evicted ones).
func (w *Window) Total() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Snapshot copies the live outcomes, oldest first.
func (w *Window) Snapshot() []Outcome {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Outcome, 0, w.count)
	start := (w.head - w.count + len(w.buf)*2) % len(w.buf)
	for i := 0; i < w.count; i++ {
		out = append(out, w.buf[(start+i)%len(w.buf)])
	}
	return out
}

// TrainingSamples converts outcomes into offline-format training
// samples: the characterization paired with the exhaustive best M,
// normalized exactly as train.BuildDatabase normalizes its targets — so
// a window database is indistinguishable from an hmtrain database to
// every consumer (LoadDB, LookupPredictor, /v1/reload).
func TrainingSamples(outs []Outcome, limits config.Limits) []predict.Sample {
	samples := make([]predict.Sample, len(outs))
	for i, o := range outs {
		samples[i] = predict.Sample{
			Features: o.Features,
			Target:   o.BestM.Normalize(limits),
		}
	}
	return samples
}

// windowDB assembles a train.DB from a window snapshot.
func windowDB(pair machine.Pair, objective train.Objective, outs []Outcome) *train.DB {
	limits := pair.Limits()
	return &train.DB{
		Pair:      pair,
		Limits:    limits,
		Objective: objective,
		Samples:   TrainingSamples(outs, limits),
	}
}
