package online

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/train"
)

// vecForShard builds distinct valid vectors by varying I features.
func vecForShard(i int) feature.Vector {
	rng := rand.New(rand.NewSource(int64(i)))
	return feature.Combine(train.RandomB(rng), train.RandomI(rng))
}

func TestIngestRingBoundsAndDrops(t *testing.T) {
	r := newIngestRing(16, 4) // 4 per shard
	// Saturate one shard far past capacity.
	f := vecForShard(1)
	for i := 0; i < 10; i++ {
		r.Add(Sample{Key: fmt.Sprint(i), Features: f})
	}
	if got := r.Pending(); got != 4 {
		t.Fatalf("pending = %d, want shard capacity 4", got)
	}
	if got := r.Drops(); got != 6 {
		t.Fatalf("drops = %d, want 6", got)
	}
	// The survivors are the newest four, drained oldest-first.
	batch := r.Drain(100)
	if len(batch) != 4 {
		t.Fatalf("drained %d, want 4", len(batch))
	}
	for i, s := range batch {
		if want := fmt.Sprint(6 + i); s.Key != want {
			t.Fatalf("drained[%d].Key = %s, want %s (overwrite-oldest order)", i, s.Key, want)
		}
	}
	if r.Pending() != 0 {
		t.Fatal("ring not empty after full drain")
	}
}

func TestIngestDrainRespectsMax(t *testing.T) {
	r := newIngestRing(64, 4)
	for i := 0; i < 20; i++ {
		r.Add(Sample{Key: fmt.Sprint(i), Features: vecForShard(i)})
	}
	if got := len(r.Drain(7)); got != 7 {
		t.Fatalf("Drain(7) returned %d", got)
	}
	if got := r.Pending(); got != 13 {
		t.Fatalf("pending after partial drain = %d, want 13", got)
	}
}

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(3)
	for i := 0; i < 5; i++ {
		w.Add(Outcome{Sample: Sample{Key: fmt.Sprint(i)}})
	}
	if w.Len() != 3 || w.Total() != 5 {
		t.Fatalf("len=%d total=%d, want 3/5", w.Len(), w.Total())
	}
	snap := w.Snapshot()
	for i, o := range snap {
		if want := fmt.Sprint(2 + i); o.Key != want {
			t.Fatalf("snapshot[%d] = %s, want %s (oldest-first of the newest 3)", i, o.Key, want)
		}
	}
}

// TestSaveWindowRoundTrip: the feedback window persists in the offline
// store format and loads back through the same LoadDB path /v1/reload
// uses — online feedback and hmtrain output are interchangeable.
func TestSaveWindowRoundTrip(t *testing.T) {
	pair := machine.PrimaryPair()
	m := New(Options{Pair: pair, Model: "tree"})
	for i := 0; i < 5; i++ {
		m.Observe(Sample{Key: vecForShard(i).Key(), Features: vecForShard(i), M: m.candidates[0], Model: "tree", Predictor: "DTree"})
	}
	if got := m.Tick(); got != 5 {
		t.Fatalf("tick processed %d, want 5", got)
	}
	path := filepath.Join(t.TempDir(), "window.hmdb")
	if err := m.SaveWindow(path); err != nil {
		t.Fatal(err)
	}
	db, err := train.LoadDBFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Samples) != 5 {
		t.Fatalf("loaded %d samples, want 5", len(db.Samples))
	}
	// Each persisted target must decode to the recorded exhaustive best.
	outs := m.FeedbackWindow().Snapshot()
	limits := pair.Limits()
	for i, o := range outs {
		if got := db.Samples[i].Target; got != o.BestM.Normalize(limits) {
			t.Fatalf("sample %d target does not round-trip the best M", i)
		}
	}

	empty := New(Options{Pair: pair})
	if err := empty.SaveWindow(path); err == nil {
		t.Fatal("saving an empty window unexpectedly succeeded")
	}
}
