package online

import (
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/predict/dtree"
	"heteromap/internal/train"
)

// badCells finds discretized cells where always serving the default GPU
// configuration realizes a large gap over the exhaustive best — the
// raw material for provoking drift deterministically.
func badCells(t *testing.T, m *Manager, want int) []feature.Vector {
	t.Helper()
	gpu := config.DefaultGPU(m.limits)
	var cells []feature.Vector
	seen := make(map[string]bool)
	rng := rand.New(rand.NewSource(99))
	for len(cells) < want {
		f := feature.Combine(train.RandomB(rng), train.RandomI(rng))
		if seen[f.Key()] {
			continue
		}
		seen[f.Key()] = true
		job, _, bestCost := m.groundTruth(f)
		if bestCost <= 0 {
			continue
		}
		if m.opts.Realize(job, gpu)/bestCost-1 > 0.5 {
			cells = append(cells, f)
		}
	}
	return cells
}

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	return New(Options{
		Pair:           machine.PrimaryPair(),
		Model:          "tree",
		DriftAlpha:     0.5,
		DriftThreshold: 0.25,
		DriftWindow:    4,
		RetrainMin:     16,
		ShadowDir:      t.TempDir(),
	})
}

// feedGPU serves every cell the default GPU configuration and feeds the
// decisions through the hook.
func feedGPU(m *Manager, cells []feature.Vector, predictor string) {
	gpu := config.DefaultGPU(m.limits)
	for _, f := range cells {
		m.Observe(Sample{
			Key: f.Key(), Features: f, M: gpu,
			Model: "tree", Predictor: predictor,
		})
	}
}

func TestCollectorComputesGapsAndDrifts(t *testing.T) {
	m := newTestManager(t)
	cells := badCells(t, m, 20)
	feedGPU(m, cells, "FixedChoice")
	if got := m.Tick(); got != 20 {
		t.Fatalf("tick processed %d, want 20", got)
	}
	if m.Pending() != 0 {
		t.Fatal("samples left pending after tick")
	}
	outs := m.FeedbackWindow().Snapshot()
	if len(outs) != 20 {
		t.Fatalf("window holds %d, want 20", len(outs))
	}
	for _, o := range outs {
		if o.Gap <= 0.5 {
			t.Fatalf("cell %s gap = %v, want > 0.5 (badCells filter)", o.Key, o.Gap)
		}
		if o.ChosenCost < o.BestCost {
			t.Fatalf("chosen cost below exhaustive best on %s", o.Key)
		}
	}
	if !m.Drift().Drifting("tree") {
		t.Fatal("20 large-gap observations did not arm the drift signal")
	}
	// The same traffic served optimally never drifts.
	opt := New(Options{Pair: machine.PrimaryPair(), Model: "tree",
		DriftAlpha: 0.5, DriftThreshold: 0.25, DriftWindow: 4})
	for _, f := range cells {
		_, bestM, _ := opt.groundTruth(f)
		opt.Observe(Sample{Key: f.Key(), Features: f, M: bestM, Model: "tree"})
	}
	opt.Tick()
	if opt.Drift().Drifting("tree") {
		t.Fatal("optimal serving signalled drift")
	}
}

// TestRetrainPromotesThroughBoundPath: drift -> shadow retrain -> the
// candidate beats the deliberately weak live model -> promotion goes
// through the bound callback with a loadable database.
func TestRetrainPromotesThroughBoundPath(t *testing.T) {
	m := newTestManager(t)
	cells := badCells(t, m, 24)

	var promoted []string
	m.BindPromote(func(model, path string) (uint64, error) {
		if _, err := train.LoadDBFile(path); err != nil {
			t.Fatalf("promotion handed an unloadable shadow: %v", err)
		}
		promoted = append(promoted, model+":"+path)
		return 2, nil
	})
	gpu := config.DefaultGPU(m.limits)
	m.BindLive(func(feature.Vector) config.M { return gpu })

	feedGPU(m, cells, "FixedChoice")
	// Tick drains, detects drift, and (window >= RetrainMin) retrains.
	m.Tick()
	rep := m.LastReport()
	if rep == nil || !rep.Promoted {
		t.Fatalf("no promotion after drifted tick: %+v", rep)
	}
	if rep.CandidateGap >= rep.LiveGap {
		t.Fatalf("candidate gap %v did not beat live %v", rep.CandidateGap, rep.LiveGap)
	}
	if rep.Version != 2 || len(promoted) != 1 || !strings.Contains(promoted[0], "tree:") {
		t.Fatalf("promotion bookkeeping wrong: version=%d promoted=%v", rep.Version, promoted)
	}
	if m.Drift().Drifting("tree") {
		t.Fatal("drift signal still armed after promotion")
	}
	if s := m.Snapshot(); s.Promotions != 1 || s.Retrains != 1 {
		t.Fatalf("snapshot promotions=%d retrains=%d, want 1/1", s.Promotions, s.Retrains)
	}
}

// TestCorruptShadowIsRejectedNotPromoted: the MutateShadow seam damages
// the shadow file before promotion; the canary (here: a loader) must
// reject it, the report must show no promotion, and the signal clears
// so the loop doesn't spin.
func TestCorruptShadowIsRejectedNotPromoted(t *testing.T) {
	m := New(Options{
		Pair: machine.PrimaryPair(), Model: "tree",
		DriftAlpha: 0.5, DriftThreshold: 0.25, DriftWindow: 4,
		RetrainMin: 16, ShadowDir: t.TempDir(),
		MutateShadow: func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, b[:len(b)/2], 0o644)
		},
	})
	cells := badCells(t, m, 24)
	m.BindPromote(func(model, path string) (uint64, error) {
		_, err := train.LoadDBFile(path)
		if err == nil {
			t.Fatal("corrupted shadow loaded cleanly; corruption seam inert")
		}
		return 0, err
	})
	gpu := config.DefaultGPU(m.limits)
	m.BindLive(func(feature.Vector) config.M { return gpu })
	feedGPU(m, cells, "FixedChoice")
	m.Tick()
	rep := m.LastReport()
	if rep == nil || rep.Promoted {
		t.Fatalf("corrupt shadow was promoted: %+v", rep)
	}
	if !strings.Contains(rep.Reason, "canary rejected") {
		t.Fatalf("reason = %q, want canary rejection", rep.Reason)
	}
	if s := m.Snapshot(); s.Rejections != 1 || s.Promotions != 0 {
		t.Fatalf("rejections=%d promotions=%d, want 1/0", s.Rejections, s.Promotions)
	}
	if m.Drift().Drifting("tree") {
		t.Fatal("rejected retrain left the signal armed (hot loop)")
	}
}

// TestConcurrentIngestDuringRetrain exercises the locking under the
// race detector: ingest and ticks keep running while a retrain reads a
// window snapshot.
func TestConcurrentIngestDuringRetrain(t *testing.T) {
	m := newTestManager(t)
	cells := badCells(t, m, 8)
	m.BindPromote(func(model, path string) (uint64, error) { return 2, nil })
	gpu := config.DefaultGPU(m.limits)
	m.BindLive(func(feature.Vector) config.M { return gpu })
	feedGPU(m, cells, "FixedChoice")
	m.Tick()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				feedGPU(m, cells[w*2:w*2+2], "FixedChoice")
				if i%10 == 0 {
					m.Tick()
				}
			}
		}(w)
	}
	for i := 0; i < 5; i++ {
		m.RetrainNow("tree")
	}
	wg.Wait()
	m.Tick()
	if m.Snapshot().Processed == 0 {
		t.Fatal("nothing processed under concurrency")
	}
}

func TestAssessRoutesBoundaryNotInterior(t *testing.T) {
	m := New(Options{
		Pair: machine.PrimaryPair(), Model: "tree",
		UncertaintyFloor: 0.3,
	})
	tree := dtree.New(m.limits)

	// Near the layer-4 input-size gate: one grid step flips the
	// accelerator, margin 0.1/0.4 = 0.25 < floor.
	var boundary feature.Vector
	boundary[feature.BVertexDivision] = 1.0
	boundary[feature.BDataAddressing] = 0.8
	boundary[feature.BReadOnly] = 0.5
	boundary[feature.BReadWrite] = 0.5
	boundary[13] = 0.5
	boundary[14] = 0.6
	boundary[15] = 0.2
	boundary[16] = 0.2
	conf, probe := m.Assess(tree, boundary)
	if !probe || conf >= 0.3 {
		t.Fatalf("boundary vector: conf=%v probe=%v, want probe at conf 0.25", conf, probe)
	}

	interior := boundary
	interior[13] = 0.9
	interior[14] = 1.0
	interior[15] = 0.1
	interior[16] = 0.9
	conf, probe = m.Assess(tree, interior)
	if probe || conf != 1.0 {
		t.Fatalf("interior vector: conf=%v probe=%v, want confident 1.0", conf, probe)
	}

	// Floor 0 disables routing entirely.
	off := New(Options{Pair: machine.PrimaryPair()})
	if conf, probe := off.Assess(tree, boundary); probe || conf != 1 {
		t.Fatalf("disabled routing still probed: conf=%v probe=%v", conf, probe)
	}

	// A nil link (fallback label, unknown predictor) gets the neutral
	// margin, still subject to the floor.
	if conf, _ := m.Assess(nil, boundary); conf != neutralConfidence {
		t.Fatalf("nil link conf = %v, want %v", conf, neutralConfidence)
	}
}

// TestResidualsDeflateConfidence: once the window records large gaps
// for a predictor, its conformal residual quantile drags confidence
// down even deep inside a decision region.
func TestResidualsDeflateConfidence(t *testing.T) {
	m := New(Options{
		Pair: machine.PrimaryPair(), Model: "tree",
		UncertaintyFloor: 0.6,
		DriftAlpha:       0.5,
	})
	tree := dtree.New(m.limits)
	cells := badCells(t, m, 12)
	feedGPU(m, cells, tree.Name())
	m.Tick()
	if q := m.residualQuantile(tree.Name()); q <= 0.5 {
		t.Fatalf("residual quantile = %v, want > 0.5 after large-gap feedback", q)
	}
	var interior feature.Vector
	interior[feature.BVertexDivision] = 1.0
	interior[feature.BDataAddressing] = 0.8
	interior[feature.BReadOnly] = 0.5
	interior[feature.BReadWrite] = 0.5
	interior[13] = 0.9
	interior[14] = 1.0
	interior[15] = 0.1
	interior[16] = 0.9
	conf, probe := m.Assess(tree, interior)
	if !probe {
		t.Fatalf("confidently-wrong predictor kept routing privilege: conf=%v", conf)
	}
}

func TestProbeSweepsTheCappedSet(t *testing.T) {
	m := newTestManager(t)
	if len(m.probeSet) != DefaultProbeCap {
		t.Fatalf("probe set = %d candidates, want capped at %d", len(m.probeSet), DefaultProbeCap)
	}
	cells := badCells(t, m, 3)
	for _, f := range cells {
		// The probe must return the exact minimum over its capped set.
		job := synthesizeJob(f)
		wantM, wantCost := m.probeSet[0], m.opts.Realize(synthesizeJob(f), m.probeSet[0])
		for _, c := range m.probeSet[1:] {
			if cost := m.opts.Realize(job, c); cost < wantCost {
				wantM, wantCost = c, cost
			}
		}
		gotM, gotCost := m.Probe(f)
		if gotM != wantM || gotCost != wantCost {
			t.Fatalf("probe(%s) = %+v/%v, want probe-set best %+v/%v",
				f.Key(), gotM, gotCost, wantM, wantCost)
		}
	}
	if m.Probes() != 3 {
		t.Fatalf("probe counter = %d, want 3", m.Probes())
	}
	// After collection the cell's full-grid truth is cached; a probe of
	// a known cell upgrades to the exact optimum.
	feedGPU(m, cells[:1], "FixedChoice")
	m.Tick()
	_, bestM, bestCost := m.groundTruth(cells[0])
	if gotM, gotCost := m.Probe(cells[0]); gotM != bestM || gotCost != bestCost {
		t.Fatal("cached probe disagrees with full-grid ground truth")
	}
}
