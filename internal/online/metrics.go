package online

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Snapshot is the JSON view of the online learning loop served at
// /v1/online.
type Snapshot struct {
	Ingested   uint64           `json:"ingested"`
	Dropped    uint64           `json:"dropped"`
	Processed  uint64           `json:"processed"`
	Pending    int              `json:"pending"`
	WindowSize int              `json:"window_size"`
	Probes     uint64           `json:"probes"`
	Retrains   uint64           `json:"retrains"`
	Promotions uint64           `json:"promotions"`
	Rejections uint64           `json:"rejections"`
	DriftCells int              `json:"drift_cells"`
	Families   []familySnapshot `json:"families"`
	Last       *RetrainReport   `json:"last_retrain,omitempty"`
	Durable    *DurableStats    `json:"durable,omitempty"`
}

// Snapshot captures the loop's current state.
func (m *Manager) Snapshot() Snapshot {
	fams := m.drift.familySnapshots()
	sort.Slice(fams, func(i, j int) bool { return fams[i].Model < fams[j].Model })
	var dur *DurableStats
	if d := m.DurableStats(); d.Enabled {
		dur = &d
	}
	return Snapshot{
		Durable: dur,
		Ingested:   m.ingested.Load(),
		Dropped:    m.ingest.Drops(),
		Processed:  m.processed.Load(),
		Pending:    m.ingest.Pending(),
		WindowSize: m.window.Len(),
		Probes:     m.probes.Load(),
		Retrains:   m.retrains.Load(),
		Promotions: m.promotions.Load(),
		Rejections: m.rejections.Load(),
		DriftCells: m.drift.Cells(),
		Families:   fams,
		Last:       m.LastReport(),
	}
}

// WritePrometheus appends the online-learning exposition. The serving
// layer calls it after the core exposition (whose byte-exact golden
// test must keep passing), so every metric here is additive.
func (m *Manager) WritePrometheus(w io.Writer) {
	s := m.Snapshot()
	fmt.Fprintf(w, "# HELP heteromap_online_ingested_total Feedback samples enqueued by the serve path.\n")
	fmt.Fprintf(w, "# TYPE heteromap_online_ingested_total counter\n")
	fmt.Fprintf(w, "heteromap_online_ingested_total %d\n", s.Ingested)
	fmt.Fprintf(w, "# HELP heteromap_online_dropped_total Feedback samples overwritten before collection.\n")
	fmt.Fprintf(w, "# TYPE heteromap_online_dropped_total counter\n")
	fmt.Fprintf(w, "heteromap_online_dropped_total %d\n", s.Dropped)
	fmt.Fprintf(w, "# HELP heteromap_online_processed_total Feedback samples realized into outcomes.\n")
	fmt.Fprintf(w, "# TYPE heteromap_online_processed_total counter\n")
	fmt.Fprintf(w, "heteromap_online_processed_total %d\n", s.Processed)
	fmt.Fprintf(w, "# HELP heteromap_online_window_size Outcomes in the sliding feedback window.\n")
	fmt.Fprintf(w, "# TYPE heteromap_online_window_size gauge\n")
	fmt.Fprintf(w, "heteromap_online_window_size %d\n", s.WindowSize)
	fmt.Fprintf(w, "# HELP heteromap_online_probes_total Low-confidence requests re-derived by exhaustive probe.\n")
	fmt.Fprintf(w, "# TYPE heteromap_online_probes_total counter\n")
	fmt.Fprintf(w, "heteromap_online_probes_total %d\n", s.Probes)
	fmt.Fprintf(w, "# HELP heteromap_drift_ewma Smoothed realized-vs-best cost gap per model family.\n")
	fmt.Fprintf(w, "# TYPE heteromap_drift_ewma gauge\n")
	for _, f := range s.Families {
		fmt.Fprintf(w, "heteromap_drift_ewma{model=\"%s\"} %g\n", escapeLabel(f.Model), f.EWMA)
	}
	fmt.Fprintf(w, "# HELP heteromap_drift_active Whether a family's drift signal is armed.\n")
	fmt.Fprintf(w, "# TYPE heteromap_drift_active gauge\n")
	for _, f := range s.Families {
		active := 0
		if f.Drifting {
			active = 1
		}
		fmt.Fprintf(w, "heteromap_drift_active{model=\"%s\"} %d\n", escapeLabel(f.Model), active)
	}
	fmt.Fprintf(w, "# HELP heteromap_drift_signals_total Rising edges of the drift signal per family.\n")
	fmt.Fprintf(w, "# TYPE heteromap_drift_signals_total counter\n")
	for _, f := range s.Families {
		fmt.Fprintf(w, "heteromap_drift_signals_total{model=\"%s\"} %d\n", escapeLabel(f.Model), f.Signals)
	}
	fmt.Fprintf(w, "# HELP heteromap_drift_cells Distinct discretized feature cells observed.\n")
	fmt.Fprintf(w, "# TYPE heteromap_drift_cells gauge\n")
	fmt.Fprintf(w, "heteromap_drift_cells %d\n", s.DriftCells)
	fmt.Fprintf(w, "# HELP heteromap_shadow_retrains_total Shadow retraining attempts.\n")
	fmt.Fprintf(w, "# TYPE heteromap_shadow_retrains_total counter\n")
	fmt.Fprintf(w, "heteromap_shadow_retrains_total %d\n", s.Retrains)
	fmt.Fprintf(w, "# HELP heteromap_shadow_promotions_total Shadow models canary-promoted into the registry.\n")
	fmt.Fprintf(w, "# TYPE heteromap_shadow_promotions_total counter\n")
	fmt.Fprintf(w, "heteromap_shadow_promotions_total %d\n", s.Promotions)
	fmt.Fprintf(w, "# HELP heteromap_shadow_rejections_total Shadow retrains rejected before serving.\n")
	fmt.Fprintf(w, "# TYPE heteromap_shadow_rejections_total counter\n")
	fmt.Fprintf(w, "heteromap_shadow_rejections_total %d\n", s.Rejections)
	if s.Last != nil {
		fmt.Fprintf(w, "# HELP heteromap_shadow_last_gap Holdout-replay mean gap of the last retrain, per side.\n")
		fmt.Fprintf(w, "# TYPE heteromap_shadow_last_gap gauge\n")
		fmt.Fprintf(w, "heteromap_shadow_last_gap{side=\"candidate\"} %g\n", s.Last.CandidateGap)
		fmt.Fprintf(w, "heteromap_shadow_last_gap{side=\"live\"} %g\n", s.Last.LiveGap)
	}
	if s.Durable != nil {
		d := s.Durable
		fmt.Fprintf(w, "# HELP heteromap_durable_wal_last_seq Last appended feedback-WAL sequence number.\n")
		fmt.Fprintf(w, "# TYPE heteromap_durable_wal_last_seq gauge\n")
		fmt.Fprintf(w, "heteromap_durable_wal_last_seq %d\n", d.LastSeq)
		fmt.Fprintf(w, "# HELP heteromap_durable_wal_replayed_total Outcomes replayed from the WAL at last startup.\n")
		fmt.Fprintf(w, "# TYPE heteromap_durable_wal_replayed_total gauge\n")
		fmt.Fprintf(w, "heteromap_durable_wal_replayed_total %d\n", d.Replayed)
		fmt.Fprintf(w, "# HELP heteromap_durable_wal_corrupt_total WAL records skipped for checksum mismatch at last startup.\n")
		fmt.Fprintf(w, "# TYPE heteromap_durable_wal_corrupt_total gauge\n")
		fmt.Fprintf(w, "heteromap_durable_wal_corrupt_total %d\n", d.CorruptRecords)
		fmt.Fprintf(w, "# HELP heteromap_durable_wal_torn_segments WAL segments abandoned at a torn tail at last startup.\n")
		fmt.Fprintf(w, "# TYPE heteromap_durable_wal_torn_segments gauge\n")
		fmt.Fprintf(w, "heteromap_durable_wal_torn_segments %d\n", d.TornSegments)
		fmt.Fprintf(w, "# HELP heteromap_durable_snapshots_total Durable window snapshots taken since start.\n")
		fmt.Fprintf(w, "# TYPE heteromap_durable_snapshots_total counter\n")
		fmt.Fprintf(w, "heteromap_durable_snapshots_total %d\n", d.Snapshots)
		fmt.Fprintf(w, "# HELP heteromap_durable_snapshot_errors_total Failed durable snapshot attempts.\n")
		fmt.Fprintf(w, "# TYPE heteromap_durable_snapshot_errors_total counter\n")
		fmt.Fprintf(w, "heteromap_durable_snapshot_errors_total %d\n", d.SnapshotErrors)
		fmt.Fprintf(w, "# HELP heteromap_durable_quarantines_total Artifacts quarantined for failing integrity verification.\n")
		fmt.Fprintf(w, "# TYPE heteromap_durable_quarantines_total counter\n")
		fmt.Fprintf(w, "heteromap_durable_quarantines_total %d\n", d.Quarantines)
		restored := 0
		if d.SnapshotRestored {
			restored = 1
		}
		fmt.Fprintf(w, "# HELP heteromap_durable_snapshot_restored Whether the last startup restored a window snapshot.\n")
		fmt.Fprintf(w, "# TYPE heteromap_durable_snapshot_restored gauge\n")
		fmt.Fprintf(w, "heteromap_durable_snapshot_restored %d\n", restored)
		fmt.Fprintf(w, "# HELP heteromap_durable_window_flushes_total Periodic feedback-window flushes to disk.\n")
		fmt.Fprintf(w, "# TYPE heteromap_durable_window_flushes_total counter\n")
		fmt.Fprintf(w, "heteromap_durable_window_flushes_total %d\n", d.WindowFlushes)
	}
}

// escapeLabel makes a string safe inside a Prometheus label value.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
