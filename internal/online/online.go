// Package online closes HeteroMap's predict -> execute -> learn loop.
//
// The offline pipeline (Section V of the paper) trains predictors once,
// from a synthetic autotuned database, and serves them forever. This
// package adds the runtime half the paper's deployment story implies:
// every served prediction is executed against the machine models, the
// realized makespan is compared with the exhaustive-sweep optimum for
// the same discretized cell, and the resulting cost gaps drive three
// mechanisms:
//
//   - Drift detection: per-model-family EWMA of the conformance gap
//     statistic with a consecutive-over-threshold window (drift.go). A
//     workload shift — say the request mix moving from social-network
//     graphs to sparse high-diameter road networks — pushes the tree's
//     gap from ~0.09 to ~1.4 and arms the signal within one window.
//
//   - Shadow retraining with canary promotion: on drift, the manager
//     rebuilds a lookup model from the sliding feedback window using
//     the offline train machinery, scores it against the live model on
//     a holdout replay, persists it atomically (train.SaveFile), and
//     promotes it ONLY through the registry's validated-reload path —
//     a bad retrain quarantines exactly like a bad file reload
//     (retrain.go).
//
//   - Uncertainty routing: per-prediction confidence from the served
//     predictor's own geometry (tree decision margin, NN output margin)
//     deflated by conformal residual quantiles from the feedback
//     window. Low-confidence requests fall back to a bounded exhaustive
//     probe — a capped candidate sweep, microseconds on the machine
//     models — and the probe's result is written back into the
//     feedback stream (confidence.go, probe.go).
//
// The serve-path hook is a thin enqueue into a sharded overwrite-oldest
// ring (feedback.go); all cost evaluation happens in the background
// collector. The package depends only on the existing model/train/tune
// layers and the standard library.
package online

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"heteromap/internal/config"
	"heteromap/internal/durable"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/obs"
	"heteromap/internal/train"
)

// Defaults for Options fields left zero.
const (
	DefaultIngestCap      = 4096
	DefaultIngestShards   = 8
	DefaultWindowSize     = 2048
	DefaultDriftAlpha     = 0.1
	DefaultDriftThreshold = 0.25
	DefaultDriftWindow    = 16
	DefaultProbeCap       = 32
	DefaultProbeQuantile  = 0.9
	DefaultRetrainMin     = 256
	DefaultHoldoutFrac    = 0.25
	DefaultDrainBatch     = 512
	DefaultInterval       = 250 * time.Millisecond
	DefaultSnapshotTicks  = 32
)

// PromoteFunc installs a shadow database for a model family through the
// serving layer's validated-reload path and returns the new registry
// version. The serving layer binds this (BindPromote) so the online
// package never imports serve.
type PromoteFunc func(model, path string) (uint64, error)

// LiveFunc returns the live model's choice for a characterization; the
// holdout replay scores the shadow candidate against it.
type LiveFunc func(feature.Vector) config.M

// RealizeFunc produces the realized cost of running a job under a
// configuration. The default executes the machine models
// (train.Metric); tests substitute skewed realities to provoke drift.
type RealizeFunc func(machine.Job, config.M) float64

// Options configures a Manager. Zero-valued fields take the package
// defaults; Pair is required.
type Options struct {
	// Pair is the accelerator pair outcomes are realized on.
	Pair machine.Pair
	// Objective selects makespan or energy as the realized cost.
	Objective train.Objective
	// Model is the registry family whose serving this manager feeds back
	// on (the drift signal and retraining are tracked under this name).
	Model string

	// IngestCap bounds the pending feedback ring (default 4096).
	IngestCap int
	// WindowSize bounds the sliding outcome window (default 2048).
	WindowSize int

	// DriftAlpha, DriftThreshold, DriftWindow parameterize the detector.
	DriftAlpha     float64
	DriftThreshold float64
	DriftWindow    int

	// UncertaintyFloor is the confidence below which a request routes to
	// the exhaustive probe. Zero disables uncertainty routing.
	UncertaintyFloor float64
	// ProbeCap bounds the candidate grid a probe sweeps (default 32,
	// stride-sampled from the full enumeration — 696 on the primary
	// pair — so a probe stays microsecond-bounded).
	ProbeCap int
	// ProbeQuantile is the residual quantile used to deflate confidence
	// (default 0.9).
	ProbeQuantile float64

	// RetrainMin is the minimum window size before a shadow retrain is
	// attempted (default 256).
	RetrainMin int
	// HoldoutFrac is the window fraction replayed as holdout when
	// scoring shadow vs live (default 0.25).
	HoldoutFrac float64
	// ShadowDir is where shadow databases are written; empty disables
	// retraining.
	ShadowDir string
	// MutateShadow, when set, edits the shadow file after it is written
	// and before promotion — the corruption seam the quarantine tests
	// and the CI smoke use to prove a bad retrain never serves.
	MutateShadow func(path string) error

	// Realize overrides the machine-model execution (tests only).
	Realize RealizeFunc
	// Tracer, when set, receives retrain/promotion log events.
	Tracer *obs.Tracer

	// DrainBatch bounds samples processed per collector tick (default
	// 512).
	DrainBatch int
	// Interval is the background collector period (default 250ms).
	Interval time.Duration

	// DurableDir enables crash-safe persistence of the learning state:
	// collected outcomes journal to a WAL under <dir>/wal and the window
	// plus drift state snapshot periodically to <dir>/window.snap, with
	// the full recovery ladder run at construction. Empty disables.
	DurableDir string
	// WALSegmentBytes overrides the feedback WAL's rotation threshold.
	WALSegmentBytes int64
	// SnapshotTicks is the durable-snapshot cadence in collector ticks
	// (default DefaultSnapshotTicks when DurableDir is set).
	SnapshotTicks int
	// WindowFlushEvery enables the periodic window auto-flush: every
	// interval the window is persisted to WindowFlushPath as a training
	// database with outcomes attached (FlushWindow). Zero disables.
	WindowFlushEvery time.Duration
	// WindowFlushPath is where the auto-flush writes.
	WindowFlushPath string
	// Kill is the crash-injection seam threaded through every durable
	// write (nil in production).
	Kill durable.KillFunc
}

func (o Options) withDefaults() Options {
	if o.IngestCap <= 0 {
		o.IngestCap = DefaultIngestCap
	}
	if o.WindowSize <= 0 {
		o.WindowSize = DefaultWindowSize
	}
	if o.DriftAlpha <= 0 || o.DriftAlpha > 1 {
		o.DriftAlpha = DefaultDriftAlpha
	}
	if o.DriftThreshold <= 0 {
		o.DriftThreshold = DefaultDriftThreshold
	}
	if o.DriftWindow <= 0 {
		o.DriftWindow = DefaultDriftWindow
	}
	if o.ProbeCap <= 0 {
		o.ProbeCap = DefaultProbeCap
	}
	if o.ProbeQuantile <= 0 || o.ProbeQuantile > 1 {
		o.ProbeQuantile = DefaultProbeQuantile
	}
	if o.RetrainMin <= 0 {
		o.RetrainMin = DefaultRetrainMin
	}
	if o.HoldoutFrac <= 0 || o.HoldoutFrac >= 1 {
		o.HoldoutFrac = DefaultHoldoutFrac
	}
	if o.DrainBatch <= 0 {
		o.DrainBatch = DefaultDrainBatch
	}
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.DurableDir != "" && o.SnapshotTicks <= 0 {
		o.SnapshotTicks = DefaultSnapshotTicks
	}
	return o
}

// cellTruth caches the expensive per-cell work: the synthesized job and
// the exhaustive-sweep optimum. Under the default realize function both
// are fully determined by the discretized key, so repeat observations
// of a cell cost one candidate evaluation instead of a sweep.
type cellTruth struct {
	job      machine.Job
	bestM    config.M
	bestCost float64
}

// Manager owns the feedback stream, the drift detector, and the shadow
// retraining loop for one accelerator pair.
type Manager struct {
	opts       Options
	limits     config.Limits
	candidates []config.M
	probeSet   []config.M
	ingest     *ingestRing
	window     *Window
	drift      *Detector

	mu      sync.Mutex
	promote PromoteFunc
	live    LiveFunc
	residQ  map[string]float64 // predictor name -> residual gap quantile
	// cells caches per-cell ground truth keyed on the binary feature key
	// — built on the serve path, so the key must cost nothing to make.
	cells map[feature.BinaryKey]cellTruth
	last  *RetrainReport
	seq   uint64 // shadow file sequence

	ingested   atomic.Uint64
	processed  atomic.Uint64
	probes     atomic.Uint64
	retrains   atomic.Uint64
	promotions atomic.Uint64
	rejections atomic.Uint64

	// dur is the durability bookkeeping (durable.go); touched only at
	// construction and from the collector tick.
	dur durableState

	stop chan struct{}
	done chan struct{}
}

// New builds a manager for the pair in opts.
func New(opts Options) *Manager {
	opts = opts.withDefaults()
	limits := opts.Pair.Limits()
	cands := config.Enumerate(limits)
	m := &Manager{
		opts:       opts,
		limits:     limits,
		candidates: cands,
		probeSet:   capCandidates(cands, opts.ProbeCap),
		ingest:     newIngestRing(opts.IngestCap, DefaultIngestShards),
		window:     NewWindow(opts.WindowSize),
		drift:      NewDetector(opts.DriftAlpha, opts.DriftThreshold, opts.DriftWindow),
		residQ:     make(map[string]float64),
		cells:      make(map[feature.BinaryKey]cellTruth),
	}
	if m.opts.Realize == nil {
		m.opts.Realize = func(job machine.Job, cfg config.M) float64 {
			return train.Metric(opts.Pair, opts.Objective, job, cfg)
		}
	} else {
		// A substituted reality may disagree with the machine models, so
		// per-cell truth caching (keyed on the default realize) is off.
		m.cells = nil
	}
	m.recoverDurable()
	return m
}

// capCandidates stride-samples the grid down to at most cap entries,
// always keeping the first (GPU) candidate.
func capCandidates(cands []config.M, cap int) []config.M {
	if len(cands) <= cap {
		return cands
	}
	out := make([]config.M, 0, cap)
	stride := float64(len(cands)) / float64(cap)
	for i := 0; i < cap; i++ {
		out = append(out, cands[int(float64(i)*stride)])
	}
	return out
}

// Observe is the serve-path hook: it enqueues one served prediction for
// background collection. It never blocks and never allocates.
func (m *Manager) Observe(s Sample) {
	m.ingest.Add(s)
	m.ingested.Add(1)
}

// Start launches the background collector. Stop shuts it down. Tests
// drive Tick directly and never call Start.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.stop != nil {
		m.mu.Unlock()
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	stop, done := m.stop, m.done
	m.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(m.opts.Interval)
		defer t.Stop()
		var flush <-chan time.Time
		if m.opts.WindowFlushEvery > 0 && m.opts.WindowFlushPath != "" {
			ft := time.NewTicker(m.opts.WindowFlushEvery)
			defer ft.Stop()
			flush = ft.C
		}
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.Tick()
			case <-flush:
				m.FlushWindow(m.opts.WindowFlushPath)
			}
		}
	}()
}

// Stop terminates the background collector and waits for it to exit.
func (m *Manager) Stop() {
	m.mu.Lock()
	stop, done := m.stop, m.done
	m.stop, m.done = nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Tick drains one batch of pending feedback, realizes outcomes, updates
// drift state and residual quantiles, and — if a family is drifting
// with enough window — runs one shadow retrain. It returns the number
// of samples processed. Deterministic tests call this directly.
func (m *Manager) Tick() int {
	batch := m.ingest.Drain(m.opts.DrainBatch)
	for _, s := range batch {
		o := m.collect(s)
		m.journal(o)
	}
	m.sealBatch(len(batch))
	if len(batch) > 0 {
		m.refreshResiduals()
	}
	m.maybeRetrain()
	return len(batch)
}

// collect turns one pending sample into an outcome: synthesize the
// cell's job, realize the served configuration's cost, sweep the
// exhaustive best, and feed the gap to the window and detector. The
// outcome is returned so the tick can journal it.
func (m *Manager) collect(s Sample) Outcome {
	truth, ok := m.cellLookup(s.Features)
	if !ok {
		job, bestM, bestCost := m.groundTruth(s.Features)
		truth = cellTruth{job: job, bestM: bestM, bestCost: bestCost}
		m.cellStore(s.Features, truth)
	}
	chosen := m.opts.Realize(truth.job, s.M)
	gap := 0.0
	if truth.bestCost > 0 {
		gap = chosen/truth.bestCost - 1
	}
	if gap < 0 {
		gap = 0
	}
	o := Outcome{
		Sample:     s,
		ChosenCost: chosen,
		BestCost:   truth.bestCost,
		BestM:      truth.bestM,
		Gap:        gap,
		When:       time.Now(),
	}
	m.window.Add(o)
	m.drift.Observe(s.Model, s.Key, gap)
	m.processed.Add(1)
	return o
}

// synthesizeJob materializes the deterministic job for a discretized
// cell: the rng is seeded from the cell's hash, so every observation of
// a cell — collector or probe — realizes costs on the identical job.
func synthesizeJob(f feature.Vector) machine.Job {
	rng := rand.New(rand.NewSource(int64(f.ShardHash())))
	combo := train.Synthesize(f.B(), f.I(), rng)
	return machine.Job{Work: combo.Work, FootprintBytes: combo.Footprint}
}

// groundTruth synthesizes the cell's job (deterministically from the
// discretized features) and sweeps the candidate grid for the optimum.
func (m *Manager) groundTruth(f feature.Vector) (machine.Job, config.M, float64) {
	job := synthesizeJob(f)
	bestM := m.candidates[0]
	bestCost := m.opts.Realize(job, bestM)
	for _, c := range m.candidates[1:] {
		if cost := m.opts.Realize(job, c); cost < bestCost {
			bestCost, bestM = cost, c
		}
	}
	return job, bestM, bestCost
}

func (m *Manager) cellLookup(f feature.Vector) (cellTruth, bool) {
	key := f.Binary()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cells == nil {
		return cellTruth{}, false
	}
	t, ok := m.cells[key]
	return t, ok
}

func (m *Manager) cellStore(f feature.Vector, t cellTruth) {
	key := f.Binary()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cells != nil {
		m.cells[key] = t
	}
}

// refreshResiduals recomputes the per-predictor residual gap quantile
// from the current window; Assess uses it to deflate confidence.
func (m *Manager) refreshResiduals() {
	outs := m.window.Snapshot()
	byPred := make(map[string][]float64)
	for _, o := range outs {
		byPred[o.Predictor] = append(byPred[o.Predictor], o.Gap)
	}
	q := make(map[string]float64, len(byPred))
	for name, gaps := range byPred {
		q[name] = quantile(gaps, m.opts.ProbeQuantile)
	}
	m.mu.Lock()
	m.residQ = q
	m.mu.Unlock()
}

// quantile returns the q-quantile of values (nearest-rank, sorted copy).
func quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// residualQuantile returns the predictor's current residual quantile.
func (m *Manager) residualQuantile(predictor string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.residQ[predictor]
}

// BindPromote installs the promotion callback (first bind wins; the
// serving layer binds the registry's validated-reload path here).
func (m *Manager) BindPromote(fn PromoteFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.promote == nil {
		m.promote = fn
	}
}

// BindLive installs the live-model callback used by holdout replay.
func (m *Manager) BindLive(fn LiveFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.live == nil {
		m.live = fn
	}
}

// Model returns the registry family this manager feeds back on.
func (m *Manager) Model() string { return m.opts.Model }

// UncertaintyFloor returns the configured routing floor (0 = disabled).
func (m *Manager) UncertaintyFloor() float64 { return m.opts.UncertaintyFloor }

// Window exposes the outcome window (read-only use: snapshots).
func (m *Manager) FeedbackWindow() *Window { return m.window }

// Drift exposes the detector.
func (m *Manager) Drift() *Detector { return m.drift }

// Pending reports samples awaiting collection.
func (m *Manager) Pending() int { return m.ingest.Pending() }

// SaveWindow persists the current feedback window as a training
// database in the offline store format — hmtrain output and online
// feedback are interchangeable artifacts — with every outcome attached
// as an aux blob so LoadWindowFile can rebuild the full drift picture.
func (m *Manager) SaveWindow(path string) error {
	if m.window.Len() == 0 {
		return fmt.Errorf("online: feedback window is empty")
	}
	return m.FlushWindow(path)
}
