package online

import (
	"heteromap/internal/config"
	"heteromap/internal/feature"
	"heteromap/internal/machine"
	"heteromap/internal/tune"
)

// ProbePredictor is the predictor label served predictions carry when
// uncertainty routing re-derived them by exhaustive sweep. It appears
// in /v1/explain provenance and in the feedback stream.
const ProbePredictor = "probe"

// Probe re-derives the configuration for a characterization by bounded
// exhaustive sweep: the cell's job is synthesized deterministically and
// every candidate in the capped, stride-sampled probe set is evaluated
// on the machine models. It returns the winning configuration and its
// realized cost. Once the background collector has seen the cell, the
// cached full-grid optimum answers instead — a probe of a known cell is
// exact and free.
//
// The sweep is ProbeCap candidate evaluations (default 32 of the
// primary pair's 696) — single-digit microseconds on the analytic
// models — which is why low-confidence requests can afford measured
// truth instead of a guess. The caller writes the result back into the
// feedback stream (Probed=true), so every probe also teaches the next
// retrain.
func (m *Manager) Probe(f feature.Vector) (config.M, float64) {
	truth, ok := m.cellLookup(f)
	if ok {
		m.probes.Add(1)
		return truth.bestM, truth.bestCost
	}
	job := m.probeJob(f)
	res := tune.ExhaustiveSerial(m.probeSet, func(c config.M) float64 {
		return m.opts.Realize(job, c)
	})
	m.probes.Add(1)
	return res.Best, res.Score
}

// probeJob synthesizes the deterministic job for a cell (same seeding
// as the collector, so probe and collection agree on ground truth).
func (m *Manager) probeJob(f feature.Vector) machine.Job {
	return synthesizeJob(f)
}

// Probes reports how many probes have run.
func (m *Manager) Probes() uint64 { return m.probes.Load() }
