package online

import (
	"context"
	"fmt"
	"log/slog"
	"path/filepath"

	"heteromap/internal/config"
	"heteromap/internal/machine"
	"heteromap/internal/train"
)

// RetrainReport describes one shadow retraining attempt.
type RetrainReport struct {
	// Model is the registry family retrained.
	Model string `json:"model"`
	// Path is the shadow database written (train.Store format).
	Path string `json:"path,omitempty"`
	// WindowSamples is how many feedback outcomes the shadow trained on.
	WindowSamples int `json:"window_samples"`
	// CandidateGap and LiveGap are mean cost gaps over the holdout
	// replay for the shadow candidate and the live model.
	CandidateGap float64 `json:"candidate_gap"`
	LiveGap      float64 `json:"live_gap"`
	// Promoted reports whether the shadow made it through the canary
	// path into the registry.
	Promoted bool `json:"promoted"`
	// Version is the registry version after promotion (0 if none).
	Version uint64 `json:"version,omitempty"`
	// Reason explains a non-promotion.
	Reason string `json:"reason,omitempty"`
}

// maybeRetrain runs at most one shadow retrain per tick, for the
// configured family, when its drift signal is armed and the window and
// bindings allow it.
func (m *Manager) maybeRetrain() {
	m.mu.Lock()
	model := m.opts.Model
	ready := m.promote != nil && m.live != nil && m.opts.ShadowDir != ""
	m.mu.Unlock()
	if !ready || !m.drift.Drifting(model) {
		return
	}
	if m.window.Len() < m.opts.RetrainMin {
		return
	}
	m.RetrainNow(model)
}

// RetrainNow rebuilds a model from the sliding feedback window, scores
// it against the live model on a holdout replay, and — only if it wins
// — promotes it through the bound canary path. Every attempt clears the
// family's drift signal, so a rejected retrain waits for a fresh window
// of over-threshold evidence instead of hot-looping.
func (m *Manager) RetrainNow(model string) (RetrainReport, error) {
	m.retrains.Add(1)
	rep := RetrainReport{Model: model}
	defer func() {
		m.drift.ClearSignal(model)
		m.mu.Lock()
		r := rep
		m.last = &r
		m.mu.Unlock()
	}()

	m.mu.Lock()
	promote, live := m.promote, m.live
	shadowDir := m.opts.ShadowDir
	mutate := m.opts.MutateShadow
	m.seq++
	seq := m.seq
	m.mu.Unlock()
	if promote == nil || live == nil {
		rep.Reason = "no promotion/live binding"
		return rep, fmt.Errorf("online: retrain %s: %s", model, rep.Reason)
	}
	if shadowDir == "" {
		rep.Reason = "no shadow directory"
		return rep, fmt.Errorf("online: retrain %s: %s", model, rep.Reason)
	}

	outs := m.window.Snapshot()
	rep.WindowSamples = len(outs)
	if len(outs) == 0 {
		rep.Reason = "empty feedback window"
		return rep, fmt.Errorf("online: retrain %s: %s", model, rep.Reason)
	}

	// Train the shadow candidate on the leading window slice and replay
	// the trailing slice — the freshest traffic, which is exactly what a
	// drifted workload looks like going forward — through candidate and
	// live side by side. The gap per holdout cell reuses the outcome's
	// recorded exhaustive best, so the comparison costs one realize call
	// per side per cell.
	nHold := int(float64(len(outs)) * m.opts.HoldoutFrac)
	if nHold < 1 {
		nHold = 1
	}
	if nHold >= len(outs) {
		rep.Reason = "window too small to split"
		return rep, fmt.Errorf("online: retrain %s: %s", model, rep.Reason)
	}
	trainOuts, holdout := outs[:len(outs)-nHold], outs[len(outs)-nHold:]
	db := windowDB(m.opts.Pair, m.opts.Objective, outs)
	candidate := train.NewLookupPredictor(windowDB(m.opts.Pair, m.opts.Objective, trainOuts))

	var candSum, liveSum float64
	for _, o := range holdout {
		job := synthesizeJob(o.Features)
		candSum += m.replayGap(job, candidate.Predict(o.Features), o.BestCost)
		liveSum += m.replayGap(job, live(o.Features), o.BestCost)
	}
	rep.CandidateGap = candSum / float64(len(holdout))
	rep.LiveGap = liveSum / float64(len(holdout))
	m.trace("shadow retrain scored", "model", model,
		"candidate_gap", rep.CandidateGap, "live_gap", rep.LiveGap,
		"window", len(outs))
	if rep.CandidateGap >= rep.LiveGap {
		rep.Reason = "candidate does not beat live on holdout replay"
		m.rejections.Add(1)
		return rep, nil
	}

	// Persist the full-window database atomically and promote it ONLY
	// through the bound canary path: a corrupt or regressed shadow
	// quarantines exactly like a bad operator-initiated reload.
	path := filepath.Join(shadowDir, fmt.Sprintf("shadow-%s-%d.hmdb", model, seq))
	if err := db.SaveFile(path); err != nil {
		rep.Reason = "shadow save failed: " + err.Error()
		m.rejections.Add(1)
		return rep, err
	}
	rep.Path = path
	if mutate != nil {
		if err := mutate(path); err != nil {
			rep.Reason = "shadow mutation hook failed: " + err.Error()
			m.rejections.Add(1)
			return rep, err
		}
	}
	version, err := promote(model, path)
	if err != nil {
		rep.Reason = "canary rejected: " + err.Error()
		m.rejections.Add(1)
		m.trace("shadow promotion rejected", "model", model, "err", err.Error())
		return rep, nil
	}
	rep.Promoted = true
	rep.Version = version
	m.promotions.Add(1)
	// Post-promotion cell gaps should measure the new model alone.
	m.drift.ResetCells()
	m.trace("shadow model promoted", "model", model, "version", version, "path", path)
	return rep, nil
}

// replayGap realizes one configuration on a holdout cell's job and
// returns its gap over the recorded exhaustive best.
func (m *Manager) replayGap(job machine.Job, chosen config.M, bestCost float64) float64 {
	if bestCost <= 0 {
		return 0
	}
	gap := m.opts.Realize(job, chosen)/bestCost - 1
	if gap < 0 {
		gap = 0
	}
	return gap
}

// LastReport returns the most recent retraining attempt, if any.
func (m *Manager) LastReport() *RetrainReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.last == nil {
		return nil
	}
	r := *m.last
	return &r
}

func (m *Manager) trace(msg string, args ...any) {
	if m.opts.Tracer != nil {
		m.opts.Tracer.Log(context.Background(), slog.LevelInfo, msg, args...)
	}
}
