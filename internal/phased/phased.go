// Package phased implements the temporal extension the paper explicitly
// leaves out (Section V-A: "This work does not consider temporal aspects,
// where program parts are run on either accelerator"): instead of binding
// a whole benchmark-input combination to one accelerator, each *phase* of
// the measured work profile is assigned to the accelerator that executes
// it best, paying a PCIe transfer cost whenever consecutive phases
// migrate the shared state.
//
// The planner enumerates all 2^k phase assignments (benchmarks have at
// most a handful of phases), charges per-iteration transfer costs on
// every accelerator switch — phases alternate every iteration, so a split
// schedule pays the boundary on each round — and returns the best
// schedule together with the best single-accelerator alternative, making
// the benefit (or futility) of temporal scheduling directly measurable.
package phased

import (
	"fmt"
	"strings"

	"heteromap/internal/config"
	"heteromap/internal/machine"
	"heteromap/internal/profile"
)

// PCIeGBs is the modeled host-device interconnect bandwidth for state
// migration (PCIe 3.0 x16 sustains ~12 GB/s).
const PCIeGBs = 12.0

// Assignment is one phase's placement.
type Assignment struct {
	Phase   string
	Accel   config.Accel
	Seconds float64
}

// Schedule is a complete phased execution plan.
type Schedule struct {
	Assignments []Assignment
	// Transfers counts accelerator switches per iteration (including the
	// wrap-around from the last phase back to the first).
	Transfers int
	// TransferSeconds is the total migration cost over all iterations.
	TransferSeconds float64
	// TotalSeconds is phase time plus transfer time.
	TotalSeconds float64
	// SingleSeconds is the best whole-program single-accelerator time
	// under the same configurations — the paper's baseline.
	SingleSeconds float64
	// SingleAccel is that baseline's accelerator.
	SingleAccel config.Accel
}

// GainPct is the phased schedule's improvement over the single-
// accelerator baseline (0 when the planner collapses to a single
// accelerator, negative never — the single assignment is in the search
// space).
func (s Schedule) GainPct() float64 {
	if s.TotalSeconds <= 0 {
		return 0
	}
	return (s.SingleSeconds/s.TotalSeconds - 1) * 100
}

// Split reports whether the plan actually uses both accelerators.
func (s Schedule) Split() bool {
	if len(s.Assignments) == 0 {
		return false
	}
	first := s.Assignments[0].Accel
	for _, a := range s.Assignments[1:] {
		if a.Accel != first {
			return true
		}
	}
	return false
}

// String renders the plan.
func (s Schedule) String() string {
	var sb strings.Builder
	for i, a := range s.Assignments {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		fmt.Fprintf(&sb, "%s@%s", a.Phase, a.Accel)
	}
	fmt.Fprintf(&sb, " (total %.4gs, single %.4gs on %s, gain %.1f%%)",
		s.TotalSeconds, s.SingleSeconds, s.SingleAccel, s.GainPct())
	return sb.String()
}

// Plan computes the optimal phased schedule for a job under fixed per-
// accelerator configurations (callers typically pass each accelerator's
// tuned or predicted M).
func Plan(pair machine.Pair, job machine.Job, gpuM, mcM config.M) Schedule {
	w := job.Work
	k := len(w.Phases)
	if k == 0 {
		return Schedule{}
	}

	// Per-phase cost on each accelerator: evaluate a single-phase view
	// of the work (barriers apportioned by op share).
	gpuT := make([]float64, k)
	mcT := make([]float64, k)
	totalOps := w.TotalOps()
	for i := range w.Phases {
		share := 1.0
		if totalOps > 0 {
			share = float64(w.Phases[i].Ops()) / float64(totalOps)
		}
		pw := &profile.Work{
			Benchmark:     w.Benchmark,
			Graph:         w.Graph,
			Phases:        []profile.Phase{w.Phases[i]},
			Iterations:    w.Iterations,
			DiameterBound: w.DiameterBound,
			Barriers:      int64(float64(w.Barriers) * share),
			Locality:      w.Locality,
			Skew:          w.Skew,
		}
		pj := machine.Job{Work: pw, FootprintBytes: job.FootprintBytes}
		gpuT[i] = pair.GPU.Evaluate(pj, gpuM).Seconds
		mcT[i] = pair.Multicore.Evaluate(pj, mcM).Seconds
	}

	// Migration cost per switch: the mutable state (read-write + local
	// bytes of the boundary phase) crosses PCIe once per iteration.
	iters := w.Iterations
	if iters < 1 {
		iters = 1
	}
	switchCost := func(i int) float64 {
		bytes := float64(w.Phases[i].ReadWriteBytes + w.Phases[i].LocalBytes)
		return bytes / (PCIeGBs * 1e9) * float64(iters)
	}

	best := Schedule{TotalSeconds: -1}
	for mask := 0; mask < 1<<k; mask++ {
		total := 0.0
		transfers := 0
		transferSec := 0.0
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				total += mcT[i]
			} else {
				total += gpuT[i]
			}
			// Boundary to the next phase (cyclic: iterations loop back).
			next := (i + 1) % k
			if k > 1 && (mask&(1<<i) != 0) != (mask&(1<<next) != 0) {
				transfers++
				transferSec += switchCost(i)
			}
		}
		total += transferSec
		if best.TotalSeconds < 0 || total < best.TotalSeconds {
			best = Schedule{Transfers: transfers, TransferSeconds: transferSec, TotalSeconds: total}
			best.Assignments = best.Assignments[:0]
			for i := 0; i < k; i++ {
				a := Assignment{Phase: w.Phases[i].Name, Accel: config.GPU, Seconds: gpuT[i]}
				if mask&(1<<i) != 0 {
					a.Accel = config.Multicore
					a.Seconds = mcT[i]
				}
				best.Assignments = append(best.Assignments, a)
			}
		}
	}

	// Whole-program single-accelerator reference under the same configs.
	gpuWhole := pair.GPU.Evaluate(job, gpuM).Seconds
	mcWhole := pair.Multicore.Evaluate(job, mcM).Seconds
	if gpuWhole <= mcWhole {
		best.SingleSeconds, best.SingleAccel = gpuWhole, config.GPU
	} else {
		best.SingleSeconds, best.SingleAccel = mcWhole, config.Multicore
	}
	// The per-phase sum of a uniform assignment differs slightly from the
	// whole-program evaluation (barrier apportioning); never report a
	// phased plan worse than the single baseline it contains.
	if best.TotalSeconds > best.SingleSeconds {
		best.TotalSeconds = best.SingleSeconds
		for i := range best.Assignments {
			best.Assignments[i].Accel = best.SingleAccel
		}
		best.Transfers, best.TransferSeconds = 0, 0
	}
	return best
}
