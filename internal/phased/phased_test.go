package phased

import (
	"strings"
	"testing"

	"heteromap/internal/config"
	"heteromap/internal/machine"
	"heteromap/internal/profile"
)

func pairAndConfigs() (machine.Pair, config.M, config.M) {
	pair := machine.PrimaryPair()
	l := pair.Limits()
	gpuM := config.DefaultGPU(l)
	gpuM.GlobalThreads = 2048
	return pair, gpuM, config.DefaultMulticore(l)
}

// gpuPhase is large, regular, low-sharing work; mcPhase is FP-heavy work
// over a cache-resident read-write set.
// gpuPhase is compute-bound, massively parallel integer work with a small
// mutable state — the GPU's ALU advantage dominates and migration is
// cheap.
func gpuPhase(name string) profile.Phase {
	return profile.Phase{
		Kind: profile.VertexDivision, Name: name,
		VertexOps: 2_000_000, EdgeOps: 2_000_000_000,
		IndexedAccesses: 100_000_000, IntOps: 2_000_000_000,
		ReadOnlyBytes: 200 << 20, ReadWriteBytes: 8 << 20,
		ChainLength: 4, ParallelItems: 2_000_000,
	}
}

func mcPhase(name string) profile.Phase {
	return profile.Phase{
		Kind: profile.Reduction, Name: name,
		VertexOps: 2_000_000, EdgeOps: 30_000_000,
		IndexedAccesses: 20_000_000, IndirectAccesses: 40_000_000,
		FPOps: 60_000_000, ReadWriteBytes: 20 << 20,
		Atomics: 2_000_000, ChainLength: 4, ParallelItems: 2_000_000,
	}
}

func work(phases ...profile.Phase) *profile.Work {
	return &profile.Work{
		Benchmark: "synthetic", Graph: "g",
		Phases: phases, Iterations: 4, Barriers: 8,
		Locality: 0.05, Skew: 0.5,
	}
}

func TestEmptyWork(t *testing.T) {
	pair, g, m := pairAndConfigs()
	s := Plan(pair, machine.Job{Work: &profile.Work{}}, g, m)
	if len(s.Assignments) != 0 {
		t.Fatal("empty work should yield empty schedule")
	}
}

func TestSinglePhaseCollapses(t *testing.T) {
	pair, g, m := pairAndConfigs()
	s := Plan(pair, machine.Job{Work: work(gpuPhase("only"))}, g, m)
	if s.Split() {
		t.Fatal("single phase cannot split")
	}
	if s.Transfers != 0 || s.TransferSeconds != 0 {
		t.Fatal("single phase cannot transfer")
	}
	if s.GainPct() < 0 {
		t.Fatalf("negative gain %v", s.GainPct())
	}
}

func TestOppositeAffinitiesSplit(t *testing.T) {
	pair, g, m := pairAndConfigs()
	w := work(gpuPhase("parallel"), mcPhase("reduce"))
	s := Plan(pair, machine.Job{Work: w}, g, m)
	if !s.Split() {
		t.Fatalf("opposite-affinity phases should split: %s", s)
	}
	if s.Transfers == 0 || s.TransferSeconds <= 0 {
		t.Fatal("split schedule must pay transfers")
	}
	if s.GainPct() <= 0 {
		t.Fatalf("split should beat single accelerator, gain %v%%", s.GainPct())
	}
	// The split must place each phase on its natural home.
	for _, a := range s.Assignments {
		switch a.Phase {
		case "parallel":
			if a.Accel != config.GPU {
				t.Fatalf("parallel phase on %v", a.Accel)
			}
		case "reduce":
			if a.Accel != config.Multicore {
				t.Fatalf("reduction phase on %v", a.Accel)
			}
		}
	}
}

func TestExpensiveTransfersCollapse(t *testing.T) {
	pair, g, m := pairAndConfigs()
	// Make the boundary state enormous: migrating it every iteration
	// costs more than any phase-affinity gain.
	hot := mcPhase("reduce")
	hot.ReadWriteBytes = 64 << 30
	w := work(gpuPhase("parallel"), hot)
	w.Iterations = 50
	s := Plan(pair, machine.Job{Work: w}, g, m)
	if s.Split() {
		t.Fatalf("64 GB boundary state should forbid splitting: %s", s)
	}
	if s.GainPct() != 0 {
		t.Fatalf("collapsed schedule must match the single baseline, gain %v", s.GainPct())
	}
}

func TestNeverWorseThanSingle(t *testing.T) {
	pair, g, m := pairAndConfigs()
	for _, w := range []*profile.Work{
		work(gpuPhase("a")),
		work(gpuPhase("a"), gpuPhase("b")),
		work(mcPhase("a"), mcPhase("b"), gpuPhase("c")),
		work(gpuPhase("a"), mcPhase("b"), gpuPhase("c")),
	} {
		s := Plan(pair, machine.Job{Work: w}, g, m)
		if s.TotalSeconds > s.SingleSeconds*1.0000001 {
			t.Fatalf("phased plan (%v) worse than single (%v)", s.TotalSeconds, s.SingleSeconds)
		}
	}
}

func TestTransfersCountCyclicBoundaries(t *testing.T) {
	pair, g, m := pairAndConfigs()
	// GPU-MC alternation over two phases crosses two boundaries per
	// iteration (A->B and B->A at the loop edge).
	small := mcPhase("reduce")
	small.ReadWriteBytes = 1 << 20 // cheap transfers so the split happens
	w := work(gpuPhase("parallel"), small)
	s := Plan(pair, machine.Job{Work: w}, g, m)
	if s.Split() && s.Transfers != 2 {
		t.Fatalf("two-phase alternation should count 2 transfers, got %d", s.Transfers)
	}
}

func TestStringRendering(t *testing.T) {
	pair, g, m := pairAndConfigs()
	s := Plan(pair, machine.Job{Work: work(gpuPhase("a"), mcPhase("b"))}, g, m)
	str := s.String()
	if !strings.Contains(str, "a@") || !strings.Contains(str, "gain") {
		t.Fatalf("rendering %q", str)
	}
}
